package gputrid

import (
	"testing"

	"gputrid/internal/matrix"
	"gputrid/internal/pcr"
	"gputrid/internal/tiledpcr"
)

// checkReduceEquivalence asserts that every scheduling of the k-step
// reduction — naive, streamed, blocked — produces identical
// coefficients for the given system.
func checkReduceEquivalence(t *testing.T, s *System[float64], k, tile int) {
	t.Helper()
	want := pcr.Reduce(s, k)
	streamed := tiledpcr.StreamReduce(s, k)
	blocked, _ := tiledpcr.ReduceBlocked(s, k, tile)
	for name, got := range map[string]*matrix.System[float64]{
		"streamed": streamed, "blocked": blocked,
	} {
		if d := matrix.MaxAbsDiff(got.Diag, want.Diag); d != 0 {
			t.Errorf("%s diag differs by %g (n=%d k=%d tile=%d)", name, d, s.N(), k, tile)
		}
		if d := matrix.MaxAbsDiff(got.RHS, want.RHS); d != 0 {
			t.Errorf("%s rhs differs by %g (n=%d k=%d tile=%d)", name, d, s.N(), k, tile)
		}
	}
}
