# Developer entry points. CI runs the same commands (.github/workflows/ci.yml).

.PHONY: build test race lint vet selftest

build:
	go build ./...

test:
	go test ./...

race:
	go test -race gputrid ./internal/...

# Project-invariant analyzers (clock injection, ctx threading, hot-path
# allocs, lock ranks, typed-error matching). Blocking in CI.
lint: vet
	go run ./cmd/tridlint ./...

vet:
	go vet ./...

selftest:
	go run -race ./cmd/tridserve -selftest
