package gputrid

// Tests of the transient-fault-tolerance surface: seeded chaos
// injection, checkpointed retry, context cancellation, and the
// Close/solve race — the acceptance criteria of the reliability layer.

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"gputrid/internal/matrix"
	"gputrid/internal/workload"
)

// TestChaosBitwiseAtTenPercent pins the headline guarantee: at fault
// rate 0.1 per kernel launch site, with the default retry policy,
// recovered solves are bitwise identical to fault-free solves — on the
// recording solve and on replayed solves alike.
func TestChaosBitwiseAtTenPercent(t *testing.T) {
	const m, n = 32, 256
	b := workload.Batch[float64](workload.DiagDominant, m, n, 21)
	clean, err := SolveBatch(b)
	if err != nil {
		t.Fatal(err)
	}

	sawFault := false
	for _, seed := range []uint64{1, 2, 3, 4, 5} {
		s, err := NewSolver[float64](m, n,
			WithFaultInjection(&FaultInjector{Seed: seed, Rate: 0.1}),
			WithRetry(RetryPolicy{BaseBackoff: time.Microsecond}))
		if err != nil {
			t.Fatal(err)
		}
		dst := make([]float64, m*n)
		for iter := 0; iter < 3; iter++ {
			if err := s.SolveBatchIntoCtx(context.Background(), dst, b); err != nil {
				t.Fatalf("seed %d iter %d: %v", seed, iter, err)
			}
			if fr := s.FaultReport(); fr != nil {
				sawFault = true
				if len(fr.Degraded) != 0 {
					t.Fatalf("seed %d iter %d: degraded %v; one-shot transients must recover within the default budget",
						seed, iter, fr.Degraded)
				}
			}
			for i := range dst {
				if dst[i] != clean.X[i] {
					t.Fatalf("seed %d iter %d: element %d = %v, fault-free = %v (not bitwise identical)",
						seed, iter, i, dst[i], clean.X[i])
				}
			}
		}
		s.Close()
	}
	if !sawFault {
		t.Fatal("rate 0.1 over 5 seeds never faulted; injector is not firing")
	}
}

// TestSolveBatchCtxCancellation covers both cancellation windows: a
// context cancelled before the solve, and a deadline expiring while
// the solve is parked in retry backoff. Both must return promptly with
// the typed error (matching the context's own error too) and leak no
// goroutines.
func TestSolveBatchCtxCancellation(t *testing.T) {
	base := runtime.NumGoroutine()
	const m, n = 16, 128
	b := workload.Batch[float64](workload.DiagDominant, m, n, 22)

	t.Run("pre-cancelled", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_, err := SolveBatchCtx(ctx, b)
		if !errors.Is(err, ErrCancelled) || !errors.Is(err, context.Canceled) {
			t.Fatalf("error = %v, want ErrCancelled wrapping context.Canceled", err)
		}
	})

	t.Run("deadline-in-backoff", func(t *testing.T) {
		s, err := NewSolver[float64](m, n,
			WithFaultInjection(&FaultInjector{
				Repeat:   1 << 30, // never heals: the solve lives in backoff
				Schedule: []ScheduledFault{{Kernel: "", Block: -1, Kind: FaultAbort}},
			}),
			WithRetry(RetryPolicy{MaxRetries: 1000, BaseBackoff: 50 * time.Millisecond, MaxBackoff: time.Second}))
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		dst := make([]float64, m*n)
		for i := range dst {
			dst[i] = -3
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
		defer cancel()
		start := time.Now()
		err = s.SolveBatchIntoCtx(ctx, dst, b)
		if !errors.Is(err, ErrCancelled) || !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("error = %v, want ErrCancelled wrapping DeadlineExceeded", err)
		}
		if el := time.Since(start); el > 2*time.Second {
			t.Fatalf("cancellation took %v, want prompt return", el)
		}
		// k >= 1 path writes dst per whole system only; with every
		// launch aborted at block -1 nothing may have been committed
		// partially: each system is fully written or fully untouched.
		for i := 0; i < m; i++ {
			row := dst[i*n : (i+1)*n]
			touched := 0
			for _, v := range row {
				if v != -3 {
					touched++
				}
			}
			if touched != 0 && touched != n {
				t.Fatalf("system %d partially written (%d of %d rows)", i, touched, n)
			}
		}
	})

	// Every pool goroutine must be gone once the solvers are closed.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d > %d\n%s", runtime.NumGoroutine(), base,
				buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestSolveGuardedCtxCancelled checks the guarded path propagates
// cancellation as a typed error with a nil result.
func TestSolveGuardedCtxCancelled(t *testing.T) {
	const m, n = 8, 64
	s, err := NewSolver[float64](m, n)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	b := workload.Batch[float64](workload.DiagDominant, m, n, 23)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := s.SolveGuardedCtx(ctx, b)
	if res != nil {
		t.Fatal("cancelled guarded solve returned a result")
	}
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("error = %v, want ErrCancelled", err)
	}
	// The solver stays fully usable.
	if _, err := s.SolveGuardedCtx(context.Background(), b); err != nil {
		t.Fatalf("guarded solve after cancellation: %v", err)
	}
}

// TestGuardedDegradedReportsPivot checks systems rescued by the
// fault-recovery layer's GTSV degradation surface as StagePivot in the
// guarded per-system reports.
func TestGuardedDegradedReportsPivot(t *testing.T) {
	const m, n = 16, 128
	b := workload.Batch[float64](workload.DiagDominant, m, n, 24)
	s, err := NewSolver[float64](m, n,
		WithFaultInjection(&FaultInjector{
			Repeat:   1 << 30,
			Schedule: []ScheduledFault{{Kernel: "", Block: 0, Kind: FaultAbort}},
		}),
		WithRetry(RetryPolicy{MaxRetries: 1, BaseBackoff: time.Microsecond}))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	res, err := s.SolveGuardedCtx(context.Background(), b)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stages()
	if st[StagePivot] == 0 {
		t.Fatalf("stages = %v, want degraded systems reported as StagePivot", st)
	}
	if len(res.Failed) != 0 {
		t.Fatalf("degraded diag-dominant systems failed: %v", res.Failed)
	}
	if res.Faults == nil || len(res.Faults.Degraded) == 0 {
		t.Fatal("GuardedResult.Faults does not report the degradation")
	}
	if res.Faults.Degraded[0] != res.Reports[res.Faults.Degraded[0]].System {
		t.Fatal("degraded list and reports disagree on system indexing")
	}
}

// TestSolverCloseBusy pins the public Close/solve race contract: Close
// against an in-flight solve returns ErrSolverBusy without disturbing
// it, and Close is idempotent afterwards.
func TestSolverCloseBusy(t *testing.T) {
	const m, n = 16, 128
	s, err := NewSolver[float64](m, n,
		WithFaultInjection(&FaultInjector{
			Repeat:   2,
			Schedule: []ScheduledFault{{Kernel: "", Block: 0, Kind: FaultAbort}},
		}),
		WithRetry(RetryPolicy{MaxRetries: 3, BaseBackoff: 100 * time.Millisecond, MaxBackoff: time.Second}))
	if err != nil {
		t.Fatal(err)
	}
	b := workload.Batch[float64](workload.DiagDominant, m, n, 25)
	dst := make([]float64, m*n)
	done := make(chan error, 1)
	go func() { done <- s.SolveBatchIntoCtx(context.Background(), dst, b) }()

	var closeErr error
	deadline := time.Now().Add(5 * time.Second)
	for {
		closeErr = s.Close()
		if closeErr != nil || time.Now().After(deadline) {
			break
		}
		select {
		case err := <-done:
			// Close beat the solve to the pipeline; the solve must then
			// have been rejected as closed, not half-run.
			if !errors.Is(err, ErrSolverClosed) {
				t.Fatalf("solve after winning Close = %v, want ErrSolverClosed", err)
			}
			return
		default:
			time.Sleep(time.Millisecond)
		}
	}
	if !errors.Is(closeErr, ErrSolverBusy) {
		t.Fatalf("Close during solve = %v, want ErrSolverBusy", closeErr)
	}
	if err := <-done; err != nil {
		t.Fatalf("solve disturbed by racing Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close after solve: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("repeat Close: %v", err)
	}
	if err := s.SolveBatchInto(dst, b); !errors.Is(err, ErrSolverClosed) {
		t.Fatalf("solve after Close = %v, want ErrSolverClosed", err)
	}
}

// TestFaultReportSurface checks the report plumbing end to end: kinds
// of activity land in the right fields and the hang charge reflects
// the watchdog budget.
func TestFaultReportSurface(t *testing.T) {
	const m, n = 16, 128
	b := workload.Batch[float64](workload.DiagDominant, m, n, 26)
	budget := 7 * time.Millisecond
	res, err := SolveBatchCtx(context.Background(), b,
		WithFaultInjection(&FaultInjector{
			Schedule: []ScheduledFault{{Kernel: "tiledPCR", Block: 0, Kind: FaultHang}},
		}),
		WithWatchdog(budget),
		WithRetry(RetryPolicy{BaseBackoff: time.Microsecond}))
	if err != nil {
		t.Fatal(err)
	}
	fr := res.Faults
	if fr == nil {
		t.Fatal("Result.Faults nil after an injected hang")
	}
	if fr.Faults == 0 || fr.Retries["tiledPCR"] == 0 {
		t.Fatalf("report = %+v, want the hang counted and the retry keyed by kernel", fr)
	}
	if fr.WastedModeledTime < budget {
		t.Fatalf("wasted = %v, want at least the %v watchdog budget", fr.WastedModeledTime, budget)
	}
	if res.X == nil {
		t.Fatal("recovered solve carries no solution")
	}
	if r := matrix.MaxResidual(b, res.X); !(r <= matrix.ResidualTolerance[float64](n)) {
		t.Fatalf("recovered residual %.3e exceeds tolerance", r)
	}
}
