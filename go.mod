module gputrid

go 1.24
