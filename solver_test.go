package gputrid

import (
	"errors"
	"sync"
	"testing"

	"gputrid/internal/workload"
)

// solverShapes covers both steady-state pipeline paths.
var solverShapes = []struct {
	name string
	opts []Option
	m, n int
}{
	{"hybrid-kauto", nil, 16, 128},
	{"k0", []Option{WithK(0)}, 32, 64},
}

// TestSolverReuseMatchesOneShot reuses one Solver across 100 distinct
// batches and requires bitwise identity with a fresh SolveBatch on
// every one — the recorded first solve and the replayed rest alike.
func TestSolverReuseMatchesOneShot(t *testing.T) {
	for _, tc := range solverShapes {
		t.Run(tc.name, func(t *testing.T) {
			s, err := NewSolver[float64](tc.m, tc.n, tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			dst := make([]float64, tc.m*tc.n)
			for iter := 0; iter < 100; iter++ {
				b := workload.Batch[float64](workload.DiagDominant, tc.m, tc.n, uint64(iter))
				if err := s.SolveBatchInto(dst, b); err != nil {
					t.Fatal(err)
				}
				res, err := SolveBatch(b, tc.opts...)
				if err != nil {
					t.Fatal(err)
				}
				for i := range dst {
					if dst[i] != res.X[i] {
						t.Fatalf("iter %d: dst[%d] = %v, one-shot = %v (not bitwise identical)",
							iter, i, dst[i], res.X[i])
					}
				}
				if *s.Stats() != *res.Stats {
					t.Fatalf("iter %d: cached stats diverge from one-shot:\n got %+v\nwant %+v",
						iter, *s.Stats(), *res.Stats)
				}
				if s.K() != res.K || s.ModeledTime() != res.ModeledTime {
					t.Fatalf("iter %d: k/modeled diverge: got k=%d %v, want k=%d %v",
						iter, s.K(), s.ModeledTime(), res.K, res.ModeledTime)
				}
			}
		})
	}
}

// TestSolverConcurrentDistinct runs several independent Solvers from
// separate goroutines; run under -race this checks the reusable path
// shares no hidden mutable state between instances.
func TestSolverConcurrentDistinct(t *testing.T) {
	const goroutines = 4
	m, n := 8, 128
	b := workload.Batch[float64](workload.DiagDominant, m, n, 99)
	want, err := SolveBatch(b)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s, err := NewSolver[float64](m, n)
			if err != nil {
				errs[g] = err
				return
			}
			defer s.Close()
			dst := make([]float64, m*n)
			for iter := 0; iter < 5; iter++ {
				if err := s.SolveBatchInto(dst, b); err != nil {
					errs[g] = err
					return
				}
				for i := range dst {
					if dst[i] != want.X[i] {
						errs[g] = errors.New("concurrent solver diverged from one-shot")
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Errorf("goroutine %d: %v", g, err)
		}
	}
}

// TestSolverMisuse checks the typed errors: shape mismatches and use
// after Close reject the call without corrupting the Solver, and
// overlapping calls on one Solver either succeed or fail with
// ErrSolverBusy — never silently interleave.
func TestSolverMisuse(t *testing.T) {
	m, n := 8, 64
	s, err := NewSolver[float64](m, n)
	if err != nil {
		t.Fatal(err)
	}
	good := workload.Batch[float64](workload.DiagDominant, m, n, 1)
	dst := make([]float64, m*n)

	if err := s.SolveBatchInto(dst, workload.Batch[float64](workload.DiagDominant, m, 2*n, 1)); !errors.Is(err, ErrShapeMismatch) {
		t.Errorf("wrong batch shape: got %v, want ErrShapeMismatch", err)
	}
	if err := s.SolveBatchInto(dst[:m*n-1], good); !errors.Is(err, ErrShapeMismatch) {
		t.Errorf("wrong dst length: got %v, want ErrShapeMismatch", err)
	}
	if err := s.SolveBatchInto(dst, good); err != nil {
		t.Errorf("solver unusable after rejected calls: %v", err)
	}

	// Hammer one Solver from several goroutines: every call must either
	// complete with the correct solution or return ErrSolverBusy.
	want := make([]float64, m*n)
	copy(want, dst)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var bad []error
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mine := make([]float64, m*n)
			for iter := 0; iter < 20; iter++ {
				err := s.SolveBatchInto(mine, good)
				switch {
				case err == nil:
					for i := range mine {
						if mine[i] != want[i] {
							mu.Lock()
							bad = append(bad, errors.New("overlapping call produced a corrupted solution"))
							mu.Unlock()
							return
						}
					}
				case errors.Is(err, ErrSolverBusy):
					// acceptable: the call was rejected untouched
				default:
					mu.Lock()
					bad = append(bad, err)
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range bad {
		t.Error(err)
	}

	s.Close()
	s.Close() // idempotent
	if err := s.SolveBatchInto(dst, good); !errors.Is(err, ErrSolverClosed) {
		t.Errorf("closed solver: got %v, want ErrSolverClosed", err)
	}
}

// TestSolveBatchIntoZeroAlloc is the acceptance gate of the reusable
// solver: at the benchmark shape (M=64, N=1024, float64, heuristic k)
// a warmed Solver must run SolveBatchInto without any heap allocation.
// The k=0 path and a multi-worker pool are held to the same bar.
func TestSolveBatchIntoZeroAlloc(t *testing.T) {
	cases := []struct {
		name string
		opts []Option
		m, n int
	}{
		{"acceptance-64x1024", nil, 64, 1024},
		{"k0", []Option{WithK(0)}, 32, 64},
		{"workers2", []Option{WithWorkers(2)}, 64, 1024},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := NewSolver[float64](tc.m, tc.n, tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			b := workload.Batch[float64](workload.DiagDominant, tc.m, tc.n, 7)
			dst := make([]float64, tc.m*tc.n)
			if err := s.SolveBatchInto(dst, b); err != nil { // recording solve
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(5, func() {
				if err := s.SolveBatchInto(dst, b); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Errorf("SolveBatchInto allocates %.0f times per solve, want 0", allocs)
			}
		})
	}
}

// TestSolverGuardedReuse reuses the guarded path: results must match
// the one-shot SolveGuarded, and a clean batch must solve on the fast
// stage for every system across repeated calls.
func TestSolverGuardedReuse(t *testing.T) {
	m, n := 8, 128
	s, err := NewSolver[float64](m, n)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for iter := 0; iter < 3; iter++ {
		b := workload.Batch[float64](workload.DiagDominant, m, n, uint64(40+iter))
		want, err := SolveGuarded(b)
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.SolveGuarded(b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got.X {
			if got.X[i] != want.X[i] {
				t.Fatalf("iter %d: guarded X[%d] = %v, one-shot = %v", iter, i, got.X[i], want.X[i])
			}
		}
		if len(got.Failed) != 0 {
			t.Fatalf("iter %d: clean batch reported failures: %v", iter, got.Failed)
		}
		for i, rep := range got.Reports {
			if rep.Stage != StageFast {
				t.Fatalf("iter %d: system %d escalated to %v on a clean batch", iter, i, rep.Stage)
			}
		}
	}
}
