package gputrid

import (
	"errors"
	"math"
	"strings"
	"testing"

	"gputrid/internal/matrix"
	"gputrid/internal/workload"
)

// TestGuardedIsolatesBadSystems is the acceptance scenario for the
// guarded pipeline: a batch of 64 systems with 3 degenerate ones must
// yield finite, tolerance-passing solutions for the 61 healthy systems,
// rescued solutions or typed SolveErrors for the bad ones, and a
// per-system report naming the stage used — where the seed's
// all-or-nothing WithVerification rejects the entire batch.
func TestGuardedIsolatesBadSystems(t *testing.T) {
	const m, n = 64, 128
	b := workload.Batch[float64](workload.DiagDominant, m, n, 99)
	// Two near-singular-for-the-fast-path systems (leading pivot
	// vanishes; pivoting rescues them) and one genuinely singular one.
	rescuable := []int{7, 23}
	const singular = 41
	for _, i := range rescuable {
		b.Diag[i*n] = 0
	}
	for j := 0; j < n; j++ {
		b.Lower[singular*n+j] = 0
		b.Diag[singular*n+j] = 0
		b.Upper[singular*n+j] = 0
		b.RHS[singular*n+j] = 1
	}

	// Seed behavior: the whole batch is rejected, healthy solutions and
	// all — this is the contract the guard replaces.
	if _, err := SolveBatch(b, WithVerification()); err == nil {
		t.Fatal("seed all-or-nothing verification unexpectedly accepted the corrupted batch")
	}

	res, err := SolveGuarded(b)
	if res == nil {
		t.Fatalf("guarded solve returned no result: %v", err)
	}
	if err == nil {
		t.Fatal("guarded solve of a batch with a singular system must report it")
	}

	// The 61 healthy systems: finite, tolerance-passing, fast path.
	tol := matrix.ResidualTolerance[float64](n)
	bad := map[int]bool{7: true, 23: true, singular: true}
	for i := 0; i < m; i++ {
		rep := res.Reports[i]
		if rep.System != i {
			t.Fatalf("report %d names system %d", i, rep.System)
		}
		if bad[i] {
			continue
		}
		if rep.Stage != StageFast {
			t.Errorf("healthy system %d escalated to %s", i, rep.Stage)
		}
		if rep.ResidualAfter > tol {
			t.Errorf("healthy system %d residual %g exceeds %g", i, rep.ResidualAfter, tol)
		}
	}
	// The rescuable systems: pivoting rescue, tolerance-passing.
	for _, i := range rescuable {
		rep := res.Reports[i]
		if rep.Stage != StagePivot {
			t.Errorf("system %d stage %s, want %s", i, rep.Stage, StagePivot)
		}
		if rep.ResidualAfter > tol {
			t.Errorf("rescued system %d residual %g exceeds %g", i, rep.ResidualAfter, tol)
		}
		if !math.IsInf(rep.ResidualBefore, 1) {
			t.Errorf("system %d fast-path residual %g, want +Inf (non-finite fast solution)", i, rep.ResidualBefore)
		}
	}
	// The singular system: typed, errors.Is/As-able failure.
	rep := res.Reports[singular]
	if rep.Stage != StageFailed || rep.Err == nil {
		t.Fatalf("singular system report %+v, want StageFailed with error", rep)
	}
	if len(res.Failed) != 1 || res.Failed[0].System != singular {
		t.Errorf("Failed = %v, want exactly system %d", res.Failed, singular)
	}
	var se *SolveError
	if !errors.As(err, &se) {
		t.Fatalf("errors.As found no *SolveError in %v", err)
	}
	if se.System != singular {
		t.Errorf("SolveError.System = %d, want %d", se.System, singular)
	}
	if !errors.Is(err, ErrUnrecoverable) {
		t.Error("guarded error does not match ErrUnrecoverable")
	}
	// And the merged X never carries Inf/NaN.
	for i, v := range res.X {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("X[%d] = %v: guarded result must stay finite", i, v)
		}
	}
}

// TestGuardedHealthyBatchMatchesUnguarded: with nothing to rescue, the
// guard is a pass-through around the fast path.
func TestGuardedHealthyBatchMatchesUnguarded(t *testing.T) {
	b := workload.Batch[float64](workload.DiagDominant, 16, 200, 5)
	plain, err := SolveBatch(b, WithK(3))
	if err != nil {
		t.Fatal(err)
	}
	guarded, err := SolveGuarded(b, WithK(3))
	if err != nil {
		t.Fatal(err)
	}
	if d := matrix.MaxAbsDiff(plain.X, guarded.X); d != 0 {
		t.Errorf("guarded pass-through differs from fast path by %g", d)
	}
	if guarded.K != plain.K || guarded.BlocksPerSystem != plain.BlocksPerSystem {
		t.Error("guarded result does not carry the fast path's execution report")
	}
	if s := guarded.Stages(); s[StageFast] != 16 {
		t.Errorf("stage summary %v, want all fast", s)
	}
}

// TestGuardedWithGuardPolicy: WithGuard threads the policy through the
// public API (here: deterministic injection driving the refine rung).
func TestGuardedWithGuardPolicy(t *testing.T) {
	b := workload.Batch[float64](workload.DiagDominant, 8, 96, 12)
	res, err := SolveGuarded(b, WithGuard(GuardPolicy{
		Inject: &GuardInjection{Seed: 5, Faults: []GuardFault{{System: 2, Kind: FaultCorruptSolution}}},
	}))
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Reports[2].Stage; got != StageRefine {
		t.Errorf("injected system recovered via %s, want %s", got, StageRefine)
	}
	if res.Reports[2].Refinements == 0 {
		t.Error("no refinement rounds reported")
	}
}

// TestVerificationNamesBadSystems: the WithVerification error now names
// which systems exceeded tolerance instead of only the batch max.
func TestVerificationNamesBadSystems(t *testing.T) {
	const m, n = 8, 32
	b := workload.Batch[float64](workload.DiagDominant, m, n, 44)
	b.Diag[3*n] = 0 // fast path emits non-finite for system 3 only
	_, err := SolveBatch(b, WithVerification())
	if err == nil {
		t.Fatal("verification passed a poisoned batch")
	}
	msg := err.Error()
	if !strings.Contains(msg, "system 3") {
		t.Errorf("verification error does not name the failing system: %q", msg)
	}
	if !strings.Contains(msg, "1 of 8") {
		t.Errorf("verification error does not count failing systems: %q", msg)
	}
}

// TestConditionEstBatch: the lazy batch estimator matches per-system
// estimates and flags the singular system.
func TestConditionEstBatch(t *testing.T) {
	const m, n = 4, 48
	b := workload.Batch[float64](workload.DiagDominant, m, n, 21)
	for j := 0; j < n; j++ { // make system 2 singular
		b.Lower[2*n+j], b.Diag[2*n+j], b.Upper[2*n+j] = 0, 0, 0
	}
	got := ConditionEstBatch(b, []int{0, 2})
	if len(got) != 2 {
		t.Fatalf("estimates for %d systems, want 2", len(got))
	}
	if want := ConditionEst(b.System(0)); got[0] != want {
		t.Errorf("batch estimate %g differs from single-system %g", got[0], want)
	}
	if !math.IsInf(got[1], 1) {
		t.Errorf("singular system estimate %g, want +Inf", got[1])
	}
}

// TestBatchValidateNamesOffendingEntry: NaN/Inf input is rejected up
// front with the system, array, and row of the bad coefficient.
func TestBatchValidateNamesOffendingEntry(t *testing.T) {
	b := NewBatch[float64](3, 4)
	for i := range b.Diag {
		b.Diag[i] = 1
	}
	b.Upper[1*4+2] = math.NaN()
	err := b.Validate()
	if err == nil {
		t.Fatal("NaN coefficient accepted")
	}
	msg := err.Error()
	for _, want := range []string{"system 1", "Upper[2]"} {
		if !strings.Contains(msg, want) {
			t.Errorf("validation error %q does not contain %q", msg, want)
		}
	}
}
