package gputrid

import (
	"errors"
	"math"
	"testing"

	"gputrid/internal/matrix"
	"gputrid/internal/num"
)

// FuzzSolveGuarded drives the guarded pipeline with adversarial batches
// — random dominance margins, zeroed diagonals, poisoned coefficients —
// and asserts its core contract: the merged X never carries a
// non-finite entry without a matching typed SolveError for that system,
// error-free systems pass the residual tolerance, and the joined error
// is consistent with the Failed list.
func FuzzSolveGuarded(f *testing.F) {
	f.Add(uint32(1), uint8(4), uint8(40), uint8(0))
	f.Add(uint32(2), uint8(1), uint8(1), uint8(255))
	f.Add(uint32(3), uint8(8), uint8(64), uint8(7))
	f.Add(uint32(4), uint8(5), uint8(33), uint8(129))
	f.Add(uint32(5), uint8(3), uint8(17), uint8(64))
	f.Fuzz(func(t *testing.T, seed uint32, mRaw, nRaw, hostility uint8) {
		m := int(mRaw)%8 + 1
		n := int(nRaw)%64 + 1
		r := num.NewRNG(uint64(seed) + 1)
		b := NewBatch[float64](m, n)
		for i := 0; i < m; i++ {
			base := i * n
			for j := 0; j < n; j++ {
				var a, c float64
				if j > 0 {
					a = r.Range(-1, 1)
				}
				if j < n-1 {
					c = r.Range(-1, 1)
				}
				b.Lower[base+j] = a
				b.Upper[base+j] = c
				// Dominance margin shrinks as hostility grows; hostile
				// batches also get zeroed and poisoned entries.
				b.Diag[base+j] = math.Abs(a) + math.Abs(c) + r.Range(0.01, 1.5)
				b.RHS[base+j] = r.Range(-10, 10)
			}
			h := float64(hostility) / 255
			if r.Float64() < h {
				b.Diag[base] = 0 // break the fast path's first pivot
			}
			if r.Float64() < h/2 {
				b.Diag[base+r.Intn(n)] = math.NaN() // garbage-in
			}
			if r.Float64() < h/4 {
				for j := 0; j < n; j++ { // genuinely singular
					b.Lower[base+j], b.Diag[base+j], b.Upper[base+j] = 0, 0, 0
				}
				b.RHS[base] = 1
			}
		}

		res, err := SolveGuarded(b)
		if res == nil {
			t.Fatalf("guarded solve returned no result: %v", err)
		}
		tol := matrix.ResidualTolerance[float64](n)
		for i := 0; i < m; i++ {
			rep := res.Reports[i]
			finite := true
			for _, v := range res.X[i*n : (i+1)*n] {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					finite = false
				}
			}
			if !finite && rep.Err == nil {
				t.Fatalf("system %d: non-finite X without a SolveError (stage %s)", i, rep.Stage)
			}
			if rep.Err == nil && rep.ResidualAfter > tol {
				t.Errorf("system %d: no error but residual %g exceeds %g (stage %s)",
					i, rep.ResidualAfter, tol, rep.Stage)
			}
			if rep.Err != nil {
				if rep.Stage != StageFailed {
					t.Errorf("system %d: error carried by non-failed stage %s", i, rep.Stage)
				}
				if rep.Err.System != i {
					t.Errorf("system %d: SolveError names system %d", i, rep.Err.System)
				}
			}
		}
		if (err != nil) != (len(res.Failed) > 0) {
			t.Fatalf("error/Failed mismatch: err=%v, %d failed", err, len(res.Failed))
		}
		if err != nil && !errors.Is(err, ErrUnrecoverable) {
			t.Errorf("guarded error does not match ErrUnrecoverable: %v", err)
		}
	})
}
