// Package gputrid is a scalable tridiagonal solver modeled on
// "A Scalable Tridiagonal Solver for GPUs" (Kim, Wu, Chang, Hwu,
// ICPP 2011). It solves batches of tridiagonal systems A·x = d with a
// hybrid of tiled parallel cyclic reduction (a streaming front-end that
// splits each system into 2^k independent interleaved subsystems using
// a buffered sliding window in shared memory) and thread-level parallel
// Thomas (a coalesced back-end that solves the subsystems one per
// thread), choosing k at runtime from the batch size and the hardware's
// parallelism.
//
// Because this environment has no GPU, kernels run on internal/gpusim,
// a functional simulator of the CUDA execution model that also records
// the architectural events (coalesced transactions, eliminations,
// barriers, occupancy, launches) from which a deterministic
// execution-time estimate is produced. Solutions are always computed
// for real; see DESIGN.md for the substitution rationale.
//
// # Quick start
//
//	sys := gputrid.NewSystem[float64](1024)
//	// ... fill sys.Lower, sys.Diag, sys.Upper, sys.RHS ...
//	res, err := gputrid.Solve(sys)
//	// res.X holds the solution.
//
// Batches use SolveBatch; options such as WithK, WithKernelFusion and
// WithDevice tune the paper's knobs.
package gputrid

import (
	"context"
	"fmt"
	"strings"
	"time"

	"gputrid/internal/core"
	"gputrid/internal/cpu"
	"gputrid/internal/gpusim"
	"gputrid/internal/guard"
	"gputrid/internal/matrix"
	"gputrid/internal/num"
)

// Real constrains the element types the solvers accept: float32 (the
// paper's single-precision results) or float64 (its headline numbers).
type Real = num.Real

// System is one tridiagonal system in the row convention of the paper's
// Eq. (1): Lower[i]·x[i-1] + Diag[i]·x[i] + Upper[i]·x[i+1] = RHS[i],
// with Lower[0] and Upper[n-1] ignored.
type System[T Real] = matrix.System[T]

// Batch is M independent systems of N rows in the contiguous layout
// (system i occupies [i*N, (i+1)*N) of each slice).
type Batch[T Real] = matrix.Batch[T]

// Interleaved is M systems in the coalescing-friendly interleaved
// layout (row j of system i at j*M+i).
type Interleaved[T Real] = matrix.Interleaved[T]

// Device describes the simulated GPU executing the kernels.
type Device = gpusim.Device

// Stats are the architectural events recorded during a solve.
type Stats = gpusim.Stats

// LayoutStats counts interleaved-native vs shimmed solver entries and
// the blocked transposes the native path skipped (see
// Solver.LayoutStats).
type LayoutStats = core.LayoutStats

// NewSystem allocates an n-row system with zero coefficients.
func NewSystem[T Real](n int) *System[T] { return matrix.NewSystem[T](n) }

// NewBatch allocates an M×N batch with zero coefficients.
func NewBatch[T Real](m, n int) *Batch[T] { return matrix.NewBatch[T](m, n) }

// GTX480 returns the device description of the paper's test GPU, the
// default device.
func GTX480() *Device { return gpusim.GTX480() }

// AutoK requests the paper's Table III heuristic for the PCR step
// count (the default).
const AutoK = core.KAuto

type config struct {
	device   *Device
	k        int
	c        int
	blocks   int
	fuse     bool
	mux      int
	verify   bool
	workers  int
	guard    *GuardPolicy
	retry    RetryPolicy
	watchdog time.Duration
	inject   *FaultInjector
}

func (c *config) coreConfig() core.Config {
	return core.Config{
		Device:          c.device,
		K:               c.k,
		C:               c.c,
		BlocksPerSystem: c.blocks,
		Fuse:            c.fuse,
		SystemsPerBlock: c.mux,
		Workers:         c.workers,
		Retry:           c.retry,
		Watchdog:        c.watchdog,
	}
}

// Option customizes a solve.
type Option func(*config)

// WithDevice selects the simulated device (default GTX480).
func WithDevice(d *Device) Option { return func(c *config) { c.device = d } }

// WithK fixes the number of tiled-PCR steps; k = 0 goes straight to
// p-Thomas. Without this option (or with WithK(AutoK)) the Table III
// heuristic applies.
func WithK(k int) Option { return func(c *config) { c.k = k } }

// WithSubTileScale sets the Table I sub-tile scale factor c >= 1:
// each thread produces c outputs per window advance.
func WithSubTileScale(scale int) Option { return func(c *config) { c.c = scale } }

// WithBlocksPerSystem splits every system across g thread blocks
// (paper Fig. 11(b)); useful for small batches of very large systems.
func WithBlocksPerSystem(g int) Option { return func(c *config) { c.blocks = g } }

// WithKernelFusion enables the §III.C fusion of tiled PCR with the
// p-Thomas forward sweep (one block per system required).
func WithKernelFusion() Option { return func(c *config) { c.fuse = true } }

// WithSystemsPerBlock multiplexes q systems (each with its own sliding
// window) onto one thread block — paper Fig. 11(c).
func WithSystemsPerBlock(q int) Option { return func(c *config) { c.mux = q } }

// WithVerification checks the relative residual of every solution and
// fails the solve if it exceeds the size-scaled tolerance; the error
// names the offending systems. Off by default (it costs an extra O(MN)
// host pass). For recovery instead of rejection, use SolveGuarded.
func WithVerification() Option { return func(c *config) { c.verify = true } }

// WithWorkers bounds the worker pool a reusable Solver shards its
// replayed solves across; 0 (the default) means GOMAXPROCS. The
// one-shot entry points record device events on a single lane, so this
// only affects Solver reuse.
func WithWorkers(n int) Option { return func(c *config) { c.workers = n } }

// WithGuard sets the escalation policy SolveGuarded applies (refinement
// rounds, tolerance, pivoting fallback, condition estimation, fault
// injection). Without it SolveGuarded uses the zero-value production
// defaults. Ignored by the unguarded Solve/SolveBatch entry points.
func WithGuard(p GuardPolicy) Option { return func(c *config) { c.guard = &p } }

// WithRetry bounds the recovery from transient device faults: how many
// times a faulted shard is re-executed (with capped exponential
// backoff) before its systems degrade to the host pivoting path — or,
// with RetryPolicy.NoDegrade, before the solve fails with ErrFaulted.
// The zero value is the production default (3 retries, 50µs base
// backoff capped at 2ms, degradation on). Only consulted when the
// device injects faults (WithFaultInjection).
func WithRetry(p RetryPolicy) Option { return func(c *config) { c.retry = p } }

// WithWatchdog sets the modeled per-launch hang budget: a hung kernel
// block counts as detected and killed after this much device time,
// charged to FaultReport.WastedModeledTime. 0 (the default) means 10ms.
func WithWatchdog(budget time.Duration) Option {
	return func(c *config) { c.watchdog = budget }
}

// WithFaultInjection attaches a deterministic transient-fault injector
// to the solve's device: kernel launches abort, corrupt their stores,
// or hang according to the injector's seeded schedule, exercising the
// retry/degradation machinery (see RetryPolicy). The caller's Device
// value is not mutated — the solver works on a private copy carrying
// the injector. Nil restores fault-free execution. For chaos tests and
// demos (tridsolve -chaos), never enabled by default.
func WithFaultInjection(inj *FaultInjector) Option {
	return func(c *config) { c.inject = inj }
}

// Result reports a solve: the solution and what the solver did.
type Result[T Real] struct {
	// X holds the solutions in natural order: row j of system i at
	// X[i*N+j].
	X []T
	// K is the number of PCR steps actually used.
	K int
	// BlocksPerSystem is the Fig. 11 mapping used by the front-end.
	BlocksPerSystem int
	// Fused reports whether kernel fusion was active.
	Fused bool
	// Stats aggregates the recorded device events.
	Stats *Stats
	// ModeledTime is the device cost model's execution-time estimate
	// for the kernels of this solve.
	ModeledTime time.Duration
	// WallTime is the measured host execution time of the simulated
	// kernels (not comparable to real GPU time; use ModeledTime for
	// paper-style comparisons).
	WallTime time.Duration
	// Faults describes the fault-recovery activity of the solve (nil
	// when the solve ran without an injector or cancellable context, or
	// on the fused/multiplexed fallback paths, which have no recovery
	// layer).
	Faults *FaultReport
}

func buildConfig(opts []Option) config {
	c := config{k: AutoK}
	for _, o := range opts {
		o(&c)
	}
	if c.device == nil {
		c.device = GTX480()
	}
	if c.inject != nil {
		// Attach the injector to a private device copy so the caller's
		// Device (possibly shared across solvers) stays fault-free.
		d := *c.device
		d.Faults = c.inject
		c.device = &d
	}
	return c
}

// faultsOf extracts a solve's fault report when anything fired.
func faultsOf(rep *core.Report) *FaultReport {
	if rep.Faults != nil && rep.Faults.Any() {
		return rep.Faults
	}
	return nil
}

// SolveBatch solves every system of the batch with the hybrid solver.
func SolveBatch[T Real](b *Batch[T], opts ...Option) (*Result[T], error) {
	c := buildConfig(opts)
	if err := b.Validate(); err != nil {
		return nil, fmt.Errorf("gputrid: invalid batch: %w", err)
	}
	start := time.Now()
	x, rep, err := core.Solve(c.coreConfig(), b)
	if err != nil {
		return nil, fmt.Errorf("gputrid: %w", err)
	}
	wall := time.Since(start)
	if c.verify {
		if err := verifyBatch(b, x); err != nil {
			return nil, err
		}
	}
	return &Result[T]{
		X:               x,
		K:               rep.K,
		BlocksPerSystem: rep.BlocksPerSystem,
		Fused:           rep.Fused,
		Stats:           rep.Stats,
		ModeledTime:     secondsToDuration(modeled[T](c.device, rep)),
		WallTime:        wall,
		Faults:          faultsOf(rep),
	}, nil
}

// SolveBatchCtx is SolveBatch with cooperative cancellation: once ctx
// is done the solve stops promptly (between kernel blocks and during
// retry backoff waits) and returns an error matching both ErrCancelled
// and the context's own error, with no goroutine leaks. Combine with
// WithFaultInjection and WithRetry to exercise transient-fault
// recovery; the result's Faults field reports what the recovery layer
// did.
func SolveBatchCtx[T Real](ctx context.Context, b *Batch[T], opts ...Option) (*Result[T], error) {
	c := buildConfig(opts)
	if err := b.Validate(); err != nil {
		return nil, fmt.Errorf("gputrid: invalid batch: %w", err)
	}
	p, err := core.NewPipeline[T](c.coreConfig(), b.M, b.N)
	if err != nil {
		return nil, fmt.Errorf("gputrid: %w", err)
	}
	defer p.Close()
	x := make([]T, b.M*b.N)
	start := time.Now()
	if err := p.SolveIntoCtx(ctx, x, b); err != nil {
		return nil, fmt.Errorf("gputrid: %w", err)
	}
	wall := time.Since(start)
	if c.verify {
		if err := verifyBatch(b, x); err != nil {
			return nil, err
		}
	}
	rep := p.Report()
	return &Result[T]{
		X:               x,
		K:               rep.K,
		BlocksPerSystem: rep.BlocksPerSystem,
		Fused:           rep.Fused,
		Stats:           rep.Stats,
		ModeledTime:     secondsToDuration(modeled[T](c.device, rep)),
		WallTime:        wall,
		Faults:          faultsOf(rep),
	}, nil
}

// verifyBatch checks every system's residual against the size-scaled
// tolerance and, on failure, names the offending systems — so one bad
// system out of M is reported as such instead of as an anonymous batch
// maximum. The negated comparison also catches NaN residuals (from
// division by a vanishing pivot), which compare false against any
// threshold.
func verifyBatch[T Real](b *Batch[T], x []T) error {
	return verifyBatchInto(b, x, make([]float64, b.M))
}

// verifyBatchInto is verifyBatch computing the residuals into a
// caller-owned scratch slice of length M — the reusable Solver's
// verification path, which allocates only when building the failure
// message.
func verifyBatchInto[T Real](b *Batch[T], x []T, rs []float64) error {
	matrix.ResidualsPerSystemInto(rs, b, x)
	return residualFailure(rs, b.M, matrix.ResidualTolerance[T](b.N))
}

// verifyInterleavedInto is verifyBatchInto for interleaved data: rs
// must have length M and scratch at least 3M (the interleaved scan's
// per-system partials).
func verifyInterleavedInto[T Real](v *Interleaved[T], xi []T, rs, scratch []float64) error {
	matrix.ResidualsPerSystemInterleavedInto(rs, scratch, v, xi, v.M)
	return residualFailure(rs, v.M, matrix.ResidualTolerance[T](v.N))
}

// residualFailure turns a per-system residual scan into nil or an
// error naming the offending systems.
func residualFailure(rs []float64, m int, tol float64) error {
	var bad []int
	for i, r := range rs[:m] {
		if !(r <= tol) {
			bad = append(bad, i)
		}
	}
	if len(bad) == 0 {
		return nil
	}
	const maxListed = 8
	var sb strings.Builder
	fmt.Fprintf(&sb, "gputrid: verification failed: %d of %d systems exceed tolerance %.1e:", len(bad), m, tol)
	for j, i := range bad {
		if j == maxListed {
			fmt.Fprintf(&sb, " ... and %d more", len(bad)-maxListed)
			break
		}
		if j > 0 {
			sb.WriteString(",")
		}
		fmt.Fprintf(&sb, " system %d (residual %.3e)", i, rs[i])
	}
	return fmt.Errorf("%s", sb.String())
}

// Solve solves a single tridiagonal system.
func Solve[T Real](s *System[T], opts ...Option) (*Result[T], error) {
	b := matrix.NewBatch[T](1, s.N())
	b.SetSystem(0, s)
	return SolveBatch(b, opts...)
}

// SolveInterleaved solves a batch stored in the interleaved layout,
// returning the solutions interleaved the same way (X[j*M+i]). It
// runs the interleaved-native pipeline entry: on the k = 0 path the
// kernels consume the planes directly — no layout conversion at all —
// and results are bitwise identical to converting and calling
// SolveBatch on the same data.
func SolveInterleaved[T Real](v *Interleaved[T], opts ...Option) (*Result[T], error) {
	c := buildConfig(opts)
	if err := validateInterleaved(v); err != nil {
		return nil, fmt.Errorf("gputrid: invalid batch: %w", err)
	}
	p, err := core.NewPipeline[T](c.coreConfig(), v.M, v.N)
	if err != nil {
		return nil, fmt.Errorf("gputrid: %w", err)
	}
	defer p.Close()
	xi := make([]T, v.M*v.N)
	start := time.Now()
	if err := p.SolveInterleavedInto(xi, v); err != nil {
		return nil, fmt.Errorf("gputrid: %w", err)
	}
	wall := time.Since(start)
	if c.verify {
		rs := make([]float64, 4*v.M)
		if err := verifyInterleavedInto(v, xi, rs[:v.M], rs[v.M:]); err != nil {
			return nil, err
		}
	}
	rep := p.Report()
	return &Result[T]{
		X:               xi,
		K:               rep.K,
		BlocksPerSystem: rep.BlocksPerSystem,
		Fused:           rep.Fused,
		Stats:           rep.Stats,
		ModeledTime:     secondsToDuration(modeled[T](c.device, rep)),
		WallTime:        wall,
		Faults:          faultsOf(rep),
	}, nil
}

// validateInterleaved rejects non-finite coefficients in an
// interleaved batch, naming the offending system and row like
// Batch.Validate does for the contiguous layout.
func validateInterleaved[T Real](v *Interleaved[T]) error {
	if v.M <= 0 || v.N <= 0 {
		return fmt.Errorf("batch shape %dx%d is empty", v.M, v.N)
	}
	planes := []struct {
		name string
		s    []T
	}{{"lower", v.Lower}, {"diag", v.Diag}, {"upper", v.Upper}, {"rhs", v.RHS}}
	for _, pl := range planes {
		if len(pl.s) != v.M*v.N {
			return fmt.Errorf("%s plane has %d elements, want M*N=%d", pl.name, len(pl.s), v.M*v.N)
		}
		for idx, val := range pl.s {
			if !num.IsFinite(val) {
				return fmt.Errorf("system %d row %d: non-finite %s entry %v", idx%v.M, idx/v.M, pl.name, val)
			}
		}
	}
	return nil
}

// SolveCPU solves the batch on the host with the sequential Thomas
// algorithm — the reference/baseline path (MKL-sequential proxy).
func SolveCPU[T Real](b *Batch[T]) ([]T, error) {
	x, err := cpu.SolveBatchSeq(b)
	if err != nil {
		return nil, fmt.Errorf("gputrid: %w", err)
	}
	return x, nil
}

// Residual returns the worst normwise relative backward error of a
// batch solution, for callers that verify selectively.
func Residual[T Real](b *Batch[T], x []T) float64 {
	return matrix.MaxResidual(b, x)
}

// ConditionEst estimates the 1-norm condition number of the system with
// the Hager-Higham estimator (a handful of pivoted tridiagonal solves).
// Large values warn that the non-pivoting fast path may lose accuracy;
// +Inf indicates a numerically singular matrix.
func ConditionEst[T Real](s *System[T]) float64 {
	return matrix.Cond1Est(s, cpu.SolveGTSV[T])
}

// Factorization caches the elimination of a batch's matrices so
// repeated solves against new right-hand sides (time stepping, ADI)
// skip the matrix work.
type Factorization[T Real] = cpu.BatchFactorization[T]

// Factor eliminates every matrix of the batch once; call
// Factorization.Solve for each new set of right-hand sides.
func Factor[T Real](b *Batch[T]) (*Factorization[T], error) {
	f, err := cpu.FactorBatch(b)
	if err != nil {
		return nil, fmt.Errorf("gputrid: %w", err)
	}
	return f, nil
}

// HybridFactorization caches a batch's k-step PCR transform and
// p-Thomas pivots so new right-hand sides replay at a fraction of the
// elimination work (see FactorHybrid).
type HybridFactorization[T Real] = core.HybridFactorization[T]

// FactorHybrid factors the batch for the hybrid algorithm at depth k
// (AutoK applies the Table III heuristic). Use it when the same
// matrices are solved against many right-hand sides, as in ADI time
// stepping.
func FactorHybrid[T Real](b *Batch[T], k int) (*HybridFactorization[T], error) {
	f, err := core.FactorHybrid(b, k)
	if err != nil {
		return nil, fmt.Errorf("gputrid: %w", err)
	}
	return f, nil
}

// SolveCPUPivoting solves the batch on the host with LU decomposition
// and partial pivoting (the dgtsv algorithm) — stable for any
// nonsingular system, including ones the fast non-pivoting paths
// cannot handle.
func SolveCPUPivoting[T Real](b *Batch[T]) ([]T, error) {
	x, err := cpu.SolveBatchGTSV(b)
	if err != nil {
		return nil, fmt.Errorf("gputrid: %w", err)
	}
	return x, nil
}

// GuardPolicy tunes SolveGuarded's escalation ladder; the zero value is
// the production default (two refinement rounds, size-scaled tolerance,
// pivoting fallback on, lazy condition estimates for rescued systems).
type GuardPolicy = guard.Policy

// GuardStage names the rung that produced a system's final answer.
type GuardStage = guard.Stage

// The escalation rungs, in order of application.
const (
	StageFast   = guard.StageFast   // hybrid fast path, unmodified
	StageRefine = guard.StageRefine // repaired by iterative refinement
	StagePivot  = guard.StagePivot  // rescued by the pivoting GTSV path
	StageFailed = guard.StageFailed // unrecoverable; carries a SolveError
)

// SystemReport records what the guarded pipeline did to one system.
type SystemReport = guard.SystemReport

// SolveError is the typed per-system failure of a guarded solve;
// retrieve it from the returned error with errors.As, or match the
// class with errors.Is(err, ErrUnrecoverable) / ErrNonFiniteInput.
type SolveError = guard.SolveError

// GuardFault and GuardInjection form the deterministic fault-injection
// hook: chosen systems are corrupted at seeded rows before or after the
// fast solve, driving specific rungs of the ladder — for chaos tests
// and demos, never enabled by default.
type (
	GuardFault     = guard.Fault
	GuardInjection = guard.Injection
)

// The injectable fault kinds and the rung each one lands on.
const (
	FaultCorruptSolution = guard.FaultCorruptSolution // -> StageRefine
	FaultZeroDiagonal    = guard.FaultZeroDiagonal    // -> StagePivot
	FaultSingularMatrix  = guard.FaultSingularMatrix  // -> StageFailed
	FaultNaNCoefficient  = guard.FaultNaNCoefficient  // -> StageFailed (garbage-in)
)

// RetryPolicy bounds recovery from transient device faults; see
// WithRetry. The zero value is the production default.
type RetryPolicy = core.RetryPolicy

// FaultReport describes what the fault-recovery layer did during one
// solve: fault and retry counts per kernel, the systems degraded to
// the host pivoting path, and the modeled device time the faulted
// attempts wasted.
type FaultReport = core.FaultReport

// FaultInjector deterministically injects transient faults into kernel
// launches; see WithFaultInjection. Decisions are a pure function of
// (Seed, kernel, block, attempt) — independent of goroutine
// scheduling — so a given seed reproduces the same faults every run.
type FaultInjector = gpusim.Injector

// ScheduledFault pins a fault to an exact (kernel, block) site; see
// FaultInjector.Schedule.
type ScheduledFault = gpusim.ScheduledFault

// DeviceFaultKind enumerates the injectable transient launch faults.
type DeviceFaultKind = gpusim.FaultKind

// The transient launch-fault kinds (distinct from the guard's
// data-level Fault* injection kinds above).
const (
	FaultAbort   = gpusim.FaultAbort   // launch fails before completing
	FaultCorrupt = gpusim.FaultCorrupt // stores poisoned, fault detected
	FaultHang    = gpusim.FaultHang    // block stalls past the watchdog
)

// LaunchError is the typed transient fault a kernel launch surfaces;
// retrieve it from a returned error with errors.As.
type LaunchError = gpusim.LaunchError

// Typed execution-failure errors, matchable with errors.Is.
var (
	// ErrCancelled matches errors from solves stopped by context
	// cancellation or deadline expiry. The same error also matches the
	// underlying context.Canceled / context.DeadlineExceeded.
	ErrCancelled = core.ErrCancelled
	// ErrFaulted matches errors from transient device faults that
	// survived the retry budget and could not be degraded away.
	ErrFaulted = core.ErrFaulted
)

// ErrUnrecoverable matches (via errors.Is) every per-system SolveError:
// the escalation ladder ran out of rungs for that system.
var ErrUnrecoverable = guard.ErrUnrecoverable

// ErrNonFiniteInput matches SolveErrors for systems whose coefficients
// already contained NaN/Inf on entry — garbage-in, distinguished from
// numerical breakdown inside a solver.
var ErrNonFiniteInput = guard.ErrNonFiniteInput

// GuardedResult extends Result with the per-system diagnosis of a
// guarded solve.
type GuardedResult[T Real] struct {
	*Result[T]
	// Reports has one entry per system in batch order: the stage used,
	// residual before/after, refinement rounds, condition estimate.
	Reports []SystemReport
	// Failed lists the unrecoverable systems (empty on full success);
	// the same errors are joined into SolveGuarded's returned error.
	Failed []*SolveError
}

// Stages counts the systems per final stage, for summary diagnostics.
func (r *GuardedResult[T]) Stages() map[GuardStage]int {
	m := make(map[GuardStage]int)
	for _, rep := range r.Reports {
		m[rep.Stage]++
	}
	return m
}

// SolveGuarded solves the batch with per-system fault isolation: the
// hybrid fast path handles the bulk, every system's residual is then
// checked individually, and only failing systems escalate through
// iterative refinement, a pivoting GTSV re-solve, and finally a typed
// SolveError — one degenerate system never poisons the other M-1.
//
// The returned X is always fully finite (unrecoverable systems are
// zeroed and diagnosed instead of emitting Inf/NaN). The error is nil
// when every system passed tolerance, possibly after rescue; otherwise
// it joins the per-system SolveErrors while the result still carries
// the healthy solutions — check Failed (or errors.As) rather than
// discarding the result. Configure the ladder with WithGuard; the other
// options (WithK, WithDevice, ...) apply to the fast path as usual.
func SolveGuarded[T Real](b *Batch[T], opts ...Option) (*GuardedResult[T], error) {
	c := buildConfig(opts)
	var pol GuardPolicy
	if c.guard != nil {
		pol = *c.guard
	}
	start := time.Now()
	gres, err := guard.Solve(c.coreConfig(), b, pol)
	if gres == nil {
		return nil, fmt.Errorf("gputrid: %w", err)
	}
	wall := time.Since(start)
	rep := gres.FastReport
	res := &GuardedResult[T]{
		Result: &Result[T]{
			X:               gres.X,
			K:               rep.K,
			BlocksPerSystem: rep.BlocksPerSystem,
			Fused:           rep.Fused,
			Stats:           rep.Stats,
			ModeledTime:     secondsToDuration(modeled[T](c.device, rep)),
			WallTime:        wall,
			Faults:          faultsOf(rep),
		},
		Reports: gres.Reports,
		Failed:  gres.Failed,
	}
	if err != nil {
		err = fmt.Errorf("gputrid: %w", err)
	}
	return res, err
}

// ConditionEstBatch estimates the 1-norm condition number of the
// selected systems of a batch (result[j] for systems[j]); see
// ConditionEst. The guard's report uses it lazily — estimation costs a
// few pivoted solves per system, so callers should pass only the
// systems they care about (e.g. the ones that needed rescue).
func ConditionEstBatch[T Real](b *Batch[T], systems []int) []float64 {
	return matrix.Cond1EstBatch(b, systems, cpu.SolveGTSV[T])
}

func modeled[T Real](d *Device, rep *core.Report) float64 {
	return core.ModeledTime[T](d, rep)
}

func secondsToDuration(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}
