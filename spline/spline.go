// Package spline exposes the module's batched cubic-spline
// interpolation (paper ref. [8]): fit M curves at once — one
// tridiagonal system per curve, solved as a single batch on the hybrid
// solver — then evaluate values, derivatives, and integrals.
//
//	s, err := spline.Fit(m, knots, 0, h, y, spline.FitOptions[float64]{})
//	v := s.Eval(curve, x)
package spline

import (
	"gputrid/internal/num"
	ispline "gputrid/internal/spline"
)

// BC selects the end condition.
type BC = ispline.BC

const (
	// Natural sets the second derivative to zero at both ends.
	Natural = ispline.Natural
	// Clamped prescribes the first derivative at both ends.
	Clamped = ispline.Clamped
)

// Batch holds M fitted splines over uniform knots.
type Batch[T num.Real] = ispline.Batch[T]

// FitOptions configures a fit; the zero value selects natural splines
// on the hybrid GPU backend.
type FitOptions[T num.Real] = ispline.FitOptions[T]

// Fit constructs M cubic splines through y (curve i at
// [i*knots, (i+1)*knots)) over knots x_j = x0 + j·h.
func Fit[T num.Real](m, knots int, x0, h float64, y []T, opts FitOptions[T]) (*Batch[T], error) {
	return ispline.Fit(m, knots, x0, h, y, opts)
}
