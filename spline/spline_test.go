package spline_test

import (
	"math"
	"testing"

	"gputrid/spline"
)

func TestPublicSplineEndToEnd(t *testing.T) {
	m, knots := 8, 33
	h := 1.0 / float64(knots-1)
	y := make([]float64, m*knots)
	for i := 0; i < m; i++ {
		for j := 0; j < knots; j++ {
			y[i*knots+j] = math.Sin(float64(i+1) * math.Pi * float64(j) * h)
		}
	}
	s, err := spline.Fit(m, knots, 0, h, y, spline.FitOptions[float64]{})
	if err != nil {
		t.Fatal(err)
	}
	// Knot interpolation.
	for i := 0; i < m; i++ {
		if d := math.Abs(s.Eval(i, 10*h) - y[i*knots+10]); d > 1e-12 {
			t.Errorf("curve %d: knot interpolation off by %g", i, d)
		}
	}
	// Integral of sin(kπx) over [0,1] = (1-cos kπ)/(kπ).
	for i := 0; i < m; i++ {
		k := float64(i + 1)
		want := (1 - math.Cos(k*math.Pi)) / (k * math.Pi)
		if d := math.Abs(float64(s.Integral(i)) - want); d > 1e-3 {
			t.Errorf("curve %d: integral %g, want %g", i, s.Integral(i), want)
		}
	}
}
