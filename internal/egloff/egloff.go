// Package egloff implements the global-memory PCR solver for large
// tridiagonal systems in the style of Egloff's finite-difference PDE
// solvers (paper refs [14][15]): every PCR step runs over the whole
// batch in global memory, one kernel launch per step, until all rows
// decouple and the solution is read off as x = d/b.
//
// It is the natural "scalable but brute-force" baseline between the
// in-shared-memory family (internal/zhang, capacity-limited) and the
// paper's hybrid (internal/core): it handles any size, but does
// O(N·log N) work with a full DRAM round trip and a global
// synchronization per step. The harness's extra-large experiment
// quantifies exactly that gap.
package egloff

import (
	"gputrid/internal/gpusim"
	"gputrid/internal/matrix"
	"gputrid/internal/num"
	"gputrid/internal/pcr"
)

// Report describes the execution.
type Report struct {
	Steps   int // PCR steps = kernel launches (excluding the final read-off)
	Stats   *gpusim.Stats
	Kernels []*gpusim.Stats
}

// Solve solves the batch with full global-memory PCR on the device,
// returning the solutions in natural order.
func Solve[T num.Real](dev *gpusim.Device, b *matrix.Batch[T]) ([]T, *Report, error) {
	if dev == nil {
		dev = gpusim.GTX480()
	}
	m, n := b.M, b.N
	rep := &Report{Stats: &gpusim.Stats{}}

	cur := &buffers[T]{
		a: append([]T(nil), b.Lower...),
		b: append([]T(nil), b.Diag...),
		c: append([]T(nil), b.Upper...),
		d: append([]T(nil), b.RHS...),
	}
	for i := 0; i < m; i++ {
		cur.a[i*n] = 0
		cur.c[i*n+n-1] = 0
	}
	nxt := &buffers[T]{
		a: make([]T, m*n), b: make([]T, m*n), c: make([]T, m*n), d: make([]T, m*n),
	}

	const bt = 256
	total := m * n
	grid := num.CeilDiv(total, bt)

	for stride := 1; stride < n; stride <<= 1 {
		ga, gb := gpusim.NewGlobal(cur.a), gpusim.NewGlobal(cur.b)
		gc, gd := gpusim.NewGlobal(cur.c), gpusim.NewGlobal(cur.d)
		na, nb := gpusim.NewGlobal(nxt.a), gpusim.NewGlobal(nxt.b)
		nc, nd := gpusim.NewGlobal(nxt.c), gpusim.NewGlobal(nxt.d)
		s := stride
		load := func(t *gpusim.Thread, sys, i int) pcr.Row[T] {
			if i < 0 || i >= n {
				return pcr.Identity[T]()
			}
			g := sys*n + i
			return pcr.Row[T]{A: ga.Load(t, g), B: gb.Load(t, g), C: gc.Load(t, g), D: gd.Load(t, g)}
		}
		st, err := dev.Launch("egloffPCR", gpusim.LaunchConfig{Grid: grid, Block: bt},
			func(blk *gpusim.Block) {
				blk.PhaseNoSync(func(t *gpusim.Thread) {
					gi := blk.ID*bt + t.ID
					if gi >= total {
						return
					}
					sys, i := gi/n, gi%n
					r := pcr.Combine(load(t, sys, i-s), load(t, sys, i), load(t, sys, i+s))
					t.Eliminations(1)
					na.Store(t, gi, r.A)
					nb.Store(t, gi, r.B)
					nc.Store(t, gi, r.C)
					nd.Store(t, gi, r.D)
				})
			})
		if err != nil {
			return nil, nil, err
		}
		rep.Steps++
		rep.Kernels = append(rep.Kernels, st)
		rep.Stats.Add(st)
		cur, nxt = nxt, cur
	}

	// Read-off kernel: x = d / b.
	x := make([]T, total)
	gb := gpusim.NewGlobal(cur.b)
	gd := gpusim.NewGlobal(cur.d)
	gx := gpusim.NewGlobal(x)
	st, err := dev.Launch("egloffReadoff", gpusim.LaunchConfig{Grid: grid, Block: bt},
		func(blk *gpusim.Block) {
			blk.PhaseNoSync(func(t *gpusim.Thread) {
				gi := blk.ID*bt + t.ID
				if gi >= total {
					return
				}
				gx.Store(t, gi, gd.Load(t, gi)/gb.Load(t, gi))
				t.Flops(1)
			})
		})
	if err != nil {
		return nil, nil, err
	}
	rep.Kernels = append(rep.Kernels, st)
	rep.Stats.Add(st)
	return x, rep, nil
}

type buffers[T num.Real] struct {
	a, b, c, d []T
}
