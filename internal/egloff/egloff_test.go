package egloff

import (
	"testing"
	"testing/quick"

	"gputrid/internal/cpu"
	"gputrid/internal/gpusim"
	"gputrid/internal/matrix"
	"gputrid/internal/num"
	"gputrid/internal/workload"
)

func dev() *gpusim.Device { return gpusim.GTX480() }

func TestSolveMatchesThomas(t *testing.T) {
	for _, tc := range []struct{ m, n int }{
		{1, 1}, {1, 2}, {2, 64}, {3, 100}, {1, 4096}, {4, 1000},
	} {
		b := workload.Batch[float64](workload.DiagDominant, tc.m, tc.n, uint64(tc.m*tc.n))
		x, rep, err := Solve(dev(), b)
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		want, err := cpu.SolveBatchSeq(b)
		if err != nil {
			t.Fatal(err)
		}
		if d := matrix.MaxRelDiff(x, want); d > 1e-9 {
			t.Errorf("%+v: differs from Thomas by %g", tc, d)
		}
		if wantSteps := num.CeilLog2(tc.n); rep.Steps != wantSteps {
			t.Errorf("%+v: steps = %d, want %d", tc, rep.Steps, wantSteps)
		}
	}
}

func TestLaunchPerStep(t *testing.T) {
	b := workload.Batch[float64](workload.DiagDominant, 1, 1024, 3)
	_, rep, err := Solve(dev(), b)
	if err != nil {
		t.Fatal(err)
	}
	// 10 PCR steps + 1 read-off, each a separate launch: the global
	// synchronization cost this baseline pays.
	if rep.Stats.Launches != 11 {
		t.Errorf("launches = %d, want 11", rep.Stats.Launches)
	}
}

func TestWorkIsNLogN(t *testing.T) {
	b := workload.Batch[float64](workload.DiagDominant, 1, 4096, 5)
	_, rep, err := Solve(dev(), b)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(4096) * 12; rep.Stats.Eliminations != want {
		t.Errorf("eliminations = %d, want N·log2(N) = %d", rep.Stats.Eliminations, want)
	}
}

func TestNilDeviceDefaults(t *testing.T) {
	b := workload.Batch[float64](workload.DiagDominant, 1, 32, 7)
	if _, _, err := Solve(nil, b); err != nil {
		t.Fatal(err)
	}
}

func TestProperty(t *testing.T) {
	f := func(seed uint32, mRaw, nRaw uint8) bool {
		m := int(mRaw)%4 + 1
		n := int(nRaw)%300 + 1
		b := workload.Batch[float64](workload.DiagDominant, m, n, uint64(seed))
		x, _, err := Solve(dev(), b)
		if err != nil {
			return false
		}
		return matrix.MaxResidual(b, x) <= matrix.ResidualTolerance[float64](n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
