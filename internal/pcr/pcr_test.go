package pcr

import (
	"testing"
	"testing/quick"

	"gputrid/internal/cpu"
	"gputrid/internal/matrix"
	"gputrid/internal/num"
	"gputrid/internal/workload"
)

func refSolve(t *testing.T, s *matrix.System[float64]) []float64 {
	t.Helper()
	x, err := cpu.Thomas(s)
	if err != nil {
		t.Fatal(err)
	}
	return x
}

func TestPCRSolveMatchesThomas(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 15, 16, 17, 63, 64, 100, 256, 1000} {
		s := workload.System[float64](workload.DiagDominant, n, uint64(n)*3+1)
		x := Solve(s)
		want := refSolve(t, s)
		if d := matrix.MaxRelDiff(x, want); d > 1e-9 {
			t.Errorf("n=%d: PCR vs Thomas max rel diff %g", n, d)
		}
		if err := matrix.CheckSolution(s, x); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
	}
}

func TestReduceZeroStepsIsClone(t *testing.T) {
	s := workload.System[float64](workload.DiagDominant, 32, 5)
	r := Reduce(s, 0)
	if matrix.MaxAbsDiff(r.Diag, s.Diag) != 0 || matrix.MaxAbsDiff(r.RHS, s.RHS) != 0 {
		t.Error("Reduce(0) changed the system")
	}
	r.Diag[0] = 999
	if s.Diag[0] == 999 {
		t.Error("Reduce(0) aliases input")
	}
}

func TestReduceDecouplesSubsystems(t *testing.T) {
	// After k steps, row i must couple only to i±2^k: solving the 2^k
	// interleaved subsystems independently must solve the original.
	for _, tc := range []struct{ n, k int }{
		{64, 1}, {64, 2}, {64, 3}, {64, 6}, {100, 2}, {17, 3}, {8, 3},
	} {
		s := workload.System[float64](workload.DiagDominant, tc.n, uint64(tc.n*10+tc.k))
		r := Reduce(s, tc.k)
		subs := Subsystems(r, tc.k)
		x := make([]float64, tc.n)
		sols := make([][]float64, len(subs))
		for i, sub := range subs {
			xs, err := cpu.Thomas(sub)
			if err != nil {
				t.Fatalf("n=%d k=%d sub=%d: %v", tc.n, tc.k, i, err)
			}
			sols[i] = xs
		}
		ScatterSolution(x, sols, tc.k)
		if err := matrix.CheckSolution(s, x); err != nil {
			t.Errorf("n=%d k=%d: %v", tc.n, tc.k, err)
		}
		want := refSolve(t, s)
		if d := matrix.MaxRelDiff(x, want); d > 1e-9 {
			t.Errorf("n=%d k=%d: subsystem solve differs from Thomas by %g", tc.n, tc.k, d)
		}
	}
}

func TestSubsystemCrossCouplingIsZero(t *testing.T) {
	n, k := 128, 4
	s := workload.System[float64](workload.DiagDominant, n, 77)
	r := Reduce(s, k)
	p := 1 << k
	// Boundary rows of each subsystem must have (near-)zero outward
	// coupling: rows i < p have a==0, rows i >= n-p have c==0.
	for i := 0; i < p; i++ {
		if r.Lower[i] != 0 {
			t.Errorf("row %d lower coupling %g, want 0", i, r.Lower[i])
		}
	}
	for i := n - p; i < n; i++ {
		if r.Upper[i] != 0 {
			t.Errorf("row %d upper coupling %g, want 0", i, r.Upper[i])
		}
	}
}

func TestStepMatchesReduceOneStep(t *testing.T) {
	s := workload.System[float64](workload.Toeplitz, 40, 3)
	dst := matrix.NewSystem[float64](40)
	Step(dst, s, 1)
	r := Reduce(s, 1)
	if matrix.MaxAbsDiff(dst.Diag, r.Diag) != 0 || matrix.MaxAbsDiff(dst.RHS, r.RHS) != 0 {
		t.Error("Step(stride=1) != Reduce(1)")
	}
}

func TestPCRPreservesSolution(t *testing.T) {
	// PCR row operations must not change the solution set: the reduced
	// system evaluated at the original solution must be consistent.
	// Note: after k steps the stored coefficients couple rows at
	// distance 2^k, so the rows are evaluated at that stride rather
	// than with System.Apply.
	n := 64
	s := workload.System[float64](workload.DiagDominant, n, 11)
	want := refSolve(t, s)
	for k := 1; k <= 6; k++ {
		r := Reduce(s, k)
		p := 1 << k
		for i := 0; i < n; i++ {
			ax := r.Diag[i] * want[i]
			if i-p >= 0 {
				ax += r.Lower[i] * want[i-p]
			}
			if i+p < n {
				ax += r.Upper[i] * want[i+p]
			}
			if num.Abs(ax-r.RHS[i]) > 1e-8*(1+num.Abs(r.RHS[i])) {
				t.Fatalf("k=%d row %d: reduced system inconsistent with solution (%g vs %g)",
					k, i, ax, r.RHS[i])
			}
		}
	}
}

func TestCRMatchesThomas(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 15, 16, 17, 31, 32, 33, 64, 100, 255, 256, 257, 1000} {
		s := workload.System[float64](workload.DiagDominant, n, uint64(n)*7+2)
		x := SolveCR(s)
		want := refSolve(t, s)
		if d := matrix.MaxRelDiff(x, want); d > 1e-9 {
			t.Errorf("n=%d: CR vs Thomas max rel diff %g", n, d)
		}
	}
}

func TestCROtherKinds(t *testing.T) {
	for _, kind := range []workload.Kind{workload.Toeplitz, workload.Heat, workload.Spline} {
		s := workload.System[float64](kind, 129, 9)
		if err := matrix.CheckSolution(s, SolveCR(s)); err != nil {
			t.Errorf("%v: %v", kind, err)
		}
	}
}

func TestRDMatchesThomas(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7, 8, 16, 17, 64, 100, 256, 500} {
		s := workload.System[float64](workload.DiagDominant, n, uint64(n)*13+5)
		x := SolveRD(s)
		want := refSolve(t, s)
		if d := matrix.MaxRelDiff(x, want); d > 1e-7 {
			t.Errorf("n=%d: RD vs Thomas max rel diff %g", n, d)
		}
	}
}

func TestRDNormalizationPreventsOverflow(t *testing.T) {
	// Without per-round normalization the minors P(i) overflow for
	// large diagonals; with it, RD must survive n=4096, |b| ~ 1e3.
	n := 4096
	s := matrix.NewSystem[float64](n)
	r := num.NewRNG(3)
	for i := 0; i < n; i++ {
		if i > 0 {
			s.Lower[i] = r.Range(-1, 1)
		}
		if i < n-1 {
			s.Upper[i] = r.Range(-1, 1)
		}
		s.Diag[i] = 1000 + r.Range(0, 10)
		s.RHS[i] = r.Range(-1, 1)
	}
	x := SolveRD(s)
	if err := matrix.CheckSolution(s, x); err != nil {
		t.Fatal(err)
	}
}

func TestAllSolversAgreeProperty(t *testing.T) {
	f := func(seed uint32, nRaw uint16, kindRaw uint8) bool {
		n := int(nRaw)%300 + 1
		kind := workload.Kind(int(kindRaw) % 4)
		s := workload.System[float64](kind, n, uint64(seed))
		want, err := cpu.Thomas(s)
		if err != nil {
			return false
		}
		for _, x := range [][]float64{Solve(s), SolveCR(s), SolveRD(s)} {
			if matrix.MaxRelDiff(x, want) > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestFloat32Solvers(t *testing.T) {
	s := workload.System[float32](workload.DiagDominant, 128, 21)
	for name, x := range map[string][]float32{
		"pcr": Solve(s), "cr": SolveCR(s), "rd": SolveRD(s),
	} {
		if err := matrix.CheckSolution(s, x); err != nil {
			t.Errorf("%s float32: %v", name, err)
		}
	}
}

func TestEliminationStepCounts(t *testing.T) {
	if EliminationSteps(1024) != 10*1024+1 {
		t.Errorf("PCR steps for 1024 = %d", EliminationSteps(1024))
	}
	if EliminationSteps(0) != 0 {
		t.Error("PCR steps for 0")
	}
	if CREliminationSteps(1024) != 21 {
		t.Errorf("CR steps for 1024 = %d", CREliminationSteps(1024))
	}
	if RDEliminationSteps(1024) != 30 {
		t.Errorf("RD steps for 1024 = %d", RDEliminationSteps(1024))
	}
	if CREliminationSteps(-1) != 0 || RDEliminationSteps(0) != 0 {
		t.Error("degenerate step counts")
	}
}

func TestSubsystemsShapes(t *testing.T) {
	s := workload.System[float64](workload.DiagDominant, 10, 1)
	subs := Subsystems(s, 2) // p=4: sizes 3,3,2,2
	sizes := []int{3, 3, 2, 2}
	if len(subs) != 4 {
		t.Fatalf("got %d subsystems", len(subs))
	}
	for i, sub := range subs {
		if sub.N() != sizes[i] {
			t.Errorf("sub %d size %d, want %d", i, sub.N(), sizes[i])
		}
	}
	// More subsystems than rows: only n singleton systems.
	subs = Subsystems(workload.System[float64](workload.DiagDominant, 3, 2), 3)
	if len(subs) != 3 {
		t.Errorf("n=3 k=3: got %d subsystems, want 3", len(subs))
	}
}
