// Package pcr implements the classic parallel tridiagonal reductions
// the paper builds on and compares against: cyclic reduction (CR),
// parallel cyclic reduction (PCR, both full and incomplete k-step), and
// Stone's recursive doubling (RD). These are the clean reference
// formulations — sequential Go code operating on whole systems — used
// to validate the tiled/streamed GPU kernels and to reason about
// elimination-step counts; the production data path lives in
// internal/tiledpcr and internal/core.
package pcr

import (
	"gputrid/internal/matrix"
	"gputrid/internal/num"
)

// Row is one equation of a tridiagonal system: A·x[left] + B·x[mid] +
// C·x[right] = D, where left/mid/right are implied by the row's
// position and the current PCR coupling distance.
type Row[T num.Real] struct {
	A, B, C, D T
}

// Identity returns the virtual row used beyond the matrix boundary:
// 0·x + 1·x + 0·x = 0, i.e. a decoupled unknown pinned to zero.
// Combining against identity rows is what makes every PCR schedule in
// this module correct for arbitrary n without special boundary code.
func Identity[T num.Real]() Row[T] { return Row[T]{A: 0, B: 1, C: 0, D: 0} }

// Combine performs one PCR elimination (paper Eqs. 5-6): it rewrites
// mid using its current neighbors up and dn, eliminating the coupling
// to them and coupling instead to their outer neighbors. Every PCR
// variant in this module — naive, streamed, tiled, GPU kernel — funnels
// through this one function, so different schedules of the same
// reduction produce bitwise-identical coefficients (up to the sign of
// floating-point zeros at boundaries).
//
// Callers must ensure mid.A == 0 whenever up is the boundary identity
// row and mid.C == 0 whenever dn is (true for any well-formed system
// whose Lower[0] and Upper[n-1] are zero), so the quotients below
// vanish exactly.
func Combine[T num.Real](up, mid, dn Row[T]) Row[T] {
	k1 := mid.A / up.B
	k2 := mid.C / dn.B
	return Row[T]{
		A: -up.A * k1,
		B: mid.B - up.C*k1 - dn.A*k2,
		C: -dn.C * k2,
		D: mid.D - up.D*k1 - dn.D*k2,
	}
}

// RowAt returns row i of s, or the boundary identity row when i is
// outside [0, n).
func RowAt[T num.Real](s *matrix.System[T], i int) Row[T] {
	if i < 0 || i >= s.N() {
		return Identity[T]()
	}
	return Row[T]{A: s.Lower[i], B: s.Diag[i], C: s.Upper[i], D: s.RHS[i]}
}

// SetRow stores r as row i of s.
func SetRow[T num.Real](s *matrix.System[T], i int, r Row[T]) {
	s.Lower[i], s.Diag[i], s.Upper[i], s.RHS[i] = r.A, r.B, r.C, r.D
}

// Normalize zeroes the structurally ignored corner coefficients
// Lower[0] and Upper[n-1] in place, establishing the precondition of
// Combine. Solvers call it on their private copies.
func Normalize[T num.Real](s *matrix.System[T]) {
	if n := s.N(); n > 0 {
		s.Lower[0] = 0
		s.Upper[n-1] = 0
	}
}

// Step applies one PCR forward-reduction step with the given stride to
// every row of src, writing the reduced system to dst (Jacobi-style:
// all reads from src, all writes to dst; dst and src must not alias).
// src must be normalized (see Normalize).
//
// After the step, row i couples only to rows i±2·stride, so repeated
// steps with strides 1, 2, 4, ... 2^(k-1) leave the rows partitioned
// into 2^k independent interleaved subsystems (paper Fig. 3-4).
func Step[T num.Real](dst, src *matrix.System[T], stride int) {
	n := src.N()
	if dst.N() != n {
		panic("pcr: Step size mismatch")
	}
	for i := 0; i < n; i++ {
		SetRow(dst, i, Combine(RowAt(src, i-stride), RowAt(src, i), RowAt(src, i+stride)))
	}
}

// Reduce applies k PCR steps (strides 1, 2, ..., 2^(k-1)) and returns
// the reduced system. The input is not modified.
func Reduce[T num.Real](s *matrix.System[T], k int) *matrix.System[T] {
	cur := s.Clone()
	Normalize(cur)
	if k <= 0 {
		return cur
	}
	next := matrix.NewSystem[T](s.N())
	stride := 1
	for step := 0; step < k; step++ {
		Step(next, cur, stride)
		cur, next = next, cur
		stride <<= 1
	}
	return cur
}

// Solve runs full PCR — ceil(log2 n) reduction steps until every row is
// decoupled — and returns the solution x[i] = d[i]/b[i].
// Work is O(n log n); step count is logn + 1 in the paper's accounting.
func Solve[T num.Real](s *matrix.System[T]) []T {
	n := s.N()
	x := make([]T, n)
	if n == 0 {
		return x
	}
	r := Reduce(s, num.CeilLog2(n))
	for i := 0; i < n; i++ {
		x[i] = r.RHS[i] / r.Diag[i]
	}
	return x
}

// Subsystems extracts the 2^k independent subsystems left by k PCR
// steps: subsystem r consists of rows r, r+2^k, r+2·2^k, ... in order.
// The s.Lower/Upper entries crossing subsystem ends are structurally
// zero after the reduction and are dropped.
func Subsystems[T num.Real](s *matrix.System[T], k int) []*matrix.System[T] {
	n := s.N()
	p := 1 << k
	out := make([]*matrix.System[T], 0, p)
	for r := 0; r < p && r < n; r++ {
		size := (n - r + p - 1) / p
		sub := matrix.NewSystem[T](size)
		for j := 0; j < size; j++ {
			i := r + j*p
			sub.Lower[j] = s.Lower[i]
			sub.Diag[j] = s.Diag[i]
			sub.Upper[j] = s.Upper[i]
			sub.RHS[j] = s.RHS[i]
		}
		if size > 0 {
			sub.Lower[0] = 0
			sub.Upper[size-1] = 0
		}
		out = append(out, sub)
	}
	return out
}

// ScatterSolution writes subsystem solutions produced from Subsystems
// back into a length-n solution vector in original row order.
func ScatterSolution[T num.Real](x []T, subs [][]T, k int) {
	p := 1 << k
	for r, xs := range subs {
		for j, v := range xs {
			x[r+j*p] = v
		}
	}
}

// EliminationSteps returns the paper's Table II step count for full PCR
// on a 2^n-row system: n·2^n + 1 total row updates... expressed per the
// paper as (n·2^n + 1) aggregate elimination work for input size 2^n.
// For a general size N it returns ceil(log2 N)·N + 1.
func EliminationSteps(n int) int64 {
	if n <= 0 {
		return 0
	}
	return int64(num.CeilLog2(n))*int64(n) + 1
}
