package pcr

import (
	"gputrid/internal/matrix"
	"gputrid/internal/num"
)

// SolveCR solves the system with cyclic (odd-even) reduction, the
// two-phase O(n) parallel algorithm of paper §II.A.2: forward reduction
// halves the active rows each level; backward substitution then solves
// the eliminated rows down the tree (paper Figs. 1-2). Handles
// arbitrary n, not just powers of two. The input is not modified.
func SolveCR[T num.Real](s *matrix.System[T]) []T {
	n := s.N()
	x := make([]T, n)
	if n == 0 {
		return x
	}
	w := s.Clone()
	Normalize(w)

	// Forward reduction. At level with span s, rows whose 1-based index
	// is a multiple of s are rewritten (one Combine with stride s/2) to
	// couple only to rows at ±s. Updates within a level are
	// independent; later levels only read rows updated at earlier
	// levels, so in-place updating is safe because the rows a level
	// writes (multiples of s) are disjoint from the rows it reads
	// (odd multiples of s/2).
	for span := 2; span <= n; span <<= 1 {
		half := span >> 1
		for i := span - 1; i < n; i += span {
			SetRow(w, i, Combine(RowAt(w, i-half), RowAt(w, i), RowAt(w, i+half)))
		}
	}

	// Backward substitution. The top level holds rows whose neighbors
	// at ±span/2 all fell outside the matrix; solve them directly,
	// then descend, solving each level from its already-solved parents
	// (paper Eq. 7). solved[i] tracks availability for safety checks.
	top := num.NextPow2(n + 1)
	for span := top; span >= 2; span >>= 1 {
		half := span >> 1
		for i := half - 1; i < n; i += span {
			v := w.RHS[i]
			if j := i - half; j >= 0 {
				v -= w.Lower[i] * x[j]
			}
			if j := i + half; j < n {
				v -= w.Upper[i] * x[j]
			}
			x[i] = v / w.Diag[i]
		}
	}
	return x
}

// CREliminationSteps returns the paper's step count for CR on an n-row
// system: 2·log2(n) + 1 parallel steps (Table/§II.A.2 accounting).
func CREliminationSteps(n int) int64 {
	if n <= 0 {
		return 0
	}
	return 2*int64(num.CeilLog2(n)) + 1
}
