package pcr

import (
	"gputrid/internal/matrix"
	"gputrid/internal/num"
)

// SolveRD solves the system with Stone's recursive doubling (paper
// ref. [13]), the third classic parallel algorithm the paper surveys.
// The Thomas recurrences are rewritten as first/second-order linear
// recurrences and evaluated with log-depth parallel prefix scans:
//
//  1. the pivots q_i = b'_i of the LU factorization, from the leading
//     principal minors P(i) (a second-order recurrence, scanned as 2×2
//     matrix products, normalized each round to avoid overflow);
//  2. the forward-substitution values y_i (first-order affine scan);
//  3. the back-substitution values x_i (first-order affine scan, run
//     in reverse).
//
// Work is O(n log n) and the algorithm is well known to be the least
// numerically robust of the family — fine on the diagonally dominant
// inputs used throughout the paper.
func SolveRD[T num.Real](s *matrix.System[T]) []T {
	n := s.N()
	x := make([]T, n)
	if n == 0 {
		return x
	}
	a, b, c, d := s.Lower, s.Diag, s.Upper, s.RHS

	// Stage 1: q_i via prefix products of M_i = [[b_i, -a_i*c_{i-1}],[1,0]].
	// w holds the running prefix W_i = M_i ... M_0 as (w00,w01,w10,w11).
	w00 := make([]T, n)
	w01 := make([]T, n)
	w10 := make([]T, n)
	w11 := make([]T, n)
	for i := 0; i < n; i++ {
		w00[i] = b[i]
		if i > 0 {
			w01[i] = -a[i] * c[i-1]
		}
		w10[i] = 1
		w11[i] = 0
	}
	t00 := make([]T, n)
	t01 := make([]T, n)
	t10 := make([]T, n)
	t11 := make([]T, n)
	for stride := 1; stride < n; stride <<= 1 {
		for i := 0; i < n; i++ {
			if j := i - stride; j >= 0 {
				// W_i <- W_i * W_j (2x2 product), then normalize.
				n00 := w00[i]*w00[j] + w01[i]*w10[j]
				n01 := w00[i]*w01[j] + w01[i]*w11[j]
				n10 := w10[i]*w00[j] + w11[i]*w10[j]
				n11 := w10[i]*w01[j] + w11[i]*w11[j]
				scale := num.Max(num.Max(num.Abs(n00), num.Abs(n01)),
					num.Max(num.Abs(n10), num.Abs(n11)))
				if scale > 0 {
					inv := 1 / scale
					n00, n01, n10, n11 = n00*inv, n01*inv, n10*inv, n11*inv
				}
				t00[i], t01[i], t10[i], t11[i] = n00, n01, n10, n11
			} else {
				t00[i], t01[i], t10[i], t11[i] = w00[i], w01[i], w10[i], w11[i]
			}
		}
		w00, t00 = t00, w00
		w01, t01 = t01, w01
		w10, t10 = t10, w10
		w11, t11 = t11, w11
	}
	// v_i = W_i (1,0)^T = (P(i+1), P(i)) up to scale; q_i = ratio.
	q := make([]T, n)
	for i := 0; i < n; i++ {
		q[i] = w00[i] / w10[i]
	}

	// Stage 2: y_i = alpha_i y_{i-1} + beta_i with alpha_i = -a_i/q_{i-1}.
	alpha := w00 // reuse scratch
	beta := w01
	for i := 0; i < n; i++ {
		if i == 0 {
			alpha[i] = 0
		} else {
			alpha[i] = -a[i] / q[i-1]
		}
		beta[i] = d[i]
	}
	scanAffine(alpha, beta, t00, t01, false)
	y := beta

	// Stage 3: x_i = alpha_i x_{i+1} + beta_i with alpha_i = -c_i/q_i,
	// run right-to-left.
	alpha2 := w10
	beta2 := w11
	for i := 0; i < n; i++ {
		if i == n-1 {
			alpha2[i] = 0
		} else {
			alpha2[i] = -c[i] / q[i]
		}
		beta2[i] = y[i] / q[i]
	}
	scanAffine(alpha2, beta2, t00, t01, true)
	copy(x, beta2)
	return x
}

// scanAffine evaluates the linear recurrence v_i = alpha_i v_pred +
// beta_i by recursive doubling, where pred is i-1 (reverse=false) or
// i+1 (reverse=true). On return beta holds v. ta/tb are scratch slices
// of the same length.
func scanAffine[T num.Real](alpha, beta, ta, tb []T, reverse bool) {
	n := len(alpha)
	for stride := 1; stride < n; stride <<= 1 {
		for i := 0; i < n; i++ {
			j := i - stride
			if reverse {
				j = i + stride
			}
			if j >= 0 && j < n {
				// Compose: v_i = alpha_i * v_j-chain + beta_i where the
				// j-chain is itself (alpha_j, beta_j) over its pred.
				ta[i] = alpha[i] * alpha[j]
				tb[i] = alpha[i]*beta[j] + beta[i]
			} else {
				ta[i], tb[i] = alpha[i], beta[i]
			}
		}
		copy(alpha, ta[:n])
		copy(beta, tb[:n])
	}
}

// RDEliminationSteps returns the parallel step count for recursive
// doubling: 3 scans of ceil(log2 n) rounds each.
func RDEliminationSteps(n int) int64 {
	if n <= 0 {
		return 0
	}
	return 3 * int64(num.CeilLog2(n))
}
