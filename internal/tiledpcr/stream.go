package tiledpcr

import (
	"fmt"

	"gputrid/internal/matrix"
	"gputrid/internal/num"
	"gputrid/internal/pcr"
)

// ring retains the most recent values of one pipeline level, indexed by
// absolute row index. Reads outside [0, n) return the boundary identity
// row; reads of retained interior indices return the stored value.
type ring[T num.Real] struct {
	buf []pcr.Row[T]
	n   int // system size, for identity clamping
	hi  int // highest index stored so far
}

func newRing[T num.Real](capacity, n int) *ring[T] {
	return &ring[T]{buf: make([]pcr.Row[T], capacity), n: n, hi: -1 << 30}
}

func (r *ring[T]) put(i int, v pcr.Row[T]) {
	r.buf[mod(i, len(r.buf))] = v
	if i > r.hi {
		r.hi = i
	}
}

func (r *ring[T]) get(i int) pcr.Row[T] {
	if i < 0 || i >= r.n {
		return pcr.Identity[T]()
	}
	if i > r.hi || i <= r.hi-len(r.buf) {
		panic(fmt.Sprintf("tiledpcr: ring read of index %d outside retained window (hi=%d cap=%d)",
			i, r.hi, len(r.buf)))
	}
	return r.buf[mod(i, len(r.buf))]
}

func mod(i, m int) int {
	i %= m
	if i < 0 {
		i += m
	}
	return i
}

// Streamer is the row-at-a-time buffered sliding window: push raw rows
// in order and it emits fully k-step-reduced rows, each exactly once,
// with the minimal dependency cache of the paper §III.A (level j keeps
// its newest 2^(j+1)+1 values).
//
// rawStart is the index of the first raw row that will be pushed. For a
// whole-system reduction it is -f(k) (rows before 0 are virtual
// identity rows and are pushed as such); for an interior tile it is
// tileStart - f(k), making the first f(k) pushed rows the halo whose
// reduction work is the g(k) warm-up redundancy.
type Streamer[T num.Real] struct {
	k, n     int
	rawStart int
	next     int // next raw index expected by Push
	levels   []*ring[T]
	emit     func(i int, row pcr.Row[T])

	// Eliminations counts Combine invocations, the paper's cost unit.
	Eliminations int64
	// WarmupBefore marks the start of this streamer's useful output
	// range; eliminations of values below it are counted separately in
	// WarmupElims (they re-create values another tile also computes).
	WarmupBefore int
	WarmupElims  int64
}

// NewStreamer builds a streamer for an n-row system and k PCR steps.
// emit receives each level-k row in strictly increasing index order.
func NewStreamer[T num.Real](n, k, rawStart int, emit func(i int, row pcr.Row[T])) *Streamer[T] {
	if k < 0 {
		panic("tiledpcr: negative k")
	}
	st := &Streamer[T]{k: k, n: n, rawStart: rawStart, next: rawStart, emit: emit,
		WarmupBefore: -1 << 30}
	st.levels = make([]*ring[T], k)
	for l := 0; l < k; l++ {
		st.levels[l] = newRing[T]((2<<l)+2, n)
	}
	return st
}

// Push feeds the next raw row (index st.next). Rows outside [0, n) must
// be pushed as identity rows; PushAuto handles that for callers reading
// from a System.
func (st *Streamer[T]) Push(row pcr.Row[T]) {
	r := st.next
	st.next++
	if st.k == 0 {
		if r >= 0 && r < st.n {
			st.emit(r, row)
		}
		return
	}
	if r >= 0 && r < st.n {
		st.levels[0].put(r, row)
	}
	for j := 1; j <= st.k; j++ {
		i := r - F(j)
		if i < 0 || i >= st.n {
			continue
		}
		// Values whose dependency cone dips below rawStart would be
		// garbage; they are exactly the ones no valid output needs.
		if st.rawStart > -F(st.k) && i < st.rawStart+F(j) {
			continue
		}
		h := 1 << (j - 1)
		lv := st.levels[j-1]
		v := pcr.Combine(lv.get(i-h), lv.get(i), lv.get(i+h))
		st.Eliminations++
		if i < st.WarmupBefore {
			st.WarmupElims++
		}
		if j == st.k {
			st.emit(i, v)
		} else {
			st.levels[j].put(i, v)
		}
	}
}

// Drain pushes the trailing f(k) virtual rows so the pipeline emits its
// final outputs. After Drain, all rows in [firstOut, n) have been
// emitted.
func (st *Streamer[T]) Drain() {
	for i := 0; i < F(st.k); i++ {
		st.Push(pcr.Identity[T]())
	}
}

// StreamReduce performs a k-step PCR reduction of s in a single
// streaming pass with zero redundant work and O(2^k) state, returning
// the reduced system. It produces coefficients identical to
// pcr.Reduce(s, k) (up to signs of zeros at boundaries).
func StreamReduce[T num.Real](s *matrix.System[T], k int) *matrix.System[T] {
	n := s.N()
	out := matrix.NewSystem[T](n)
	st := NewStreamer(n, k, -F(k), func(i int, row pcr.Row[T]) {
		pcr.SetRow(out, i, row)
	})
	src := s.Clone()
	pcr.Normalize(src)
	for r := -F(k); r < n; r++ {
		st.Push(pcr.RowAt(src, r))
	}
	st.Drain()
	return out
}

// BlockedStats reports the work performed by ReduceBlocked and the
// redundancy predicted by the paper's Eq. 8-9 for cross-checking.
type BlockedStats struct {
	Tiles             int
	RawLoads          int64 // raw rows read from the system, incl. halo re-reads
	RedundantLoads    int64 // halo rows (outside the tile's own output range)
	Eliminations      int64 // total Combine invocations
	WarmupElims       int64 // eliminations of values below each tile's start
	MinimalLoads      int64 // n: the zero-redundancy load count
	MinimalElims      int64 // k·n: the zero-redundancy elimination count
	PredictedRedLoads int64 // per-tile halo sizes summed (f(k) per side, clipped)
	PredictedWarmups  int64 // g(k) per interior tile start, clipped
}

// ReduceBlocked reduces s by k PCR steps with the system split into
// independent tiles of tileRows output rows (paper Fig. 11(b)): each
// tile re-reads an f(k)-row halo on each side and re-runs the g(k)
// warm-up eliminations of Eq. 9. It returns the reduced system plus
// the measured and predicted redundancy.
func ReduceBlocked[T num.Real](s *matrix.System[T], k, tileRows int) (*matrix.System[T], *BlockedStats) {
	n := s.N()
	if tileRows <= 0 {
		tileRows = n
	}
	src := s.Clone()
	pcr.Normalize(src)
	out := matrix.NewSystem[T](n)
	bs := &BlockedStats{
		MinimalElims: int64(k) * int64(n),
		MinimalLoads: int64(n),
	}
	for start := 0; start < n; start += tileRows {
		end := start + tileRows
		if end > n {
			end = n
		}
		bs.Tiles++
		rawStart := start - F(k)
		st := NewStreamer(n, k, rawStart, func(i int, row pcr.Row[T]) {
			if i >= start && i < end {
				pcr.SetRow(out, i, row)
			}
		})
		st.WarmupBefore = start
		for r := rawStart; r < end+F(k); r++ {
			st.Push(pcr.RowAt(src, r))
			if r >= 0 && r < n {
				bs.RawLoads++
				if r < start || r >= end {
					bs.RedundantLoads++
				}
			}
		}
		bs.Eliminations += st.Eliminations
		bs.WarmupElims += st.WarmupElims

		// Predictions with clipping at the system ends.
		bs.PredictedRedLoads += int64(minInt(F(k), start)) + int64(minInt(F(k), n-end))
		if start > 0 {
			g := 0
			for j := 1; j <= k; j++ {
				g += minInt(start, F(k)-F(j))
			}
			bs.PredictedWarmups += int64(g)
		}
	}
	return out, bs
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
