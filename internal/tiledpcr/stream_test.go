package tiledpcr

import (
	"testing"
	"testing/quick"

	"gputrid/internal/matrix"
	"gputrid/internal/pcr"
	"gputrid/internal/workload"
)

func TestF(t *testing.T) {
	want := map[int]int{0: 0, 1: 1, 2: 3, 3: 7, 4: 15, 8: 255}
	for k, w := range want {
		if got := F(k); got != w {
			t.Errorf("F(%d) = %d, want %d", k, got, w)
		}
	}
	if F(-1) != 0 {
		t.Error("F(-1) != 0")
	}
}

func TestG(t *testing.T) {
	// g(k) = k·f(k) − sum_{i=0}^{k} f(i); hand-computed values:
	// g(1) = 1·1 − (0+1) = 0
	// g(2) = 2·3 − (0+1+3) = 2
	// g(3) = 3·7 − (0+1+3+7) = 10
	// g(4) = 4·15 − (0+1+3+7+15) = 34
	want := map[int]int{0: 0, 1: 0, 2: 2, 3: 10, 4: 34}
	for k, w := range want {
		if got := G(k); got != w {
			t.Errorf("G(%d) = %d, want %d", k, got, w)
		}
	}
}

func TestGEqualsWarmupSum(t *testing.T) {
	// g(k) must equal sum_{j=1}^{k} (f(k) − f(j)), the warm-up work of
	// one boundary — the identity that connects Eq. 9 to the pipeline.
	for k := 0; k <= 12; k++ {
		sum := 0
		for j := 1; j <= k; j++ {
			sum += F(k) - F(j)
		}
		if G(k) != sum {
			t.Errorf("k=%d: G=%d, warm-up sum=%d", k, G(k), sum)
		}
	}
}

func TestPropertiesTableI(t *testing.T) {
	// Table I for k=2, c=1: sub tile 4, cache <= 3·2^k, threads 4,
	// elims per thread 2, per sub tile 8.
	p := Properties(2, 1)
	if p.SubTileSize != 4 || p.ThreadsPerBlock != 4 ||
		p.ElimsPerThread != 2 || p.ElimsPerSubTile != 8 {
		t.Errorf("Properties(2,1) = %+v", p)
	}
	if p.CacheSize != 3*F(2) {
		t.Errorf("cache = %d, want %d", p.CacheSize, 3*F(2))
	}
	// Scaling in c.
	p = Properties(3, 4)
	if p.SubTileSize != 32 || p.ElimsPerThread != 12 || p.ElimsPerSubTile != 96 {
		t.Errorf("Properties(3,4) = %+v", p)
	}
	// Cache bound of Table I: 3·sum 2^i <= 3·2^k.
	for k := 1; k <= 10; k++ {
		if Properties(k, 1).CacheSize > 3*(1<<k) {
			t.Errorf("k=%d: cache exceeds 3·2^k", k)
		}
	}
}

func TestSharedBytesFitsGTX480ForTableIII(t *testing.T) {
	// The paper's Table III configurations must fit in 48KB of shared
	// memory in double precision — that is the point of the window.
	for _, k := range []int{5, 6, 7, 8} {
		if got := SharedBytes[float64](k, 1); got > 48*1024 {
			t.Errorf("k=%d: window needs %d bytes shared, exceeds 48KB", k, got)
		}
	}
}

func TestPropertiesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Properties(-1, 0) did not panic")
		}
	}()
	Properties(-1, 0)
}

func TestStreamReduceMatchesNaive(t *testing.T) {
	for _, tc := range []struct{ n, k int }{
		{1, 1}, {2, 1}, {8, 2}, {16, 3}, {17, 3}, {64, 4}, {100, 3},
		{256, 8}, {300, 5}, {5, 4}, {1000, 6}, {64, 0},
	} {
		s := workload.System[float64](workload.DiagDominant, tc.n, uint64(tc.n*31+tc.k))
		got := StreamReduce(s, tc.k)
		want := pcr.Reduce(s, tc.k)
		for _, pair := range []struct {
			name string
			g, w []float64
		}{
			{"lower", got.Lower, want.Lower},
			{"diag", got.Diag, want.Diag},
			{"upper", got.Upper, want.Upper},
			{"rhs", got.RHS, want.RHS},
		} {
			if d := matrix.MaxAbsDiff(pair.g, pair.w); d != 0 {
				t.Errorf("n=%d k=%d: streamed %s differs from naive by %g",
					tc.n, tc.k, pair.name, d)
			}
		}
	}
}

func TestStreamReduceEliminationCount(t *testing.T) {
	// Whole-system streaming must do exactly k·n eliminations minus the
	// values clipped at the ends — in our scheme every in-range value is
	// computed exactly once, so the count is exactly k·n.
	n, k := 128, 4
	s := workload.System[float64](workload.DiagDominant, n, 1)
	st := NewStreamer(n, k, -F(k), func(int, pcr.Row[float64]) {})
	src := s.Clone()
	pcr.Normalize(src)
	for r := -F(k); r < n; r++ {
		st.Push(pcr.RowAt(src, r))
	}
	st.Drain()
	if st.Eliminations != int64(k*n) {
		t.Errorf("eliminations = %d, want %d", st.Eliminations, k*n)
	}
}

func TestStreamerEmitsEachRowOnceInOrder(t *testing.T) {
	n, k := 75, 3
	s := workload.System[float64](workload.DiagDominant, n, 2)
	seen := make([]int, n)
	last := -1
	st := NewStreamer(n, k, -F(k), func(i int, _ pcr.Row[float64]) {
		if i <= last {
			t.Fatalf("emit out of order: %d after %d", i, last)
		}
		last = i
		seen[i]++
	})
	src := s.Clone()
	pcr.Normalize(src)
	for r := -F(k); r < n; r++ {
		st.Push(pcr.RowAt(src, r))
	}
	st.Drain()
	for i, c := range seen {
		if c != 1 {
			t.Errorf("row %d emitted %d times", i, c)
		}
	}
}

func TestReduceBlockedMatchesNaive(t *testing.T) {
	for _, tc := range []struct{ n, k, tile int }{
		{64, 2, 16}, {64, 3, 8}, {128, 4, 32}, {100, 3, 33}, {256, 5, 64},
		{50, 2, 50}, {31, 3, 10},
	} {
		s := workload.System[float64](workload.DiagDominant, tc.n, uint64(tc.n*7+tc.k))
		got, _ := ReduceBlocked(s, tc.k, tc.tile)
		want := pcr.Reduce(s, tc.k)
		if d := matrix.MaxAbsDiff(got.Diag, want.Diag); d != 0 {
			t.Errorf("n=%d k=%d tile=%d: blocked diag differs by %g", tc.n, tc.k, tc.tile, d)
		}
		if d := matrix.MaxAbsDiff(got.RHS, want.RHS); d != 0 {
			t.Errorf("n=%d k=%d tile=%d: blocked rhs differs by %g", tc.n, tc.k, tc.tile, d)
		}
	}
}

func TestReduceBlockedRedundancyMatchesEq89(t *testing.T) {
	// Interior tiles must measure exactly f(k) halo loads per side and
	// g(k) warm-up eliminations — the quantities of Eq. 8 and Eq. 9.
	for _, k := range []int{1, 2, 3, 4} {
		n, tile := 1024, 128
		s := workload.System[float64](workload.DiagDominant, n, uint64(k))
		_, bs := ReduceBlocked(s, k, tile)
		if bs.Tiles != n/tile {
			t.Fatalf("k=%d: tiles = %d", k, bs.Tiles)
		}
		if bs.RedundantLoads != bs.PredictedRedLoads {
			t.Errorf("k=%d: redundant loads %d, predicted %d",
				k, bs.RedundantLoads, bs.PredictedRedLoads)
		}
		// All tiles interior except the first: (tiles-1)·g(k).
		wantWarm := int64(bs.Tiles-1) * int64(G(k))
		if bs.WarmupElims != wantWarm || bs.PredictedWarmups != wantWarm {
			t.Errorf("k=%d: warm-up elims %d (predicted %d), want %d",
				k, bs.WarmupElims, bs.PredictedWarmups, wantWarm)
		}
		// Load redundancy per interior boundary is 2·f(k) (each side
		// re-reads f(k) rows of its neighbor).
		if want := int64(bs.Tiles-1) * 2 * int64(F(k)); bs.RedundantLoads != want {
			t.Errorf("k=%d: redundant loads %d, want %d", k, bs.RedundantLoads, want)
		}
	}
}

func TestReduceBlockedSingleTileNoRedundancy(t *testing.T) {
	s := workload.System[float64](workload.DiagDominant, 200, 4)
	_, bs := ReduceBlocked(s, 3, 0) // tileRows <= 0 means whole system
	if bs.Tiles != 1 || bs.RedundantLoads != 0 || bs.WarmupElims != 0 {
		t.Errorf("single tile has redundancy: %+v", bs)
	}
	if bs.RawLoads != 200 {
		t.Errorf("raw loads = %d, want 200", bs.RawLoads)
	}
}

func TestStreamReduceProperty(t *testing.T) {
	f := func(seed uint32, nRaw uint16, kRaw, tileRaw uint8) bool {
		n := int(nRaw)%400 + 1
		k := int(kRaw)%6 + 1
		tile := int(tileRaw)%n + 1
		s := workload.System[float64](workload.DiagDominant, n, uint64(seed))
		want := pcr.Reduce(s, k)
		streamed := StreamReduce(s, k)
		blocked, _ := ReduceBlocked(s, k, tile)
		return matrix.MaxAbsDiff(streamed.RHS, want.RHS) == 0 &&
			matrix.MaxAbsDiff(streamed.Diag, want.Diag) == 0 &&
			matrix.MaxAbsDiff(blocked.RHS, want.RHS) == 0 &&
			matrix.MaxAbsDiff(blocked.Diag, want.Diag) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
