// Package tiledpcr implements the paper's central contribution: tiled
// parallel cyclic reduction with the buffered sliding window (§III.A).
//
// k-step PCR transforms a system of N rows into 2^k independent
// interleaved subsystems. Done naively over tiles, every tile boundary
// costs f(k) redundant halo loads and g(k) redundant elimination steps
// (paper Eq. 8-9, Fig. 7). The buffered sliding window instead streams
// the system through shared memory once, caching exactly the
// intermediate values that later rows depend on, so no load and no
// elimination is ever repeated (Figs. 8-10, Table I).
//
// Three implementations live here, all funnelling through pcr.Combine
// and therefore producing identical coefficients:
//
//   - Streamer: a row-at-a-time pure-Go pipeline with per-level ring
//     buffers — the executable specification of the sliding window.
//   - ReduceBlocked: the Fig. 11(b) configuration, where a system is
//     split across independent tiles that each pay the halo redundancy;
//     used to validate f(k)/g(k) and as an ablation.
//   - Window: the gpusim kernel building block with the shared-memory
//     layout of Fig. 9-10 (history caches + staging + register tile),
//     used by the production hybrid solver in internal/core.
package tiledpcr

import "gputrid/internal/num"

// F returns f(k) = sum_{i=0}^{k-1} 2^i = 2^k - 1, the number of
// redundant memory accesses per tile boundary of naively tiled k-step
// PCR (paper Eq. 8). It is also the pipeline lag of the sliding
// window: level-k output i becomes computable once raw row i + f(k)
// has been loaded.
func F(k int) int {
	if k <= 0 {
		return 0
	}
	return (1 << k) - 1
}

// G returns g(k) = k·f(k) − sum_{i=0}^{k} f(i), the number of redundant
// elimination steps per tile boundary of naive tiling (paper Eq. 9).
func G(k int) int {
	if k <= 0 {
		return 0
	}
	sum := 0
	for i := 0; i <= k; i++ {
		sum += F(i)
	}
	return k*F(k) - sum
}

// WindowProperties are the derived quantities of paper Table I for a
// k-step window with sub-tile scale factor c >= 1.
type WindowProperties struct {
	K                     int // PCR steps
	C                     int // sub-tile scale factor
	SubTileSize           int // c·2^k rows processed per pipeline advance
	CacheSize             int // intermediate-results cache capacity, <= 3·2^k
	ThreadsPerBlock       int // 2^k
	ElimsPerThread        int // c·k per sub-tile
	ElimsPerSubTile       int // c·k·2^k
	SharedElemsPerCoeff   int // staging + caches, elements per coefficient array
	SharedBytesPerElement int // multiply by elem size and 4 coefficients for bytes
}

// Properties returns the Table I quantities for (k, c).
func Properties(k, c int) WindowProperties {
	if k < 0 || c < 1 {
		panic("tiledpcr: Properties requires k >= 0 and c >= 1")
	}
	sub := c << k
	p := WindowProperties{
		K:               k,
		C:               c,
		SubTileSize:     sub,
		CacheSize:       3 * F(k),
		ThreadsPerBlock: 1 << k,
		ElimsPerThread:  c * k,
		ElimsPerSubTile: c * k << k,
	}
	// Our window's concrete layout: one staging buffer of 2^k + sub + 1
	// elements plus per-level history caches totalling 2·f(k) + k
	// elements (level j keeps its newest 2^(j+1)+1 values — the extra
	// element per level is the paper's alignment margin), per
	// coefficient array. See Window for the derivation.
	p.SharedElemsPerCoeff = (1 << k) + sub + 1 + histTotal(k)
	p.SharedBytesPerElement = 4 * p.SharedElemsPerCoeff
	return p
}

// histTotal returns the summed capacity of the per-level history
// caches: sum_{j=0}^{k-1} (2^(j+1) + 1) = 2·f(k) + k.
func histTotal(k int) int {
	return 2*F(k) + k
}

// SharedBytes returns the shared-memory footprint of one window block
// for element type T.
func SharedBytes[T num.Real](k, c int) int {
	return Properties(k, c).SharedBytesPerElement * num.SizeOf[T]()
}
