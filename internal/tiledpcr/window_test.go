package tiledpcr

import (
	"testing"

	"gputrid/internal/gpusim"
	"gputrid/internal/matrix"
	"gputrid/internal/pcr"
	"gputrid/internal/workload"
)

func dev() *gpusim.Device { return gpusim.GTX480() }

func runKernel(t *testing.T, n, k, c, blocks int, seed uint64) (*matrix.System[float64], *matrix.System[float64], *gpusim.Stats) {
	t.Helper()
	s := workload.System[float64](workload.DiagDominant, n, seed)
	out := matrix.NewSystem[float64](n)
	st, err := ReduceKernel(dev(), s, out, k, c, blocks)
	if err != nil {
		t.Fatalf("n=%d k=%d c=%d blocks=%d: %v", n, k, c, blocks, err)
	}
	return s, out, st
}

func TestReduceKernelMatchesNaive(t *testing.T) {
	for _, tc := range []struct{ n, k, c, blocks int }{
		{64, 2, 1, 1},
		{64, 3, 1, 1},
		{128, 4, 2, 1},
		{100, 3, 1, 1},  // n not multiple of sub-tile
		{256, 5, 1, 2},  // multi-block
		{256, 4, 2, 4},  // multi-block, c=2
		{1000, 6, 1, 3}, // odd split
		{31, 3, 1, 1},   // tiny
		{8, 1, 1, 1},    // minimal k
		{512, 8, 1, 1},  // Table III largest k
		{300, 5, 3, 2},  // c=3
	} {
		s, out, _ := runKernel(t, tc.n, tc.k, tc.c, tc.blocks, uint64(tc.n*131+tc.k*7+tc.c))
		want := pcr.Reduce(s, tc.k)
		for _, pair := range []struct {
			name string
			g, w []float64
		}{
			{"lower", out.Lower, want.Lower},
			{"diag", out.Diag, want.Diag},
			{"upper", out.Upper, want.Upper},
			{"rhs", out.RHS, want.RHS},
		} {
			if d := matrix.MaxAbsDiff(pair.g, pair.w); d != 0 {
				t.Errorf("%+v: kernel %s differs from naive by %g", tc, pair.name, d)
			}
		}
	}
}

func TestReduceKernelLoadCount(t *testing.T) {
	// Single block: every element of the 4 input arrays is loaded
	// exactly once — the window's zero-redundancy guarantee. The only
	// extra useful-byte traffic is identity padding, which issues no
	// loads at all.
	n, k, c := 512, 4, 1
	_, _, st := runKernel(t, n, k, c, 1, 9)
	elemBytes := 8
	wantLoaded := int64(4 * n * elemBytes)
	if st.LoadedBytes != wantLoaded {
		t.Errorf("loaded bytes = %d, want %d (each element exactly once)",
			st.LoadedBytes, wantLoaded)
	}
	if st.StoredBytes != wantLoaded {
		t.Errorf("stored bytes = %d, want %d", st.StoredBytes, wantLoaded)
	}
}

func TestReduceKernelHaloRedundancy(t *testing.T) {
	// With two blocks, the second block re-reads its left halo and the
	// first block reads past its end: at least f(k) extra element loads
	// per side (Eq. 8), at most f(k)+S due to sub-tile alignment of the
	// load phases.
	n, k := 512, 4
	S := 1 << k
	_, _, one := runKernel(t, n, k, 1, 1, 10)
	_, _, two := runKernel(t, n, k, 1, 2, 10)
	extra := two.LoadedBytes - one.LoadedBytes
	lo := int64(2*F(k)) * 4 * 8
	hi := int64(2*(F(k)+S)) * 4 * 8
	if extra < lo || extra > hi {
		t.Errorf("halo bytes = %d, want in [%d, %d]", extra, lo, hi)
	}
}

func TestReduceKernelEliminationCount(t *testing.T) {
	// Eliminations = k levels × S per level × phases per block. For a
	// single block covering [0,n) with c=1: the first raw load starts
	// one sub-tile before row 0 and the pipeline lag is 2^k, so
	// phases = n/S + 2, total k·S·phases — the pipeline's exact work,
	// warm-up included.
	n, k, c := 512, 4, 1
	_, _, st := runKernel(t, n, k, c, 1, 11)
	S := c << k
	phases := n/S + 2
	want := int64(k) * int64(S) * int64(phases)
	if st.Eliminations != want {
		t.Errorf("eliminations = %d, want %d", st.Eliminations, want)
	}
}

func TestReduceKernelSharedFootprintMatchesTableI(t *testing.T) {
	for _, k := range []int{2, 5, 8} {
		c := 1
		_, _, st := runKernel(t, 600, k, c, 1, uint64(k))
		want := SharedBytes[float64](k, c)
		if st.SharedPerBlock != want {
			t.Errorf("k=%d: shared bytes %d, want %d", k, st.SharedPerBlock, want)
		}
		if st.ThreadsPerBlock != 1<<k {
			t.Errorf("k=%d: threads per block %d, want %d", k, st.ThreadsPerBlock, 1<<k)
		}
	}
}

func TestReduceKernelCoalescedLoads(t *testing.T) {
	// The load phase is unit-stride across threads, so load efficiency
	// must be high (loads of halo regions and partial warps allowed).
	_, _, st := runKernel(t, 4096, 5, 1, 1, 13)
	if eff := st.LoadEfficiency(dev().TransactionBytes); eff < 0.9 {
		t.Errorf("load efficiency %.3f, want >= 0.9", eff)
	}
}

func TestReduceKernelRejectsBadOutput(t *testing.T) {
	s := workload.System[float64](workload.DiagDominant, 64, 1)
	out := matrix.NewSystem[float64](32)
	if _, err := ReduceKernel(dev(), s, out, 3, 1, 1); err == nil {
		t.Error("size mismatch accepted")
	}
}

func TestNewWindowPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewWindow(k=0) did not panic")
		}
	}()
	_, err := dev().Launch("bad", gpusim.LaunchConfig{Grid: 1, Block: 1}, func(b *gpusim.Block) {
		NewWindow(b, 0, 1, 8, 0, Arrays[float64]{})
	})
	_ = err
}

func TestWindowOutRange(t *testing.T) {
	var w Window[float64]
	w.S = 8
	w.n = 100
	// Fully inside.
	if lo, hi := w.OutRange(16, 0, 100); lo != 0 || hi != 8 {
		t.Errorf("interior: %d %d", lo, hi)
	}
	// Warm-up clip at the front.
	if lo, hi := w.OutRange(-3, 0, 100); lo != 3 || hi != 8 {
		t.Errorf("front clip: %d %d", lo, hi)
	}
	// Clip at the end of the range and system.
	if lo, hi := w.OutRange(96, 0, 100); lo != 0 || hi != 4 {
		t.Errorf("end clip: %d %d", lo, hi)
	}
	// Fully outside.
	if lo, hi := w.OutRange(200, 0, 100); lo != hi {
		t.Errorf("outside: %d %d", lo, hi)
	}
}

func TestReduceKernelFloat32(t *testing.T) {
	n, k := 128, 3
	s := workload.System[float32](workload.DiagDominant, n, 5)
	out := matrix.NewSystem[float32](n)
	if _, err := ReduceKernel(dev(), s, out, k, 1, 1); err != nil {
		t.Fatal(err)
	}
	want := pcr.Reduce(s, k)
	if d := matrix.MaxAbsDiff(out.RHS, want.RHS); d != 0 {
		t.Errorf("float32 kernel differs by %g", d)
	}
}
