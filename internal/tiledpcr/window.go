package tiledpcr

import (
	"fmt"

	"gputrid/internal/gpusim"
	"gputrid/internal/matrix"
	"gputrid/internal/num"
	"gputrid/internal/pcr"
)

// Arrays bundles the four device-global coefficient arrays of a
// tridiagonal system (or batch of systems laid out back to back).
type Arrays[T num.Real] struct {
	A, B, C, D gpusim.Global[T]
}

// NewArrays wraps the coefficient slices as device-global arrays.
func NewArrays[T num.Real](a, b, c, d []T) Arrays[T] {
	return Arrays[T]{
		A: gpusim.NewGlobal(a),
		B: gpusim.NewGlobal(b),
		C: gpusim.NewGlobal(c),
		D: gpusim.NewGlobal(d),
	}
}

// SystemArrays wraps a System's storage as device-global arrays.
func SystemArrays[T num.Real](s *matrix.System[T]) Arrays[T] {
	return NewArrays(s.Lower, s.Diag, s.Upper, s.RHS)
}

// Window is the buffered sliding window of paper §III.A instantiated
// inside one simulated thread block. Its shared-memory layout follows
// Figs. 9-10:
//
//   - a staging buffer of 2^k + S + 1 elements per coefficient
//     (S = c·2^k, the sub-tile size) holding the level currently being
//     reduced — the "middle + bottom" of the paper's window;
//   - per-level history caches totalling 2·f(k) + k elements per
//     coefficient (level j keeps its newest 2^(j+1)+1 values) — the
//     paper's "top buffer" cache of intermediate dependencies;
//   - a register tile of S rows (the paper's §III.C register tiling)
//     receiving each level's fresh values between barriers, so the
//     staging buffer can be rebuilt in place without read/write races.
//
// The history caches hold one element more per level than the f(k)
// dependency minimum. That is the paper's alignment margin ("it can be
// solved by shifting the computation boundary by caching e5", Fig.
// 10(a)): it stretches the pipeline lag from f(k) = 2^k − 1 to exactly
// 2^k, so both the raw-load phase and the output sub-tile stay aligned
// to sub-tile boundaries and global accesses coalesce perfectly.
//
// Each raw element is loaded from global memory exactly once per block
// and each elimination is performed exactly once (plus warm-up work of
// about f(k) halo loads and g(k) eliminations per boundary when a
// system is split across blocks, exactly as the paper describes for
// Fig. 11(b)).
type Window[T num.Real] struct {
	blk     *gpusim.Block
	k, c, S int
	threads int
	n       int // rows in this system
	sysBase int // global offset of the system's row 0
	in      Arrays[T]

	// stage and hist model the window's __shared__ arrays. They are
	// plain slices (accessed like Shared.Data, with traffic accounted
	// in bulk via CountShared) so one Window's buffers can be re-bound
	// to a new block each launch instead of reallocated; Bind charges
	// sharedBytes against the block exactly as NewShared would. The
	// row-of-structs layout turns each 4-coefficient access into one
	// bounds check over one contiguous 4-element record; the recorded
	// traffic (bulk element counts) is layout-independent.
	stage       []pcr.Row[T]
	hist        []pcr.Row[T]
	sharedBytes int
	histOff     []int // offset of level j's (2^(j+1)+1)-element history
	r0          int   // first raw index of the current run (set by InitRun)

	// Out is the register tile: after each sub-tile phase it holds the
	// S freshly reduced level-k rows, Out[p] being row outBase+p.
	Out []pcr.Row[T]
}

// NewWindowBuffers allocates a window's buffers (shared-memory images,
// history offsets, register tile) for depth k and sub-tile scale c
// without binding them to a block. The result is reusable: call Bind
// to attach it to a block and a system before each run. Requires
// k >= 1 and c >= 1.
func NewWindowBuffers[T num.Real](k, c int) *Window[T] {
	if k < 1 || c < 1 {
		panic(fmt.Sprintf("tiledpcr: NewWindowBuffers requires k >= 1 and c >= 1, got k=%d c=%d", k, c))
	}
	w := &Window[T]{k: k, c: c, S: c << k, threads: 1 << k}
	stageCap := (1 << k) + w.S + 1
	w.histOff = make([]int, k)
	total := 0
	for j := 0; j < k; j++ {
		w.histOff[j] = total
		total += (2 << j) + 1
	}
	w.stage = make([]pcr.Row[T], stageCap)
	w.hist = make([]pcr.Row[T], total)
	w.sharedBytes = 4 * (stageCap + total) * num.SizeOf[T]()
	w.Out = make([]pcr.Row[T], w.S)
	return w
}

// Bind attaches the window to block blk for a system of n rows whose
// row 0 lives at global index sysBase of the arrays in, charging the
// window's shared-memory footprint against the block. It allocates
// nothing and returns w for chaining. Stale buffer contents from a
// previous run are harmless: InitRun re-initializes the history
// caches, every staged value is rewritten before it is read, and the
// only Out entries that could see leftover state are the pipeline
// warm-up rows outside OutRange, which callers already discard (the
// same dependency-cone argument that lets an interior block start from
// placeholder history, §III.A).
func (w *Window[T]) Bind(blk *gpusim.Block, n, sysBase int, in Arrays[T]) *Window[T] {
	w.blk = blk
	w.n = n
	w.sysBase = sysBase
	w.in = in
	blk.ChargeSharedAlloc(w.sharedBytes)
	return w
}

// NewWindow allocates the window's shared memory in block blk for a
// system of n rows whose row 0 lives at global index sysBase of the
// arrays in. Requires k >= 1 and c >= 1.
func NewWindow[T num.Real](blk *gpusim.Block, k, c, n, sysBase int, in Arrays[T]) *Window[T] {
	return NewWindowBuffers[T](k, c).Bind(blk, n, sysBase, in)
}

// Threads returns the thread-block width the window is designed for
// (2^k, per Table I).
func (w *Window[T]) Threads() int { return w.threads }

// loadRaw reads row i of the system from global memory with identity
// padding outside [0, n) and the Lower[0]/Upper[n-1] normalization of
// the solver convention.
func (w *Window[T]) loadRaw(t *gpusim.Thread, i int) pcr.Row[T] {
	if i < 0 || i >= w.n {
		return pcr.Identity[T]()
	}
	g := w.sysBase + i
	r := pcr.Row[T]{
		A: w.in.A.Load(t, g),
		B: w.in.B.Load(t, g),
		C: w.in.C.Load(t, g),
		D: w.in.D.Load(t, g),
	}
	if i == 0 {
		r.A = 0
	}
	if i == w.n-1 {
		r.C = 0
	}
	return r
}

// Run streams rows [outStart, outEnd) of the system through the
// window, performing the k-step reduction. After each sub-tile the
// fresh level-k rows sit in w.Out and sink is invoked with their base
// index; sink typically issues one more phase to store or consume them
// (e.g. the p-Thomas forward fusion of §III.C). Rows of Out outside
// [outStart, outEnd)∩[0, n) are pipeline warm-up garbage and must be
// ignored (see OutRange).
func (w *Window[T]) Run(outStart, outEnd int, sink func(outBase int)) {
	phases := w.InitRun(outStart, outEnd)
	for t := 0; t < phases; t++ {
		w.Advance(t, sink)
	}
}

// InitRun prepares the window for streaming rows [outStart, outEnd)
// and returns the number of sub-tile phases; callers then invoke
// Advance for t = 0..phases-1 (Run does exactly this; the split
// exists so several windows can be multiplexed phase by phase inside
// one block, the Fig. 11(c) configuration).
func (w *Window[T]) InitRun(outStart, outEnd int) (phases int) {
	if outEnd <= outStart {
		return 0
	}
	k, S := w.k, w.S
	lag := 1 << k // pipeline lag f(k)+1, sub-tile aligned (see type doc)
	// First raw index: far enough back that every output's dependency
	// cone is loaded (outStart − f(k)), rounded down to a sub-tile
	// boundary so every load phase starts aligned.
	r0 := floorAlign(outStart-F(k), S)

	// Initialize the history caches to identity rows. For outStart == 0
	// these are the true virtual rows before the system; for an
	// interior block they are placeholders whose influence dies inside
	// the f(k) warm-up zone (dependency-cone argument, §III.A).
	histLen := len(w.hist)
	w.blk.Phase(func(t *gpusim.Thread) {
		for p := t.ID; p < histLen; p += w.threads {
			w.hist[p] = pcr.Identity[T]() // B = 1: identity row
		}
	})
	w.blk.CountShared(0, int64(histLen)*4)

	w.r0 = r0
	return num.CeilDiv(outEnd+lag-r0, S)
}

// Advance runs sub-tile phase t of a run prepared by InitRun.
func (w *Window[T]) Advance(t int, sink func(outBase int)) {
	w.subTile(w.r0+t*w.S, sink)
}

// floorAlign rounds x down to a multiple of m (correct for negative x).
func floorAlign(x, m int) int {
	q := x / m
	if x%m != 0 && x < 0 {
		q--
	}
	return q * m
}

// OutRange returns the half-open range of positions of w.Out that hold
// valid output rows for a sub-tile whose Out[0] is row outBase, given
// the run's [outStart, outEnd) and the system size.
func (w *Window[T]) OutRange(outBase, outStart, outEnd int) (lo, hi int) {
	lo, hi = 0, w.S
	if outBase < outStart {
		lo = outStart - outBase
	}
	limit := outEnd
	if w.n < limit {
		limit = w.n
	}
	if outBase+hi > limit {
		hi = limit - outBase
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// subTile advances the pipeline by one sub-tile: load S raw rows
// starting at base (sub-tile aligned), then run the k reduction levels,
// leaving the fresh level-k rows (indices base-2^k .. base-2^k+S-1,
// also sub-tile aligned for c == 1) in w.Out.
func (w *Window[T]) subTile(base int, sink func(outBase int)) {
	k, c, S := w.k, w.c, w.S

	// The hot phase bodies index local copies of the stage/hist/Out
	// slice headers: stage, hist and Out share an element type, so
	// without the locals the compiler must reload w's fields after
	// every store.

	// Load phase: stage <- hist0 (3 rows) ++ raw [base, base+S).
	// Thread t loads elements base+t, base+t+2^k, ... — unit stride
	// across the block and sub-tile aligned, hence coalesced.
	w.blk.Phase(func(t *gpusim.Thread) {
		st, hist0 := w.stage, w.hist
		for e := 0; e < c; e++ {
			i := base + t.ID + e*w.threads
			st[3+t.ID+e*w.threads] = w.loadRaw(t, i)
		}
		for p := t.ID; p < 3; p += w.threads {
			st[p] = hist0[p]
		}
	})
	w.blk.CountShared(3*4, int64(S+3)*4)

	// hist0 <- newest three raw rows, for the next sub-tile.
	w.blk.Phase(func(t *gpusim.Thread) {
		st, hist0 := w.stage, w.hist
		for p := t.ID; p < 3; p += w.threads {
			hist0[p] = st[S+p]
		}
	})
	w.blk.CountShared(3*4, 3*4)

	stageBase := base - 3 // system index of stage position 0
	for j := 1; j <= k; j++ {
		h := 1 << (j - 1)
		lo := base - F(j) - 1 // first fresh level-j index (lag f(j)+1)

		// Compute phase: each thread produces its c fresh values into
		// the register tile (3 row reads from shared, write to regs).
		w.blk.Phase(func(t *gpusim.Thread) {
			st, out := w.stage, w.Out
			for e := 0; e < c; e++ {
				p := t.ID + e*w.threads
				rel := lo + p - stageBase
				out[p] = pcr.Combine(st[rel-h], st[rel], st[rel+h])
			}
			t.Eliminations(c)
		})
		w.blk.CountShared(int64(S)*3*4, 0)

		if j == k {
			break
		}
		width := (2 << j) + 1 // level-j history size 2^(j+1)+1

		// Rebuild phase 1: stage <- hist[j] ++ fresh level-j rows.
		w.blk.Phase(func(t *gpusim.Thread) {
			st, hj, out := w.stage, w.hist[w.histOff[j]:], w.Out
			for p := t.ID; p < width+S; p += w.threads {
				if p < width {
					st[p] = hj[p]
				} else {
					st[p] = out[p-width]
				}
			}
		})
		w.blk.CountShared(int64(width)*4, int64(width+S)*4)

		// Rebuild phase 2: hist[j] <- newest `width` level-j rows, read
		// from the freshly rebuilt stage tail (for j = k-1 and c = 1
		// the history is wider than one sub-tile, so part of it comes
		// from the previous history rather than this phase's output).
		w.blk.Phase(func(t *gpusim.Thread) {
			st, hj := w.stage, w.hist[w.histOff[j]:]
			for p := t.ID; p < width; p += w.threads {
				hj[p] = st[S+p]
			}
		})
		w.blk.CountShared(int64(width)*4, int64(width)*4)

		stageBase = lo - width
	}

	if sink != nil {
		sink(base - (1 << k))
	}
}

// ReduceKernel performs the k-step tiled-PCR reduction of one n-row
// system on the device, split across `blocks` thread blocks (Fig. 11(a)
// for blocks == 1, Fig. 11(b) otherwise), writing the reduced
// coefficients to out. It returns the recorded execution statistics.
func ReduceKernel[T num.Real](dev *gpusim.Device, s *matrix.System[T], out *matrix.System[T], k, c, blocks int) (*gpusim.Stats, error) {
	n := s.N()
	if out.N() != n {
		return nil, fmt.Errorf("tiledpcr: output size %d != input size %d", out.N(), n)
	}
	if blocks <= 0 {
		blocks = 1
	}
	if blocks > n {
		blocks = n
	}
	in := SystemArrays(s)
	dst := SystemArrays(out)
	per := num.CeilDiv(n, blocks)
	return dev.Launch("tiledPCR", gpusim.LaunchConfig{Grid: blocks, Block: 1 << k},
		func(b *gpusim.Block) {
			w := NewWindow(b, k, c, n, 0, in)
			outStart := b.ID * per
			outEnd := outStart + per
			if outEnd > n {
				outEnd = n
			}
			if outStart >= outEnd {
				return
			}
			w.Run(outStart, outEnd, func(outBase int) {
				lo, hi := w.OutRange(outBase, outStart, outEnd)
				b.PhaseNoSync(func(t *gpusim.Thread) {
					for e := 0; e < c; e++ {
						p := t.ID + e*w.threads
						if p < lo || p >= hi {
							continue
						}
						i := outBase + p
						r := w.Out[p]
						dst.A.Store(t, i, r.A)
						dst.B.Store(t, i, r.B)
						dst.C.Store(t, i, r.C)
						dst.D.Store(t, i, r.D)
					}
				})
			})
		})
}
