// Package davidson implements the comparison baseline of paper §V: the
// Davidson, Zhang & Owens (IPDPS'11) style auto-tuned PCR + p-Thomas
// hybrid for large systems. Structurally it differs from the paper's
// tiled-PCR hybrid in exactly the two ways §V blames for its lower
// performance:
//
//  1. Lock-step global PCR: while a system's subsystems are still too
//     large for shared memory, each PCR step runs as its own kernel
//     launch over the whole batch — a global synchronization (kernel
//     termination + relaunch) per step, with every intermediate
//     coefficient making a full round trip through DRAM.
//
//  2. Coarse-grained tiles: once subsystems fit, each thread block
//     loads one entire subsystem into shared memory (maximally
//     occupying it, which caps residency at about one block per SM),
//     finishes the reduction with barrier-synchronized in-shared PCR
//     steps, and solves the final chains with per-thread Thomas.
//
// The arithmetic is the same pcr.Combine / Thomas recurrence as the
// rest of the module, so results agree with every other solver.
package davidson

import (
	"fmt"

	"gputrid/internal/gpusim"
	"gputrid/internal/matrix"
	"gputrid/internal/num"
	"gputrid/internal/pcr"
)

// Config tunes the baseline.
type Config struct {
	// Device is the simulated GPU; nil selects GTX480.
	Device *gpusim.Device
	// BlockThreads is the phase-2 block size (default 256).
	BlockThreads int
	// SharedBudget is the shared-memory budget per block in bytes for
	// the in-shared phase (default: the device's full per-SM capacity,
	// "maximally occupying shared memory").
	SharedBudget int
}

// Report describes the execution.
type Report struct {
	GlobalSteps   int // lock-step global PCR steps (= extra launches)
	SubsystemLen  int // rows per subsystem entering the in-shared phase
	InSharedSteps int // PCR steps performed inside shared memory
	Stats         *gpusim.Stats
	Kernels       []*gpusim.Stats
}

func (cfg *Config) device() *gpusim.Device {
	if cfg.Device == nil {
		return gpusim.GTX480()
	}
	return cfg.Device
}

// Solve solves the batch with the Davidson-style hybrid and returns the
// solutions in natural order.
func Solve[T num.Real](cfg Config, b *matrix.Batch[T]) ([]T, *Report, error) {
	dev := cfg.device()
	m, n := b.M, b.N
	bt := cfg.BlockThreads
	if bt <= 0 {
		bt = 256
	}
	if bt > dev.MaxThreadsPerBlock {
		bt = dev.MaxThreadsPerBlock
	}
	budget := cfg.SharedBudget
	if budget <= 0 {
		budget = dev.SharedMemPerSM
	}
	elem := num.SizeOf[T]()
	// The in-shared phase double-buffers the four coefficient arrays.
	maxSub := budget / (8 * elem)
	if maxSub < 2 {
		return nil, nil, fmt.Errorf("davidson: shared budget %dB cannot hold any subsystem", budget)
	}

	rep := &Report{Stats: &gpusim.Stats{}}

	// Working copy, normalized (Lower[0] = Upper[N-1] = 0 per system).
	cur := cloneArrays(b)
	nxt := &arrays[T]{
		a: make([]T, m*n), bb: make([]T, m*n), c: make([]T, m*n), d: make([]T, m*n),
	}

	// Phase 1: lock-step global PCR until subsystems fit shared memory.
	j := 0
	for num.CeilDiv(n, 1<<j) > maxSub {
		if err := globalStep(dev, cur, nxt, m, n, 1<<j, rep); err != nil {
			return nil, nil, err
		}
		cur, nxt = nxt, cur
		j++
	}
	rep.GlobalSteps = j
	subLen := num.CeilDiv(n, 1<<j)
	rep.SubsystemLen = subLen

	// Phase 2: one block per (system, subsystem); in-shared PCR down to
	// per-thread chains, then per-thread Thomas.
	x := make([]T, m*n)
	if err := inSharedSolve(dev, cur, x, m, n, j, bt, rep); err != nil {
		return nil, nil, err
	}
	return x, rep, nil
}

type arrays[T num.Real] struct {
	a, bb, c, d []T
}

func cloneArrays[T num.Real](b *matrix.Batch[T]) *arrays[T] {
	m, n := b.M, b.N
	w := &arrays[T]{
		a:  append([]T(nil), b.Lower...),
		bb: append([]T(nil), b.Diag...),
		c:  append([]T(nil), b.Upper...),
		d:  append([]T(nil), b.RHS...),
	}
	for i := 0; i < m; i++ {
		w.a[i*n] = 0
		w.c[i*n+n-1] = 0
	}
	return w
}

// globalStep launches one lock-step PCR step over the whole batch:
// every row is rewritten against its neighbors at ±stride, reading the
// current buffers and writing the next. One launch per step — this is
// the global synchronization the paper's §V highlights.
func globalStep[T num.Real](dev *gpusim.Device, cur, nxt *arrays[T], m, n, stride int, rep *Report) error {
	ga, gb := gpusim.NewGlobal(cur.a), gpusim.NewGlobal(cur.bb)
	gc, gd := gpusim.NewGlobal(cur.c), gpusim.NewGlobal(cur.d)
	na, nb := gpusim.NewGlobal(nxt.a), gpusim.NewGlobal(nxt.bb)
	nc, nd := gpusim.NewGlobal(nxt.c), gpusim.NewGlobal(nxt.d)

	const bt = 256
	total := m * n
	grid := num.CeilDiv(total, bt)
	load := func(t *gpusim.Thread, sys, i int) pcr.Row[T] {
		if i < 0 || i >= n {
			return pcr.Identity[T]()
		}
		g := sys*n + i
		return pcr.Row[T]{A: ga.Load(t, g), B: gb.Load(t, g), C: gc.Load(t, g), D: gd.Load(t, g)}
	}
	st, err := dev.Launch("davidsonGlobalPCR", gpusim.LaunchConfig{Grid: grid, Block: bt},
		func(blk *gpusim.Block) {
			blk.PhaseNoSync(func(t *gpusim.Thread) {
				gi := blk.ID*bt + t.ID
				if gi >= total {
					return
				}
				sys, i := gi/n, gi%n
				r := pcr.Combine(load(t, sys, i-stride), load(t, sys, i), load(t, sys, i+stride))
				t.Eliminations(1)
				na.Store(t, gi, r.A)
				nb.Store(t, gi, r.B)
				nc.Store(t, gi, r.C)
				nd.Store(t, gi, r.D)
			})
		})
	if err != nil {
		return err
	}
	rep.Kernels = append(rep.Kernels, st)
	rep.Stats.Add(st)
	return nil
}

// inSharedSolve finishes the solve: block (sys, r) loads subsystem r of
// system sys (rows r, r+2^j, ...) into shared memory, reduces it with
// barrier-synchronized PCR steps until one chain per thread remains,
// solves the chains with per-thread Thomas in shared memory, and stores
// the solution back.
func inSharedSolve[T num.Real](dev *gpusim.Device, cur *arrays[T], x []T, m, n, j, bt int, rep *Report) error {
	p := 1 << j
	subMax := num.CeilDiv(n, p)
	// In-shared PCR steps: down to one chain per thread.
	steps := 0
	for 1<<steps < bt && 1<<steps < subMax {
		steps++
	}
	rep.InSharedSteps = steps

	ga, gb := gpusim.NewGlobal(cur.a), gpusim.NewGlobal(cur.bb)
	gc, gd := gpusim.NewGlobal(cur.c), gpusim.NewGlobal(cur.d)
	gx := gpusim.NewGlobal(x)

	st, err := dev.Launch("davidsonInShared", gpusim.LaunchConfig{Grid: m * p, Block: bt},
		func(blk *gpusim.Block) {
			sys := blk.ID / p
			r := blk.ID % p
			if r >= n {
				return
			}
			L := (n - r + p - 1) / p // rows in this subsystem
			// Double-buffered shared storage for the subsystem.
			var sh [2][4]gpusim.Shared[T]
			for q := 0; q < 4; q++ {
				sh[0][q] = gpusim.NewShared[T](blk, L)
				sh[1][q] = gpusim.NewShared[T](blk, L)
			}
			getRow := func(buf int, i int) pcr.Row[T] {
				if i < 0 || i >= L {
					return pcr.Identity[T]()
				}
				return pcr.Row[T]{
					A: sh[buf][0].Data[i], B: sh[buf][1].Data[i],
					C: sh[buf][2].Data[i], D: sh[buf][3].Data[i],
				}
			}
			putRow := func(buf int, i int, v pcr.Row[T]) {
				sh[buf][0].Data[i] = v.A
				sh[buf][1].Data[i] = v.B
				sh[buf][2].Data[i] = v.C
				sh[buf][3].Data[i] = v.D
			}

			// Load the subsystem (stride-2^j global reads: the
			// coarse-grained mapping's poorly coalesced access).
			blk.Phase(func(t *gpusim.Thread) {
				for i := t.ID; i < L; i += bt {
					g := sys*n + r + i*p
					row := pcr.Row[T]{
						A: ga.Load(t, g), B: gb.Load(t, g),
						C: gc.Load(t, g), D: gd.Load(t, g),
					}
					if i == 0 {
						row.A = 0
					}
					if i == L-1 {
						row.C = 0
					}
					putRow(0, i, row)
				}
			})
			blk.CountShared(0, int64(L)*4)

			// In-shared PCR with a block barrier per step (§V: "where
			// synchronization of threads within a thread block is also
			// required at each step of PCR").
			cb := 0
			for s := 0; s < steps; s++ {
				stride := 1 << s
				blk.Phase(func(t *gpusim.Thread) {
					for i := t.ID; i < L; i += bt {
						putRow(1-cb, i, pcr.Combine(getRow(cb, i-stride), getRow(cb, i), getRow(cb, i+stride)))
						t.Eliminations(1)
					}
				})
				blk.CountShared(int64(L)*12, int64(L)*4)
				cb = 1 - cb
			}

			// Per-thread Thomas on the 2^steps chains, entirely in
			// shared memory (c/d rows are overwritten with c'/d').
			q := 1 << steps
			blk.Phase(func(t *gpusim.Thread) {
				cc := t.ID
				if cc >= q || cc >= L {
					return
				}
				rows := (L - cc + q - 1) / q
				// Forward.
				first := getRow(cb, cc)
				cp := first.C / first.B
				dp := first.D / first.B
				putRow(cb, cc, pcr.Row[T]{A: first.A, B: first.B, C: cp, D: dp})
				t.ThomasSteps(1)
				for l := 1; l < rows; l++ {
					i := cc + l*q
					row := getRow(cb, i)
					prev := getRow(cb, i-q)
					den := row.B - prev.C*row.A
					inv := 1 / den
					cp = row.C * inv
					dp = (row.D - prev.D*row.A) * inv
					putRow(cb, i, pcr.Row[T]{A: row.A, B: row.B, C: cp, D: dp})
					t.ThomasSteps(1)
				}
				// Backward; x overwrites D in shared.
				xn := getRow(cb, cc+(rows-1)*q).D
				putRow(cb, cc+(rows-1)*q, pcr.Row[T]{D: xn})
				for l := rows - 2; l >= 0; l-- {
					i := cc + l*q
					row := getRow(cb, i)
					xn = row.D - row.C*xn
					putRow(cb, i, pcr.Row[T]{D: xn})
					t.ThomasSteps(1)
				}
			})
			blk.CountShared(int64(L)*10, int64(L)*8)

			// Store the solution (strided global writes).
			blk.PhaseNoSync(func(t *gpusim.Thread) {
				for i := t.ID; i < L; i += bt {
					gx.Store(t, sys*n+r+i*p, getRow(cb, i).D)
				}
			})
			blk.CountShared(int64(L), 0)
		})
	if err != nil {
		return err
	}
	rep.Kernels = append(rep.Kernels, st)
	rep.Stats.Add(st)
	return nil
}
