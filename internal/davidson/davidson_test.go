package davidson

import (
	"testing"
	"testing/quick"

	"gputrid/internal/cpu"
	"gputrid/internal/gpusim"
	"gputrid/internal/matrix"
	"gputrid/internal/workload"
)

func dev() *gpusim.Device { return gpusim.GTX480() }

func TestSolveMatchesThomas(t *testing.T) {
	for _, tc := range []struct{ m, n int }{
		{1, 64},    // fits shared: no global steps
		{4, 500},   // fits shared
		{1, 4096},  // needs global PCR steps
		{2, 10000}, // several global steps, non-power-of-two
		{8, 2048},  // batch + global steps
		{3, 1},     // degenerate rows
	} {
		b := workload.Batch[float64](workload.DiagDominant, tc.m, tc.n, uint64(tc.m*tc.n))
		x, rep, err := Solve(Config{Device: dev()}, b)
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		want, err := cpu.SolveBatchSeq(b)
		if err != nil {
			t.Fatal(err)
		}
		if d := matrix.MaxRelDiff(x, want); d > 1e-8 {
			t.Errorf("%+v: differs from Thomas by %g (report %+v)", tc, d, rep)
		}
	}
}

func TestGlobalStepCount(t *testing.T) {
	// Double precision, 48KB budget, double-buffered: subsystems of up
	// to 48K/(8·8) = 768 rows fit. N=4096 needs ceil(N/2^j) <= 768:
	// j = 3 global steps.
	b := workload.Batch[float64](workload.DiagDominant, 1, 4096, 7)
	_, rep, err := Solve(Config{Device: dev()}, b)
	if err != nil {
		t.Fatal(err)
	}
	if rep.GlobalSteps != 3 {
		t.Errorf("global steps = %d, want 3", rep.GlobalSteps)
	}
	if rep.SubsystemLen != 512 {
		t.Errorf("subsystem len = %d, want 512", rep.SubsystemLen)
	}
	// One launch per global step plus the in-shared kernel.
	if got := len(rep.Kernels); got != rep.GlobalSteps+1 {
		t.Errorf("kernel launches = %d, want %d", got, rep.GlobalSteps+1)
	}
	if rep.Stats.Launches != rep.GlobalSteps+1 {
		t.Errorf("stats launches = %d", rep.Stats.Launches)
	}
}

func TestSmallSystemSkipsGlobalPhase(t *testing.T) {
	b := workload.Batch[float64](workload.DiagDominant, 4, 300, 3)
	_, rep, err := Solve(Config{Device: dev()}, b)
	if err != nil {
		t.Fatal(err)
	}
	if rep.GlobalSteps != 0 {
		t.Errorf("global steps = %d, want 0", rep.GlobalSteps)
	}
}

func TestCoarseTilesLimitOccupancy(t *testing.T) {
	// The in-shared kernel must allocate (close to) the full shared
	// budget, capping occupancy at one block per SM — §V's structural
	// point about coarse-grained tiling.
	b := workload.Batch[float64](workload.DiagDominant, 1, 6144, 5)
	_, rep, err := Solve(Config{Device: dev()}, b)
	if err != nil {
		t.Fatal(err)
	}
	last := rep.Kernels[len(rep.Kernels)-1]
	if occ := dev().Occupancy(last.ThreadsPerBlock, last.SharedPerBlock); occ != 1 {
		t.Errorf("in-shared kernel occupancy = %d blocks/SM, want 1 (shared=%dB)",
			occ, last.SharedPerBlock)
	}
}

func TestGlobalPhaseMovesFullSystemPerStep(t *testing.T) {
	// Every global PCR step reads and writes all four coefficient
	// arrays: the DRAM round trip per step that tiled PCR avoids.
	m, n := 2, 4096
	b := workload.Batch[float64](workload.DiagDominant, m, n, 6)
	_, rep, err := Solve(Config{Device: dev()}, b)
	if err != nil {
		t.Fatal(err)
	}
	first := rep.Kernels[0]
	wantStores := int64(m*n) * 4 * 8
	if first.StoredBytes != wantStores {
		t.Errorf("global step stored %d bytes, want %d", first.StoredBytes, wantStores)
	}
	if first.LoadedBytes < wantStores {
		t.Errorf("global step loaded %d bytes, want >= %d", first.LoadedBytes, wantStores)
	}
}

func TestSharedBudgetTooSmall(t *testing.T) {
	b := workload.Batch[float64](workload.DiagDominant, 1, 64, 1)
	if _, _, err := Solve(Config{Device: dev(), SharedBudget: 32}, b); err == nil {
		t.Error("absurd shared budget accepted")
	}
}

func TestFloat32(t *testing.T) {
	b := workload.Batch[float32](workload.DiagDominant, 2, 3000, 9)
	x, _, err := Solve(Config{Device: dev()}, b)
	if err != nil {
		t.Fatal(err)
	}
	if r := matrix.MaxResidual(b, x); r > matrix.ResidualTolerance[float32](3000) {
		t.Errorf("residual %g", r)
	}
}

func TestSolveProperty(t *testing.T) {
	f := func(seed uint32, mRaw uint8, nRaw uint16) bool {
		m := int(mRaw)%6 + 1
		n := int(nRaw)%3000 + 1
		b := workload.Batch[float64](workload.DiagDominant, m, n, uint64(seed))
		x, _, err := Solve(Config{Device: dev()}, b)
		if err != nil {
			return false
		}
		return matrix.MaxResidual(b, x) <= matrix.ResidualTolerance[float64](n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
