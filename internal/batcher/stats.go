package batcher

import "sort"

// Stats is a consistent-enough snapshot of the batcher's counters
// (each counter is individually exact; the set is not atomic as a
// whole).
type Stats struct {
	// Admitted / AdmittedSystems count requests and systems accepted
	// into a flight (shed and malformed requests are not admitted).
	Admitted        uint64
	AdmittedSystems uint64
	// PendingSystems is the live gauge of systems admitted but not
	// yet delivered or cancelled.
	PendingSystems int64
	// FlushesWatermark/Deadline/Close count flights by flush cause.
	FlushesWatermark uint64
	FlushesDeadline  uint64
	FlushesClose     uint64
	// FlushedSystems counts real (non-padding) systems solved;
	// FlushedSystems/flushes is the mean coalescing factor.
	FlushedSystems uint64
	// PaddedSystems counts identity-padding columns solved alongside
	// the real ones — the cost of flushing partial megabatches.
	PaddedSystems uint64
	// MaxFlushSystems is the largest single flush.
	MaxFlushSystems uint64
	// Saturated counts requests shed with ErrSaturated.
	Saturated uint64
	// CancelledWaits counts requests whose caller abandoned the wait.
	CancelledWaits uint64
	// FailedFlushes counts flights whose SolveFunc returned a
	// whole-batch error.
	FailedFlushes uint64
	// Shapes is the number of live per-N queues; Queues describes
	// each, ordered by N.
	Shapes int
	Queues []QueueStats
}

// Flushes returns the total flight count across causes.
func (s *Stats) Flushes() uint64 {
	return s.FlushesWatermark + s.FlushesDeadline + s.FlushesClose
}

// QueueStats describes one per-shape coalescing queue.
type QueueStats struct {
	// N is the queue's row count.
	N int
	// Pending is the number of systems buffered in unflushed flights.
	Pending int
	// Flights is the number of unflushed flights (sealed plus the
	// open one, when non-empty).
	Flights int
}

// Stats snapshots the batcher. Safe to call concurrently with Solve
// and Close; it takes the registry lock then each queue lock (ranks
// 15 then 16).
func (b *Batcher[T]) Stats() Stats {
	s := Stats{
		Admitted:         b.admitted.Load(),
		AdmittedSystems:  b.admittedSystems.Load(),
		PendingSystems:   b.pendingSystems.Load(),
		FlushesWatermark: b.flushWatermark.Load(),
		FlushesDeadline:  b.flushDeadline.Load(),
		FlushesClose:     b.flushClose.Load(),
		FlushedSystems:   b.flushedSystems.Load(),
		PaddedSystems:    b.paddedSystems.Load(),
		MaxFlushSystems:  b.maxFlushSystems.Load(),
		Saturated:        b.saturated.Load(),
		CancelledWaits:   b.cancelledWaits.Load(),
		FailedFlushes:    b.failedFlushes.Load(),
	}
	b.mu.Lock()
	qs := make([]*queue[T], 0, len(b.queues))
	for _, q := range b.queues {
		qs = append(qs, q)
	}
	b.mu.Unlock()
	sort.Slice(qs, func(i, j int) bool { return qs[i].n < qs[j].n })
	for _, q := range qs {
		st := QueueStats{N: q.n}
		q.mu.Lock()
		for _, f := range q.sealed {
			st.Pending += f.mb.Count
			st.Flights++
		}
		if q.cur != nil && q.cur.mb.Count > 0 {
			st.Pending += q.cur.mb.Count
			st.Flights++
		}
		q.mu.Unlock()
		s.Queues = append(s.Queues, st)
	}
	s.Shapes = len(s.Queues)
	return s
}
