package batcher

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"gputrid/internal/core"
)

var (
	fuzzOnce sync.Once
	fuzzB    *Batcher[float64]
)

// fuzzBatcher is one shared wall-clock batcher per fuzz process: a
// tiny MaxWait keeps flights moving without any driver, and sharing
// it across inputs also fuzzes admission under concurrency (the fuzz
// engine runs workers in parallel).
func fuzzBatcher() *Batcher[float64] {
	fuzzOnce.Do(func() {
		b, err := New(Config[float64]{
			MaxBatch:  8,
			MaxWait:   100 * time.Microsecond,
			MaxShapes: 4,
			Solve:     echoSolve,
		})
		if err != nil {
			panic(err)
		}
		fuzzB = b
	})
	return fuzzB
}

// FuzzBatcherAdmission throws arbitrary shapes, plane-length skews
// and deadline pressure at Solve and requires the admission contract:
// never a panic or a hang, every error one of the typed sentinels,
// and every success an exact echo of the request's own RHS (no
// cross-request bleed, no partial writes).
func FuzzBatcherAdmission(f *testing.F) {
	f.Add(uint8(1), uint8(16), int8(0), uint8(0))
	f.Add(uint8(8), uint8(32), int8(0), uint8(1))
	f.Add(uint8(9), uint8(8), int8(0), uint8(0))   // too large
	f.Add(uint8(2), uint8(8), int8(-1), uint8(0))  // short plane
	f.Add(uint8(0), uint8(8), int8(0), uint8(0))   // zero systems
	f.Add(uint8(3), uint8(0), int8(1), uint8(2))   // zero rows
	f.Add(uint8(4), uint8(200), int8(0), uint8(3)) // new shapes -> shape limit
	f.Fuzz(func(t *testing.T, m, n uint8, skew int8, mode uint8) {
		b := fuzzBatcher()
		M, N := int(m%12), int(n)
		size := M * N
		req := &Request[float64]{
			M: M, N: N,
			Lower: make([]float64, size),
			Diag:  make([]float64, size),
			Upper: make([]float64, size),
			RHS:   make([]float64, size),
			X:     make([]float64, size),
		}
		for i := 0; i < size; i++ {
			req.RHS[i] = float64(i) + float64(m)/7
			req.Diag[i] = 4
		}
		if skew != 0 && size > 0 {
			// Deliberately corrupt one plane's length.
			cut := size - 1
			switch skew % 3 {
			case 0:
				req.Lower = req.Lower[:cut]
			case 1, -1:
				req.RHS = req.RHS[:cut]
			default:
				req.X = req.X[:cut]
			}
		}
		ctx := context.Background()
		var cancel context.CancelFunc
		switch mode % 3 {
		case 1:
			ctx, cancel = context.WithTimeout(ctx, 50*time.Microsecond)
		case 2:
			ctx, cancel = context.WithCancel(ctx)
			cancel()
		}
		if cancel != nil {
			defer cancel()
		}
		res, err := b.Solve(ctx, req)
		if err != nil {
			switch {
			case errors.Is(err, ErrTooLarge),
				errors.Is(err, ErrSaturated),
				errors.Is(err, ErrShapeLimit),
				errors.Is(err, ErrClosed),
				errors.Is(err, core.ErrShapeMismatch),
				errors.Is(err, core.ErrCancelled):
			default:
				t.Fatalf("untyped error: %v", err)
			}
			return
		}
		if res.Systems != M || res.FlushSize < M || res.FlushSize > b.MaxBatch() {
			t.Fatalf("implausible result %+v for M=%d", res, M)
		}
		for i := range req.X {
			if req.X[i] != req.RHS[i] {
				t.Fatalf("dst[%d] = %v, want own RHS %v", i, req.X[i], req.RHS[i])
			}
		}
	})
}
