package batcher

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gputrid/internal/clock"
	"gputrid/internal/matrix"
	"gputrid/internal/num"
)

// pending slot states. The flusher claims a Waiting slot with a CAS
// before delivering; a cancelling caller CASes it to Cancelled first
// to abandon the wait. Exactly one side wins, so exactly one side
// accounts the slot and exactly one side recycles it.
const (
	stateWaiting int32 = iota
	stateClaimed
	stateCancelled
)

// pending is one request's slot in a flight: where its systems start
// in the megabatch, where the answer goes, and the rendezvous channel
// its caller blocks on. Slots recycle through the queue's free list;
// done has capacity one and is drained by the caller before recycle.
type pending[T num.Real] struct {
	state atomic.Int32
	done  chan struct{}
	dst   []T
	first int
	m     int
	enq   time.Time
	err   error
	res   Result
}

// flight is one megabatch being assembled (or awaiting flush). dirty
// tracks the high-water column touched by real systems since the last
// pad, so re-padding after a partial flight touches only the stale
// region.
type flight[T num.Real] struct {
	mb    Megabatch[T]
	pend  []*pending[T]
	dirty int
}

// flushCause records why a flight flushed, for the stats counters.
type flushCause uint8

const (
	causeWatermark flushCause = iota
	causeDeadline
	causeClose
)

// queue coalesces requests of one row count N. One flusher goroutine
// per queue means at most one megabatch of this shape is in the
// solver at a time — backpressure beyond that shows up as sealed
// flights and, past MaxQueuedFlights, as ErrSaturated.
type queue[T num.Real] struct {
	b    *Batcher[T]
	n    int
	kick chan struct{}
	// timer is owned by the flusher goroutine (Reset/C); admitters
	// wake the flusher through kick instead of touching it.
	timer clock.Timer

	mu       sync.Mutex //tridlint:lockrank 16
	cur      *flight[T]
	sealed   []*flight[T]
	spares   []*flight[T]
	freePend []*pending[T]
	flushAt  time.Time
	closed   bool

	// deliver is the flusher's private scratch for slots claimed in
	// the current flush; only the flusher goroutine touches it.
	deliver []*pending[T]
}

// kickNow wakes the flusher without blocking; a kick already pending
// is enough.
func (q *queue[T]) kickNow() {
	select {
	case q.kick <- struct{}{}:
	default:
	}
}

// admit appends the request's systems to the open flight (sealing a
// full one, opening a fresh one as needed) and returns the caller's
// pending slot. now is the admission timestamp from the batcher's
// clock.
func (q *queue[T]) admit(ctx context.Context, req *Request[T], now time.Time) (*pending[T], error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return nil, ErrClosed
	}
	if q.cur != nil && q.cur.mb.Count+req.M > q.b.maxBatch {
		q.sealed = append(q.sealed, q.cur)
		q.cur = nil
		q.kickNow()
	}
	if q.cur == nil {
		if len(q.sealed) >= q.b.maxQueued {
			q.b.saturated.Add(1)
			return nil, ErrSaturated
		}
		q.cur = q.takeFlightLocked()
	}
	f := q.cur
	p := q.takePendingLocked()
	p.dst = req.X
	p.first = f.mb.Count
	p.m = req.M
	p.enq = now
	appendSystems(f.mb.V, f.mb.Count, req)
	f.mb.Count += req.M
	if f.mb.Count > f.dirty {
		f.dirty = f.mb.Count
	}
	f.pend = append(f.pend, p)

	target := now.Add(q.b.maxWait)
	if dl, ok := ctx.Deadline(); ok {
		svc := time.Duration(0)
		if q.b.serviceTime != nil {
			if s, known := q.b.serviceTime(q.n); known {
				svc = s
			}
		}
		if lim := dl.Add(-q.b.slackMargin - svc); lim.Before(target) {
			target = lim
		}
	}
	if target.Before(now) {
		target = now
	}
	if f.mb.Count >= q.b.maxBatch {
		q.sealed = append(q.sealed, f)
		q.cur = nil
		q.kickNow()
	} else if len(f.pend) == 1 || target.Before(q.flushAt) {
		// The flight's first request owns the deadline outright (the
		// previous flight's flushAt is stale); later ones only pull
		// it earlier.
		q.flushAt = target
		q.kickNow()
	}
	return p, nil
}

// takeFlightLocked pops a recycled flight or builds a cold one with
// every column padded to the inert identity system.
func (q *queue[T]) takeFlightLocked() *flight[T] {
	if k := len(q.spares); k > 0 {
		f := q.spares[k-1]
		q.spares = q.spares[:k-1]
		return f
	}
	m := q.b.maxBatch
	f := &flight[T]{}
	f.mb.V = matrix.NewInterleaved[T](m, q.n)
	f.mb.Xi = make([]T, m*q.n)
	f.mb.Verdicts = make([]Verdict, m)
	f.mb.Scratch = make([]float64, 4*m)
	padSystems(f.mb.V, 0, m)
	return f
}

// takePendingLocked pops a recycled pending slot or allocates one.
func (q *queue[T]) takePendingLocked() *pending[T] {
	var p *pending[T]
	if k := len(q.freePend); k > 0 {
		p = q.freePend[k-1]
		q.freePend = q.freePend[:k-1]
	} else {
		p = &pending[T]{done: make(chan struct{}, 1)}
	}
	p.err = nil
	p.res = Result{}
	p.state.Store(stateWaiting)
	return p
}

// recycle returns a delivered pending slot to the free list (the
// flusher recycles cancelled ones through its compaction pass).
func (q *queue[T]) recycle(p *pending[T]) {
	q.mu.Lock()
	p.dst = nil
	p.err = nil
	q.freePend = append(q.freePend, p)
	q.mu.Unlock()
}

// run is the queue's flusher goroutine: flush everything due, then
// sleep until an admitter kicks or the deadline timer fires.
func (q *queue[T]) run() {
	defer q.b.wg.Done()
	for {
		if q.pump() {
			return
		}
		select {
		case <-q.kick:
		case <-q.timer.C():
		}
	}
}

// pump flushes flights until none is due, returning true when the
// queue is closed and fully drained.
func (q *queue[T]) pump() bool {
	for {
		f, cause, exit := q.next()
		if f == nil {
			return exit
		}
		q.flush(f, cause)
	}
}

// next pops the next due flight, or arms the deadline timer and
// returns nil. A timer firing is only a wake-up hint (the Timer
// contract allows one spurious firing per re-arm), so the deadline is
// always re-checked against the clock here.
func (q *queue[T]) next() (f *flight[T], cause flushCause, exit bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.sealed) > 0 {
		f = q.sealed[0]
		copy(q.sealed, q.sealed[1:])
		q.sealed[len(q.sealed)-1] = nil
		q.sealed = q.sealed[:len(q.sealed)-1]
		return f, causeWatermark, false
	}
	if q.cur != nil && q.cur.mb.Count > 0 {
		if q.closed {
			f = q.cur
			q.cur = nil
			return f, causeClose, false
		}
		now := q.b.clk.Now()
		if !now.Before(q.flushAt) {
			f = q.cur
			q.cur = nil
			return f, causeDeadline, false
		}
		q.timer.Reset(q.flushAt.Sub(now))
		// Re-check after arming: a VirtualClock Advance between the
		// Now above and the Reset would schedule the firing past the
		// deadline and never deliver it; the fresh read closes that
		// window (the stale arming then fires spuriously, which pump
		// absorbs).
		if !q.b.clk.Now().Before(q.flushAt) {
			f = q.cur
			q.cur = nil
			return f, causeDeadline, false
		}
		return nil, 0, false
	}
	return nil, 0, q.closed
}

// flush solves one flight and delivers each uncancelled slot its own
// systems and verdicts. Runs with no locks held (the solve may take
// pool locks, rank 20). On the warm all-healthy path it performs no
// heap allocations.
func (q *queue[T]) flush(f *flight[T], cause flushCause) {
	b := q.b
	mb := &f.mb
	start := b.clk.Now()
	if f.dirty > mb.Count {
		// Columns [Count, dirty) hold stale systems from the flight's
		// previous use; restore the inert identity padding so they
		// cannot poison guard scans. Columns past dirty are already
		// clean.
		padSystems(mb.V, mb.Count, f.dirty)
	}
	for i := 0; i < mb.Count; i++ {
		mb.Verdicts[i] = Verdict{}
	}
	err := b.solve(context.Background(), mb)
	if err != nil {
		b.failedFlushes.Add(1)
	}
	switch cause {
	case causeWatermark:
		b.flushWatermark.Add(1)
	case causeDeadline:
		b.flushDeadline.Add(1)
	case causeClose:
		b.flushClose.Add(1)
	}
	b.flushedSystems.Add(uint64(mb.Count))
	b.paddedSystems.Add(uint64(mb.V.M - mb.Count))
	for {
		prev := b.maxFlushSystems.Load()
		if uint64(mb.Count) <= prev || b.maxFlushSystems.CompareAndSwap(prev, uint64(mb.Count)) {
			break
		}
	}

	// Claim every slot and compute its answer while the megabatch is
	// still ours. A slot we fail to claim was cancelled — it stays
	// compacted at the front of f.pend and is recycled under the lock
	// below. Claimed slots are fully materialized (demuxed into the
	// caller's dst, res/err set) before the flight recycles, but their
	// wake-ups are deferred until after: the moment a caller wakes it
	// may re-admit, and the warm path must find the flight already in
	// the spares list instead of cold-allocating another.
	nc := 0
	for _, p := range f.pend {
		if !p.state.CompareAndSwap(stateWaiting, stateClaimed) {
			f.pend[nc] = p
			nc++
			continue
		}
		if err != nil {
			p.err = err
			p.res = Result{Systems: p.m, FlushSize: mb.Count, Wait: start.Sub(p.enq)}
		} else {
			demuxSystems(p.dst, mb.Xi, mb.V.M, q.n, p.first, p.m)
			rescued := 0
			var verr error
			for i := p.first; i < p.first+p.m; i++ {
				if mb.Verdicts[i].Rescued {
					rescued++
				}
				if e := mb.Verdicts[i].Err; e != nil {
					verr = errors.Join(verr, fmt.Errorf("batcher: system %d: %w", i-p.first, e))
				}
			}
			p.err = verr
			p.res = Result{Systems: p.m, FlushSize: mb.Count, Rescued: rescued, Wait: start.Sub(p.enq)}
		}
		q.deliver = append(q.deliver, p)
	}

	q.mu.Lock()
	for i := 0; i < nc; i++ {
		p := f.pend[i]
		p.dst = nil
		q.freePend = append(q.freePend, p)
	}
	for i := range f.pend {
		f.pend[i] = nil
	}
	f.pend = f.pend[:0]
	f.dirty = mb.Count
	mb.Count = 0
	q.spares = append(q.spares, f)
	q.mu.Unlock()

	for i, p := range q.deliver {
		b.pendingSystems.Add(-int64(p.m))
		p.done <- struct{}{}
		q.deliver[i] = nil
	}
	q.deliver = q.deliver[:0]
}

// appendSystems copies the request's contiguous systems into
// megabatch columns [at, at+req.M): plane element (i, j) of the
// request lands at interleaved index j*M + at + i — the strided copy
// that makes coalescing cheap and the downstream transpose
// unnecessary.
//
//tridlint:hotpath
func appendSystems[T num.Real](v *matrix.Interleaved[T], at int, req *Request[T]) {
	m, n, stride := req.M, req.N, v.M
	for i := 0; i < m; i++ {
		base := i * n
		for j := 0; j < n; j++ {
			d := j*stride + at + i
			v.Lower[d] = req.Lower[base+j]
			v.Diag[d] = req.Diag[base+j]
			v.Upper[d] = req.Upper[base+j]
			v.RHS[d] = req.RHS[base+j]
		}
	}
}

// demuxSystems copies systems [first, first+m) of the interleaved
// solution xi (column stride `stride`) into dst in natural contiguous
// order.
//
//tridlint:hotpath
func demuxSystems[T num.Real](dst, xi []T, stride, n, first, m int) {
	for i := 0; i < m; i++ {
		base := i * n
		for j := 0; j < n; j++ {
			dst[base+j] = xi[j*stride+first+i]
		}
	}
}

// padSystems writes the inert identity system (diag 1, zero
// elsewhere) into megabatch columns [from, to), so unused capacity
// solves to zero instead of garbage.
//
//tridlint:hotpath
func padSystems[T num.Real](v *matrix.Interleaved[T], from, to int) {
	var zero, one T
	one = 1
	stride, n := v.M, v.N
	for j := 0; j < n; j++ {
		base := j * stride
		for i := from; i < to; i++ {
			v.Lower[base+i] = zero
			v.Diag[base+i] = one
			v.Upper[base+i] = zero
			v.RHS[base+i] = zero
		}
	}
}
