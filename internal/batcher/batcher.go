// Package batcher coalesces concurrent small solve requests into
// megabatches solved in one device pass.
//
// The paper's throughput comes from batching: one k-step PCR +
// p-Thomas launch over M interleaved systems amortizes kernel launch
// and pipeline overheads that a 1-system request pays in full. A
// serving tier, though, receives mostly 1-to-few-system requests from
// independent clients. The batcher bridges the two worlds: requests
// for the same row count N land in a per-shape coalescing queue, are
// appended into an interleaved megabatch (append is a strided copy —
// the layout the k = 0 kernels consume natively, so the coalesced
// solve never pays the 32×32 blocked transpose; cf. Gloster et al.,
// arXiv:1909.04539), and flush to the solver as one batch when either
//
//   - the watermark is reached (Count + next request would exceed
//     MaxBatch — the flight seals and flushes immediately), or
//   - the deadline expires (MaxWait after the flight's first request,
//     pulled earlier by any request whose context deadline minus the
//     shape's expected service time and SlackMargin would otherwise
//     be missed), or
//   - the batcher closes (remaining flights drain).
//
// Each caller gets back exactly its own systems, demultiplexed from
// the megabatch solution, and its own verdicts: a corrupt system in a
// coalesced batch fails only the request that submitted it (the
// SolveFunc reports per-system verdicts; whole-batch errors are the
// exception, not the rule). Results are bitwise identical to solving
// each request alone at k = 0, because the interleaved p-Thomas
// arithmetic of one system is independent of how many neighbors share
// the batch; unused megabatch columns are padded with identity
// systems so they stay inert.
//
// All waiting is deadline-driven through an injected clock.TimerClock,
// so flush policy is deterministic under a VirtualClock; the
// clockinject analyzer keeps wall-clock reads out. Steady state — a
// warm queue coalescing, solving and demuxing — performs no heap
// allocations: flights, pendings and megabatch planes recycle through
// per-queue free lists.
//
// Lock ranks (see internal/analysis/lockorder): the batcher registry
// lock is rank 15, each queue lock rank 16 — both above the fleet
// lock (10) and below the pool (20), so a solve hook may take pool
// locks and a fleet router may call Solve, but never the reverse.
package batcher

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gputrid/internal/clock"
	"gputrid/internal/core"
	"gputrid/internal/matrix"
	"gputrid/internal/num"
)

// Typed errors returned by Solve.
var (
	// ErrClosed reports a Solve after Close.
	ErrClosed = errors.New("batcher: closed")
	// ErrTooLarge reports a request with more systems than MaxBatch;
	// callers should route such requests directly to the solver.
	ErrTooLarge = errors.New("batcher: request exceeds megabatch capacity")
	// ErrSaturated reports that the shape's queue already holds
	// MaxQueuedFlights sealed megabatches awaiting the flusher — the
	// coalescing tier's admission-control signal (shed, don't buffer).
	ErrSaturated = errors.New("batcher: queue saturated")
	// ErrShapeLimit reports a request for a new N when MaxShapes
	// queues are already live.
	ErrShapeLimit = errors.New("batcher: too many active shapes")
)

// cancelledError ties a wait abandoned by context cancellation to the
// repo-wide ErrCancelled identity, preserving the context's own cause.
type cancelledError struct{ cause error }

func (e *cancelledError) Error() string {
	return "batcher: wait cancelled: " + e.cause.Error()
}
func (e *cancelledError) Unwrap() error        { return e.cause }
func (e *cancelledError) Is(target error) bool { return target == core.ErrCancelled }

// Request is one caller's batch of M contiguous systems of N rows
// (row j of system i at i*N+j in each plane). X is the destination,
// length M*N in the same natural order; it is written only on a nil
// or per-system-verdict error return, never while the request waits.
type Request[T num.Real] struct {
	M, N                    int
	Lower, Diag, Upper, RHS []T
	X                       []T
}

// Result describes how one request travelled through the coalescer.
type Result struct {
	// Systems is the request's own system count (echoed back).
	Systems int
	// FlushSize is the total system count of the megabatch the
	// request rode in — the coalescing win is FlushSize/Systems.
	FlushSize int
	// Rescued counts the request's systems that needed the per-system
	// rescue path (guard-failed fast solutions re-solved).
	Rescued int
	// Wait is how long the request sat in the queue before its flight
	// flushed, by the batcher's injected clock.
	Wait time.Duration
}

// Verdict is the per-system outcome a SolveFunc reports: Err fails
// only the request that owns the system; Rescued marks a system whose
// fast solution was replaced by the rescue path.
type Verdict struct {
	Err     error
	Rescued bool
}

// Megabatch is the unit of work handed to the SolveFunc: Count
// systems live in columns [0, Count) of V (the remaining columns are
// identity padding and may be solved or skipped freely), the solution
// is written interleaved into Xi (length V.M*V.N), and per-system
// outcomes into Verdicts[:Count]. Scratch is a caller-owned float64
// buffer of length 4*V.M for residual scans, so a guarding SolveFunc
// allocates nothing. The megabatch is reused across flushes; the
// SolveFunc must not retain any of its slices.
type Megabatch[T num.Real] struct {
	V        *matrix.Interleaved[T]
	Count    int
	Xi       []T
	Verdicts []Verdict
	Scratch  []float64
}

// SolveFunc solves one megabatch. A non-nil error fails every request
// in the flight (reserve it for whole-batch failures: pool overload,
// cancellation); per-system trouble goes in Verdicts instead.
type SolveFunc[T num.Real] func(ctx context.Context, mb *Megabatch[T]) error

// Config parameterizes a Batcher. The zero value of every field but
// Solve is usable: 64-system megabatches, 2ms maximum coalescing
// wait, 200µs deadline slack, 8 shapes, 4 queued flights, wall clock.
type Config[T num.Real] struct {
	// MaxBatch is the megabatch capacity in systems (the M the
	// downstream solver is built for).
	MaxBatch int
	// MaxWait bounds how long the first request of a flight waits for
	// company before the flight flushes anyway.
	MaxWait time.Duration
	// SlackMargin is subtracted, along with the shape's expected
	// service time, from a request's context deadline to decide how
	// early its flight must flush to still answer in time.
	SlackMargin time.Duration
	// MaxShapes caps the number of live per-N queues (each owns
	// recycled megabatch planes, so the cap bounds memory).
	MaxShapes int
	// MaxQueuedFlights caps sealed megabatches awaiting the flusher
	// per queue; beyond it Solve sheds with ErrSaturated.
	MaxQueuedFlights int
	// Clock is the time source for waits and deadlines; nil means
	// clock.WallClock.
	Clock clock.TimerClock
	// ServiceTime reports the expected solve duration for a megabatch
	// of n-row systems (typically the pool's per-shape EWMA) and
	// whether an estimate exists yet. Nil means no estimate.
	ServiceTime func(n int) (time.Duration, bool)
	// Solve runs a megabatch. Required.
	Solve SolveFunc[T]
}

// Batcher coalesces same-shaped requests into megabatches. Safe for
// concurrent use by any number of goroutines.
type Batcher[T num.Real] struct {
	maxBatch    int
	maxWait     time.Duration
	slackMargin time.Duration
	maxShapes   int
	maxQueued   int
	clk         clock.TimerClock
	serviceTime func(n int) (time.Duration, bool)
	solve       SolveFunc[T]

	mu     sync.Mutex //tridlint:lockrank 15
	queues map[int]*queue[T]
	closed bool
	wg     sync.WaitGroup

	admitted        atomic.Uint64
	admittedSystems atomic.Uint64
	pendingSystems  atomic.Int64
	flushWatermark  atomic.Uint64
	flushDeadline   atomic.Uint64
	flushClose      atomic.Uint64
	flushedSystems  atomic.Uint64
	paddedSystems   atomic.Uint64
	maxFlushSystems atomic.Uint64
	saturated       atomic.Uint64
	cancelledWaits  atomic.Uint64
	failedFlushes   atomic.Uint64
}

// New builds a Batcher from cfg, applying defaults for zero fields.
func New[T num.Real](cfg Config[T]) (*Batcher[T], error) {
	if cfg.Solve == nil {
		return nil, errors.New("batcher: Config.Solve is required")
	}
	b := &Batcher[T]{
		maxBatch:    cfg.MaxBatch,
		maxWait:     cfg.MaxWait,
		slackMargin: cfg.SlackMargin,
		maxShapes:   cfg.MaxShapes,
		maxQueued:   cfg.MaxQueuedFlights,
		clk:         cfg.Clock,
		serviceTime: cfg.ServiceTime,
		solve:       cfg.Solve,
		queues:      make(map[int]*queue[T]),
	}
	if b.maxBatch <= 0 {
		b.maxBatch = 64
	}
	if b.maxWait <= 0 {
		b.maxWait = 2 * time.Millisecond
	}
	if b.slackMargin <= 0 {
		b.slackMargin = 200 * time.Microsecond
	}
	if b.maxShapes <= 0 {
		b.maxShapes = 8
	}
	if b.maxQueued <= 0 {
		b.maxQueued = 4
	}
	if b.clk == nil {
		b.clk = clock.WallClock{}
	}
	return b, nil
}

// MaxBatch returns the resolved megabatch capacity, so front-ends can
// route oversized requests around the coalescer.
func (b *Batcher[T]) MaxBatch() int { return b.maxBatch }

// Solve submits the request and blocks until its flight has flushed
// and its systems are demultiplexed into req.X, or ctx is cancelled.
// The returned error is either an admission error (ErrClosed,
// ErrTooLarge, ErrSaturated, ErrShapeLimit, a shape-mismatch report),
// a cancellation matching core.ErrCancelled, a whole-flight solve
// failure, or a join of this request's own per-system verdict errors
// — never another request's. After the first flush at a shape, a
// Solve on the warm path performs no heap allocations.
func (b *Batcher[T]) Solve(ctx context.Context, req *Request[T]) (Result, error) {
	if err := b.validate(req); err != nil {
		return Result{}, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if ctx.Err() != nil {
		return Result{}, &cancelledError{cause: context.Cause(ctx)}
	}
	q, err := b.queueFor(req.N)
	if err != nil {
		return Result{}, err
	}
	p, err := q.admit(ctx, req, b.clk.Now())
	if err != nil {
		return Result{}, err
	}
	b.admitted.Add(1)
	b.admittedSystems.Add(uint64(req.M))
	b.pendingSystems.Add(int64(req.M))
	select {
	case <-p.done:
	case <-ctx.Done():
		if p.state.CompareAndSwap(stateWaiting, stateCancelled) {
			// We won the race against the flusher: the slot's systems
			// will be dropped (not demuxed) and the pending recycled
			// by the flusher's compaction pass.
			b.cancelledWaits.Add(1)
			b.pendingSystems.Add(-int64(req.M))
			return Result{}, &cancelledError{cause: context.Cause(ctx)}
		}
		// The flusher claimed the slot first; the solve already ran
		// for us, so take the answer (it is about to arrive).
		<-p.done
	}
	res, err := p.res, p.err
	q.recycle(p)
	return res, err
}

// validate rejects malformed requests before they touch a queue.
func (b *Batcher[T]) validate(req *Request[T]) error {
	if req.M <= 0 || req.N <= 0 {
		return fmt.Errorf("batcher: %w: request shape %dx%d", core.ErrShapeMismatch, req.M, req.N)
	}
	if req.M > b.maxBatch {
		return fmt.Errorf("batcher: %w: %d systems > MaxBatch %d", ErrTooLarge, req.M, b.maxBatch)
	}
	size := req.M * req.N
	if len(req.Lower) != size || len(req.Diag) != size || len(req.Upper) != size ||
		len(req.RHS) != size || len(req.X) != size {
		return fmt.Errorf("batcher: %w: plane lengths (%d,%d,%d,%d) and dst %d want %d",
			core.ErrShapeMismatch,
			len(req.Lower), len(req.Diag), len(req.Upper), len(req.RHS), len(req.X), size)
	}
	return nil
}

// queueFor returns (creating if needed) the coalescing queue for
// n-row systems.
func (b *Batcher[T]) queueFor(n int) (*queue[T], error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, ErrClosed
	}
	if q, ok := b.queues[n]; ok {
		return q, nil
	}
	if len(b.queues) >= b.maxShapes {
		return nil, fmt.Errorf("batcher: %w: %d live", ErrShapeLimit, len(b.queues))
	}
	q := &queue[T]{b: b, n: n, kick: make(chan struct{}, 1)}
	q.timer = b.clk.NewTimer(time.Hour)
	q.timer.Stop()
	b.queues[n] = q
	b.wg.Add(1)
	go q.run()
	return q, nil
}

// Close flushes every buffered flight, waits for the flushers to
// drain, and rejects further Solves with ErrClosed. Requests admitted
// before Close still complete normally. Idempotent.
func (b *Batcher[T]) Close() {
	b.mu.Lock()
	already := b.closed
	b.closed = true
	qs := make([]*queue[T], 0, len(b.queues))
	for _, q := range b.queues {
		qs = append(qs, q)
	}
	b.mu.Unlock()
	if !already {
		for _, q := range qs {
			q.mu.Lock()
			q.closed = true
			q.mu.Unlock()
			q.kickNow()
		}
	}
	b.wg.Wait()
}
