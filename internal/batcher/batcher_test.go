package batcher

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"gputrid/internal/clock"
	"gputrid/internal/core"
)

// echoSolve is the test SolveFunc: the "solution" is the interleaved
// RHS, so after demux every request must get exactly its own RHS back
// — which also proves the append/demux strided copies are inverses.
// It performs no heap allocations (the zero-alloc test relies on it).
func echoSolve(_ context.Context, mb *Megabatch[float64]) error {
	copy(mb.Xi, mb.V.RHS)
	return nil
}

// mkReq builds a valid M×N request with a deterministic RHS and the
// destination poisoned with NaN sentinels.
func mkReq(m, n int, seed int64) *Request[float64] {
	size := m * n
	r := &Request[float64]{
		M: m, N: n,
		Lower: make([]float64, size), Diag: make([]float64, size),
		Upper: make([]float64, size), RHS: make([]float64, size),
		X: make([]float64, size),
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < size; i++ {
		r.Lower[i] = rng.Float64()
		r.Diag[i] = 4 + rng.Float64()
		r.Upper[i] = rng.Float64()
		r.RHS[i] = rng.Float64()
		r.X[i] = math.NaN()
	}
	return r
}

func checkEcho(t *testing.T, req *Request[float64]) {
	t.Helper()
	for i := range req.X {
		if req.X[i] != req.RHS[i] {
			t.Fatalf("dst[%d] = %v, want RHS %v", i, req.X[i], req.RHS[i])
		}
	}
}

// waitUntil polls cond with a generous wall-clock timeout; tests use
// it to sequence against the flusher goroutine before advancing the
// virtual clock.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(50 * time.Microsecond)
	}
}

// virtualDeadlineCtx carries a deadline on the virtual timeline
// without ever firing Done — real contexts expire by the wall clock,
// which would race a virtual-time test.
type virtualDeadlineCtx struct {
	context.Context
	dl time.Time
}

func (c virtualDeadlineCtx) Deadline() (time.Time, bool) { return c.dl, true }
func (c virtualDeadlineCtx) Done() <-chan struct{}       { return nil }
func (c virtualDeadlineCtx) Err() error                  { return nil }

// TestWatermarkFlush fills a flight exactly to MaxBatch with
// concurrent single-system requests: the flight must seal and flush
// on the watermark alone, with the virtual clock never advancing, and
// every caller must get its own systems back.
func TestWatermarkFlush(t *testing.T) {
	vc := clock.NewVirtualClock(time.Unix(0, 0))
	b, err := New(Config[float64]{MaxBatch: 8, MaxWait: time.Hour, Clock: vc, Solve: echoSolve})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	reqs := make([]*Request[float64], 8)
	var wg sync.WaitGroup
	for i := range reqs {
		reqs[i] = mkReq(1, 32, int64(i))
		wg.Add(1)
		go func(r *Request[float64]) {
			defer wg.Done()
			res, err := b.Solve(context.Background(), r)
			if err != nil {
				t.Errorf("solve: %v", err)
				return
			}
			if res.Systems != 1 || res.FlushSize != 8 {
				t.Errorf("res = %+v, want 1 system in a flush of 8", res)
			}
		}(reqs[i])
	}
	wg.Wait()
	for _, r := range reqs {
		checkEcho(t, r)
	}
	st := b.Stats()
	if st.FlushesWatermark != 1 || st.Flushes() != 1 {
		t.Fatalf("stats = %+v, want exactly one watermark flush", st)
	}
	if st.FlushedSystems != 8 || st.PaddedSystems != 0 || st.MaxFlushSystems != 8 {
		t.Fatalf("stats = %+v, want 8 flushed, 0 padded", st)
	}
	if st.PendingSystems != 0 {
		t.Fatalf("PendingSystems = %d after drain", st.PendingSystems)
	}
}

// TestDeadlineFlush parks three requests far below the watermark and
// proves nothing flushes until the virtual clock crosses MaxWait —
// then exactly one deadline flush carries all three.
func TestDeadlineFlush(t *testing.T) {
	vc := clock.NewVirtualClock(time.Unix(0, 0))
	b, err := New(Config[float64]{MaxBatch: 64, MaxWait: 5 * time.Millisecond, Clock: vc, Solve: echoSolve})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	reqs := []*Request[float64]{mkReq(1, 16, 1), mkReq(2, 16, 2), mkReq(1, 16, 3)}
	var wg sync.WaitGroup
	for _, r := range reqs {
		wg.Add(1)
		go func(r *Request[float64]) {
			defer wg.Done()
			res, err := b.Solve(context.Background(), r)
			if err != nil {
				t.Errorf("solve: %v", err)
				return
			}
			if res.FlushSize != 4 {
				t.Errorf("FlushSize = %d, want 4", res.FlushSize)
			}
			if res.Wait != 5*time.Millisecond {
				t.Errorf("Wait = %v, want the full 5ms (virtual)", res.Wait)
			}
		}(r)
	}
	waitUntil(t, "3 requests pending", func() bool { return b.Stats().PendingSystems == 4 })
	// Just short of the deadline: still coalescing.
	vc.Advance(4 * time.Millisecond)
	time.Sleep(2 * time.Millisecond)
	if st := b.Stats(); st.Flushes() != 0 {
		t.Fatalf("flushed %d flights before MaxWait", st.Flushes())
	}
	vc.Advance(time.Millisecond)
	wg.Wait()
	for _, r := range reqs {
		checkEcho(t, r)
	}
	st := b.Stats()
	if st.FlushesDeadline != 1 || st.Flushes() != 1 {
		t.Fatalf("stats = %+v, want exactly one deadline flush", st)
	}
	if st.PaddedSystems != 60 {
		t.Fatalf("PaddedSystems = %d, want 60 (64-capacity flight, 4 real)", st.PaddedSystems)
	}
}

// TestSlackExpiryOrdering pins the deadline-slack policy: a request
// whose context deadline minus expected service time and SlackMargin
// lands before the flight's MaxWait pulls the whole flight's flush
// earlier — and a request with no deadline rides along.
func TestSlackExpiryOrdering(t *testing.T) {
	vc := clock.NewVirtualClock(time.Unix(0, 0))
	b, err := New(Config[float64]{
		MaxBatch: 64, MaxWait: 10 * time.Millisecond,
		SlackMargin: time.Millisecond, Clock: vc,
		ServiceTime: func(n int) (time.Duration, bool) { return 2 * time.Millisecond, true },
		Solve:       echoSolve,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	relaxed := mkReq(1, 16, 10)
	urgent := mkReq(1, 16, 11)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := b.Solve(context.Background(), relaxed); err != nil {
			t.Errorf("relaxed solve: %v", err)
		}
	}()
	waitUntil(t, "relaxed request pending", func() bool { return b.Stats().PendingSystems == 1 })
	// Deadline at virtual +5ms; minus 2ms service estimate and 1ms
	// slack the flight must flush by +2ms, not +10ms.
	wg.Add(1)
	go func() {
		defer wg.Done()
		ctx := virtualDeadlineCtx{Context: context.Background(), dl: time.Unix(0, 0).Add(5 * time.Millisecond)}
		res, err := b.Solve(ctx, urgent)
		if err != nil {
			t.Errorf("urgent solve: %v", err)
			return
		}
		if res.Wait > 2*time.Millisecond {
			t.Errorf("urgent waited %v, want <= 2ms", res.Wait)
		}
	}()
	waitUntil(t, "both requests pending", func() bool { return b.Stats().PendingSystems == 2 })
	vc.Advance(time.Millisecond)
	time.Sleep(2 * time.Millisecond)
	if st := b.Stats(); st.Flushes() != 0 {
		t.Fatalf("flushed %d flights before the slack-adjusted deadline", st.Flushes())
	}
	vc.Advance(time.Millisecond)
	wg.Wait()
	checkEcho(t, relaxed)
	checkEcho(t, urgent)
	if st := b.Stats(); st.FlushesDeadline != 1 || st.Flushes() != 1 {
		t.Fatalf("stats = %+v, want one deadline flush at +2ms", st)
	}
}

// TestMixedSizeSealing admits a 3-system and then a 2-system request
// into a 4-capacity batcher: the second cannot fit, so the first
// flight seals and flushes on the watermark while the second starts a
// fresh flight and flushes on its own deadline.
func TestMixedSizeSealing(t *testing.T) {
	vc := clock.NewVirtualClock(time.Unix(0, 0))
	b, err := New(Config[float64]{MaxBatch: 4, MaxWait: time.Millisecond, Clock: vc, Solve: echoSolve})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	first := mkReq(3, 8, 20)
	second := mkReq(2, 8, 21)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		res, err := b.Solve(context.Background(), first)
		if err != nil {
			t.Errorf("first: %v", err)
			return
		}
		if res.FlushSize != 3 {
			t.Errorf("first FlushSize = %d, want 3", res.FlushSize)
		}
	}()
	waitUntil(t, "first pending", func() bool { return b.Stats().PendingSystems == 3 })
	wg.Add(1)
	go func() {
		defer wg.Done()
		res, err := b.Solve(context.Background(), second)
		if err != nil {
			t.Errorf("second: %v", err)
			return
		}
		if res.FlushSize != 2 {
			t.Errorf("second FlushSize = %d, want 2", res.FlushSize)
		}
	}()
	// The second admit seals the first flight (watermark flush, no
	// clock needed) and parks itself.
	waitUntil(t, "first flight flushed", func() bool { return b.Stats().FlushesWatermark == 1 })
	waitUntil(t, "second pending alone", func() bool { return b.Stats().PendingSystems == 2 })
	vc.Advance(time.Millisecond)
	wg.Wait()
	checkEcho(t, first)
	checkEcho(t, second)
	if st := b.Stats(); st.FlushesWatermark != 1 || st.FlushesDeadline != 1 {
		t.Fatalf("stats = %+v, want one watermark + one deadline flush", st)
	}
}

// TestCloseDrains proves Close flushes parked requests instead of
// stranding them, then rejects new work.
func TestCloseDrains(t *testing.T) {
	vc := clock.NewVirtualClock(time.Unix(0, 0))
	b, err := New(Config[float64]{MaxBatch: 64, MaxWait: time.Hour, Clock: vc, Solve: echoSolve})
	if err != nil {
		t.Fatal(err)
	}
	reqs := []*Request[float64]{mkReq(1, 16, 30), mkReq(1, 16, 31)}
	var wg sync.WaitGroup
	for _, r := range reqs {
		wg.Add(1)
		go func(r *Request[float64]) {
			defer wg.Done()
			res, err := b.Solve(context.Background(), r)
			if err != nil {
				t.Errorf("solve: %v", err)
				return
			}
			if res.FlushSize != 2 {
				t.Errorf("FlushSize = %d, want 2", res.FlushSize)
			}
		}(r)
	}
	waitUntil(t, "both pending", func() bool { return b.Stats().PendingSystems == 2 })
	b.Close() // blocks until drained
	wg.Wait()
	for _, r := range reqs {
		checkEcho(t, r)
	}
	if st := b.Stats(); st.FlushesClose != 1 || st.Flushes() != 1 {
		t.Fatalf("stats = %+v, want one close flush", st)
	}
	if _, err := b.Solve(context.Background(), mkReq(1, 16, 32)); !errors.Is(err, ErrClosed) {
		t.Fatalf("solve after close: %v, want ErrClosed", err)
	}
}

// TestCancelledWaitLeavesFlight cancels a parked request: the caller
// unblocks with ErrCancelled and an untouched destination, while the
// abandoned systems still ride the flight (and are simply dropped on
// delivery) — a later request in the same flight is unaffected.
func TestCancelledWaitLeavesFlight(t *testing.T) {
	vc := clock.NewVirtualClock(time.Unix(0, 0))
	b, err := New(Config[float64]{MaxBatch: 64, MaxWait: time.Hour, Clock: vc, Solve: echoSolve})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	doomed := mkReq(1, 16, 40)
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := b.Solve(ctx, doomed)
		errc <- err
	}()
	waitUntil(t, "doomed pending", func() bool { return b.Stats().PendingSystems == 1 })
	cancel()
	if err := <-errc; !errors.Is(err, core.ErrCancelled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled wait returned %v, want ErrCancelled wrapping context.Canceled", err)
	}
	st := b.Stats()
	if st.CancelledWaits != 1 || st.PendingSystems != 0 {
		t.Fatalf("stats = %+v, want 1 cancelled wait and no pending systems", st)
	}

	survivor := mkReq(1, 16, 41)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		res, err := b.Solve(context.Background(), survivor)
		if err != nil {
			t.Errorf("survivor: %v", err)
			return
		}
		// The abandoned system is still in the flight.
		if res.FlushSize != 2 {
			t.Errorf("FlushSize = %d, want 2 (cancelled system rides along)", res.FlushSize)
		}
	}()
	waitUntil(t, "survivor pending", func() bool { return b.Stats().AdmittedSystems == 2 })
	vc.Advance(time.Hour)
	wg.Wait()
	checkEcho(t, survivor)
	for i, x := range doomed.X {
		if !math.IsNaN(x) {
			t.Fatalf("cancelled request's dst[%d] = %v, want untouched NaN sentinel", i, x)
		}
	}
}

// TestVerdictIsolation pins the one-bad-system contract at the
// batcher layer: a SolveFunc that fails individual systems via
// verdicts fails only the requests owning them.
func TestVerdictIsolation(t *testing.T) {
	bad := errors.New("poisoned system")
	solve := func(_ context.Context, mb *Megabatch[float64]) error {
		copy(mb.Xi, mb.V.RHS)
		for i := 0; i < mb.Count; i++ {
			// The corrupt marker: a zero diagonal in row 0.
			if mb.V.Diag[i] == 0 {
				mb.Verdicts[i].Err = bad
			} else if mb.V.Lower[i] == -1 {
				mb.Verdicts[i].Rescued = true
			}
		}
		return nil
	}
	vc := clock.NewVirtualClock(time.Unix(0, 0))
	b, err := New(Config[float64]{MaxBatch: 8, MaxWait: time.Hour, Clock: vc, Solve: solve})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	healthy := mkReq(2, 16, 50)
	poisoned := mkReq(2, 16, 51)
	poisoned.Diag[1*16] = 0 // its second system's row 0
	rescuedReq := mkReq(1, 16, 52)
	rescuedReq.Lower[0] = -1

	var wg sync.WaitGroup
	results := make([]Result, 3)
	errs := make([]error, 3)
	for i, r := range []*Request[float64]{healthy, poisoned, rescuedReq} {
		wg.Add(1)
		go func(i int, r *Request[float64]) {
			defer wg.Done()
			results[i], errs[i] = b.Solve(context.Background(), r)
		}(i, r)
	}
	waitUntil(t, "all pending", func() bool { return b.Stats().PendingSystems == 5 })
	vc.Advance(time.Hour)
	wg.Wait()

	if errs[0] != nil {
		t.Fatalf("healthy request failed: %v", errs[0])
	}
	checkEcho(t, healthy)
	if !errors.Is(errs[1], bad) {
		t.Fatalf("poisoned request error = %v, want the verdict error", errs[1])
	}
	if errs[2] != nil {
		t.Fatalf("rescued request failed: %v", errs[2])
	}
	if results[2].Rescued != 1 {
		t.Fatalf("rescued count = %d, want 1", results[2].Rescued)
	}
	if results[0].Rescued != 0 {
		t.Fatalf("healthy request reports %d rescues", results[0].Rescued)
	}
}

// TestSaturationSheds drives the queue past MaxQueuedFlights with the
// solver wedged and requires ErrSaturated instead of unbounded
// buffering.
func TestSaturationSheds(t *testing.T) {
	entered := make(chan struct{}, 4)
	release := make(chan struct{})
	solve := func(_ context.Context, mb *Megabatch[float64]) error {
		entered <- struct{}{}
		<-release
		copy(mb.Xi, mb.V.RHS)
		return nil
	}
	vc := clock.NewVirtualClock(time.Unix(0, 0))
	b, err := New(Config[float64]{MaxBatch: 2, MaxWait: time.Hour, MaxQueuedFlights: 1, Clock: vc, Solve: solve})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	solveOK := func(r *Request[float64]) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := b.Solve(context.Background(), r); err != nil {
				t.Errorf("solve: %v", err)
			}
		}()
	}
	// Flight 1 seals on admission (M == MaxBatch) and wedges in the
	// solver; flight 2 seals behind it and fills the queue.
	solveOK(mkReq(2, 16, 60))
	<-entered
	solveOK(mkReq(2, 16, 61))
	waitUntil(t, "second flight queued", func() bool {
		st := b.Stats()
		return len(st.Queues) == 1 && st.Queues[0].Flights == 1 && st.Queues[0].Pending == 2
	})
	if _, err := b.Solve(context.Background(), mkReq(2, 16, 62)); !errors.Is(err, ErrSaturated) {
		t.Fatalf("third flight admitted: %v, want ErrSaturated", err)
	}
	if st := b.Stats(); st.Saturated != 1 {
		t.Fatalf("Saturated = %d, want 1", st.Saturated)
	}
	close(release)
	wg.Wait()
	b.Close()
}

// TestAdmissionErrors pins the typed misuse errors.
func TestAdmissionErrors(t *testing.T) {
	if _, err := New(Config[float64]{}); err == nil {
		t.Fatal("New without Solve should fail")
	}
	vc := clock.NewVirtualClock(time.Unix(0, 0))
	b, err := New(Config[float64]{MaxBatch: 4, MaxShapes: 1, MaxWait: time.Hour, Clock: vc, Solve: echoSolve})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if _, err := b.Solve(context.Background(), mkReq(5, 8, 1)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized: %v, want ErrTooLarge", err)
	}
	bad := mkReq(2, 8, 2)
	bad.RHS = bad.RHS[:7]
	if _, err := b.Solve(context.Background(), bad); !errors.Is(err, core.ErrShapeMismatch) {
		t.Fatalf("short plane: %v, want ErrShapeMismatch", err)
	}
	if _, err := b.Solve(context.Background(), &Request[float64]{M: 0, N: 8}); !errors.Is(err, core.ErrShapeMismatch) {
		t.Fatalf("zero systems: %v, want ErrShapeMismatch", err)
	}
	// Occupy the single shape slot, then ask for another N.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := b.Solve(context.Background(), mkReq(4, 8, 3)); err != nil {
			t.Errorf("first shape: %v", err)
		}
	}()
	wg.Wait() // watermark flush; the N=8 queue stays live
	if _, err := b.Solve(context.Background(), mkReq(1, 16, 4)); !errors.Is(err, ErrShapeLimit) {
		t.Fatalf("second shape: %v, want ErrShapeLimit", err)
	}
	// A pre-cancelled context never enqueues.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := b.Solve(ctx, mkReq(1, 8, 5)); !errors.Is(err, core.ErrCancelled) {
		t.Fatalf("pre-cancelled ctx: %v, want ErrCancelled", err)
	}
}

// TestSteadyStateZeroAllocs is the tier-1 allocation gate for the
// hot coalesce→solve→demux loop (ISSUE 8 satellite): after warmup, a
// watermark-flushed Solve — admission, strided append, flush, demux,
// delivery, recycling, across both the caller and the flusher
// goroutine (AllocsPerRun counts every goroutine's mallocs) — runs
// allocation-free.
func TestSteadyStateZeroAllocs(t *testing.T) {
	vc := clock.NewVirtualClock(time.Unix(0, 0))
	b, err := New(Config[float64]{MaxBatch: 4, MaxWait: time.Hour, Clock: vc, Solve: echoSolve})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	req := mkReq(4, 64, 70)
	ctx := context.Background()
	// Warm the queue: first Solve cold-allocates flight and pending.
	if _, err := b.Solve(ctx, req); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := b.Solve(ctx, req); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Solve allocates %.1f objects/op, want 0", allocs)
	}
}

// TestConcurrentHammer races many mixed-size requests through a small
// batcher under the wall clock and checks every caller got exactly
// its own data back (the per-package half of the bitwise story; the
// end-to-end half with the real solver lives in the root package).
func TestConcurrentHammer(t *testing.T) {
	b, err := New(Config[float64]{MaxBatch: 8, MaxWait: 200 * time.Microsecond, Solve: echoSolve})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	var wg sync.WaitGroup
	for g := 0; g < 64; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 20; iter++ {
				r := mkReq(1+g%3, 24, int64(g*1000+iter))
				_, err := b.Solve(context.Background(), r)
				for errors.Is(err, ErrSaturated) {
					// Shedding under load is the designed behavior;
					// back off and retry like a real client.
					time.Sleep(100 * time.Microsecond)
					_, err = b.Solve(context.Background(), r)
				}
				if err != nil {
					t.Errorf("g%d iter%d: %v", g, iter, err)
					return
				}
				for i := range r.X {
					if r.X[i] != r.RHS[i] {
						t.Errorf("g%d iter%d: cross-request data leak at %d", g, iter, i)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	st := b.Stats()
	if st.AdmittedSystems != st.FlushedSystems {
		t.Fatalf("admitted %d systems but flushed %d", st.AdmittedSystems, st.FlushedSystems)
	}
	if st.PendingSystems != 0 {
		t.Fatalf("PendingSystems = %d after drain", st.PendingSystems)
	}
}
