package trifile

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"gputrid/internal/matrix"
	"gputrid/internal/workload"
)

func TestTextRoundTrip(t *testing.T) {
	b := workload.Batch[float64](workload.DiagDominant, 3, 17, 5)
	var buf bytes.Buffer
	if err := WriteText(&buf, b); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText[float64](&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.M != 3 || got.N != 17 {
		t.Fatalf("shape %dx%d", got.M, got.N)
	}
	for _, pair := range [][2][]float64{
		{got.Lower, b.Lower}, {got.Diag, b.Diag}, {got.Upper, b.Upper}, {got.RHS, b.RHS},
	} {
		if d := matrix.MaxAbsDiff(pair[0], pair[1]); d != 0 {
			t.Errorf("text round trip not exact: %g", d)
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	b := workload.Batch[float64](workload.Toeplitz, 5, 64, 9)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, b); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary[float64](&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d := matrix.MaxAbsDiff(got.Diag, b.Diag); d != 0 {
		t.Errorf("binary round trip not exact: %g", d)
	}
	if d := matrix.MaxAbsDiff(got.RHS, b.RHS); d != 0 {
		t.Errorf("binary RHS round trip not exact: %g", d)
	}
}

func TestReadTextNoHeaderSingleSystem(t *testing.T) {
	in := "0 2 1 3\n1 2 1 4\n1 2 0 3\n"
	b, err := ReadText[float64](strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if b.M != 1 || b.N != 3 {
		t.Fatalf("shape %dx%d, want 1x3", b.M, b.N)
	}
	if b.Diag[1] != 2 || b.RHS[2] != 3 {
		t.Error("values wrong")
	}
}

func TestReadTextBatchViaBlankLines(t *testing.T) {
	in := "0 2 0 1\n\n0 3 0 6\n"
	b, err := ReadText[float64](strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if b.M != 2 || b.N != 1 {
		t.Fatalf("shape %dx%d, want 2x1", b.M, b.N)
	}
}

func TestReadTextErrors(t *testing.T) {
	if _, err := ReadText[float64](strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := ReadText[float64](strings.NewReader("1 2 3\n")); err == nil {
		t.Error("short row accepted")
	}
	if _, err := ReadText[float64](strings.NewReader("0 1 0 1\n\n0 1 0 1\n0 1 0 1\n")); err == nil {
		t.Error("ragged batch accepted")
	}
	if _, err := ReadText[float64](strings.NewReader("a b c d\n")); err == nil {
		t.Error("non-numeric row accepted")
	}
}

func TestReadBinaryErrors(t *testing.T) {
	if _, err := ReadBinary[float64](bytes.NewReader([]byte("JUNKxxxx"))); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := ReadBinary[float64](bytes.NewReader(binMagic[:])); err == nil {
		t.Error("truncated header accepted")
	}
	// Implausible shape.
	var buf bytes.Buffer
	buf.Write(binMagic[:])
	buf.Write(make([]byte, 16)) // M = N = 0
	if _, err := ReadBinary[float64](&buf); err == nil {
		t.Error("zero shape accepted")
	}
}

func TestFloat32Text(t *testing.T) {
	b := workload.Batch[float32](workload.Spline, 2, 9, 3)
	var buf bytes.Buffer
	if err := WriteText(&buf, b); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText[float32](&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d := matrix.MaxAbsDiff(got.Diag, b.Diag); d != 0 {
		t.Errorf("float32 round trip: %g", d)
	}
}

func TestWriteSolution(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSolution(&buf, []float64{1, 2, 3, 4}, 2, 2); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "1\n2\n\n3\n4\n") {
		t.Errorf("solution format: %q", out)
	}
	if err := WriteSolution(&buf, []float64{1}, 2, 2); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed uint32, mRaw, nRaw uint8) bool {
		m := int(mRaw)%4 + 1
		n := int(nRaw)%20 + 1
		b := workload.Batch[float64](workload.DiagDominant, m, n, uint64(seed))
		var tb, bb bytes.Buffer
		if WriteText(&tb, b) != nil || WriteBinary(&bb, b) != nil {
			return false
		}
		t1, err1 := ReadText[float64](&tb)
		t2, err2 := ReadBinary[float64](&bb)
		if err1 != nil || err2 != nil {
			return false
		}
		return matrix.MaxAbsDiff(t1.Diag, b.Diag) == 0 &&
			matrix.MaxAbsDiff(t2.Diag, b.Diag) == 0 &&
			matrix.MaxAbsDiff(t1.RHS, b.RHS) == 0 &&
			matrix.MaxAbsDiff(t2.RHS, b.RHS) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
