// Package trifile reads and writes tridiagonal systems and batches in
// two self-describing formats:
//
//   - a text format, one "a b c d" row per line with optional
//     "# tridiag M N" header and blank lines between systems of a
//     batch — convenient for hand-written inputs and diffing;
//   - a binary format ("TRID" magic, little-endian float64 payload) for
//     large batches.
//
// cmd/tridsolve uses it for -in/-out.
package trifile

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"strings"

	"gputrid/internal/matrix"
	"gputrid/internal/num"
)

// WriteText writes the batch in the text format.
func WriteText[T num.Real](w io.Writer, b *matrix.Batch[T]) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# tridiag %d %d\n", b.M, b.N)
	for i := 0; i < b.M; i++ {
		if i > 0 {
			fmt.Fprintln(bw)
		}
		s := b.System(i)
		for j := 0; j < b.N; j++ {
			fmt.Fprintf(bw, "%.17g %.17g %.17g %.17g\n",
				float64(s.Lower[j]), float64(s.Diag[j]), float64(s.Upper[j]), float64(s.RHS[j]))
		}
	}
	return bw.Flush()
}

// ReadText parses the text format. Without a header, a single system is
// assumed (blank lines still split systems, all of which must have the
// same length).
func ReadText[T num.Real](r io.Reader) (*matrix.Batch[T], error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var systems [][]row
	cur := []row{}
	flush := func() {
		if len(cur) > 0 {
			systems = append(systems, cur)
			cur = nil
		}
	}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			flush()
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		var rr row
		if _, err := fmt.Sscan(line, &rr.a, &rr.b, &rr.c, &rr.d); err != nil {
			return nil, fmt.Errorf("trifile: line %d: %w", lineNo, err)
		}
		cur = append(cur, rr)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	flush()
	if len(systems) == 0 {
		return nil, fmt.Errorf("trifile: no rows found")
	}
	n := len(systems[0])
	for i, sys := range systems {
		if len(sys) != n {
			return nil, fmt.Errorf("trifile: system %d has %d rows, expected %d", i, len(sys), n)
		}
	}
	b := matrix.NewBatch[T](len(systems), n)
	for i, sys := range systems {
		base := i * n
		for j, rr := range sys {
			b.Lower[base+j] = T(rr.a)
			b.Diag[base+j] = T(rr.b)
			b.Upper[base+j] = T(rr.c)
			b.RHS[base+j] = T(rr.d)
		}
	}
	return b, nil
}

type row struct{ a, b, c, d float64 }

var binMagic = [4]byte{'T', 'R', 'I', 'D'}

// WriteBinary writes the batch in the binary format (float64 payload
// regardless of T).
func WriteBinary[T num.Real](w io.Writer, b *matrix.Batch[T]) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binMagic[:]); err != nil {
		return err
	}
	hdr := [2]uint64{uint64(b.M), uint64(b.N)}
	if err := binary.Write(bw, binary.LittleEndian, hdr[:]); err != nil {
		return err
	}
	for _, arr := range [][]T{b.Lower, b.Diag, b.Upper, b.RHS} {
		buf := make([]uint64, len(arr))
		for i, v := range arr {
			buf[i] = math.Float64bits(float64(v))
		}
		if err := binary.Write(bw, binary.LittleEndian, buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary parses the binary format.
func ReadBinary[T num.Real](r io.Reader) (*matrix.Batch[T], error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trifile: %w", err)
	}
	if magic != binMagic {
		return nil, fmt.Errorf("trifile: bad magic %q", magic)
	}
	var hdr [2]uint64
	if err := binary.Read(br, binary.LittleEndian, hdr[:]); err != nil {
		return nil, err
	}
	m, n := int(hdr[0]), int(hdr[1])
	if m <= 0 || n <= 0 || m > 1<<24 || n > 1<<28 {
		return nil, fmt.Errorf("trifile: implausible batch shape %dx%d", m, n)
	}
	b := matrix.NewBatch[T](m, n)
	for _, arr := range [][]T{b.Lower, b.Diag, b.Upper, b.RHS} {
		buf := make([]uint64, len(arr))
		if err := binary.Read(br, binary.LittleEndian, buf); err != nil {
			return nil, err
		}
		for i, bits := range buf {
			arr[i] = T(math.Float64frombits(bits))
		}
	}
	return b, nil
}

// WriteSolution writes a solution vector, one value per line, with
// blank lines between systems.
func WriteSolution[T num.Real](w io.Writer, x []T, m, n int) error {
	if len(x) != m*n {
		return fmt.Errorf("trifile: solution length %d != %d*%d", len(x), m, n)
	}
	bw := bufio.NewWriter(w)
	for i := 0; i < m; i++ {
		if i > 0 {
			fmt.Fprintln(bw)
		}
		for j := 0; j < n; j++ {
			fmt.Fprintf(bw, "%.17g\n", float64(x[i*n+j]))
		}
	}
	return bw.Flush()
}
