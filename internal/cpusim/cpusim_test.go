package cpusim

import "testing"

func TestValidate(t *testing.T) {
	if err := I7_975().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := I7_975()
	bad.Cores = 0
	if bad.Validate() == nil {
		t.Error("zero cores accepted")
	}
	bad = I7_975()
	bad.EffectiveHT = 0.5
	if bad.Validate() == nil {
		t.Error("HT < 1 accepted")
	}
}

func TestThomasTimeScalesLinearlyInWork(t *testing.T) {
	c := I7_975()
	t1 := c.ThomasTime(1024, 512, 8, 1)
	t2 := c.ThomasTime(2048, 512, 8, 1)
	ratio := (t2 - c.CallOverhead) / (t1 - c.CallOverhead)
	if ratio < 1.9 || ratio > 2.1 {
		t.Errorf("doubling M changed time by %.2fx, want ~2x", ratio)
	}
}

func TestThomasTimeParallelSpeedup(t *testing.T) {
	c := I7_975()
	seq := c.ThomasTime(4096, 512, 8, 1)
	par := c.ThomasTime(4096, 512, 8, 8)
	sp := seq / par
	if sp < 2 {
		t.Errorf("parallel speedup only %.2fx", sp)
	}
	if sp > float64(c.Cores)*c.EffectiveHT+0.5 {
		t.Errorf("parallel speedup %.2fx exceeds modeled worker count", sp)
	}
}

func TestThomasTimeParallelLimitedByM(t *testing.T) {
	c := I7_975()
	// With M=2 only two workers can be busy.
	seq := c.ThomasTime(2, 1<<20, 8, 1)
	par := c.ThomasTime(2, 1<<20, 8, 8)
	if sp := seq / par; sp > 2.3 {
		t.Errorf("speedup %.2fx with only 2 systems", sp)
	}
}

func TestThomasTimeSequentialIgnoresSpawn(t *testing.T) {
	c := I7_975()
	a := c.ThomasTime(1, 1000, 8, 1)
	b := c.ThomasTime(1, 1000, 8, 2) // m=1: workers clamp to 1, but spawn is paid
	if b < a {
		t.Error("threaded call cheaper than sequential for M=1")
	}
}

func TestThomasTimeSinglePrecisionNotSlower(t *testing.T) {
	c := I7_975()
	// Large N so the memory term dominates; float32 moves half the bytes.
	if c.ThomasTime(64, 1<<20, 4, 1) > c.ThomasTime(64, 1<<20, 8, 1) {
		t.Error("float32 slower than float64 in memory-bound regime")
	}
}

func TestThomasTimeCacheEffect(t *testing.T) {
	c := I7_975()
	// Same total rows; small-N batch fits the workspace in cache and
	// must not be slower than one huge system.
	small := c.ThomasTime(1024, 1024, 8, 1)
	big := c.ThomasTime(1, 1024*1024, 8, 1)
	if small > big {
		t.Errorf("cache-resident workload slower: %g vs %g", small, big)
	}
}

func TestThomasTimeDegenerate(t *testing.T) {
	c := I7_975()
	if got := c.ThomasTime(0, 100, 8, 1); got != c.CallOverhead {
		t.Errorf("empty call = %g, want overhead", got)
	}
}
