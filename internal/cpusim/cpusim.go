// Package cpusim is the analytic CPU performance model used to plot the
// MKL-proxy curves of the paper's figures. It mirrors internal/gpusim's
// role for the GPU: the Go implementations in internal/cpu establish
// correctness and real (wall-clock) behaviour, while this model supplies
// deterministic execution-time estimates with Intel i7-975-like
// parameters so the figures are reproducible on any machine, including
// single-core CI boxes.
package cpusim

import "fmt"

// CPU describes the modeled processor.
type CPU struct {
	Name           string
	Cores          int
	ClockHz        float64
	EffectiveHT    float64 // parallel speedup multiplier from SMT (>=1)
	MemBandwidth   float64 // aggregate DRAM bandwidth, bytes/s
	CoreBandwidth  float64 // single-core sustainable bandwidth, bytes/s
	CyclesPerRow   float64 // amortized cycles per tridiagonal row (dgtsv-like)
	CallOverhead   float64 // per library call, seconds
	SpawnOverhead  float64 // per parallel region, seconds
	LLCBytes       int     // last-level cache size
	RowBytesFactor float64 // DRAM bytes per row per element byte (streaming)
}

// I7_975 returns the paper's CPU: Intel Core i7-975 Extreme, 4 cores /
// 8 threads at 3.33 GHz, triple-channel DDR3 (~25 GB/s peak).
//
// CyclesPerRow is calibrated so that the model's sequential-MKL curve
// sits where the paper's measurements put it relative to the GPU model
// (the paper's 49x headline at N=512): 66 cycles ≈ 20 ns per row.
// dgtsv performs pivoted LU with branchy inner loops and extra arrays
// (du2, ipiv), far costlier per row than a textbook Thomas.
func I7_975() *CPU {
	return &CPU{
		Name:           "i7-975",
		Cores:          4,
		ClockHz:        3.33e9,
		EffectiveHT:    1.5, // 4 cores * 1.5 = 6 effective workers
		MemBandwidth:   25.6e9,
		CoreBandwidth:  9.0e9,
		CyclesPerRow:   66,
		CallOverhead:   2e-6,
		SpawnOverhead:  8e-6,
		LLCBytes:       8 << 20,
		RowBytesFactor: 9, // a,b,c,d loads + c',d' spill/reload + x store
	}
}

// Validate reports configuration errors.
func (c *CPU) Validate() error {
	if c.Cores <= 0 || c.ClockHz <= 0 || c.MemBandwidth <= 0 ||
		c.CoreBandwidth <= 0 || c.CyclesPerRow <= 0 || c.EffectiveHT < 1 ||
		c.RowBytesFactor <= 0 {
		return fmt.Errorf("cpusim: invalid CPU configuration %+v", c)
	}
	return nil
}

// ThomasTime estimates the time to solve m independent n-row systems
// with elemBytes-wide elements using threads parallel workers
// (threads == 1 models sequential MKL; threads > 1 models the
// multithreaded library, which parallelizes across systems only).
//
// The estimate is the maximum of a compute term (CyclesPerRow per row,
// divided over the workers that actually have work) and a memory term
// (streamed bytes over the relevant bandwidth), plus call/spawn
// overheads. When the working set fits in the last-level cache the
// workspace traffic stays on chip and the DRAM term shrinks to the
// compulsory 5-array stream.
func (c *CPU) ThomasTime(m, n, elemBytes, threads int) float64 {
	if m <= 0 || n <= 0 {
		return c.CallOverhead
	}
	rows := float64(m) * float64(n)

	workers := 1.0
	if threads > 1 {
		workers = float64(c.Cores) * c.EffectiveHT
		if t := float64(threads); t < workers {
			workers = t
		}
		if fm := float64(m); fm < workers {
			workers = fm // only M systems' worth of parallelism exists
		}
	}

	cyc := c.CyclesPerRow
	if elemBytes == 4 {
		// sgtsv's narrower elements vectorize the update loops a bit;
		// the recurrence itself stays latency-bound.
		cyc *= 0.8
	}
	rowBytes := c.RowBytesFactor * float64(elemBytes)
	if working := 6 * n * elemBytes; working < c.LLCBytes {
		// Workspace (c', d') round trips stay in cache; only the
		// compulsory input stream and solution writeback hit DRAM.
		rowBytes = 5 * float64(elemBytes)
	} else {
		// Out-of-cache single systems additionally stall the serial
		// recurrence on DRAM misses across five concurrent streams.
		cyc *= 1.3
	}
	compute := rows * cyc / c.ClockHz / workers
	bw := c.CoreBandwidth
	if workers > 1 {
		bw = c.CoreBandwidth * workers
		if bw > c.MemBandwidth {
			bw = c.MemBandwidth
		}
	}
	memory := rows * rowBytes / bw

	t := compute
	if memory > t {
		t = memory
	}
	t += c.CallOverhead
	if threads > 1 {
		t += c.SpawnOverhead
	}
	return t
}
