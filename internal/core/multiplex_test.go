package core

import (
	"testing"

	"gputrid/internal/matrix"
	"gputrid/internal/workload"
)

func TestMultiplexedMatchesUnmultiplexed(t *testing.T) {
	m, n, k := 7, 512, 5
	b := workload.Batch[float64](workload.DiagDominant, m, n, 31)
	x1, _, err := Solve(Config{Device: dev(), K: k, BlocksPerSystem: 1}, b)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []int{2, 3, 7, 10} {
		xq, rep, err := Solve(Config{Device: dev(), K: k, SystemsPerBlock: q}, b)
		if err != nil {
			t.Fatalf("q=%d: %v", q, err)
		}
		if d := matrix.MaxAbsDiff(x1, xq); d != 0 {
			t.Errorf("q=%d: multiplexed differs by %g", q, d)
		}
		if rep.BlocksPerSystem != 1 {
			t.Errorf("q=%d: BlocksPerSystem = %d", q, rep.BlocksPerSystem)
		}
	}
}

func TestMultiplexedSharedScalesWithQ(t *testing.T) {
	m, n, k := 4, 256, 4
	b := workload.Batch[float64](workload.DiagDominant, m, n, 5)
	_, r1, err := Solve(Config{Device: dev(), K: k, BlocksPerSystem: 1}, b)
	if err != nil {
		t.Fatal(err)
	}
	_, r2, err := Solve(Config{Device: dev(), K: k, SystemsPerBlock: 2}, b)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Kernels[0].SharedPerBlock != 2*r1.Kernels[0].SharedPerBlock {
		t.Errorf("shared per block %d, want 2x %d",
			r2.Kernels[0].SharedPerBlock, r1.Kernels[0].SharedPerBlock)
	}
	if r2.Kernels[0].Blocks != 2 { // ceil(4/2)
		t.Errorf("blocks = %d, want 2", r2.Kernels[0].Blocks)
	}
}

func TestMultiplexedRejectsOverflowAndConflicts(t *testing.T) {
	b := workload.Batch[float64](workload.DiagDominant, 8, 4096, 1)
	// k=8 window is ~33KB; q=2 exceeds 48KB.
	if _, _, err := Solve(Config{Device: dev(), K: 8, SystemsPerBlock: 2}, b); err == nil {
		t.Error("shared overflow accepted")
	}
	if _, _, err := Solve(Config{Device: dev(), K: 4, SystemsPerBlock: 2, BlocksPerSystem: 2}, b); err == nil {
		t.Error("mux + multi-block accepted")
	}
}
