package core

import (
	"math"
	"testing"

	"gputrid/internal/cpu"
	"gputrid/internal/matrix"
	"gputrid/internal/workload"
)

// TestDegenerateShapes drives the hybrid through every tiny/awkward
// shape the pipeline's index algebra must survive.
func TestDegenerateShapes(t *testing.T) {
	for _, tc := range []struct{ m, n, k int }{
		{1, 1, 0}, {1, 1, KAuto}, {1, 2, 1}, {1, 2, KAuto}, {2, 1, 0},
		{1, 3, 2}, {5, 2, 3}, {1, 7, 8}, // k far larger than log2(n)
		{1, 16, 4}, // 2^k == n exactly
		{3, 5, 5},
	} {
		b := workload.Batch[float64](workload.DiagDominant, tc.m, tc.n, uint64(tc.m*100+tc.n*10+1))
		x, rep, err := Solve(Config{Device: dev(), K: tc.k}, b)
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		want, err := cpu.SolveBatchSeq(b)
		if err != nil {
			t.Fatal(err)
		}
		if d := matrix.MaxRelDiff(x, want); d > 1e-9 {
			t.Errorf("%+v (resolved k=%d): differs from Thomas by %g", tc, rep.K, d)
		}
		if rep.K > 0 && 1<<rep.K > tc.n {
			t.Errorf("%+v: resolved k=%d exceeds system size", tc, rep.K)
		}
	}
}

// TestNearSingularResidualScalesWithConditioning injects progressively
// worse conditioning and checks the non-pivoting hybrid degrades
// gracefully (residual stays small — backward stability — even as the
// forward error grows).
func TestNearSingularResidualScalesWithConditioning(t *testing.T) {
	b := workload.Batch[float64](workload.NearSingular, 4, 96, 3)
	x, _, err := Solve(Config{Device: dev(), K: 4}, b)
	if err != nil {
		t.Fatal(err)
	}
	if r := matrix.MaxResidual(b, x); r > 1e-8 {
		t.Errorf("near-singular residual %g", r)
	}
}

// TestSingularProducesNonFinite documents the contract: a singular
// system yields Inf/NaN (detected by verification), not silent garbage.
func TestSingularProducesNonFinite(t *testing.T) {
	b := matrix.NewBatch[float64](1, 16)
	for i := range b.RHS {
		b.RHS[i] = 1 // all-zero matrix, nonzero RHS
	}
	x, _, err := Solve(Config{Device: dev(), K: 2}, b)
	if err != nil {
		t.Fatal(err) // the solve itself must not error (no pivoting)
	}
	finite := true
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			finite = false
		}
	}
	if finite {
		t.Error("singular solve produced finite values everywhere; expected Inf/NaN markers")
	}
	if r := matrix.MaxResidual(b, x); !math.IsInf(r, 1) {
		t.Errorf("residual of singular solve = %g, want +Inf", r)
	}
}

// TestMixedMagnitudeCoefficients stresses scaling: rows with 1e-8 and
// 1e+8 magnitudes in one system.
func TestMixedMagnitudeCoefficients(t *testing.T) {
	n := 128
	s := matrix.NewSystem[float64](n)
	for i := 0; i < n; i++ {
		scale := math.Pow(10, float64(i%17)-8)
		if i > 0 {
			s.Lower[i] = -0.4 * scale
		}
		if i < n-1 {
			s.Upper[i] = -0.4 * scale
		}
		s.Diag[i] = scale
		s.RHS[i] = scale * float64(i%5)
	}
	x, _, err := SolveSystem(Config{Device: dev(), K: 5}, s)
	if err != nil {
		t.Fatal(err)
	}
	if err := matrix.CheckSolution(s, x); err != nil {
		t.Error(err)
	}
}

// TestUserGarbageInCorners verifies the Lower[0]/Upper[n-1]
// normalization: junk in the structurally ignored corners must not
// change the answer.
func TestUserGarbageInCorners(t *testing.T) {
	b := workload.Batch[float64](workload.DiagDominant, 2, 64, 7)
	clean, _, err := Solve(Config{Device: dev(), K: 3}, b)
	if err != nil {
		t.Fatal(err)
	}
	dirty := b.Clone()
	for i := 0; i < dirty.M; i++ {
		dirty.Lower[i*dirty.N] = 1e9
		dirty.Upper[i*dirty.N+dirty.N-1] = -1e9
	}
	got, _, err := Solve(Config{Device: dev(), K: 3}, dirty)
	if err != nil {
		t.Fatal(err)
	}
	if d := matrix.MaxAbsDiff(clean, got); d != 0 {
		t.Errorf("corner garbage changed the solution by %g", d)
	}
}

// TestLargeCGrid stresses the sub-tile scale with awkward N.
func TestLargeCGrid(t *testing.T) {
	for _, c := range []int{2, 3, 5} {
		b := workload.Batch[float64](workload.DiagDominant, 2, 777, uint64(c))
		x, _, err := Solve(Config{Device: dev(), K: 4, C: c, BlocksPerSystem: 2}, b)
		if err != nil {
			t.Fatalf("c=%d: %v", c, err)
		}
		if r := matrix.MaxResidual(b, x); r > matrix.ResidualTolerance[float64](777) {
			t.Errorf("c=%d: residual %g", c, r)
		}
	}
}
