package core

import (
	"fmt"

	"gputrid/internal/matrix"
	"gputrid/internal/num"
)

// HybridFactorization caches everything about a batch's k-step PCR
// reduction that does not depend on the right-hand side: the per-row,
// per-level elimination multipliers k1 = a/b_up and k2 = c/b_dn
// (paper Eqs. 5-6), the reduced sub-diagonal, and the p-Thomas pivots
// of the 2^k subsystems. Solving for a new right-hand side then only
// replays the d-updates (4 flops per row-level instead of a full
// 16-flop Combine) and runs the cached-pivot Thomas sweeps — the
// natural extension of LU reuse to the hybrid algorithm, for ADI and
// other time-stepping workloads whose matrices are fixed.
//
// Solutions agree with Solve / SolveReference at the same k to within a
// few ULPs: the replay applies exactly the multipliers the full
// reduction would compute, differing only in that cached pivots are
// applied as reciprocal multiplications.
type HybridFactorization[T num.Real] struct {
	m, n, k int
	k1, k2  [][]T // [level][m*n] elimination multipliers
	aR      []T   // reduced sub-diagonal after k steps
	cp      []T   // p-Thomas c' per row
	invDen  []T   // p-Thomas 1/denominator per row
}

// FactorHybrid reduces every matrix of the batch by k PCR steps and
// factors the resulting subsystems. k = KAuto applies the Table III
// heuristic (clamped to the system size).
func FactorHybrid[T num.Real](b *matrix.Batch[T], k int) (*HybridFactorization[T], error) {
	m, n := b.M, b.N
	if k == KAuto {
		k = HeuristicK(m)
	}
	if k < 0 {
		k = 0
	}
	for k > 0 && 1<<k > n {
		k--
	}
	f := &HybridFactorization[T]{m: m, n: n, k: k}
	f.k1 = make([][]T, k)
	f.k2 = make([][]T, k)
	for j := range f.k1 {
		f.k1[j] = make([]T, m*n)
		f.k2[j] = make([]T, m*n)
	}

	// Reduce (a, b, c) per system, recording the multipliers.
	a := append([]T(nil), b.Lower...)
	bb := append([]T(nil), b.Diag...)
	c := append([]T(nil), b.Upper...)
	for i := 0; i < m; i++ {
		a[i*n] = 0
		c[i*n+n-1] = 0
	}
	na := make([]T, m*n)
	nb := make([]T, m*n)
	nc := make([]T, m*n)
	for lvl := 0; lvl < k; lvl++ {
		h := 1 << lvl
		for sys := 0; sys < m; sys++ {
			base := sys * n
			for i := 0; i < n; i++ {
				gi := base + i
				// Identity rows outside the system.
				upB, upA, upC := T(1), T(0), T(0)
				if i-h >= 0 {
					upB, upA, upC = bb[gi-h], a[gi-h], c[gi-h]
				}
				dnB, dnA, dnC := T(1), T(0), T(0)
				if i+h < n {
					dnB, dnA, dnC = bb[gi+h], a[gi+h], c[gi+h]
				}
				kk1 := a[gi] / upB
				kk2 := c[gi] / dnB
				f.k1[lvl][gi] = kk1
				f.k2[lvl][gi] = kk2
				na[gi] = -upA * kk1
				nb[gi] = bb[gi] - upC*kk1 - dnA*kk2
				nc[gi] = -dnC * kk2
			}
		}
		a, na = na, a
		bb, nb = nb, bb
		c, nc = nc, c
	}

	// p-Thomas factor per subsystem (stride 2^k within each system).
	f.aR = a
	f.cp = make([]T, m*n)
	f.invDen = make([]T, m*n)
	p := 1 << k
	for sys := 0; sys < m; sys++ {
		base := sys * n
		for r := 0; r < p && r < n; r++ {
			rows := (n - r + p - 1) / p
			gi := base + r
			den := bb[gi]
			if den == 0 || !num.IsFinite(den) {
				return nil, fmt.Errorf("core: system %d subsystem %d: zero pivot", sys, r)
			}
			f.invDen[gi] = 1 / den
			if rows > 1 {
				f.cp[gi] = c[gi] / den
			}
			for l := 1; l < rows; l++ {
				gi = base + r + l*p
				den = bb[gi] - f.cp[gi-p]*a[gi]
				if den == 0 || !num.IsFinite(den) {
					return nil, fmt.Errorf("core: system %d subsystem %d row %d: zero pivot", sys, r, l)
				}
				f.invDen[gi] = 1 / den
				if l < rows-1 {
					f.cp[gi] = c[gi] / den
				}
			}
		}
	}
	return f, nil
}

// K returns the PCR depth of the factorization.
func (f *HybridFactorization[T]) K() int { return f.k }

// Solve computes solutions for new right-hand sides d (length M·N,
// contiguous) into x. d and x may alias.
func (f *HybridFactorization[T]) Solve(d, x []T) error {
	m, n, k := f.m, f.n, f.k
	if len(d) != m*n || len(x) != m*n {
		return fmt.Errorf("core: factorized solve length mismatch (want %d)", m*n)
	}
	// Replay the d-reduction.
	cur := append([]T(nil), d...)
	nxt := make([]T, m*n)
	for lvl := 0; lvl < k; lvl++ {
		h := 1 << lvl
		k1, k2 := f.k1[lvl], f.k2[lvl]
		for sys := 0; sys < m; sys++ {
			base := sys * n
			for i := 0; i < n; i++ {
				gi := base + i
				var up, dn T
				if i-h >= 0 {
					up = cur[gi-h]
				}
				if i+h < n {
					dn = cur[gi+h]
				}
				nxt[gi] = cur[gi] - up*k1[gi] - dn*k2[gi]
			}
		}
		cur, nxt = nxt, cur
	}
	// Cached-pivot Thomas per subsystem.
	p := 1 << k
	for sys := 0; sys < m; sys++ {
		base := sys * n
		for r := 0; r < p && r < n; r++ {
			rows := (n - r + p - 1) / p
			gi := base + r
			prev := cur[gi] * f.invDen[gi]
			x[gi] = prev
			for l := 1; l < rows; l++ {
				gi = base + r + l*p
				prev = (cur[gi] - prev*f.aR[gi]) * f.invDen[gi]
				x[gi] = prev
			}
			for l := rows - 2; l >= 0; l-- {
				gi = base + r + l*p
				x[gi] -= f.cp[gi] * x[gi+p]
			}
		}
	}
	return nil
}
