package core

// Gray-failure tolerance for the distributed solver: end-to-end
// integrity verification of every interconnect transfer, an escalation
// ladder for transfers that stay corrupt, and hedged re-execution of
// straggling slabs. The fail-stop plane (device death → migration) in
// distributed.go assumes errors announce themselves; this file handles
// the failures that don't — links that silently corrupt, drop, or
// stall payloads, and devices that silently slow down.

import (
	"context"
	"errors"
	"math"
	"sort"

	"gputrid/internal/gpusim"
	"gputrid/internal/num"
)

// errLinkIntegrity reports a transfer whose payload stayed corrupt
// past the full re-exchange budget: the link, not the device, is the
// failure domain, so it must NOT classify as device death (the device
// keeps serving its other slabs) — the slab degrades to the host path
// instead.
var errLinkIntegrity = errors.New("core: transfer stayed corrupt past the re-exchange budget")

// reexchangeBudget is how many times a checksum-mismatched transfer is
// re-exchanged (per escalation rung) before the ladder escalates.
const reexchangeBudget = 2

// HedgePolicy bounds the speculative re-execution of straggling slabs.
// The zero value enables hedging with the defaults.
type HedgePolicy struct {
	// Disable turns hedging off entirely.
	Disable bool
	// Ratio is the outlier threshold: a slab whose modeled phase time
	// exceeds Ratio × the median over device-run slabs is hedged.
	// Values <= 1 mean the default of 3.
	Ratio float64
	// MaxHedges caps speculative re-launches per solve; 0 means no cap.
	MaxHedges int
}

func (h HedgePolicy) ratio() float64 {
	if h.Ratio <= 1 {
		return 3
	}
	return h.Ratio
}

// DeviceObservation is what one distributed solve observed about one
// topology device — the raw signal a gray-failure detector aggregates
// across solves. Every slab execution is recorded against the device
// that ran it, including executions later hedged away, so a silent
// straggler stays visible even when hedging hides it from the makespan.
type DeviceObservation struct {
	// Device is the topology device index.
	Device int
	// Slabs is how many slab-phase executions the device ran.
	Slabs int
	// ModeledBusy is the total modeled seconds of those executions
	// (upload + compute + download, fault penalties included).
	ModeledBusy float64
	// IntegrityRetries counts checksum-mismatched transfers on this
	// device's links that were re-exchanged.
	IntegrityRetries int
	// Hedged counts slabs hedged away from this device (the speculative
	// re-run won).
	Hedged int
}

// devObs is the under-construction observation for one device.
type devObs struct {
	slabs     int
	busy      float64
	integrity int
	hedged    int
}

// noteBusy records one slab-phase execution on dev.
func (s *DistSolver[T]) noteBusy(dev int, seconds float64) {
	s.obsMu.Lock()
	o := s.obs[dev]
	if o == nil {
		o = &devObs{}
		s.obs[dev] = o
	}
	o.slabs++
	o.busy += seconds
	s.obsMu.Unlock()
}

// noteIntegrity records n integrity retries against dev's links.
func (s *DistSolver[T]) noteIntegrity(sl *distSlab, dev, n int) {
	sl.integrity += n
	s.obsMu.Lock()
	o := s.obs[dev]
	if o == nil {
		o = &devObs{}
		s.obs[dev] = o
	}
	o.integrity += n
	s.obsMu.Unlock()
}

// noteHedged records a slab hedged away from dev.
func (s *DistSolver[T]) noteHedged(dev int) {
	s.obsMu.Lock()
	o := s.obs[dev]
	if o == nil {
		o = &devObs{}
		s.obs[dev] = o
	}
	o.hedged++
	s.obsMu.Unlock()
}

// observations snapshots the per-device observations, sorted by device.
func (s *DistSolver[T]) observations() []DeviceObservation {
	s.obsMu.Lock()
	defer s.obsMu.Unlock()
	out := make([]DeviceObservation, 0, len(s.obs))
	for dev, o := range s.obs {
		out = append(out, DeviceObservation{
			Device: dev, Slabs: o.slabs, ModeledBusy: o.busy,
			IntegrityRetries: o.integrity, Hedged: o.hedged,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Device < out[j].Device })
	return out
}

// sumParts is the ABFT checksum: the float64 sum of the payload
// elements, computed sender-side before the transfer and recomputed
// receiver-side after it. A corrupted payload (poisoned to NaN by the
// modeled link) makes the sums mismatch — NaN compares unequal to
// everything, including itself — so corruption detection is exact.
func sumParts[T num.Real](parts ...[]T) float64 {
	var s float64
	for _, p := range parts {
		for _, v := range p {
			s += float64(v)
		}
	}
	return s
}

// poisonNaN models what a corrupting link does to a payload: the
// loudest possible damage, so an escaped corruption can never be
// mistaken for a plausible value.
func poisonNaN[T num.Real](p []T) {
	bad := T(math.NaN())
	for i := range p {
		p[i] = bad
	}
}

// verifiedUp moves a payload whose source of truth stays host-side
// (coefficient uploads, separator values) over the link with checksum
// verification: the receiver recomputes the sum and a mismatch
// re-exchanges the transfer — each retry redraws the link-fault
// schedule at the next per-site sequence number, the transient-link
// model. The host copy is canonical, so a corrupted delivery costs
// only the retry; nothing needs restoring. Returns the total modeled
// seconds charged (retries included) and errLinkIntegrity when the
// link stayed corrupt past the budget.
func (s *DistSolver[T]) verifiedUp(sl *distSlab, dev int, bytes int64, parts ...[]T) (float64, error) {
	want := sumParts(parts...)
	if want != want {
		// The payload legitimately contains NaN: the sum check is blind,
		// send unverified rather than loop forever on a false mismatch.
		return s.topo.Transfer(&s.scope, gpusim.OpHostToDevice, -1, dev, bytes).Seconds, nil
	}
	var secs float64
	for attempt := 0; ; attempt++ {
		rep := s.topo.Transfer(&s.scope, gpusim.OpHostToDevice, -1, dev, bytes)
		secs += rep.Seconds
		got := want
		if rep.Corrupt {
			// The device-side copy arrived damaged; its recomputed sum
			// cannot match the sender's.
			got = math.NaN()
		}
		if got == want {
			return secs, nil
		}
		s.noteIntegrity(sl, dev, 1)
		if attempt >= reexchangeBudget {
			return secs, errLinkIntegrity
		}
	}
}

// verifiedDown moves computed results from device dev into the
// host-side payload buffer with checksum verification. The device copy
// is the source of truth (modeled by the shadow snapshot taken before
// the first attempt): a corrupting link really does poison the host
// buffer, the sum check really does catch it, and the re-exchange
// restores from the device copy — corrupted data is provably present
// and provably never escapes.
func (s *DistSolver[T]) verifiedDown(sl *distSlab, dev int, bytes int64, payload, shadow []T) (float64, error) {
	want := sumParts(payload)
	if want != want {
		return s.topo.Transfer(&s.scope, gpusim.OpDeviceToHost, dev, -1, bytes).Seconds, nil
	}
	copy(shadow, payload)
	var secs float64
	for attempt := 0; ; attempt++ {
		rep := s.topo.Transfer(&s.scope, gpusim.OpDeviceToHost, dev, -1, bytes)
		secs += rep.Seconds
		if rep.Corrupt {
			poisonNaN(payload)
		}
		if got := sumParts(payload); got == want {
			return secs, nil
		}
		s.noteIntegrity(sl, dev, 1)
		if attempt >= reexchangeBudget {
			return secs, errLinkIntegrity
		}
		copy(payload, shadow)
	}
}

// hedgeResult is what the speculative goroutine reports back.
type hedgeResult struct {
	timing gpusim.SlabTiming
	err    error
}

// hedgePhase runs after phase A: slabs whose modeled completion is a
// latency outlier versus their peers (> Ratio × median) are
// speculatively re-executed on the least-loaded survivor, and the
// verified result with the smaller modeled completion wins — in this
// simulator, modeled time is the latency plane, so "first verified
// result" means first in modeled time. The loser is cancelled: its
// result is discarded and, when the solve's context dies mid-hedge,
// the speculative goroutine is cancelled through its own context and
// joined before returning, releasing its device lease. Output bits are
// unaffected either way — the launch geometry is a pure function of
// (N, Slabs), so both candidates compute identical data and hedging
// only moves *where* (and how fast) it happened.
func (s *DistSolver[T]) hedgePhase(ctx context.Context, rep *DistReport, slabs []*distSlab, alive map[int]bool) error {
	h := s.cfg.Hedge
	if h.Disable || len(alive) < 2 {
		return nil
	}

	// Outlier detection over the modeled phase times of device-run slabs.
	var times []float64
	for _, sl := range slabs {
		if sl.dev >= 0 {
			times = append(times, sl.timing.Total())
		}
	}
	if len(times) < 2 {
		return nil
	}
	sort.Float64s(times)
	median := times[len(times)/2]
	if len(times)%2 == 0 {
		median = (times[len(times)/2-1] + times[len(times)/2]) / 2
	}
	threshold := h.ratio() * median
	if median <= 0 {
		return nil
	}

	for _, sl := range slabs {
		if sl.dev < 0 || sl.timing.Total() <= threshold {
			continue
		}
		if h.MaxHedges > 0 && rep.Hedges >= h.MaxHedges {
			return nil
		}
		// Least-loaded survivor by current modeled load (hedge adoptions
		// move load, so recompute per outlier); ties go to the lowest
		// index — deterministic either way.
		load := make(map[int]float64, len(alive))
		for _, other := range slabs {
			if other.dev >= 0 {
				load[other.dev] += other.timing.Total()
			}
		}
		target := -1
		for _, dev := range liveOrder(alive) {
			if dev == sl.dev {
				continue
			}
			if target < 0 || load[dev] < load[target] {
				target = dev
			}
		}
		if target < 0 {
			return nil
		}
		rep.Hedges++
		if err := s.hedgeOne(ctx, rep, sl, target, alive); err != nil {
			return err
		}
	}
	return nil
}

// hedgeOne races one speculative re-execution of slab sl on device
// target against the (already verified) incumbent result. The
// speculative run holds a lease on the target device for its lifetime
// and works entirely in scratch buffers, so losing costs nothing. Any
// speculative failure — integrity exhaustion, cancellation, even the
// target dying — leaves the incumbent standing; a target death is
// still announced and removed from the live set like any other.
func (s *DistSolver[T]) hedgeOne(ctx context.Context, rep *DistReport, sl *distSlab, target int, alive map[int]bool) error {
	hctx, cancel := context.WithCancel(contextOrBackground(ctx))
	defer cancel()

	spec := &distSlab{idx: sl.idx, dev: target, homeDev: -1}
	s.leases[target].Add(1)
	done := make(chan hedgeResult, 1)
	go func() {
		defer s.leases[target].Add(-1)
		if hook := s.testHookHedgeStart; hook != nil {
			hook()
		}
		L := s.part.Slabs[sl.idx].Len()
		err := s.reduceSlab(hctx, spec, target, s.hedgeX[:3*s.m*L], s.hedgeIface, s.hedgeShadow)
		done <- hedgeResult{spec.timing, err}
	}()

	var r hedgeResult
	if ctx != nil {
		select {
		case r = <-done:
		case <-ctx.Done():
			// The solve is being cancelled mid-hedge: cancel the
			// speculative run and join it so its lease is released and
			// no goroutine outlives SolveOn.
			cancel()
			<-done
			rep.HedgesCancelled++
			return cancelled(ctx.Err())
		}
	} else {
		r = <-done
	}
	sl.integrity += spec.integrity

	if r.err != nil {
		rep.HedgesCancelled++
		if isDeviceDeath(r.err) && alive[target] {
			delete(alive, target)
			rep.Deaths = append(rep.Deaths, target)
			s.announceDeath(target)
		}
		return nil
	}
	if r.timing.Total() < sl.timing.Total() {
		// Speculative result completes first in modeled time: adopt it.
		// The data is bitwise identical by construction; what changes is
		// the slab's home device and the modeled makespan.
		p := sl.idx
		L := s.part.Slabs[p].Len()
		copy(s.slabX[p], s.hedgeX[:3*s.m*L])
		copy(s.iface[p], s.hedgeIface)
		s.noteHedged(sl.dev)
		sl.dev = target
		sl.timing = r.timing
		rep.HedgeWins++
	} else {
		rep.HedgesCancelled++
	}
	return nil
}

// contextOrBackground maps the solver's nil-means-no-cancellation
// convention onto a real context for the hedge machinery.
func contextOrBackground(ctx context.Context) context.Context {
	if ctx == nil {
		return context.Background()
	}
	return ctx
}
