package core

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"gputrid/internal/cpu"
	"gputrid/internal/gpusim"
	"gputrid/internal/matrix"
	"gputrid/internal/workload"
)

func distTopo(t *testing.T, n int, ic gpusim.Interconnect) *gpusim.Topology {
	t.Helper()
	topo, err := gpusim.UniformTopology(n, ic, gpusim.GTX480())
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func gtsvReference(t *testing.T, b *matrix.Batch[float64]) []float64 {
	t.Helper()
	ref := make([]float64, b.M*b.N)
	ws := cpu.NewGTSVWorkspace[float64](b.N)
	for i := 0; i < b.M; i++ {
		if err := cpu.SolveGTSVInto(b.System(i), ref[i*b.N:(i+1)*b.N], ws); err != nil {
			t.Fatal(err)
		}
	}
	return ref
}

func maxRelErr(x, ref []float64) float64 {
	worst := 0.0
	for i := range x {
		denom := math.Abs(ref[i])
		if denom < 1 {
			denom = 1
		}
		if e := math.Abs(x[i]-ref[i]) / denom; e > worst {
			worst = e
		}
	}
	return worst
}

// TestDistributedMatchesReference checks the separator decomposition
// against the pivoting GTSV on a well-conditioned batch, across slab
// counts and both interconnect presets.
func TestDistributedMatchesReference(t *testing.T) {
	const m, n = 3, 257
	b := workload.Batch[float64](workload.DiagDominant, m, n, 42)
	ref := gtsvReference(t, b)
	for _, slabs := range []int{1, 2, 3, 4, 7} {
		topo := distTopo(t, 4, gpusim.NVLinkMesh())
		s, err := NewDistSolver[float64](DistConfig{Topology: topo, Slabs: slabs}, m, n)
		if err != nil {
			t.Fatalf("slabs=%d: %v", slabs, err)
		}
		dst := make([]float64, m*n)
		rep, err := s.SolveInto(context.Background(), dst, b)
		if err != nil {
			t.Fatalf("slabs=%d: %v", slabs, err)
		}
		if e := maxRelErr(dst, ref); e > 1e-10 {
			t.Errorf("slabs=%d: max rel err %.3e vs GTSV reference", slabs, e)
		}
		if rep.Slabs != slabs || len(rep.Deaths) != 0 || len(rep.Degraded) != 0 {
			t.Errorf("slabs=%d: unexpected report %+v", slabs, rep)
		}
		if slabs > 1 && rep.Comm.TotalBytes() == 0 {
			t.Errorf("slabs=%d: no interconnect traffic charged", slabs)
		}
		if rep.ModeledPipelined > rep.ModeledSerial {
			t.Errorf("slabs=%d: pipelined makespan %v exceeds serial %v", slabs, rep.ModeledPipelined, rep.ModeledSerial)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDistributedAssignmentInvariance pins the bitwise contract behind
// the recovery protocol: the partition is a function of (N, Slabs)
// only, so running all slabs on one device, on two, or on four
// produces bit-identical solutions — which is exactly why a migrated
// slab reproduces the fault-free bits.
func TestDistributedAssignmentInvariance(t *testing.T) {
	const m, n = 2, 131
	b := workload.Batch[float64](workload.DiagDominant, m, n, 7)
	topo := distTopo(t, 4, gpusim.PCIe2())
	s, err := NewDistSolver[float64](DistConfig{Topology: topo, Slabs: 4}, m, n)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	solveOn := func(live []int) []float64 {
		dst := make([]float64, m*n)
		if _, err := s.SolveOn(context.Background(), dst, b, live); err != nil {
			t.Fatalf("live=%v: %v", live, err)
		}
		return dst
	}
	full := solveOn([]int{0, 1, 2, 3})
	for _, live := range [][]int{{0}, {2}, {1, 3}, {0, 1, 2}} {
		got := solveOn(live)
		for i := range got {
			if got[i] != full[i] {
				t.Fatalf("live=%v: element %d differs bitwise: %x vs %x",
					live, i, math.Float64bits(got[i]), math.Float64bits(full[i]))
			}
		}
	}
}

// TestDistributedDeviceDeath kills one device permanently mid-solve
// (its first tiledPCR launch and every retry abort) and requires: the
// solve completes, the result is bitwise identical to the fault-free
// run, the death surfaced exactly one HealthXID event before
// completion, and the report names the death and the migrations.
func TestDistributedDeviceDeath(t *testing.T) {
	const m, n = 2, 263
	const victim = 1
	b := workload.Batch[float64](workload.DiagDominant, m, n, 11)

	solve := func(kill bool) ([]float64, *DistReport, []gpusim.HealthEvent) {
		topo := distTopo(t, 3, gpusim.NVLinkMesh())
		if kill {
			topo.Device(victim).Faults = &gpusim.Injector{
				Schedule: []gpusim.ScheduledFault{{Kind: gpusim.FaultAbort, Repeat: 1 << 30}},
			}
		}
		var (
			mu  sync.Mutex
			evs []gpusim.HealthEvent
		)
		s, err := NewDistSolver[float64](DistConfig{
			Topology: topo,
			Slabs:    3,
			Retry:    RetryPolicy{BaseBackoff: time.Microsecond},
			Health: func(ev gpusim.HealthEvent) {
				mu.Lock()
				evs = append(evs, ev)
				mu.Unlock()
			},
		}, m, n)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		dst := make([]float64, m*n)
		rep, err := s.SolveInto(context.Background(), dst, b)
		if err != nil {
			t.Fatalf("kill=%v: %v", kill, err)
		}
		return dst, rep, evs
	}

	clean, cleanRep, cleanEvs := solve(false)
	if len(cleanEvs) != 0 || len(cleanRep.Deaths) != 0 {
		t.Fatalf("fault-free run reported deaths: %+v, events %v", cleanRep, cleanEvs)
	}
	got, rep, evs := solve(true)
	for i := range got {
		if got[i] != clean[i] {
			t.Fatalf("element %d differs bitwise from fault-free run: %x vs %x",
				i, math.Float64bits(got[i]), math.Float64bits(clean[i]))
		}
	}
	if len(rep.Deaths) != 1 || rep.Deaths[0] != victim {
		t.Errorf("Deaths = %v, want [%d]", rep.Deaths, victim)
	}
	if rep.Migrations == 0 {
		t.Error("no migrations recorded for a mid-solve death")
	}
	if len(rep.Degraded) != 0 {
		t.Errorf("slabs degraded despite live survivors: %v", rep.Degraded)
	}
	if len(evs) != 1 {
		t.Fatalf("got %d health events, want exactly 1: %v", len(evs), evs)
	}
	if ev := evs[0]; ev.Kind != gpusim.HealthXID || ev.Device != victim {
		t.Errorf("health event = %+v, want XID on device %d", ev, victim)
	}
	for p, dev := range rep.Devices {
		if dev == victim {
			t.Errorf("slab %d still assigned to dead device %d", p, victim)
		}
	}
}

// TestDistributedBacksubDeath kills a device only at the distBacksub
// kernel, proving phase C is its own recoverable failure domain.
func TestDistributedBacksubDeath(t *testing.T) {
	const m, n = 2, 131
	b := workload.Batch[float64](workload.DiagDominant, m, n, 23)
	topo := distTopo(t, 2, gpusim.PCIe2())
	topo.Device(0).Faults = &gpusim.Injector{
		Schedule: []gpusim.ScheduledFault{{Kernel: "distBacksub", Kind: gpusim.FaultAbort, Repeat: 1 << 30}},
	}
	deaths := 0
	s, err := NewDistSolver[float64](DistConfig{
		Topology: topo,
		Slabs:    2,
		Retry:    RetryPolicy{BaseBackoff: time.Microsecond},
		Health:   func(gpusim.HealthEvent) { deaths++ },
	}, m, n)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	dst := make([]float64, m*n)
	rep, err := s.SolveInto(context.Background(), dst, b)
	if err != nil {
		t.Fatal(err)
	}
	if deaths != 1 || len(rep.Deaths) != 1 || rep.Deaths[0] != 0 {
		t.Errorf("backsub death not surfaced: deaths=%d report=%+v", deaths, rep)
	}
	ref := gtsvReference(t, b)
	if e := maxRelErr(dst, ref); e > 1e-10 {
		t.Errorf("max rel err %.3e after backsub migration", e)
	}
}

// TestDistributedDegrade kills every device: with degradation allowed
// the solve must still complete (host pivoting GTSV) and report every
// slab degraded; with NoDegrade it must fail with ErrFaulted.
func TestDistributedDegrade(t *testing.T) {
	const m, n = 2, 67
	b := workload.Batch[float64](workload.DiagDominant, m, n, 31)
	ref := gtsvReference(t, b)
	build := func(noDegrade bool) *DistSolver[float64] {
		topo := distTopo(t, 2, gpusim.PCIe2())
		for i := 0; i < 2; i++ {
			topo.Device(i).Faults = &gpusim.Injector{
				Schedule: []gpusim.ScheduledFault{{Kind: gpusim.FaultAbort, Repeat: 1 << 30}},
			}
		}
		s, err := NewDistSolver[float64](DistConfig{
			Topology: topo,
			Slabs:    2,
			Retry:    RetryPolicy{BaseBackoff: time.Microsecond, NoDegrade: noDegrade},
		}, m, n)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	s := build(false)
	defer s.Close()
	dst := make([]float64, m*n)
	rep, err := s.SolveInto(context.Background(), dst, b)
	if err != nil {
		t.Fatalf("degradable solve failed: %v", err)
	}
	if len(rep.Degraded) != 2 || len(rep.Deaths) != 2 {
		t.Errorf("report = %+v, want both slabs degraded and both devices dead", rep)
	}
	if e := maxRelErr(dst, ref); e > 1e-10 {
		t.Errorf("degraded solve rel err %.3e", e)
	}

	hard := build(true)
	defer hard.Close()
	if _, err := hard.SolveInto(context.Background(), dst, b); !errors.Is(err, ErrFaulted) {
		t.Errorf("NoDegrade all-dead solve = %v, want ErrFaulted", err)
	}
}

// TestDistributedMisuse covers the input validation and single-flight
// contract.
func TestDistributedMisuse(t *testing.T) {
	const m, n = 2, 67
	topo := distTopo(t, 2, gpusim.PCIe2())
	if _, err := NewDistSolver[float64](DistConfig{}, m, n); err == nil {
		t.Error("nil topology accepted")
	}
	if _, err := NewDistSolver[float64](DistConfig{Topology: topo, Slabs: 40}, m, n); err == nil {
		t.Error("over-wide partition accepted")
	}
	s, err := NewDistSolver[float64](DistConfig{Topology: topo}, m, n)
	if err != nil {
		t.Fatal(err)
	}
	b := workload.Batch[float64](workload.DiagDominant, m, n, 1)
	dst := make([]float64, m*n)
	if _, err := s.SolveOn(context.Background(), dst, b, nil); !errors.Is(err, ErrNoLiveDevices) {
		t.Errorf("empty live set = %v, want ErrNoLiveDevices", err)
	}
	if _, err := s.SolveOn(context.Background(), dst, b, []int{5}); err == nil {
		t.Error("out-of-range live device accepted")
	}
	if _, err := s.SolveInto(context.Background(), dst[:1], b); !errors.Is(err, ErrShapeMismatch) {
		t.Error("short dst accepted")
	}
	wrong := workload.Batch[float64](workload.DiagDominant, m, n+1, 1)
	if _, err := s.SolveInto(context.Background(), make([]float64, m*(n+1)), wrong); !errors.Is(err, ErrShapeMismatch) {
		t.Error("wrong-shape batch accepted")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("repeat Close: %v", err)
	}
	if _, err := s.SolveInto(context.Background(), dst, b); !errors.Is(err, ErrDistClosed) {
		t.Errorf("solve after Close = %v, want ErrDistClosed", err)
	}
}

// TestDistributedCancellation parks a dying solve in its migration
// backoff and cancels it; the solve must return promptly with an error
// matching both ErrCancelled and the context error.
func TestDistributedCancellation(t *testing.T) {
	const m, n = 2, 131
	b := workload.Batch[float64](workload.DiagDominant, m, n, 3)
	topo := distTopo(t, 2, gpusim.PCIe2())
	topo.Device(0).Faults = &gpusim.Injector{
		Schedule: []gpusim.ScheduledFault{{Kind: gpusim.FaultAbort, Repeat: 1 << 30}},
	}
	s, err := NewDistSolver[float64](DistConfig{
		Topology: topo,
		Slabs:    2,
		Retry:    RetryPolicy{MaxRetries: 10, BaseBackoff: time.Second, MaxBackoff: time.Minute},
	}, m, n)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	dst := make([]float64, m*n)
	start := time.Now()
	_, err = s.SolveOn(ctx, dst, b, []int{0, 1})
	if el := time.Since(start); el > 2*time.Second {
		t.Errorf("cancellation took %v, want prompt return from backoff", el)
	}
	if !errors.Is(err, ErrCancelled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("cancelled solve = %v, want ErrCancelled and DeadlineExceeded", err)
	}
}
