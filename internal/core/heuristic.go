package core

import (
	"gputrid/internal/gpusim"
	"gputrid/internal/matrix"
	"gputrid/internal/num"
	"gputrid/internal/workload"
)

// HeuristicK returns the paper's Table III empirical transition point
// for the GTX480: the number of tiled-PCR steps as a function of the
// number of independent systems M.
//
//	M < 16:          k = 8  (tile 256)
//	16 <= M < 32:    k = 7  (tile 128)
//	32 <= M < 512:   k = 6  (tile 64)
//	512 <= M < 1024: k = 5  (tile 32)
//	M >= 1024:       k = 0  (straight to p-Thomas)
func HeuristicK(m int) int {
	switch {
	case m < 16:
		return 8
	case m < 32:
		return 7
	case m < 512:
		return 6
	case m < 1024:
		return 5
	default:
		return 0
	}
}

// HeuristicTable reproduces Table III: each row's M range, k, and tile
// size 2^k.
type HeuristicRow struct {
	MLo, MHi int // [MLo, MHi); MHi = 0 means unbounded
	K        int
	TileSize int
}

// TableIII returns the paper's heuristic table.
func TableIII() []HeuristicRow {
	return []HeuristicRow{
		{0, 16, 8, 256},
		{16, 32, 7, 128},
		{32, 512, 6, 64},
		{512, 1024, 5, 32},
		{1024, 0, 0, 1},
	}
}

// TuneK empirically selects k for a batch shape (m systems × n rows in
// precision T) by solving a synthetic diagonally dominant batch at every
// feasible k and picking the smallest modeled execution time — the
// auto-tuning pass the paper says "can be done only once" per
// hardware/shape. It returns the winning k and the modeled time per k
// (indexed by k; entries for infeasible k are +Inf).
func TuneK[T num.Real](dev *gpusim.Device, m, n int) (int, []float64) {
	const maxK = 8
	times := make([]float64, maxK+1)
	b := workload.Batch[T](workload.DiagDominant, m, n, 42)
	best, bestT := 0, 0.0
	for k := 0; k <= maxK; k++ {
		times[k] = inf()
		if 1<<k > n || 1<<k > dev.MaxThreadsPerBlock {
			continue
		}
		cfg := Config{Device: dev, K: k}
		if _, rep, err := Solve(cfg, b.Clone()); err == nil {
			times[k] = ModeledTime[T](dev, rep)
			if bestT == 0 || times[k] < bestT {
				best, bestT = k, times[k]
			}
		}
	}
	return best, times
}

// ModeledTime converts a solve report into the device cost model's
// execution-time estimate, summing the per-kernel estimates (kernels
// run back to back, exactly like the paper's timed region).
func ModeledTime[T num.Real](dev *gpusim.Device, rep *Report) float64 {
	elem := num.SizeOf[T]()
	var t float64
	for _, st := range rep.Kernels {
		t += dev.EstimateTime(st, elem)
	}
	return t
}

func inf() float64 { return 1e300 }

// Verify checks a batch solution and returns the worst relative
// residual, as a convenience for examples and the harness.
func Verify[T num.Real](b *matrix.Batch[T], x []T) float64 {
	return matrix.MaxResidual(b, x)
}
