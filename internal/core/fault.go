package core

import (
	"context"
	"errors"
	"time"
)

// Typed execution-failure errors of the fault-tolerant pipeline,
// matchable with errors.Is through every wrapping layer up to the
// public Solver.
var (
	// ErrCancelled reports a solve stopped by context cancellation or
	// deadline expiry. The returned error also matches the underlying
	// context.Canceled / context.DeadlineExceeded via errors.Is.
	ErrCancelled = errors.New("core: solve cancelled")
	// ErrFaulted reports a transient device fault that survived the
	// retry budget and could not be degraded away (retries exhausted
	// with degradation disabled, or the degraded re-solve itself
	// failed). The wrapped chain carries the *gpusim.LaunchError.
	ErrFaulted = errors.New("core: unrecovered device fault")
)

// cancelledError ties ErrCancelled to the specific context error so
// callers can match either: errors.Is(err, ErrCancelled) and
// errors.Is(err, context.DeadlineExceeded) both hold.
type cancelledError struct{ cause error }

func (e *cancelledError) Error() string        { return "core: solve cancelled: " + e.cause.Error() }
func (e *cancelledError) Is(target error) bool { return target == ErrCancelled }
func (e *cancelledError) Unwrap() error        { return e.cause }

func cancelled(cause error) error {
	if cause == nil {
		cause = context.Canceled
	}
	return &cancelledError{cause}
}

// RetryPolicy bounds the pipeline's recovery from transient launch
// faults. Each shard of a solve is a checkpointed unit of work: its
// inputs are never mutated by its kernels, so a faulted shard is simply
// re-executed from scratch, with capped exponential backoff between
// attempts, and the recovered result is bitwise identical to a
// fault-free run. A shard still faulting after MaxRetries retries is
// degraded: its systems are re-solved through the pivoting GTSV path
// (host-side, stable for any nonsingular system) instead of failing
// the whole batch — unless NoDegrade demands a hard ErrFaulted.
//
// The zero value is the production default: 3 retries, 50µs base
// backoff capped at 2ms, ±25% seeded jitter, degradation on.
type RetryPolicy struct {
	// MaxRetries bounds re-executions per shard after the first
	// attempt. 0 means the default of 3; negative disables retry
	// (a first fault goes straight to degradation or ErrFaulted).
	MaxRetries int
	// BaseBackoff is the pre-retry wait of the first retry, doubled
	// each further attempt; 0 means 50µs.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth; 0 means 2ms.
	MaxBackoff time.Duration
	// Jitter spreads each wait uniformly over ±Jitter/2 of its
	// exponential value, so shards (or devices of a distributed solve)
	// that fault simultaneously do not retry in lockstep and collide
	// again. The draw is a pure hash of (JitterSeed, the caller's
	// shard salt, attempt) — never of time or scheduling — so a given
	// configuration replays the exact same waits on every run. 0 means
	// the default of 0.5 (waits in [75%, 125%] of nominal); negative
	// disables jitter; values above 2 are clamped to 2. The MaxBackoff
	// cap still bounds the jittered wait.
	Jitter float64
	// JitterSeed seeds the jitter hash; 0 is a fixed default seed.
	JitterSeed uint64
	// NoDegrade fails the solve with ErrFaulted once retries are
	// exhausted instead of degrading the shard to the GTSV path,
	// bounding the solve's cost envelope strictly to the fast path.
	NoDegrade bool
}

func (p RetryPolicy) maxRetries() int {
	switch {
	case p.MaxRetries == 0:
		return 3
	case p.MaxRetries < 0:
		return 0
	default:
		return p.MaxRetries
	}
}

// backoff returns the wait before retry attempt+1, growing 2x per
// attempt from BaseBackoff up to MaxBackoff, spread by the seeded
// jitter. salt identifies the retrying unit (worker shard, distributed
// slab) so simultaneous failures draw different offsets.
func (p RetryPolicy) backoff(attempt int, salt uint64) time.Duration {
	base := p.BaseBackoff
	if base <= 0 {
		base = 50 * time.Microsecond
	}
	cap := p.MaxBackoff
	if cap <= 0 {
		cap = 2 * time.Millisecond
	}
	var d time.Duration
	if attempt > 30 {
		d = cap
	} else if d = base << uint(attempt); d > cap || d <= 0 {
		d = cap
	}
	j := p.Jitter
	switch {
	case j < 0:
		return d
	case j == 0:
		j = 0.5
	case j > 2:
		j = 2
	}
	// u is a deterministic uniform draw in [0, 1): splitmix-style
	// avalanche over (seed, salt, attempt), the same construction as
	// the fault injector's site hash.
	h := jmix(p.JitterSeed ^ 0x6a09e667f3bcc909)
	h = jmix(h ^ jmix(salt^0x9e3779b97f4a7c15))
	h = jmix(h ^ uint64(attempt))
	u := float64(h>>11) / (1 << 53)
	d = time.Duration(float64(d) * (1 - j/2 + j*u))
	if d > cap {
		d = cap
	}
	if d < 0 {
		d = 0
	}
	return d
}

// jmix is the splitmix64 finalizer, duplicated from gpusim's mix64 so
// the backoff jitter has no dependency on the simulator package.
func jmix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// sleepBackoff waits d, returning early with the context error if ctx
// is done first. A nil ctx sleeps unconditionally.
func sleepBackoff(ctx context.Context, d time.Duration) error {
	if ctx == nil {
		time.Sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// FaultReport describes what the fault-recovery layer did during one
// solve: how many transient faults fired, how often each kernel was
// retried, which systems were degraded to the pivoting GTSV path, and
// how much modeled device time the faulted attempts wasted. It is
// reset at the start of every solve that runs with an injector or a
// cancellable context, and folded into the pipeline's Report.
type FaultReport struct {
	// Faults counts the transient launch faults observed.
	Faults int
	// Retries counts shard re-executions per kernel name. Nil until
	// the first retry.
	Retries map[string]int
	// Degraded lists (ascending) the systems whose solutions came from
	// the degraded GTSV re-solve instead of the device fast path.
	Degraded []int
	// WastedModeledTime estimates the modeled device time burned by
	// faulted attempts: the re-executed blocks' share of their kernel's
	// modeled time, plus one watchdog budget per hang.
	WastedModeledTime time.Duration
}

// Any reports whether the solve saw any fault activity.
func (r *FaultReport) Any() bool {
	return r.Faults > 0 || len(r.Degraded) > 0
}

// TotalRetries sums Retries across kernels.
func (r *FaultReport) TotalRetries() int {
	n := 0
	for _, v := range r.Retries {
		n += v
	}
	return n
}

func (r *FaultReport) reset() {
	r.Faults = 0
	r.Degraded = r.Degraded[:0]
	r.WastedModeledTime = 0
	clear(r.Retries)
}

func (r *FaultReport) addRetry(kernel string, n int) {
	if r.Retries == nil {
		r.Retries = make(map[string]int, 4)
	}
	r.Retries[kernel] += n
}

// workerFaults is one worker lane's fault bookkeeping for the current
// solve, merged into the pipeline FaultReport by the coordinator after
// the join (the start/done handshake orders the accesses).
type workerFaults struct {
	faults   int
	hangs    int
	retries  [2]int // per launch slot (PCR/k0, then Thomas)
	retryBlk [2]int // blocks re-executed per slot, for the waste model
	degraded bool   // shard exhausted retries; systems go to GTSV
}
