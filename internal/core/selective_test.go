package core

import (
	"testing"

	"gputrid/internal/matrix"
	"gputrid/internal/workload"
)

// TestSolveSelectedMatchesFullSolve: re-solving a subset must reproduce
// the full batch's solutions for exactly those systems.
func TestSolveSelectedMatchesFullSolve(t *testing.T) {
	b := workload.Batch[float64](workload.DiagDominant, 10, 96, 31)
	full, _, err := Solve(Config{Device: dev(), K: 3}, b)
	if err != nil {
		t.Fatal(err)
	}
	idx := []int{7, 1, 4}
	sub, rep, err := SolveSelected(Config{Device: dev(), K: 3}, b, idx)
	if err != nil {
		t.Fatal(err)
	}
	if len(sub) != len(idx)*b.N {
		t.Fatalf("selected solution length %d, want %d", len(sub), len(idx)*b.N)
	}
	if rep.K != 3 {
		t.Errorf("selected report K=%d, want 3", rep.K)
	}
	for j, i := range idx {
		got := sub[j*b.N : (j+1)*b.N]
		want := full[i*b.N : (i+1)*b.N]
		if d := matrix.MaxAbsDiff(got, want); d != 0 {
			t.Errorf("system %d: selective re-solve differs from full solve by %g", i, d)
		}
	}
	// ScatterVector merges the subset back into a full-size vector.
	merged := make([]float64, 10*b.N)
	matrix.ScatterVector(merged, sub, idx, b.N)
	for _, i := range idx {
		if merged[i*b.N] != full[i*b.N] {
			t.Errorf("scatter misplaced system %d", i)
		}
	}
}

// TestSystemViewSharesStorage: the view must alias the batch (that is
// its point — per-system re-factorization without copying), and a
// FactorHybrid of the view must solve the system.
func TestSystemViewSharesStorage(t *testing.T) {
	b := workload.Batch[float64](workload.DiagDominant, 3, 64, 17)
	v := SystemView(b, 1)
	if v.M != 1 || v.N != 64 {
		t.Fatalf("view shape %dx%d", v.M, v.N)
	}
	v.Diag[0] = 123
	if b.Diag[64] != 123 {
		t.Error("SystemView copied instead of aliasing")
	}
	b.Diag[64] = 2 // restore a sane diagonal

	f, err := FactorHybrid(v, 2)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 64)
	if err := f.Solve(v.RHS, x); err != nil {
		t.Fatal(err)
	}
	if err := matrix.CheckSolution(b.System(1), x); err != nil {
		t.Errorf("factor-of-view solve: %v", err)
	}
}
