package core

import (
	"testing"
	"testing/quick"

	"gputrid/internal/cpu"
	"gputrid/internal/gpusim"
	"gputrid/internal/matrix"
	"gputrid/internal/workload"
)

func dev() *gpusim.Device { return gpusim.GTX480() }

func solveAndCheck(t *testing.T, cfg Config, m, n int, seed uint64) *Report {
	t.Helper()
	b := workload.Batch[float64](workload.DiagDominant, m, n, seed)
	x, rep, err := Solve(cfg, b)
	if err != nil {
		t.Fatalf("m=%d n=%d cfg=%+v: %v", m, n, cfg, err)
	}
	if r := matrix.MaxResidual(b, x); r > matrix.ResidualTolerance[float64](n) {
		t.Errorf("m=%d n=%d cfg=%+v: residual %g", m, n, cfg, r)
	}
	want, err := cpu.SolveBatchSeq(b)
	if err != nil {
		t.Fatal(err)
	}
	if d := matrix.MaxRelDiff(x, want); d > 1e-8 {
		t.Errorf("m=%d n=%d cfg=%+v: differs from CPU Thomas by %g", m, n, cfg, d)
	}
	return rep
}

func TestSolveExplicitK(t *testing.T) {
	for _, tc := range []struct{ m, n, k int }{
		{1, 512, 4},
		{4, 256, 3},
		{16, 128, 2},
		{2, 1000, 5}, // non-power-of-two N
		{3, 100, 6},  // k clamped by... no, 2^6=64 <= 100, fine
		{1, 4096, 8},
		{8, 64, 1},
		{100, 64, 0}, // pure p-Thomas
	} {
		rep := solveAndCheck(t, Config{Device: dev(), K: tc.k}, tc.m, tc.n, uint64(tc.m*tc.n+tc.k))
		if rep.K != tc.k {
			t.Errorf("%+v: report K = %d", tc, rep.K)
		}
	}
}

func TestSolveAutoK(t *testing.T) {
	// Auto selection must apply Table III (clamped by system size).
	for _, tc := range []struct{ m, n, wantK int }{
		{1, 4096, 8},
		{20, 2048, 7},
		{100, 1024, 6},
		{600, 512, 5},
		{2000, 64, 0},
		{4, 32, 5}, // heuristic 8 clamped: 2^8 > 32 -> k = 5
	} {
		b := workload.Batch[float64](workload.DiagDominant, tc.m, tc.n, 77)
		x, rep, err := Solve(Config{Device: dev(), K: KAuto}, b)
		if err != nil {
			t.Fatal(err)
		}
		if rep.K != tc.wantK {
			t.Errorf("m=%d n=%d: auto k = %d, want %d", tc.m, tc.n, rep.K, tc.wantK)
		}
		if r := matrix.MaxResidual(b, x); r > matrix.ResidualTolerance[float64](tc.n) {
			t.Errorf("m=%d n=%d: residual %g", tc.m, tc.n, r)
		}
	}
}

func TestSolveMultiBlock(t *testing.T) {
	for _, g := range []int{1, 2, 4, 7} {
		rep := solveAndCheck(t, Config{Device: dev(), K: 5, BlocksPerSystem: g}, 2, 2048, uint64(g))
		if rep.BlocksPerSystem != g {
			t.Errorf("g=%d: report %d", g, rep.BlocksPerSystem)
		}
	}
}

func TestSolveFusedMatchesUnfused(t *testing.T) {
	m, n, k := 3, 512, 5
	b := workload.Batch[float64](workload.DiagDominant, m, n, 13)
	xu, _, err := Solve(Config{Device: dev(), K: k, BlocksPerSystem: 1}, b)
	if err != nil {
		t.Fatal(err)
	}
	xf, rep, err := Solve(Config{Device: dev(), K: k, Fuse: true}, b)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Fused {
		t.Error("report not marked fused")
	}
	if d := matrix.MaxAbsDiff(xu, xf); d != 0 {
		t.Errorf("fused and unfused differ by %g (same arithmetic order expected)", d)
	}
}

func TestFusedSavesGlobalTraffic(t *testing.T) {
	m, n, k := 2, 2048, 6
	b := workload.Batch[float64](workload.DiagDominant, m, n, 17)
	_, ru, err := Solve(Config{Device: dev(), K: k, BlocksPerSystem: 1}, b)
	if err != nil {
		t.Fatal(err)
	}
	_, rf, err := Solve(Config{Device: dev(), K: k, Fuse: true}, b)
	if err != nil {
		t.Fatal(err)
	}
	if rf.Stats.Transactions() >= ru.Stats.Transactions() {
		t.Errorf("fusion did not reduce global traffic: %d vs %d",
			rf.Stats.Transactions(), ru.Stats.Transactions())
	}
	if len(rf.Kernels) != 2 || len(ru.Kernels) != 2 {
		t.Errorf("kernel counts: fused %d, unfused %d", len(rf.Kernels), len(ru.Kernels))
	}
}

func TestSolveFusedRequiresSingleBlock(t *testing.T) {
	b := workload.Batch[float64](workload.DiagDominant, 1, 256, 1)
	if _, _, err := Solve(Config{Device: dev(), K: 4, Fuse: true, BlocksPerSystem: 2}, b); err == nil {
		t.Error("fusion with 2 blocks per system accepted")
	}
}

func TestSolveMatchesReference(t *testing.T) {
	m, n, k := 4, 300, 4
	b := workload.Batch[float64](workload.DiagDominant, m, n, 23)
	x, _, err := Solve(Config{Device: dev(), K: k, BlocksPerSystem: 1}, b)
	if err != nil {
		t.Fatal(err)
	}
	ref := SolveReference(b, k)
	if d := matrix.MaxAbsDiff(x, ref); d != 0 {
		t.Errorf("kernel solve differs from pure-Go reference by %g", d)
	}
}

func TestSolveSystem(t *testing.T) {
	s := workload.System[float64](workload.Toeplitz, 777, 3)
	x, rep, err := SolveSystem(Config{Device: dev(), K: KAuto}, s)
	if err != nil {
		t.Fatal(err)
	}
	if rep.K == 0 {
		t.Error("single system should use PCR steps")
	}
	if err := matrix.CheckSolution(s, x); err != nil {
		t.Error(err)
	}
}

func TestSolveOtherWorkloads(t *testing.T) {
	for _, kind := range []workload.Kind{workload.Toeplitz, workload.Heat, workload.Spline} {
		b := workload.Batch[float64](kind, 8, 256, 5)
		x, _, err := Solve(Config{Device: dev(), K: KAuto}, b)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if r := matrix.MaxResidual(b, x); r > matrix.ResidualTolerance[float64](256) {
			t.Errorf("%v: residual %g", kind, r)
		}
	}
}

func TestSolveFloat32(t *testing.T) {
	b := workload.Batch[float32](workload.DiagDominant, 6, 512, 9)
	x, _, err := Solve(Config{Device: dev(), K: 5}, b)
	if err != nil {
		t.Fatal(err)
	}
	if r := matrix.MaxResidual(b, x); r > matrix.ResidualTolerance[float32](512) {
		t.Errorf("float32 residual %g", r)
	}
}

func TestHeuristicKTableIII(t *testing.T) {
	cases := map[int]int{1: 8, 15: 8, 16: 7, 31: 7, 32: 6, 511: 6, 512: 5, 1023: 5, 1024: 0, 100000: 0}
	for m, want := range cases {
		if got := HeuristicK(m); got != want {
			t.Errorf("HeuristicK(%d) = %d, want %d", m, got, want)
		}
	}
	rows := TableIII()
	if len(rows) != 5 {
		t.Fatalf("TableIII has %d rows", len(rows))
	}
	for _, r := range rows {
		if r.TileSize != 1<<r.K && !(r.K == 0 && r.TileSize == 1) {
			t.Errorf("row %+v: tile size != 2^k", r)
		}
		if got := HeuristicK(r.MLo); got != r.K {
			t.Errorf("HeuristicK(%d) = %d, want %d", r.MLo, got, r.K)
		}
	}
}

func TestModeledTimePositive(t *testing.T) {
	b := workload.Batch[float64](workload.DiagDominant, 32, 256, 2)
	_, rep, err := Solve(Config{Device: dev(), K: 4}, b)
	if err != nil {
		t.Fatal(err)
	}
	if mt := ModeledTime[float64](dev(), rep); mt <= 0 {
		t.Errorf("modeled time %g", mt)
	}
	// Single precision models faster or equal.
	if ModeledTime[float32](dev(), rep) > ModeledTime[float64](dev(), rep) {
		t.Error("float32 modeled slower than float64")
	}
}

func TestTuneKAgreesWithHeuristicDirection(t *testing.T) {
	// The autotuner need not match Table III exactly (our device model
	// is not their silicon) but must follow the same direction: small M
	// wants more PCR steps than huge M.
	kSmall, _ := TuneK[float64](dev(), 4, 1024)
	kBig, timesBig := TuneK[float64](dev(), 2048, 128)
	if kSmall < 3 {
		t.Errorf("TuneK(M=4) = %d, expected deep PCR", kSmall)
	}
	if kBig > 2 {
		t.Errorf("TuneK(M=4096) = %d, expected shallow PCR", kBig)
	}
	if timesBig[kBig] <= 0 || timesBig[kBig] >= 1e300 {
		t.Errorf("tuned time invalid: %g", timesBig[kBig])
	}
}

func TestSolveProperty(t *testing.T) {
	f := func(seed uint32, mRaw, nRaw, kRaw uint8) bool {
		m := int(mRaw)%20 + 1
		n := int(nRaw)%300 + 2
		k := int(kRaw) % 7
		b := workload.Batch[float64](workload.DiagDominant, m, n, uint64(seed))
		x, _, err := Solve(Config{Device: dev(), K: k}, b)
		if err != nil {
			return false
		}
		return matrix.MaxResidual(b, x) <= matrix.ResidualTolerance[float64](n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
