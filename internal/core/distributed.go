package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gputrid/internal/cpu"
	"gputrid/internal/gpusim"
	"gputrid/internal/matrix"
	"gputrid/internal/num"
)

// Typed failures of the distributed solve path.
var (
	// ErrNoLiveDevices reports a distributed solve requested with an
	// empty live-device set.
	ErrNoLiveDevices = errors.New("core: distributed solve has no live devices")
	// ErrDistBusy is returned when SolveOn is called while another
	// distributed solve is in flight on the same solver.
	ErrDistBusy = errors.New("core: distributed solver is already executing a solve")
	// ErrDistClosed is returned by SolveOn after Close.
	ErrDistClosed = errors.New("core: distributed solver is closed")
)

// DistConfig configures a DistSolver.
type DistConfig struct {
	// Topology is the simulated multi-device fabric; required.
	Topology *gpusim.Topology
	// Slabs is the partition width D. It fixes the arithmetic: the
	// partition is a function of (N, Slabs) only, never of which
	// devices are live, so a solve on fewer (or migrated) devices is
	// bitwise identical to the fault-free full-fleet run. 0 means one
	// slab per topology device.
	Slabs int
	// Slab templates the per-slab local solver (see Config). Device is
	// ignored — each slab runs on its assigned topology device — and K
	// is pinned per slab length from Topology.Device(0), so identical
	// devices execute identical launch geometry regardless of
	// assignment.
	Slab Config
	// Retry bounds per-slab recovery: a slab whose device dies is
	// migrated to a survivor up to RetryPolicy.MaxRetries times, with
	// the policy's seeded-jitter backoff between attempts, then
	// degraded to the host pivoting GTSV path — or failed with
	// ErrFaulted under NoDegrade. The zero value is the production
	// default.
	Retry RetryPolicy
	// Hedge bounds the speculative re-execution of straggler slabs
	// after the reduce phase; the zero value enables hedging with the
	// defaults (outliers past 3× the median modeled phase time are
	// re-launched on the least-loaded survivor). See HedgePolicy.
	Hedge HedgePolicy
	// Health, when non-nil, receives a HealthXID event the moment a
	// device is declared dead mid-solve — before the slab is migrated —
	// so a fleet control plane can cordon the device while this solve
	// is still completing. Must be safe for concurrent use.
	Health func(gpusim.HealthEvent)
	// HealthDevice maps a topology device index to the Device field of
	// emitted health events (a fleet's device id); nil means identity.
	HealthDevice func(topoIdx int) int
}

// DistReport describes one distributed solve.
type DistReport struct {
	// Slabs is the partition width D.
	Slabs int
	// Devices is the final topology device of each slab; -1 marks a
	// slab degraded to the host path.
	Devices []int
	// Deaths lists (ascending) the topology devices declared dead
	// during the solve.
	Deaths []int
	// Migrations counts slabs whose in-progress work was lost to a
	// device death and re-run on a survivor.
	Migrations int
	// Retries counts slab re-executions beyond each slab's first
	// attempt (migrations plus degraded slabs' lost attempts).
	Retries int
	// Degraded lists (ascending) the slabs re-solved on the host
	// because no retry budget, no survivor, or no trustworthy link
	// remained.
	Degraded []int
	// IntegrityRetries counts transfers whose ABFT checksum mismatched
	// (a link silently corrupted the payload) and were re-exchanged.
	// Every one of these is a silent corruption caught before it could
	// reach a caller.
	IntegrityRetries int
	// SlabResolves counts reduce-phase slabs re-executed because
	// re-exchanging alone could not produce a clean interface transfer
	// (rung two of the escalation ladder).
	SlabResolves int
	// Hedges counts speculative re-launches of straggler slabs;
	// HedgeWins how many were adopted (the speculative run completed
	// first in modeled time); HedgesCancelled how many were discarded
	// (incumbent won, speculation failed, or the solve was cancelled
	// mid-hedge).
	Hedges          int
	HedgeWins       int
	HedgesCancelled int
	// PerDevice is what this solve observed about each topology device
	// it touched — slab executions, modeled busy time, integrity
	// retries, hedged-away slabs — the raw feed for a gray-failure
	// detector. Sorted by device.
	PerDevice []DeviceObservation
	// Comm is the interconnect traffic this solve charged, attributed
	// exactly to this solve via a per-solve CommScope even when
	// concurrent solves share the topology.
	Comm gpusim.CommStats
	// ModeledSerial and ModeledPipelined are the modeled device-side
	// makespans of the final (post-recovery) assignment: serial runs
	// each slab's upload→compute→download back to back; pipelined
	// overlaps transfers with interior elimination on each device's
	// copy/compute engines. Both take the max over devices, which run
	// concurrently.
	ModeledSerial    time.Duration
	ModeledPipelined time.Duration
}

// distSlab is the per-slab solve state.
type distSlab struct {
	idx       int
	dev       int // current topology device; -1 = degraded to host
	homeDev   int // device holding the slab's u,v,w planes after phase A
	attempts  int
	redone    bool // lost work at least once (counts as migration)
	integrity int  // checksum-mismatched transfers re-exchanged
	resolves  int  // reduce re-executions forced by the integrity ladder
	timing    gpusim.SlabTiming
}

type pipeKey struct {
	dev, length int
}

// DistSolver solves batches of M tridiagonal systems of N rows across
// the devices of a simulated topology, surviving device death
// mid-solve.
//
// The algorithm is separator-based domain decomposition (the SPIKE /
// Wang family the multi-GPU tridiagonal literature builds on): the N
// rows split into D slabs with one separator row between adjacent
// slabs. Each slab solves three local systems through the paper's
// hybrid pipeline — u = T⁻¹ d, plus the responses v, w to its left and
// right separator couplings — producing six interface scalars per
// (system, slab). Substituting those into the separator rows yields a
// genuinely tridiagonal reduced system of order D-1 per batch system,
// solved on the host with the pivoting GTSV. Back-substitution
// x = u + v·x_left + w·x_right then completes each slab on its device.
//
// Robustness: each slab is a checkpointed failure domain. Its inputs
// live on the host and are never mutated, so when a device dies
// (aborts, hangs, or corrupts a launch), only that slab's in-flight
// work is lost: the death surfaces immediately through DistConfig.
// Health, the device is excluded from the solve, and the slab re-runs
// on a survivor — bitwise identical, because the partition and launch
// geometry never depended on the assignment. With no survivors (or an
// exhausted retry budget) the slab degrades to the host pivoting GTSV
// unless RetryPolicy.NoDegrade demands ErrFaulted.
//
// A solver is single-flight, like Pipeline: concurrent SolveOn calls
// return ErrDistBusy.
type DistSolver[T num.Real] struct {
	cfg  DistConfig
	topo *gpusim.Topology
	m, n int
	part Partition

	// Per-slab host arenas. slabIn holds the 3M local systems of each
	// slab's reduce (plane-major: u systems 0..M-1, v, then w); slabX
	// their solutions; slabOut the back-substituted slab rows; sepL and
	// sepR the per-system separator values feeding the backsub.
	slabIn  []*matrix.Batch[T]
	slabX   [][]T
	slabOut [][]T
	sepL    [][]T
	sepR    [][]T

	// iface stages each slab's six interface scalars per system (the
	// halo the reduce phase downloads), laid out i*6 + {uF,vF,wF,uL,
	// vL,wL}; ifaceShadow and outShadow model the device-resident
	// copies the verified downloads restore from after a corrupted
	// delivery.
	iface       [][]T
	ifaceShadow [][]T
	outShadow   [][]T

	// Hedging scratch: the speculative re-execution of a straggler slab
	// works entirely here, so a losing hedge touches no solve state.
	// Hedges run sequentially, so one set suffices.
	hedgeX      []T
	hedgeIface  []T
	hedgeShadow []T
	// leases counts in-flight speculative executions per device; a
	// hedge holds its target's lease for the goroutine's lifetime.
	leases []atomic.Int32
	// testHookHedgeStart, when non-nil, runs at the start of every
	// speculative hedge goroutine (test instrumentation).
	testHookHedgeStart func()

	// scope attributes this solver's interconnect traffic exactly, even
	// when concurrent solves share the topology.
	scope gpusim.CommScope

	// obs accumulates per-device gray-failure observations per solve.
	obsMu sync.Mutex
	obs   map[int]*devObs

	// Reduced interface system, system-major: system i's D-1 rows at
	// [i*(D-1), (i+1)*(D-1)).
	redA, redB, redC, redD, redX []T

	gtsvRed  *cpu.GTSVWorkspace[T] // order D-1 reduced solves
	gtsvSlab *cpu.GTSVWorkspace[T] // degraded host slab solves

	// kByLen pins the PCR step count per slab length (resolved once
	// against device 0) so every device launches identical geometry.
	kByLen map[int]int

	// pipes caches the per-(device, slab length) local-reduce
	// pipelines; populated lazily under mu as assignments happen.
	mu    sync.Mutex
	pipes map[pipeKey]*Pipeline[T]

	inUse  atomic.Bool
	closed bool
}

// NewDistSolver builds a distributed solver for batches of m systems
// of n rows over cfg.Topology.
func NewDistSolver[T num.Real](cfg DistConfig, m, n int) (*DistSolver[T], error) {
	if cfg.Topology == nil {
		return nil, fmt.Errorf("core: DistConfig.Topology is required")
	}
	if m <= 0 || n <= 0 {
		return nil, fmt.Errorf("core: invalid distributed shape %dx%d", m, n)
	}
	slabs := cfg.Slabs
	if slabs == 0 {
		slabs = cfg.Topology.NumDevices()
	}
	part, err := NewPartition(n, slabs)
	if err != nil {
		return nil, err
	}
	s := &DistSolver[T]{
		cfg:    cfg,
		topo:   cfg.Topology,
		m:      m,
		n:      n,
		part:   part,
		pipes:  make(map[pipeKey]*Pipeline[T]),
		kByLen: make(map[int]int),
		obs:    make(map[int]*devObs),
		leases: make([]atomic.Int32, cfg.Topology.NumDevices()),
	}
	d := part.NumSlabs()
	s.slabIn = make([]*matrix.Batch[T], d)
	s.slabX = make([][]T, d)
	s.slabOut = make([][]T, d)
	s.sepL = make([][]T, d)
	s.sepR = make([][]T, d)
	s.iface = make([][]T, d)
	s.ifaceShadow = make([][]T, d)
	s.outShadow = make([][]T, d)
	maxL := 0
	for p, sl := range part.Slabs {
		L := sl.Len()
		maxL = max(maxL, L)
		s.slabIn[p] = matrix.NewBatch[T](3*m, L)
		s.slabX[p] = make([]T, 3*m*L)
		s.slabOut[p] = make([]T, m*L)
		s.sepL[p] = make([]T, m)
		s.sepR[p] = make([]T, m)
		s.iface[p] = make([]T, 6*m)
		s.ifaceShadow[p] = make([]T, 6*m)
		s.outShadow[p] = make([]T, m*L)
		if _, ok := s.kByLen[L]; !ok {
			kcfg := s.slabConfig(L)
			kcfg.Device = s.topo.Device(0)
			s.kByLen[L] = kcfg.resolveK(3*m, L)
		}
	}
	s.hedgeX = make([]T, 3*m*maxL)
	s.hedgeIface = make([]T, 6*m)
	s.hedgeShadow = make([]T, 6*m)
	if d > 1 {
		s.redA = make([]T, m*(d-1))
		s.redB = make([]T, m*(d-1))
		s.redC = make([]T, m*(d-1))
		s.redD = make([]T, m*(d-1))
		s.redX = make([]T, m*(d-1))
		s.gtsvRed = cpu.NewGTSVWorkspace[T](d - 1)
	}
	return s, nil
}

// slabConfig is the local-reduce pipeline configuration for one slab
// length: the caller's template, with fail-fast recovery (the
// distributed layer owns retries: a faulted launch means the device is
// dead, not that the slab should retry in place).
func (s *DistSolver[T]) slabConfig(length int) Config {
	cfg := s.cfg.Slab
	cfg.Retry = RetryPolicy{MaxRetries: -1, NoDegrade: true}
	if k, ok := s.kByLen[length]; ok {
		cfg.K = k
	}
	return cfg
}

// pipeline returns (building if needed) the local-reduce pipeline for
// slabs of the given length on topology device dev.
func (s *DistSolver[T]) pipeline(dev, length int) (*Pipeline[T], error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := pipeKey{dev, length}
	if p, ok := s.pipes[key]; ok {
		return p, nil
	}
	cfg := s.slabConfig(length)
	cfg.Device = s.topo.Device(dev)
	p, err := NewPipeline[T](cfg, 3*s.m, length)
	if err != nil {
		return nil, err
	}
	s.pipes[key] = p
	return p, nil
}

// Shape returns the fixed batch shape (M systems, N rows).
func (s *DistSolver[T]) Shape() (m, n int) { return s.m, s.n }

// Partition returns the solver's fixed row partition.
func (s *DistSolver[T]) Partition() Partition { return s.part }

// Close releases the solver's pipelines. Close against an in-flight
// solve returns ErrDistBusy; repeat calls return nil.
func (s *DistSolver[T]) Close() error {
	if !s.inUse.CompareAndSwap(false, true) {
		return ErrDistBusy
	}
	defer s.inUse.Store(false)
	if s.closed {
		return nil
	}
	s.closed = true
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, p := range s.pipes {
		_ = p.Close()
	}
	return nil
}

// SolveInto solves the batch across every topology device.
func (s *DistSolver[T]) SolveInto(ctx context.Context, dst []T, b *matrix.Batch[T]) (*DistReport, error) {
	live := make([]int, s.topo.NumDevices())
	for i := range live {
		live[i] = i
	}
	return s.SolveOn(ctx, dst, b, live)
}

// SolveOn solves the batch using only the given live topology devices
// (a fleet passes its servable members). dst receives the solutions in
// natural order (system i at [i*N, (i+1)*N)); it must not alias the
// batch. The returned report describes the assignment, recovery
// activity, interconnect traffic, and modeled time of this solve.
func (s *DistSolver[T]) SolveOn(ctx context.Context, dst []T, b *matrix.Batch[T], live []int) (*DistReport, error) {
	if b.M != s.m || b.N != s.n {
		return nil, fmt.Errorf("%w: batch is %dx%d, solver wants %dx%d", ErrShapeMismatch, b.M, b.N, s.m, s.n)
	}
	if len(dst) != s.m*s.n {
		return nil, fmt.Errorf("%w: dst has %d elements, solver wants %d", ErrShapeMismatch, len(dst), s.m*s.n)
	}
	alive, err := s.liveSet(live)
	if err != nil {
		return nil, err
	}
	if !s.inUse.CompareAndSwap(false, true) {
		return nil, ErrDistBusy
	}
	defer s.inUse.Store(false)
	if s.closed {
		return nil, ErrDistClosed
	}
	if ctx != nil && ctx.Done() == nil {
		ctx = nil
	}

	d := s.part.NumSlabs()
	rep := &DistReport{Slabs: d, Devices: make([]int, d)}
	s.scope.Reset()
	clear(s.obs)
	slabs := make([]*distSlab, d)
	for p := range slabs {
		slabs[p] = &distSlab{idx: p, dev: -1, homeDev: -1}
		s.buildSlabInput(p, b)
	}

	// Phase A: local reductions, with migration on device death.
	if err := s.runPhase(ctx, rep, slabs, alive, s.reduceOne, s.reduceHost); err != nil {
		return nil, err
	}

	// Straggler hedging: slabs whose modeled phase time is an outlier
	// are speculatively re-run on the least-loaded survivor, first
	// verified (modeled-time) result wins.
	if err := s.hedgePhase(ctx, rep, slabs, alive); err != nil {
		return nil, err
	}

	// Phase B: assemble and solve the reduced interface system on the
	// host, then scatter separator values.
	if err := s.solveReduced(b, dst); err != nil {
		return nil, err
	}

	// Phase C: per-slab back-substitution, device-side, same recovery.
	for _, sl := range slabs {
		sl.homeDev = sl.dev // where the u,v,w planes are resident
	}
	if err := s.runPhase(ctx, rep, slabs, alive, s.backsubOne, s.backsubHost); err != nil {
		return nil, err
	}
	s.scatterOutputs(dst, slabs)

	// Report: final assignment, comm delta, modeled makespans.
	perDev := map[int][]gpusim.SlabTiming{}
	for p, sl := range slabs {
		rep.Devices[p] = sl.dev
		if sl.dev >= 0 {
			perDev[sl.dev] = append(perDev[sl.dev], sl.timing)
		} else {
			rep.Degraded = append(rep.Degraded, p)
		}
		if sl.redone {
			rep.Migrations++
		}
		rep.Retries += sl.attempts - 1
		rep.IntegrityRetries += sl.integrity
		rep.SlabResolves += sl.resolves
	}
	sort.Ints(rep.Degraded)
	sort.Ints(rep.Deaths)
	var serial, pipelined float64
	for _, stages := range perDev {
		ser, pip := gpusim.PipelinedMakespan(stages)
		serial = max(serial, ser)
		pipelined = max(pipelined, pip)
	}
	rep.ModeledSerial = time.Duration(serial * float64(time.Second))
	rep.ModeledPipelined = time.Duration(pipelined * float64(time.Second))
	rep.PerDevice = s.observations()
	rep.Comm = s.scope.Stats()
	return rep, nil
}

// liveSet validates, dedupes and sorts the live device indices.
func (s *DistSolver[T]) liveSet(live []int) (map[int]bool, error) {
	alive := make(map[int]bool, len(live))
	for _, d := range live {
		if d < 0 || d >= s.topo.NumDevices() {
			return nil, fmt.Errorf("core: live device %d out of range [0, %d)", d, s.topo.NumDevices())
		}
		alive[d] = true
	}
	if len(alive) == 0 {
		return nil, ErrNoLiveDevices
	}
	return alive, nil
}

// phaseFn runs one slab's device work for the current phase, returning
// the device error (a wrapped LaunchError means the device is dead).
type phaseFn[T num.Real] func(ctx context.Context, sl *distSlab, dev int) error

// hostFn is the phase's degraded fallback on the host.
type hostFn[T num.Real] func(sl *distSlab) error

// runPhase executes one device phase over all slabs with the recovery
// protocol: slabs are assigned round-robin over the live devices in
// ascending order (a pure function of the live set, so replays are
// exact), each device runs its slabs sequentially while devices run in
// parallel, and a faulted launch kills its device — the death is
// published through DistConfig.Health before the victim slab migrates
// to a survivor under the jittered retry budget.
func (s *DistSolver[T]) runPhase(ctx context.Context, rep *DistReport, slabs []*distSlab,
	alive map[int]bool, run phaseFn[T], host hostFn[T]) error {

	maxR := s.cfg.Retry.maxRetries()
	pending := make([]*distSlab, 0, len(slabs))
	for _, sl := range slabs {
		if sl.dev == -1 && sl.attempts > 0 {
			// Already degraded in an earlier phase: host path now.
			if err := host(sl); err != nil {
				return err
			}
			continue
		}
		pending = append(pending, sl)
	}

	for len(pending) > 0 {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return cancelled(err)
			}
		}
		order := liveOrder(alive)
		if len(order) == 0 {
			// No survivors: every remaining slab degrades or the solve
			// fails hard.
			if s.cfg.Retry.NoDegrade {
				return fmt.Errorf("%w: no live devices remain for %d slab(s)", ErrFaulted, len(pending))
			}
			for _, sl := range pending {
				sl.dev = -1
				if err := host(sl); err != nil {
					return err
				}
			}
			return nil
		}

		// Deterministic assignment; group per device in slab order.
		byDev := make(map[int][]*distSlab, len(order))
		for j, sl := range pending {
			dev := order[j%len(order)]
			sl.dev = dev
			byDev[dev] = append(byDev[dev], sl)
		}

		type result struct {
			sl  *distSlab
			err error
		}
		var (
			wg        sync.WaitGroup
			mu        sync.Mutex
			faulted   []result
			untrusted []*distSlab
			hardErr   error
		)
		for dev, group := range byDev {
			wg.Add(1)
			go func(dev int, group []*distSlab) {
				defer wg.Done()
				for gi, sl := range group {
					if sl.attempts > 0 {
						// Re-attempt after lost work: jittered backoff
						// keyed on the slab, so simultaneous victims
						// spread out instead of stampeding survivors.
						if err := sleepBackoff(ctx, s.cfg.Retry.backoff(sl.attempts-1, uint64(sl.idx)+1)); err != nil {
							mu.Lock()
							if hardErr == nil {
								hardErr = cancelled(err)
							}
							mu.Unlock()
							return
						}
					}
					sl.attempts++
					err := run(ctx, sl, dev)
					if err == nil {
						continue
					}
					if errors.Is(err, errLinkIntegrity) {
						// The link, not the device, failed: the device
						// keeps its remaining slabs, only this slab
						// leaves the device path (escalation ladder's
						// last rung — see below).
						mu.Lock()
						untrusted = append(untrusted, sl)
						mu.Unlock()
						continue
					}
					mu.Lock()
					if isDeviceDeath(err) {
						// The victim slab lost its work; the device's
						// untried slabs (err nil) requeue without
						// burning an attempt.
						faulted = append(faulted, result{sl, err})
						for _, rest := range group[gi+1:] {
							faulted = append(faulted, result{rest, nil})
						}
					} else if hardErr == nil {
						hardErr = err
					}
					mu.Unlock()
					return
				}
			}(dev, group)
		}
		wg.Wait()
		if hardErr != nil {
			return hardErr
		}

		// Integrity exhaustion: re-exchange and re-solve could not get a
		// clean transfer through, so the slab falls to the host path —
		// the data there never crossed the untrustworthy link.
		sort.Slice(untrusted, func(i, j int) bool { return untrusted[i].idx < untrusted[j].idx })
		for _, sl := range untrusted {
			if s.cfg.Retry.NoDegrade {
				return fmt.Errorf("%w: slab %d: %v", ErrFaulted, sl.idx, errLinkIntegrity)
			}
			sl.dev = -1
			if err := host(sl); err != nil {
				return err
			}
		}

		next := pending[:0]
		var dead []int
		for _, r := range faulted {
			if r.err != nil {
				if alive[r.sl.dev] {
					delete(alive, r.sl.dev)
					dead = append(dead, r.sl.dev)
				}
				r.sl.redone = true
				if r.sl.attempts > maxR {
					if s.cfg.Retry.NoDegrade {
						return fmt.Errorf("%w: slab %d exhausted %d migration attempts: %v",
							ErrFaulted, r.sl.idx, r.sl.attempts, r.err)
					}
					r.sl.dev = -1
					if err := host(r.sl); err != nil {
						return err
					}
					continue
				}
			}
			next = append(next, r.sl)
		}
		// Announce deaths in device order, so multi-death rounds emit a
		// deterministic event sequence.
		sort.Ints(dead)
		for _, dev := range dead {
			rep.Deaths = append(rep.Deaths, dev)
			s.announceDeath(dev)
		}
		// Keep slab order deterministic across rounds.
		sort.Slice(next, func(i, j int) bool { return next[i].idx < next[j].idx })
		pending = next
	}
	return nil
}

// isDeviceDeath classifies a slab failure: any launch fault means the
// device is lost for this solve (abort/hang/corrupt all poison the
// device's checkpointed work).
func isDeviceDeath(err error) bool {
	var le *gpusim.LaunchError
	return errors.Is(err, ErrFaulted) || errors.As(err, &le)
}

// announceDeath publishes the death through the health callback.
func (s *DistSolver[T]) announceDeath(dev int) {
	if s.cfg.Health == nil {
		return
	}
	id := dev
	if s.cfg.HealthDevice != nil {
		id = s.cfg.HealthDevice(dev)
	}
	s.cfg.Health(gpusim.HealthEvent{
		Device:  id,
		Kind:    gpusim.HealthXID,
		XID:     79,
		Message: fmt.Sprintf("device died mid-distributed-solve (topology device %d)", dev),
	})
}

// liveOrder returns the live devices in ascending index order.
func liveOrder(alive map[int]bool) []int {
	order := make([]int, 0, len(alive))
	for d := range alive {
		order = append(order, d)
	}
	sort.Ints(order)
	return order
}

// buildSlabInput fills slab p's 3M local systems from the batch:
// plane u (systems 0..M-1) carries the slab's RHS, plane v (M..2M-1)
// the left-separator coupling -a[first]·e_first, plane w (2M..3M-1)
// the right-separator coupling -c[last]·e_last. Coefficients are the
// slab's rows, identical across planes. The first slab has no left
// separator and the last no right one, so their coupling planes are
// exactly zero — the hybrid's elimination of an all-zero RHS yields
// bitwise zero, which is what makes the reduced system's boundary
// terms vanish without special cases.
func (s *DistSolver[T]) buildSlabInput(p int, b *matrix.Batch[T]) {
	sl := s.part.Slabs[p]
	L := sl.Len()
	in := s.slabIn[p]
	first, last := p == 0, p == s.part.NumSlabs()-1
	for i := 0; i < s.m; i++ {
		src := i*s.n + sl.Start
		for plane := 0; plane < 3; plane++ {
			q := plane*s.m + i
			dst := q * L
			copy(in.Lower[dst:dst+L], b.Lower[src:src+L])
			copy(in.Diag[dst:dst+L], b.Diag[src:src+L])
			copy(in.Upper[dst:dst+L], b.Upper[src:src+L])
			rhs := in.RHS[dst : dst+L]
			switch plane {
			case 0:
				copy(rhs, b.RHS[src:src+L])
			case 1:
				clear(rhs)
				if !first {
					rhs[0] = -b.Lower[src]
				}
			case 2:
				clear(rhs)
				if !last {
					rhs[L-1] = -b.Upper[src+L-1]
				}
			}
		}
	}
}

// reduceOne runs slab sl's local reduction on device dev, into the
// solver's per-slab arenas.
func (s *DistSolver[T]) reduceOne(ctx context.Context, sl *distSlab, dev int) error {
	return s.reduceSlab(ctx, sl, dev, s.slabX[sl.idx], s.iface[sl.idx], s.ifaceShadow[sl.idx])
}

// reduceSlab runs slab sl's local reduction on device dev: verified
// coefficient upload, the 3M-system hybrid, extraction of the six
// interface scalars per system into iface, and the verified halo
// download. Both transfers carry ABFT sum checks; a corrupted delivery
// escalates re-exchange → re-solve-slab → errLinkIntegrity (the caller
// degrades the slab to the host). x/iface/shadow are parameters so a
// hedge's speculative run can execute into scratch buffers.
func (s *DistSolver[T]) reduceSlab(ctx context.Context, sl *distSlab, dev int, x, iface, shadow []T) error {
	p := sl.idx
	L := s.part.Slabs[p].Len()
	m := s.m
	elem := int64(num.SizeOf[T]())
	in := s.slabIn[p]
	// Upload: 3 coefficient planes + 3 RHS planes of M×L each. (The
	// coefficient replication is a modeling convenience — a real
	// implementation uploads them once — so charge the unreplicated 4
	// planes: a, b, c, d, and checksum exactly those.)
	mL := m * L
	up, err := s.verifiedUp(sl, dev, 4*int64(mL)*elem,
		in.Lower[:mL], in.Diag[:mL], in.Upper[:mL], in.RHS[:mL])
	if err != nil {
		return err
	}
	pipe, err := s.pipeline(dev, L)
	if err != nil {
		return err
	}
	if err := pipe.SolveIntoCtx(ctx, x, in); err != nil {
		return err
	}
	compute := s.topo.Device(dev).EstimateTime(pipe.Report().Stats, num.SizeOf[T]())
	s.extractInterface(x, iface, L)

	// Download the halo: 6 interface scalars per system, sum-checked.
	// If re-exchanging cannot produce a clean copy, rung two re-solves
	// the slab (fresh device state, fresh link draws) and tries again.
	down, err := s.verifiedDown(sl, dev, 6*int64(m)*elem, iface, shadow)
	if err != nil {
		sl.resolves++
		if err := pipe.SolveIntoCtx(ctx, x, in); err != nil {
			return err
		}
		compute += s.topo.Device(dev).EstimateTime(pipe.Report().Stats, num.SizeOf[T]())
		s.extractInterface(x, iface, L)
		var d2 float64
		d2, err = s.verifiedDown(sl, dev, 6*int64(m)*elem, iface, shadow)
		down += d2
		if err != nil {
			return err
		}
	}
	sl.timing = gpusim.SlabTiming{Upload: up, Compute: compute, Download: down}
	s.noteBusy(dev, sl.timing.Total())
	return nil
}

// extractInterface pulls the six interface scalars per system out of a
// slab's solved planes: first-row and last-row values of u, v, w, laid
// out i*6 + {uF, vF, wF, uL, vL, wL}.
func (s *DistSolver[T]) extractInterface(x, iface []T, L int) {
	m := s.m
	for i := 0; i < m; i++ {
		base := i * 6
		iface[base+0] = x[(0*m+i)*L]
		iface[base+1] = x[(1*m+i)*L]
		iface[base+2] = x[(2*m+i)*L]
		iface[base+3] = x[(0*m+i)*L+L-1]
		iface[base+4] = x[(1*m+i)*L+L-1]
		iface[base+5] = x[(2*m+i)*L+L-1]
	}
}

// reduceHost is the degraded local reduction: the slab's 3M systems go
// through the host pivoting GTSV. Not bitwise-comparable to the device
// path — degradation is a last resort, reported per slab.
func (s *DistSolver[T]) reduceHost(sl *distSlab) error {
	p := sl.idx
	L := s.part.Slabs[p].Len()
	if s.gtsvSlab == nil {
		s.gtsvSlab = cpu.NewGTSVWorkspace[T](L) // grows on demand for longer slabs
	}
	in := s.slabIn[p]
	for q := 0; q < 3*s.m; q++ {
		lo, hi := q*L, (q+1)*L
		sys := matrix.System[T]{
			Lower: in.Lower[lo:hi], Diag: in.Diag[lo:hi],
			Upper: in.Upper[lo:hi], RHS: in.RHS[lo:hi],
		}
		if err := cpu.SolveGTSVInto(&sys, s.slabX[p][lo:hi], s.gtsvSlab); err != nil {
			return fmt.Errorf("%w: degraded reduce of slab %d system %d: %v", ErrFaulted, p, q, err)
		}
	}
	// No link was crossed, but phase B reads the staged interface.
	s.extractInterface(s.slabX[p], s.iface[p], L)
	return nil
}

// solveReduced assembles the reduced interface system from the
// separator rows and the slabs' interface scalars, solves each batch
// system's D-1 unknowns with the pivoting GTSV, writes the separator
// values into dst, and distributes them to the slabs' backsub inputs.
func (s *DistSolver[T]) solveReduced(b *matrix.Batch[T], dst []T) error {
	d := s.part.NumSlabs()
	if d == 1 {
		clear(s.sepL[0])
		clear(s.sepR[0])
		return nil
	}
	r := d - 1
	for i := 0; i < s.m; i++ {
		base := i * r
		for p := 0; p < r; p++ {
			sep := s.part.Separator(p)
			gi := i*s.n + sep
			aa, bb, cc, dd := b.Lower[gi], b.Diag[gi], b.Upper[gi], b.RHS[gi]
			// Interface scalars come from the staged, checksum-verified
			// halo downloads, never straight off a device buffer.
			uL := s.iface[p][i*6+3]
			vL := s.iface[p][i*6+4]
			wL := s.iface[p][i*6+5]
			uF := s.iface[p+1][i*6+0]
			vF := s.iface[p+1][i*6+1]
			wF := s.iface[p+1][i*6+2]
			s.redA[base+p] = aa * vL
			s.redB[base+p] = bb + aa*wL + cc*vF
			s.redC[base+p] = cc * wF
			s.redD[base+p] = dd - aa*uL - cc*uF
		}
		sys := matrix.System[T]{
			Lower: s.redA[base : base+r], Diag: s.redB[base : base+r],
			Upper: s.redC[base : base+r], RHS: s.redD[base : base+r],
		}
		if err := cpu.SolveGTSVInto(&sys, s.redX[base:base+r], s.gtsvRed); err != nil {
			return fmt.Errorf("core: reduced interface system %d: %w", i, err)
		}
		for p := 0; p < r; p++ {
			dst[i*s.n+s.part.Separator(p)] = s.redX[base+p]
		}
	}
	// Scatter separator values to each slab's backsub inputs.
	for p := 0; p < d; p++ {
		for i := 0; i < s.m; i++ {
			if p == 0 {
				s.sepL[p][i] = 0
			} else {
				s.sepL[p][i] = s.redX[i*r+p-1]
			}
			if p == d-1 {
				s.sepR[p][i] = 0
			} else {
				s.sepR[p][i] = s.redX[i*r+p]
			}
		}
	}
	return nil
}

// backsubOne back-substitutes slab sl on device dev with a real
// simulated kernel, so phase C is a fault-injectable failure domain
// like the reduce. The kernel is a pure function of host-held
// (u, v, w, separators), so a migrated backsub re-runs bit-exactly.
// Both transfers are checksum-verified; a link that stays corrupt
// degrades the slab to the host backsub, which computes the same
// expression in the same order — bitwise identical output.
func (s *DistSolver[T]) backsubOne(ctx context.Context, sl *distSlab, dev int) error {
	p := sl.idx
	L := s.part.Slabs[p].Len()
	m := s.m
	elem := int64(num.SizeOf[T]())
	// Upload: the separator values always; the u,v,w planes too when
	// the backsub runs on a different device than the reduce (they
	// were resident on the dead device and re-stage from the host).
	bytes := 2 * int64(m) * elem
	parts := [][]T{s.sepL[p], s.sepR[p]}
	if dev != sl.homeDev {
		bytes += 3 * int64(m) * int64(L) * elem
		parts = append(parts, s.slabX[p])
	}
	up, err := s.verifiedUp(sl, dev, bytes, parts...)
	if err != nil {
		return err
	}

	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return cancelled(err)
		}
	}
	const bs = 128
	total := m * L
	uG := gpusim.NewGlobal(s.slabX[p][:m*L])
	vG := gpusim.NewGlobal(s.slabX[p][m*L : 2*m*L])
	wG := gpusim.NewGlobal(s.slabX[p][2*m*L:])
	xlG := gpusim.NewGlobal(s.sepL[p])
	xrG := gpusim.NewGlobal(s.sepR[p])
	outG := gpusim.NewGlobal(s.slabOut[p])
	st, err := s.topo.Device(dev).Launch("distBacksub",
		gpusim.LaunchConfig{Grid: num.CeilDiv(total, bs), Block: bs},
		func(blk *gpusim.Block) {
			blk.PhaseNoSync(func(t *gpusim.Thread) {
				idx := blk.ID*bs + t.ID
				if idx >= total {
					return
				}
				sys := idx / L
				r := uG.Load(t, idx) + vG.Load(t, idx)*xlG.Load(t, sys) + wG.Load(t, idx)*xrG.Load(t, sys)
				t.Flops(4)
				outG.Store(t, idx, r)
			})
		})
	if err != nil {
		return err
	}
	down, err := s.verifiedDown(sl, dev, int64(total)*elem, s.slabOut[p], s.outShadow[p])
	if err != nil {
		return err
	}
	compute := s.topo.Device(dev).EstimateTime(st, num.SizeOf[T]())
	sl.timing.Upload += up
	sl.timing.Compute += compute
	sl.timing.Download += down
	s.noteBusy(dev, up+compute+down)
	return nil
}

// backsubHost is the degraded back-substitution.
func (s *DistSolver[T]) backsubHost(sl *distSlab) error {
	p := sl.idx
	L := s.part.Slabs[p].Len()
	for i := 0; i < s.m; i++ {
		xl, xr := s.sepL[p][i], s.sepR[p][i]
		u := s.slabX[p][(0*s.m+i)*L : (0*s.m+i)*L+L]
		v := s.slabX[p][(1*s.m+i)*L : (1*s.m+i)*L+L]
		w := s.slabX[p][(2*s.m+i)*L : (2*s.m+i)*L+L]
		out := s.slabOut[p][i*L : (i+1)*L]
		for j := range out {
			out[j] = u[j] + v[j]*xl + w[j]*xr
		}
	}
	return nil
}

// scatterOutputs copies each slab's back-substituted rows into dst.
func (s *DistSolver[T]) scatterOutputs(dst []T, slabs []*distSlab) {
	for p := range slabs {
		sl := s.part.Slabs[p]
		L := sl.Len()
		for i := 0; i < s.m; i++ {
			copy(dst[i*s.n+sl.Start:i*s.n+sl.End], s.slabOut[p][i*L:(i+1)*L])
		}
	}
}
