package core

import (
	"context"
	"math"
	"testing"

	"gputrid/internal/gpusim"
	"gputrid/internal/workload"
)

// FuzzPartitioner drives the partitioner and the distributed solve
// with arbitrary (N, device count, slab sizes): construction must
// never index out of bounds (the harness itself would panic), every
// accepted partition must validate structurally, and the multi-device
// distributed solve must match the single-device run of the same
// partition bitwise — the assignment-invariance contract device-death
// migration relies on.
func FuzzPartitioner(f *testing.F) {
	f.Add(uint16(64), uint8(3), uint8(0), []byte{})
	f.Add(uint16(7), uint8(4), uint8(1), []byte{1, 1, 1, 1})
	f.Add(uint16(97), uint8(2), uint8(5), []byte{40, 6})
	f.Add(uint16(3), uint8(1), uint8(2), []byte{0})
	f.Add(uint16(0), uint8(0), uint8(0), []byte{255, 255})
	f.Fuzz(func(t *testing.T, n16 uint16, devs, slabs uint8, sizeBytes []byte) {
		n := int(n16)

		// Explicit sizes: whatever the fuzzer says, shifted to [1, 64].
		// Mis-summing size vectors exercise the rejection path.
		sizes := make([]int, 0, len(sizeBytes))
		for _, sb := range sizeBytes {
			sizes = append(sizes, int(sb%64)+1)
		}
		if p, err := PartitionSizes(n, sizes); err == nil {
			if verr := p.Validate(); verr != nil {
				t.Fatalf("PartitionSizes(%d, %v) accepted invalid partition: %v", n, sizes, verr)
			}
		}

		D := int(slabs%8) + 1
		p, err := NewPartition(n, D)
		if err != nil {
			return // structurally impossible (n < 2D-1): nothing to solve
		}
		if verr := p.Validate(); verr != nil {
			t.Fatalf("NewPartition(%d, %d) invalid: %v", n, D, verr)
		}

		// Keep the solve tractable: the partitioner above took
		// arbitrary n, but the solve fuzz only needs modest shapes.
		if n > 512 {
			return
		}
		nd := int(devs%4) + 1
		topo, err := gpusim.UniformTopology(nd, gpusim.NVLinkMesh(), gpusim.GTX480())
		if err != nil {
			t.Fatal(err)
		}
		const m = 2
		s, err := NewDistSolver[float64](DistConfig{Topology: topo, Slabs: D}, m, n)
		if err != nil {
			t.Fatalf("solver rejected valid partition (n=%d D=%d): %v", n, D, err)
		}
		defer s.Close()
		b := workload.Batch[float64](workload.DiagDominant, m, n, uint64(n16)^uint64(devs)<<8)

		multi := make([]float64, m*n)
		if _, err := s.SolveInto(context.Background(), multi, b); err != nil {
			t.Fatalf("multi-device solve (n=%d D=%d devs=%d): %v", n, D, nd, err)
		}
		single := make([]float64, m*n)
		if _, err := s.SolveOn(context.Background(), single, b, []int{0}); err != nil {
			t.Fatalf("single-device solve: %v", err)
		}
		for i := range multi {
			if multi[i] != single[i] {
				t.Fatalf("n=%d D=%d devs=%d: element %d differs bitwise: %x vs %x",
					n, D, nd, i, math.Float64bits(multi[i]), math.Float64bits(single[i]))
			}
		}
	})
}
