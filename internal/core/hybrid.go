// Package core implements the paper's proposed solver: the hybrid of
// tiled PCR (the parallelism-excavating front-end, internal/tiledpcr)
// and thread-level parallel Thomas (the efficient back-end,
// internal/pthomas), with the runtime algorithm-transition logic of
// §III.D choosing how many PCR steps k to take from the batch size M
// and the device's parallelism.
//
// Data flow for a batch of M systems × N rows (contiguous layout):
//
//	k = 0:  interleave on the host, one p-Thomas thread per system.
//	k >= 1: tiled-PCR kernel streams every system through the buffered
//	        sliding window (one or more blocks per system, Fig. 11(a/b)),
//	        leaving 2^k independent interleaved subsystems per system in
//	        global memory; the strided p-Thomas kernel then solves the
//	        M·2^k subsystems with one block of 2^k threads per system.
//	Fused:  §III.C — the PCR output feeds the p-Thomas forward sweep in
//	        registers inside one kernel (only c', d' ever reach global
//	        memory), and a light second kernel runs back-substitution.
package core

import (
	"fmt"

	"gputrid/internal/gpusim"
	"gputrid/internal/matrix"
	"gputrid/internal/num"
	"gputrid/internal/pthomas"
	"gputrid/internal/tiledpcr"
)

// KAuto selects the number of PCR steps with the Table III heuristic.
const KAuto = -1

// Config controls the hybrid solver.
type Config struct {
	// Device is the simulated GPU; nil selects GTX480.
	Device *gpusim.Device
	// K is the number of tiled-PCR steps before p-Thomas takes over.
	// KAuto (-1) applies the paper's Table III heuristic.
	K int
	// C is the sub-tile scale factor (Table I); 0 means 1.
	C int
	// BlocksPerSystem splits each system across several thread blocks
	// (Fig. 11(b)); 0 chooses automatically: 1 when M alone fills the
	// device, more for small batches of large systems.
	BlocksPerSystem int
	// Fuse enables the §III.C kernel fusion of tiled PCR with the
	// p-Thomas forward sweep. Requires BlocksPerSystem == 1.
	Fuse bool
	// SystemsPerBlock multiplexes several systems (each with its own
	// sliding window) onto one thread block, advanced round-robin per
	// sub-tile — the Fig. 11(c) configuration that overlaps the
	// windows' independent global loads. 0 or 1 disables multiplexing;
	// requires BlocksPerSystem <= 1 and no fusion.
	SystemsPerBlock int
	// BlockSizeK0 is the thread-block size of the k = 0 p-Thomas path;
	// 0 means 128.
	BlockSizeK0 int
}

// Report describes what the solver did and what it cost.
type Report struct {
	K               int
	C               int
	BlocksPerSystem int
	Fused           bool
	// Stats aggregates all kernel launches of the solve.
	Stats *gpusim.Stats
	// Kernels holds the per-launch statistics in execution order.
	Kernels []*gpusim.Stats
}

func (cfg *Config) device() *gpusim.Device {
	if cfg.Device == nil {
		return gpusim.GTX480()
	}
	return cfg.Device
}

func (cfg *Config) c() int {
	if cfg.C <= 0 {
		return 1
	}
	return cfg.C
}

// resolveK picks the PCR step count for a batch of m systems of n rows.
func (cfg *Config) resolveK(m, n int) int {
	k := cfg.K
	if k == KAuto {
		k = HeuristicK(m)
	}
	if k < 0 {
		k = 0
	}
	// 2^k may not exceed the system size, the thread-block limit, or
	// what the shared memory of the device can hold.
	dev := cfg.device()
	for k > 0 && (1<<k > n || 1<<k > dev.MaxThreadsPerBlock ||
		tiledpcr.SharedBytes[float64](k, cfg.c()) > dev.SharedMemPerSM) {
		k--
	}
	return k
}

// resolveBlocks picks the Fig. 11 block mapping for the k >= 1 path.
func (cfg *Config) resolveBlocks(m, n, k int) int {
	if cfg.BlocksPerSystem > 0 {
		return cfg.BlocksPerSystem
	}
	if cfg.Fuse {
		// Fusion carries p-Thomas state per subsystem inside the block,
		// so a system cannot span blocks (Fig. 11(a) shape).
		return 1
	}
	dev := cfg.device()
	target := 2 * dev.NumSMs // enough blocks to cover every SM twice
	if m >= target {
		return 1
	}
	g := num.CeilDiv(target, m)
	// Keep tiles no smaller than a few sub-tiles, or the halo warm-up
	// dominates useful work.
	s := cfg.c() << k
	if maxG := n / (4 * s); g > maxG {
		g = maxG
	}
	if g < 1 {
		g = 1
	}
	return g
}

// Solve solves every system of the batch on the simulated device and
// returns the solutions in natural order (system i occupying
// [i*N, (i+1)*N)) along with the execution report.
func Solve[T num.Real](cfg Config, b *matrix.Batch[T]) ([]T, *Report, error) {
	dev := cfg.device()
	m, n := b.M, b.N
	k := cfg.resolveK(m, n)
	rep := &Report{K: k, C: cfg.c(), Stats: &gpusim.Stats{}}

	if k == 0 {
		// Pure p-Thomas on the interleaved layout. The host-side
		// transpose stands in for the application storing its batch
		// interleaved, as the paper's benchmarks do.
		v := b.ToInterleaved()
		bs := cfg.BlockSizeK0
		if bs <= 0 {
			bs = 128
		}
		xi, st, err := pthomas.KernelInterleaved(dev, v, bs)
		if err != nil {
			return nil, nil, err
		}
		rep.BlocksPerSystem = 1
		rep.Kernels = append(rep.Kernels, st)
		rep.Stats.Add(st)
		return matrix.DeinterleaveVector(xi, m, n), rep, nil
	}

	g := cfg.resolveBlocks(m, n, k)
	rep.BlocksPerSystem = g
	if cfg.Fuse {
		if g != 1 {
			return nil, nil, fmt.Errorf("core: kernel fusion requires one block per system, got %d", g)
		}
		rep.Fused = true
		return solveFused(dev, cfg, b, k, rep)
	}
	if cfg.SystemsPerBlock > 1 {
		if cfg.BlocksPerSystem > 1 {
			return nil, nil, fmt.Errorf("core: SystemsPerBlock and BlocksPerSystem > 1 are mutually exclusive")
		}
		rep.BlocksPerSystem = 1
		return solveMultiplexed(dev, cfg, b, k, rep)
	}

	// Stage 1: tiled PCR over all M systems, G blocks per system.
	ra := make([]T, m*n)
	rb := make([]T, m*n)
	rc := make([]T, m*n)
	rd := make([]T, m*n)
	in := tiledpcr.NewArrays(b.Lower, b.Diag, b.Upper, b.RHS)
	out := tiledpcr.NewArrays(ra, rb, rc, rd)
	c := cfg.c()
	per := num.CeilDiv(n, g)
	st1, err := dev.Launch("tiledPCR", gpusim.LaunchConfig{Grid: m * g, Block: 1 << k},
		func(blk *gpusim.Block) {
			sys := blk.ID / g
			slice := blk.ID % g
			w := tiledpcr.NewWindow(blk, k, c, n, sys*n, in)
			outStart := slice * per
			outEnd := outStart + per
			if outEnd > n {
				outEnd = n
			}
			if outStart >= outEnd {
				return
			}
			w.Run(outStart, outEnd, func(outBase int) {
				lo, hi := w.OutRange(outBase, outStart, outEnd)
				blk.PhaseNoSync(func(t *gpusim.Thread) {
					for e := 0; e < c; e++ {
						p := t.ID + e*w.Threads()
						if p < lo || p >= hi {
							continue
						}
						gi := sys*n + outBase + p
						r := w.Out[p]
						out.A.Store(t, gi, r.A)
						out.B.Store(t, gi, r.B)
						out.C.Store(t, gi, r.C)
						out.D.Store(t, gi, r.D)
					}
				})
			})
		})
	if err != nil {
		return nil, nil, err
	}
	rep.Kernels = append(rep.Kernels, st1)
	rep.Stats.Add(st1)

	// Stage 2: p-Thomas over the M·2^k interleaved subsystems.
	x, st2, err := pthomas.KernelStrided(dev, ra, rb, rc, rd, m, n, k)
	if err != nil {
		return nil, nil, err
	}
	rep.Kernels = append(rep.Kernels, st2)
	rep.Stats.Add(st2)
	return x, rep, nil
}

// SolveSystem solves a single system with the hybrid (M = 1).
func SolveSystem[T num.Real](cfg Config, s *matrix.System[T]) ([]T, *Report, error) {
	b := matrix.NewBatch[T](1, s.N())
	b.SetSystem(0, s)
	return Solve(cfg, b)
}
