// Package core implements the paper's proposed solver: the hybrid of
// tiled PCR (the parallelism-excavating front-end, internal/tiledpcr)
// and thread-level parallel Thomas (the efficient back-end,
// internal/pthomas), with the runtime algorithm-transition logic of
// §III.D choosing how many PCR steps k to take from the batch size M
// and the device's parallelism.
//
// Data flow for a batch of M systems × N rows (contiguous layout):
//
//	k = 0:  interleave on the host, one p-Thomas thread per system.
//	k >= 1: tiled-PCR kernel streams every system through the buffered
//	        sliding window (one or more blocks per system, Fig. 11(a/b)),
//	        leaving 2^k independent interleaved subsystems per system in
//	        global memory; the strided p-Thomas kernel then solves the
//	        M·2^k subsystems with one block of 2^k threads per system.
//	Fused:  §III.C — the PCR output feeds the p-Thomas forward sweep in
//	        registers inside one kernel (only c', d' ever reach global
//	        memory), and a light second kernel runs back-substitution.
package core

import (
	"time"

	"gputrid/internal/gpusim"
	"gputrid/internal/matrix"
	"gputrid/internal/num"
	"gputrid/internal/tiledpcr"
)

// KAuto selects the number of PCR steps with the Table III heuristic.
const KAuto = -1

// Config controls the hybrid solver.
type Config struct {
	// Device is the simulated GPU; nil selects GTX480.
	Device *gpusim.Device
	// K is the number of tiled-PCR steps before p-Thomas takes over.
	// KAuto (-1) applies the paper's Table III heuristic.
	K int
	// C is the sub-tile scale factor (Table I); 0 means 1.
	C int
	// BlocksPerSystem splits each system across several thread blocks
	// (Fig. 11(b)); 0 chooses automatically: 1 when M alone fills the
	// device, more for small batches of large systems.
	BlocksPerSystem int
	// Fuse enables the §III.C kernel fusion of tiled PCR with the
	// p-Thomas forward sweep. Requires BlocksPerSystem == 1.
	Fuse bool
	// SystemsPerBlock multiplexes several systems (each with its own
	// sliding window) onto one thread block, advanced round-robin per
	// sub-tile — the Fig. 11(c) configuration that overlaps the
	// windows' independent global loads. 0 or 1 disables multiplexing;
	// requires BlocksPerSystem <= 1 and no fusion.
	SystemsPerBlock int
	// BlockSizeK0 is the thread-block size of the k = 0 p-Thomas path;
	// 0 means 128.
	BlockSizeK0 int
	// Workers bounds the worker pool a reusable Pipeline shards
	// replayed solves across; 0 means GOMAXPROCS. One-shot Solve
	// records on a single lane, so this only affects reuse.
	Workers int
	// Retry bounds recovery from transient device faults (see
	// RetryPolicy; the zero value is the production default). Faults
	// only occur when the device carries an Injector.
	Retry RetryPolicy
	// Watchdog is the modeled per-launch hang budget: a hung block is
	// detected and killed after this much device time, which is charged
	// to FaultReport.WastedModeledTime. 0 means 10ms. (The simulator
	// cannot actually hang, so the budget is pure accounting.)
	Watchdog time.Duration
}

// Report describes what the solver did and what it cost.
type Report struct {
	K               int
	C               int
	BlocksPerSystem int
	Fused           bool
	// Stats aggregates all kernel launches of the solve.
	Stats *gpusim.Stats
	// Kernels holds the per-launch statistics in execution order.
	Kernels []*gpusim.Stats
	// Faults describes the fault-recovery activity of the most recent
	// solve (zeroed when nothing fired). Nil for the fused/multiplexed
	// fallback configurations, which have no recovery layer.
	Faults *FaultReport
}

func (cfg *Config) device() *gpusim.Device {
	if cfg.Device == nil {
		return gpusim.GTX480()
	}
	return cfg.Device
}

func (cfg *Config) c() int {
	if cfg.C <= 0 {
		return 1
	}
	return cfg.C
}

func (cfg *Config) watchdog() time.Duration {
	if cfg.Watchdog > 0 {
		return cfg.Watchdog
	}
	return 10 * time.Millisecond
}

// resolveK picks the PCR step count for a batch of m systems of n rows.
func (cfg *Config) resolveK(m, n int) int {
	k := cfg.K
	if k == KAuto {
		k = HeuristicK(m)
	}
	if k < 0 {
		k = 0
	}
	// 2^k may not exceed the system size, the thread-block limit, or
	// what the shared memory of the device can hold.
	dev := cfg.device()
	for k > 0 && (1<<k > n || 1<<k > dev.MaxThreadsPerBlock ||
		tiledpcr.SharedBytes[float64](k, cfg.c()) > dev.SharedMemPerSM) {
		k--
	}
	return k
}

// resolveBlocks picks the Fig. 11 block mapping for the k >= 1 path.
func (cfg *Config) resolveBlocks(m, n, k int) int {
	if cfg.BlocksPerSystem > 0 {
		return cfg.BlocksPerSystem
	}
	if cfg.Fuse {
		// Fusion carries p-Thomas state per subsystem inside the block,
		// so a system cannot span blocks (Fig. 11(a) shape).
		return 1
	}
	dev := cfg.device()
	target := 2 * dev.NumSMs // enough blocks to cover every SM twice
	if m >= target {
		return 1
	}
	g := num.CeilDiv(target, m)
	// Keep tiles no smaller than a few sub-tiles, or the halo warm-up
	// dominates useful work.
	s := cfg.c() << k
	if maxG := n / (4 * s); g > maxG {
		g = maxG
	}
	if g < 1 {
		g = 1
	}
	return g
}

// Solve solves every system of the batch on the simulated device and
// returns the solutions in natural order (system i occupying
// [i*N, (i+1)*N)) along with the execution report.
//
// It is a one-shot wrapper over a transient Pipeline: callers that
// solve the same shape repeatedly should build the Pipeline themselves
// and reuse it, which skips both the arena allocation and (after the
// first solve) the event-recording pass.
func Solve[T num.Real](cfg Config, b *matrix.Batch[T]) ([]T, *Report, error) {
	p, err := NewPipeline[T](cfg, b.M, b.N)
	if err != nil {
		return nil, nil, err
	}
	defer p.Close()
	x := make([]T, b.M*b.N)
	if err := p.SolveInto(x, b); err != nil {
		return nil, nil, err
	}
	return x, p.Report(), nil
}

// SolveSystem solves a single system with the hybrid (M = 1).
func SolveSystem[T num.Real](cfg Config, s *matrix.System[T]) ([]T, *Report, error) {
	b := matrix.NewBatch[T](1, s.N())
	b.SetSystem(0, s)
	return Solve(cfg, b)
}
