package core

import (
	"context"
	"errors"
	"testing"

	"gputrid/internal/gpusim"
	"gputrid/internal/matrix"
	"gputrid/internal/workload"
)

// TestSolveInterleavedMatchesContiguous feeds the same batches through
// the contiguous entry and the interleaved-native entry (converting
// layouts on the host for comparison) and requires bitwise identity on
// every configuration — native k = 0, shimmed hybrid, and fused
// fallback alike. The batching front-end's correctness story rests on
// this: a coalesced interleaved solve is the same arithmetic as the
// transposing one.
func TestSolveInterleavedMatchesContiguous(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		m, n int
	}{
		{"k0-native", Config{K: 0}, 32, 64},
		{"k0-native-odd", Config{K: 0}, 7, 129},
		{"hybrid-shim", Config{K: KAuto}, 16, 128},
		{"fused-shim", Config{K: 3, Fuse: true}, 4, 64},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := NewPipeline[float64](tc.cfg, tc.m, tc.n)
			if err != nil {
				t.Fatal(err)
			}
			defer p.Close()
			dst := make([]float64, tc.m*tc.n)
			xi := make([]float64, tc.m*tc.n)
			xic := make([]float64, tc.m*tc.n)
			for iter := 0; iter < 4; iter++ {
				b := workload.Batch[float64](workload.DiagDominant, tc.m, tc.n, uint64(77+iter))
				v := b.ToInterleaved()
				if err := p.SolveInterleavedInto(xi, v); err != nil {
					t.Fatal(err)
				}
				if err := p.SolveInto(dst, b); err != nil {
					t.Fatal(err)
				}
				matrix.InterleaveVectorInto(xic, dst, tc.m, tc.n)
				for i := range xi {
					if xi[i] != xic[i] {
						t.Fatalf("iter %d: interleaved solve differs from contiguous at %d: %v vs %v",
							iter, i, xi[i], xic[i])
					}
				}
			}
			ls := p.LayoutStats()
			if ls.InterleavedSolves != 4 {
				t.Fatalf("InterleavedSolves = %d, want 4", ls.InterleavedSolves)
			}
			if p.K() == 0 && !p.fallback {
				if ls.TransposesSkipped != 4*5 {
					t.Fatalf("k=0 native path skipped %d transposes, want 20", ls.TransposesSkipped)
				}
				if ls.InterleavedShim != 0 {
					t.Fatalf("k=0 native path used the shim %d times", ls.InterleavedShim)
				}
			} else {
				if ls.TransposesSkipped != 0 {
					t.Fatalf("shim path claims %d skipped transposes", ls.TransposesSkipped)
				}
				if ls.InterleavedShim != 4 {
					t.Fatalf("InterleavedShim = %d, want 4", ls.InterleavedShim)
				}
			}
		})
	}
}

// TestSolveInterleavedShapeChecks pins the typed misuse errors of the
// interleaved entry.
func TestSolveInterleavedShapeChecks(t *testing.T) {
	p, err := NewPipeline[float64](Config{K: 0}, 8, 32)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	v := matrix.NewInterleaved[float64](8, 32)
	if err := p.SolveInterleavedInto(make([]float64, 8*32), matrix.NewInterleaved[float64](4, 32)); !errors.Is(err, ErrShapeMismatch) {
		t.Fatalf("wrong-shape batch: %v", err)
	}
	if err := p.SolveInterleavedInto(make([]float64, 7), v); !errors.Is(err, ErrShapeMismatch) {
		t.Fatalf("short xi: %v", err)
	}
}

// TestSolveInterleavedFaultRecovery runs the native k = 0 path against
// an injector that exhausts the retry budget, forcing the degraded
// GTSV re-solve through the interleaved write-back; the recovered
// solution must still verify per system.
func TestSolveInterleavedFaultRecovery(t *testing.T) {
	m, n := 16, 64
	cfg := Config{K: 0, Workers: 2}
	d := gpusim.GTX480()
	d.Faults = &gpusim.Injector{
		Seed: 5, Rate: 1, Kinds: []gpusim.FaultKind{gpusim.FaultAbort}, Repeat: 100,
	}
	cfg.Device = d
	p, err := NewPipeline[float64](cfg, m, n)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	b := workload.Batch[float64](workload.DiagDominant, m, n, 9)
	v := b.ToInterleaved()
	xi := make([]float64, m*n)
	if err := p.SolveInterleavedIntoCtx(context.Background(), xi, v); err != nil {
		t.Fatal(err)
	}
	if got := len(p.Report().Faults.Degraded); got == 0 {
		t.Fatal("injector with Repeat=100 did not degrade any system")
	}
	x := make([]float64, m*n)
	matrix.DeinterleaveVectorInto(x, xi, m, n)
	res := matrix.ResidualsPerSystem(b, x)
	tol := matrix.ResidualTolerance[float64](n)
	for i, r := range res {
		if r > tol {
			t.Fatalf("degraded-resolved system %d residual %.3e exceeds %.3e", i, r, tol)
		}
	}
}
