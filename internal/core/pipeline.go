package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"gputrid/internal/cpu"
	"gputrid/internal/gpusim"
	"gputrid/internal/matrix"
	"gputrid/internal/num"
	"gputrid/internal/pthomas"
	"gputrid/internal/tiledpcr"
)

// Typed misuse errors of the reusable pipeline, matchable with
// errors.Is through every wrapping layer up to the public Solver.
var (
	// ErrPipelineBusy is returned when SolveInto is called while
	// another solve is in flight on the same pipeline. The arena is
	// untouched by the rejected call.
	ErrPipelineBusy = errors.New("core: pipeline is already executing a solve")
	// ErrPipelineClosed is returned by SolveInto after Close.
	ErrPipelineClosed = errors.New("core: pipeline is closed")
	// ErrShapeMismatch is returned when the batch or destination does
	// not match the M×N shape the pipeline was built for.
	ErrShapeMismatch = errors.New("core: shape does not match pipeline")
)

// Pipeline is the reusable form of Solve: it fixes the configuration
// and batch shape (M systems × N rows) at construction, pre-allocates
// every intermediate the hybrid needs — the reduced coefficient
// planes, the p-Thomas c'/d' scratch, the interleaved planes of the
// k = 0 path, per-worker sliding-window buffers and executors — and
// then solves any number of batches of that shape into caller-owned
// storage with zero steady-state heap allocations.
//
// The simulator's architectural events are recorded on the first
// solve only. They are a pure function of the launch geometry (shape,
// k, c, blocks per system, device), never of the coefficient data:
// the kernels contain no data-dependent control flow, and global
// arrays are 512-byte aligned so coalescing does not depend on where
// a particular batch happens to live. Subsequent solves therefore
// replay the kernels' arithmetic with event recording disabled —
// skipping the per-element coalescing analysis that dominates
// simulation cost — while Report continues to describe every solve
// exactly. Solutions are bitwise identical between recorded and
// replayed solves: the same kernel code runs in the same order either
// way.
//
// Replayed solves shard the batch across a bounded worker pool
// (Config.Workers, default GOMAXPROCS) with a per-worker arena slice
// — each worker owns its executor and window buffers and writes a
// disjoint range of systems, so no synchronization beyond the
// start/done handshake is needed.
//
// A pipeline is single-flight: concurrent SolveInto calls on one
// pipeline return ErrPipelineBusy rather than corrupting the arena.
// Distinct pipelines are fully independent.
type Pipeline[T num.Real] struct {
	cfg  Config
	dev  *gpusim.Device
	m, n int
	k, c int
	g    int // blocks per system (k >= 1)
	per  int // output rows per PCR block (k >= 1)
	bs   int // thread-block size (k == 0)
	grid int // grid size (k == 0)

	// fallback marks the fused / multiplexed configurations, which
	// keep their original allocating implementations: they exist for
	// ablation studies, not timestep loops.
	fallback bool
	altRep   *Report

	// Arena. For k >= 1: the reduced coefficient planes PCR writes and
	// p-Thomas reads. For k == 0: the interleaved input planes and the
	// interleaved solution.
	ra, rb, rc, rd []T
	out            tiledpcr.Arrays[T]
	vbuf           *matrix.Interleaved[T]
	xi             []T
	ws             pthomas.Workspace[T]

	// Per-solve state read by the workers' pre-built kernel closures;
	// written by the coordinator before workers are signalled.
	in   tiledpcr.Arrays[T]
	bufs pthomas.Bufs[T]

	// Cached statistics. kern holds the per-kernel stats recorded on
	// the first solve; total is their aggregate; rep is the Report
	// handed out for every solve.
	recorded bool
	kern     [2]gpusim.Stats
	nKern    int
	total    gpusim.Stats
	rep      Report

	// Fault-tolerant execution state. ctx is the current solve's
	// context (nil on the uncancellable fast path); frep accumulates
	// the solve's fault activity; degradeAll marks a recording solve
	// whose launches could not complete fault-free, degrading the
	// entire batch; gtsvWS is the (lazily built) workspace of the
	// degraded per-system GTSV re-solve.
	ctx        context.Context
	frep       FaultReport
	degradeAll bool
	gtsvWS     *cpu.GTSVWorkspace[T]

	// lastWall is the measured host time of the most recent solve,
	// the pool's per-shape service-time observation. Written at the end
	// of each solve; reads are ordered by the solve's completion.
	lastWall time.Duration

	// Interleaved-native entry state (interleaved.go): conversion
	// scratch for configurations that cannot consume the layout
	// directly, plus layout counters readable concurrently with solves.
	iscratchB *matrix.Batch[T]
	iscratchX []T
	ilSolves  atomic.Uint64
	ilSkipped atomic.Uint64
	ilShim    atomic.Uint64

	workers []*pipeWorker[T]
	inUse   atomic.Bool
	closed  bool
}

// pipeWorker is one lane of the pool: a reusable block executor, the
// worker's private window buffers (k >= 1), the kernel closures bound
// to them, and the static shard of the batch it executes.
type pipeWorker[T num.Real] struct {
	exec       *gpusim.Executor
	win        *tiledpcr.Window[T]
	kernK0     gpusim.Kernel // k == 0: interleaved p-Thomas blocks
	pcrKern    gpusim.Kernel // k >= 1: tiled-PCR blocks
	thomasKern gpusim.Kernel // k >= 1: strided p-Thomas blocks

	firstSys, nSys int // k >= 1: system range [firstSys, firstSys+nSys)
	firstBlk, nBlk int // k == 0: block range of the interleaved grid

	// Per-solve fault-tolerant state: written by the worker, read by
	// the coordinator after the done handshake.
	err error
	wf  workerFaults

	start, done chan struct{} // nil for the coordinator lane (index 0)
}

// NewPipeline builds a pipeline for cfg over batches of m systems of
// n rows, resolving k and the block mapping once and allocating the
// whole arena up front.
func NewPipeline[T num.Real](cfg Config, m, n int) (*Pipeline[T], error) {
	dev := cfg.device()
	if err := dev.Validate(); err != nil {
		return nil, err
	}
	if m <= 0 || n <= 0 {
		return nil, fmt.Errorf("core: invalid pipeline shape %dx%d", m, n)
	}
	k := cfg.resolveK(m, n)
	p := &Pipeline[T]{cfg: cfg, dev: dev, m: m, n: n, k: k, c: cfg.c(), g: 1}

	if k == 0 {
		bs := cfg.BlockSizeK0
		if bs <= 0 {
			bs = 128
		}
		if bs > dev.MaxThreadsPerBlock {
			bs = dev.MaxThreadsPerBlock
		}
		p.bs = bs
		p.grid = num.CeilDiv(m, bs)
		p.vbuf = matrix.NewInterleaved[T](m, n)
		p.xi = make([]T, m*n)
		cp, dp := p.ws.Ensure(m * n)
		p.bufs = pthomas.NewBufs(p.vbuf.Lower, p.vbuf.Diag, p.vbuf.Upper, p.vbuf.RHS, cp, dp, p.xi)
	} else {
		g := cfg.resolveBlocks(m, n, k)
		p.g = g
		switch {
		case cfg.Fuse:
			if g != 1 {
				return nil, fmt.Errorf("core: kernel fusion requires one block per system, got %d", g)
			}
			p.fallback = true
		case cfg.SystemsPerBlock > 1:
			if cfg.BlocksPerSystem > 1 {
				return nil, fmt.Errorf("core: SystemsPerBlock and BlocksPerSystem > 1 are mutually exclusive")
			}
			p.g = 1
			p.fallback = true
		}
		if !p.fallback {
			p.ra = make([]T, m*n)
			p.rb = make([]T, m*n)
			p.rc = make([]T, m*n)
			p.rd = make([]T, m*n)
			p.out = tiledpcr.NewArrays(p.ra, p.rb, p.rc, p.rd)
			cp, dp := p.ws.Ensure(m * n)
			p.bufs = pthomas.Bufs[T]{
				A: p.out.A, B: p.out.B, C: p.out.C, D: p.out.D,
				Cp: gpusim.NewGlobal(cp), Dp: gpusim.NewGlobal(dp),
			}
			p.per = num.CeilDiv(n, p.g)
		}
	}
	p.rep = Report{K: p.k, C: p.c, BlocksPerSystem: p.g, Stats: &p.total, Faults: &p.frep}

	if !p.fallback {
		p.buildWorkers()
	}
	return p, nil
}

// buildWorkers creates the worker lanes with their executors, window
// buffers, kernel closures, and static shards, and starts the pool
// goroutines for every lane but the coordinator's.
func (p *Pipeline[T]) buildWorkers() {
	units := p.m // k >= 1: shard whole systems (PCR + Thomas, no barrier)
	if p.k == 0 {
		units = p.grid // k == 0: shard thread blocks of the one kernel
	}
	count := p.cfg.Workers
	if count <= 0 {
		count = runtime.GOMAXPROCS(0)
	}
	if count > units {
		count = units
	}
	if count < 1 {
		count = 1
	}
	p.workers = make([]*pipeWorker[T], count)
	chunk, rem := units/count, units%count
	next := 0
	for i := range p.workers {
		w := &pipeWorker[T]{exec: gpusim.NewExecutor(p.dev)}
		size := chunk
		if i < rem {
			size++
		}
		if p.k == 0 {
			w.firstBlk, w.nBlk = next, size
			w.kernK0 = p.makeK0Kernel()
		} else {
			w.firstSys, w.nSys = next, size
			w.win = tiledpcr.NewWindowBuffers[T](p.k, p.c)
			w.pcrKern = p.makePCRKernel(w)
			w.thomasKern = p.makeThomasKernel()
		}
		next += size
		p.workers[i] = w
		if i > 0 {
			w.start = make(chan struct{}, 1)
			w.done = make(chan struct{}, 1)
			go func() {
				for range w.start {
					p.runShardAuto(w)
					w.done <- struct{}{}
				}
			}()
		}
	}
}

// makeK0Kernel builds the per-block body of the k = 0 interleaved
// p-Thomas launch. The closure reads the per-solve state through p.
func (p *Pipeline[T]) makeK0Kernel() gpusim.Kernel {
	return func(blk *gpusim.Block) {
		blk.PhaseNoSync(func(t *gpusim.Thread) {
			sys := blk.ID*p.bs + t.ID
			if sys >= p.m {
				return
			}
			pthomas.ThreadInterleaved(t, &p.bufs, sys, p.m, p.n)
		})
	}
}

// makePCRKernel builds the per-block body of the tiled-PCR launch for
// worker w, binding w's window buffers to each block it executes.
func (p *Pipeline[T]) makePCRKernel(w *pipeWorker[T]) gpusim.Kernel {
	return func(blk *gpusim.Block) {
		sys := blk.ID / p.g
		slice := blk.ID % p.g
		win := w.win.Bind(blk, p.n, sys*p.n, p.in)
		outStart := slice * p.per
		outEnd := outStart + p.per
		if outEnd > p.n {
			outEnd = p.n
		}
		if outStart >= outEnd {
			return
		}
		win.Run(outStart, outEnd, func(outBase int) {
			lo, hi := win.OutRange(outBase, outStart, outEnd)
			blk.PhaseNoSync(func(t *gpusim.Thread) {
				for e := 0; e < p.c; e++ {
					pos := t.ID + e*win.Threads()
					if pos < lo || pos >= hi {
						continue
					}
					gi := sys*p.n + outBase + pos
					r := win.Out[pos]
					p.out.A.Store(t, gi, r.A)
					p.out.B.Store(t, gi, r.B)
					p.out.C.Store(t, gi, r.C)
					p.out.D.Store(t, gi, r.D)
				}
			})
		})
	}
}

// makeThomasKernel builds the per-block body of the strided p-Thomas
// launch (one block of 2^k threads per system).
func (p *Pipeline[T]) makeThomasKernel() gpusim.Kernel {
	return func(blk *gpusim.Block) {
		base := blk.ID * p.n
		blk.PhaseNoSync(func(t *gpusim.Thread) {
			r := t.ID
			if r >= p.n {
				return
			}
			pthomas.ThreadStrided(t, &p.bufs, base, r, 1<<p.k, p.n)
		})
	}
}

// runShard executes worker w's shard of a replayed solve. Sharding is
// by whole systems for k >= 1, so the worker can run its PCR blocks
// and then immediately the p-Thomas blocks of the same systems — the
// inter-kernel dependency is contained within the shard and needs no
// global barrier. Replay cannot fail (the geometry was validated when
// it was recorded), so the errors are discarded.
func (p *Pipeline[T]) runShard(w *pipeWorker[T]) {
	if p.k == 0 {
		_ = w.exec.RunBlocks(nil, p.bs, w.firstBlk, w.nBlk, false, w.kernK0)
		return
	}
	tpb := 1 << p.k
	_ = w.exec.RunBlocks(nil, tpb, w.firstSys*p.g, w.nSys*p.g, false, w.pcrKern)
	_ = w.exec.RunBlocks(nil, tpb, w.firstSys, w.nSys, false, w.thomasKern)
}

// SolveInto solves the batch into dst (length M·N, natural order:
// system i occupying [i*N, (i+1)*N)). After the first call on a
// pipeline it performs no heap allocations. The batch must match the
// pipeline's shape; dst must not alias the batch's slices.
func (p *Pipeline[T]) SolveInto(dst []T, b *matrix.Batch[T]) error {
	return p.SolveIntoCtx(context.Background(), dst, b)
}

// SolveIntoCtx is SolveInto with cooperative cancellation and
// transient-fault recovery.
//
// Cancellation: once ctx is done, every worker stops promptly (between
// thread blocks, and during retry backoff waits), the pool is joined
// with no goroutine leaks, and the solve returns an error matching both
// ErrCancelled and the context's own error. dst is written at whole-
// system granularity only, so every system's rows are either fully
// written or untouched; on the k = 0 path dst is written in one final
// host pass and is fully untouched by a cancelled solve.
//
// Faults: when the device carries a gpusim.Injector, each shard of the
// batch is a checkpointed unit of work — its kernels never mutate
// their inputs — so a transient LaunchError is recovered by re-running
// just the faulted shard with capped exponential backoff (Config.Retry),
// and the recovered solution is bitwise identical to a fault-free run.
// A shard still faulting after the retry budget degrades gracefully:
// its systems are re-solved on the host through the pivoting GTSV path
// (or, under RetryPolicy.NoDegrade, the solve fails with ErrFaulted).
// The recovery activity is reported in Report().Faults.
func (p *Pipeline[T]) SolveIntoCtx(ctx context.Context, dst []T, b *matrix.Batch[T]) error {
	if b.M != p.m || b.N != p.n {
		return fmt.Errorf("%w: batch is %dx%d, pipeline wants %dx%d", ErrShapeMismatch, b.M, b.N, p.m, p.n)
	}
	if len(dst) != p.m*p.n {
		return fmt.Errorf("%w: dst has %d elements, pipeline wants %d", ErrShapeMismatch, len(dst), p.m*p.n)
	}
	if len(b.Lower) != p.m*p.n || len(b.Diag) != p.m*p.n ||
		len(b.Upper) != p.m*p.n || len(b.RHS) != p.m*p.n {
		return fmt.Errorf("%w: batch slice lengths do not match M*N=%d", ErrShapeMismatch, p.m*p.n)
	}
	if !p.inUse.CompareAndSwap(false, true) {
		return ErrPipelineBusy
	}
	defer p.inUse.Store(false)
	if p.closed {
		return ErrPipelineClosed
	}
	// Service-time hook for the serving pool's admission controller:
	// every executed solve (even a faulted or cancelled one — its slot
	// was occupied regardless) updates the last observed wall time.
	start := time.Now()
	defer func() { p.lastWall = time.Since(start) }()

	// An uncancellable context (Background, TODO) costs nothing: the
	// fast path is taken whenever there is neither a Done channel nor
	// an injector, and then no per-block checks run at all.
	if ctx != nil && ctx.Done() == nil {
		ctx = nil
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return cancelled(err)
		}
	}

	if p.fallback {
		return p.solveFallback(dst, b)
	}

	ft := ctx != nil || p.dev.Faults != nil
	if ft {
		p.ctx = ctx
		p.frep.reset()
		p.degradeAll = false
		for _, w := range p.workers {
			w.err = nil
			w.wf = workerFaults{}
		}
		defer func() { p.ctx = nil }()
	}

	var err error
	if p.k == 0 {
		err = p.solveK0(dst, b)
	} else {
		err = p.solveHybrid(dst, b)
	}
	if ft {
		p.mergeFaults()
		if err == nil && len(p.frep.Degraded) > 0 {
			err = p.degradedResolve(dst, b)
		}
	}
	return err
}

// solveK0 runs the pure p-Thomas path: blocked host interleave, one
// device kernel, blocked host deinterleave.
func (p *Pipeline[T]) solveK0(dst []T, b *matrix.Batch[T]) error {
	b.ToInterleavedInto(p.vbuf)
	if !p.recorded {
		w := p.workers[0]
		err := p.recordLaunch(&p.kern[0], "pThomas", 0, p.bs, p.grid, w.kernK0)
		switch {
		case err == nil:
			p.finishRecording(1)
		case errors.Is(err, ErrFaulted) && !p.cfg.Retry.NoDegrade:
			// The recording solve could not complete fault-free; the
			// whole batch degrades to GTSV and the next solve records.
			p.degradeAll = true
		default:
			return err
		}
	} else if err := p.replay(); err != nil {
		return err
	}
	// A degraded xi holds garbage here, but every degraded system of
	// dst is overwritten by degradedResolve before the solve returns.
	matrix.DeinterleaveVectorInto(dst, p.xi, p.m, p.n)
	return nil
}

// solveHybrid runs the k >= 1 path: tiled PCR into the reduced
// planes, then strided p-Thomas directly into dst.
func (p *Pipeline[T]) solveHybrid(dst []T, b *matrix.Batch[T]) error {
	p.in = tiledpcr.NewArrays(b.Lower, b.Diag, b.Upper, b.RHS)
	p.bufs.X = gpusim.NewGlobal(dst)
	if !p.recorded {
		tpb := 1 << p.k
		w := p.workers[0]
		err := p.recordLaunch(&p.kern[0], "tiledPCR", 0, tpb, p.m*p.g, w.pcrKern)
		if err == nil {
			err = p.recordLaunch(&p.kern[1], "pThomasStrided", 1, tpb, p.m, w.thomasKern)
		}
		switch {
		case err == nil:
			p.finishRecording(2)
		case errors.Is(err, ErrFaulted) && !p.cfg.Retry.NoDegrade:
			p.degradeAll = true
		default:
			return err
		}
		return nil
	}
	return p.replay()
}

// recordLaunch runs one full recording launch on the coordinator lane
// with the same retry ladder the replay shards use. Each attempt
// resets st and re-records from block 0 — recording is a pure function
// of the geometry, so a recovered recording is indistinguishable from
// a fault-free one.
func (p *Pipeline[T]) recordLaunch(st *gpusim.Stats, name string, slot, tpb, grid int, kern gpusim.Kernel) error {
	w := p.workers[0]
	maxR := p.cfg.Retry.maxRetries()
	for attempt := 0; ; attempt++ {
		*st = gpusim.Stats{Kernel: name, Launches: 1, Blocks: grid, ThreadsPerBlock: tpb}
		err := w.exec.RunBlocksCtx(p.ctx, st, tpb, 0, grid, true, kern,
			gpusim.FaultSite{Inj: p.dev.Faults, Kernel: name, Attempt: attempt})
		if err == nil {
			return nil
		}
		if p.ctx != nil && p.ctx.Err() != nil {
			return cancelled(p.ctx.Err())
		}
		var le *gpusim.LaunchError
		if !errors.As(err, &le) {
			return err
		}
		w.wf.faults++
		if le.Kind == gpusim.FaultHang {
			w.wf.hangs++
		}
		if attempt >= maxR {
			return fmt.Errorf("%w: recording launch %s: %w", ErrFaulted, name, le)
		}
		w.wf.retries[slot]++
		w.wf.retryBlk[slot] += grid
		if err := sleepBackoff(p.ctx, p.cfg.Retry.backoff(attempt, 0)); err != nil {
			return cancelled(err)
		}
	}
}

// finishRecording publishes the per-kernel stats recorded by the
// first solve into the cached aggregate and the reusable Report.
func (p *Pipeline[T]) finishRecording(nKern int) {
	p.nKern = nKern
	p.total = gpusim.Stats{}
	p.rep.Kernels = p.rep.Kernels[:0]
	for i := 0; i < nKern; i++ {
		p.total.Add(&p.kern[i])
		p.rep.Kernels = append(p.rep.Kernels, &p.kern[i])
	}
	p.recorded = true
}

// replay fans the pre-built shards out over the pool (the coordinator
// runs lane 0 inline) with recording disabled. Every lane is always
// joined — even after an error — so the pool is quiescent and reusable
// when replay returns. A cancellation error takes precedence over
// fault errors in the merge.
func (p *Pipeline[T]) replay() error {
	for _, w := range p.workers[1:] {
		w.start <- struct{}{}
	}
	p.runShardAuto(p.workers[0])
	for _, w := range p.workers[1:] {
		<-w.done
	}
	var first error
	for _, w := range p.workers {
		if w.err == nil {
			continue
		}
		if first == nil || (errors.Is(w.err, ErrCancelled) && !errors.Is(first, ErrCancelled)) {
			first = w.err
		}
	}
	return first
}

// runShardAuto dispatches one lane's shard: the original zero-overhead
// path when the solve is uncancellable and fault-free, the checkpointed
// retry path otherwise. The outcome lands in w.err (the worker must not
// return an error through the done channel).
func (p *Pipeline[T]) runShardAuto(w *pipeWorker[T]) {
	if p.ctx == nil && p.dev.Faults == nil {
		p.runShard(w)
		w.err = nil
		return
	}
	w.err = p.runShardFT(w)
}

// runShardFT executes w's shard as a checkpointed unit: the kernels
// never mutate their inputs, so a transient LaunchError is recovered
// by re-running the whole shard (both launches for k >= 1) with capped
// exponential backoff until the retry budget is spent, at which point
// the shard degrades (its systems marked for the GTSV re-solve) or,
// under NoDegrade, fails with ErrFaulted.
func (p *Pipeline[T]) runShardFT(w *pipeWorker[T]) error {
	maxR := p.cfg.Retry.maxRetries()
	for attempt := 0; ; attempt++ {
		slot, err := p.tryShard(w, attempt)
		if err == nil {
			return nil
		}
		if p.ctx != nil && p.ctx.Err() != nil {
			return cancelled(p.ctx.Err())
		}
		var le *gpusim.LaunchError
		if !errors.As(err, &le) {
			return err
		}
		w.wf.faults++
		if le.Kind == gpusim.FaultHang {
			w.wf.hangs++
		}
		if attempt >= maxR {
			if p.cfg.Retry.NoDegrade {
				return fmt.Errorf("%w: shard retries exhausted: %w", ErrFaulted, le)
			}
			w.wf.degraded = true
			return nil
		}
		w.wf.retries[slot]++
		w.wf.retryBlk[slot] += p.shardBlocks(w, slot)
		// The shard's first unit indexes the jitter hash, so concurrent
		// shards that fault on the same attempt back off apart.
		salt := uint64(w.firstSys)<<32 | uint64(w.firstBlk) + 1
		if err := sleepBackoff(p.ctx, p.cfg.Retry.backoff(attempt, salt)); err != nil {
			return cancelled(err)
		}
	}
}

// tryShard runs one attempt of w's shard under the context and the
// device's injector, reporting which launch slot failed.
func (p *Pipeline[T]) tryShard(w *pipeWorker[T], attempt int) (slot int, err error) {
	inj := p.dev.Faults
	if p.k == 0 {
		return 0, w.exec.RunBlocksCtx(p.ctx, nil, p.bs, w.firstBlk, w.nBlk, false, w.kernK0,
			gpusim.FaultSite{Inj: inj, Kernel: "pThomas", Attempt: attempt})
	}
	tpb := 1 << p.k
	if err := w.exec.RunBlocksCtx(p.ctx, nil, tpb, w.firstSys*p.g, w.nSys*p.g, false, w.pcrKern,
		gpusim.FaultSite{Inj: inj, Kernel: "tiledPCR", Attempt: attempt}); err != nil {
		return 0, err
	}
	return 1, w.exec.RunBlocksCtx(p.ctx, nil, tpb, w.firstSys, w.nSys, false, w.thomasKern,
		gpusim.FaultSite{Inj: inj, Kernel: "pThomasStrided", Attempt: attempt})
}

// shardBlocks is the block count of w's launch slot, for the
// wasted-time model.
func (p *Pipeline[T]) shardBlocks(w *pipeWorker[T], slot int) int {
	if p.k == 0 {
		return w.nBlk
	}
	if slot == 0 {
		return w.nSys * p.g
	}
	return w.nSys
}

// kernelName maps a launch slot to its kernel name for the report.
func (p *Pipeline[T]) kernelName(slot int) string {
	if p.k == 0 {
		return "pThomas"
	}
	if slot == 0 {
		return "tiledPCR"
	}
	return "pThomasStrided"
}

// mergeFaults folds the per-lane fault bookkeeping into the solve's
// FaultReport: fault and retry counts, the ascending list of degraded
// systems (lane shards are disjoint and ordered, so appending in lane
// order keeps it sorted), and the wasted-modeled-time estimate —
// re-executed blocks are charged their share of the recorded kernel
// time, and every hang one watchdog budget.
func (p *Pipeline[T]) mergeFaults() {
	r := &p.frep
	hangs := 0
	for _, w := range p.workers {
		wf := &w.wf
		r.Faults += wf.faults
		hangs += wf.hangs
		for slot := 0; slot < 2; slot++ {
			if wf.retries[slot] > 0 {
				r.addRetry(p.kernelName(slot), wf.retries[slot])
			}
			if p.recorded && wf.retryBlk[slot] > 0 && p.kern[slot].Blocks > 0 {
				t := p.dev.EstimateTime(&p.kern[slot], num.SizeOf[T]())
				share := float64(wf.retryBlk[slot]) / float64(p.kern[slot].Blocks)
				r.WastedModeledTime += time.Duration(share * t * float64(time.Second))
			}
		}
		if !wf.degraded {
			continue
		}
		if p.k == 0 {
			lo, hi := w.firstBlk*p.bs, (w.firstBlk+w.nBlk)*p.bs
			if hi > p.m {
				hi = p.m
			}
			for i := lo; i < hi; i++ {
				r.Degraded = append(r.Degraded, i)
			}
		} else {
			for i := w.firstSys; i < w.firstSys+w.nSys; i++ {
				r.Degraded = append(r.Degraded, i)
			}
		}
	}
	if p.degradeAll {
		r.Degraded = r.Degraded[:0]
		for i := 0; i < p.m; i++ {
			r.Degraded = append(r.Degraded, i)
		}
	}
	r.WastedModeledTime += time.Duration(hangs) * p.cfg.watchdog()
}

// degradedResolve re-solves every degraded system on the host through
// the pivoting GTSV path, writing its rows of dst. The inputs were
// never mutated by the device attempts, so the re-solve sees the
// original batch. A system the direct solver also rejects (singular)
// zeroes its rows and contributes an ErrFaulted-wrapped error.
func (p *Pipeline[T]) degradedResolve(dst []T, b *matrix.Batch[T]) error {
	if p.gtsvWS == nil {
		p.gtsvWS = cpu.NewGTSVWorkspace[T](p.n)
	}
	var errs []error
	for _, i := range p.frep.Degraded {
		lo, hi := i*p.n, (i+1)*p.n
		var sys matrix.System[T]
		sys.Lower = b.Lower[lo:hi]
		sys.Diag = b.Diag[lo:hi]
		sys.Upper = b.Upper[lo:hi]
		sys.RHS = b.RHS[lo:hi]
		if err := cpu.SolveGTSVInto(&sys, dst[lo:hi], p.gtsvWS); err != nil {
			clear(dst[lo:hi])
			errs = append(errs, fmt.Errorf("%w: degraded re-solve of system %d: %v", ErrFaulted, i, err))
		}
	}
	return errors.Join(errs...)
}

// solveFallback delegates the fused / multiplexed configurations to
// their original one-shot implementations (which allocate per call).
func (p *Pipeline[T]) solveFallback(dst []T, b *matrix.Batch[T]) error {
	rep := &Report{K: p.k, C: p.c, BlocksPerSystem: p.g, Stats: &gpusim.Stats{}}
	var (
		x   []T
		err error
	)
	if p.cfg.Fuse {
		rep.Fused = true
		x, _, err = solveFused(p.dev, p.cfg, b, p.k, rep)
	} else {
		x, _, err = solveMultiplexed(p.dev, p.cfg, b, p.k, rep)
	}
	if err != nil {
		return err
	}
	copy(dst, x)
	p.altRep = rep
	return nil
}

// Report describes the most recent solve. For the steady-state paths
// the report (and its Stats) is recorded once and reused — it is
// owned by the pipeline and valid until Close.
func (p *Pipeline[T]) Report() *Report {
	if p.altRep != nil {
		return p.altRep
	}
	return &p.rep
}

// K returns the resolved PCR step count.
func (p *Pipeline[T]) K() int { return p.k }

// LastSolveTime returns the measured host duration of the most recent
// solve (zero before the first one) — the observed per-shape service
// time the serving pool's admission controller feeds its EWMA.
func (p *Pipeline[T]) LastSolveTime() time.Duration { return p.lastWall }

// Shape returns the fixed batch shape (M systems, N rows).
func (p *Pipeline[T]) Shape() (m, n int) { return p.m, p.n }

// Workers returns the size of the replay worker pool.
func (p *Pipeline[T]) Workers() int { return len(p.workers) }

// Device returns the pipeline's simulated device.
func (p *Pipeline[T]) Device() *gpusim.Device { return p.dev }

// Close stops the worker pool. A Close that races an in-flight solve
// returns ErrPipelineBusy without touching the pool (the solve keeps
// its arena); after a successful Close, SolveInto returns
// ErrPipelineClosed. Close is idempotent — repeat calls return nil.
func (p *Pipeline[T]) Close() error {
	if !p.inUse.CompareAndSwap(false, true) {
		return ErrPipelineBusy
	}
	defer p.inUse.Store(false)
	if p.closed {
		return nil
	}
	p.closed = true
	for _, w := range p.workers {
		if w.start != nil {
			close(w.start)
		}
	}
	return nil
}
