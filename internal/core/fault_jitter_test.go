package core

import (
	"testing"
	"time"
)

// TestBackoffJitterDeterministic pins the seeded-jitter contract: the
// wait is a pure function of (policy, salt, attempt) — replays are
// exact — while distinct salts (simultaneously failing shards) draw
// distinct offsets instead of retrying in lockstep.
func TestBackoffJitterDeterministic(t *testing.T) {
	p := RetryPolicy{BaseBackoff: time.Millisecond, MaxBackoff: time.Second}
	for attempt := 0; attempt < 5; attempt++ {
		for salt := uint64(0); salt < 4; salt++ {
			a := p.backoff(attempt, salt)
			b := p.backoff(attempt, salt)
			if a != b {
				t.Fatalf("backoff(%d, %d) not deterministic: %v vs %v", attempt, salt, a, b)
			}
		}
	}
	distinct := map[time.Duration]bool{}
	for salt := uint64(0); salt < 8; salt++ {
		distinct[p.backoff(0, salt)] = true
	}
	if len(distinct) < 2 {
		t.Errorf("8 salts produced %d distinct backoffs, want de-lockstepped waits", len(distinct))
	}
}

// TestBackoffJitterBounds checks the jittered wait stays inside the
// advertised envelope: within ±Jitter/2 of the exponential value and
// never above MaxBackoff.
func TestBackoffJitterBounds(t *testing.T) {
	base, cap := time.Millisecond, 100*time.Millisecond
	p := RetryPolicy{BaseBackoff: base, MaxBackoff: cap} // default Jitter 0.5
	for attempt := 0; attempt < 12; attempt++ {
		nominal := base << uint(attempt)
		if nominal > cap || nominal <= 0 {
			nominal = cap
		}
		lo := time.Duration(float64(nominal) * 0.75)
		for salt := uint64(0); salt < 16; salt++ {
			d := p.backoff(attempt, salt)
			if d < lo || d > cap {
				t.Fatalf("backoff(%d, %d) = %v outside [%v, %v]", attempt, salt, d, lo, cap)
			}
		}
	}
}

// TestBackoffJitterDisabled checks Jitter < 0 restores the pure capped
// exponential ladder, and that a changed seed changes the draws.
func TestBackoffJitterDisabled(t *testing.T) {
	p := RetryPolicy{BaseBackoff: time.Millisecond, MaxBackoff: 64 * time.Millisecond, Jitter: -1}
	for attempt, want := range []time.Duration{
		time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond, 8 * time.Millisecond,
	} {
		if got := p.backoff(attempt, 7); got != want {
			t.Errorf("unjittered backoff(%d) = %v, want %v", attempt, got, want)
		}
	}
	if got := p.backoff(40, 7); got != 64*time.Millisecond {
		t.Errorf("deep attempt = %v, want cap", got)
	}

	a := RetryPolicy{BaseBackoff: time.Millisecond, JitterSeed: 1}
	b := RetryPolicy{BaseBackoff: time.Millisecond, JitterSeed: 2}
	same := true
	for attempt := 0; attempt < 8 && same; attempt++ {
		same = a.backoff(attempt, 0) == b.backoff(attempt, 0)
	}
	if same {
		t.Error("JitterSeed has no effect on the draws")
	}
}
