package core

import (
	"testing"

	"gputrid/internal/gpusim"
	"gputrid/internal/matrix"
	"gputrid/internal/tiledpcr"
	"gputrid/internal/workload"
)

// TestPortabilityAcrossDevices checks the paper's §III.A claim that the
// controllable window size makes the hybrid portable: the solver must
// adapt k to each device's shared memory and block limits and still
// solve correctly — including on a GT200-class GPU with only 16 KB of
// shared memory and 512-thread blocks.
func TestPortabilityAcrossDevices(t *testing.T) {
	b := workload.Batch[float64](workload.DiagDominant, 3, 4096, 21)
	for name, dev := range gpusim.Devices() {
		x, rep, err := Solve(Config{Device: dev, K: KAuto}, b)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if r := matrix.MaxResidual(b, x); r > matrix.ResidualTolerance[float64](4096) {
			t.Errorf("%s: residual %g", name, r)
		}
		// The chosen configuration must fit the device.
		if fit := tiledpcr.SharedBytes[float64](rep.K, rep.C); rep.K > 0 && fit > dev.SharedMemPerSM {
			t.Errorf("%s: k=%d needs %d bytes shared, device has %d",
				name, rep.K, fit, dev.SharedMemPerSM)
		}
		if rep.K > 0 && 1<<rep.K > dev.MaxThreadsPerBlock {
			t.Errorf("%s: k=%d exceeds block limit", name, rep.K)
		}
	}
}

// TestGTX280ClampsK verifies that the 16 KB device forces a smaller
// window than the heuristic's k=8.
func TestGTX280ClampsK(t *testing.T) {
	dev := gpusim.GTX280()
	b := workload.Batch[float64](workload.DiagDominant, 1, 8192, 5)
	_, rep, err := Solve(Config{Device: dev, K: KAuto}, b)
	if err != nil {
		t.Fatal(err)
	}
	if rep.K >= 8 {
		t.Errorf("k = %d on 16KB device, expected clamped below 8", rep.K)
	}
	if rep.K == 0 {
		t.Error("k clamped all the way to 0; window should still fit at moderate k")
	}
}

// TestDevicePresetsValidate ensures every preset is self-consistent.
func TestDevicePresetsValidate(t *testing.T) {
	for name, dev := range gpusim.Devices() {
		if err := dev.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if dev.HardwareParallelism() <= 0 {
			t.Errorf("%s: nonpositive parallelism", name)
		}
	}
}
