package core

import (
	"testing"

	"gputrid/internal/workload"
)

// TestKZeroTrafficClosedForm pins the k=0 path's global traffic to its
// closed form: p-Thomas loads 3 elements for the first row, 4 per
// remaining forward row and 2 per backward row (6N−3 per system), and
// stores c',d' forward plus x backward (3N per system).
func TestKZeroTrafficClosedForm(t *testing.T) {
	m, n := 64, 128
	b := workload.Batch[float64](workload.DiagDominant, m, n, 3)
	_, rep, err := Solve(Config{Device: dev(), K: 0}, b)
	if err != nil {
		t.Fatal(err)
	}
	st := rep.Stats
	elem := int64(8)
	wantLoads := int64(m) * (6*int64(n) - 3) * elem
	wantStores := int64(m) * 3 * int64(n) * elem
	if st.LoadedBytes != wantLoads {
		t.Errorf("loaded bytes = %d, want %d", st.LoadedBytes, wantLoads)
	}
	if st.StoredBytes != wantStores {
		t.Errorf("stored bytes = %d, want %d", st.StoredBytes, wantStores)
	}
	// Elimination steps: 2N−1 per system, the Table II Thomas count.
	if want := int64(m) * (2*int64(n) - 1); st.Eliminations != want {
		t.Errorf("eliminations = %d, want %d", st.Eliminations, want)
	}
}

// TestHybridTrafficClosedForm pins the two-kernel hybrid's traffic:
// the PCR stage reads the four input arrays once (plus aligned halo
// padding none for one block per system) and writes four reduced
// arrays; the p-Thomas stage re-reads them and writes c', d', x.
func TestHybridTrafficClosedForm(t *testing.T) {
	m, n, k := 4, 1024, 5
	b := workload.Batch[float64](workload.DiagDominant, m, n, 7)
	_, rep, err := Solve(Config{Device: dev(), K: k, BlocksPerSystem: 1}, b)
	if err != nil {
		t.Fatal(err)
	}
	elem := int64(8)
	pcrStats := rep.Kernels[0]
	// Each block loads its system's 4 arrays exactly once (no halo:
	// one block per system) and stores the 4 reduced arrays once.
	if want := int64(m) * 4 * int64(n) * elem; pcrStats.LoadedBytes != want {
		t.Errorf("PCR loaded %d bytes, want %d", pcrStats.LoadedBytes, want)
	}
	if want := int64(m) * 4 * int64(n) * elem; pcrStats.StoredBytes != want {
		t.Errorf("PCR stored %d bytes, want %d", pcrStats.StoredBytes, want)
	}
	// The back-end solves m·2^k subsystems covering all m·n rows:
	// same closed form as k=0 but per subsystem (first row of each
	// subsystem loads 3).
	thomasStats := rep.Kernels[1]
	subs := int64(m) * int64(1<<k)
	rows := int64(m) * int64(n)
	if want := (6*rows - 3*subs) * elem; thomasStats.LoadedBytes != want {
		t.Errorf("p-Thomas loaded %d bytes, want %d", thomasStats.LoadedBytes, want)
	}
	if want := 3 * rows * elem; thomasStats.StoredBytes != want {
		t.Errorf("p-Thomas stored %d bytes, want %d", thomasStats.StoredBytes, want)
	}
}

// TestFusedTrafficClosedForm pins the §III.C fused kernel's saving: the
// fused stage loads the inputs once and stores only c', d'; the
// backward kernel reads them and writes x. Total = 4N in + 2N out +
// 2N in + N out per system-row versus 15N−ish unfused.
func TestFusedTrafficClosedForm(t *testing.T) {
	m, n, k := 2, 2048, 6
	b := workload.Batch[float64](workload.DiagDominant, m, n, 9)
	_, rep, err := Solve(Config{Device: dev(), K: k, Fuse: true}, b)
	if err != nil {
		t.Fatal(err)
	}
	elem := int64(8)
	rows := int64(m) * int64(n)
	fwd := rep.Kernels[0]
	if want := 4 * rows * elem; fwd.LoadedBytes != want {
		t.Errorf("fused forward loaded %d, want %d", fwd.LoadedBytes, want)
	}
	if want := 2 * rows * elem; fwd.StoredBytes != want {
		t.Errorf("fused forward stored %d, want %d", fwd.StoredBytes, want)
	}
	bwd := rep.Kernels[1]
	subs := int64(m) * int64(1<<k)
	// Backward: the last row of each subsystem loads dp only (1); the
	// rest load cp and dp (2 each). Stores x everywhere.
	if want := (2*rows - subs) * elem; bwd.LoadedBytes != want {
		t.Errorf("backward loaded %d, want %d", bwd.LoadedBytes, want)
	}
	if want := rows * elem; bwd.StoredBytes != want {
		t.Errorf("backward stored %d, want %d", bwd.StoredBytes, want)
	}
}

// TestEliminationCountsMatchTableII verifies the measured hybrid
// elimination count is k·N + (2·N − 2^k) per system — the Table II
// operation count the transition analysis is built on — up to the
// pipeline's warm-up overhead.
func TestEliminationCountsMatchTableII(t *testing.T) {
	m, n, k := 4, 4096, 6
	b := workload.Batch[float64](workload.DiagDominant, m, n, 11)
	_, rep, err := Solve(Config{Device: dev(), K: k, BlocksPerSystem: 1}, b)
	if err != nil {
		t.Fatal(err)
	}
	ideal := int64(m) * (int64(k)*int64(n) + 2*int64(n) - int64(1<<k))
	got := rep.Stats.Eliminations
	if got < ideal {
		t.Errorf("eliminations %d below the Table II minimum %d", got, ideal)
	}
	// Warm-up overhead is bounded by ~2 sub-tiles of k·S work per block.
	slack := int64(m) * int64(k) * int64(2<<k) * 2
	if got > ideal+slack {
		t.Errorf("eliminations %d exceed Table II count %d + warm-up slack %d", got, ideal, slack)
	}
}
