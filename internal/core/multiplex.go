package core

import (
	"fmt"

	"gputrid/internal/gpusim"
	"gputrid/internal/matrix"
	"gputrid/internal/num"
	"gputrid/internal/pthomas"
	"gputrid/internal/tiledpcr"
)

// solveMultiplexed is the Fig. 11(c) configuration: each thread block
// hosts q = SystemsPerBlock sliding windows (one per system) and
// advances them round-robin, one sub-tile phase each. The windows'
// global loads are independent, so a real GPU overlaps their latencies;
// the cost is q times the shared-memory footprint, which lowers
// occupancy — the tradeoff the harness's ablation quantifies.
func solveMultiplexed[T num.Real](dev *gpusim.Device, cfg Config, b *matrix.Batch[T], k int, rep *Report) ([]T, *Report, error) {
	m, n := b.M, b.N
	q := cfg.SystemsPerBlock
	c := cfg.c()
	if fit := tiledpcr.SharedBytes[T](k, c) * q; fit > dev.SharedMemPerSM {
		return nil, nil, fmt.Errorf("core: %d multiplexed windows need %d bytes shared, device SM has %d",
			q, fit, dev.SharedMemPerSM)
	}

	ra := make([]T, m*n)
	rb := make([]T, m*n)
	rc := make([]T, m*n)
	rd := make([]T, m*n)
	in := tiledpcr.NewArrays(b.Lower, b.Diag, b.Upper, b.RHS)
	out := tiledpcr.NewArrays(ra, rb, rc, rd)

	grid := num.CeilDiv(m, q)
	st1, err := dev.Launch("tiledPCRmux", gpusim.LaunchConfig{Grid: grid, Block: 1 << k},
		func(blk *gpusim.Block) {
			first := blk.ID * q
			count := q
			if first+count > m {
				count = m - first
			}
			if count <= 0 {
				return
			}
			windows := make([]*tiledpcr.Window[T], count)
			phases := 0
			for i := range windows {
				windows[i] = tiledpcr.NewWindow(blk, k, c, n, (first+i)*n, in)
				if p := windows[i].InitRun(0, n); p > phases {
					phases = p
				}
			}
			for t := 0; t < phases; t++ {
				for i, w := range windows {
					sys := first + i
					w.Advance(t, func(outBase int) {
						lo, hi := w.OutRange(outBase, 0, n)
						blk.PhaseNoSync(func(th *gpusim.Thread) {
							for e := 0; e < c; e++ {
								p := th.ID + e*w.Threads()
								if p < lo || p >= hi {
									continue
								}
								gi := sys*n + outBase + p
								r := w.Out[p]
								out.A.Store(th, gi, r.A)
								out.B.Store(th, gi, r.B)
								out.C.Store(th, gi, r.C)
								out.D.Store(th, gi, r.D)
							}
						})
					})
				}
			}
		})
	if err != nil {
		return nil, nil, err
	}
	rep.Kernels = append(rep.Kernels, st1)
	rep.Stats.Add(st1)

	x, st2, err := pthomas.KernelStrided(dev, ra, rb, rc, rd, m, n, k)
	if err != nil {
		return nil, nil, err
	}
	rep.Kernels = append(rep.Kernels, st2)
	rep.Stats.Add(st2)
	return x, rep, nil
}
