package core

import (
	"errors"
	"testing"

	"gputrid/internal/matrix"
	"gputrid/internal/workload"
)

// pipelineShapes covers both steady-state paths: k >= 1 (hybrid) and
// k = 0 (pure interleaved p-Thomas).
var pipelineShapes = []struct {
	name string
	cfg  Config
	m, n int
}{
	{"hybrid-kauto", Config{K: KAuto}, 16, 128},
	{"hybrid-k3-split", Config{K: 3, BlocksPerSystem: 2}, 4, 256},
	{"k0", Config{K: 0}, 32, 64},
}

// TestPipelineReuseMatchesSolve reuses one pipeline across many
// batches and requires bitwise identity with the one-shot Solve on
// every one of them — recorded first solve and replayed rest alike.
func TestPipelineReuseMatchesSolve(t *testing.T) {
	for _, tc := range pipelineShapes {
		t.Run(tc.name, func(t *testing.T) {
			p, err := NewPipeline[float64](tc.cfg, tc.m, tc.n)
			if err != nil {
				t.Fatal(err)
			}
			defer p.Close()
			dst := make([]float64, tc.m*tc.n)
			for iter := 0; iter < 10; iter++ {
				b := workload.Batch[float64](workload.DiagDominant, tc.m, tc.n, uint64(1000+iter))
				want, rep, err := Solve(tc.cfg, b)
				if err != nil {
					t.Fatal(err)
				}
				if err := p.SolveInto(dst, b); err != nil {
					t.Fatal(err)
				}
				for i := range dst {
					if dst[i] != want[i] {
						t.Fatalf("iter %d: dst[%d] = %v, Solve = %v (not bitwise identical)", iter, i, dst[i], want[i])
					}
				}
				got := p.Report()
				if *got.Stats != *rep.Stats {
					t.Fatalf("iter %d: replayed stats diverge from one-shot:\n got %+v\nwant %+v", iter, *got.Stats, *rep.Stats)
				}
				if got.K != rep.K || got.BlocksPerSystem != rep.BlocksPerSystem {
					t.Fatalf("iter %d: report shape diverges: got k=%d g=%d, want k=%d g=%d",
						iter, got.K, got.BlocksPerSystem, rep.K, rep.BlocksPerSystem)
				}
			}
		})
	}
}

// TestPipelineWorkersMatch runs the same batches through pipelines
// with different worker-pool sizes; sharding must not change a bit of
// the result.
func TestPipelineWorkersMatch(t *testing.T) {
	for _, tc := range pipelineShapes {
		t.Run(tc.name, func(t *testing.T) {
			cfg1, cfg4 := tc.cfg, tc.cfg
			cfg1.Workers = 1
			cfg4.Workers = 4
			p1, err := NewPipeline[float64](cfg1, tc.m, tc.n)
			if err != nil {
				t.Fatal(err)
			}
			defer p1.Close()
			p4, err := NewPipeline[float64](cfg4, tc.m, tc.n)
			if err != nil {
				t.Fatal(err)
			}
			defer p4.Close()
			x1 := make([]float64, tc.m*tc.n)
			x4 := make([]float64, tc.m*tc.n)
			for iter := 0; iter < 3; iter++ {
				b := workload.Batch[float64](workload.DiagDominant, tc.m, tc.n, uint64(7+iter))
				if err := p1.SolveInto(x1, b); err != nil {
					t.Fatal(err)
				}
				if err := p4.SolveInto(x4, b); err != nil {
					t.Fatal(err)
				}
				for i := range x1 {
					if x1[i] != x4[i] {
						t.Fatalf("iter %d: workers=1 and workers=4 disagree at %d: %v vs %v", iter, i, x1[i], x4[i])
					}
				}
			}
		})
	}
}

// TestPipelineZeroAlloc is the tier-1 regression gate for the
// tentpole: a warmed pipeline must run SolveInto without a single
// heap allocation, on the single-lane and the multi-lane pool alike.
func TestPipelineZeroAlloc(t *testing.T) {
	for _, workers := range []int{1, 3} {
		for _, tc := range pipelineShapes {
			cfg := tc.cfg
			cfg.Workers = workers
			p, err := NewPipeline[float64](cfg, tc.m, tc.n)
			if err != nil {
				t.Fatal(err)
			}
			b := workload.Batch[float64](workload.DiagDominant, tc.m, tc.n, 42)
			dst := make([]float64, tc.m*tc.n)
			if err := p.SolveInto(dst, b); err != nil { // recording solve
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(10, func() {
				if err := p.SolveInto(dst, b); err != nil {
					t.Fatal(err)
				}
			})
			p.Close()
			if allocs != 0 {
				t.Errorf("%s workers=%d: SolveInto allocates %.0f times per solve, want 0", tc.name, workers, allocs)
			}
		}
	}
}

// TestPipelineMisuse checks the typed errors: wrong shapes, a busy
// pipeline, and a closed pipeline all reject the call without
// touching the arena.
func TestPipelineMisuse(t *testing.T) {
	p, err := NewPipeline[float64](Config{K: KAuto}, 8, 64)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, 8*64)
	good := workload.Batch[float64](workload.DiagDominant, 8, 64, 1)

	if err := p.SolveInto(dst, workload.Batch[float64](workload.DiagDominant, 8, 32, 1)); !errors.Is(err, ErrShapeMismatch) {
		t.Errorf("wrong batch shape: got %v, want ErrShapeMismatch", err)
	}
	if err := p.SolveInto(dst[:17], good); !errors.Is(err, ErrShapeMismatch) {
		t.Errorf("wrong dst length: got %v, want ErrShapeMismatch", err)
	}
	short := workload.Batch[float64](workload.DiagDominant, 8, 64, 1)
	short.Lower = short.Lower[:100]
	if err := p.SolveInto(dst, short); !errors.Is(err, ErrShapeMismatch) {
		t.Errorf("short batch slice: got %v, want ErrShapeMismatch", err)
	}

	p.inUse.Store(true)
	if err := p.SolveInto(dst, good); !errors.Is(err, ErrPipelineBusy) {
		t.Errorf("busy pipeline: got %v, want ErrPipelineBusy", err)
	}
	p.inUse.Store(false)
	if err := p.SolveInto(dst, good); err != nil {
		t.Errorf("pipeline unusable after rejected busy call: %v", err)
	}

	p.Close()
	p.Close() // idempotent
	if err := p.SolveInto(dst, good); !errors.Is(err, ErrPipelineClosed) {
		t.Errorf("closed pipeline: got %v, want ErrPipelineClosed", err)
	}
}

// TestPipelineFallbackModes exercises the fused and multiplexed
// configurations through the pipeline: they keep their one-shot
// implementations but must still produce Solve's exact results and
// reports.
func TestPipelineFallbackModes(t *testing.T) {
	for _, cfg := range []Config{
		{K: 4, Fuse: true},
		{K: 4, SystemsPerBlock: 2},
	} {
		m, n := 6, 128
		p, err := NewPipeline[float64](cfg, m, n)
		if err != nil {
			t.Fatal(err)
		}
		dst := make([]float64, m*n)
		for iter := 0; iter < 2; iter++ {
			b := workload.Batch[float64](workload.DiagDominant, m, n, uint64(3+iter))
			want, rep, err := Solve(cfg, b)
			if err != nil {
				t.Fatal(err)
			}
			if err := p.SolveInto(dst, b); err != nil {
				t.Fatal(err)
			}
			if d := matrix.MaxAbsDiff(dst, want); d != 0 {
				t.Fatalf("fallback diverges from Solve by %v", d)
			}
			got := p.Report()
			if got.Fused != rep.Fused || *got.Stats != *rep.Stats {
				t.Fatalf("fallback report diverges: got %+v, want %+v", *got.Stats, *rep.Stats)
			}
		}
		p.Close()
	}
}
