package core

import (
	"gputrid/internal/matrix"
	"gputrid/internal/num"
)

// SolveSelected re-solves only the systems of the batch named by idx,
// returning their solutions contiguously in idx order (solution j in
// [j*N, (j+1)*N)) plus the execution report of the sub-batch solve. The
// guarded pipeline uses it to re-run the fast path for a handful of
// failing systems without paying for the M-1 healthy ones again; merge
// the result back with matrix.ScatterVector.
func SolveSelected[T num.Real](cfg Config, b *matrix.Batch[T], idx []int) ([]T, *Report, error) {
	return Solve(cfg, b.Gather(idx))
}

// SystemView wraps system i of the batch as a 1-system batch sharing
// the same storage (no copy). It is the per-system entry point for
// selective re-factorization: FactorHybrid(SystemView(b, i), k) caches
// exactly the elimination the full solve performed for that system.
func SystemView[T num.Real](b *matrix.Batch[T], i int) *matrix.Batch[T] {
	s := b.System(i)
	return &matrix.Batch[T]{
		M: 1, N: b.N,
		Lower: s.Lower,
		Diag:  s.Diag,
		Upper: s.Upper,
		RHS:   s.RHS,
	}
}
