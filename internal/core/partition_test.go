package core

import "testing"

func TestNewPartitionBalanced(t *testing.T) {
	p, err := NewPartition(100, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.NumSlabs() != 4 || p.NumSeparators() != 3 {
		t.Fatalf("got %d slabs / %d separators", p.NumSlabs(), p.NumSeparators())
	}
	// 97 interior rows over 4 slabs: 25,24,24,24.
	wantLens := []int{25, 24, 24, 24}
	for i, s := range p.Slabs {
		if s.Len() != wantLens[i] {
			t.Errorf("slab %d len %d, want %d", i, s.Len(), wantLens[i])
		}
	}
	for i := 0; i < p.NumSeparators(); i++ {
		sep := p.Separator(i)
		if sep != p.Slabs[i].End || sep+1 != p.Slabs[i+1].Start {
			t.Errorf("separator %d at %d not between slabs %v %v", i, sep, p.Slabs[i], p.Slabs[i+1])
		}
	}
}

func TestPartitionEdges(t *testing.T) {
	if p, err := NewPartition(7, 1); err != nil || p.Slabs[0].Len() != 7 {
		t.Errorf("single-slab partition: %v %+v", err, p)
	}
	// Minimum viable: n = 2D-1 gives all length-1 slabs.
	p, err := NewPartition(7, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range p.Slabs {
		if s.Len() != 1 {
			t.Errorf("slab %d len %d, want 1", i, s.Len())
		}
	}
	if _, err := NewPartition(6, 4); err == nil {
		t.Error("accepted n < 2D-1")
	}
	if _, err := NewPartition(10, 0); err == nil {
		t.Error("accepted zero slabs")
	}
	if _, err := PartitionSizes(10, []int{3, 3, 3}); err == nil {
		t.Error("accepted sizes that do not cover n")
	}
	if _, err := PartitionSizes(5, []int{3, 0, 1}); err == nil {
		t.Error("accepted empty slab")
	}
	if p, err := PartitionSizes(10, []int{2, 5, 1}); err != nil || p.Validate() != nil {
		t.Errorf("rejected valid explicit sizes: %v", err)
	}
}
