package core

import "fmt"

// Slab is one contiguous block of rows [Start, End) of a partitioned
// tridiagonal system, owned by one device of a distributed solve.
// Adjacent slabs are separated by a single separator row (global index
// End for every slab but the last), which belongs to no slab: the
// separator unknowns form the reduced interface system.
type Slab struct {
	Start, End int
}

// Len returns the slab's row count.
func (s Slab) Len() int { return s.End - s.Start }

// Partition splits an N-row tridiagonal system into D slabs and D-1
// separator rows:
//
//	rows: [slab 0][sep 0][slab 1][sep 1]...[sep D-2][slab D-1]
//
// The layout is a pure function of (N, slab sizes) — never of which
// device executes which slab — which is what makes a distributed solve
// bitwise independent of device assignment: migrating a slab to a
// survivor after a device death reproduces the fault-free bits.
type Partition struct {
	N     int
	Slabs []Slab
}

// NewPartition builds a balanced partition of n rows into `slabs`
// slabs: interior rows are split as evenly as possible (earlier slabs
// take the remainder). Requires n >= 2*slabs-1 so every slab has at
// least one row.
func NewPartition(n, slabs int) (Partition, error) {
	if slabs <= 0 {
		return Partition{}, fmt.Errorf("core: partition needs at least 1 slab, got %d", slabs)
	}
	if n < 2*slabs-1 {
		return Partition{}, fmt.Errorf("core: cannot cut %d rows into %d slabs (need >= %d rows)", n, slabs, 2*slabs-1)
	}
	interior := n - (slabs - 1)
	base, rem := interior/slabs, interior%slabs
	sizes := make([]int, slabs)
	for i := range sizes {
		sizes[i] = base
		if i < rem {
			sizes[i]++
		}
	}
	return PartitionSizes(n, sizes)
}

// PartitionSizes builds a partition from explicit slab lengths. The
// lengths plus the len(sizes)-1 separator rows must sum to exactly n,
// and every length must be positive.
func PartitionSizes(n int, sizes []int) (Partition, error) {
	if len(sizes) == 0 {
		return Partition{}, fmt.Errorf("core: partition needs at least 1 slab")
	}
	if n <= 0 {
		return Partition{}, fmt.Errorf("core: partition needs positive row count, got %d", n)
	}
	p := Partition{N: n, Slabs: make([]Slab, len(sizes))}
	at := 0
	for i, sz := range sizes {
		if sz <= 0 {
			return Partition{}, fmt.Errorf("core: slab %d has non-positive length %d", i, sz)
		}
		p.Slabs[i] = Slab{Start: at, End: at + sz}
		at += sz + 1 // skip the separator row after this slab
	}
	// The loop skipped a separator after the last slab too: at is
	// last.End + 1, so coverage demands at == n + 1.
	if at != n+1 {
		return Partition{}, fmt.Errorf("core: slab sizes %v + %d separators cover %d rows, want %d",
			sizes, len(sizes)-1, at-1, n)
	}
	return p, nil
}

// NumSlabs returns the slab count D.
func (p Partition) NumSlabs() int { return len(p.Slabs) }

// NumSeparators returns D-1, the order of the reduced interface system.
func (p Partition) NumSeparators() int { return len(p.Slabs) - 1 }

// Separator returns the global row index of separator i (between slab
// i and slab i+1).
func (p Partition) Separator(i int) int { return p.Slabs[i].End }

// Validate re-checks the structural invariants (exact cover, ordered
// non-empty slabs, single-row separators). A Partition built by
// NewPartition or PartitionSizes always validates; the fuzz harness
// calls this on every construction.
func (p Partition) Validate() error {
	if len(p.Slabs) == 0 {
		return fmt.Errorf("core: partition has no slabs")
	}
	if p.Slabs[0].Start != 0 {
		return fmt.Errorf("core: first slab starts at %d, want 0", p.Slabs[0].Start)
	}
	for i, s := range p.Slabs {
		if s.Len() <= 0 {
			return fmt.Errorf("core: slab %d is empty: %+v", i, s)
		}
		if i > 0 && s.Start != p.Slabs[i-1].End+1 {
			return fmt.Errorf("core: slab %d starts at %d, want separator-adjacent %d",
				i, s.Start, p.Slabs[i-1].End+1)
		}
	}
	if last := p.Slabs[len(p.Slabs)-1].End; last != p.N {
		return fmt.Errorf("core: last slab ends at %d, want %d", last, p.N)
	}
	return nil
}
