package core

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"gputrid/internal/gpusim"
	"gputrid/internal/matrix"
	"gputrid/internal/workload"
)

// settleGoroutines polls until the goroutine count drops back to the
// baseline (or a deadline passes), absorbing the scheduler's lag
// between a worker receiving the pool-shutdown signal and its stack
// actually dying.
func settleGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutines did not settle: %d > baseline %d\n%s", n, baseline, buf)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// faultDevice returns a GTX480 carrying the injector. The device is
// private to the test — presets are never mutated.
func faultDevice(inj *gpusim.Injector) *gpusim.Device {
	d := gpusim.GTX480()
	d.Faults = inj
	return d
}

// TestRetryRecoversBitwise pins the tentpole guarantee: with a fault
// schedule whose Repeat fits inside the retry budget, the recovered
// solve is bitwise identical to a fault-free solve, on both pipeline
// paths and for both recording and replayed solves.
func TestRetryRecoversBitwise(t *testing.T) {
	for _, tc := range pipelineShapes {
		t.Run(tc.name, func(t *testing.T) {
			b := workload.Batch[float64](workload.DiagDominant, tc.m, tc.n, 7)
			want, _, err := Solve(tc.cfg, b)
			if err != nil {
				t.Fatal(err)
			}

			cfg := tc.cfg
			cfg.Device = faultDevice(&gpusim.Injector{
				Repeat: 2, // needs two retries; budget default is 3
				Schedule: []gpusim.ScheduledFault{
					{Kernel: "", Block: 0, Kind: gpusim.FaultAbort},
				},
			})
			p, err := NewPipeline[float64](cfg, tc.m, tc.n)
			if err != nil {
				t.Fatal(err)
			}
			defer p.Close()
			dst := make([]float64, tc.m*tc.n)
			for iter := 0; iter < 3; iter++ {
				for i := range dst {
					dst[i] = -1
				}
				if err := p.SolveInto(dst, b); err != nil {
					t.Fatalf("iter %d: %v", iter, err)
				}
				for i := range dst {
					if dst[i] != want[i] {
						t.Fatalf("iter %d: dst[%d] = %v, fault-free = %v (not bitwise identical)",
							iter, i, dst[i], want[i])
					}
				}
				fr := p.Report().Faults
				if fr == nil || fr.Faults == 0 {
					t.Fatalf("iter %d: no faults reported, schedule should have fired", iter)
				}
				if fr.TotalRetries() == 0 {
					t.Fatalf("iter %d: recovery without retries reported", iter)
				}
				if len(fr.Degraded) != 0 {
					t.Fatalf("iter %d: systems degraded %v, want none (Repeat <= budget)", iter, fr.Degraded)
				}
			}
		})
	}
}

// TestCorruptFaultRepaired verifies the poisoned-store fault is fully
// repaired by re-execution: no NaN survives into the solution.
func TestCorruptFaultRepaired(t *testing.T) {
	for _, tc := range pipelineShapes {
		t.Run(tc.name, func(t *testing.T) {
			b := workload.Batch[float64](workload.DiagDominant, tc.m, tc.n, 8)
			want, _, err := Solve(tc.cfg, b)
			if err != nil {
				t.Fatal(err)
			}
			cfg := tc.cfg
			cfg.Device = faultDevice(&gpusim.Injector{
				Schedule: []gpusim.ScheduledFault{
					{Kernel: "", Block: -1, Kind: gpusim.FaultCorrupt},
				},
			})
			x, rep, err := Solve(cfg, b)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Faults == nil || rep.Faults.Faults == 0 {
				t.Fatal("corrupt schedule did not fire")
			}
			for i := range x {
				if x[i] != want[i] {
					t.Fatalf("x[%d] = %v, fault-free = %v (corruption leaked through retry)", i, x[i], want[i])
				}
			}
		})
	}
}

// TestDegradeToGTSV exhausts the retry budget and checks the shard's
// systems are re-solved through the pivoting path: solutions stay
// accurate, the report lists them, and the solve still returns nil.
func TestDegradeToGTSV(t *testing.T) {
	for _, tc := range pipelineShapes {
		t.Run(tc.name, func(t *testing.T) {
			b := workload.Batch[float64](workload.DiagDominant, tc.m, tc.n, 9)
			cfg := tc.cfg
			cfg.Retry = RetryPolicy{MaxRetries: 1, BaseBackoff: time.Microsecond}
			cfg.Device = faultDevice(&gpusim.Injector{
				Repeat: 1000, // never heals inside the budget
				Schedule: []gpusim.ScheduledFault{
					{Kernel: "", Block: 0, Kind: gpusim.FaultAbort},
				},
			})
			x, rep, err := Solve(cfg, b)
			if err != nil {
				t.Fatal(err)
			}
			fr := rep.Faults
			if fr == nil || len(fr.Degraded) == 0 {
				t.Fatal("no systems degraded, schedule never heals and budget is 1")
			}
			if res := matrix.MaxResidual(b, x); !(res <= matrix.ResidualTolerance[float64](tc.n)) {
				t.Fatalf("degraded solve residual %.3e exceeds tolerance", res)
			}
		})
	}
}

// TestNoDegradeFails checks RetryPolicy.NoDegrade turns budget
// exhaustion into a typed ErrFaulted instead of a silent GTSV rescue.
func TestNoDegradeFails(t *testing.T) {
	b := workload.Batch[float64](workload.DiagDominant, 16, 128, 10)
	cfg := Config{
		K:     KAuto,
		Retry: RetryPolicy{MaxRetries: 1, BaseBackoff: time.Microsecond, NoDegrade: true},
		Device: faultDevice(&gpusim.Injector{
			Repeat:   1000,
			Schedule: []gpusim.ScheduledFault{{Kernel: "", Block: 0, Kind: gpusim.FaultAbort}},
		}),
	}
	_, _, err := Solve(cfg, b)
	if !errors.Is(err, ErrFaulted) {
		t.Fatalf("error = %v, want ErrFaulted", err)
	}
	var le *gpusim.LaunchError
	if !errors.As(err, &le) {
		t.Fatalf("error chain %v does not carry the *LaunchError", err)
	}
}

// TestCancelBeforeSolve checks a pre-cancelled context rejects the
// solve before anything runs: typed error, dst untouched.
func TestCancelBeforeSolve(t *testing.T) {
	for _, tc := range pipelineShapes {
		t.Run(tc.name, func(t *testing.T) {
			p, err := NewPipeline[float64](tc.cfg, tc.m, tc.n)
			if err != nil {
				t.Fatal(err)
			}
			defer p.Close()
			b := workload.Batch[float64](workload.DiagDominant, tc.m, tc.n, 11)
			dst := make([]float64, tc.m*tc.n)
			for i := range dst {
				dst[i] = -7
			}
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			err = p.SolveIntoCtx(ctx, dst, b)
			if !errors.Is(err, ErrCancelled) {
				t.Fatalf("error = %v, want ErrCancelled", err)
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("error = %v, does not match context.Canceled", err)
			}
			for i := range dst {
				if dst[i] != -7 {
					t.Fatalf("dst[%d] written by a cancelled solve", i)
				}
			}
			// The pipeline stays usable after a cancelled call.
			if err := p.SolveInto(dst, b); err != nil {
				t.Fatalf("solve after cancellation: %v", err)
			}
		})
	}
}

// TestCancelDuringBackoff cancels mid-solve deterministically: a
// never-healing fault with a long backoff parks the solve in
// sleepBackoff, where the context deadline fires. The solve must
// return promptly with the typed error and leak nothing.
func TestCancelDuringBackoff(t *testing.T) {
	base := runtime.NumGoroutine()
	for _, tc := range pipelineShapes {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg
			cfg.Retry = RetryPolicy{
				MaxRetries:  1000,
				BaseBackoff: 50 * time.Millisecond,
				MaxBackoff:  time.Second,
			}
			cfg.Device = faultDevice(&gpusim.Injector{
				Repeat:   1 << 30,
				Schedule: []gpusim.ScheduledFault{{Kernel: "", Block: -1, Kind: gpusim.FaultAbort}},
			})
			p, err := NewPipeline[float64](cfg, tc.m, tc.n)
			if err != nil {
				t.Fatal(err)
			}
			defer p.Close()
			b := workload.Batch[float64](workload.DiagDominant, tc.m, tc.n, 12)
			dst := make([]float64, tc.m*tc.n)
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
			defer cancel()
			start := time.Now()
			err = p.SolveIntoCtx(ctx, dst, b)
			if !errors.Is(err, ErrCancelled) || !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("error = %v, want ErrCancelled wrapping DeadlineExceeded", err)
			}
			if el := time.Since(start); el > 2*time.Second {
				t.Fatalf("cancellation took %v, want prompt return from backoff", el)
			}
		})
	}
	settleGoroutines(t, base)
}

// TestFaultRetryCycleLeaksNothing hammers the retry/degrade machinery
// over many solves and checks the worker pool neither leaks goroutines
// nor wedges.
func TestFaultRetryCycleLeaksNothing(t *testing.T) {
	base := runtime.NumGoroutine()
	func() {
		cfg := Config{K: KAuto, Retry: RetryPolicy{BaseBackoff: time.Microsecond}}
		cfg.Device = faultDevice(&gpusim.Injector{Seed: 3, Rate: 0.2, Repeat: 2})
		p, err := NewPipeline[float64](cfg, 16, 128)
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		b := workload.Batch[float64](workload.DiagDominant, 16, 128, 13)
		dst := make([]float64, 16*128)
		for iter := 0; iter < 30; iter++ {
			if err := p.SolveIntoCtx(context.Background(), dst, b); err != nil {
				t.Fatalf("iter %d: %v", iter, err)
			}
		}
	}()
	settleGoroutines(t, base)
}

// TestCloseWhileSolving pins the Close/SolveInto race fix: Close
// against an in-flight solve returns ErrPipelineBusy and leaves both
// the solve and the pipeline intact.
func TestCloseWhileSolving(t *testing.T) {
	cfg := Config{
		K:     KAuto,
		Retry: RetryPolicy{MaxRetries: 3, BaseBackoff: 100 * time.Millisecond, MaxBackoff: time.Second},
	}
	cfg.Device = faultDevice(&gpusim.Injector{
		Repeat:   2, // fault twice, then heal: the solve succeeds after backoffs
		Schedule: []gpusim.ScheduledFault{{Kernel: "", Block: 0, Kind: gpusim.FaultAbort}},
	})
	p, err := NewPipeline[float64](cfg, 16, 128)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	b := workload.Batch[float64](workload.DiagDominant, 16, 128, 14)
	dst := make([]float64, 16*128)

	solveDone := make(chan error, 1)
	go func() {
		// The scheduled fault parks this solve in ~200ms of backoff,
		// giving the concurrent Close a wide window to race into.
		solveDone <- p.SolveIntoCtx(context.Background(), dst, b)
	}()
	var closeErr error
	deadline := time.Now().Add(5 * time.Second)
	for {
		closeErr = p.Close()
		if closeErr != nil || time.Now().After(deadline) {
			break
		}
		// Close won the race before the solve acquired the pipeline;
		// that is legal (solve then reports ErrPipelineClosed). Only
		// keep probing while the solve is still running.
		select {
		case err := <-solveDone:
			if !errors.Is(err, ErrPipelineClosed) {
				t.Fatalf("solve after winning Close = %v, want ErrPipelineClosed", err)
			}
			return
		default:
			time.Sleep(time.Millisecond)
		}
	}
	if !errors.Is(closeErr, ErrPipelineBusy) {
		t.Fatalf("Close during solve = %v, want ErrPipelineBusy", closeErr)
	}
	if err := <-solveDone; err != nil {
		t.Fatalf("solve disturbed by racing Close: %v", err)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("Close after solve returned: %v", err)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("repeat Close: %v", err)
	}
	if err := p.SolveInto(dst, b); !errors.Is(err, ErrPipelineClosed) {
		t.Fatalf("solve after Close = %v, want ErrPipelineClosed", err)
	}
}

// TestWatchdogChargesHangs checks a hang fault contributes the
// watchdog budget to the wasted-time model.
func TestWatchdogChargesHangs(t *testing.T) {
	budget := 3 * time.Millisecond
	cfg := Config{
		K:        KAuto,
		Watchdog: budget,
		Retry:    RetryPolicy{BaseBackoff: time.Microsecond},
	}
	cfg.Device = faultDevice(&gpusim.Injector{
		Schedule: []gpusim.ScheduledFault{{Kernel: "", Block: 0, Kind: gpusim.FaultHang}},
	})
	b := workload.Batch[float64](workload.DiagDominant, 16, 128, 15)
	_, rep, err := Solve(cfg, b)
	if err != nil {
		t.Fatal(err)
	}
	fr := rep.Faults
	if fr == nil || fr.Faults == 0 {
		t.Fatal("hang schedule did not fire")
	}
	if fr.WastedModeledTime < budget {
		t.Fatalf("wasted modeled time %v, want at least one watchdog budget %v", fr.WastedModeledTime, budget)
	}
}
