package core

import (
	"context"
	"errors"
	"fmt"

	"time"

	"gputrid/internal/cpu"
	"gputrid/internal/matrix"
	"gputrid/internal/pthomas"
)

// This file is the interleaved-native pipeline entry: batches that are
// already in the interleaved layout (row j of system i at j*M+i — the
// layout the k = 0 p-Thomas kernel consumes and the batching
// front-end's megabatches are born in, per Gloster et al.
// arXiv:1909.04539) solve without the 32×32 blocked transpose that the
// contiguous entry pays on every k = 0 solve. The kernel's per-system
// arithmetic is identical either way, so results are bitwise equal to
// the contiguous path on the same data.

// LayoutStats counts how solves entered the pipeline, the observable
// evidence that the interleaved-native path really skips the
// transpose. Snapshot via Pipeline.LayoutStats; safe to read
// concurrently with solves.
type LayoutStats struct {
	// InterleavedSolves counts solves entered through the
	// interleaved-native API (native and shimmed).
	InterleavedSolves uint64
	// TransposesSkipped counts 32×32 blocked plane transposes the
	// native path avoided: 5 per native k = 0 solve (4 coefficient
	// planes in, 1 solution vector out).
	TransposesSkipped uint64
	// InterleavedShim counts interleaved solves that had to convert
	// layouts anyway because the configuration cannot consume them
	// natively (k >= 1 hybrid, fused/multiplexed fallback).
	InterleavedShim uint64
}

// LayoutStats returns the pipeline's layout entry counters.
func (p *Pipeline[T]) LayoutStats() LayoutStats {
	return LayoutStats{
		InterleavedSolves: p.ilSolves.Load(),
		TransposesSkipped: p.ilSkipped.Load(),
		InterleavedShim:   p.ilShim.Load(),
	}
}

// SolveInterleavedInto solves an interleaved batch, writing the
// interleaved solution into xi (entry of system i at row j at j*M+i).
// See SolveInterleavedIntoCtx.
func (p *Pipeline[T]) SolveInterleavedInto(xi []T, v *matrix.Interleaved[T]) error {
	return p.SolveInterleavedIntoCtx(context.Background(), xi, v)
}

// SolveInterleavedIntoCtx is the interleaved-native form of
// SolveIntoCtx: v's planes and xi must be M·N interleaved, and xi must
// not alias v's slices. On the k = 0 path the kernel reads v and
// writes xi directly — no transpose runs at all, and after the first
// call the solve performs no heap allocations. Cancellation and fault
// recovery behave as in SolveIntoCtx with one difference: because the
// kernel writes xi in place, a cancelled k = 0 solve may leave xi
// partially written (the contiguous path's dst stays untouched). The
// error contract is unchanged — treat xi as garbage unless the solve
// returned nil.
//
// Configurations that cannot consume the layout (k >= 1 hybrid,
// fused/multiplexed fallback) convert through a lazily allocated
// contiguous scratch and solve as usual, so the entry point works for
// every configuration; LayoutStats tells the two paths apart.
func (p *Pipeline[T]) SolveInterleavedIntoCtx(ctx context.Context, xi []T, v *matrix.Interleaved[T]) error {
	if v.M != p.m || v.N != p.n {
		return fmt.Errorf("%w: interleaved batch is %dx%d, pipeline wants %dx%d", ErrShapeMismatch, v.M, v.N, p.m, p.n)
	}
	if len(xi) != p.m*p.n {
		return fmt.Errorf("%w: xi has %d elements, pipeline wants %d", ErrShapeMismatch, len(xi), p.m*p.n)
	}
	if len(v.Lower) != p.m*p.n || len(v.Diag) != p.m*p.n ||
		len(v.Upper) != p.m*p.n || len(v.RHS) != p.m*p.n {
		return fmt.Errorf("%w: interleaved plane lengths do not match M*N=%d", ErrShapeMismatch, p.m*p.n)
	}
	if !p.inUse.CompareAndSwap(false, true) {
		return ErrPipelineBusy
	}
	defer p.inUse.Store(false)
	if p.closed {
		return ErrPipelineClosed
	}
	start := time.Now()
	defer func() { p.lastWall = time.Since(start) }()

	if ctx != nil && ctx.Done() == nil {
		ctx = nil
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return cancelled(err)
		}
	}
	p.ilSolves.Add(1)

	if p.k != 0 || p.fallback {
		return p.solveInterleavedShim(ctx, xi, v)
	}
	p.ilSkipped.Add(5)

	ft := ctx != nil || p.dev.Faults != nil
	if ft {
		p.ctx = ctx
		p.frep.reset()
		p.degradeAll = false
		for _, w := range p.workers {
			w.err = nil
			w.wf = workerFaults{}
		}
		defer func() { p.ctx = nil }()
	}

	// Point the kernels at the caller's planes for this solve; the
	// binding is restored before returning so the contiguous entry
	// keeps its arena-backed buffers. NewBufs/NewGlobal are value
	// constructors — the rebind allocates nothing.
	cp, dp := p.ws.Ensure(p.m * p.n)
	p.bufs = pthomas.NewBufs(v.Lower, v.Diag, v.Upper, v.RHS, cp, dp, xi)
	defer p.rebindK0()

	var err error
	if !p.recorded {
		w := p.workers[0]
		rerr := p.recordLaunch(&p.kern[0], "pThomas", 0, p.bs, p.grid, w.kernK0)
		switch {
		case rerr == nil:
			p.finishRecording(1)
		case errors.Is(rerr, ErrFaulted) && !p.cfg.Retry.NoDegrade:
			p.degradeAll = true
		default:
			err = rerr
		}
	} else {
		err = p.replay()
	}
	if ft {
		p.mergeFaults()
		if err == nil && len(p.frep.Degraded) > 0 {
			err = p.degradedResolveInterleaved(xi, v)
		}
	}
	return err
}

// rebindK0 restores the k = 0 kernel buffers to the pipeline's own
// arena after an interleaved-native solve borrowed them.
func (p *Pipeline[T]) rebindK0() {
	cp, dp := p.ws.Ensure(p.m * p.n)
	p.bufs = pthomas.NewBufs(p.vbuf.Lower, p.vbuf.Diag, p.vbuf.Upper, p.vbuf.RHS, cp, dp, p.xi)
}

// solveInterleavedShim serves interleaved input to configurations that
// want contiguous batches: convert into the (lazily allocated)
// contiguous scratch, run the ordinary solve body, interleave the
// solution back out. It holds the busy flag the caller already took.
func (p *Pipeline[T]) solveInterleavedShim(ctx context.Context, xi []T, v *matrix.Interleaved[T]) error {
	p.ilShim.Add(1)
	if p.iscratchB == nil {
		p.iscratchB = matrix.NewBatch[T](p.m, p.n)
		p.iscratchX = make([]T, p.m*p.n)
	}
	v.ToBatchInto(p.iscratchB)
	b, dst := p.iscratchB, p.iscratchX

	if p.fallback {
		if err := p.solveFallback(dst, b); err != nil {
			return err
		}
		matrix.InterleaveVectorInto(xi, dst, p.m, p.n)
		return nil
	}

	ft := ctx != nil || p.dev.Faults != nil
	if ft {
		p.ctx = ctx
		p.frep.reset()
		p.degradeAll = false
		for _, w := range p.workers {
			w.err = nil
			w.wf = workerFaults{}
		}
		defer func() { p.ctx = nil }()
	}
	err := p.solveHybrid(dst, b)
	if ft {
		p.mergeFaults()
		if err == nil && len(p.frep.Degraded) > 0 {
			err = p.degradedResolve(dst, b)
		}
	}
	if err != nil {
		return err
	}
	matrix.InterleaveVectorInto(xi, dst, p.m, p.n)
	return nil
}

// degradedResolveInterleaved is degradedResolve for the native path:
// every degraded system is extracted from the interleaved planes,
// re-solved on the host through the pivoting GTSV path, and written
// back into xi with the interleaved stride. It allocates per degraded
// system — an acceptable cost on a path that only runs after the retry
// budget is spent.
func (p *Pipeline[T]) degradedResolveInterleaved(xi []T, v *matrix.Interleaved[T]) error {
	if p.gtsvWS == nil {
		p.gtsvWS = cpu.NewGTSVWorkspace[T](p.n)
	}
	x := make([]T, p.n)
	var errs []error
	for _, i := range p.frep.Degraded {
		sys := v.ExtractSystem(i)
		if err := cpu.SolveGTSVInto(sys, x, p.gtsvWS); err != nil {
			clear(x)
			errs = append(errs, fmt.Errorf("%w: degraded re-solve of system %d: %v", ErrFaulted, i, err))
		}
		for j := 0; j < p.n; j++ {
			xi[j*p.m+i] = x[j]
		}
	}
	return errors.Join(errs...)
}
