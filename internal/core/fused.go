package core

import (
	"gputrid/internal/gpusim"
	"gputrid/internal/matrix"
	"gputrid/internal/num"
	"gputrid/internal/pthomas"
	"gputrid/internal/tiledpcr"
)

// solveFused is the §III.C kernel-fusion path: one kernel per launch
// runs the tiled-PCR window and, as each sub-tile of fully reduced rows
// appears in the register tile, immediately applies the p-Thomas
// forward recurrence. Only the forward results c' and d' are written to
// global memory; the reduced coefficients a, b never leave the chip. A
// second lightweight kernel then performs back-substitution.
//
// The fused kernel inherits tiled PCR's shared-memory footprint for its
// whole lifetime, so its occupancy is the window's — the tradeoff the
// paper warns about for large parallel workloads.
func solveFused[T num.Real](dev *gpusim.Device, cfg Config, b *matrix.Batch[T], k int, rep *Report) ([]T, *Report, error) {
	m, n := b.M, b.N
	c := cfg.c()
	p := 1 << k

	cp := make([]T, m*n)
	dp := make([]T, m*n)
	x := make([]T, m*n)
	in := tiledpcr.NewArrays(b.Lower, b.Diag, b.Upper, b.RHS)
	gcp := gpusim.NewGlobal(cp)
	gdp := gpusim.NewGlobal(dp)
	gx := gpusim.NewGlobal(x)

	st1, err := dev.Launch("tiledPCR+pThomasFwd", gpusim.LaunchConfig{Grid: m, Block: p},
		func(blk *gpusim.Block) {
			sys := blk.ID
			w := tiledpcr.NewWindow(blk, k, c, n, sys*n, in)
			// Per-thread forward state, kept in registers across the
			// whole stream (the paper's register tiling).
			cpPrev := make([]T, p)
			dpPrev := make([]T, p)
			started := make([]bool, p)
			w.Run(0, n, func(outBase int) {
				lo, hi := w.OutRange(outBase, 0, n)
				blk.PhaseNoSync(func(t *gpusim.Thread) {
					r := t.ID
					for e := 0; e < c; e++ {
						pos := r + e*p
						if pos < lo || pos >= hi {
							continue
						}
						i := outBase + pos // row index within the system
						row := w.Out[pos]
						var cv, dv T
						if !started[r] {
							cv = row.C / row.B
							dv = row.D / row.B
							started[r] = true
						} else {
							den := row.B - cpPrev[r]*row.A
							inv := 1 / den
							cv = row.C * inv
							dv = (row.D - dpPrev[r]*row.A) * inv
						}
						cpPrev[r], dpPrev[r] = cv, dv
						gi := sys*n + i
						gcp.Store(t, gi, cv)
						gdp.Store(t, gi, dv)
						t.ThomasSteps(1)
					}
				})
			})
		})
	if err != nil {
		return nil, nil, err
	}
	rep.Kernels = append(rep.Kernels, st1)
	rep.Stats.Add(st1)

	// Back-substitution kernel: thread r of block sys walks subsystem r
	// backwards through the stored c', d'.
	st2, err := dev.Launch("pThomasBwd", gpusim.LaunchConfig{Grid: m, Block: p},
		func(blk *gpusim.Block) {
			base := blk.ID * n
			blk.PhaseNoSync(func(t *gpusim.Thread) {
				r := t.ID
				if r >= n {
					return
				}
				L := (n - r + p - 1) / p
				idx := base + r + (L-1)*p
				xNext := gdp.Load(t, idx)
				gx.Store(t, idx, xNext)
				for l := L - 2; l >= 0; l-- {
					idx = base + r + l*p
					xNext = gdp.Load(t, idx) - gcp.Load(t, idx)*xNext
					gx.Store(t, idx, xNext)
					t.ThomasSteps(1)
				}
			})
		})
	if err != nil {
		return nil, nil, err
	}
	rep.Kernels = append(rep.Kernels, st2)
	rep.Stats.Add(st2)
	return x, rep, nil
}

// SolveReference solves the batch with the pure-Go streaming pipeline +
// reference p-Thomas — the executable specification of the hybrid, used
// to validate the kernels and as a host-side fallback.
func SolveReference[T num.Real](b *matrix.Batch[T], k int) []T {
	m, n := b.M, b.N
	if k < 0 {
		k = 0
	}
	for k > 0 && 1<<k > n {
		k--
	}
	ra := make([]T, m*n)
	rb := make([]T, m*n)
	rc := make([]T, m*n)
	rd := make([]T, m*n)
	for i := 0; i < m; i++ {
		r := tiledpcr.StreamReduce(b.System(i), k)
		copy(ra[i*n:], r.Lower)
		copy(rb[i*n:], r.Diag)
		copy(rc[i*n:], r.Upper)
		copy(rd[i*n:], r.RHS)
	}
	return pthomas.SolveStridedRef(ra, rb, rc, rd, m, n, k)
}
