package core

import (
	"testing"
	"testing/quick"

	"gputrid/internal/matrix"
	"gputrid/internal/num"
	"gputrid/internal/workload"
)

func TestFactorHybridMatchesReferenceExactly(t *testing.T) {
	for _, tc := range []struct{ m, n, k int }{
		{1, 64, 3}, {4, 100, 2}, {2, 257, 4}, {3, 512, 6}, {2, 50, 0},
	} {
		b := workload.Batch[float64](workload.DiagDominant, tc.m, tc.n, uint64(tc.m*tc.n+tc.k))
		f, err := FactorHybrid(b, tc.k)
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		x := make([]float64, tc.m*tc.n)
		if err := f.Solve(b.RHS, x); err != nil {
			t.Fatal(err)
		}
		want := SolveReference(b, tc.k)
		if d := matrix.MaxRelDiff(x, want); d > 1e-13 {
			t.Errorf("%+v: factorized solve differs from reference by %g", tc, d)
		}
	}
}

func TestFactorHybridRepeatedRHS(t *testing.T) {
	m, n, k := 4, 300, 5
	b := workload.Batch[float64](workload.Heat, m, n, 7)
	f, err := FactorHybrid(b, k)
	if err != nil {
		t.Fatal(err)
	}
	rng := num.NewRNG(3)
	x := make([]float64, m*n)
	for step := 0; step < 4; step++ {
		for i := range b.RHS {
			b.RHS[i] = rng.Range(-2, 2)
		}
		if err := f.Solve(b.RHS, x); err != nil {
			t.Fatal(err)
		}
		if r := matrix.MaxResidual(b, x); r > matrix.ResidualTolerance[float64](n) {
			t.Fatalf("step %d: residual %g", step, r)
		}
	}
}

func TestFactorHybridAutoK(t *testing.T) {
	b := workload.Batch[float64](workload.DiagDominant, 8, 1024, 9)
	f, err := FactorHybrid(b, KAuto)
	if err != nil {
		t.Fatal(err)
	}
	if f.K() != 8 { // Table III: M < 16 -> 8
		t.Errorf("auto k = %d, want 8", f.K())
	}
	x := make([]float64, 8*1024)
	if err := f.Solve(b.RHS, x); err != nil {
		t.Fatal(err)
	}
	if r := matrix.MaxResidual(b, x); r > matrix.ResidualTolerance[float64](1024) {
		t.Errorf("residual %g", r)
	}
}

func TestFactorHybridInPlaceAndErrors(t *testing.T) {
	b := workload.Batch[float64](workload.DiagDominant, 2, 64, 5)
	f, err := FactorHybrid(b, 3)
	if err != nil {
		t.Fatal(err)
	}
	rhs := append([]float64(nil), b.RHS...)
	if err := f.Solve(rhs, rhs); err != nil {
		t.Fatal(err)
	}
	if r := matrix.MaxResidual(b, rhs); r > matrix.ResidualTolerance[float64](64) {
		t.Errorf("in-place residual %g", r)
	}
	if err := f.Solve(make([]float64, 3), rhs); err == nil {
		t.Error("short rhs accepted")
	}
	sing := matrix.NewBatch[float64](1, 8)
	if _, err := FactorHybrid(sing, 2); err == nil {
		t.Error("singular factorization accepted")
	}
}

func TestFactorHybridProperty(t *testing.T) {
	f := func(seed uint32, mRaw, nRaw, kRaw uint8) bool {
		m := int(mRaw)%6 + 1
		n := int(nRaw)%200 + 1
		k := int(kRaw) % 7
		b := workload.Batch[float64](workload.DiagDominant, m, n, uint64(seed))
		fac, err := FactorHybrid(b, k)
		if err != nil {
			return false
		}
		x := make([]float64, m*n)
		if err := fac.Solve(b.RHS, x); err != nil {
			return false
		}
		return matrix.MaxRelDiff(x, SolveReference(b, fac.K())) <= 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
