package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"testing"

	"gputrid/internal/gpusim"
	"gputrid/internal/matrix"
	"gputrid/internal/workload"
)

// grayReference solves the batch on a clean single-purpose topology and
// returns the fault-free distributed solution.
func grayReference(t *testing.T, m, n, devs, slabs int, b *matrix.Batch[float64]) []float64 {
	t.Helper()
	topo := distTopo(t, devs, gpusim.NVLinkMesh())
	s, err := NewDistSolver[float64](DistConfig{Topology: topo, Slabs: slabs}, m, n)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ref := make([]float64, m*n)
	if _, err := s.SolveInto(context.Background(), ref, b); err != nil {
		t.Fatal(err)
	}
	return ref
}

func requireBitwise(t *testing.T, got, want []float64, label string) {
	t.Helper()
	for i := range got {
		if got[i] != want[i] && !(math.IsNaN(got[i]) && math.IsNaN(want[i])) {
			t.Fatalf("%s: element %d differs bitwise: %x vs %x",
				label, i, math.Float64bits(got[i]), math.Float64bits(want[i]))
		}
	}
}

// TestDistributedLinkCorruptionRecovered runs a solve over a link that
// silently corrupts a third of one device's transfers and requires the
// full gray-failure contract: every corruption is caught by the sum
// checks (the report counts them), nothing reaches the caller — the
// result is bitwise identical to the fault-free run — and no device is
// declared dead (the device plane is innocent).
func TestDistributedLinkCorruptionRecovered(t *testing.T) {
	const m, n, devs, slabs = 3, 257, 4, 4
	const victim = 2
	b := workload.Batch[float64](workload.DiagDominant, m, n, 42)
	ref := grayReference(t, m, n, devs, slabs, b)

	topo := distTopo(t, devs, gpusim.NVLinkMesh())
	topo.Links = &gpusim.LinkInjector{
		Seed:    7,
		Rate:    0.35,
		Kinds:   []gpusim.LinkFaultKind{gpusim.LinkCorrupt},
		Devices: []int{victim},
	}
	s, err := NewDistSolver[float64](DistConfig{Topology: topo, Slabs: slabs}, m, n)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	dst := make([]float64, m*n)
	rep, err := s.SolveInto(context.Background(), dst, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Degraded) == 0 {
		requireBitwise(t, dst, ref, "corrupted-then-recovered solve")
	}
	if rep.Comm.CorruptTransfers == 0 {
		t.Fatal("injector corrupted nothing at rate 0.35 — test is vacuous")
	}
	if rep.IntegrityRetries == 0 {
		t.Fatal("corrupt transfers charged but no integrity retries recorded")
	}
	if len(rep.Deaths) != 0 {
		t.Fatalf("link corruption misclassified as device death: %v", rep.Deaths)
	}
	// The retries must be attributed to the flaky device's links.
	for _, o := range rep.PerDevice {
		if o.Device != victim && o.IntegrityRetries != 0 {
			t.Errorf("device %d charged %d integrity retries; only %d has a flaky link",
				o.Device, o.IntegrityRetries, victim)
		}
	}
	// Accuracy holds regardless of degradation.
	if e := maxRelErr(dst, gtsvReference(t, b)); e > 1e-9 {
		t.Fatalf("recovered solve lost accuracy: max rel err %.3e", e)
	}
}

// TestDistributedLinkIntegrityDegrade pins the last rung of the
// escalation ladder: a link that corrupts every transfer to one device
// exhausts re-exchange and re-solve, and the slabs fall back to the
// host path — degraded and reported, never wrong, and never treated as
// a device death.
func TestDistributedLinkIntegrityDegrade(t *testing.T) {
	const m, n, devs, slabs = 2, 131, 2, 2
	const victim = 1
	b := workload.Batch[float64](workload.DiagDominant, m, n, 9)

	topo := distTopo(t, devs, gpusim.NVLinkMesh())
	topo.Links = &gpusim.LinkInjector{
		Schedule: []gpusim.ScheduledLinkFault{{
			Op: -1, From: gpusim.MatchAny, To: victim,
			Index: -1, Kind: gpusim.LinkCorrupt, Repeat: 1 << 30,
		}, {
			Op: -1, From: victim, To: gpusim.MatchAny,
			Index: -1, Kind: gpusim.LinkCorrupt, Repeat: 1 << 30,
		}},
	}
	s, err := NewDistSolver[float64](DistConfig{Topology: topo, Slabs: slabs}, m, n)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	dst := make([]float64, m*n)
	rep, err := s.SolveInto(context.Background(), dst, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Degraded) == 0 {
		t.Fatalf("permanently corrupt link did not degrade any slab: %+v", rep)
	}
	if len(rep.Deaths) != 0 {
		t.Fatalf("link corruption killed a device: %v", rep.Deaths)
	}
	for _, v := range dst {
		if math.IsNaN(v) {
			t.Fatal("poisoned payload escaped to the caller")
		}
	}
	if e := maxRelErr(dst, gtsvReference(t, b)); e > 1e-9 {
		t.Fatalf("degraded solve lost accuracy: max rel err %.3e", e)
	}

	// Under NoDegrade the same link fails the solve loudly instead.
	s2, err := NewDistSolver[float64](DistConfig{
		Topology: topo, Slabs: slabs,
		Retry: RetryPolicy{NoDegrade: true},
	}, m, n)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, err := s2.SolveInto(context.Background(), dst, b); !errors.Is(err, ErrFaulted) {
		t.Fatalf("NoDegrade integrity exhaustion returned %v, want ErrFaulted", err)
	}
}

// TestDistributedHedging puts a silent straggler (SlowFactor, no
// health event, no launch error) in the topology and requires hedging
// to notice it: outlier slabs are speculatively re-run on a survivor,
// wins are adopted, the straggler's observation records the hedges,
// and the result stays bitwise identical to the fault-free run.
func TestDistributedHedging(t *testing.T) {
	const m, n, devs, slabs = 2, 257, 4, 4
	const straggler = 1
	b := workload.Batch[float64](workload.DiagDominant, m, n, 13)
	ref := grayReference(t, m, n, devs, slabs, b)

	solve := func(hedge HedgePolicy) (*DistReport, []float64) {
		topo := distTopo(t, devs, gpusim.NVLinkMesh())
		topo.Device(straggler).SlowFactor = 20
		s, err := NewDistSolver[float64](DistConfig{Topology: topo, Slabs: slabs, Hedge: hedge}, m, n)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		dst := make([]float64, m*n)
		rep, err := s.SolveInto(context.Background(), dst, b)
		if err != nil {
			t.Fatal(err)
		}
		return rep, dst
	}

	rep, dst := solve(HedgePolicy{})
	requireBitwise(t, dst, ref, "hedged solve")
	if rep.Hedges == 0 || rep.HedgeWins == 0 {
		t.Fatalf("20x straggler triggered no hedge wins: %+v", rep)
	}
	hedged := 0
	for _, o := range rep.PerDevice {
		if o.Device == straggler {
			hedged = o.Hedged
		}
	}
	if hedged == 0 {
		t.Fatalf("straggler observation records no hedged-away slabs: %+v", rep.PerDevice)
	}
	off, dstOff := solve(HedgePolicy{Disable: true})
	requireBitwise(t, dstOff, ref, "hedging-disabled solve")
	if off.Hedges != 0 {
		t.Fatalf("Disable did not disable hedging: %+v", off)
	}
	if rep.ModeledPipelined >= off.ModeledPipelined {
		t.Fatalf("hedging did not improve the modeled makespan: %v (hedged) vs %v (unhedged)",
			rep.ModeledPipelined, off.ModeledPipelined)
	}
}

// TestHedgeCancellationSettles is the goroutine-settle test for hedged
// execution: the losing speculative slab must release its device lease
// and exit — both when it simply loses (winner already verified) and
// when the solve's context is cancelled mid-hedge.
func TestHedgeCancellationSettles(t *testing.T) {
	const m, n, devs, slabs = 2, 257, 4, 4
	const straggler = 0
	b := workload.Batch[float64](workload.DiagDominant, m, n, 17)
	base := runtime.NumGoroutine()

	build := func() *DistSolver[float64] {
		topo := distTopo(t, devs, gpusim.NVLinkMesh())
		topo.Device(straggler).SlowFactor = 20
		s, err := NewDistSolver[float64](DistConfig{Topology: topo, Slabs: slabs}, m, n)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	leasesDrained := func(s *DistSolver[float64]) {
		t.Helper()
		for d := range s.leases {
			if got := s.leases[d].Load(); got != 0 {
				t.Fatalf("device %d lease not released: %d", d, got)
			}
		}
	}

	// Case 1: the winner is already verified when the hedge completes;
	// the speculative run loses, releases its lease, and exits.
	s := build()
	entered := make(chan struct{}, 8)
	release := make(chan struct{})
	s.testHookHedgeStart = func() {
		entered <- struct{}{}
		<-release
	}
	done := make(chan error, 1)
	dst := make([]float64, m*n)
	go func() {
		_, err := s.SolveInto(context.Background(), dst, b)
		done <- err
	}()
	<-entered // a speculative goroutine is live and holds a lease
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	leasesDrained(s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Case 2: the context dies mid-hedge; the speculative run is
	// cancelled, joined, and its lease released before SolveOn returns.
	s2 := build()
	entered2 := make(chan struct{}, 8)
	release2 := make(chan struct{})
	s2.testHookHedgeStart = func() {
		entered2 <- struct{}{}
		<-release2
	}
	ctx, cancel := context.WithCancel(context.Background())
	done2 := make(chan error, 1)
	go func() {
		_, err := s2.SolveInto(ctx, dst, b)
		done2 <- err
	}()
	<-entered2
	cancel()        // solve is now cancelled while the hedge is in flight
	close(release2) // let the speculative goroutine observe it
	err := <-done2
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("cancelled mid-hedge returned %v, want ErrCancelled", err)
	}
	leasesDrained(s2)
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	settleGoroutines(t, base)
}

// TestDistCommScopeConcurrentSolves is the satellite regression for
// per-solve comm accounting: two solvers sharing one topology solve in
// parallel, and each report must charge exactly its own traffic — the
// old snapshot-Sub idiom cross-charged whichever bytes the other solve
// moved in between. Byte counts are deterministic per solver, so exact
// equality against a solo run is required.
func TestDistCommScopeConcurrentSolves(t *testing.T) {
	const devs = 4
	shapes := []struct{ m, n, slabs int }{
		{2, 257, 4},
		{3, 193, 3},
	}
	solo := make([]gpusim.CommStats, len(shapes))
	for i, sh := range shapes {
		topo := distTopo(t, devs, gpusim.NVLinkMesh())
		s, err := NewDistSolver[float64](DistConfig{Topology: topo, Slabs: sh.slabs}, sh.m, sh.n)
		if err != nil {
			t.Fatal(err)
		}
		b := workload.Batch[float64](workload.DiagDominant, sh.m, sh.n, uint64(i)+1)
		dst := make([]float64, sh.m*sh.n)
		rep, err := s.SolveInto(context.Background(), dst, b)
		if err != nil {
			t.Fatal(err)
		}
		solo[i] = rep.Comm
		s.Close()
	}

	// Same solves, now racing on one shared topology, many rounds.
	shared := distTopo(t, devs, gpusim.NVLinkMesh())
	solvers := make([]*DistSolver[float64], len(shapes))
	for i, sh := range shapes {
		s, err := NewDistSolver[float64](DistConfig{Topology: shared, Slabs: sh.slabs}, sh.m, sh.n)
		if err != nil {
			t.Fatal(err)
		}
		solvers[i] = s
		defer s.Close()
	}
	const rounds = 5
	var wg sync.WaitGroup
	errs := make([]error, len(shapes))
	for i, sh := range shapes {
		wg.Add(1)
		go func(i int, m, n int) {
			defer wg.Done()
			b := workload.Batch[float64](workload.DiagDominant, m, n, uint64(i)+1)
			dst := make([]float64, m*n)
			for r := 0; r < rounds; r++ {
				rep, err := solvers[i].SolveInto(context.Background(), dst, b)
				if err != nil {
					errs[i] = err
					return
				}
				if rep.Comm.TotalBytes() != solo[i].TotalBytes() ||
					rep.Comm.Transfers != solo[i].Transfers ||
					rep.Comm.HostBytes != solo[i].HostBytes ||
					rep.Comm.PeerBytes != solo[i].PeerBytes {
					errs[i] = fmt.Errorf("shape %d round %d: comm cross-charged: got %+v want %+v",
						i, r, rep.Comm, solo[i])
					return
				}
			}
		}(i, sh.m, sh.n)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	// The shared topology's global stats must equal the sum of all
	// per-solve scopes (byte/counter fields are exact).
	var want gpusim.CommStats
	for i := range shapes {
		want.Transfers += solo[i].Transfers * rounds
		want.HostBytes += solo[i].HostBytes * rounds
		want.PeerBytes += solo[i].PeerBytes * rounds
	}
	got := shared.Comm()
	if got.Transfers != want.Transfers || got.HostBytes != want.HostBytes || got.PeerBytes != want.PeerBytes {
		t.Fatalf("global stats lost updates: got %+v want %+v", got, want)
	}
}

// FuzzLinkFaultSchedule fuzzes the gray-failure plane end to end: any
// (seed, rate, kinds, victim) configuration must (a) reproduce exactly
// the same fault sites and charges on a second identically-seeded run,
// and (b) never let a corrupted transfer escape — the solve either
// matches the fault-free run bitwise or reports the slabs it degraded.
func FuzzLinkFaultSchedule(f *testing.F) {
	f.Add(uint64(1), 0.2, uint8(0), uint8(0))
	f.Add(uint64(42), 0.9, uint8(1), uint8(3))
	f.Add(uint64(7), 0.05, uint8(2), uint8(2))
	f.Add(uint64(999), 0.5, uint8(3), uint8(1))
	f.Fuzz(func(t *testing.T, seed uint64, rate float64, kindSel, victim uint8) {
		const m, n, devs, slabs = 2, 131, 4, 4
		if rate < 0 || rate > 1 || rate != rate {
			t.Skip()
		}
		var kinds []gpusim.LinkFaultKind
		switch kindSel % 4 {
		case 1:
			kinds = []gpusim.LinkFaultKind{gpusim.LinkCorrupt}
		case 2:
			kinds = []gpusim.LinkFaultKind{gpusim.LinkDrop, gpusim.LinkDelay}
		case 3:
			kinds = []gpusim.LinkFaultKind{gpusim.LinkCorrupt, gpusim.LinkDrop, gpusim.LinkDelay}
		}
		b := workload.Batch[float64](workload.DiagDominant, m, n, seed%1000+1)

		run := func() (gpusim.CommStats, *DistReport, []float64) {
			topo, err := gpusim.UniformTopology(devs, gpusim.NVLinkMesh(), gpusim.GTX480())
			if err != nil {
				t.Fatal(err)
			}
			topo.Links = &gpusim.LinkInjector{
				Seed: seed, Rate: rate, Kinds: kinds,
				Devices: []int{int(victim) % devs},
			}
			s, err := NewDistSolver[float64](DistConfig{
				Topology: topo, Slabs: slabs,
				Hedge: HedgePolicy{Disable: true}, // keep modeled times comparable across runs
			}, m, n)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			dst := make([]float64, m*n)
			rep, err := s.SolveInto(context.Background(), dst, b)
			if err != nil {
				t.Fatal(err)
			}
			return topo.Comm(), rep, dst
		}

		c1, r1, x1 := run()
		c2, r2, x2 := run()
		// Counter fields are exact across identically-seeded runs; the
		// seconds fields are concurrent float sums, whose accumulation
		// order varies with scheduling, so they match only to rounding.
		i1 := [6]int64{c1.Transfers, c1.HostBytes, c1.PeerBytes, c1.LinkFaults, c1.DroppedTransfers, c1.CorruptTransfers}
		i2 := [6]int64{c2.Transfers, c2.HostBytes, c2.PeerBytes, c2.LinkFaults, c2.DroppedTransfers, c2.CorruptTransfers}
		if i1 != i2 {
			t.Fatalf("same seed, different comm stats:\n%+v\n%+v", c1, c2)
		}
		if math.Abs(c1.TotalSeconds()-c2.TotalSeconds()) > 1e-9 ||
			math.Abs(c1.FaultSeconds-c2.FaultSeconds) > 1e-9 {
			t.Fatalf("same seed, diverging charged seconds:\n%+v\n%+v", c1, c2)
		}
		if r1.IntegrityRetries != r2.IntegrityRetries || r1.SlabResolves != r2.SlabResolves ||
			len(r1.Degraded) != len(r2.Degraded) {
			t.Fatalf("same seed, different recovery: %+v vs %+v", r1, r2)
		}
		for i := range x1 {
			if x1[i] != x2[i] {
				t.Fatalf("same seed, element %d differs bitwise", i)
			}
		}

		// Against fault-free: bitwise when nothing degraded; accurate
		// regardless; never NaN.
		for i, v := range x1 {
			if math.IsNaN(v) {
				t.Fatalf("corruption escaped: NaN at %d", i)
			}
		}
		if len(r1.Degraded) == 0 {
			topo, err := gpusim.UniformTopology(devs, gpusim.NVLinkMesh(), gpusim.GTX480())
			if err != nil {
				t.Fatal(err)
			}
			s, err := NewDistSolver[float64](DistConfig{
				Topology: topo, Slabs: slabs, Hedge: HedgePolicy{Disable: true},
			}, m, n)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			ref := make([]float64, m*n)
			if _, err := s.SolveInto(context.Background(), ref, b); err != nil {
				t.Fatal(err)
			}
			for i := range x1 {
				if x1[i] != ref[i] {
					t.Fatalf("recovered solve differs bitwise from fault-free at %d", i)
				}
			}
		}
	})
}
