// Package spline implements batched cubic-spline interpolation on
// uniform knots — the paper's cubic-spline workload (ref. [8], where
// ensemble empirical mode decomposition fits thousands of splines per
// signal). Fitting M curves means solving M tridiagonal systems for
// the knot second derivatives, which this package does as one batch on
// the hybrid solver (or any backend).
//
// Natural (zero second derivative) and clamped (prescribed first
// derivative) end conditions are supported, along with evaluation of
// the interpolant, its first derivative, and its definite integral.
package spline

import (
	"fmt"

	"gputrid/internal/core"
	"gputrid/internal/matrix"
	"gputrid/internal/num"
)

// SolveBatch is the tridiagonal backend (gputrid.SolveBatch contract).
type SolveBatch[T num.Real] func(*matrix.Batch[T]) ([]T, error)

func defaultBackend[T num.Real]() SolveBatch[T] {
	return func(b *matrix.Batch[T]) ([]T, error) {
		x, _, err := core.Solve(core.Config{K: core.KAuto}, b)
		return x, err
	}
}

// BC selects the end condition.
type BC int

const (
	// Natural sets the second derivative to zero at both ends.
	Natural BC = iota
	// Clamped prescribes the first derivative at both ends.
	Clamped
)

// Batch holds M fitted splines over the knots x_j = X0 + j·H,
// j = 0..Knots-1.
type Batch[T num.Real] struct {
	M     int
	Knots int
	X0, H float64
	y     []T // M × Knots values
	m2    []T // M × Knots second derivatives at the knots
}

// FitOptions configures a fit.
type FitOptions[T num.Real] struct {
	BC      BC
	DerivLo []T // Clamped: f'(x_0) per curve (len M)
	DerivHi []T // Clamped: f'(x_end) per curve (len M)
	Backend SolveBatch[T]
}

// Fit constructs M cubic splines through y (M×knots values, curve i at
// [i*knots, (i+1)*knots)) over uniform knots starting at x0 with
// spacing h.
func Fit[T num.Real](m, knots int, x0, h float64, y []T, opts FitOptions[T]) (*Batch[T], error) {
	if m <= 0 || knots < 2 {
		return nil, fmt.Errorf("spline: need m >= 1 and knots >= 2, got %d, %d", m, knots)
	}
	if len(y) != m*knots {
		return nil, fmt.Errorf("spline: y length %d != %d", len(y), m*knots)
	}
	if h <= 0 {
		return nil, fmt.Errorf("spline: non-positive spacing %g", h)
	}
	if opts.BC == Clamped && (len(opts.DerivLo) != m || len(opts.DerivHi) != m) {
		return nil, fmt.Errorf("spline: clamped fit needs DerivLo/DerivHi of length %d", m)
	}
	backend := opts.Backend
	if backend == nil {
		backend = defaultBackend[T]()
	}

	s := &Batch[T]{M: m, Knots: knots, X0: x0, H: h,
		y:  append([]T(nil), y...),
		m2: make([]T, m*knots),
	}
	if knots == 2 {
		// A straight segment; second derivatives are zero (Natural) or
		// determined but still linear — treat as zero curvature.
		return s, nil
	}

	hh := T(h)
	// Unknowns: the second derivatives. Natural solves the interior
	// knots only; Clamped solves all knots with modified end rows.
	var b *matrix.Batch[T]
	if opts.BC == Natural {
		n := knots - 2
		b = matrix.NewBatch[T](m, n)
		for i := 0; i < m; i++ {
			base := i * n
			yb := i * knots
			for j := 0; j < n; j++ {
				if j > 0 {
					b.Lower[base+j] = 1
				}
				b.Diag[base+j] = 4
				if j < n-1 {
					b.Upper[base+j] = 1
				}
				b.RHS[base+j] = 6 * (y[yb+j] - 2*y[yb+j+1] + y[yb+j+2]) / (hh * hh)
			}
		}
		x, err := backend(b)
		if err != nil {
			return nil, err
		}
		for i := 0; i < m; i++ {
			copy(s.m2[i*knots+1:i*knots+knots-1], x[i*n:(i+1)*n])
		}
		return s, nil
	}

	// Clamped: rows for every knot.
	n := knots
	b = matrix.NewBatch[T](m, n)
	for i := 0; i < m; i++ {
		base := i * n
		yb := i * knots
		// Row 0: 2·M0 + M1 = 6/h·((y1−y0)/h − f'(x0))
		b.Diag[base] = 2
		b.Upper[base] = 1
		b.RHS[base] = 6 / hh * ((y[yb+1]-y[yb])/hh - opts.DerivLo[i])
		for j := 1; j < n-1; j++ {
			b.Lower[base+j] = 1
			b.Diag[base+j] = 4
			b.Upper[base+j] = 1
			b.RHS[base+j] = 6 * (y[yb+j-1] - 2*y[yb+j] + y[yb+j+1]) / (hh * hh)
		}
		// Last row: M_{n-2} + 2·M_{n-1} = 6/h·(f'(xe) − (y_e−y_{e-1})/h)
		b.Lower[base+n-1] = 1
		b.Diag[base+n-1] = 2
		b.RHS[base+n-1] = 6 / hh * (opts.DerivHi[i] - (y[yb+n-1]-y[yb+n-2])/hh)
	}
	x, err := backend(b)
	if err != nil {
		return nil, err
	}
	copy(s.m2, x)
	return s, nil
}

// segment locates the knot interval containing x and returns the
// segment index and local offset t = x − x_j.
func (s *Batch[T]) segment(x float64) (int, float64) {
	j := int((x - s.X0) / s.H)
	if j < 0 {
		j = 0
	}
	if j > s.Knots-2 {
		j = s.Knots - 2
	}
	return j, x - (s.X0 + float64(j)*s.H)
}

// Eval evaluates curve i at x (clamped extrapolation outside the knot
// range: the end segments extend).
func (s *Batch[T]) Eval(i int, x float64) T {
	j, t := s.segment(x)
	yb := i * s.Knots
	h := T(s.H)
	tt := T(t)
	a := s.y[yb+j]
	b := (s.y[yb+j+1]-s.y[yb+j])/h - h*(2*s.m2[yb+j]+s.m2[yb+j+1])/6
	c := s.m2[yb+j] / 2
	d := (s.m2[yb+j+1] - s.m2[yb+j]) / (6 * h)
	return a + tt*(b+tt*(c+tt*d))
}

// Deriv evaluates the first derivative of curve i at x.
func (s *Batch[T]) Deriv(i int, x float64) T {
	j, t := s.segment(x)
	yb := i * s.Knots
	h := T(s.H)
	tt := T(t)
	b := (s.y[yb+j+1]-s.y[yb+j])/h - h*(2*s.m2[yb+j]+s.m2[yb+j+1])/6
	c := s.m2[yb+j] / 2
	d := (s.m2[yb+j+1] - s.m2[yb+j]) / (6 * h)
	return b + tt*(2*c+3*tt*d)
}

// SecondDeriv returns the fitted second derivative at knot j of curve i.
func (s *Batch[T]) SecondDeriv(i, j int) T { return s.m2[i*s.Knots+j] }

// Integral integrates curve i over the full knot range [X0, X0+(K-1)H]
// by summing the exact segment integrals.
func (s *Batch[T]) Integral(i int) T {
	yb := i * s.Knots
	h := T(s.H)
	var sum T
	for j := 0; j < s.Knots-1; j++ {
		// ∫ segment = h/2·(y_j+y_{j+1}) − h³/24·(M_j+M_{j+1})
		sum += h/2*(s.y[yb+j]+s.y[yb+j+1]) - h*h*h/24*(s.m2[yb+j]+s.m2[yb+j+1])
	}
	return sum
}
