package spline

import (
	"math"
	"testing"

	"gputrid/internal/cpu"
)

func cpuBackend() SolveBatch[float64] {
	return cpu.SolveBatchSeq[float64]
}

func sample(m, knots int, h float64, f func(curve int, x float64) float64) []float64 {
	y := make([]float64, m*knots)
	for i := 0; i < m; i++ {
		for j := 0; j < knots; j++ {
			y[i*knots+j] = f(i, float64(j)*h)
		}
	}
	return y
}

func TestNaturalFitInterpolatesKnots(t *testing.T) {
	m, knots := 3, 33
	h := 1.0 / float64(knots-1)
	y := sample(m, knots, h, func(i int, x float64) float64 {
		return math.Sin(2*math.Pi*x + float64(i))
	})
	s, err := Fit(m, knots, 0, h, y, FitOptions[float64]{Backend: cpuBackend()})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m; i++ {
		for j := 0; j < knots; j++ {
			x := float64(j) * h
			if d := math.Abs(s.Eval(i, x) - y[i*knots+j]); d > 1e-12 {
				t.Fatalf("curve %d knot %d: interpolation broken by %g", i, j, d)
			}
		}
	}
	// Natural ends: zero second derivative.
	if s.SecondDeriv(0, 0) != 0 || s.SecondDeriv(0, knots-1) != 0 {
		t.Error("natural end conditions violated")
	}
}

func TestNaturalConvergesAtMidpoints(t *testing.T) {
	// Quartic convergence: halving h reduces midpoint error ~16x.
	errAt := func(knots int) float64 {
		h := 1.0 / float64(knots-1)
		y := sample(1, knots, h, func(_ int, x float64) float64 {
			return math.Sin(2 * math.Pi * x)
		})
		s, err := Fit(1, knots, 0, h, y, FitOptions[float64]{Backend: cpuBackend()})
		if err != nil {
			t.Fatal(err)
		}
		var worst float64
		// Interior midpoints only: the natural BC carries an O(h²)
		// boundary layer near the ends.
		for j := knots / 4; j < 3*knots/4; j++ {
			x := (float64(j) + 0.5) * h
			if e := math.Abs(s.Eval(0, x) - math.Sin(2*math.Pi*x)); e > worst {
				worst = e
			}
		}
		return worst
	}
	e1 := errAt(65)
	e2 := errAt(129)
	if ratio := e1 / e2; ratio < 8 {
		t.Errorf("midpoint error ratio %g, want ~16 (quartic)", ratio)
	}
}

func TestClampedExactForCubic(t *testing.T) {
	// A clamped spline through samples of a cubic with exact end slopes
	// reproduces the cubic exactly (up to roundoff).
	f := func(x float64) float64 { return 2*x*x*x - 3*x*x + x - 5 }
	df := func(x float64) float64 { return 6*x*x - 6*x + 1 }
	knots := 9
	h := 1.0 / float64(knots-1)
	y := sample(1, knots, h, func(_ int, x float64) float64 { return f(x) })
	s, err := Fit(1, knots, 0, h, y, FitOptions[float64]{
		BC:      Clamped,
		DerivLo: []float64{df(0)},
		DerivHi: []float64{df(1)},
		Backend: cpuBackend(),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0.05, 0.3, 0.333, 0.5, 0.77, 0.95} {
		if d := math.Abs(s.Eval(0, x) - f(x)); d > 1e-10 {
			t.Errorf("x=%g: clamped spline off a cubic by %g", x, d)
		}
		if d := math.Abs(s.Deriv(0, x) - df(x)); d > 1e-9 {
			t.Errorf("x=%g: derivative off by %g", x, d)
		}
	}
}

func TestDerivMatchesFiniteDifference(t *testing.T) {
	knots := 65
	h := 1.0 / float64(knots-1)
	y := sample(1, knots, h, func(_ int, x float64) float64 { return math.Exp(-x) * math.Sin(5*x) })
	s, err := Fit(1, knots, 0, h, y, FitOptions[float64]{Backend: cpuBackend()})
	if err != nil {
		t.Fatal(err)
	}
	const eps = 1e-6
	for _, x := range []float64{0.2, 0.41, 0.68} {
		fd := (s.Eval(0, x+eps) - s.Eval(0, x-eps)) / (2 * eps)
		if d := math.Abs(s.Deriv(0, x) - fd); d > 1e-5 {
			t.Errorf("x=%g: Deriv %g vs FD %g", x, s.Deriv(0, x), fd)
		}
	}
}

func TestIntegral(t *testing.T) {
	knots := 129
	h := 1.0 / float64(knots-1)
	y := sample(1, knots, h, func(_ int, x float64) float64 { return math.Sin(math.Pi * x) })
	s, err := Fit(1, knots, 0, h, y, FitOptions[float64]{Backend: cpuBackend()})
	if err != nil {
		t.Fatal(err)
	}
	want := 2 / math.Pi // ∫ sin(πx) over [0,1]
	if d := math.Abs(float64(s.Integral(0)) - want); d > 1e-6 {
		t.Errorf("integral = %g, want %g (diff %g)", s.Integral(0), want, d)
	}
}

func TestDefaultBackendGPU(t *testing.T) {
	// Fit through the default (hybrid GPU) backend and cross-check the
	// second derivatives against the CPU backend exactly.
	m, knots := 40, 65
	h := 1.0 / float64(knots-1)
	y := sample(m, knots, h, func(i int, x float64) float64 {
		return math.Cos(float64(i+1) * x)
	})
	sg, err := Fit(m, knots, 0, h, y, FitOptions[float64]{})
	if err != nil {
		t.Fatal(err)
	}
	sc, err := Fit(m, knots, 0, h, y, FitOptions[float64]{Backend: cpuBackend()})
	if err != nil {
		t.Fatal(err)
	}
	var worst float64
	for i := 0; i < m; i++ {
		for j := 0; j < knots; j++ {
			if d := math.Abs(float64(sg.SecondDeriv(i, j) - sc.SecondDeriv(i, j))); d > worst {
				worst = d
			}
		}
	}
	if worst > 1e-10 {
		t.Errorf("GPU vs CPU spline fits differ by %g", worst)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(0, 5, 0, 0.1, nil, FitOptions[float64]{}); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := Fit(1, 5, 0, 0.1, make([]float64, 3), FitOptions[float64]{}); err == nil {
		t.Error("short y accepted")
	}
	if _, err := Fit(1, 5, 0, -1, make([]float64, 5), FitOptions[float64]{}); err == nil {
		t.Error("negative h accepted")
	}
	if _, err := Fit(1, 5, 0, 0.1, make([]float64, 5), FitOptions[float64]{BC: Clamped}); err == nil {
		t.Error("clamped without slopes accepted")
	}
}

func TestTwoKnotDegenerate(t *testing.T) {
	s, err := Fit(1, 2, 0, 1, []float64{1, 3}, FitOptions[float64]{Backend: cpuBackend()})
	if err != nil {
		t.Fatal(err)
	}
	if v := s.Eval(0, 0.5); math.Abs(float64(v)-2) > 1e-14 {
		t.Errorf("two-knot spline midpoint = %g, want 2 (linear)", v)
	}
}

func TestClampedFloat32(t *testing.T) {
	knots := 17
	h := float64(1) / float64(knots-1)
	y := make([]float32, knots)
	for j := range y {
		y[j] = float32(j) * float32(h) // linear
	}
	s, err := Fit(1, knots, 0, h, y, FitOptions[float32]{
		BC: Clamped, DerivLo: []float32{1}, DerivHi: []float32{1},
		Backend: cpu.SolveBatchSeq[float32],
	})
	if err != nil {
		t.Fatal(err)
	}
	if v := s.Eval(0, 0.31); math.Abs(float64(v)-0.31) > 1e-5 {
		t.Errorf("linear clamped spline at 0.31 = %g", v)
	}
}
