// Package pthomas implements the thread-level parallel Thomas algorithm
// of paper §III.B: every thread solves one complete tridiagonal system
// with the classic O(n) two-sweep recurrence, and coalescing comes
// entirely from the memory layout — systems are interleaved so that
// consecutive threads touch consecutive addresses on every step.
//
// Two kernels are provided:
//
//   - KernelInterleaved solves M independent systems stored in the
//     interleaved layout (row j of system i at j·M+i) with one thread
//     per system. This is the k = 0 path of the hybrid and the
//     standalone GPU p-Thomas baseline.
//
//   - KernelStrided solves the 2^k interleaved subsystems that k-step
//     PCR leaves inside each of M contiguously stored systems (row l of
//     subsystem r of system i at i·N + r + l·2^k), one thread block of
//     2^k threads per original system. This is the hybrid's back-end;
//     the access pattern is consecutive across the block's threads,
//     which is why the paper calls PCR's output a "perfect match".
//
// Every variant draws its c'/d' scratch from a Workspace, so callers
// that solve repeatedly (timestep loops, the reusable core.Pipeline)
// can keep one workspace and run the kernels with no per-solve
// allocations via the *Into forms; the plain forms allocate a
// transient workspace per call.
package pthomas

import (
	"fmt"

	"gputrid/internal/gpusim"
	"gputrid/internal/matrix"
	"gputrid/internal/num"
)

// Workspace holds the forward-sweep scratch (the modified coefficients
// c' and d' of Eqs. 2-3) shared by every solver variant in this
// package. Ensure grows it on demand and keeps capacity across calls,
// so one workspace serves solves of any size with allocations only
// when the requested size first exceeds what it holds.
type Workspace[T num.Real] struct {
	Cp, Dp []T
}

// NewWorkspace allocates a workspace with room for size elements.
func NewWorkspace[T num.Real](size int) *Workspace[T] {
	w := &Workspace[T]{}
	w.Ensure(size)
	return w
}

// Ensure returns cp/dp slices of exactly size elements, reallocating
// only when the workspace is too small.
func (w *Workspace[T]) Ensure(size int) (cp, dp []T) {
	if cap(w.Cp) < size {
		w.Cp = make([]T, size)
	}
	if cap(w.Dp) < size {
		w.Dp = make([]T, size)
	}
	return w.Cp[:size], w.Dp[:size]
}

// Bufs bundles the device-global arrays a p-Thomas thread touches: the
// four coefficient arrays, the c'/d' scratch, and the solution.
type Bufs[T num.Real] struct {
	A, B, C, D, Cp, Dp, X gpusim.Global[T]
}

// NewBufs wraps the slices as device-global arrays.
func NewBufs[T num.Real](a, b, c, d, cp, dp, x []T) Bufs[T] {
	return Bufs[T]{
		A: gpusim.NewGlobal(a), B: gpusim.NewGlobal(b),
		C: gpusim.NewGlobal(c), D: gpusim.NewGlobal(d),
		Cp: gpusim.NewGlobal(cp), Dp: gpusim.NewGlobal(dp),
		X: gpusim.NewGlobal(x),
	}
}

// KernelInterleaved solves the M interleaved systems of v on the
// device and returns the solutions in interleaved order (x[j*M+i] is
// row j of system i) together with the recorded statistics.
// blockSize threads per block; <= 0 selects 128.
//
// The Thomas recurrence does not pivot: a vanishing pivot produces
// Inf/NaN in the affected system's solution rather than an error, as on
// real hardware. Callers solving non-dominant systems should verify
// residuals.
func KernelInterleaved[T num.Real](dev *gpusim.Device, v *matrix.Interleaved[T], blockSize int) ([]T, *gpusim.Stats, error) {
	x := make([]T, v.M*v.N)
	st, err := KernelInterleavedInto(dev, v, blockSize, x, NewWorkspace[T](v.M*v.N))
	if err != nil {
		return nil, nil, err
	}
	return x, st, nil
}

// KernelInterleavedInto is KernelInterleaved over caller-owned storage:
// the interleaved solution goes to x (length M·N) and the forward
// scratch comes from ws.
func KernelInterleavedInto[T num.Real](dev *gpusim.Device, v *matrix.Interleaved[T], blockSize int, x []T, ws *Workspace[T]) (*gpusim.Stats, error) {
	m, n := v.M, v.N
	if blockSize <= 0 {
		blockSize = 128
	}
	if blockSize > dev.MaxThreadsPerBlock {
		blockSize = dev.MaxThreadsPerBlock
	}
	if len(x) != m*n {
		return nil, fmt.Errorf("pthomas: solution length %d does not match M*N = %d", len(x), m*n)
	}
	cp, dp := ws.Ensure(m * n)
	g := NewBufs(v.Lower, v.Diag, v.Upper, v.RHS, cp, dp, x)

	grid := num.CeilDiv(m, blockSize)
	return dev.Launch("pThomas", gpusim.LaunchConfig{Grid: grid, Block: blockSize},
		func(b *gpusim.Block) {
			b.PhaseNoSync(func(t *gpusim.Thread) {
				sys := b.ID*blockSize + t.ID
				if sys >= m {
					return
				}
				ThreadInterleaved(t, &g, sys, m, n)
			})
		})
}

// KernelStrided solves, for every system of the contiguous batch
// (a, b, c, d) of M systems × N rows, the 2^k interleaved subsystems
// produced by k-step PCR. One thread block of 2^k threads handles one
// system; thread r solves subsystem r (rows r, r+2^k, r+2·2^k, ...).
// The returned solution vector is in natural row order (length M·N).
func KernelStrided[T num.Real](dev *gpusim.Device, a, b, c, d []T, m, n, k int) ([]T, *gpusim.Stats, error) {
	x := make([]T, m*n)
	st, err := KernelStridedInto(dev, a, b, c, d, m, n, k, x, NewWorkspace[T](m*n))
	if err != nil {
		return nil, nil, err
	}
	return x, st, nil
}

// KernelStridedInto is KernelStrided over caller-owned storage: the
// natural-order solution goes to x (length M·N) and the forward
// scratch comes from ws.
func KernelStridedInto[T num.Real](dev *gpusim.Device, a, b, c, d []T, m, n, k int, x []T, ws *Workspace[T]) (*gpusim.Stats, error) {
	if k < 0 {
		return nil, fmt.Errorf("pthomas: negative k")
	}
	p := 1 << k
	if p > dev.MaxThreadsPerBlock {
		return nil, fmt.Errorf("pthomas: 2^k = %d exceeds max threads per block %d", p, dev.MaxThreadsPerBlock)
	}
	if len(a) != m*n || len(b) != m*n || len(c) != m*n || len(d) != m*n {
		return nil, fmt.Errorf("pthomas: array lengths do not match M*N = %d", m*n)
	}
	if len(x) != m*n {
		return nil, fmt.Errorf("pthomas: solution length %d does not match M*N = %d", len(x), m*n)
	}
	cp, dp := ws.Ensure(m * n)
	g := NewBufs(a, b, c, d, cp, dp, x)

	return dev.Launch("pThomasStrided", gpusim.LaunchConfig{Grid: m, Block: p},
		func(blk *gpusim.Block) {
			base := blk.ID * n
			blk.PhaseNoSync(func(t *gpusim.Thread) {
				r := t.ID
				if r >= n {
					return
				}
				ThreadStrided(t, &g, base, r, p, n)
			})
		})
}

// ThreadInterleaved runs Thomas for one system of an interleaved
// batch: row l lives at l*m + sys. It is the per-thread body of
// KernelInterleaved, exported so pipelines can embed it in their own
// pre-built kernel closures.
//
//tridlint:hotpath
func ThreadInterleaved[T num.Real](t *gpusim.Thread, g *Bufs[T], sys, m, n int) {
	// Local array handles and batched step accounting, as in
	// ThreadStrided.
	gA, gB, gC, gD, gCp, gDp, gX := g.A, g.B, g.C, g.D, g.Cp, g.Dp, g.X
	// Forward reduction (paper Eqs. 2-3).
	idx := sys
	bv := gB.Load(t, idx)
	cpPrev := gC.Load(t, idx) / bv
	dpPrev := gD.Load(t, idx) / bv
	gCp.Store(t, idx, cpPrev)
	gDp.Store(t, idx, dpPrev)
	for l := 1; l < n; l++ {
		idx = l*m + sys
		av := gA.Load(t, idx)
		den := gB.Load(t, idx) - cpPrev*av
		inv := 1 / den
		cpPrev = gC.Load(t, idx) * inv
		dpPrev = (gD.Load(t, idx) - dpPrev*av) * inv
		gCp.Store(t, idx, cpPrev)
		gDp.Store(t, idx, dpPrev)
	}
	t.ThomasSteps(n)
	// Backward substitution (paper Eq. 4).
	xNext := dpPrev
	gX.Store(t, (n-1)*m+sys, xNext)
	for l := n - 2; l >= 0; l-- {
		idx = l*m + sys
		xNext = gDp.Load(t, idx) - gCp.Load(t, idx)*xNext
		gX.Store(t, idx, xNext)
	}
	t.ThomasSteps(n - 1)
}

// ThreadStrided runs Thomas over rows base+r, base+r+p, ...
// base+r+(L-1)p. It is the per-thread body of KernelStrided, exported
// so pipelines can embed it in their own pre-built kernel closures.
//
//tridlint:hotpath
func ThreadStrided[T num.Real](t *gpusim.Thread, g *Bufs[T], base, r, p, n int) {
	L := (n - r + p - 1) / p
	if L <= 0 {
		return
	}
	// Local copies of the array handles: the stores through Cp/Dp/X
	// could alias any of the coefficient slices as far as the compiler
	// knows, so indexing g's fields directly would reload the headers
	// after every store. The Thomas-step accounting is batched per
	// sweep (L forward, L-1 backward) — identical recorded totals.
	gA, gB, gC, gD, gCp, gDp, gX := g.A, g.B, g.C, g.D, g.Cp, g.Dp, g.X
	idx := base + r
	bv := gB.Load(t, idx)
	cpPrev := gC.Load(t, idx) / bv
	dpPrev := gD.Load(t, idx) / bv
	gCp.Store(t, idx, cpPrev)
	gDp.Store(t, idx, dpPrev)
	for l := 1; l < L; l++ {
		idx = base + r + l*p
		av := gA.Load(t, idx)
		den := gB.Load(t, idx) - cpPrev*av
		inv := 1 / den
		cpPrev = gC.Load(t, idx) * inv
		dpPrev = (gD.Load(t, idx) - dpPrev*av) * inv
		gCp.Store(t, idx, cpPrev)
		gDp.Store(t, idx, dpPrev)
	}
	t.ThomasSteps(L)
	xNext := dpPrev
	gX.Store(t, base+r+(L-1)*p, xNext)
	for l := L - 2; l >= 0; l-- {
		idx = base + r + l*p
		xNext = gDp.Load(t, idx) - gCp.Load(t, idx)*xNext
		gX.Store(t, idx, xNext)
	}
	t.ThomasSteps(L - 1)
}

// SolveInterleavedRef is the plain-Go reference for KernelInterleaved:
// it extracts each system and solves it with the same non-pivoting
// recurrence, returning the interleaved solution vector.
func SolveInterleavedRef[T num.Real](v *matrix.Interleaved[T]) []T {
	m, n := v.M, v.N
	x := make([]T, m*n)
	SolveInterleavedRefInto(v, x, NewWorkspace[T](n))
	return x
}

// SolveInterleavedRefInto is SolveInterleavedRef over caller-owned
// storage; ws provides at least N elements of scratch.
func SolveInterleavedRefInto[T num.Real](v *matrix.Interleaved[T], x []T, ws *Workspace[T]) {
	m, n := v.M, v.N
	cp, dp := ws.Ensure(n)
	for i := 0; i < m; i++ {
		thomasStrided(v.Lower, v.Diag, v.Upper, v.RHS, x, cp, dp, i, m, n)
	}
}

// SolveStridedRef is the plain-Go reference for KernelStrided.
func SolveStridedRef[T num.Real](a, b, c, d []T, m, n, k int) []T {
	x := make([]T, m*n)
	SolveStridedRefInto(a, b, c, d, m, n, k, x, NewWorkspace[T](num.CeilDiv(n, 1<<k)))
	return x
}

// SolveStridedRefInto is SolveStridedRef over caller-owned storage; ws
// provides at least ceil(N/2^k) elements of scratch.
func SolveStridedRefInto[T num.Real](a, b, c, d []T, m, n, k int, x []T, ws *Workspace[T]) {
	p := 1 << k
	cp, dp := ws.Ensure(num.CeilDiv(n, p))
	for i := 0; i < m; i++ {
		for r := 0; r < p && r < n; r++ {
			base := i * n
			thomasStrided(a[base:], b[base:], c[base:], d[base:], x[base:], cp, dp, r, p, (n-r+p-1)/p)
		}
	}
}

// thomasStrided solves the system whose row l lives at flat index
// start + l*stride, writing x at the same indices. cp/dp are scratch of
// at least rows elements.
//
//tridlint:hotpath
func thomasStrided[T num.Real](a, b, c, d, x, cp, dp []T, start, stride, rows int) {
	if rows <= 0 {
		return
	}
	idx := start
	cp[0] = c[idx] / b[idx]
	dp[0] = d[idx] / b[idx]
	for l := 1; l < rows; l++ {
		idx = start + l*stride
		den := b[idx] - cp[l-1]*a[idx]
		inv := 1 / den
		cp[l] = c[idx] * inv
		dp[l] = (d[idx] - dp[l-1]*a[idx]) * inv
	}
	xn := dp[rows-1]
	x[start+(rows-1)*stride] = xn
	for l := rows - 2; l >= 0; l-- {
		xn = dp[l] - cp[l]*xn
		x[start+l*stride] = xn
	}
}
