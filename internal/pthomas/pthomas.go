// Package pthomas implements the thread-level parallel Thomas algorithm
// of paper §III.B: every thread solves one complete tridiagonal system
// with the classic O(n) two-sweep recurrence, and coalescing comes
// entirely from the memory layout — systems are interleaved so that
// consecutive threads touch consecutive addresses on every step.
//
// Two kernels are provided:
//
//   - KernelInterleaved solves M independent systems stored in the
//     interleaved layout (row j of system i at j·M+i) with one thread
//     per system. This is the k = 0 path of the hybrid and the
//     standalone GPU p-Thomas baseline.
//
//   - KernelStrided solves the 2^k interleaved subsystems that k-step
//     PCR leaves inside each of M contiguously stored systems (row l of
//     subsystem r of system i at i·N + r + l·2^k), one thread block of
//     2^k threads per original system. This is the hybrid's back-end;
//     the access pattern is consecutive across the block's threads,
//     which is why the paper calls PCR's output a "perfect match".
package pthomas

import (
	"fmt"

	"gputrid/internal/gpusim"
	"gputrid/internal/matrix"
	"gputrid/internal/num"
)

// KernelInterleaved solves the M interleaved systems of v on the
// device and returns the solutions in interleaved order (x[j*M+i] is
// row j of system i) together with the recorded statistics.
// blockSize threads per block; <= 0 selects 128.
//
// The Thomas recurrence does not pivot: a vanishing pivot produces
// Inf/NaN in the affected system's solution rather than an error, as on
// real hardware. Callers solving non-dominant systems should verify
// residuals.
func KernelInterleaved[T num.Real](dev *gpusim.Device, v *matrix.Interleaved[T], blockSize int) ([]T, *gpusim.Stats, error) {
	m, n := v.M, v.N
	if blockSize <= 0 {
		blockSize = 128
	}
	if blockSize > dev.MaxThreadsPerBlock {
		blockSize = dev.MaxThreadsPerBlock
	}
	x := make([]T, m*n)
	cp := make([]T, m*n)
	dp := make([]T, m*n)

	ga, gb := gpusim.NewGlobal(v.Lower), gpusim.NewGlobal(v.Diag)
	gc, gd := gpusim.NewGlobal(v.Upper), gpusim.NewGlobal(v.RHS)
	gcp, gdp := gpusim.NewGlobal(cp), gpusim.NewGlobal(dp)
	gx := gpusim.NewGlobal(x)

	grid := num.CeilDiv(m, blockSize)
	st, err := dev.Launch("pThomas", gpusim.LaunchConfig{Grid: grid, Block: blockSize},
		func(b *gpusim.Block) {
			b.PhaseNoSync(func(t *gpusim.Thread) {
				sys := b.ID*blockSize + t.ID
				if sys >= m {
					return
				}
				solveOne(t, sys, m, n, ga, gb, gc, gd, gcp, gdp, gx)
			})
		})
	if err != nil {
		return nil, nil, err
	}
	return x, st, nil
}

// KernelStrided solves, for every system of the contiguous batch
// (a, b, c, d) of M systems × N rows, the 2^k interleaved subsystems
// produced by k-step PCR. One thread block of 2^k threads handles one
// system; thread r solves subsystem r (rows r, r+2^k, r+2·2^k, ...).
// The returned solution vector is in natural row order (length M·N).
func KernelStrided[T num.Real](dev *gpusim.Device, a, b, c, d []T, m, n, k int) ([]T, *gpusim.Stats, error) {
	if k < 0 {
		return nil, nil, fmt.Errorf("pthomas: negative k")
	}
	p := 1 << k
	if p > dev.MaxThreadsPerBlock {
		return nil, nil, fmt.Errorf("pthomas: 2^k = %d exceeds max threads per block %d", p, dev.MaxThreadsPerBlock)
	}
	if len(a) != m*n || len(b) != m*n || len(c) != m*n || len(d) != m*n {
		return nil, nil, fmt.Errorf("pthomas: array lengths do not match M*N = %d", m*n)
	}
	x := make([]T, m*n)
	cp := make([]T, m*n)
	dp := make([]T, m*n)

	ga, gb := gpusim.NewGlobal(a), gpusim.NewGlobal(b)
	gc, gd := gpusim.NewGlobal(c), gpusim.NewGlobal(d)
	gcp, gdp := gpusim.NewGlobal(cp), gpusim.NewGlobal(dp)
	gx := gpusim.NewGlobal(x)

	st, err := dev.Launch("pThomasStrided", gpusim.LaunchConfig{Grid: m, Block: p},
		func(blk *gpusim.Block) {
			base := blk.ID * n
			blk.PhaseNoSync(func(t *gpusim.Thread) {
				r := t.ID
				if r >= n {
					return
				}
				solveStrided(t, base, r, p, n, ga, gb, gc, gd, gcp, gdp, gx)
			})
		})
	if err != nil {
		return nil, nil, err
	}
	return x, st, nil
}

// solveOne runs Thomas for one system of an interleaved batch:
// row l lives at l*m + sys.
func solveOne[T num.Real](t *gpusim.Thread, sys, m, n int,
	ga, gb, gc, gd, gcp, gdp, gx gpusim.Global[T]) {
	// Forward reduction (paper Eqs. 2-3).
	idx := sys
	bv := gb.Load(t, idx)
	cpPrev := gc.Load(t, idx) / bv
	dpPrev := gd.Load(t, idx) / bv
	gcp.Store(t, idx, cpPrev)
	gdp.Store(t, idx, dpPrev)
	t.ThomasSteps(1)
	for l := 1; l < n; l++ {
		idx = l*m + sys
		av := ga.Load(t, idx)
		den := gb.Load(t, idx) - cpPrev*av
		inv := 1 / den
		cpPrev = gc.Load(t, idx) * inv
		dpPrev = (gd.Load(t, idx) - dpPrev*av) * inv
		gcp.Store(t, idx, cpPrev)
		gdp.Store(t, idx, dpPrev)
		t.ThomasSteps(1)
	}
	// Backward substitution (paper Eq. 4).
	xNext := dpPrev
	gx.Store(t, (n-1)*m+sys, xNext)
	for l := n - 2; l >= 0; l-- {
		idx = l*m + sys
		xNext = gdp.Load(t, idx) - gcp.Load(t, idx)*xNext
		gx.Store(t, idx, xNext)
		t.ThomasSteps(1)
	}
}

// solveStrided runs Thomas over rows base+r, base+r+p, ... base+r+(L-1)p.
func solveStrided[T num.Real](t *gpusim.Thread, base, r, p, n int,
	ga, gb, gc, gd, gcp, gdp, gx gpusim.Global[T]) {
	L := (n - r + p - 1) / p
	if L <= 0 {
		return
	}
	idx := base + r
	bv := gb.Load(t, idx)
	cpPrev := gc.Load(t, idx) / bv
	dpPrev := gd.Load(t, idx) / bv
	gcp.Store(t, idx, cpPrev)
	gdp.Store(t, idx, dpPrev)
	t.ThomasSteps(1)
	for l := 1; l < L; l++ {
		idx = base + r + l*p
		av := ga.Load(t, idx)
		den := gb.Load(t, idx) - cpPrev*av
		inv := 1 / den
		cpPrev = gc.Load(t, idx) * inv
		dpPrev = (gd.Load(t, idx) - dpPrev*av) * inv
		gcp.Store(t, idx, cpPrev)
		gdp.Store(t, idx, dpPrev)
		t.ThomasSteps(1)
	}
	xNext := dpPrev
	gx.Store(t, base+r+(L-1)*p, xNext)
	for l := L - 2; l >= 0; l-- {
		idx = base + r + l*p
		xNext = gdp.Load(t, idx) - gcp.Load(t, idx)*xNext
		gx.Store(t, idx, xNext)
		t.ThomasSteps(1)
	}
}

// SolveInterleavedRef is the plain-Go reference for KernelInterleaved:
// it extracts each system and solves it with the same non-pivoting
// recurrence, returning the interleaved solution vector.
func SolveInterleavedRef[T num.Real](v *matrix.Interleaved[T]) []T {
	m, n := v.M, v.N
	x := make([]T, m*n)
	cp := make([]T, n)
	dp := make([]T, n)
	for i := 0; i < m; i++ {
		thomasStrided(v.Lower, v.Diag, v.Upper, v.RHS, x, cp, dp, i, m, n)
	}
	return x
}

// SolveStridedRef is the plain-Go reference for KernelStrided.
func SolveStridedRef[T num.Real](a, b, c, d []T, m, n, k int) []T {
	p := 1 << k
	x := make([]T, m*n)
	L := num.CeilDiv(n, p)
	cp := make([]T, L)
	dp := make([]T, L)
	for i := 0; i < m; i++ {
		for r := 0; r < p && r < n; r++ {
			base := i * n
			thomasStrided(a[base:], b[base:], c[base:], d[base:], x[base:], cp, dp, r, p, (n-r+p-1)/p)
		}
	}
	return x
}

// thomasStrided solves the system whose row l lives at flat index
// start + l*stride, writing x at the same indices. cp/dp are scratch of
// at least rows elements.
func thomasStrided[T num.Real](a, b, c, d, x, cp, dp []T, start, stride, rows int) {
	if rows <= 0 {
		return
	}
	idx := start
	cp[0] = c[idx] / b[idx]
	dp[0] = d[idx] / b[idx]
	for l := 1; l < rows; l++ {
		idx = start + l*stride
		den := b[idx] - cp[l-1]*a[idx]
		inv := 1 / den
		cp[l] = c[idx] * inv
		dp[l] = (d[idx] - dp[l-1]*a[idx]) * inv
	}
	xn := dp[rows-1]
	x[start+(rows-1)*stride] = xn
	for l := rows - 2; l >= 0; l-- {
		xn = dp[l] - cp[l]*xn
		x[start+l*stride] = xn
	}
}
