package pthomas

import (
	"testing"
	"testing/quick"

	"gputrid/internal/cpu"
	"gputrid/internal/gpusim"
	"gputrid/internal/matrix"
	"gputrid/internal/pcr"
	"gputrid/internal/workload"
)

func dev() *gpusim.Device { return gpusim.GTX480() }

func TestKernelInterleavedMatchesThomas(t *testing.T) {
	for _, tc := range []struct{ m, n int }{
		{1, 16}, {3, 7}, {32, 64}, {100, 33}, {257, 16},
	} {
		b := workload.Batch[float64](workload.DiagDominant, tc.m, tc.n, uint64(tc.m*tc.n))
		v := b.ToInterleaved()
		xi, _, err := KernelInterleaved(dev(), v, 64)
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		x := matrix.DeinterleaveVector(xi, tc.m, tc.n)
		want, err := cpu.SolveBatchSeq(b)
		if err != nil {
			t.Fatal(err)
		}
		if d := matrix.MaxRelDiff(x, want); d > 1e-12 {
			t.Errorf("%+v: kernel differs from CPU Thomas by %g", tc, d)
		}
	}
}

func TestKernelInterleavedMatchesRef(t *testing.T) {
	b := workload.Batch[float64](workload.DiagDominant, 50, 40, 5)
	v := b.ToInterleaved()
	xi, _, err := KernelInterleaved(dev(), v, 32)
	if err != nil {
		t.Fatal(err)
	}
	ref := SolveInterleavedRef(v)
	if d := matrix.MaxAbsDiff(xi, ref); d != 0 {
		t.Errorf("kernel and reference differ by %g (must be exact: same recurrence)", d)
	}
}

func TestKernelInterleavedCoalescing(t *testing.T) {
	// With M a multiple of the warp size, every access of every warp is
	// unit-stride: load efficiency must be 1.
	b := workload.Batch[float64](workload.DiagDominant, 256, 64, 7)
	v := b.ToInterleaved()
	_, st, err := KernelInterleaved(dev(), v, 128)
	if err != nil {
		t.Fatal(err)
	}
	if eff := st.LoadEfficiency(dev().TransactionBytes); eff < 0.999 {
		t.Errorf("interleaved load efficiency = %g, want 1", eff)
	}
}

func TestKernelInterleavedEliminationCount(t *testing.T) {
	// 2n-1 elimination steps per system (paper §II.A.1).
	m, n := 10, 37
	b := workload.Batch[float64](workload.DiagDominant, m, n, 9)
	_, st, err := KernelInterleaved(dev(), b.ToInterleaved(), 32)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(m) * (2*int64(n) - 1); st.Eliminations != want {
		t.Errorf("eliminations = %d, want %d", st.Eliminations, want)
	}
}

func TestKernelStridedSolvesReducedSystems(t *testing.T) {
	// End-to-end check of the hybrid's data flow: k-step PCR (naive
	// reference) followed by the strided kernel must solve the batch.
	for _, tc := range []struct{ m, n, k int }{
		{1, 64, 2}, {4, 64, 3}, {3, 100, 2}, {2, 257, 4}, {1, 31, 5},
	} {
		b := workload.Batch[float64](workload.DiagDominant, tc.m, tc.n, uint64(tc.n*3+tc.k))
		// Reduce every system by k steps.
		ra := make([]float64, tc.m*tc.n)
		rb := make([]float64, tc.m*tc.n)
		rc := make([]float64, tc.m*tc.n)
		rd := make([]float64, tc.m*tc.n)
		for i := 0; i < tc.m; i++ {
			r := pcr.Reduce(b.System(i), tc.k)
			copy(ra[i*tc.n:], r.Lower)
			copy(rb[i*tc.n:], r.Diag)
			copy(rc[i*tc.n:], r.Upper)
			copy(rd[i*tc.n:], r.RHS)
		}
		x, _, err := KernelStrided(dev(), ra, rb, rc, rd, tc.m, tc.n, tc.k)
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		if r := matrix.MaxResidual(b, x); r > matrix.ResidualTolerance[float64](tc.n) {
			t.Errorf("%+v: residual %g", tc, r)
		}
		// And against the pure-Go reference, exactly.
		ref := SolveStridedRef(ra, rb, rc, rd, tc.m, tc.n, tc.k)
		if d := matrix.MaxAbsDiff(x, ref); d != 0 {
			t.Errorf("%+v: kernel vs ref differ by %g", tc, d)
		}
	}
}

func TestKernelStridedCoalescing(t *testing.T) {
	m, n, k := 4, 1024, 5
	b := workload.Batch[float64](workload.DiagDominant, m, n, 3)
	// Coefficients need not be PCR-reduced for an access-pattern check.
	x, st, err := KernelStrided(dev(), b.Lower, b.Diag, b.Upper, b.RHS, m, n, k)
	if err != nil {
		t.Fatal(err)
	}
	_ = x
	if eff := st.LoadEfficiency(dev().TransactionBytes); eff < 0.999 {
		t.Errorf("strided kernel load efficiency = %g, want 1", eff)
	}
	if st.Blocks != m || st.ThreadsPerBlock != 1<<k {
		t.Errorf("launch shape %d blocks × %d threads", st.Blocks, st.ThreadsPerBlock)
	}
}

func TestKernelStridedRejectsBadConfig(t *testing.T) {
	if _, _, err := KernelStrided[float64](dev(), nil, nil, nil, nil, 1, 8, -1); err == nil {
		t.Error("negative k accepted")
	}
	if _, _, err := KernelStrided[float64](dev(), nil, nil, nil, nil, 1, 8, 11); err == nil {
		t.Error("2^k > block limit accepted")
	}
	s := make([]float64, 8)
	if _, _, err := KernelStrided(dev(), s, s, s, s, 2, 8, 2); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestKernelStridedKZero(t *testing.T) {
	// k = 0 degenerates to one thread per system solving it whole.
	m, n := 3, 50
	b := workload.Batch[float64](workload.DiagDominant, m, n, 8)
	x, _, err := KernelStrided(dev(), b.Lower, b.Diag, b.Upper, b.RHS, m, n, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r := matrix.MaxResidual(b, x); r > matrix.ResidualTolerance[float64](n) {
		t.Errorf("residual %g", r)
	}
}

func TestKernelsFloat32(t *testing.T) {
	m, n := 16, 64
	b := workload.Batch[float32](workload.DiagDominant, m, n, 2)
	xi, _, err := KernelInterleaved(dev(), b.ToInterleaved(), 32)
	if err != nil {
		t.Fatal(err)
	}
	x := matrix.DeinterleaveVector(xi, m, n)
	if r := matrix.MaxResidual(b, x); r > matrix.ResidualTolerance[float32](n) {
		t.Errorf("float32 residual %g", r)
	}
}

func TestInterleavedProperty(t *testing.T) {
	f := func(seed uint32, mRaw, nRaw uint8) bool {
		m := int(mRaw)%60 + 1
		n := int(nRaw)%80 + 1
		b := workload.Batch[float64](workload.DiagDominant, m, n, uint64(seed))
		xi, _, err := KernelInterleaved(dev(), b.ToInterleaved(), 32)
		if err != nil {
			return false
		}
		x := matrix.DeinterleaveVector(xi, m, n)
		return matrix.MaxResidual(b, x) <= matrix.ResidualTolerance[float64](n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
