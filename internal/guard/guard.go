// Package guard implements the guarded solve pipeline: per-system
// fault isolation around the hybrid fast path. The non-pivoting hybrid
// (tiled PCR + p-Thomas) is kept as the bulk solver, but instead of the
// all-or-nothing contract of batch verification — one degenerate system
// rejects the whole batch — every system is classified individually
// after the fast solve and only the failing ones are escalated through
// a ladder of increasingly expensive rescues:
//
//  1. iterative refinement against the cached (non-pivoting) hybrid
//     factorization of that system — repairs finite but
//     over-tolerance solutions at O(n) per round;
//  2. a pivoting GTSV re-solve of just that system — stable for any
//     nonsingular tridiagonal matrix, including the zero-pivot cases
//     the fast path turns into Inf/NaN;
//  3. a typed, errors.Is/As-able SolveError carrying the system index,
//     the last stage attempted, the best residual achieved, and a
//     lazily computed condition estimate.
//
// Repaired solutions are merged back into the batch result, so M-1
// healthy systems are never poisoned by one bad neighbour, and the
// per-system SystemReport makes the degradation observable instead of
// surfacing as NaNs downstream.
package guard

import (
	"errors"
	"fmt"
	"math"

	"gputrid/internal/core"
	"gputrid/internal/cpu"
	"gputrid/internal/matrix"
	"gputrid/internal/num"
)

// Policy tunes the escalation ladder. The zero value is the production
// default: two refinement rounds, size-scaled tolerance, pivoting
// fallback on, condition estimates for rescued systems.
type Policy struct {
	// MaxRefine bounds the iterative-refinement rounds per failing
	// system. 0 means the default of 2; negative disables refinement
	// (failing systems go straight to the pivoting rung).
	MaxRefine int
	// Tolerance is the per-system residual acceptance threshold; 0
	// applies matrix.ResidualTolerance for the batch's N and precision.
	Tolerance float64
	// DisablePivotFallback skips the GTSV rung: systems refinement
	// cannot repair fail with a typed SolveError instead. Useful when
	// the caller wants the fast path's cost envelope strictly bounded.
	DisablePivotFallback bool
	// SkipConditionEstimate suppresses the lazy Hager-Higham κ₁
	// estimate on rescued/failed systems (saves a few pivoted solves
	// per rescued system).
	SkipConditionEstimate bool
	// Inject deterministically corrupts chosen systems before or after
	// the fast solve — the fault hook the ladder tests are built on.
	// Nil in production.
	Inject *Injection
}

func (p Policy) maxRefine() int {
	switch {
	case p.MaxRefine == 0:
		return 2
	case p.MaxRefine < 0:
		return 0
	default:
		return p.MaxRefine
	}
}

// Result is a guarded batch solve: the merged solutions, the per-system
// reports, the typed failures (also joined into the error Solve
// returns), and the fast path's execution report.
type Result[T num.Real] struct {
	// X holds the M solutions contiguously. Always fully finite:
	// unrecoverable systems are zeroed and carry a SolveError instead
	// of Inf/NaN markers.
	X []T
	// Reports has one entry per system, in batch order.
	Reports []SystemReport
	// Failed lists the unrecoverable systems' errors (same *SolveError
	// values the reports reference), empty when every system solved.
	Failed []*SolveError
	// FastReport is the device execution report of the bulk fast-path
	// solve.
	FastReport *core.Report
}

// Stages counts the systems per final stage, for summary diagnostics.
func (r *Result[T]) Stages() map[Stage]int {
	m := make(map[Stage]int)
	for _, rep := range r.Reports {
		m[rep.Stage]++
	}
	return m
}

// Solve runs the guarded pipeline over the batch. The returned error is
// nil when every system produced a tolerance-passing solution (possibly
// after rescue); otherwise it is the errors.Join of the per-system
// SolveErrors — the Result is still valid and carries the healthy
// systems' solutions. Infrastructure failures (invalid configuration,
// shape mismatches) return a nil Result.
func Solve[T num.Real](cfg core.Config, b *matrix.Batch[T], pol Policy) (*Result[T], error) {
	m, n := b.M, b.N
	if len(b.Lower) != m*n || len(b.Diag) != m*n || len(b.Upper) != m*n || len(b.RHS) != m*n {
		return nil, fmt.Errorf("guard: batch slice lengths do not match M*N=%d", m*n)
	}

	// Fault injection mutates a private clone, never the caller's data.
	work := b
	if pol.Inject != nil && pol.Inject.touchesInput() {
		work = b.Clone()
		injectBatch(pol.Inject, work)
	}

	// Per-system input scan: systems with NaN/Inf coefficients are
	// garbage-in, not numerical breakdown. They are replaced by
	// identity systems for the bulk solve (keeping the kernel free of
	// input poison) and reported as failed with ErrNonFiniteInput.
	var invalid []int
	for i := 0; i < m; i++ {
		if !work.System(i).IsFinite() {
			invalid = append(invalid, i)
		}
	}
	if len(invalid) > 0 {
		if work == b {
			work = b.Clone()
		}
		for _, i := range invalid {
			s := work.System(i)
			for j := 0; j < n; j++ {
				s.Lower[j], s.Diag[j], s.Upper[j], s.RHS[j] = 0, 1, 0, 0
			}
		}
	}
	isInvalid := make([]bool, m)
	for _, i := range invalid {
		isInvalid[i] = true
	}

	// Bulk fast path over the (sanitized) batch.
	x, fastRep, err := core.Solve(cfg, work)
	if err != nil {
		return nil, err
	}
	if pol.Inject != nil {
		injectSolution(pol.Inject, x, m, n)
	}

	tol := pol.Tolerance
	if tol <= 0 {
		tol = matrix.ResidualTolerance[T](n)
	}

	res := &Result[T]{X: x, Reports: make([]SystemReport, m), FastReport: fastRep}
	var gtsvWS *cpu.GTSVWorkspace[T]
	for i := 0; i < m; i++ {
		rep := &res.Reports[i]
		rep.System = i
		if isInvalid[i] {
			rep.Stage = StageFailed
			rep.ResidualBefore = inf()
			rep.ResidualAfter = inf()
			rep.Err = &SolveError{System: i, Stage: StageFailed, Residual: inf(), Cause: ErrNonFiniteInput}
			zero(x[i*n : (i+1)*n])
			res.Failed = append(res.Failed, rep.Err)
			continue
		}
		sys := work.System(i)
		xi := x[i*n : (i+1)*n]
		r0 := matrix.Residual(sys, xi)
		rep.ResidualBefore = r0
		if r0 <= tol {
			rep.Stage = StageFast
			rep.ResidualAfter = r0
			continue
		}
		if gtsvWS == nil {
			gtsvWS = cpu.NewGTSVWorkspace[T](n)
		}
		escalate(cfg, work, i, xi, tol, pol, fastRep.K, gtsvWS, rep)
		if rep.Err != nil {
			res.Failed = append(res.Failed, rep.Err)
		}
	}

	if len(res.Failed) == 0 {
		return res, nil
	}
	errs := make([]error, len(res.Failed))
	for i, e := range res.Failed {
		errs[i] = e
	}
	return res, errors.Join(errs...)
}

// escalate runs the ladder for one over-tolerance (or non-finite)
// system, updating xi in place and filling in the report.
func escalate[T num.Real](cfg core.Config, b *matrix.Batch[T], i int, xi []T,
	tol float64, pol Policy, k int, ws *cpu.GTSVWorkspace[T], rep *SystemReport) {
	sys := b.System(i)
	cur := rep.ResidualBefore
	lastErr := error(nil)

	// Rung 1: iterative refinement against the cached non-pivoting
	// factorization — only worth attempting when the starting point is
	// finite (refinement cannot recover from Inf/NaN).
	if rounds := pol.maxRefine(); rounds > 0 && finiteVec(xi) {
		if f, err := core.FactorHybrid(core.SystemView(b, i), k); err == nil {
			r := make([]T, len(xi))
			e := make([]T, len(xi))
			for round := 0; round < rounds && cur > tol; round++ {
				ax := sys.Apply(xi)
				for j := range r {
					r[j] = sys.RHS[j] - ax[j]
				}
				if f.Solve(r, e) != nil {
					break
				}
				for j := range xi {
					xi[j] += e[j]
				}
				next := matrix.Residual(sys, xi)
				rep.Refinements = round + 1
				if !(next < cur) {
					cur = next
					break // stalled (or went non-finite): stop burning rounds
				}
				cur = next
			}
			if cur <= tol {
				rep.Stage = StageRefine
				rep.ResidualAfter = cur
				return
			}
		} else {
			lastErr = err // zero pivot: the matrix needs pivoting
		}
	}

	// Rung 2: pivoting GTSV re-solve of this system only.
	if !pol.DisablePivotFallback {
		if err := cpu.SolveGTSVInto(sys, xi, ws); err != nil {
			lastErr = err
		} else if r := matrix.Residual(sys, xi); r <= tol {
			rep.Stage = StagePivot
			rep.ResidualAfter = r
			if !pol.SkipConditionEstimate {
				rep.CondEst = matrix.Cond1Est(sys, cpu.SolveGTSV[T])
			}
			return
		} else if r < cur || !finite(cur) {
			cur = r // keep the pivoted attempt's (better) residual for the report
		}
	}

	// Rung 3: structured failure. The solution slot is zeroed so the
	// merged X stays finite; the typed error carries the diagnosis.
	rep.Stage = StageFailed
	rep.ResidualAfter = cur
	if !pol.SkipConditionEstimate {
		rep.CondEst = matrix.Cond1Est(sys, cpu.SolveGTSV[T])
	}
	rep.Err = &SolveError{System: i, Stage: StagePivot, Residual: cur, CondEst: rep.CondEst, Cause: lastErr}
	if pol.DisablePivotFallback {
		rep.Err.Stage = StageRefine
	}
	zero(xi)
}

func zero[T num.Real](x []T) {
	for j := range x {
		x[j] = 0
	}
}

func finiteVec[T num.Real](x []T) bool {
	for _, v := range x {
		if !num.IsFinite(v) {
			return false
		}
	}
	return true
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

func inf() float64 { return math.Inf(1) }
