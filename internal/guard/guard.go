// Package guard implements the guarded solve pipeline: per-system
// fault isolation around the hybrid fast path. The non-pivoting hybrid
// (tiled PCR + p-Thomas) is kept as the bulk solver, but instead of the
// all-or-nothing contract of batch verification — one degenerate system
// rejects the whole batch — every system is classified individually
// after the fast solve and only the failing ones are escalated through
// a ladder of increasingly expensive rescues:
//
//  1. iterative refinement against the cached (non-pivoting) hybrid
//     factorization of that system — repairs finite but
//     over-tolerance solutions at O(n) per round;
//  2. a pivoting GTSV re-solve of just that system — stable for any
//     nonsingular tridiagonal matrix, including the zero-pivot cases
//     the fast path turns into Inf/NaN;
//  3. a typed, errors.Is/As-able SolveError carrying the system index,
//     the last stage attempted, the best residual achieved, and a
//     lazily computed condition estimate.
//
// Repaired solutions are merged back into the batch result, so M-1
// healthy systems are never poisoned by one bad neighbour, and the
// per-system SystemReport makes the degradation observable instead of
// surfacing as NaNs downstream.
package guard

import (
	"context"
	"errors"
	"fmt"
	"math"

	"gputrid/internal/core"
	"gputrid/internal/cpu"
	"gputrid/internal/matrix"
	"gputrid/internal/num"
)

// Policy tunes the escalation ladder. The zero value is the production
// default: two refinement rounds, size-scaled tolerance, pivoting
// fallback on, condition estimates for rescued systems.
type Policy struct {
	// MaxRefine bounds the iterative-refinement rounds per failing
	// system. 0 means the default of 2; negative disables refinement
	// (failing systems go straight to the pivoting rung).
	MaxRefine int
	// Tolerance is the per-system residual acceptance threshold; 0
	// applies matrix.ResidualTolerance for the batch's N and precision.
	Tolerance float64
	// DisablePivotFallback skips the GTSV rung: systems refinement
	// cannot repair fail with a typed SolveError instead. Useful when
	// the caller wants the fast path's cost envelope strictly bounded.
	DisablePivotFallback bool
	// SkipConditionEstimate suppresses the lazy Hager-Higham κ₁
	// estimate on rescued/failed systems (saves a few pivoted solves
	// per rescued system).
	SkipConditionEstimate bool
	// Inject deterministically corrupts chosen systems before or after
	// the fast solve — the fault hook the ladder tests are built on.
	// Nil in production.
	Inject *Injection
}

func (p Policy) maxRefine() int {
	switch {
	case p.MaxRefine == 0:
		return 2
	case p.MaxRefine < 0:
		return 0
	default:
		return p.MaxRefine
	}
}

// Result is a guarded batch solve: the merged solutions, the per-system
// reports, the typed failures (also joined into the error Solve
// returns), and the fast path's execution report.
type Result[T num.Real] struct {
	// X holds the M solutions contiguously. Always fully finite:
	// unrecoverable systems are zeroed and carry a SolveError instead
	// of Inf/NaN markers.
	X []T
	// Reports has one entry per system, in batch order.
	Reports []SystemReport
	// Failed lists the unrecoverable systems' errors (same *SolveError
	// values the reports reference), empty when every system solved.
	Failed []*SolveError
	// FastReport is the device execution report of the bulk fast-path
	// solve.
	FastReport *core.Report
}

// Stages counts the systems per final stage, for summary diagnostics.
func (r *Result[T]) Stages() map[Stage]int {
	m := make(map[Stage]int)
	for _, rep := range r.Reports {
		m[rep.Stage]++
	}
	return m
}

// Runner is a reusable guarded solver for one fixed batch shape. It
// owns a core.Pipeline (the bulk fast path, allocation-free once
// warmed), the solution and residual arenas, and the per-system report
// slice, so the steady-state happy path — every system passing its
// residual check — performs zero heap allocations per Solve. Only the
// escalation rungs (which touch failing systems only) and the fault-
// injection clone allocate.
//
// A Runner is not safe for concurrent use; the underlying Pipeline
// rejects overlapping calls with core.ErrPipelineBusy.
type Runner[T num.Real] struct {
	cfg  core.Config
	m, n int
	pipe *core.Pipeline[T]

	x         []T       // merged solutions, aliased by Result.X
	resid     []float64 // per-system residuals of the fast solve
	isInvalid []bool    // per-system non-finite-input flags
	res       Result[T] // reused result; Reports/Failed re-sliced per solve
	gtsvWS    *cpu.GTSVWorkspace[T]
}

// NewRunner builds a guarded runner for batches of m systems of n rows.
func NewRunner[T num.Real](cfg core.Config, m, n int) (*Runner[T], error) {
	p, err := core.NewPipeline[T](cfg, m, n)
	if err != nil {
		return nil, err
	}
	r := &Runner[T]{
		cfg:       cfg,
		m:         m,
		n:         n,
		pipe:      p,
		x:         make([]T, m*n),
		resid:     make([]float64, m),
		isInvalid: make([]bool, m),
	}
	r.res.Reports = make([]SystemReport, m)
	return r, nil
}

// Close releases the underlying pipeline's worker pool. The Runner is
// unusable afterwards. Close is idempotent; a Close racing an
// in-flight Solve returns core.ErrPipelineBusy and leaves the Runner
// usable.
func (r *Runner[T]) Close() error {
	if r.pipe == nil {
		return nil
	}
	return r.pipe.Close()
}

// Solve runs the guarded pipeline over the batch, which must match the
// Runner's shape. The returned Result aliases the Runner's arenas (X,
// Reports) and is valid until the next Solve or Close; callers that
// need the data longer must copy it out.
func (r *Runner[T]) Solve(b *matrix.Batch[T], pol Policy) (*Result[T], error) {
	return r.SolveCtx(context.Background(), b, pol)
}

// SolveCtx is Solve with cooperative cancellation and transient-fault
// recovery (see core.Pipeline.SolveIntoCtx). A cancelled solve returns
// a nil Result with an error matching core.ErrCancelled. Systems the
// fault-recovery layer degraded to the pivoting GTSV path are folded
// into the ladder's reporting as StagePivot — the guarantee is the
// same one rung 2 gives.
func (r *Runner[T]) SolveCtx(ctx context.Context, b *matrix.Batch[T], pol Policy) (*Result[T], error) {
	m, n := r.m, r.n
	if b.M != m || b.N != n {
		return nil, fmt.Errorf("guard: batch shape %dx%d does not match runner shape %dx%d: %w",
			b.M, b.N, m, n, core.ErrShapeMismatch)
	}
	if len(b.Lower) != m*n || len(b.Diag) != m*n || len(b.Upper) != m*n || len(b.RHS) != m*n {
		return nil, fmt.Errorf("guard: batch slice lengths do not match M*N=%d", m*n)
	}

	// Fault injection mutates a private clone, never the caller's data.
	work := b
	if pol.Inject != nil && pol.Inject.touchesInput() {
		work = b.Clone()
		injectBatch(pol.Inject, work)
	}

	// Per-system input scan: systems with NaN/Inf coefficients are
	// garbage-in, not numerical breakdown. They are replaced by
	// identity systems for the bulk solve (keeping the kernel free of
	// input poison) and reported as failed with ErrNonFiniteInput.
	// The stack-allocated System view keeps the all-finite scan free
	// of per-system allocations.
	nInvalid := 0
	var sys matrix.System[T]
	for i := 0; i < m; i++ {
		lo, hi := i*n, (i+1)*n
		sys.Lower, sys.Diag, sys.Upper, sys.RHS =
			work.Lower[lo:hi], work.Diag[lo:hi], work.Upper[lo:hi], work.RHS[lo:hi]
		r.isInvalid[i] = !sys.IsFinite()
		if r.isInvalid[i] {
			nInvalid++
		}
	}
	if nInvalid > 0 {
		if work == b {
			work = b.Clone()
		}
		for i := 0; i < m; i++ {
			if !r.isInvalid[i] {
				continue
			}
			s := work.System(i)
			for j := 0; j < n; j++ {
				s.Lower[j], s.Diag[j], s.Upper[j], s.RHS[j] = 0, 1, 0, 0
			}
		}
	}

	// Bulk fast path over the (sanitized) batch, into the arena. An
	// ErrFaulted here means the recovery layer already degraded the
	// affected systems to GTSV but some of them failed even that
	// (singular); their slots are zeroed, so the ladder below
	// re-classifies them per system instead of failing the batch.
	// Under NoDegrade an ErrFaulted is a hard batch failure by request.
	if err := r.pipe.SolveIntoCtx(ctx, r.x, work); err != nil {
		if !errors.Is(err, core.ErrFaulted) || r.cfg.Retry.NoDegrade {
			return nil, err
		}
	}
	x := r.x
	fastRep := r.pipe.Report()
	var degraded []int
	if fastRep.Faults != nil {
		degraded = fastRep.Faults.Degraded
	}
	if pol.Inject != nil {
		injectSolution(pol.Inject, x, m, n)
	}

	tol := pol.Tolerance
	if tol <= 0 {
		tol = matrix.ResidualTolerance[T](n)
	}

	res := &r.res
	res.X = x
	res.FastReport = fastRep
	res.Failed = res.Failed[:0]
	for i := range res.Reports {
		res.Reports[i] = SystemReport{}
	}
	matrix.ResidualsPerSystemInto(r.resid, work, x)
	di := 0 // cursor into the (ascending) degraded-system list
	for i := 0; i < m; i++ {
		rep := &res.Reports[i]
		rep.System = i
		for di < len(degraded) && degraded[di] < i {
			di++
		}
		fromGTSV := di < len(degraded) && degraded[di] == i
		if r.isInvalid[i] {
			rep.Stage = StageFailed
			rep.ResidualBefore = inf()
			rep.ResidualAfter = inf()
			rep.Err = &SolveError{System: i, Stage: StageFailed, Residual: inf(), Cause: ErrNonFiniteInput}
			zero(x[i*n : (i+1)*n])
			res.Failed = append(res.Failed, rep.Err)
			continue
		}
		xi := x[i*n : (i+1)*n]
		r0 := r.resid[i]
		rep.ResidualBefore = r0
		if r0 <= tol {
			rep.Stage = StageFast
			if fromGTSV {
				// The fault-recovery layer already re-solved this system
				// through the pivoting path; report the rung that ran.
				rep.Stage = StagePivot
			}
			rep.ResidualAfter = r0
			continue
		}
		if r.gtsvWS == nil {
			r.gtsvWS = cpu.NewGTSVWorkspace[T](n)
		}
		escalate(r.cfg, work, i, xi, tol, pol, fastRep.K, r.gtsvWS, rep)
		if rep.Err != nil {
			res.Failed = append(res.Failed, rep.Err)
		}
	}

	if len(res.Failed) == 0 {
		return res, nil
	}
	errs := make([]error, len(res.Failed))
	for i, e := range res.Failed {
		errs[i] = e
	}
	return res, errors.Join(errs...)
}

// Solve runs the guarded pipeline over the batch. The returned error is
// nil when every system produced a tolerance-passing solution (possibly
// after rescue); otherwise it is the errors.Join of the per-system
// SolveErrors — the Result is still valid and carries the healthy
// systems' solutions. Infrastructure failures (invalid configuration,
// shape mismatches) return a nil Result.
//
// It is a one-shot wrapper over a transient Runner; callers solving
// the same shape repeatedly should hold a Runner (or a gputrid.Solver)
// and reuse it.
func Solve[T num.Real](cfg core.Config, b *matrix.Batch[T], pol Policy) (*Result[T], error) {
	m, n := b.M, b.N
	if len(b.Lower) != m*n || len(b.Diag) != m*n || len(b.Upper) != m*n || len(b.RHS) != m*n {
		return nil, fmt.Errorf("guard: batch slice lengths do not match M*N=%d", m*n)
	}
	r, err := NewRunner[T](cfg, m, n)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	return r.Solve(b, pol)
}

// escalate runs the ladder for one over-tolerance (or non-finite)
// system, updating xi in place and filling in the report.
func escalate[T num.Real](cfg core.Config, b *matrix.Batch[T], i int, xi []T,
	tol float64, pol Policy, k int, ws *cpu.GTSVWorkspace[T], rep *SystemReport) {
	sys := b.System(i)
	cur := rep.ResidualBefore
	lastErr := error(nil)

	// Rung 1: iterative refinement against the cached non-pivoting
	// factorization — only worth attempting when the starting point is
	// finite (refinement cannot recover from Inf/NaN).
	if rounds := pol.maxRefine(); rounds > 0 && finiteVec(xi) {
		if f, err := core.FactorHybrid(core.SystemView(b, i), k); err == nil {
			r := make([]T, len(xi))
			e := make([]T, len(xi))
			for round := 0; round < rounds && cur > tol; round++ {
				ax := sys.Apply(xi)
				for j := range r {
					r[j] = sys.RHS[j] - ax[j]
				}
				if f.Solve(r, e) != nil {
					break
				}
				for j := range xi {
					xi[j] += e[j]
				}
				next := matrix.Residual(sys, xi)
				rep.Refinements = round + 1
				if !(next < cur) {
					cur = next
					break // stalled (or went non-finite): stop burning rounds
				}
				cur = next
			}
			if cur <= tol {
				rep.Stage = StageRefine
				rep.ResidualAfter = cur
				return
			}
		} else {
			lastErr = err // zero pivot: the matrix needs pivoting
		}
	}

	// Rung 2: pivoting GTSV re-solve of this system only.
	if !pol.DisablePivotFallback {
		if err := cpu.SolveGTSVInto(sys, xi, ws); err != nil {
			lastErr = err
		} else if r := matrix.Residual(sys, xi); r <= tol {
			rep.Stage = StagePivot
			rep.ResidualAfter = r
			if !pol.SkipConditionEstimate {
				rep.CondEst = matrix.Cond1Est(sys, cpu.SolveGTSV[T])
			}
			return
		} else if r < cur || !finite(cur) {
			cur = r // keep the pivoted attempt's (better) residual for the report
		}
	}

	// Rung 3: structured failure. The solution slot is zeroed so the
	// merged X stays finite; the typed error carries the diagnosis.
	rep.Stage = StageFailed
	rep.ResidualAfter = cur
	if !pol.SkipConditionEstimate {
		rep.CondEst = matrix.Cond1Est(sys, cpu.SolveGTSV[T])
	}
	rep.Err = &SolveError{System: i, Stage: StagePivot, Residual: cur, CondEst: rep.CondEst, Cause: lastErr}
	if pol.DisablePivotFallback {
		rep.Err.Stage = StageRefine
	}
	zero(xi)
}

func zero[T num.Real](x []T) {
	for j := range x {
		x[j] = 0
	}
}

func finiteVec[T num.Real](x []T) bool {
	for _, v := range x {
		if !num.IsFinite(v) {
			return false
		}
	}
	return true
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

func inf() float64 { return math.Inf(1) }
