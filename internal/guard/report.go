package guard

import (
	"errors"
	"fmt"
)

// Stage names the rung of the escalation ladder that produced a
// system's final answer (or gave up).
type Stage int

const (
	// StageFast: the hybrid fast-path solution passed the residual
	// check unmodified.
	StageFast Stage = iota
	// StageRefine: one or more rounds of iterative refinement against
	// the cached non-pivoting factorization brought the residual under
	// tolerance.
	StageRefine
	// StagePivot: the system was re-solved with the pivoting GTSV
	// algorithm (the dgtsv path), which handles any nonsingular
	// tridiagonal matrix.
	StagePivot
	// StageFailed: every rung failed (or the input itself was
	// non-finite); the system carries a SolveError and a zeroed
	// solution.
	StageFailed
)

// String names the stage for reports and diagnostics.
func (s Stage) String() string {
	switch s {
	case StageFast:
		return "fast"
	case StageRefine:
		return "refine"
	case StagePivot:
		return "pivot"
	case StageFailed:
		return "failed"
	default:
		return fmt.Sprintf("stage(%d)", int(s))
	}
}

// SystemReport records what the guarded pipeline did to one system:
// which rung produced the accepted answer, the residual before and
// after escalation, how many refinement rounds ran, and — for systems
// that needed rescue — the lazily computed condition estimate.
type SystemReport struct {
	// System is the batch index.
	System int
	// Stage is the rung that produced the final solution.
	Stage Stage
	// ResidualBefore is the normwise relative residual of the fast-path
	// solution (+Inf when it contained Inf/NaN, or when the input was
	// rejected before solving).
	ResidualBefore float64
	// ResidualAfter is the residual of the accepted solution (equal to
	// ResidualBefore for StageFast systems).
	ResidualAfter float64
	// Refinements counts the iterative-refinement rounds applied.
	Refinements int
	// CondEst is the Hager-Higham κ₁ estimate, computed only for
	// systems that escalated past refinement (0 when not estimated,
	// +Inf for a numerically singular matrix).
	CondEst float64
	// Err is non-nil iff Stage == StageFailed.
	Err *SolveError
}

// ErrUnrecoverable is the sentinel every SolveError matches under
// errors.Is: the escalation ladder ran out of rungs for a system.
var ErrUnrecoverable = errors.New("guard: system unrecoverable")

// ErrNonFiniteInput marks a system whose coefficients already contained
// NaN/Inf on entry — garbage-in, as opposed to numerical breakdown
// inside a solver. SolveErrors caused by it match under errors.Is.
var ErrNonFiniteInput = errors.New("guard: non-finite input coefficient")

// SolveError is the typed per-system failure of a guarded solve. It is
// errors.As-able from the joined error SolveGuarded returns, and
// errors.Is(err, ErrUnrecoverable) matches it.
type SolveError struct {
	// System is the batch index of the failing system.
	System int
	// Stage is the last rung attempted before giving up.
	Stage Stage
	// Residual is the best residual any rung achieved (+Inf when every
	// attempt produced non-finite values).
	Residual float64
	// CondEst is the κ₁ estimate of the failing matrix (0 when not
	// estimated, +Inf when numerically singular).
	CondEst float64
	// Cause is the underlying failure (e.g. a zero-pivot error from the
	// pivoting solver, or ErrNonFiniteInput), reachable via Unwrap.
	Cause error
}

// Error formats the failure with everything a caller needs to diagnose
// it: system, stage, residual, and condition estimate when known.
func (e *SolveError) Error() string {
	msg := fmt.Sprintf("guard: system %d unrecoverable at stage %s (residual %.3e", e.System, e.Stage, e.Residual)
	if e.CondEst > 0 {
		msg += fmt.Sprintf(", cond1 ~%.1e", e.CondEst)
	}
	msg += ")"
	if e.Cause != nil {
		msg += ": " + e.Cause.Error()
	}
	return msg
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *SolveError) Unwrap() error { return e.Cause }

// Is matches the ErrUnrecoverable sentinel.
func (e *SolveError) Is(target error) bool { return target == ErrUnrecoverable }
