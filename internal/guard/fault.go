package guard

import (
	"math"

	"gputrid/internal/matrix"
	"gputrid/internal/num"
)

// FaultKind selects what a deterministic fault injection corrupts.
// Each kind is designed to land a system on a specific rung of the
// escalation ladder, so tests can exercise every rung on demand.
type FaultKind int

const (
	// FaultCorruptSolution perturbs a few entries of the system's
	// fast-path solution (as a mis-applied pivot would), leaving a
	// finite but over-tolerance result: the iterative-refinement rung
	// repairs it.
	FaultCorruptSolution FaultKind = iota
	// FaultZeroDiagonal zeroes the system's leading diagonal
	// coefficient: the very first pivot of every non-pivoting path
	// vanishes, so the fast path emits Inf/NaN, while the matrix stays
	// nonsingular — a row swap fixes it, so the pivoting GTSV rung
	// rescues the system. (Zeroing a random interior diagonal entry
	// would not do: Thomas only needs its *pivots* nonzero, and an
	// interior zero diagonal usually leaves every pivot fine.)
	FaultZeroDiagonal
	// FaultSingularMatrix zeroes the system's entire matrix while
	// keeping a nonzero right-hand side — genuinely unsolvable; every
	// rung fails and the system gets a typed SolveError.
	FaultSingularMatrix
	// FaultNaNCoefficient poisons one input coefficient with NaN —
	// garbage-in, rejected by the per-system input scan with
	// ErrNonFiniteInput before any solver runs.
	FaultNaNCoefficient
)

// String names the fault kind.
func (k FaultKind) String() string {
	switch k {
	case FaultCorruptSolution:
		return "corrupt-solution"
	case FaultZeroDiagonal:
		return "zero-diagonal"
	case FaultSingularMatrix:
		return "singular-matrix"
	case FaultNaNCoefficient:
		return "nan-coefficient"
	default:
		return "unknown-fault"
	}
}

// Fault targets one system with one corruption kind.
type Fault struct {
	System int
	Kind   FaultKind
}

// Injection is the deterministic fault-injection hook of the guarded
// pipeline: the listed faults are applied at seeded pseudo-random rows,
// so a given (Seed, Faults) pair corrupts exactly the same entries on
// every run. Input faults are applied to a private clone of the batch —
// the caller's data is never modified.
type Injection struct {
	Seed   uint64
	Faults []Fault
}

// touchesInput reports whether any fault mutates the input batch (as
// opposed to the fast-path solution).
func (in *Injection) touchesInput() bool {
	for _, f := range in.Faults {
		if f.Kind != FaultCorruptSolution {
			return true
		}
	}
	return false
}

// rng derives the per-fault generator so each fault lands on rows
// independent of the others.
func (in *Injection) rng(f Fault) *num.RNG {
	return num.NewRNG(in.Seed ^ (uint64(f.System)*0x9E3779B97F4A7C15 + uint64(f.Kind) + 1))
}

// injectBatch applies the input-corrupting faults to b (a clone owned
// by the pipeline).
func injectBatch[T num.Real](in *Injection, b *matrix.Batch[T]) {
	for _, f := range in.Faults {
		if f.System < 0 || f.System >= b.M {
			continue
		}
		base := f.System * b.N
		r := in.rng(f)
		switch f.Kind {
		case FaultZeroDiagonal:
			b.Diag[base] = 0
		case FaultSingularMatrix:
			for j := 0; j < b.N; j++ {
				b.Lower[base+j] = 0
				b.Diag[base+j] = 0
				b.Upper[base+j] = 0
				if b.RHS[base+j] == 0 {
					b.RHS[base+j] = 1
				}
			}
		case FaultNaNCoefficient:
			b.Diag[base+r.Intn(b.N)] = T(math.NaN())
		}
	}
}

// injectSolution applies the solution-corrupting faults to the
// fast-path result x (contiguous batch layout, N rows per system).
func injectSolution[T num.Real](in *Injection, x []T, m, n int) {
	for _, f := range in.Faults {
		if f.Kind != FaultCorruptSolution || f.System < 0 || f.System >= m {
			continue
		}
		base := f.System * n
		r := in.rng(f)
		// Corrupt a handful of entries by a factor large enough to blow
		// the residual tolerance but keep everything finite.
		hits := 1 + n/8
		if hits > 8 {
			hits = 8
		}
		for h := 0; h < hits; h++ {
			j := base + r.Intn(n)
			x[j] = x[j]*T(r.Range(1.5, 3)) + T(r.Range(0.5, 1))
		}
	}
}
