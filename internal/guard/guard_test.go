package guard

import (
	"errors"
	"math"
	"testing"

	"gputrid/internal/core"
	"gputrid/internal/gpusim"
	"gputrid/internal/matrix"
	"gputrid/internal/num"
	"gputrid/internal/workload"
)

func cfg() core.Config { return core.Config{Device: gpusim.GTX480()} }

func healthy(m, n int, seed uint64) *matrix.Batch[float64] {
	return workload.Batch[float64](workload.DiagDominant, m, n, seed)
}

func TestAllHealthyStaysOnFastPath(t *testing.T) {
	b := healthy(16, 128, 1)
	res, err := Solve(cfg(), b, Policy{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failed) != 0 {
		t.Fatalf("failed systems on a healthy batch: %v", res.Failed)
	}
	tol := matrix.ResidualTolerance[float64](b.N)
	for _, rep := range res.Reports {
		if rep.Stage != StageFast {
			t.Errorf("system %d escalated to %s on a healthy batch", rep.System, rep.Stage)
		}
		if rep.ResidualAfter > tol {
			t.Errorf("system %d residual %g over tolerance", rep.System, rep.ResidualAfter)
		}
		if rep.CondEst != 0 {
			t.Errorf("system %d: condition estimated without rescue", rep.System)
		}
	}
}

// TestEscalationLadder drives each fault kind onto its intended rung.
func TestEscalationLadder(t *testing.T) {
	const m, n = 8, 96
	for _, tc := range []struct {
		name      string
		kind      FaultKind
		wantStage Stage
		wantErrIs error // nil: system must recover
	}{
		{"refine-only", FaultCorruptSolution, StageRefine, nil},
		{"gtsv-rescue", FaultZeroDiagonal, StagePivot, nil},
		{"unrecoverable", FaultSingularMatrix, StageFailed, ErrUnrecoverable},
		{"garbage-in", FaultNaNCoefficient, StageFailed, ErrNonFiniteInput},
	} {
		t.Run(tc.name, func(t *testing.T) {
			b := healthy(m, n, 7)
			const victim = 3
			pol := Policy{Inject: &Injection{Seed: 42, Faults: []Fault{{System: victim, Kind: tc.kind}}}}
			res, err := Solve(cfg(), b, pol)
			if res == nil {
				t.Fatalf("no result: %v", err)
			}
			rep := res.Reports[victim]
			if rep.Stage != tc.wantStage {
				t.Errorf("victim stage = %s, want %s (report %+v)", rep.Stage, tc.wantStage, rep)
			}
			tol := matrix.ResidualTolerance[float64](n)
			if tc.wantErrIs == nil {
				if err != nil {
					t.Errorf("recoverable fault returned error: %v", err)
				}
				if rep.ResidualAfter > tol {
					t.Errorf("victim residual %g over tolerance after %s", rep.ResidualAfter, rep.Stage)
				}
				if rep.Err != nil {
					t.Errorf("recovered system carries error %v", rep.Err)
				}
			} else {
				if err == nil {
					t.Fatal("unrecoverable fault returned nil error")
				}
				if !errors.Is(err, tc.wantErrIs) {
					t.Errorf("errors.Is(%v, %v) = false", err, tc.wantErrIs)
				}
				var se *SolveError
				if !errors.As(err, &se) {
					t.Fatalf("errors.As found no *SolveError in %v", err)
				}
				if se.System != victim {
					t.Errorf("SolveError.System = %d, want %d", se.System, victim)
				}
				if len(res.Failed) != 1 || res.Failed[0] != rep.Err {
					t.Errorf("Failed list inconsistent with report: %v vs %v", res.Failed, rep.Err)
				}
			}
			if tc.wantStage == StageRefine && rep.Refinements == 0 {
				t.Error("refined system reports zero refinement rounds")
			}
			if tc.wantStage == StagePivot && rep.CondEst <= 0 {
				t.Error("rescued system has no condition estimate")
			}
			// The guarantee the fuzz target also asserts: X is always
			// fully finite, failures are typed instead of NaN-marked.
			for i, v := range res.X {
				if !num.IsFinite(v) {
					t.Fatalf("X[%d] = %v non-finite in guarded result", i, v)
				}
			}
			// Fault isolation: every non-victim stays on the fast path
			// and keeps a passing residual.
			for i, r := range res.Reports {
				if i == victim {
					continue
				}
				if r.Stage != StageFast || r.ResidualAfter > tol {
					t.Errorf("healthy system %d affected: stage %s residual %g", i, r.Stage, r.ResidualAfter)
				}
			}
		})
	}
}

// TestHealthyNeighboursBitwiseUnaffected: injecting faults into chosen
// systems must not change the other systems' solutions at all.
func TestHealthyNeighboursBitwiseUnaffected(t *testing.T) {
	const m, n = 12, 64
	b := healthy(m, n, 11)
	clean, err := Solve(cfg(), b, Policy{})
	if err != nil {
		t.Fatal(err)
	}
	pol := Policy{Inject: &Injection{Seed: 9, Faults: []Fault{
		{System: 2, Kind: FaultZeroDiagonal},
		{System: 5, Kind: FaultSingularMatrix},
		{System: 9, Kind: FaultNaNCoefficient},
	}}}
	dirty, err := Solve(cfg(), b, pol)
	if dirty == nil {
		t.Fatal(err)
	}
	for i := 0; i < m; i++ {
		if i == 2 || i == 5 || i == 9 {
			continue
		}
		for j := 0; j < n; j++ {
			if clean.X[i*n+j] != dirty.X[i*n+j] {
				t.Fatalf("system %d entry %d changed by faults in other systems", i, j)
			}
		}
	}
}

func TestInjectionLeavesCallerBatchUntouched(t *testing.T) {
	b := healthy(4, 32, 3)
	orig := b.Clone()
	pol := Policy{Inject: &Injection{Seed: 1, Faults: []Fault{
		{System: 0, Kind: FaultZeroDiagonal},
		{System: 1, Kind: FaultNaNCoefficient},
		{System: 2, Kind: FaultSingularMatrix},
	}}}
	if res, _ := Solve(cfg(), b, pol); res == nil {
		t.Fatal("no result")
	}
	if d := matrix.MaxAbsDiff(b.Diag, orig.Diag); d != 0 {
		t.Errorf("caller's Diag mutated by injection (max diff %g)", d)
	}
	if d := matrix.MaxAbsDiff(b.RHS, orig.RHS); d != 0 {
		t.Errorf("caller's RHS mutated by injection (max diff %g)", d)
	}
}

func TestInjectionIsDeterministic(t *testing.T) {
	pol := Policy{Inject: &Injection{Seed: 77, Faults: []Fault{
		{System: 1, Kind: FaultCorruptSolution},
		{System: 3, Kind: FaultZeroDiagonal},
	}}}
	a, errA := Solve(cfg(), healthy(6, 80, 5), pol)
	b, errB := Solve(cfg(), healthy(6, 80, 5), pol)
	if a == nil || b == nil {
		t.Fatal(errA, errB)
	}
	if d := matrix.MaxAbsDiff(a.X, b.X); d != 0 {
		t.Errorf("same seed produced different guarded results (max diff %g)", d)
	}
	for i := range a.Reports {
		if a.Reports[i].Stage != b.Reports[i].Stage {
			t.Errorf("system %d: stages differ between identical runs", i)
		}
	}
}

func TestRefinementDisabledFallsThroughToPivot(t *testing.T) {
	pol := Policy{
		MaxRefine: -1,
		Inject:    &Injection{Seed: 4, Faults: []Fault{{System: 0, Kind: FaultCorruptSolution}}},
	}
	res, err := Solve(cfg(), healthy(2, 64, 13), pol)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Reports[0].Stage; got != StagePivot {
		t.Errorf("with refinement disabled, corrupted system used %s, want %s", got, StagePivot)
	}
	if res.Reports[0].Refinements != 0 {
		t.Error("refinement rounds ran despite MaxRefine < 0")
	}
}

func TestDisablePivotFallbackFailsTyped(t *testing.T) {
	pol := Policy{
		DisablePivotFallback: true,
		Inject:               &Injection{Seed: 4, Faults: []Fault{{System: 1, Kind: FaultZeroDiagonal}}},
	}
	res, err := Solve(cfg(), healthy(3, 64, 17), pol)
	if res == nil {
		t.Fatal(err)
	}
	if !errors.Is(err, ErrUnrecoverable) {
		t.Errorf("pivot-disabled failure not ErrUnrecoverable: %v", err)
	}
	rep := res.Reports[1]
	if rep.Stage != StageFailed || rep.Err == nil || rep.Err.Stage != StageRefine {
		t.Errorf("report %+v, want StageFailed with last attempt StageRefine", rep)
	}
}

func TestLooseToleranceAcceptsFastPath(t *testing.T) {
	pol := Policy{
		Tolerance: 1e6, // anything finite passes
		Inject:    &Injection{Seed: 4, Faults: []Fault{{System: 0, Kind: FaultCorruptSolution}}},
	}
	res, err := Solve(cfg(), healthy(2, 64, 19), pol)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Reports[0].Stage; got != StageFast {
		t.Errorf("loose tolerance still escalated to %s", got)
	}
}

func TestSkipConditionEstimate(t *testing.T) {
	pol := Policy{
		SkipConditionEstimate: true,
		Inject:                &Injection{Seed: 2, Faults: []Fault{{System: 0, Kind: FaultZeroDiagonal}}},
	}
	res, err := Solve(cfg(), healthy(2, 48, 23), pol)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reports[0].CondEst != 0 {
		t.Errorf("condition estimated despite SkipConditionEstimate: %g", res.Reports[0].CondEst)
	}
}

func TestStagesSummary(t *testing.T) {
	pol := Policy{Inject: &Injection{Seed: 3, Faults: []Fault{
		{System: 0, Kind: FaultCorruptSolution},
		{System: 1, Kind: FaultZeroDiagonal},
		{System: 2, Kind: FaultSingularMatrix},
	}}}
	res, _ := Solve(cfg(), healthy(8, 64, 29), pol)
	if res == nil {
		t.Fatal("no result")
	}
	got := res.Stages()
	if got[StageFast] != 5 || got[StageRefine] != 1 || got[StagePivot] != 1 || got[StageFailed] != 1 {
		t.Errorf("stage summary = %v, want 5 fast / 1 refine / 1 pivot / 1 failed", got)
	}
}

// TestSingularReportsInfiniteCondition: the typed error of a singular
// system carries the +Inf condition estimate that diagnoses it.
func TestSingularReportsInfiniteCondition(t *testing.T) {
	pol := Policy{Inject: &Injection{Seed: 6, Faults: []Fault{{System: 0, Kind: FaultSingularMatrix}}}}
	res, err := Solve(cfg(), healthy(2, 32, 31), pol)
	if res == nil {
		t.Fatal(err)
	}
	var se *SolveError
	if !errors.As(err, &se) {
		t.Fatalf("no SolveError in %v", err)
	}
	if !math.IsInf(se.CondEst, 1) {
		t.Errorf("singular system CondEst = %g, want +Inf", se.CondEst)
	}
	for j := 0; j < 32; j++ {
		if res.X[j] != 0 {
			t.Fatal("failed system's solution slot not zeroed")
		}
	}
}
