package num

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEps(t *testing.T) {
	if got, want := Eps[float64](), math.Nextafter(1, 2)-1; got != want {
		t.Errorf("Eps[float64] = %g, want %g", got, want)
	}
	if got, want := Eps[float32](), float32(math.Nextafter32(1, 2)-1); got != want {
		t.Errorf("Eps[float32] = %g, want %g", got, want)
	}
}

func TestAbsMaxMin(t *testing.T) {
	if Abs(-3.5) != 3.5 || Abs(3.5) != 3.5 || Abs(0.0) != 0 {
		t.Error("Abs wrong")
	}
	if Max(2.0, 3.0) != 3.0 || Max(3.0, 2.0) != 3.0 {
		t.Error("Max wrong")
	}
	if Min(2.0, 3.0) != 2.0 || Min(3.0, 2.0) != 2.0 {
		t.Error("Min wrong")
	}
}

func TestIsFinite(t *testing.T) {
	if !IsFinite(1.0) || !IsFinite(float32(-1e30)) {
		t.Error("finite values misclassified")
	}
	if IsFinite(math.NaN()) || IsFinite(math.Inf(1)) || IsFinite(math.Inf(-1)) {
		t.Error("non-finite values misclassified")
	}
	if IsFinite(float32(math.NaN())) {
		t.Error("float32 NaN misclassified")
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 1023: 1024, 1024: 1024, 1025: 2048}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestIsPow2(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 1024, 1 << 20} {
		if !IsPow2(n) {
			t.Errorf("IsPow2(%d) = false", n)
		}
	}
	for _, n := range []int{0, -1, -4, 3, 5, 6, 7, 9, 1000} {
		if IsPow2(n) {
			t.Errorf("IsPow2(%d) = true", n)
		}
	}
}

func TestLog2(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 1, 4: 2, 7: 2, 8: 3, 1024: 10}
	for in, want := range cases {
		if got := Log2(in); got != want {
			t.Errorf("Log2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestLog2PanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Log2(0) did not panic")
		}
	}()
	Log2(0)
}

func TestCeilLog2(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4}
	for in, want := range cases {
		if got := CeilLog2(in); got != want {
			t.Errorf("CeilLog2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestCeilDiv(t *testing.T) {
	if CeilDiv(10, 3) != 4 || CeilDiv(9, 3) != 3 || CeilDiv(1, 3) != 1 || CeilDiv(0, 3) != 0 {
		t.Error("CeilDiv wrong")
	}
}

func TestSizeOf(t *testing.T) {
	if SizeOf[float32]() != 4 || SizeOf[float64]() != 8 {
		t.Error("SizeOf wrong")
	}
}

func TestRelDiff(t *testing.T) {
	if RelDiff(1.0, 1.0) != 0 {
		t.Error("RelDiff of equal values not 0")
	}
	if d := RelDiff(1e10, 1.0001e10); d > 1e-3 || d <= 0 {
		t.Errorf("RelDiff scale-insensitivity broken: %g", d)
	}
}

func TestNextPow2Property(t *testing.T) {
	f := func(raw uint16) bool {
		n := int(raw%60000) + 1
		p := NextPow2(n)
		return IsPow2(p) && p >= n && (p == 1 || p/2 < n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := true
	a = NewRNG(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Error("zero seed produced stuck generator")
	}
}

func TestRNGFloat64Bounds(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %g", v)
		}
	}
}

func TestRNGRangeBounds(t *testing.T) {
	r := NewRNG(8)
	for i := 0; i < 1000; i++ {
		v := r.Range(-2, 5)
		if v < -2 || v >= 5 {
			t.Fatalf("Range out of [-2,5): %g", v)
		}
	}
}

func TestRNGIntn(t *testing.T) {
	r := NewRNG(9)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Errorf("Intn(10) only produced %d distinct values in 1000 draws", len(seen))
	}
}

func TestRandomGeneric(t *testing.T) {
	r := NewRNG(10)
	for i := 0; i < 100; i++ {
		v := Random[float32](r, 1, 2)
		if v < 1 || v >= 2 {
			t.Fatalf("Random[float32] out of bounds: %g", v)
		}
	}
}
