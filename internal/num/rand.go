package num

// RNG is a small, fast, deterministic pseudo-random number generator
// (xorshift64*). The workload generators use it instead of math/rand so
// that every experiment in the paper harness is reproducible from a
// seed, independent of Go release or platform.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. A zero seed is remapped
// to a fixed non-zero constant because the xorshift state must never be
// zero.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Float64 returns a pseudo-random number in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Range returns a pseudo-random number in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Intn returns a pseudo-random integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("num: Intn with non-positive bound")
	}
	return int(r.Uint64() % uint64(n))
}

// Real returns a pseudo-random value of type T in [lo, hi).
func Random[T Real](r *RNG, lo, hi T) T {
	return T(r.Range(float64(lo), float64(hi)))
}
