// Package num provides the floating-point type constraint and small
// numeric helpers shared by every solver package in this module.
//
// All solver code in this repository is generic over num.Real so that the
// same kernels run in single precision (the paper's float experiments)
// and double precision (the paper's headline results).
package num

import "math"

// Real is the constraint satisfied by the floating-point element types
// the solvers operate on. It mirrors the paper's use of CUDA float and
// double.
type Real interface {
	~float32 | ~float64
}

// Eps returns the machine epsilon of T: the difference between 1 and the
// least value greater than 1 that is representable in T.
func Eps[T Real]() T {
	var one T = 1
	switch any(one).(type) {
	case float32:
		return T(math.Float32frombits(0x34000000)) // 2^-23
	default:
		return T(math.Float64frombits(0x3CB0000000000000)) // 2^-52
	}
}

// Abs returns |x|.
func Abs[T Real](x T) T {
	if x < 0 {
		return -x
	}
	return x
}

// Max returns the larger of a and b.
func Max[T Real](a, b T) T {
	if a > b {
		return a
	}
	return b
}

// Min returns the smaller of a and b.
func Min[T Real](a, b T) T {
	if a < b {
		return a
	}
	return b
}

// IsFinite reports whether x is neither NaN nor an infinity.
func IsFinite[T Real](x T) bool {
	f := float64(x)
	return !math.IsNaN(f) && !math.IsInf(f, 0)
}

// NextPow2 returns the smallest power of two >= n. NextPow2(0) == 1.
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool {
	return n > 0 && n&(n-1) == 0
}

// Log2 returns floor(log2(n)) for n >= 1.
func Log2(n int) int {
	if n < 1 {
		panic("num: Log2 of non-positive value")
	}
	l := 0
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}

// CeilLog2 returns ceil(log2(n)) for n >= 1.
func CeilLog2(n int) int {
	return Log2(NextPow2(n))
}

// CeilDiv returns ceil(a/b) for positive b.
func CeilDiv(a, b int) int {
	return (a + b - 1) / b
}

// SizeOf returns the byte width of T (4 for float32, 8 for float64).
func SizeOf[T Real]() int {
	var one T = 1
	switch any(one).(type) {
	case float32:
		return 4
	default:
		return 8
	}
}

// RelDiff returns |a-b| / max(|a|, |b|, 1), a scale-insensitive
// difference used by the verification helpers.
func RelDiff[T Real](a, b T) T {
	d := Abs(a - b)
	s := Max(Max(Abs(a), Abs(b)), 1)
	return d / s
}
