package gpusim

// TeslaC2070 returns the HPC-market Fermi (GF100 Tesla): fewer, slower
// SMs than the GTX480 but full-rate double precision (1/2 of SP) and
// ECC-derated bandwidth. Useful for checking that conclusions are not
// artifacts of the GeForce's 1/8-rate DP.
func TeslaC2070() *Device {
	return &Device{
		Name:               "TeslaC2070",
		NumSMs:             14,
		CoresPerSM:         32,
		WarpSize:           32,
		MaxThreadsPerBlock: 1024,
		MaxThreadsPerSM:    1536,
		MaxBlocksPerSM:     8,
		SharedMemPerSM:     48 * 1024,
		ClockHz:            1.15e9,

		SPFlops: 1.03e12,
		DPFlops: 0.515e12,

		GlobalBandwidth:  144e9,
		GlobalLatency:    400 / 1.15e9,
		TransactionBytes: 128,
		MaxInflightPerSM: 64,

		KernelLaunchOverhead: 5e-6,
		BarrierCost:          30e-9,
		SharedAccessCost:     0.6e-9 / 32,
		SharedConflictCost:   0.6e-9,
	}
}

// GTX280 returns the pre-Fermi GT200 GeForce: many narrow SMs, only
// 16 KB of shared memory, half-warp 64-byte coalescing, and a token
// double-precision unit. The tiled window's small footprint is what
// lets the hybrid run at useful k even here (paper §III.A: "expands the
// portability of our method to virtually all GPUs").
func GTX280() *Device {
	return &Device{
		Name:               "GTX280",
		NumSMs:             30,
		CoresPerSM:         8,
		WarpSize:           32,
		MaxThreadsPerBlock: 512,
		MaxThreadsPerSM:    1024,
		MaxBlocksPerSM:     8,
		SharedMemPerSM:     16 * 1024,
		ClockHz:            1.296e9,

		SPFlops: 0.622e12,
		DPFlops: 0.078e12,

		GlobalBandwidth:  141.7e9,
		GlobalLatency:    500 / 1.296e9,
		TransactionBytes: 64,
		MaxInflightPerSM: 32,

		KernelLaunchOverhead: 7e-6,
		BarrierCost:          40e-9,
		SharedAccessCost:     0.77e-9 / 32,
		SharedConflictCost:   0.77e-9,
	}
}

// Devices returns every built-in device preset by name.
func Devices() map[string]*Device {
	return map[string]*Device{
		"gtx480":     GTX480(),
		"teslac2070": TeslaC2070(),
		"gtx280":     GTX280(),
	}
}
