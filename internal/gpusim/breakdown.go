package gpusim

import "fmt"

// Breakdown decomposes an EstimateTime result into its model terms, so
// the harness can report not just how long a kernel takes but what it
// is bound by — the vocabulary of the paper's performance discussion
// (bandwidth-bound back-end, latency-exposed small batches,
// launch-dominated Davidson global phase, ...).
type Breakdown struct {
	Total     float64
	Launch    float64 // kernel-launch overhead
	Bandwidth float64 // DRAM bytes / peak bandwidth
	Latency   float64 // Little's-law latency bound
	Compute   float64 // flops / derated peak
	Shared    float64 // shared traffic + bank conflicts
	Barrier   float64
	Bound     string // the binding constraint: "bandwidth", "latency", "compute", "shared", "launch"
}

// EstimateBreakdown returns the termwise decomposition of the cost
// model for the given stats. EstimateTime(s, elemBytes) ==
// Breakdown.Total exactly, including the uniform Device.SlowFactor
// scaling (every term is scaled, so the binding constraint is
// unchanged by a silent slowdown).
func (d *Device) EstimateBreakdown(s *Stats, elemBytes int) Breakdown {
	bd := Breakdown{}
	bd.Launch = float64(s.Launches) * d.KernelLaunchOverhead
	if s.Blocks == 0 || s.ThreadsPerBlock == 0 {
		bd.Launch *= d.slow()
		bd.Total = bd.Launch
		bd.Bound = "launch"
		return bd
	}

	blocksPerSM := d.Occupancy(s.ThreadsPerBlock, s.SharedPerBlock)
	if blocksPerSM == 0 {
		blocksPerSM = 1
	}
	residentBlocks := blocksPerSM * d.NumSMs
	activeBlocks := s.Blocks
	if activeBlocks > residentBlocks {
		activeBlocks = residentBlocks
	}
	activeThreads := activeBlocks * s.ThreadsPerBlock
	activeWarps := (activeThreads + d.WarpSize - 1) / d.WarpSize
	activeSMs := activeBlocks
	if activeSMs > d.NumSMs {
		activeSMs = d.NumSMs
	}

	bd.Bandwidth = float64(s.TransactionBytes(d.TransactionBytes)) / d.GlobalBandwidth
	const inflightPerWarp = 6
	inflight := activeWarps * inflightPerWarp
	if cap := d.MaxInflightPerSM * activeSMs; inflight > cap {
		inflight = cap
	}
	if inflight < 1 {
		inflight = 1
	}
	bd.Latency = float64(s.Transactions()) * d.GlobalLatency / float64(inflight)

	peak := d.DPFlops
	if elemBytes == 4 {
		peak = d.SPFlops
	}
	knee := float64(d.HardwareParallelism()) / 2
	util := float64(activeThreads) / knee
	if util > 1 {
		util = 1
	}
	bd.Compute = float64(s.Flops) / (peak * util)
	bd.Shared = (float64(s.SharedLoads+s.SharedStores)*d.SharedAccessCost +
		float64(s.SharedBankConflicts)*d.SharedConflictCost) / float64(activeSMs)
	bd.Barrier = float64(s.Barriers) * d.BarrierCost / float64(activeSMs)

	tMem := bd.Bandwidth
	memBound := "bandwidth"
	if bd.Latency > tMem {
		tMem = bd.Latency
		memBound = "latency"
	}
	onChip := bd.Compute + bd.Shared + bd.Barrier
	if onChip > tMem {
		bd.Total = bd.Launch + onChip
		switch {
		case bd.Compute >= bd.Shared && bd.Compute >= bd.Barrier:
			bd.Bound = "compute"
		case bd.Shared >= bd.Barrier:
			bd.Bound = "shared"
		default:
			bd.Bound = "barrier"
		}
	} else {
		bd.Total = bd.Launch + tMem
		bd.Bound = memBound
	}
	if bd.Launch > bd.Total-bd.Launch {
		bd.Bound = "launch"
	}
	if f := d.slow(); f > 1 {
		bd.Launch *= f
		bd.Bandwidth *= f
		bd.Latency *= f
		bd.Compute *= f
		bd.Shared *= f
		bd.Barrier *= f
		bd.Total *= f
	}
	return bd
}

// String formats the breakdown compactly (microseconds).
func (b Breakdown) String() string {
	us := func(x float64) float64 { return x * 1e6 }
	return fmt.Sprintf("total=%.1fus bound=%s (launch=%.1f bw=%.1f lat=%.1f comp=%.1f shmem=%.1f barrier=%.1f)",
		us(b.Total), b.Bound, us(b.Launch), us(b.Bandwidth), us(b.Latency),
		us(b.Compute), us(b.Shared), us(b.Barrier))
}
