package gpusim

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestHealthKindStringRoundTrip(t *testing.T) {
	for k := HealthXID; k <= HealthHealed; k++ {
		got, err := ParseHealthKind(k.String())
		if err != nil {
			t.Fatalf("ParseHealthKind(%q): %v", k.String(), err)
		}
		if got != k {
			t.Fatalf("round trip %v -> %q -> %v", k, k.String(), got)
		}
	}
	if _, err := ParseHealthKind("nope"); err == nil {
		t.Fatal("ParseHealthKind accepted an unknown kind")
	}
}

func TestHealthSeverityPolicyBuckets(t *testing.T) {
	want := map[HealthKind]HealthSeverity{
		HealthXID:            SeverityFatal,
		HealthECCUncorrected: SeverityFatal,
		HealthThermal:        SeverityDegraded,
		HealthECCCorrected:   SeverityInfo,
		HealthHealed:         SeverityRecovery,
	}
	for k, sev := range want {
		if got := k.Severity(); got != sev {
			t.Errorf("%v severity = %v, want %v", k, got, sev)
		}
	}
}

func TestHealthFeedOrderAndDrain(t *testing.T) {
	var f HealthFeed
	ts := time.Unix(100, 0)
	for i := 0; i < 5; i++ {
		f.Inject(HealthEvent{Device: i, Kind: HealthThermal, Time: ts})
	}
	if f.Pending() != 5 || f.Injected() != 5 {
		t.Fatalf("pending %d injected %d, want 5/5", f.Pending(), f.Injected())
	}
	evs := f.Drain()
	for i, ev := range evs {
		if ev.Device != i {
			t.Fatalf("event %d out of injection order: %+v", i, ev)
		}
		if !ev.Time.Equal(ts) {
			t.Fatalf("event %d timestamp %v, want the producer's stamp %v", i, ev.Time, ts)
		}
	}
	if f.Pending() != 0 {
		t.Fatalf("pending after drain = %d", f.Pending())
	}
	if again := f.Drain(); again != nil {
		t.Fatalf("second drain returned %v, want nil", again)
	}
}

func TestHealthFeedConcurrent(t *testing.T) {
	var f HealthFeed
	var wg sync.WaitGroup
	const producers, per = 8, 100
	for g := 0; g < producers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				f.Inject(HealthEvent{Device: g, Kind: HealthECCCorrected})
			}
		}(g)
	}
	wg.Wait()
	if got := len(f.Drain()); got != producers*per {
		t.Fatalf("drained %d events, want %d", got, producers*per)
	}
	if f.Injected() != producers*per {
		t.Fatalf("injected counter %d, want %d", f.Injected(), producers*per)
	}
}

func TestHealthEventString(t *testing.T) {
	cases := []struct {
		ev   HealthEvent
		want string
	}{
		{HealthEvent{Device: 2, Kind: HealthXID, XID: 79, Message: "GPU has fallen off the bus"},
			"device 2: xid 79 (GPU has fallen off the bus)"},
		{HealthEvent{Device: 0, Kind: HealthThermal, Temp: 95},
			"device 0: thermal 95°C"},
		{HealthEvent{Device: 1, Kind: HealthHealed},
			"device 1: healed"},
	}
	for _, c := range cases {
		if got := fmt.Sprint(c.ev); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}
