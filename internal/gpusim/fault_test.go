package gpusim

import (
	"context"
	"errors"
	"math"
	"testing"
)

func TestInjectorDeterministic(t *testing.T) {
	inj := &Injector{Seed: 42, Rate: 0.3}
	type decision struct {
		kind FaultKind
		ok   bool
	}
	var first []decision
	for trial := 0; trial < 3; trial++ {
		var got []decision
		for blk := 0; blk < 200; blk++ {
			for attempt := 0; attempt < 2; attempt++ {
				k, ok := inj.At("kern", blk, attempt)
				got = append(got, decision{k, ok})
			}
		}
		if trial == 0 {
			first = got
			continue
		}
		for i := range got {
			if got[i] != first[i] {
				t.Fatalf("trial %d decision %d = %v, want %v (injector not deterministic)",
					trial, i, got[i], first[i])
			}
		}
	}
	hits := 0
	for i := 0; i < len(first); i += 2 {
		if first[i].ok {
			hits++
		}
	}
	if hits == 0 || hits == 200 {
		t.Fatalf("rate 0.3 over 200 sites faulted %d, want strictly between", hits)
	}
}

func TestInjectorSeedChangesPattern(t *testing.T) {
	a := &Injector{Seed: 1, Rate: 0.2}
	b := &Injector{Seed: 2, Rate: 0.2}
	same := true
	for blk := 0; blk < 200; blk++ {
		_, okA := a.At("kern", blk, 0)
		_, okB := b.At("kern", blk, 0)
		if okA != okB {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 produced identical fault patterns over 200 sites")
	}
}

func TestInjectorScheduleMatching(t *testing.T) {
	inj := &Injector{Schedule: []ScheduledFault{
		{Kernel: "pcr", Block: 3, Kind: FaultAbort},
		{Kernel: "", Block: 7, Kind: FaultHang},
	}}
	if k, ok := inj.At("pcr", 3, 0); !ok || k != FaultAbort {
		t.Errorf("At(pcr, 3, 0) = %v, %v; want abort fault", k, ok)
	}
	if _, ok := inj.At("thomas", 3, 0); ok {
		t.Error("kernel-pinned schedule entry fired for the wrong kernel")
	}
	if _, ok := inj.At("pcr", 4, 0); ok {
		t.Error("block-pinned schedule entry fired for the wrong block")
	}
	if k, ok := inj.At("anything", 7, 0); !ok || k != FaultHang {
		t.Errorf(`At("anything", 7, 0) = %v, %v; want hang (kernel wildcard)`, k, ok)
	}
}

func TestInjectorHealsAfterRepeat(t *testing.T) {
	inj := &Injector{
		Repeat:   2,
		Schedule: []ScheduledFault{{Kernel: "", Block: -1, Kind: FaultAbort}},
	}
	for attempt := 0; attempt < 2; attempt++ {
		if _, ok := inj.At("k", 0, attempt); !ok {
			t.Errorf("attempt %d did not fault, want fault (Repeat=2)", attempt)
		}
	}
	if _, ok := inj.At("k", 0, 2); ok {
		t.Error("attempt 2 still faulting, want healed after Repeat=2")
	}

	// Rate faults heal on the same clock.
	rateInj := &Injector{Seed: 9, Rate: 1}
	if _, ok := rateInj.At("k", 0, 0); !ok {
		t.Fatal("rate 1 attempt 0 did not fault")
	}
	if _, ok := rateInj.At("k", 0, 1); ok {
		t.Error("rate fault still firing on attempt 1, want healed (default Repeat 1)")
	}
}

func TestLaunchAbortFault(t *testing.T) {
	d := GTX480()
	d.Faults = &Injector{Schedule: []ScheduledFault{{Kernel: "k", Block: 2, Kind: FaultAbort}}}
	ran := make([]bool, 4)
	_, err := d.Launch("k", LaunchConfig{Grid: 4, Block: 1}, func(b *Block) {
		ran[b.ID] = true
	})
	var le *LaunchError
	if !errors.As(err, &le) {
		t.Fatalf("Launch error = %v, want *LaunchError", err)
	}
	if le.Kernel != "k" || le.Block != 2 || le.Kind != FaultAbort {
		t.Errorf("LaunchError = %+v, want kernel k block 2 abort", le)
	}
	if ran[2] {
		t.Error("aborted block executed; abort must fire before the block runs")
	}
}

func TestLaunchCorruptFaultPoisonsStores(t *testing.T) {
	d := GTX480()
	d.Faults = &Injector{
		Schedule:      []ScheduledFault{{Kernel: "k", Block: 0, Kind: FaultCorrupt}},
		CorruptStores: 2,
	}
	data := make([]float64, 64)
	g := NewGlobal(data)
	_, err := d.Launch("k", LaunchConfig{Grid: 1, Block: 32}, func(b *Block) {
		b.PhaseNoSync(func(th *Thread) {
			g.Store(th, th.ID, 1)
			g.Store(th, 32+th.ID, 1)
		})
	})
	var le *LaunchError
	if !errors.As(err, &le) || le.Kind != FaultCorrupt {
		t.Fatalf("Launch error = %v, want corrupt *LaunchError", err)
	}
	nans := 0
	for _, v := range data {
		if math.IsNaN(v) {
			nans++
		}
	}
	if nans == 0 || nans > 2 {
		t.Errorf("corrupt fault poisoned %d stores, want 1..2 (CorruptStores=2)", nans)
	}
}

func TestLaunchFaultFreeWithInjectorAttached(t *testing.T) {
	d := GTX480()
	d.Faults = &Injector{Schedule: []ScheduledFault{{Kernel: "other", Block: 0, Kind: FaultAbort}}}
	if _, err := d.Launch("k", LaunchConfig{Grid: 2, Block: 1}, func(b *Block) {}); err != nil {
		t.Fatalf("non-matching schedule faulted the launch: %v", err)
	}
}

func TestRunBlocksCtxCancellation(t *testing.T) {
	d := GTX480()
	e := NewExecutor(d)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := 0
	err := e.RunBlocksCtx(ctx, nil, 1, 0, 8, false, func(b *Block) { ran++ }, FaultSite{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunBlocksCtx error = %v, want context.Canceled", err)
	}
	if ran != 0 {
		t.Errorf("cancelled run executed %d blocks, want 0", ran)
	}
}

func TestRunBlocksCtxRetryAttemptHeals(t *testing.T) {
	d := GTX480()
	inj := &Injector{Schedule: []ScheduledFault{{Kernel: "k", Block: 1, Kind: FaultAbort}}}
	e := NewExecutor(d)
	site := FaultSite{Inj: inj, Kernel: "k"}
	err := e.RunBlocksCtx(nil, nil, 1, 0, 4, false, func(b *Block) {}, site)
	var le *LaunchError
	if !errors.As(err, &le) || le.Block != 1 {
		t.Fatalf("attempt 0 error = %v, want LaunchError at block 1", err)
	}
	site.Attempt = 1
	ran := 0
	if err := e.RunBlocksCtx(nil, nil, 1, 0, 4, false, func(b *Block) { ran++ }, site); err != nil {
		t.Fatalf("attempt 1 still faulting: %v (site must heal after Repeat)", err)
	}
	if ran != 4 {
		t.Errorf("healed attempt ran %d blocks, want 4", ran)
	}
}

func TestRunBlocksCorruptClearsArm(t *testing.T) {
	// After a corrupt fault is reported, the reused executor Block must
	// not keep poisoning stores on the next (fault-free) call.
	d := GTX480()
	inj := &Injector{Schedule: []ScheduledFault{{Kernel: "k", Block: 0, Kind: FaultCorrupt}}}
	e := NewExecutor(d)
	data := make([]float64, 32)
	g := NewGlobal(data)
	kern := func(b *Block) {
		b.PhaseNoSync(func(th *Thread) { g.Store(th, th.ID, 1) })
	}
	if err := e.RunBlocksCtx(nil, nil, 1, 0, 1, false, kern, FaultSite{Inj: inj, Kernel: "k"}); err == nil {
		t.Fatal("corrupt schedule did not fault")
	}
	if err := e.RunBlocksCtx(nil, nil, 1, 0, 1, false, kern, FaultSite{Inj: inj, Kernel: "k", Attempt: 1}); err != nil {
		t.Fatalf("healed attempt faulted: %v", err)
	}
	for i, v := range data {
		if math.IsNaN(v) {
			t.Fatalf("element %d still NaN after healed re-execution", i)
		}
	}
}
