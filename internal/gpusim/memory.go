package gpusim

import (
	"sync/atomic"

	"gputrid/internal/num"
)

// slotState tracks coalescing for one instruction slot within the
// current phase. Threads execute in ascending tid order, so the warp
// index at a given slot is non-decreasing; when it changes, the
// segments touched by the previous warp are flushed as transactions.
type slotState struct {
	warp  int
	store bool
	segs  []int64 // distinct TransactionBytes-aligned segments, current warp
	ldTx  int64
	stTx  int64
}

func (s *slotState) flush() {
	n := int64(len(s.segs))
	if n == 0 {
		return
	}
	if s.store {
		s.stTx += n
	} else {
		s.ldTx += n
	}
	s.segs = s.segs[:0]
}

// record registers one global-memory access by thread t of element i
// of the array at base with the given element size, running the
// coalescing analysis. The norec guard lives in the inlined Load/Store
// wrappers (kept deliberately tiny — the address arithmetic happens
// here, on the recording path), so a replaying kernel pays one
// predictable branch per element instead of a function call.
func (b *Block) record(t *Thread, base, elem int64, i int, store bool) {
	addr := base + int64(i)*elem
	bytes := int(elem)
	slotIdx := t.slot
	t.slot++
	if slotIdx >= len(b.slots) {
		b.slots = append(b.slots, make([]slotState, slotIdx-len(b.slots)+1)...)
		for i := slotIdx; i < len(b.slots); i++ {
			b.slots[i].warp = -1
		}
	}
	s := &b.slots[slotIdx]
	warp := t.ID / b.dev.WarpSize
	if warp != s.warp || store != s.store {
		s.flush()
		s.warp = warp
		s.store = store
	}
	tx := int64(b.dev.TransactionBytes)
	for seg := addr / tx; seg <= (addr+int64(bytes)-1)/tx; seg++ {
		found := false
		for _, have := range s.segs {
			if have == seg {
				found = true
				break
			}
		}
		if !found {
			s.segs = append(s.segs, seg)
		}
	}
	if store {
		b.stats.StoredBytes += int64(bytes)
	} else {
		b.stats.LoadedBytes += int64(bytes)
	}
}

// endPhaseSlots flushes all pending per-slot coalescing state into the
// block stats and resets the slots for the next phase.
func (b *Block) endPhaseSlots() {
	for i := range b.slots {
		s := &b.slots[i]
		s.flush()
		b.stats.LoadTransactions += s.ldTx
		b.stats.StoreTransactions += s.stTx
		s.ldTx, s.stTx = 0, 0
		s.warp = -1
	}
	b.slots = b.slots[:0]
}

// Global is a device-global array of T. Loads and stores through it are
// recorded and coalesced; plain Go indexing of the underlying slice is
// not, so kernels must use Load/Store for all global traffic they want
// accounted (host-side setup code may touch Data freely).
//
// Distinct Global arrays are given disjoint simulated address ranges so
// accesses to different arrays never falsely share a transaction.
type Global[T num.Real] struct {
	Data []T
	base int64
	elem int64
}

// globalArena hands out disjoint simulated base addresses.
var globalArena atomic.Int64

// NewGlobal wraps data as a simulated device-global array.
func NewGlobal[T num.Real](data []T) Global[T] {
	elem := int64(num.SizeOf[T]())
	// Keep arrays aligned to 512 bytes and disjoint.
	size := (int64(len(data))*elem+511)&^511 + 512
	base := globalArena.Add(size) - size
	return Global[T]{Data: data, base: base, elem: elem}
}

// Load reads element i, recording a coalesced global load.
func (g Global[T]) Load(t *Thread, i int) T {
	if !t.blk.norec {
		t.blk.record(t, g.base, g.elem, i, false)
	}
	return g.Data[i]
}

// Store writes element i, recording a coalesced global store. A block
// armed with a corrupt fault (see Injector) poisons selected stores.
func (g Global[T]) Store(t *Thread, i int, v T) {
	if !t.blk.norec {
		t.blk.record(t, g.base, g.elem, i, true)
	}
	if t.blk.corrupt != nil {
		v = corruptStore(t.blk, v)
	}
	g.Data[i] = v
}

// Len returns the number of elements.
func (g Global[T]) Len() int { return len(g.Data) }

// Shared is block-private scratch memory of element type T, the
// simulated equivalent of CUDA __shared__ arrays. Allocation size is
// charged against the device's per-SM capacity for occupancy.
//
// Two access styles exist. Load/Store (and direct Data indexing with
// Block.CountShared) record traffic only. LoadT/StoreT additionally run
// bank-conflict analysis: accesses issued by the threads of one warp at
// the same instruction slot that map distinct addresses to the same
// bank serialize, and the extra cycles are recorded in
// Stats.SharedBankConflicts — the effect Göddeke & Strzodka's
// conflict-free CR (paper ref. [10]) is designed to eliminate.
type Shared[T num.Real] struct {
	Data []T
	blk  *Block
	id   int32
}

// NewShared allocates an n-element shared array in block b.
func NewShared[T num.Real](b *Block, n int) Shared[T] {
	b.stats.SharedPerBlock += n * num.SizeOf[T]()
	b.sharedSeq++
	return Shared[T]{Data: make([]T, n), blk: b, id: b.sharedSeq}
}

// Load reads element i of the shared array.
func (s Shared[T]) Load(i int) T {
	s.blk.stats.SharedLoads++
	return s.Data[i]
}

// Store writes element i of the shared array.
func (s Shared[T]) Store(i int, v T) {
	s.blk.stats.SharedStores++
	if s.blk.corrupt != nil {
		v = corruptStore(s.blk, v)
	}
	s.Data[i] = v
}

// LoadT reads element i with bank-conflict tracking for thread t.
func (s Shared[T]) LoadT(t *Thread, i int) T {
	s.blk.stats.SharedLoads++
	s.blk.bankAccess(t, s.id, i)
	return s.Data[i]
}

// StoreT writes element i with bank-conflict tracking for thread t.
func (s Shared[T]) StoreT(t *Thread, i int, v T) {
	s.blk.stats.SharedStores++
	s.blk.bankAccess(t, s.id, i)
	if s.blk.corrupt != nil {
		v = corruptStore(s.blk, v)
	}
	s.Data[i] = v
}

// Len returns the number of elements.
func (s Shared[T]) Len() int { return len(s.Data) }

// CountShared records shared-memory traffic in bulk. Kernels with hot
// inner loops may index Shared.Data directly and account for the
// accesses with one call per phase instead of per element; the recorded
// totals are identical.
func (b *Block) CountShared(loads, stores int64) {
	b.stats.SharedLoads += loads
	b.stats.SharedStores += stores
}

// ChargeSharedAlloc charges a shared-memory allocation of the given
// byte size against the block, exactly as NewShared does for the array
// it creates. Kernels that keep their shared buffers in reusable host
// slices (re-bound to a new block each launch, instead of allocated
// fresh via NewShared) use it to keep the occupancy accounting
// identical to the allocate-per-block form.
func (b *Block) ChargeSharedAlloc(bytes int) {
	b.stats.SharedPerBlock += bytes
}
