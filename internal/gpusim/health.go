package gpusim

import (
	"fmt"
	"sync"
	"time"
)

// HealthKind enumerates the typed device health events a fleet control
// plane consumes, modeled on the event families a real GPU manager
// surfaces (DCGM health watches): XID driver errors, thermal
// throttling, ECC activity, and recovery. Unlike FaultKind — which
// models *per-launch* transient data faults the retry layer repairs —
// health events are *device-level* control-plane signals: they say
// nothing about any one solve and everything about whether the device
// should keep receiving traffic.
type HealthKind int

const (
	// HealthXID is a fatal driver/device error (e.g. XID 79, "GPU has
	// fallen off the bus"). Policy: cordon the device and drain it.
	HealthXID HealthKind = iota
	// HealthThermal is a thermal-throttle notification: the device
	// still computes correctly but slowly. Policy: deprioritize in
	// routing until a HealthHealed event clears it.
	HealthThermal
	// HealthECCCorrected is a corrected (single-bit) ECC event: no data
	// was harmed, but sustained correction pressure predicts
	// uncorrectable errors. Policy: count; cordon past a threshold.
	HealthECCCorrected
	// HealthECCUncorrected is an uncorrectable (multi-bit) ECC error —
	// fatal for serving. Policy: cordon and drain, like HealthXID.
	HealthECCUncorrected
	// HealthHealed reports the device recovered (reset completed,
	// temperature normal). Policy: uncordon into probation.
	HealthHealed
	// HealthLinkFlaky reports a gray interconnect: the device's link
	// keeps corrupting or dropping transfers (caught by end-to-end
	// integrity checks, so no data was served wrong — but every retry
	// burns latency and the link is untrustworthy). Synthesized by the
	// fleet's gray-failure detector, never by the driver. Policy:
	// cordon and drain, like HealthXID.
	HealthLinkFlaky
	// HealthStraggler reports a silent slowdown: the device computes
	// correctly but consistently slower than its peers (EWMA latency
	// ratio past threshold), dragging every distributed solve it joins.
	// Synthesized by the fleet's gray-failure detector. Policy: cordon
	// and drain.
	HealthStraggler
)

// String names the kind.
func (k HealthKind) String() string {
	switch k {
	case HealthXID:
		return "xid"
	case HealthThermal:
		return "thermal"
	case HealthECCCorrected:
		return "ecc-corrected"
	case HealthECCUncorrected:
		return "ecc-uncorrected"
	case HealthHealed:
		return "healed"
	case HealthLinkFlaky:
		return "link-flaky"
	case HealthStraggler:
		return "straggler"
	default:
		return fmt.Sprintf("health(%d)", int(k))
	}
}

// ParseHealthKind parses the String form back into a kind (scenario
// files and the HTTP injection endpoint speak the string names).
func ParseHealthKind(s string) (HealthKind, error) {
	for k := HealthXID; k <= HealthStraggler; k++ {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("gpusim: unknown health kind %q", s)
}

// HealthSeverity buckets kinds by the policy response they demand.
type HealthSeverity int

const (
	// SeverityFatal: the device must stop receiving traffic (cordon).
	SeverityFatal HealthSeverity = iota
	// SeverityDegraded: the device serves correctly but should be
	// avoided when healthier peers exist.
	SeverityDegraded
	// SeverityInfo: bookkeeping only (corrected ECC below threshold).
	SeverityInfo
	// SeverityRecovery: the device may return to service.
	SeverityRecovery
)

// String names the severity.
func (s HealthSeverity) String() string {
	switch s {
	case SeverityFatal:
		return "fatal"
	case SeverityDegraded:
		return "degraded"
	case SeverityInfo:
		return "info"
	case SeverityRecovery:
		return "recovery"
	default:
		return fmt.Sprintf("severity(%d)", int(s))
	}
}

// Severity maps a kind to its policy bucket. HealthECCCorrected is
// SeverityInfo — single corrected events are normal background noise;
// the *accumulated count* is what escalates, and that policy lives in
// the consumer (the fleet controller), not here.
func (k HealthKind) Severity() HealthSeverity {
	switch k {
	case HealthXID, HealthECCUncorrected, HealthLinkFlaky, HealthStraggler:
		return SeverityFatal
	case HealthThermal:
		return SeverityDegraded
	case HealthHealed:
		return SeverityRecovery
	default:
		return SeverityInfo
	}
}

// HealthEvent is one typed device health observation.
type HealthEvent struct {
	// Device is the fleet index of the device the event concerns.
	Device int
	// Kind is what happened.
	Kind HealthKind
	// XID carries the driver error code for HealthXID events (79 =
	// fallen off the bus, 48 = double-bit ECC, ...); 0 otherwise.
	XID int
	// Temp carries the observed temperature (°C) for HealthThermal
	// events; 0 otherwise.
	Temp float64
	// Message is a free-form human-readable description.
	Message string
	// Time is when the event was observed. Producers stamp it from
	// their clock — the fleet's virtual clock in deterministic
	// scenarios, wall clock in live serving — never from time.Now
	// inside this package, so replays are exact.
	Time time.Time
}

// String formats the event for logs.
func (e HealthEvent) String() string {
	s := fmt.Sprintf("device %d: %s", e.Device, e.Kind)
	switch {
	case e.Kind == HealthXID && e.XID != 0:
		s += fmt.Sprintf(" %d", e.XID)
	case e.Kind == HealthThermal && e.Temp != 0:
		s += fmt.Sprintf(" %.0f°C", e.Temp)
	}
	if e.Message != "" {
		s += " (" + e.Message + ")"
	}
	return s
}

// HealthFeed is the injectable health-event hook: producers (tests,
// scenario runners, an HTTP injection endpoint, or solve paths that
// synthesize ECC events from fault reports) Inject events; the fleet
// controller Drains them at each control-loop tick. Events come out in
// exact injection order, so a scenario that injects a fixed sequence
// replays the same policy decisions every run. The zero value is ready
// to use; all methods are safe for concurrent use.
type HealthFeed struct {
	mu       sync.Mutex
	pending  []HealthEvent
	injected uint64
}

// Inject appends one event to the feed.
func (f *HealthFeed) Inject(ev HealthEvent) {
	f.mu.Lock()
	f.pending = append(f.pending, ev)
	f.injected++
	f.mu.Unlock()
}

// Drain returns every pending event in injection order and clears the
// feed. It returns nil when nothing is pending.
func (f *HealthFeed) Drain() []HealthEvent {
	f.mu.Lock()
	evs := f.pending
	f.pending = nil
	f.mu.Unlock()
	return evs
}

// Pending reports the number of undrained events.
func (f *HealthFeed) Pending() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.pending)
}

// Injected reports the cumulative number of injected events.
func (f *HealthFeed) Injected() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}
