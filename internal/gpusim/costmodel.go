package gpusim

// EstimateTime converts recorded Stats into an estimated kernel
// execution time on the device, in seconds. elemBytes selects the
// arithmetic throughput: 4 uses the single-precision rate, 8 the
// double-precision rate.
//
// The model is deliberately simple and is documented term by term; the
// goal is to reproduce the *structure* the paper argues from, not cycle
// accuracy:
//
//   - Occupancy. Resident blocks per SM follow from the block shape and
//     shared-memory allocation (Device.Occupancy). A grid smaller than
//     the resident capacity leaves SMs idle — the under-utilized regime
//     the paper describes for small M.
//
//   - Memory time. DRAM traffic is Transactions()×TransactionBytes.
//     When enough warps are resident the kernel is bandwidth-bound
//     (bytes / peak bandwidth); with few warps it is latency-bound:
//     Little's law limits throughput to inflight/latency, where the
//     in-flight transaction count grows with active warps. This term
//     produces the flat "latency exposed" region of Figure 12 and its
//     knee once parallelism saturates.
//
//   - Compute time. Recorded flops divided by the precision's peak
//     rate, derated when too few threads are active to fill the
//     pipelines (half of full occupancy is taken as the knee, the
//     usual rule of thumb for Fermi).
//
//   - Shared memory and barriers are charged per access / per barrier,
//     divided over the SMs that actually have work.
//
//   - Each launch pays the fixed driver overhead — the cost that
//     separates Davidson's global-synchronization hybrid (one launch
//     per PCR step) from the paper's single-pass tiled PCR.
//
// On-chip time (compute+shared+barriers) overlaps DRAM traffic on real
// hardware, so the model takes the maximum of the two, plus overheads.
// A silently degraded device (Device.SlowFactor > 1) scales the whole
// estimate uniformly.
func (d *Device) EstimateTime(s *Stats, elemBytes int) float64 {
	if s.Blocks == 0 || s.ThreadsPerBlock == 0 {
		return float64(s.Launches) * d.KernelLaunchOverhead * d.slow()
	}

	// --- occupancy ---
	blocksPerSM := d.Occupancy(s.ThreadsPerBlock, s.SharedPerBlock)
	if blocksPerSM == 0 {
		blocksPerSM = 1 // a block that overflows SM limits still runs, alone
	}
	residentBlocks := blocksPerSM * d.NumSMs
	activeBlocks := s.Blocks
	if activeBlocks > residentBlocks {
		activeBlocks = residentBlocks
	}
	activeThreads := activeBlocks * s.ThreadsPerBlock
	activeWarps := (activeThreads + d.WarpSize - 1) / d.WarpSize
	activeSMs := activeBlocks
	if activeSMs > d.NumSMs {
		activeSMs = d.NumSMs
	}

	// --- memory time ---
	busBytes := float64(s.TransactionBytes(d.TransactionBytes))
	tBandwidth := busBytes / d.GlobalBandwidth
	const inflightPerWarp = 6 // outstanding transactions a warp sustains
	inflight := activeWarps * inflightPerWarp
	if cap := d.MaxInflightPerSM * activeSMs; inflight > cap {
		inflight = cap
	}
	if inflight < 1 {
		inflight = 1
	}
	tLatency := float64(s.Transactions()) * d.GlobalLatency / float64(inflight)
	tMem := tBandwidth
	if tLatency > tMem {
		tMem = tLatency
	}

	// --- compute time ---
	peak := d.DPFlops
	if elemBytes == 4 {
		peak = d.SPFlops
	}
	knee := float64(d.HardwareParallelism()) / 2
	util := float64(activeThreads) / knee
	if util > 1 {
		util = 1
	}
	tComp := float64(s.Flops) / (peak * util)

	// --- shared memory and barriers ---
	tShared := (float64(s.SharedLoads+s.SharedStores)*d.SharedAccessCost +
		float64(s.SharedBankConflicts)*d.SharedConflictCost) / float64(activeSMs)
	tBar := float64(s.Barriers) * d.BarrierCost / float64(activeSMs)

	onChip := tComp + tShared + tBar
	busy := tMem
	if onChip > busy {
		busy = onChip
	}
	return (float64(s.Launches)*d.KernelLaunchOverhead + busy) * d.slow()
}
