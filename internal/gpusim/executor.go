package gpusim

import (
	"context"
	"fmt"
)

// Executor runs kernel blocks sequentially on the caller's goroutine,
// reusing one Block context (and its coalescing-slot capacity) across
// every call. It is the steady-state counterpart of Device.Launch:
// Launch allocates per-launch bookkeeping and fans blocks out over
// goroutines, which is the right shape for a one-shot solve but not
// for a solver handle that runs the same launch geometry every
// timestep. A pipeline creates one Executor per worker up front and
// then drives it with no per-solve heap allocations.
//
// Recording is explicit: with record=true the architectural events of
// every block are accumulated into the caller's Stats (the same totals
// Launch would produce for those blocks); with record=false the kernel
// arithmetic runs but event recording — including the per-element
// coalescing analysis, the dominant simulation cost — is skipped. The
// recorded events are a pure function of the launch geometry and array
// layout, never of the floating-point data (kernels contain no
// data-dependent control flow, and Global arrays are 512-byte aligned
// so the coalescing pattern is base-independent), which is what makes
// record-once / replay-many sound: a replayed solve computes bitwise
// the same solution while the previously recorded Stats still describe
// it exactly.
type Executor struct {
	dev     *Device
	blk     Block
	scratch Stats
}

// NewExecutor creates an executor for the device.
func NewExecutor(d *Device) *Executor {
	return &Executor{dev: d}
}

// RunBlocks executes blocks [first, first+count) of a launch whose
// blocks have threadsPerBlock threads each, invoking kern once per
// block exactly as Launch does. When record is true the events are
// accumulated into st (which must be non-nil) via Stats.Accumulate —
// launch-header fields (Kernel, Launches, Blocks, ThreadsPerBlock) are
// the caller's responsibility. When record is false st may be nil and
// no events are recorded.
//
// The error is the same per-SM shared-memory capacity check Launch
// performs, evaluated per block; it can only trip while recording
// (a replayed geometry was already validated when it was recorded).
func (e *Executor) RunBlocks(st *Stats, threadsPerBlock, first, count int, record bool, kern Kernel) error {
	return e.RunBlocksCtx(nil, st, threadsPerBlock, first, count, record, kern, FaultSite{})
}

// RunBlocksCtx is RunBlocks with cooperative cancellation and fault
// injection. A non-nil ctx is checked between blocks: once it is done,
// execution stops promptly and ctx.Err() is returned, with every block
// either fully executed or never started. When site.Inj is non-nil,
// each block consults the injector at (site.Kernel, block, site.Attempt)
// and a scheduled fault aborts the run with a typed *LaunchError:
// abort/hang faults before the block executes, corrupt faults after it
// executed with poisoned stores. Blocks before the faulted one keep
// their writes — the partial-output hazard the caller's retry repairs
// by re-running the whole range.
func (e *Executor) RunBlocksCtx(ctx context.Context, st *Stats, threadsPerBlock, first, count int, record bool, kern Kernel, site FaultSite) error {
	b := &e.blk
	b.Threads = threadsPerBlock
	b.dev = e.dev
	b.stats = &e.scratch
	b.norec = !record
	for id := first; id < first+count; id++ {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		if site.Inj != nil {
			if kind, ok := site.Inj.At(site.Kernel, id, site.Attempt); ok {
				if kind != FaultCorrupt {
					return &LaunchError{Kernel: site.Kernel, Block: id, Kind: kind, Attempt: site.Attempt}
				}
				b.corrupt = site.Inj.armCorrupt()
			}
		}
		e.scratch = Stats{}
		b.ID = id
		b.sharedSeq = 0
		kern(b)
		b.endPhaseSlots()
		b.endPhaseBankSlots()
		if b.corrupt != nil {
			b.corrupt = nil
			return &LaunchError{Kernel: site.Kernel, Block: id, Kind: FaultCorrupt, Attempt: site.Attempt}
		}
		if !record {
			continue
		}
		if e.scratch.SharedPerBlock > e.dev.SharedMemPerSM {
			return fmt.Errorf("gpusim: block %d allocated %d bytes shared memory, device SM has %d",
				id, e.scratch.SharedPerBlock, e.dev.SharedMemPerSM)
		}
		st.Accumulate(&e.scratch)
	}
	return nil
}
