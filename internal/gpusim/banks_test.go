package gpusim

import "testing"

// launchShared runs a one-block kernel where each thread performs one
// tracked shared load at index f(tid), and returns the recorded
// conflicts.
func launchShared(t *testing.T, threads, arrLen int, f func(tid int) int) int64 {
	t.Helper()
	d := GTX480()
	st, err := d.Launch("banks", LaunchConfig{Grid: 1, Block: threads}, func(b *Block) {
		sh := NewShared[float64](b, arrLen)
		b.PhaseNoSync(func(th *Thread) {
			sh.LoadT(th, f(th.ID))
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	return st.SharedBankConflicts
}

func TestBankUnitStrideNoConflict(t *testing.T) {
	if got := launchShared(t, 32, 32, func(tid int) int { return tid }); got != 0 {
		t.Errorf("unit stride conflicts = %d, want 0", got)
	}
}

func TestBankBroadcastNoConflict(t *testing.T) {
	if got := launchShared(t, 32, 4, func(tid int) int { return 2 }); got != 0 {
		t.Errorf("broadcast conflicts = %d, want 0", got)
	}
}

func TestBankStride32FullConflict(t *testing.T) {
	// All 32 lanes hit bank 0 with distinct addresses: 31 extra cycles.
	if got := launchShared(t, 32, 32*32, func(tid int) int { return tid * 32 }); got != 31 {
		t.Errorf("stride-32 conflicts = %d, want 31", got)
	}
}

func TestBankStride2TwoWayConflict(t *testing.T) {
	// Stride 2: two lanes per bank -> degree 2 -> 1 extra cycle.
	if got := launchShared(t, 32, 64, func(tid int) int { return tid * 2 }); got != 1 {
		t.Errorf("stride-2 conflicts = %d, want 1", got)
	}
}

func TestBankConflictsPerWarp(t *testing.T) {
	// Two warps, each fully conflicted: 2 x 31.
	if got := launchShared(t, 64, 64*32, func(tid int) int { return tid * 32 }); got != 62 {
		t.Errorf("two-warp conflicts = %d, want 62", got)
	}
}

func TestBankDistinctArraysIndependent(t *testing.T) {
	// Same indices in two different arrays must not be treated as the
	// same address (no false broadcast).
	d := GTX480()
	st, err := d.Launch("banks2", LaunchConfig{Grid: 1, Block: 32}, func(b *Block) {
		s1 := NewShared[float64](b, 32*32)
		s2 := NewShared[float64](b, 32*32)
		b.PhaseNoSync(func(th *Thread) {
			// Both arrays accessed at bank-0 addresses; each array's
			// accesses conflict within itself.
			s1.LoadT(th, th.ID*32)
			s2.LoadT(th, th.ID*32)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.SharedBankConflicts != 62 {
		t.Errorf("conflicts = %d, want 62 (31 per array slot)", st.SharedBankConflicts)
	}
}

func TestBankUntrackedAccessesAreFree(t *testing.T) {
	d := GTX480()
	st, err := d.Launch("banks3", LaunchConfig{Grid: 1, Block: 32}, func(b *Block) {
		sh := NewShared[float64](b, 32*32)
		b.PhaseNoSync(func(th *Thread) {
			sh.Load(th.ID * 32) // untracked: traffic counted, no conflict analysis
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.SharedBankConflicts != 0 {
		t.Errorf("untracked accesses produced conflicts: %d", st.SharedBankConflicts)
	}
	if st.SharedLoads != 32 {
		t.Errorf("loads = %d", st.SharedLoads)
	}
}

func TestConflictCostInModel(t *testing.T) {
	d := GTX480()
	base := &Stats{Launches: 1, Blocks: 1, ThreadsPerBlock: 32, SharedLoads: 1 << 20}
	conf := &Stats{Launches: 1, Blocks: 1, ThreadsPerBlock: 32, SharedLoads: 1 << 20,
		SharedBankConflicts: 1 << 20}
	if d.EstimateTime(conf, 8) <= d.EstimateTime(base, 8) {
		t.Error("bank conflicts do not cost time in the model")
	}
}
