package gpusim

import "testing"

func TestPresetsValid(t *testing.T) {
	devs := Devices()
	if len(devs) != 3 {
		t.Fatalf("got %d presets", len(devs))
	}
	for name, d := range devs {
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	// Relationships the models rely on.
	if TeslaC2070().DPFlops <= GTX480().DPFlops {
		t.Error("Tesla's full-rate DP should exceed the GeForce's 1/8 rate")
	}
	if GTX280().SharedMemPerSM >= GTX480().SharedMemPerSM {
		t.Error("GT200 should have less shared memory than Fermi")
	}
	if GTX280().TransactionBytes != 64 {
		t.Error("GT200 coalesces at 64B granularity")
	}
}

func TestValidateAllBranches(t *testing.T) {
	mutations := []func(*Device){
		func(d *Device) { d.NumSMs = 0 },
		func(d *Device) { d.WarpSize = 0 },
		func(d *Device) { d.MaxThreadsPerBlock = 0 },
		func(d *Device) { d.MaxThreadsPerSM = 0 },
		func(d *Device) { d.MaxBlocksPerSM = 0 },
		func(d *Device) { d.SharedMemPerSM = -1 },
		func(d *Device) { d.GlobalBandwidth = 0 },
		func(d *Device) { d.GlobalLatency = 0 },
		func(d *Device) { d.TransactionBytes = 0 },
		func(d *Device) { d.SPFlops = 0 },
		func(d *Device) { d.DPFlops = 0 },
		func(d *Device) { d.MaxInflightPerSM = 0 },
	}
	for i, mutate := range mutations {
		d := GTX480()
		mutate(d)
		if d.Validate() == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestLaunchRejectsInvalidDevice(t *testing.T) {
	d := GTX480()
	d.NumSMs = 0
	if _, err := d.Launch("k", LaunchConfig{Grid: 1, Block: 1}, func(b *Block) {}); err == nil {
		t.Error("invalid device launched")
	}
}

func TestSharedAccessorsAndLens(t *testing.T) {
	d := GTX480()
	st, err := d.Launch("acc", LaunchConfig{Grid: 1, Block: 4}, func(b *Block) {
		sh := NewShared[float64](b, 8)
		if sh.Len() != 8 {
			t.Errorf("Shared.Len = %d", sh.Len())
		}
		b.PhaseNoSync(func(th *Thread) {
			sh.StoreT(th, th.ID, float64(th.ID))
			sh.Store(th.ID+4, 1)
			_ = sh.Load(th.ID)
			th.ThomasSteps(2)
		})
		b.CountShared(10, 20)
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.SharedStores != 28 || st.SharedLoads != 14 {
		t.Errorf("shared counters: loads=%d stores=%d", st.SharedLoads, st.SharedStores)
	}
	if st.Eliminations != 8 || st.Flops != 8*FlopsPerThomasStep {
		t.Errorf("ThomasSteps accounting: elims=%d flops=%d", st.Eliminations, st.Flops)
	}
	g := NewGlobal(make([]float32, 7))
	if g.Len() != 7 {
		t.Errorf("Global.Len = %d", g.Len())
	}
}

func TestLoadEfficiencyNoTraffic(t *testing.T) {
	s := &Stats{}
	if s.LoadEfficiency(128) != 1 {
		t.Error("zero-traffic efficiency should be 1")
	}
}

func TestGTX280Coalescing64B(t *testing.T) {
	// On the GT200 model a warp of unit-stride float64 loads spans
	// 256B = 4 transactions of 64B.
	d := GTX280()
	g := NewGlobal(make([]float64, 32))
	st, err := d.Launch("gt200", LaunchConfig{Grid: 1, Block: 32}, func(b *Block) {
		b.PhaseNoSync(func(th *Thread) {
			g.Load(th, th.ID)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.LoadTransactions != 4 {
		t.Errorf("GT200 transactions = %d, want 4", st.LoadTransactions)
	}
}
