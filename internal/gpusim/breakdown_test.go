package gpusim

import (
	"math"
	"strings"
	"testing"
)

func TestBreakdownTotalsMatchEstimate(t *testing.T) {
	d := GTX480()
	cases := []*Stats{
		{Launches: 1, Blocks: 1000, ThreadsPerBlock: 256, LoadTransactions: 1 << 20, Flops: 1 << 22},
		{Launches: 3, Blocks: 1, ThreadsPerBlock: 32, LoadTransactions: 1 << 18},
		{Launches: 1, Blocks: 64, ThreadsPerBlock: 128, Flops: 1 << 28},
		{Launches: 1, Blocks: 8, ThreadsPerBlock: 64, SharedLoads: 1 << 26, SharedBankConflicts: 1 << 22},
		{Launches: 5},
	}
	for i, s := range cases {
		for _, elem := range []int{4, 8} {
			bd := d.EstimateBreakdown(s, elem)
			if est := d.EstimateTime(s, elem); math.Abs(bd.Total-est) > 1e-15*math.Max(1, est) {
				t.Errorf("case %d elem %d: breakdown total %g != estimate %g", i, elem, bd.Total, est)
			}
		}
	}
}

func TestBreakdownBoundClassification(t *testing.T) {
	d := GTX480()
	// Saturated DRAM streaming: bandwidth bound.
	bw := &Stats{Launches: 1, Blocks: 10000, ThreadsPerBlock: 256, LoadTransactions: 1 << 24}
	if got := d.EstimateBreakdown(bw, 8).Bound; got != "bandwidth" {
		t.Errorf("streaming kernel bound = %q, want bandwidth", got)
	}
	// One resident block with lots of transactions: latency bound.
	lat := &Stats{Launches: 1, Blocks: 1, ThreadsPerBlock: 64, LoadTransactions: 1 << 20}
	if got := d.EstimateBreakdown(lat, 8).Bound; got != "latency" {
		t.Errorf("single-block kernel bound = %q, want latency", got)
	}
	// Flop-heavy: compute bound.
	fl := &Stats{Launches: 1, Blocks: 10000, ThreadsPerBlock: 256, Flops: 1 << 34}
	if got := d.EstimateBreakdown(fl, 8).Bound; got != "compute" {
		t.Errorf("flop kernel bound = %q, want compute", got)
	}
	// Many launches with no work: launch bound.
	ln := &Stats{Launches: 100, Blocks: 1, ThreadsPerBlock: 32}
	if got := d.EstimateBreakdown(ln, 8).Bound; got != "launch" {
		t.Errorf("empty kernels bound = %q, want launch", got)
	}
}

func TestBreakdownString(t *testing.T) {
	d := GTX480()
	s := &Stats{Launches: 1, Blocks: 4, ThreadsPerBlock: 64, LoadTransactions: 1000}
	out := d.EstimateBreakdown(s, 8).String()
	for _, want := range []string{"total=", "bound=", "bw="} {
		if !strings.Contains(out, want) {
			t.Errorf("String() = %q missing %q", out, want)
		}
	}
}
