package gpusim

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// LaunchConfig shapes a kernel launch: a 1-D grid of Grid blocks, each
// with Block threads.
type LaunchConfig struct {
	Grid  int
	Block int
}

// Kernel is the body executed by every thread block of a launch. It
// receives the block context, from which it runs lockstep phases and
// allocates shared memory.
type Kernel func(b *Block)

// Launch executes the kernel over the grid, functionally, and returns
// the recorded Stats. Blocks execute independently (possibly in
// parallel across OS threads); the returned stats are deterministic.
//
// name tags the Stats. The launch itself counts as one kernel launch.
func (d *Device) Launch(name string, cfg LaunchConfig, k Kernel) (*Stats, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if cfg.Grid <= 0 || cfg.Block <= 0 {
		return nil, fmt.Errorf("gpusim: launch %q: invalid config %+v", name, cfg)
	}
	if cfg.Block > d.MaxThreadsPerBlock {
		return nil, fmt.Errorf("gpusim: launch %q: %d threads/block exceeds device limit %d",
			name, cfg.Block, d.MaxThreadsPerBlock)
	}

	// The first injected fault (if any) aborts the launch: workers skip
	// remaining blocks, and the typed error is returned instead of
	// silent success. Fault decisions are deterministic per block, so
	// which blocks completed before the abort may vary with scheduling —
	// exactly the partial-write hazard the retry layer must tolerate —
	// but the reported fault is always the same for a given injector.
	var faulted atomic.Pointer[LaunchError]

	blockStats := make([]Stats, cfg.Grid)
	run := func(id int) {
		if faulted.Load() != nil {
			return
		}
		b := &Block{
			ID:      id,
			Threads: cfg.Block,
			dev:     d,
			stats:   &blockStats[id],
		}
		if d.Faults != nil {
			if kind, ok := d.Faults.At(name, id, 0); ok {
				le := &LaunchError{Kernel: name, Block: id, Kind: kind}
				if kind != FaultCorrupt {
					// Abort/hang: the block never executes.
					faulted.CompareAndSwap(nil, le)
					return
				}
				// Corrupt: the block runs, poisoning some stores; the
				// error is reported once it completes (ECC detection).
				b.corrupt = d.Faults.armCorrupt()
				defer faulted.CompareAndSwap(nil, le)
			}
		}
		k(b)
		b.endPhaseSlots() // flush any pending coalescing state
		b.endPhaseBankSlots()
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > cfg.Grid {
		workers = cfg.Grid
	}
	if workers <= 1 {
		for id := 0; id < cfg.Grid; id++ {
			run(id)
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int, cfg.Grid)
		for id := 0; id < cfg.Grid; id++ {
			next <- id
		}
		close(next)
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for id := range next {
					run(id)
				}
			}()
		}
		wg.Wait()
	}

	if le := faulted.Load(); le != nil {
		return nil, le
	}

	total := &Stats{
		Kernel:          name,
		Launches:        1,
		Blocks:          cfg.Grid,
		ThreadsPerBlock: cfg.Block,
	}
	for i := range blockStats {
		bs := &blockStats[i]
		total.LoadTransactions += bs.LoadTransactions
		total.StoreTransactions += bs.StoreTransactions
		total.LoadedBytes += bs.LoadedBytes
		total.StoredBytes += bs.StoredBytes
		total.SharedLoads += bs.SharedLoads
		total.SharedStores += bs.SharedStores
		total.SharedBankConflicts += bs.SharedBankConflicts
		total.Eliminations += bs.Eliminations
		total.Flops += bs.Flops
		total.Barriers += bs.Barriers
		total.Phases += bs.Phases
		if bs.SharedPerBlock > total.SharedPerBlock {
			total.SharedPerBlock = bs.SharedPerBlock
		}
	}
	if total.SharedPerBlock > d.SharedMemPerSM {
		return total, fmt.Errorf("gpusim: launch %q: block allocated %d bytes shared memory, device SM has %d",
			name, total.SharedPerBlock, d.SharedMemPerSM)
	}
	return total, nil
}

// Block is the per-thread-block execution context handed to kernels.
type Block struct {
	ID      int
	Threads int

	dev       *Device
	stats     *Stats
	slots     []slotState // per-instruction-slot coalescing state, reset each phase
	bankSlots []bankSlotState
	sharedSeq int32
	// norec disables event recording: kernel arithmetic still runs, but
	// global-memory accesses skip the coalescing analysis. The zero
	// value records, so Launch-created blocks behave as always; only the
	// replaying Executor sets it (see Executor and Stats.Accumulate).
	norec bool
	// corrupt, when non-nil, arms the block with an injected corrupt
	// fault: selected stores are poisoned (see Injector). Nil in every
	// fault-free execution, so the store fast path pays one predictable
	// branch.
	corrupt *corruptState
	// thread is the Thread context Phase/PhaseNoSync hand to every
	// tid in turn. It lives in the Block (rather than on the Phase
	// stack frame) because &thread is passed to an opaque func value,
	// which would otherwise force a heap allocation per phase.
	thread Thread
}

// Thread identifies one thread within a phase. It carries the
// instruction-slot cursor used for coalescing analysis.
type Thread struct {
	ID       int // tid within the block
	blk      *Block
	slot     int
	bankSlot int
}

// Phase runs body for every thread of the block in lockstep-equivalent
// order (tid 0..Threads-1) and then executes a block-wide barrier,
// mirroring the "compute; __syncthreads()" structure of the CUDA
// kernels in the paper. Global accesses issued at the same instruction
// slot by threads of one warp are coalesced.
func (b *Block) Phase(body func(t *Thread)) {
	t := &b.thread
	t.blk = b
	for tid := 0; tid < b.Threads; tid++ {
		t.ID = tid
		t.slot = 0
		t.bankSlot = 0
		body(t)
	}
	b.endPhaseSlots()
	b.endPhaseBankSlots()
	b.stats.Phases++
	b.stats.Barriers++
}

// PhaseNoSync is Phase without the trailing barrier, for the final
// phase of a kernel (CUDA kernels need no __syncthreads before exit).
func (b *Block) PhaseNoSync(body func(t *Thread)) {
	t := &b.thread
	t.blk = b
	for tid := 0; tid < b.Threads; tid++ {
		t.ID = tid
		t.slot = 0
		t.bankSlot = 0
		body(t)
	}
	b.endPhaseSlots()
	b.endPhaseBankSlots()
	b.stats.Phases++
}

// Eliminations records n PCR elimination steps (the paper's unit of
// computational cost) performed by the calling thread, charging the
// PCR per-step flop count.
func (t *Thread) Eliminations(n int) {
	t.blk.stats.Eliminations += int64(n)
	t.blk.stats.Flops += int64(n) * FlopsPerElimination
}

// ThomasSteps records n Thomas-recurrence steps (forward or backward
// rows), which are elimination steps in the paper's accounting but
// carry a much lighter flop cost than a PCR row update.
func (t *Thread) ThomasSteps(n int) {
	t.blk.stats.Eliminations += int64(n)
	t.blk.stats.Flops += int64(n) * FlopsPerThomasStep
}

// Flops records n raw floating-point operations not tied to an
// elimination step.
func (t *Thread) Flops(n int) {
	t.blk.stats.Flops += int64(n)
}

// FlopsPerElimination is the flop cost charged per PCR elimination
// step: one row update (Eqs. 5-6) is 2 divisions, 8 multiplications and
// 6 subtractions ≈ 16 flops with division weighted.
const FlopsPerElimination = 16

// FlopsPerThomasStep is the flop cost of one Thomas forward or backward
// row: about 1 division plus 2 multiply-adds ≈ 6 weighted flops.
const FlopsPerThomasStep = 6
