package gpusim

// NumBanks is the number of shared-memory banks (Fermi has 32,
// element-granularity in this model: bank = element index mod 32).
const NumBanks = 32

// bankSlotState tracks one shared-memory instruction slot within the
// current phase: for the warp currently issuing, how many *distinct*
// addresses map to each bank. Identical addresses broadcast and do not
// conflict; distinct addresses in one bank serialize, adding
// (degree − 1) extra cycles for the warp.
type bankSlotState struct {
	warp  int
	seen  []bankAddr // distinct (array, index) pairs this warp-slot
	extra int64      // accumulated conflict cycles
}

type bankAddr struct {
	array int32
	index int32
}

func (s *bankSlotState) flush() {
	if len(s.seen) == 0 {
		return
	}
	var perBank [NumBanks]int32
	maxDeg := int32(0)
	for _, a := range s.seen {
		b := a.index % NumBanks
		perBank[b]++
		if perBank[b] > maxDeg {
			maxDeg = perBank[b]
		}
	}
	if maxDeg > 1 {
		s.extra += int64(maxDeg - 1)
	}
	s.seen = s.seen[:0]
}

// bankAccess records a tracked shared-memory access for conflict
// analysis. It mirrors the global-memory coalescing machinery: threads
// run in ascending tid order within a phase, so warp changes are
// monotone and flush the per-warp state.
func (b *Block) bankAccess(t *Thread, array int32, index int) {
	slotIdx := t.bankSlot
	t.bankSlot++
	if slotIdx >= len(b.bankSlots) {
		b.bankSlots = append(b.bankSlots, make([]bankSlotState, slotIdx-len(b.bankSlots)+1)...)
		for i := slotIdx; i < len(b.bankSlots); i++ {
			b.bankSlots[i].warp = -1
		}
	}
	s := &b.bankSlots[slotIdx]
	warp := t.ID / b.dev.WarpSize
	if warp != s.warp {
		s.flush()
		s.warp = warp
	}
	a := bankAddr{array: array, index: int32(index)}
	for _, have := range s.seen {
		if have == a {
			return // broadcast: same address, no conflict contribution
		}
	}
	s.seen = append(s.seen, a)
}

// endPhaseBankSlots flushes pending bank analysis into the stats.
func (b *Block) endPhaseBankSlots() {
	for i := range b.bankSlots {
		s := &b.bankSlots[i]
		s.flush()
		b.stats.SharedBankConflicts += s.extra
		s.extra = 0
		s.warp = -1
	}
	b.bankSlots = b.bankSlots[:0]
}
