package gpusim

import (
	"fmt"
	"sync"
)

// Link models one interconnect link as the usual latency + bandwidth
// first-order cost: moving b bytes takes Latency + b/Bandwidth seconds.
// Bandwidth is bytes per second, Latency seconds per transfer.
type Link struct {
	Bandwidth float64
	Latency   float64
}

// TransferTime returns the modeled seconds to move bytes over the link.
// A zero-byte transfer is free — no message, no latency.
func (l Link) TransferTime(bytes int64) float64 {
	if bytes <= 0 {
		return 0
	}
	return l.Latency + float64(bytes)/l.Bandwidth
}

// validate reports configuration errors.
func (l Link) validate(name string) error {
	if l.Bandwidth <= 0 {
		return fmt.Errorf("gpusim: %s link: Bandwidth must be positive", name)
	}
	if l.Latency < 0 {
		return fmt.Errorf("gpusim: %s link: negative Latency", name)
	}
	return nil
}

// Interconnect describes how the devices of a Topology talk to the host
// and to each other. Host is the per-device host link (PCIe-like);
// Peer, when non-nil, is a direct device-to-device link (NVLink-like).
// Without a peer link, device-to-device copies stage through host
// memory and pay the host link twice.
type Interconnect struct {
	Name string
	Host Link
	Peer *Link
}

// Validate reports configuration errors.
func (ic Interconnect) Validate() error {
	if err := ic.Host.validate("host"); err != nil {
		return err
	}
	if ic.Peer != nil {
		if err := ic.Peer.validate("peer"); err != nil {
			return err
		}
	}
	return nil
}

// PCIe2 returns the Fermi-era interconnect matching the paper's test
// rig: PCIe 2.0 x16 (8 GB/s theoretical, ~6 GB/s sustained) with no
// peer-to-peer path, so device-to-device traffic stages through the
// host.
func PCIe2() Interconnect {
	return Interconnect{
		Name: "pcie2-x16",
		Host: Link{Bandwidth: 6e9, Latency: 10e-6},
	}
}

// NVLinkMesh returns a modern interconnect: PCIe 3.0 x16 host links
// (~12 GB/s sustained) plus an all-to-all NVLink-class peer mesh
// (~45 GB/s per direction, 2µs latency).
func NVLinkMesh() Interconnect {
	return Interconnect{
		Name: "nvlink-mesh",
		Host: Link{Bandwidth: 12e9, Latency: 5e-6},
		Peer: &Link{Bandwidth: 45e9, Latency: 2e-6},
	}
}

// CommStats aggregates the interconnect traffic a Topology has charged:
// transfer counts, bytes, and modeled seconds, split by host-link and
// peer-link traffic. Seconds are per-link busy time, not wall time —
// transfers on distinct devices' links overlap.
type CommStats struct {
	Transfers     int64
	HaloExchanges int64
	HostBytes     int64
	PeerBytes     int64
	HostSeconds   float64
	PeerSeconds   float64
}

// TotalBytes sums traffic over both link classes.
func (c CommStats) TotalBytes() int64 { return c.HostBytes + c.PeerBytes }

// TotalSeconds sums modeled link-busy seconds over both link classes.
func (c CommStats) TotalSeconds() float64 { return c.HostSeconds + c.PeerSeconds }

// Sub returns c minus prev, for per-solve deltas of a shared topology.
func (c CommStats) Sub(prev CommStats) CommStats {
	return CommStats{
		Transfers:     c.Transfers - prev.Transfers,
		HaloExchanges: c.HaloExchanges - prev.HaloExchanges,
		HostBytes:     c.HostBytes - prev.HostBytes,
		PeerBytes:     c.PeerBytes - prev.PeerBytes,
		HostSeconds:   c.HostSeconds - prev.HostSeconds,
		PeerSeconds:   c.PeerSeconds - prev.PeerSeconds,
	}
}

// Topology is a set of simulated devices joined by an interconnect.
// Kernel execution stays a per-Device concern (including per-device
// fault injection through Device.Faults); the topology adds the part a
// single device cannot model — what moving data between failure
// domains costs. Every transfer method returns the modeled seconds of
// the move and records it into the topology's CommStats. All methods
// are safe for concurrent use.
type Topology struct {
	ic   Interconnect
	devs []*Device

	mu   sync.Mutex
	comm CommStats
}

// NewTopology builds a topology over the given devices. The device
// values are used as-is (not cloned), so callers may attach per-device
// injectors before or after construction.
func NewTopology(ic Interconnect, devs ...*Device) (*Topology, error) {
	if err := ic.Validate(); err != nil {
		return nil, err
	}
	if len(devs) == 0 {
		return nil, fmt.Errorf("gpusim: topology needs at least one device")
	}
	for i, d := range devs {
		if d == nil {
			return nil, fmt.Errorf("gpusim: topology device %d is nil", i)
		}
		if err := d.Validate(); err != nil {
			return nil, fmt.Errorf("gpusim: topology device %d: %w", i, err)
		}
	}
	return &Topology{ic: ic, devs: devs}, nil
}

// UniformTopology builds an n-device topology of independent copies of
// proto. Each copy starts with no fault injector, so per-device faults
// can be scheduled without affecting siblings.
func UniformTopology(n int, ic Interconnect, proto *Device) (*Topology, error) {
	if n <= 0 {
		return nil, fmt.Errorf("gpusim: topology needs at least one device, got %d", n)
	}
	if proto == nil {
		proto = GTX480()
	}
	devs := make([]*Device, n)
	for i := range devs {
		d := *proto
		d.Faults = nil
		d.Name = fmt.Sprintf("%s#%d", proto.Name, i)
		devs[i] = &d
	}
	return NewTopology(ic, devs...)
}

// NumDevices returns the device count.
func (t *Topology) NumDevices() int { return len(t.devs) }

// Device returns device i.
func (t *Topology) Device(i int) *Device { return t.devs[i] }

// Interconnect returns the topology's interconnect description.
func (t *Topology) Interconnect() Interconnect { return t.ic }

// HostToDevice charges an upload of bytes to device dev and returns
// the modeled seconds it takes.
func (t *Topology) HostToDevice(dev int, bytes int64) float64 {
	return t.chargeHost(bytes)
}

// DeviceToHost charges a download of bytes from device dev and returns
// the modeled seconds it takes.
func (t *Topology) DeviceToHost(dev int, bytes int64) float64 {
	return t.chargeHost(bytes)
}

// PeerCopy charges a device-to-device copy. Over a peer link it is one
// transfer; without one it stages through the host and pays the host
// link in both directions.
func (t *Topology) PeerCopy(from, to int, bytes int64) float64 {
	return t.peerCopy(bytes)
}

// HaloExchange charges the neighbor exchange between adjacent slabs:
// both devices send bytes to each other simultaneously. Links are
// full-duplex, so the exchange takes one direction's time, but both
// directions' bytes are recorded.
func (t *Topology) HaloExchange(left, right int, bytes int64) float64 {
	if bytes <= 0 {
		return 0
	}
	oneWay := t.peerCopy(bytes)
	t.mu.Lock()
	t.comm.HaloExchanges++
	// Record the reverse direction's bytes without its (overlapped) time.
	if t.ic.Peer != nil {
		t.comm.PeerBytes += bytes
	} else {
		t.comm.HostBytes += 2 * bytes
	}
	t.mu.Unlock()
	return oneWay
}

// Comm returns a snapshot of the accumulated communication statistics.
func (t *Topology) Comm() CommStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.comm
}

// ResetComm clears the accumulated communication statistics.
func (t *Topology) ResetComm() {
	t.mu.Lock()
	t.comm = CommStats{}
	t.mu.Unlock()
}

func (t *Topology) chargeHost(bytes int64) float64 {
	if bytes <= 0 {
		return 0
	}
	sec := t.ic.Host.TransferTime(bytes)
	t.mu.Lock()
	t.comm.Transfers++
	t.comm.HostBytes += bytes
	t.comm.HostSeconds += sec
	t.mu.Unlock()
	return sec
}

func (t *Topology) peerCopy(bytes int64) float64 {
	if bytes <= 0 {
		return 0
	}
	if t.ic.Peer != nil {
		sec := t.ic.Peer.TransferTime(bytes)
		t.mu.Lock()
		t.comm.Transfers++
		t.comm.PeerBytes += bytes
		t.comm.PeerSeconds += sec
		t.mu.Unlock()
		return sec
	}
	// Host-staged: D2H on the source, then H2D on the destination.
	sec := 2 * t.ic.Host.TransferTime(bytes)
	t.mu.Lock()
	t.comm.Transfers += 2
	t.comm.HostBytes += 2 * bytes
	t.comm.HostSeconds += sec
	t.mu.Unlock()
	return sec
}

// SlabTiming is the modeled cost of one slab's pass on a device: the
// coefficient upload, the on-device elimination, and the result
// download, in seconds.
type SlabTiming struct {
	Upload, Compute, Download float64
}

// PipelinedMakespan models executing the slabs of one device in order,
// serially (each slab's upload → compute → download completes before
// the next begins) and pipelined (upload DMA, compute, and download
// DMA engines run concurrently on a full-duplex link, so slab i+1's
// upload overlaps slab i's compute — the halo/interior overlap of the
// Pipelined-TDMA multi-GPU design). Within each engine, work executes
// FIFO in slab order.
func PipelinedMakespan(slabs []SlabTiming) (serial, pipelined float64) {
	var upFree, compFree, downFree float64
	for _, s := range slabs {
		serial += s.Upload + s.Compute + s.Download

		upFree += s.Upload
		compFree = max(compFree, upFree) + s.Compute
		downFree = max(downFree, compFree) + s.Download
		if downFree > pipelined {
			pipelined = downFree
		}
		if compFree > pipelined {
			pipelined = compFree
		}
	}
	return serial, pipelined
}
