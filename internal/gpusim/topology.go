package gpusim

import (
	"fmt"
	"sync"
)

// Link models one interconnect link as the usual latency + bandwidth
// first-order cost: moving b bytes takes Latency + b/Bandwidth seconds.
// Bandwidth is bytes per second, Latency seconds per transfer.
type Link struct {
	Bandwidth float64
	Latency   float64
}

// TransferTime returns the modeled seconds to move bytes over the link.
// A zero-byte transfer is free — no message, no latency.
func (l Link) TransferTime(bytes int64) float64 {
	if bytes <= 0 {
		return 0
	}
	return l.Latency + float64(bytes)/l.Bandwidth
}

// validate reports configuration errors.
func (l Link) validate(name string) error {
	if l.Bandwidth <= 0 {
		return fmt.Errorf("gpusim: %s link: Bandwidth must be positive", name)
	}
	if l.Latency < 0 {
		return fmt.Errorf("gpusim: %s link: negative Latency", name)
	}
	return nil
}

// Interconnect describes how the devices of a Topology talk to the host
// and to each other. Host is the per-device host link (PCIe-like);
// Peer, when non-nil, is a direct device-to-device link (NVLink-like).
// Without a peer link, device-to-device copies stage through host
// memory and pay the host link twice.
type Interconnect struct {
	Name string
	Host Link
	Peer *Link
}

// Validate reports configuration errors.
func (ic Interconnect) Validate() error {
	if err := ic.Host.validate("host"); err != nil {
		return err
	}
	if ic.Peer != nil {
		if err := ic.Peer.validate("peer"); err != nil {
			return err
		}
	}
	return nil
}

// PCIe2 returns the Fermi-era interconnect matching the paper's test
// rig: PCIe 2.0 x16 (8 GB/s theoretical, ~6 GB/s sustained) with no
// peer-to-peer path, so device-to-device traffic stages through the
// host.
func PCIe2() Interconnect {
	return Interconnect{
		Name: "pcie2-x16",
		Host: Link{Bandwidth: 6e9, Latency: 10e-6},
	}
}

// NVLinkMesh returns a modern interconnect: PCIe 3.0 x16 host links
// (~12 GB/s sustained) plus an all-to-all NVLink-class peer mesh
// (~45 GB/s per direction, 2µs latency).
func NVLinkMesh() Interconnect {
	return Interconnect{
		Name: "nvlink-mesh",
		Host: Link{Bandwidth: 12e9, Latency: 5e-6},
		Peer: &Link{Bandwidth: 45e9, Latency: 2e-6},
	}
}

// CommStats aggregates the interconnect traffic a Topology has charged:
// transfer counts, bytes, and modeled seconds, split by host-link and
// peer-link traffic, plus the link-fault activity charged into the
// traffic. Seconds are per-link busy time, not wall time — transfers on
// distinct devices' links overlap.
type CommStats struct {
	Transfers     int64
	HaloExchanges int64
	HostBytes     int64
	PeerBytes     int64
	HostSeconds   float64
	PeerSeconds   float64

	// Link-fault accounting (see LinkInjector). LinkFaults counts
	// injected faults of any kind; DroppedTransfers the lost attempts of
	// drop faults; CorruptTransfers the silently corrupted deliveries;
	// FaultSeconds the extra modeled link-busy time the faults charged
	// (retried drops plus delay inflation) — already included in
	// HostSeconds/PeerSeconds.
	LinkFaults       int64
	DroppedTransfers int64
	CorruptTransfers int64
	FaultSeconds     float64
}

// TotalBytes sums traffic over both link classes.
func (c CommStats) TotalBytes() int64 { return c.HostBytes + c.PeerBytes }

// TotalSeconds sums modeled link-busy seconds over both link classes.
func (c CommStats) TotalSeconds() float64 { return c.HostSeconds + c.PeerSeconds }

// Sub returns c minus prev. It is only meaningful between two snapshots
// with no concurrent traffic in between: a solve that shares the
// topology with other in-flight solves must use a CommScope for its
// per-solve delta instead — snapshot subtraction cross-charges
// concurrent solves' traffic.
func (c CommStats) Sub(prev CommStats) CommStats {
	return CommStats{
		Transfers:        c.Transfers - prev.Transfers,
		HaloExchanges:    c.HaloExchanges - prev.HaloExchanges,
		HostBytes:        c.HostBytes - prev.HostBytes,
		PeerBytes:        c.PeerBytes - prev.PeerBytes,
		HostSeconds:      c.HostSeconds - prev.HostSeconds,
		PeerSeconds:      c.PeerSeconds - prev.PeerSeconds,
		LinkFaults:       c.LinkFaults - prev.LinkFaults,
		DroppedTransfers: c.DroppedTransfers - prev.DroppedTransfers,
		CorruptTransfers: c.CorruptTransfers - prev.CorruptTransfers,
		FaultSeconds:     c.FaultSeconds - prev.FaultSeconds,
	}
}

// add folds one charged transfer into the stats.
func (c *CommStats) add(d CommStats) {
	c.Transfers += d.Transfers
	c.HaloExchanges += d.HaloExchanges
	c.HostBytes += d.HostBytes
	c.PeerBytes += d.PeerBytes
	c.HostSeconds += d.HostSeconds
	c.PeerSeconds += d.PeerSeconds
	c.LinkFaults += d.LinkFaults
	c.DroppedTransfers += d.DroppedTransfers
	c.CorruptTransfers += d.CorruptTransfers
	c.FaultSeconds += d.FaultSeconds
}

// CommScope is a per-solve accumulator of interconnect traffic. Every
// Transfer that names a scope charges the scope in addition to the
// topology's global stats, so a solve sharing the topology with
// concurrent solves still gets an exact account of its own traffic —
// the snapshot-Sub idiom cross-charges whatever else was in flight.
// The zero value is ready to use; all methods are safe for concurrent
// use.
type CommScope struct {
	mu sync.Mutex
	c  CommStats
}

// Stats snapshots the traffic charged into the scope.
func (s *CommScope) Stats() CommStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.c
}

// Reset clears the scope.
func (s *CommScope) Reset() {
	s.mu.Lock()
	s.c = CommStats{}
	s.mu.Unlock()
}

func (s *CommScope) add(d CommStats) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.c.add(d)
	s.mu.Unlock()
}

// Topology is a set of simulated devices joined by an interconnect.
// Kernel execution stays a per-Device concern (including per-device
// fault injection through Device.Faults); the topology adds the part a
// single device cannot model — what moving data between failure
// domains costs, and what a gray interconnect does to the data in
// flight (Links). Every transfer method returns the modeled seconds of
// the move and records it into the topology's CommStats. All methods
// are safe for concurrent use.
type Topology struct {
	ic   Interconnect
	devs []*Device

	// Links, when non-nil, injects gray interconnect faults into every
	// transfer (see LinkInjector). Attach before solving, never while a
	// transfer is in flight.
	Links *LinkInjector

	mu   sync.Mutex
	comm CommStats
	// seq counts transfers per fault site (op, from, to), the
	// deterministic coordinate link-fault draws are keyed on.
	seq map[linkSite]int
}

type linkSite struct {
	op       LinkOp
	from, to int
}

// NewTopology builds a topology over the given devices. The device
// values are used as-is (not cloned), so callers may attach per-device
// injectors before or after construction.
func NewTopology(ic Interconnect, devs ...*Device) (*Topology, error) {
	if err := ic.Validate(); err != nil {
		return nil, err
	}
	if len(devs) == 0 {
		return nil, fmt.Errorf("gpusim: topology needs at least one device")
	}
	for i, d := range devs {
		if d == nil {
			return nil, fmt.Errorf("gpusim: topology device %d is nil", i)
		}
		if err := d.Validate(); err != nil {
			return nil, fmt.Errorf("gpusim: topology device %d: %w", i, err)
		}
	}
	return &Topology{ic: ic, devs: devs, seq: make(map[linkSite]int)}, nil
}

// UniformTopology builds an n-device topology of independent copies of
// proto. Each copy starts with no fault injector, so per-device faults
// can be scheduled without affecting siblings.
func UniformTopology(n int, ic Interconnect, proto *Device) (*Topology, error) {
	if n <= 0 {
		return nil, fmt.Errorf("gpusim: topology needs at least one device, got %d", n)
	}
	if proto == nil {
		proto = GTX480()
	}
	devs := make([]*Device, n)
	for i := range devs {
		d := *proto
		d.Faults = nil
		d.Name = fmt.Sprintf("%s#%d", proto.Name, i)
		devs[i] = &d
	}
	return NewTopology(ic, devs...)
}

// NumDevices returns the device count.
func (t *Topology) NumDevices() int { return len(t.devs) }

// Device returns device i.
func (t *Topology) Device(i int) *Device { return t.devs[i] }

// Interconnect returns the topology's interconnect description.
func (t *Topology) Interconnect() Interconnect { return t.ic }

// HostToDevice charges an upload of bytes to device dev and returns
// the modeled seconds it takes.
func (t *Topology) HostToDevice(dev int, bytes int64) float64 {
	return t.Transfer(nil, OpHostToDevice, -1, dev, bytes).Seconds
}

// DeviceToHost charges a download of bytes from device dev and returns
// the modeled seconds it takes.
func (t *Topology) DeviceToHost(dev int, bytes int64) float64 {
	return t.Transfer(nil, OpDeviceToHost, dev, -1, bytes).Seconds
}

// PeerCopy charges a device-to-device copy. Over a peer link it is one
// transfer; without one it stages through the host and pays the host
// link in both directions.
func (t *Topology) PeerCopy(from, to int, bytes int64) float64 {
	return t.Transfer(nil, OpPeerCopy, from, to, bytes).Seconds
}

// HaloExchange charges the neighbor exchange between adjacent slabs:
// both devices send bytes to each other simultaneously. Links are
// full-duplex, so the exchange takes one direction's time, but both
// directions' bytes are recorded.
func (t *Topology) HaloExchange(left, right int, bytes int64) float64 {
	return t.Transfer(nil, OpHaloExchange, left, right, bytes).Seconds
}

// Transfer charges one interconnect operation, running it through the
// link-fault injector (Links) when one is attached, and returns the
// full report: total modeled seconds (drop retries and delay inflation
// included) plus whether the payload arrived corrupted. A non-nil scope
// receives an exact copy of everything charged, attributing the
// traffic to the calling solve even when concurrent solves share the
// topology. Endpoint -1 means the host.
func (t *Topology) Transfer(scope *CommScope, op LinkOp, from, to int, bytes int64) TransferReport {
	if bytes <= 0 {
		return TransferReport{}
	}

	// One fault decision per transfer, keyed on the site's own
	// deterministic sequence counter.
	var kind LinkFaultKind
	var faulted bool
	t.mu.Lock()
	if t.seq == nil {
		t.seq = make(map[linkSite]int)
	}
	site := linkSite{op, from, to}
	n := t.seq[site]
	t.seq[site] = n + 1
	t.mu.Unlock()
	kind, faulted = t.Links.At(op, from, to, n)

	// Fault-free cost of the operation.
	var d CommStats
	var oneWay float64
	peer := t.ic.Peer != nil
	switch op {
	case OpHostToDevice, OpDeviceToHost:
		oneWay = t.ic.Host.TransferTime(bytes)
		d.Transfers, d.HostBytes, d.HostSeconds = 1, bytes, oneWay
	case OpPeerCopy, OpHaloExchange:
		if peer {
			oneWay = t.ic.Peer.TransferTime(bytes)
			d.Transfers, d.PeerBytes, d.PeerSeconds = 1, bytes, oneWay
		} else {
			// Host-staged: D2H on the source, then H2D on the destination.
			oneWay = 2 * t.ic.Host.TransferTime(bytes)
			d.Transfers, d.HostBytes, d.HostSeconds = 2, 2*bytes, oneWay
		}
		if op == OpHaloExchange {
			// Record the reverse direction's bytes without its
			// (overlapped, full-duplex) time.
			d.HaloExchanges = 1
			if peer {
				d.PeerBytes += bytes
			} else {
				d.HostBytes += 2 * bytes
			}
		}
	}

	rep := TransferReport{Seconds: oneWay}
	if faulted {
		d.LinkFaults = 1
		switch kind {
		case LinkCorrupt:
			d.CorruptTransfers = 1
			rep.Corrupt = true
		case LinkDrop:
			drops := t.Links.dropRetries()
			extra := float64(drops) * oneWay
			d.DroppedTransfers = int64(drops)
			d.FaultSeconds = extra
			rep.Drops = drops
			rep.Seconds += extra
		case LinkDelay:
			extra := (t.Links.delayFactor() - 1) * oneWay
			d.FaultSeconds = extra
			rep.Delayed = true
			rep.Seconds += extra
		}
		// The extra busy time lands on the link class that carried it.
		if d.HostSeconds > 0 {
			d.HostSeconds += d.FaultSeconds
		} else {
			d.PeerSeconds += d.FaultSeconds
		}
	}

	t.mu.Lock()
	t.comm.add(d)
	t.mu.Unlock()
	scope.add(d)
	return rep
}

// Comm returns a snapshot of the accumulated communication statistics.
func (t *Topology) Comm() CommStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.comm
}

// ResetComm clears the accumulated communication statistics and the
// per-site fault sequence counters, so a fresh run redraws the same
// fault sites.
func (t *Topology) ResetComm() {
	t.mu.Lock()
	t.comm = CommStats{}
	t.seq = make(map[linkSite]int)
	t.mu.Unlock()
}

// SlabTiming is the modeled cost of one slab's pass on a device: the
// coefficient upload, the on-device elimination, and the result
// download, in seconds.
type SlabTiming struct {
	Upload, Compute, Download float64
}

// Total sums the slab's modeled phases.
func (s SlabTiming) Total() float64 { return s.Upload + s.Compute + s.Download }

// PipelinedMakespan models executing the slabs of one device in order,
// serially (each slab's upload → compute → download completes before
// the next begins) and pipelined (upload DMA, compute, and download
// DMA engines run concurrently on a full-duplex link, so slab i+1's
// upload overlaps slab i's compute — the halo/interior overlap of the
// Pipelined-TDMA multi-GPU design). Within each engine, work executes
// FIFO in slab order.
func PipelinedMakespan(slabs []SlabTiming) (serial, pipelined float64) {
	var upFree, compFree, downFree float64
	for _, s := range slabs {
		serial += s.Upload + s.Compute + s.Download

		upFree += s.Upload
		compFree = max(compFree, upFree) + s.Compute
		downFree = max(downFree, compFree) + s.Download
		if downFree > pipelined {
			pipelined = downFree
		}
		if compFree > pipelined {
			pipelined = compFree
		}
	}
	return serial, pipelined
}
