package gpusim

import (
	"fmt"
	"math"

	"gputrid/internal/num"
)

// FaultKind selects which transient execution fault the injector models.
// All kinds are detected faults: the launch reports a LaunchError
// instead of silently returning corrupted results, mirroring how a real
// driver surfaces an ECC error, a launch failure, or a watchdog kill.
type FaultKind int

const (
	// FaultAbort kills the launch before the faulted block runs. Blocks
	// already executed keep their writes, later blocks never run — the
	// partially-written-output hazard a retry must repair.
	FaultAbort FaultKind = iota
	// FaultCorrupt lets the faulted block run but poisons a bounded
	// number of its global/shared stores (modeling an ECC-detected
	// multi-bit upset); the launch reports the error after the block
	// completes, so every poisoned word is reachable by the caller
	// until the shard is re-executed.
	FaultCorrupt
	// FaultHang stalls the faulted block forever; the watchdog kills the
	// launch after its budget. Like FaultAbort nothing at or after the
	// faulted block completes, but the caller is charged the watchdog
	// budget as wasted modeled time.
	FaultHang

	numFaultKinds = 3
)

// String names the fault kind.
func (k FaultKind) String() string {
	switch k {
	case FaultAbort:
		return "abort"
	case FaultCorrupt:
		return "corrupt"
	case FaultHang:
		return "hang"
	default:
		return fmt.Sprintf("fault(%d)", int(k))
	}
}

// LaunchError is the typed failure of a kernel launch that hit an
// injected transient fault. It is returned by Device.Launch and
// Executor.RunBlocksCtx instead of silent success, and is matchable
// with errors.As through every wrapping layer.
type LaunchError struct {
	// Kernel is the launch's kernel name.
	Kernel string
	// Block is the grid index of the faulted block.
	Block int
	// Kind is what went wrong.
	Kind FaultKind
	// Attempt is the retry attempt (0 = first execution) that faulted.
	Attempt int
}

// Error formats the fault.
func (e *LaunchError) Error() string {
	return fmt.Sprintf("gpusim: kernel %q block %d: transient %s fault (attempt %d)",
		e.Kernel, e.Block, e.Kind, e.Attempt)
}

// Transient reports whether re-running the launch can succeed. Every
// modeled kind is transient — permanent device loss is out of scope.
func (e *LaunchError) Transient() bool { return true }

// ScheduledFault pins a fault to explicit coordinates, for tests and
// demos that need a specific kernel/block to fail deterministically.
type ScheduledFault struct {
	// Kernel matches the launch's kernel name; "" matches any kernel.
	Kernel string
	// Block matches the grid index; negative matches any block.
	Block int
	// Kind is the fault to inject.
	Kind FaultKind
	// Repeat is how many consecutive attempts of the site keep
	// faulting before it heals; 0 applies the injector default.
	Repeat int
}

// Injector is a seeded, schedulable source of transient device faults.
// Whether a fault fires is a pure function of (Seed, kernel, block,
// attempt) — never of wall-clock time or goroutine scheduling — so a
// given injector reproduces exactly the same fault pattern on every
// run, concurrent shards included, and a retried attempt redraws
// deterministically.
//
// Faults come from two sources: the explicit Schedule, and a seeded
// per-(kernel, block) Bernoulli draw at probability Rate. A faulted
// site keeps failing for Repeat consecutive attempts and then heals
// (the transient-fault model), so recovery converges whenever the
// retry budget is at least Repeat.
//
// Attach an injector to Device.Faults before launching. The zero value
// injects nothing.
type Injector struct {
	// Seed drives every pseudo-random decision.
	Seed uint64
	// Rate is the per-(kernel, block) fault probability in [0, 1].
	Rate float64
	// Kinds is drawn from for rate faults; empty means all kinds.
	Kinds []FaultKind
	// Repeat is how many consecutive attempts a faulted site keeps
	// failing before it heals; 0 means 1 (a one-shot transient).
	Repeat int
	// CorruptStores bounds the stores poisoned per corrupt fault;
	// 0 means 4.
	CorruptStores int
	// Schedule lists explicit faults, applied before the rate draw.
	Schedule []ScheduledFault
	// Gate dynamically arms and disarms the injector: when non-nil and
	// returning false, no fault fires. It must be safe for concurrent
	// use (e.g. read an atomic.Bool); fault-regime sweeps and breaker
	// recovery tests flip it between solves to model a fault burst that
	// heals. Nil means always armed.
	Gate func() bool
}

func (in *Injector) repeat() int {
	if in.Repeat <= 0 {
		return 1
	}
	return in.Repeat
}

func (in *Injector) corruptStores() int {
	if in.CorruptStores <= 0 {
		return 4
	}
	return in.CorruptStores
}

// At decides whether block `block` of kernel `kernel` faults on the
// given attempt, and with which kind. It is safe for concurrent use.
func (in *Injector) At(kernel string, block, attempt int) (FaultKind, bool) {
	if in == nil {
		return 0, false
	}
	if in.Gate != nil && !in.Gate() {
		return 0, false
	}
	for _, f := range in.Schedule {
		if f.Kernel != "" && f.Kernel != kernel {
			continue
		}
		if f.Block >= 0 && f.Block != block {
			continue
		}
		rep := f.Repeat
		if rep <= 0 {
			rep = in.repeat()
		}
		if attempt < rep {
			return f.Kind, true
		}
		return 0, false
	}
	if in.Rate <= 0 || attempt >= in.repeat() {
		return 0, false
	}
	h := siteHash(in.Seed, kernel, block)
	if float64(h>>11)/(1<<53) >= in.Rate {
		return 0, false
	}
	kinds := in.Kinds
	if len(kinds) == 0 {
		return FaultKind(mix64(h) % numFaultKinds), true
	}
	return kinds[mix64(h)%uint64(len(kinds))], true
}

// siteHash hashes the fault coordinates: FNV-1a over the kernel name,
// mixed with the seed and block index through splitmix64 finalizers.
func siteHash(seed uint64, kernel string, block int) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(kernel); i++ {
		h = (h ^ uint64(kernel[i])) * 1099511628211
	}
	return mix64(h ^ mix64(seed) ^ mix64(uint64(block)*0x9E3779B97F4A7C15+1))
}

func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// FaultSite carries the fault-injection coordinates of one launch into
// Executor.RunBlocksCtx: which injector (nil disables injection), the
// kernel name faults are keyed on, and the retry attempt. The zero
// value injects nothing.
type FaultSite struct {
	Inj     *Injector
	Kernel  string
	Attempt int
}

// corruptState is the per-block countdown a corrupt fault arms: every
// stride-th store through the block is poisoned until the budget is
// spent. It lives behind a single nil-check on the store fast path.
type corruptState struct {
	stride int
	left   int
	seq    int
}

func (in *Injector) armCorrupt() *corruptState {
	// A small prime stride spreads the poisoned words across the
	// block's output instead of clustering them at the front.
	return &corruptState{stride: 5, left: in.corruptStores()}
}

// corruptStore poisons v when the block's armed corrupt fault selects
// this store. NaN is deliberate: it is the loudest possible corruption,
// so a recovery layer that fails to re-execute the shard cannot pass a
// bitwise-identity test by luck.
func corruptStore[T num.Real](b *Block, v T) T {
	c := b.corrupt
	c.seq++
	if c.left <= 0 || c.seq%c.stride != 0 {
		return v
	}
	c.left--
	return T(math.NaN())
}
