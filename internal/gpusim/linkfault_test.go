package gpusim

import (
	"math"
	"sync"
	"testing"
)

// Two topologies with identically-seeded injectors must charge exactly
// the same fault sites, penalties, and stats for the same transfer
// sequence — the determinism contract everything downstream (bitwise
// replay, fuzzing) stands on.
func TestLinkInjectorDeterministic(t *testing.T) {
	run := func() (CommStats, []TransferReport) {
		topo, err := UniformTopology(4, NVLinkMesh(), GTX480())
		if err != nil {
			t.Fatal(err)
		}
		topo.Links = &LinkInjector{Seed: 42, Rate: 0.3}
		var reps []TransferReport
		for i := 0; i < 50; i++ {
			reps = append(reps, topo.Transfer(nil, OpHostToDevice, -1, i%4, 1024))
			reps = append(reps, topo.Transfer(nil, OpHaloExchange, i%4, (i+1)%4, 4096))
			reps = append(reps, topo.Transfer(nil, OpPeerCopy, i%4, (i+2)%4, 512))
		}
		return topo.Comm(), reps
	}
	c1, r1 := run()
	c2, r2 := run()
	if c1 != c2 {
		t.Fatalf("same seed, different stats:\n%+v\n%+v", c1, c2)
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("transfer %d: same seed, different report: %+v vs %+v", i, r1[i], r2[i])
		}
	}
	if c1.LinkFaults == 0 {
		t.Fatal("rate 0.3 over 150 transfers injected nothing")
	}
}

// A scheduled fault must hit exactly the pinned site and heal after its
// Repeat budget, and faults must charge the modeled penalties they
// advertise.
func TestLinkInjectorScheduleAndCharges(t *testing.T) {
	topo, err := UniformTopology(2, PCIe2(), GTX480())
	if err != nil {
		t.Fatal(err)
	}
	topo.Links = &LinkInjector{
		DropRetries: 2,
		DelayFactor: 3,
		Schedule: []ScheduledLinkFault{
			{Op: OpHostToDevice, From: MatchAny, To: 1, Index: 0, Kind: LinkCorrupt},
			{Op: OpDeviceToHost, From: 0, To: MatchAny, Index: -1, Kind: LinkDrop, Repeat: 1},
			{Op: OpHaloExchange, From: MatchAny, To: MatchAny, Index: 1, Kind: LinkDelay},
		},
	}

	if rep := topo.Transfer(nil, OpHostToDevice, -1, 1, 100); !rep.Corrupt {
		t.Fatal("pinned corrupt fault did not fire")
	}
	if rep := topo.Transfer(nil, OpHostToDevice, -1, 1, 100); rep.Corrupt {
		t.Fatal("Index=0 fault fired again at seq 1")
	}
	if rep := topo.Transfer(nil, OpHostToDevice, -1, 0, 100); rep.Corrupt {
		t.Fatal("fault fired on unmatched endpoint")
	}

	clean := topo.Interconnect().Host.TransferTime(100)
	rep := topo.Transfer(nil, OpDeviceToHost, 0, -1, 100)
	if rep.Drops != 2 {
		t.Fatalf("drop fault charged %d retries, want DropRetries=2", rep.Drops)
	}
	if want := 3 * clean; math.Abs(rep.Seconds-want) > 1e-15 {
		t.Fatalf("dropped transfer charged %g s, want %g", rep.Seconds, want)
	}
	if rep = topo.Transfer(nil, OpDeviceToHost, 0, -1, 100); rep.Drops != 0 {
		t.Fatal("Repeat=1 drop fault did not heal at seq 1")
	}

	// Halo on PCIe2 stages through the host: one-way time is 2x host.
	haloClean := 2 * topo.Interconnect().Host.TransferTime(100)
	if rep = topo.Transfer(nil, OpHaloExchange, 0, 1, 100); rep.Delayed {
		t.Fatal("Index=1 delay fired at seq 0")
	}
	rep = topo.Transfer(nil, OpHaloExchange, 0, 1, 100)
	if !rep.Delayed {
		t.Fatal("pinned delay fault did not fire at seq 1")
	}
	if want := 3 * haloClean; math.Abs(rep.Seconds-want) > 1e-15 {
		t.Fatalf("delayed halo charged %g s, want DelayFactor*clean = %g", rep.Seconds, want)
	}

	c := topo.Comm()
	if c.LinkFaults != 3 || c.CorruptTransfers != 1 || c.DroppedTransfers != 2 {
		t.Fatalf("fault counters wrong: %+v", c)
	}
	if c.FaultSeconds <= 0 {
		t.Fatal("fault seconds not charged")
	}
}

// CommScope must attribute exactly the traffic of its own transfers,
// even when concurrent solves hammer the shared topology — the
// lost-update the snapshot-Sub idiom suffers from.
func TestCommScopeExactUnderConcurrency(t *testing.T) {
	topo, err := UniformTopology(4, NVLinkMesh(), GTX480())
	if err != nil {
		t.Fatal(err)
	}
	const workers, per = 8, 200
	scopes := make([]*CommScope, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		scopes[w] = &CommScope{}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				topo.Transfer(scopes[w], OpHostToDevice, -1, w%4, int64(100+w))
				topo.Transfer(scopes[w], OpHaloExchange, w%4, (w+1)%4, 64)
			}
		}(w)
	}
	wg.Wait()

	var sum CommStats
	for w, sc := range scopes {
		c := sc.Stats()
		if c.Transfers != 2*per {
			t.Fatalf("scope %d saw %d transfers, want %d", w, c.Transfers, 2*per)
		}
		if want := per * int64(100+w); c.HostBytes != want {
			t.Fatalf("scope %d cross-charged: host bytes %d, want %d", w, c.HostBytes, want)
		}
		sum.add(c)
	}
	total := topo.Comm()
	// Counters must match exactly; the seconds fields are float sums
	// accumulated in different orders, so allow rounding slack.
	sumInts := [6]int64{sum.Transfers, sum.HaloExchanges, sum.HostBytes, sum.PeerBytes, sum.LinkFaults, sum.DroppedTransfers}
	totInts := [6]int64{total.Transfers, total.HaloExchanges, total.HostBytes, total.PeerBytes, total.LinkFaults, total.DroppedTransfers}
	if sumInts != totInts {
		t.Fatalf("scopes don't sum to global stats:\nsum   %+v\nglobal %+v", sum, total)
	}
	if math.Abs(sum.HostSeconds-total.HostSeconds) > 1e-9 ||
		math.Abs(sum.PeerSeconds-total.PeerSeconds) > 1e-9 {
		t.Fatalf("scope seconds diverge from global:\nsum   %+v\nglobal %+v", sum, total)
	}
}

// SlowFactor must scale EstimateTime uniformly and keep the
// EstimateBreakdown Total == EstimateTime contract exact.
func TestSlowFactorScalesEstimates(t *testing.T) {
	base := GTX480()
	slow := GTX480()
	slow.SlowFactor = 2.5

	s := &Stats{Launches: 3, Blocks: 64, ThreadsPerBlock: 128, Flops: 1 << 20,
		LoadTransactions: 1 << 12, LoadedBytes: 1 << 19,
		Barriers: 200, SharedLoads: 5000, SharedStores: 5000}
	t0 := base.EstimateTime(s, 8)
	t1 := slow.EstimateTime(s, 8)
	if math.Abs(t1-2.5*t0) > 1e-12*t0 {
		t.Fatalf("SlowFactor=2.5: time %g, want %g", t1, 2.5*t0)
	}
	for _, d := range []*Device{base, slow} {
		if bd := d.EstimateBreakdown(s, 8); bd.Total != d.EstimateTime(s, 8) {
			t.Fatalf("%s: breakdown total %g != estimate %g (SlowFactor=%g)",
				d.Name, bd.Total, d.EstimateTime(s, 8), d.SlowFactor)
		}
	}
	// No event, no error: the slowdown is silent by construction.
	if slow.Faults != nil {
		t.Fatal("slow device grew a fault injector")
	}
}
