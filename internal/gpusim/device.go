// Package gpusim is a functional and analytic simulator of the GPU
// execution model the paper targets (NVIDIA Fermi-class, CUDA
// terminology). It substitutes for real GPU hardware in this
// reproduction: kernels written against it execute for real (so solver
// correctness is genuinely exercised) while the simulator records the
// architectural events the paper's performance arguments are built on —
// global-memory transactions after coalescing, shared-memory traffic,
// elimination steps, barriers, kernel launches, and occupancy — and
// converts them to an estimated execution time with a
// bandwidth/latency/throughput model.
//
// The execution model mirrors CUDA:
//
//   - a kernel is launched over a 1-D grid of thread blocks;
//   - each block has a fixed number of threads and private shared memory;
//   - threads within a block run in lockstep phases separated by
//     barriers (Block.Phase is the moral equivalent of code between
//     __syncthreads() calls);
//   - global memory accesses issued by the threads of a warp at the same
//     instruction slot coalesce into aligned transactions.
package gpusim

import "fmt"

// Device describes the simulated processor. All bandwidths are bytes
// per second and all times seconds.
type Device struct {
	Name string

	// Parallelism.
	NumSMs             int // streaming multiprocessors
	CoresPerSM         int // scalar execution units per SM
	WarpSize           int
	MaxThreadsPerBlock int
	MaxThreadsPerSM    int
	MaxBlocksPerSM     int
	SharedMemPerSM     int // bytes
	ClockHz            float64

	// Arithmetic throughput, in fused elimination-relevant FLOP/s.
	SPFlops float64 // peak single-precision
	DPFlops float64 // peak double-precision

	// Memory system.
	GlobalBandwidth  float64 // peak DRAM bandwidth
	GlobalLatency    float64 // load-to-use latency, seconds
	TransactionBytes int     // coalescing granularity (128 on Fermi)
	MaxInflightPerSM int     // outstanding memory transactions one SM sustains

	// Overheads.
	KernelLaunchOverhead float64 // per kernel launch
	BarrierCost          float64 // per block-wide barrier
	SharedAccessCost     float64 // amortized per shared-memory access
	SharedConflictCost   float64 // per extra bank-conflict serialization cycle

	// Faults, when non-nil, injects transient execution faults into
	// kernel launches on this device: Device.Launch and the Executor
	// surface them as typed LaunchErrors instead of silent success.
	// Nil (the default on every preset) injects nothing. Attach or
	// detach between solves, never while a launch is in flight.
	Faults *Injector

	// SlowFactor models a silent slowdown — a thermally throttled,
	// power-capped, or otherwise degraded device that still computes
	// correctly but takes SlowFactor times the modeled kernel time,
	// without raising any health event or launch error. Values <= 1
	// mean no slowdown. This is the straggler half of gray failure:
	// nothing in the fail-stop plane notices it, only latency does.
	SlowFactor float64
}

// slow returns the effective slowdown multiplier (>= 1).
func (d *Device) slow() float64 {
	if d.SlowFactor > 1 {
		return d.SlowFactor
	}
	return 1
}

// GTX480 returns the device description for the paper's test GPU
// (NVIDIA GeForce GTX 480, Fermi GF100). Figures are the published
// specifications; DP throughput is the GeForce-market 1/8-of-SP rate.
func GTX480() *Device {
	return &Device{
		Name:               "GTX480",
		NumSMs:             15,
		CoresPerSM:         32,
		WarpSize:           32,
		MaxThreadsPerBlock: 1024,
		MaxThreadsPerSM:    1536,
		MaxBlocksPerSM:     8,
		SharedMemPerSM:     48 * 1024,
		ClockHz:            1.401e9,

		SPFlops: 1.345e12,
		DPFlops: 0.168e12,

		GlobalBandwidth:  177.4e9,
		GlobalLatency:    400 / 1.401e9, // ~400 core cycles
		TransactionBytes: 128,
		MaxInflightPerSM: 64,

		KernelLaunchOverhead: 5e-6,
		BarrierCost:          30e-9,
		SharedAccessCost:     0.6e-9 / 32, // per access, warp-wide issue
		SharedConflictCost:   0.6e-9,      // one replayed warp instruction
	}
}

// Validate reports configuration errors.
func (d *Device) Validate() error {
	switch {
	case d.NumSMs <= 0:
		return fmt.Errorf("gpusim: device %q: NumSMs must be positive", d.Name)
	case d.WarpSize <= 0:
		return fmt.Errorf("gpusim: device %q: WarpSize must be positive", d.Name)
	case d.MaxThreadsPerBlock <= 0 || d.MaxThreadsPerSM <= 0 || d.MaxBlocksPerSM <= 0:
		return fmt.Errorf("gpusim: device %q: thread/block limits must be positive", d.Name)
	case d.SharedMemPerSM < 0:
		return fmt.Errorf("gpusim: device %q: negative shared memory", d.Name)
	case d.GlobalBandwidth <= 0 || d.GlobalLatency <= 0 || d.TransactionBytes <= 0:
		return fmt.Errorf("gpusim: device %q: memory system misconfigured", d.Name)
	case d.SPFlops <= 0 || d.DPFlops <= 0:
		return fmt.Errorf("gpusim: device %q: flop rates must be positive", d.Name)
	case d.MaxInflightPerSM <= 0:
		return fmt.Errorf("gpusim: device %q: MaxInflightPerSM must be positive", d.Name)
	}
	return nil
}

// HardwareParallelism returns P, the paper's notion of the number of
// parallel workers the device supplies: the number of threads that can
// be resident and executing concurrently at full occupancy.
func (d *Device) HardwareParallelism() int {
	return d.NumSMs * d.MaxThreadsPerSM
}

// Occupancy computes how many blocks of the given shape are resident
// per SM, limited by the block count cap, the thread count cap and the
// shared-memory capacity (register pressure is not modeled).
func (d *Device) Occupancy(threadsPerBlock, sharedBytesPerBlock int) (blocksPerSM int) {
	if threadsPerBlock <= 0 {
		return 0
	}
	blocksPerSM = d.MaxBlocksPerSM
	if byThreads := d.MaxThreadsPerSM / threadsPerBlock; byThreads < blocksPerSM {
		blocksPerSM = byThreads
	}
	if sharedBytesPerBlock > 0 {
		if byShared := d.SharedMemPerSM / sharedBytesPerBlock; byShared < blocksPerSM {
			blocksPerSM = byShared
		}
	}
	if blocksPerSM < 0 {
		blocksPerSM = 0
	}
	return blocksPerSM
}
