package gpusim

import (
	"fmt"
	"strings"
)

// Timeline records a sequence of kernel launches with their statistics
// and model breakdowns — the simulator's equivalent of a profiler
// trace. Solvers append to it; the harness renders it as a per-kernel
// profile report.
type Timeline struct {
	dev     *Device
	entries []TimelineEntry
}

// TimelineEntry is one profiled kernel launch.
type TimelineEntry struct {
	Name      string
	Stats     *Stats
	Breakdown Breakdown
}

// NewTimeline creates a profiler bound to the device.
func NewTimeline(dev *Device) *Timeline {
	return &Timeline{dev: dev}
}

// Record appends one kernel's stats, computing its breakdown for the
// given element width.
func (tl *Timeline) Record(st *Stats, elemBytes int) {
	tl.entries = append(tl.entries, TimelineEntry{
		Name:      st.Kernel,
		Stats:     st,
		Breakdown: tl.dev.EstimateBreakdown(st, elemBytes),
	})
}

// Entries returns the recorded launches in order.
func (tl *Timeline) Entries() []TimelineEntry { return tl.entries }

// Total returns the summed modeled time.
func (tl *Timeline) Total() float64 {
	var t float64
	for _, e := range tl.entries {
		t += e.Breakdown.Total
	}
	return t
}

// Report renders an aligned per-kernel profile: time, share, binding
// constraint, and the headline counters.
func (tl *Timeline) Report() string {
	var sb strings.Builder
	total := tl.Total()
	fmt.Fprintf(&sb, "%-24s %10s %6s %-9s %12s %12s %10s %8s\n",
		"kernel", "time[us]", "share", "bound", "ldTx", "stTx", "elims", "barriers")
	for _, e := range tl.entries {
		share := 0.0
		if total > 0 {
			share = e.Breakdown.Total / total * 100
		}
		fmt.Fprintf(&sb, "%-24s %10.1f %5.1f%% %-9s %12d %12d %10d %8d\n",
			e.Name, e.Breakdown.Total*1e6, share, e.Breakdown.Bound,
			e.Stats.LoadTransactions, e.Stats.StoreTransactions,
			e.Stats.Eliminations, e.Stats.Barriers)
	}
	fmt.Fprintf(&sb, "%-24s %10.1f\n", "TOTAL", total*1e6)
	return sb.String()
}
