package gpusim

import "fmt"

// LinkOp names the interconnect operation a transfer performs, the
// first coordinate of a link-fault site. Unlike kernel faults (keyed on
// kernel/block), link faults are keyed on what moved where.
type LinkOp int

const (
	// OpHostToDevice is a host→device upload (From is -1, To the device).
	OpHostToDevice LinkOp = iota
	// OpDeviceToHost is a device→host download (From the device, To -1).
	OpDeviceToHost
	// OpPeerCopy is a one-way device→device copy.
	OpPeerCopy
	// OpHaloExchange is the bidirectional neighbor exchange.
	OpHaloExchange

	numLinkOps = 4
)

// String names the op.
func (op LinkOp) String() string {
	switch op {
	case OpHostToDevice:
		return "h2d"
	case OpDeviceToHost:
		return "d2h"
	case OpPeerCopy:
		return "peer"
	case OpHaloExchange:
		return "halo"
	default:
		return fmt.Sprintf("linkop(%d)", int(op))
	}
}

// LinkFaultKind enumerates the gray interconnect failures the injector
// models. None of them kill a device: a faulted link corrupts payloads,
// loses packets, or stalls — the device at either end keeps computing
// correctly, which is exactly why these failures escape fail-stop
// detection and need end-to-end integrity checks.
type LinkFaultKind int

const (
	// LinkCorrupt delivers the transfer on time but with a silently
	// corrupted payload. The transfer itself reports success; only an
	// end-to-end check (the solver's ABFT sum checks) can catch it.
	LinkCorrupt LinkFaultKind = iota
	// LinkDrop loses the transfer; the modeled DMA layer retries it, so
	// the payload arrives intact but the transfer is charged the
	// retried attempts' time too.
	LinkDrop
	// LinkDelay delivers the transfer intact but late — a congested or
	// flapping link — multiplying the modeled transfer time.
	LinkDelay

	numLinkFaultKinds = 3
)

// String names the kind.
func (k LinkFaultKind) String() string {
	switch k {
	case LinkCorrupt:
		return "corrupt"
	case LinkDrop:
		return "drop"
	case LinkDelay:
		return "delay"
	default:
		return fmt.Sprintf("linkfault(%d)", int(k))
	}
}

// ScheduledLinkFault pins a link fault to explicit coordinates, for
// tests and scenarios that need a specific transfer to fail
// deterministically.
type ScheduledLinkFault struct {
	// Op matches the transfer's operation; negative matches any.
	Op LinkOp
	// From and To match the transfer's endpoints (-1 in a transfer means
	// the host); a matcher value below -1 matches any endpoint.
	From, To int
	// Index matches the per-site transfer sequence number; negative
	// matches any.
	Index int
	// Kind is the fault to inject.
	Kind LinkFaultKind
	// Repeat is how many consecutive transfers of the site keep
	// faulting before the link heals; 0 applies the injector default.
	Repeat int
}

// MatchAny is the wildcard value for ScheduledLinkFault.From/To: it
// matches any endpoint, including the host (-1).
const MatchAny = -2

// LinkInjector is a seeded, schedulable source of gray interconnect
// faults, the link-plane sibling of Injector. Whether a transfer faults
// is a pure function of (Seed, op, from, to, per-site sequence number)
// — never of wall-clock time or goroutine scheduling — so a given
// injector reproduces exactly the same fault sites and the same charged
// penalties on every run, and a re-exchanged transfer redraws
// deterministically at the next sequence number (the transient-fault
// model: flaky links heal).
//
// Faults come from the explicit Schedule first, then a seeded per-site
// Bernoulli draw at probability Rate, optionally restricted to
// transfers touching Devices. Attach to Topology.Links before solving.
// The zero value injects nothing.
type LinkInjector struct {
	// Seed drives every pseudo-random decision.
	Seed uint64
	// Rate is the per-transfer fault probability in [0, 1].
	Rate float64
	// Kinds is drawn from for rate faults; empty means all kinds.
	Kinds []LinkFaultKind
	// Devices, when non-empty, restricts rate faults to transfers with
	// at least one endpoint in the set — modeling one device's flaky
	// link rather than fabric-wide noise. Scheduled faults carry their
	// own endpoint matchers and ignore this.
	Devices []int
	// Repeat is how many consecutive transfers of a faulted site keep
	// faulting before the link heals; 0 means 1.
	Repeat int
	// DelayFactor multiplies the modeled time of delayed transfers;
	// values <= 1 mean the default of 4.
	DelayFactor float64
	// DropRetries is how many lost attempts a dropped transfer is
	// charged before the delivery succeeds; 0 means 1.
	DropRetries int
	// Schedule lists explicit faults, matched before the rate draw.
	Schedule []ScheduledLinkFault
	// Gate dynamically arms and disarms the injector, exactly like
	// Injector.Gate. Must be safe for concurrent use; nil means always
	// armed.
	Gate func() bool
}

func (in *LinkInjector) repeat() int {
	if in.Repeat <= 0 {
		return 1
	}
	return in.Repeat
}

func (in *LinkInjector) delayFactor() float64 {
	if in.DelayFactor <= 1 {
		return 4
	}
	return in.DelayFactor
}

func (in *LinkInjector) dropRetries() int {
	if in.DropRetries <= 0 {
		return 1
	}
	return in.DropRetries
}

// touches reports whether the rate-fault device filter admits the
// transfer.
func (in *LinkInjector) touches(from, to int) bool {
	if len(in.Devices) == 0 {
		return true
	}
	for _, d := range in.Devices {
		if d == from || d == to {
			return true
		}
	}
	return false
}

// At decides whether the seq-th transfer of site (op, from, to) faults,
// and with which kind. It is safe for concurrent use.
func (in *LinkInjector) At(op LinkOp, from, to, seq int) (LinkFaultKind, bool) {
	if in == nil {
		return 0, false
	}
	if in.Gate != nil && !in.Gate() {
		return 0, false
	}
	for _, f := range in.Schedule {
		if f.Op >= 0 && f.Op != op {
			continue
		}
		if f.From > MatchAny && f.From != from {
			continue
		}
		if f.To > MatchAny && f.To != to {
			continue
		}
		if f.Index >= 0 && f.Index != seq {
			continue
		}
		rep := f.Repeat
		if rep <= 0 {
			rep = in.repeat()
		}
		if f.Index >= 0 || seq < rep {
			return f.Kind, true
		}
		return 0, false
	}
	if in.Rate <= 0 || !in.touches(from, to) {
		return 0, false
	}
	h := linkSiteHash(in.Seed, op, from, to, seq)
	if float64(h>>11)/(1<<53) >= in.Rate {
		return 0, false
	}
	if len(in.Kinds) == 0 {
		return LinkFaultKind(mix64(h) % numLinkFaultKinds), true
	}
	return in.Kinds[mix64(h)%uint64(len(in.Kinds))], true
}

// linkSiteHash hashes the transfer coordinates through the same
// splitmix avalanche the kernel-fault injector uses.
func linkSiteHash(seed uint64, op LinkOp, from, to, seq int) uint64 {
	h := mix64(seed ^ 0xA5A5A5A55A5A5A5A)
	h = mix64(h ^ uint64(op)*0x9E3779B97F4A7C15 + 1)
	h = mix64(h ^ uint64(int64(from))*0xBF58476D1CE4E5B9 + 2)
	h = mix64(h ^ uint64(int64(to))*0x94D049BB133111EB + 3)
	return mix64(h ^ uint64(seq))
}

// TransferReport describes one modeled transfer after link-fault
// injection: its total charged time and what the link did to it. A
// Corrupt report means the payload arrived silently damaged — the
// transfer layer itself reports success, and only the caller's
// end-to-end integrity check can notice.
type TransferReport struct {
	// Seconds is the total modeled time charged, including retried
	// drops and delay inflation.
	Seconds float64
	// Drops is how many lost attempts preceded the delivery.
	Drops int
	// Delayed reports the transfer was slowed by a delay fault.
	Delayed bool
	// Corrupt reports the payload arrived corrupted.
	Corrupt bool
}
