package gpusim

import (
	"strings"
	"testing"
	"testing/quick"
)

func testDevice() *Device { return GTX480() }

func TestDeviceValidate(t *testing.T) {
	if err := testDevice().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := testDevice()
	bad.NumSMs = 0
	if bad.Validate() == nil {
		t.Error("zero SMs accepted")
	}
	bad = testDevice()
	bad.GlobalBandwidth = 0
	if bad.Validate() == nil {
		t.Error("zero bandwidth accepted")
	}
	bad = testDevice()
	bad.DPFlops = -1
	if bad.Validate() == nil {
		t.Error("negative flops accepted")
	}
}

func TestHardwareParallelism(t *testing.T) {
	d := testDevice()
	if got := d.HardwareParallelism(); got != 15*1536 {
		t.Errorf("P = %d, want %d", got, 15*1536)
	}
}

func TestOccupancyLimits(t *testing.T) {
	d := testDevice()
	// Thread-limited: 1024-thread blocks -> 1536/1024 = 1 per SM.
	if got := d.Occupancy(1024, 0); got != 1 {
		t.Errorf("occupancy(1024,0) = %d, want 1", got)
	}
	// Block-limited: tiny blocks capped at MaxBlocksPerSM.
	if got := d.Occupancy(32, 0); got != d.MaxBlocksPerSM {
		t.Errorf("occupancy(32,0) = %d, want %d", got, d.MaxBlocksPerSM)
	}
	// Shared-memory-limited: 24KB blocks -> 2 per SM.
	if got := d.Occupancy(64, 24*1024); got != 2 {
		t.Errorf("occupancy(64,24KB) = %d, want 2", got)
	}
	// Degenerate.
	if got := d.Occupancy(0, 0); got != 0 {
		t.Errorf("occupancy(0,0) = %d, want 0", got)
	}
}

func TestLaunchRejectsBadConfig(t *testing.T) {
	d := testDevice()
	if _, err := d.Launch("k", LaunchConfig{Grid: 0, Block: 32}, func(b *Block) {}); err == nil {
		t.Error("zero grid accepted")
	}
	if _, err := d.Launch("k", LaunchConfig{Grid: 1, Block: 2048}, func(b *Block) {}); err == nil {
		t.Error("oversized block accepted")
	}
}

func TestLaunchFunctional(t *testing.T) {
	d := testDevice()
	n := 1024
	in := make([]float64, n)
	out := make([]float64, n)
	for i := range in {
		in[i] = float64(i)
	}
	gin, gout := NewGlobal(in), NewGlobal(out)
	blockSize := 128
	grid := n / blockSize
	st, err := d.Launch("scale", LaunchConfig{Grid: grid, Block: blockSize}, func(b *Block) {
		b.PhaseNoSync(func(th *Thread) {
			i := b.ID*blockSize + th.ID
			gout.Store(th, i, 2*gin.Load(th, i))
			th.Flops(1)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range out {
		if out[i] != 2*float64(i) {
			t.Fatalf("out[%d] = %g, want %g", i, out[i], 2*float64(i))
		}
	}
	if st.Flops != int64(n) {
		t.Errorf("flops = %d, want %d", st.Flops, n)
	}
	if st.Blocks != grid || st.ThreadsPerBlock != blockSize || st.Launches != 1 {
		t.Errorf("launch shape wrong: %+v", st)
	}
}

func TestCoalescingUnitStride(t *testing.T) {
	d := testDevice()
	n := 256 // 8 warps
	data := make([]float64, n)
	g := NewGlobal(data)
	st, err := d.Launch("load", LaunchConfig{Grid: 1, Block: n}, func(b *Block) {
		b.PhaseNoSync(func(th *Thread) {
			g.Load(th, th.ID)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	// Unit-stride float64: each 32-thread warp touches 32*8=256 bytes
	// = 2 transactions of 128B. 8 warps -> 16 transactions.
	if st.LoadTransactions != 16 {
		t.Errorf("unit-stride load transactions = %d, want 16", st.LoadTransactions)
	}
	if eff := st.LoadEfficiency(d.TransactionBytes); eff != 1 {
		t.Errorf("unit-stride efficiency = %g, want 1", eff)
	}
}

func TestCoalescingStrided(t *testing.T) {
	d := testDevice()
	n := 256
	stride := 16 // every access lands in its own 128B segment
	data := make([]float64, n*stride)
	g := NewGlobal(data)
	st, err := d.Launch("strided", LaunchConfig{Grid: 1, Block: n}, func(b *Block) {
		b.PhaseNoSync(func(th *Thread) {
			g.Load(th, th.ID*stride)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.LoadTransactions != int64(n) {
		t.Errorf("strided load transactions = %d, want %d", st.LoadTransactions, n)
	}
	if eff := st.LoadEfficiency(d.TransactionBytes); eff > 0.1 {
		t.Errorf("strided efficiency = %g, want <= 1/16", eff)
	}
}

func TestCoalescingBroadcast(t *testing.T) {
	// All threads of a warp reading the same element is one transaction.
	d := testDevice()
	data := make([]float64, 4)
	g := NewGlobal(data)
	st, err := d.Launch("bcast", LaunchConfig{Grid: 1, Block: 32}, func(b *Block) {
		b.PhaseNoSync(func(th *Thread) {
			g.Load(th, 2)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.LoadTransactions != 1 {
		t.Errorf("broadcast transactions = %d, want 1", st.LoadTransactions)
	}
}

func TestCoalescingSeparatesLoadsAndStores(t *testing.T) {
	d := testDevice()
	data := make([]float64, 64)
	g := NewGlobal(data)
	st, err := d.Launch("ldst", LaunchConfig{Grid: 1, Block: 32}, func(b *Block) {
		b.PhaseNoSync(func(th *Thread) {
			v := g.Load(th, th.ID)
			g.Store(th, th.ID, v+1)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.LoadTransactions != 2 || st.StoreTransactions != 2 {
		t.Errorf("ld/st = %d/%d, want 2/2", st.LoadTransactions, st.StoreTransactions)
	}
}

func TestDistinctArraysDontShareTransactions(t *testing.T) {
	d := testDevice()
	a := NewGlobal(make([]float64, 32))
	b := NewGlobal(make([]float64, 32))
	st, err := d.Launch("two", LaunchConfig{Grid: 1, Block: 32}, func(blk *Block) {
		blk.PhaseNoSync(func(th *Thread) {
			a.Load(th, th.ID)
			b.Load(th, th.ID)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	// Two arrays x 32 float64 = 2x256B = 4 transactions; if the arrays
	// shared addresses it could be fewer.
	if st.LoadTransactions != 4 {
		t.Errorf("transactions = %d, want 4", st.LoadTransactions)
	}
}

func TestPhaseBarrierCounting(t *testing.T) {
	d := testDevice()
	st, err := d.Launch("phases", LaunchConfig{Grid: 3, Block: 32}, func(b *Block) {
		b.Phase(func(th *Thread) {})
		b.Phase(func(th *Thread) {})
		b.PhaseNoSync(func(th *Thread) {})
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Barriers != 3*2 {
		t.Errorf("barriers = %d, want 6", st.Barriers)
	}
	if st.Phases != 3*3 {
		t.Errorf("phases = %d, want 9", st.Phases)
	}
}

func TestPhaseOrderWithinBlock(t *testing.T) {
	// Writes in one phase must be visible in the next (barrier works).
	d := testDevice()
	n := 64
	out := make([]float64, n)
	g := NewGlobal(out)
	_, err := d.Launch("sync", LaunchConfig{Grid: 1, Block: n}, func(b *Block) {
		sh := NewShared[float64](b, n)
		b.Phase(func(th *Thread) {
			sh.Store(th.ID, float64(th.ID))
		})
		b.PhaseNoSync(func(th *Thread) {
			// Read a different thread's value: only correct after barrier.
			g.Store(th, th.ID, sh.Load((th.ID+1)%n))
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if out[i] != float64((i+1)%n) {
			t.Fatalf("out[%d] = %g, want %g", i, out[i], float64((i+1)%n))
		}
	}
}

func TestSharedAllocationTracking(t *testing.T) {
	d := testDevice()
	st, err := d.Launch("smem", LaunchConfig{Grid: 2, Block: 32}, func(b *Block) {
		NewShared[float64](b, 100)
		NewShared[float32](b, 10)
		b.PhaseNoSync(func(th *Thread) {})
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.SharedPerBlock != 100*8+10*4 {
		t.Errorf("SharedPerBlock = %d, want %d", st.SharedPerBlock, 100*8+10*4)
	}
}

func TestSharedOverflowRejected(t *testing.T) {
	d := testDevice()
	_, err := d.Launch("big", LaunchConfig{Grid: 1, Block: 32}, func(b *Block) {
		NewShared[float64](b, 7000) // 56KB > 48KB
		b.PhaseNoSync(func(th *Thread) {})
	})
	if err == nil {
		t.Error("shared-memory overflow not reported")
	}
}

func TestEliminationCounting(t *testing.T) {
	d := testDevice()
	st, err := d.Launch("elim", LaunchConfig{Grid: 1, Block: 16}, func(b *Block) {
		b.PhaseNoSync(func(th *Thread) {
			th.Eliminations(3)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Eliminations != 48 {
		t.Errorf("eliminations = %d, want 48", st.Eliminations)
	}
	if st.Flops != 48*FlopsPerElimination {
		t.Errorf("flops = %d, want %d", st.Flops, 48*FlopsPerElimination)
	}
}

func TestStatsAdd(t *testing.T) {
	a := &Stats{Kernel: "a", Launches: 1, Blocks: 4, ThreadsPerBlock: 64,
		LoadTransactions: 10, Eliminations: 5, Barriers: 2}
	b := &Stats{Kernel: "b", Launches: 2, Blocks: 8, ThreadsPerBlock: 32,
		LoadTransactions: 1, Eliminations: 7, Barriers: 1}
	a.Add(b)
	if a.Launches != 3 || a.Blocks != 8 || a.ThreadsPerBlock != 64 ||
		a.LoadTransactions != 11 || a.Eliminations != 12 || a.Barriers != 3 {
		t.Errorf("Add result wrong: %+v", a)
	}
	if !strings.Contains(a.Kernel, "a") || !strings.Contains(a.Kernel, "b") {
		t.Errorf("kernel name = %q", a.Kernel)
	}
}

func TestStatsString(t *testing.T) {
	s := &Stats{Kernel: "k"}
	if !strings.Contains(s.String(), "k:") {
		t.Errorf("String() = %q", s.String())
	}
}

func TestEstimateTimePositiveAndMonotone(t *testing.T) {
	d := testDevice()
	small := &Stats{Launches: 1, Blocks: 4, ThreadsPerBlock: 128,
		LoadTransactions: 1000, StoreTransactions: 500, Flops: 100000}
	big := &Stats{Launches: 1, Blocks: 4, ThreadsPerBlock: 128,
		LoadTransactions: 100000, StoreTransactions: 50000, Flops: 10000000}
	ts, tb := d.EstimateTime(small, 8), d.EstimateTime(big, 8)
	if ts <= 0 || tb <= 0 {
		t.Fatalf("non-positive times %g %g", ts, tb)
	}
	if tb <= ts {
		t.Errorf("more work not slower: %g vs %g", tb, ts)
	}
}

func TestEstimateTimeSinglePrecisionFaster(t *testing.T) {
	d := testDevice()
	s := &Stats{Launches: 1, Blocks: 1000, ThreadsPerBlock: 256, Flops: 1e9}
	if d.EstimateTime(s, 4) >= d.EstimateTime(s, 8) {
		t.Error("single precision compute not faster than double")
	}
}

func TestEstimateTimeLatencyRegime(t *testing.T) {
	// Same total traffic spread over more blocks must not be slower:
	// more resident warps hide latency better.
	d := testDevice()
	few := &Stats{Launches: 1, Blocks: 1, ThreadsPerBlock: 64,
		LoadTransactions: 1 << 16}
	many := &Stats{Launches: 1, Blocks: 256, ThreadsPerBlock: 64,
		LoadTransactions: 1 << 16}
	tFew, tMany := d.EstimateTime(few, 8), d.EstimateTime(many, 8)
	if tMany > tFew {
		t.Errorf("parallelism made latency hiding worse: %g vs %g", tMany, tFew)
	}
	if tFew <= tMany {
		// With one resident block the kernel must be latency-bound and
		// strictly slower than the saturated case.
		if tFew == tMany {
			t.Errorf("latency regime not modeled: few=%g many=%g", tFew, tMany)
		}
	}
}

func TestEstimateTimeLaunchOverhead(t *testing.T) {
	d := testDevice()
	one := &Stats{Launches: 1, Blocks: 1, ThreadsPerBlock: 32}
	hundred := &Stats{Launches: 100, Blocks: 1, ThreadsPerBlock: 32}
	if d.EstimateTime(hundred, 8)-d.EstimateTime(one, 8) < 99*d.KernelLaunchOverhead*0.99 {
		t.Error("launch overhead not charged per launch")
	}
}

func TestEstimateTimeEmpty(t *testing.T) {
	d := testDevice()
	if got := d.EstimateTime(&Stats{Launches: 2}, 8); got != 2*d.KernelLaunchOverhead {
		t.Errorf("empty stats time = %g", got)
	}
}

func TestLaunchDeterministicStats(t *testing.T) {
	d := testDevice()
	run := func() *Stats {
		g := NewGlobal(make([]float64, 4096))
		st, err := d.Launch("det", LaunchConfig{Grid: 16, Block: 256}, func(b *Block) {
			b.Phase(func(th *Thread) {
				g.Load(th, b.ID*256+th.ID)
				th.Eliminations(2)
			})
			b.PhaseNoSync(func(th *Thread) {
				g.Store(th, b.ID*256+th.ID, 1)
			})
		})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	a, b := run(), run()
	if a.LoadTransactions != b.LoadTransactions || a.StoreTransactions != b.StoreTransactions ||
		a.Eliminations != b.Eliminations || a.Barriers != b.Barriers {
		t.Errorf("stats not deterministic: %+v vs %+v", a, b)
	}
}

func TestCoalescingProperty(t *testing.T) {
	// Property: for any unit-stride warp access of any width, the
	// transaction count is within 1 of the ideal bytes/128.
	d := testDevice()
	f := func(offRaw uint8) bool {
		off := int(offRaw % 64)
		g := NewGlobal(make([]float64, 1024))
		st, err := d.Launch("p", LaunchConfig{Grid: 1, Block: 32}, func(b *Block) {
			b.PhaseNoSync(func(th *Thread) {
				g.Load(th, off+th.ID)
			})
		})
		if err != nil {
			return false
		}
		ideal := int64(32 * 8 / 128)
		return st.LoadTransactions >= ideal && st.LoadTransactions <= ideal+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
