package gpusim

import (
	"math"
	"testing"
)

func TestLinkTransferTime(t *testing.T) {
	l := Link{Bandwidth: 1e9, Latency: 1e-6}
	if got := l.TransferTime(0); got != 0 {
		t.Errorf("zero-byte transfer costs %v, want 0", got)
	}
	want := 1e-6 + 1e6/1e9
	if got := l.TransferTime(1e6); math.Abs(got-want) > 1e-12 {
		t.Errorf("TransferTime(1MB) = %v, want %v", got, want)
	}
}

// TestTopologyCharging proves transfers are charged into CommStats on
// the right link class, and that a peer-less interconnect stages
// device-to-device copies through the host at twice the host cost.
func TestTopologyCharging(t *testing.T) {
	pcie, err := UniformTopology(2, PCIe2(), GTX480())
	if err != nil {
		t.Fatal(err)
	}
	h2d := pcie.HostToDevice(0, 1000)
	d2h := pcie.DeviceToHost(1, 1000)
	if h2d != d2h {
		t.Errorf("symmetric host link: H2D %v != D2H %v", h2d, d2h)
	}
	staged := pcie.PeerCopy(0, 1, 1000)
	if math.Abs(staged-2*h2d) > 1e-12 {
		t.Errorf("host-staged peer copy = %v, want 2x host transfer %v", staged, 2*h2d)
	}
	c := pcie.Comm()
	if c.HostBytes != 4000 || c.PeerBytes != 0 {
		t.Errorf("host-staged stats: HostBytes=%d PeerBytes=%d, want 4000/0", c.HostBytes, c.PeerBytes)
	}
	if c.Transfers != 4 {
		t.Errorf("Transfers = %d, want 4 (h2d, d2h, and a 2-hop staged copy)", c.Transfers)
	}

	nvl, err := UniformTopology(2, NVLinkMesh(), GTX480())
	if err != nil {
		t.Fatal(err)
	}
	direct := nvl.PeerCopy(0, 1, 1000)
	if hostStaged := 2 * nvl.Interconnect().Host.TransferTime(1000); direct >= hostStaged {
		t.Errorf("NVLink peer copy %v not faster than host staging %v", direct, hostStaged)
	}
	if c := nvl.Comm(); c.PeerBytes != 1000 || c.HostBytes != 0 {
		t.Errorf("peer stats: PeerBytes=%d HostBytes=%d, want 1000/0", c.PeerBytes, c.HostBytes)
	}
}

// TestHaloExchange proves the bidirectional exchange takes one
// direction's time on a full-duplex link but records both directions'
// bytes.
func TestHaloExchange(t *testing.T) {
	nvl, err := UniformTopology(2, NVLinkMesh(), GTX480())
	if err != nil {
		t.Fatal(err)
	}
	oneWay := nvl.Interconnect().Peer.TransferTime(512)
	if got := nvl.HaloExchange(0, 1, 512); math.Abs(got-oneWay) > 1e-12 {
		t.Errorf("HaloExchange time = %v, want one-way %v", got, oneWay)
	}
	c := nvl.Comm()
	if c.PeerBytes != 1024 {
		t.Errorf("HaloExchange recorded %d peer bytes, want 1024 (both directions)", c.PeerBytes)
	}
	if c.HaloExchanges != 1 {
		t.Errorf("HaloExchanges = %d, want 1", c.HaloExchanges)
	}
	if got := nvl.HaloExchange(0, 1, 0); got != 0 {
		t.Errorf("empty halo exchange costs %v, want 0", got)
	}
}

// TestUniformTopologyIsolation proves the per-device copies are
// independent failure domains: an injector attached to one device does
// not leak to its siblings or to the prototype.
func TestUniformTopologyIsolation(t *testing.T) {
	proto := GTX480()
	topo, err := UniformTopology(3, PCIe2(), proto)
	if err != nil {
		t.Fatal(err)
	}
	topo.Device(1).Faults = &Injector{Schedule: []ScheduledFault{{Kind: FaultAbort, Repeat: 1 << 30}}}
	if proto.Faults != nil {
		t.Error("prototype device mutated by per-device injector")
	}
	for _, i := range []int{0, 2} {
		if topo.Device(i).Faults != nil {
			t.Errorf("device %d inherited sibling's injector", i)
		}
	}
	if topo.Device(0).Name == topo.Device(1).Name {
		t.Errorf("device names not unique: %q", topo.Device(0).Name)
	}
}

func TestTopologyValidation(t *testing.T) {
	if _, err := UniformTopology(0, PCIe2(), nil); err == nil {
		t.Error("zero-device topology accepted")
	}
	if _, err := NewTopology(Interconnect{Host: Link{Bandwidth: -1}}, GTX480()); err == nil {
		t.Error("negative-bandwidth interconnect accepted")
	}
	if _, err := NewTopology(PCIe2()); err == nil {
		t.Error("empty device list accepted")
	}
	if _, err := NewTopology(PCIe2(), nil); err == nil {
		t.Error("nil device accepted")
	}
}

// TestPipelinedMakespan checks the two-engine overlap model: with
// uploads overlapping compute, total time beats the serial sum and is
// bounded below by each engine's own busy time.
func TestPipelinedMakespan(t *testing.T) {
	slabs := []SlabTiming{
		{Upload: 2, Compute: 3, Download: 1},
		{Upload: 2, Compute: 3, Download: 1},
		{Upload: 2, Compute: 3, Download: 1},
	}
	serial, pipelined := PipelinedMakespan(slabs)
	if want := 18.0; math.Abs(serial-want) > 1e-12 {
		t.Errorf("serial = %v, want %v", serial, want)
	}
	if pipelined >= serial {
		t.Errorf("pipelined %v not better than serial %v", pipelined, serial)
	}
	var comm, comp float64
	for _, s := range slabs {
		comm += s.Upload + s.Download
		comp += s.Compute
	}
	if pipelined < comm || pipelined < comp {
		t.Errorf("pipelined %v below engine busy-time floor (comm %v, comp %v)", pipelined, comm, comp)
	}
	if s, p := PipelinedMakespan(nil); s != 0 || p != 0 {
		t.Errorf("empty makespan = %v/%v, want 0/0", s, p)
	}
}
