package gpusim

import (
	"math"
	"strings"
	"testing"
)

func TestTimelineRecordAndReport(t *testing.T) {
	d := GTX480()
	tl := NewTimeline(d)
	a := &Stats{Kernel: "pcr", Launches: 1, Blocks: 8, ThreadsPerBlock: 256,
		LoadTransactions: 1 << 16, Eliminations: 1 << 18, Barriers: 100}
	b := &Stats{Kernel: "thomas", Launches: 1, Blocks: 8, ThreadsPerBlock: 256,
		LoadTransactions: 1 << 17, Eliminations: 1 << 19}
	tl.Record(a, 8)
	tl.Record(b, 8)
	if len(tl.Entries()) != 2 {
		t.Fatalf("entries = %d", len(tl.Entries()))
	}
	wantTotal := d.EstimateTime(a, 8) + d.EstimateTime(b, 8)
	if math.Abs(tl.Total()-wantTotal) > 1e-15 {
		t.Errorf("Total = %g, want %g", tl.Total(), wantTotal)
	}
	rep := tl.Report()
	for _, want := range []string{"pcr", "thomas", "TOTAL", "bound"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestTimelineEmpty(t *testing.T) {
	tl := NewTimeline(GTX480())
	if tl.Total() != 0 {
		t.Error("empty timeline total nonzero")
	}
	if !strings.Contains(tl.Report(), "TOTAL") {
		t.Error("empty report missing TOTAL")
	}
}
