package gpusim

import "fmt"

// Stats aggregates the architectural events recorded while executing
// one or more kernel launches. All counts are totals across the grid.
type Stats struct {
	Kernel string

	Launches        int
	Blocks          int
	ThreadsPerBlock int
	SharedPerBlock  int // max shared bytes allocated by any block

	// Global memory, after warp coalescing.
	LoadTransactions  int64
	StoreTransactions int64
	LoadedBytes       int64 // useful (requested) bytes
	StoredBytes       int64

	// Shared memory.
	SharedLoads         int64
	SharedStores        int64
	SharedBankConflicts int64 // extra serialization cycles from bank conflicts

	// Work.
	Eliminations int64 // elimination steps, the paper's cost unit
	Flops        int64
	Barriers     int64 // block-wide barriers, summed over blocks
	Phases       int64
}

// Add accumulates o into s. Launch-shape fields (Blocks,
// ThreadsPerBlock, SharedPerBlock) take the maximum so that a fused
// multi-launch Stats still reports a meaningful occupancy shape.
func (s *Stats) Add(o *Stats) {
	if s.Kernel == "" {
		s.Kernel = o.Kernel
	} else if o.Kernel != "" && s.Kernel != o.Kernel {
		s.Kernel = s.Kernel + "+" + o.Kernel
	}
	s.Accumulate(o)
}

// Accumulate is Add without the kernel-name bookkeeping: it sums the
// event counters and takes the maximum of the launch-shape fields,
// leaving s.Kernel untouched. Steady-state pipelines use it to merge
// per-shard fragments into a pre-named Stats without the string
// concatenation Add performs.
func (s *Stats) Accumulate(o *Stats) {
	s.Launches += o.Launches
	if o.Blocks > s.Blocks {
		s.Blocks = o.Blocks
	}
	if o.ThreadsPerBlock > s.ThreadsPerBlock {
		s.ThreadsPerBlock = o.ThreadsPerBlock
	}
	if o.SharedPerBlock > s.SharedPerBlock {
		s.SharedPerBlock = o.SharedPerBlock
	}
	s.LoadTransactions += o.LoadTransactions
	s.StoreTransactions += o.StoreTransactions
	s.LoadedBytes += o.LoadedBytes
	s.StoredBytes += o.StoredBytes
	s.SharedLoads += o.SharedLoads
	s.SharedStores += o.SharedStores
	s.SharedBankConflicts += o.SharedBankConflicts
	s.Eliminations += o.Eliminations
	s.Flops += o.Flops
	s.Barriers += o.Barriers
	s.Phases += o.Phases
}

// Transactions returns total global transactions (loads + stores).
func (s *Stats) Transactions() int64 {
	return s.LoadTransactions + s.StoreTransactions
}

// TransactionBytes returns the total bytes moved over the DRAM bus for
// the given transaction granularity.
func (s *Stats) TransactionBytes(granularity int) int64 {
	return s.Transactions() * int64(granularity)
}

// LoadEfficiency returns usefulBytes/busBytes for loads in [0,1]; 1
// means perfectly coalesced unit-stride access.
func (s *Stats) LoadEfficiency(granularity int) float64 {
	bus := s.LoadTransactions * int64(granularity)
	if bus == 0 {
		return 1
	}
	return float64(s.LoadedBytes) / float64(bus)
}

// String summarizes the stats for logs and the bench harness.
func (s *Stats) String() string {
	return fmt.Sprintf(
		"%s: launches=%d blocks=%d tpb=%d smem=%dB ldTx=%d stTx=%d elim=%d flops=%d barriers=%d",
		s.Kernel, s.Launches, s.Blocks, s.ThreadsPerBlock, s.SharedPerBlock,
		s.LoadTransactions, s.StoreTransactions, s.Eliminations, s.Flops, s.Barriers)
}
