package costmodel

import (
	"testing"
	"testing/quick"
)

const p480 = 15 * 1536 // GTX480 hardware parallelism

func TestThomasCost(t *testing.T) {
	// M <= P: time is one system's span regardless of M.
	if ThomasCost(512, 1, p480) != ThomasCost(512, 100, p480) {
		t.Error("Thomas cost should be flat while M <= P")
	}
	if got := ThomasCost(512, 1, p480); got != 1023 {
		t.Errorf("Thomas span = %g, want 1023", got)
	}
	// M > P: scales as M/P.
	a := ThomasCost(512, 2*p480, p480)
	b := ThomasCost(512, 4*p480, p480)
	if b/a < 1.99 || b/a > 2.01 {
		t.Errorf("Thomas M>P scaling = %g, want 2", b/a)
	}
}

func TestPCRCostDividesByP(t *testing.T) {
	// PCR parallelizes within a system: doubling P halves the cost in
	// the work-bound regime.
	a := PCRCost(1<<20, 64, p480)
	b := PCRCost(1<<20, 64, 2*p480)
	if a/b < 1.99 || a/b > 2.01 {
		t.Errorf("PCR P-scaling = %g, want 2", a/b)
	}
	// Critical-path floor.
	if got := PCRCost(1024, 1, 1<<30); got != 11 {
		t.Errorf("PCR floor = %g, want log2(1024)+1 = 11", got)
	}
}

func TestHybridCostKZeroIsThomas(t *testing.T) {
	// k = 0 leaves only the Thomas term.
	for _, m := range []int{1, 100, 100000} {
		h := HybridCost(1024, m, p480, 0)
		th := ThomasCost(1024, m, p480)
		// The hybrid's M<=P accounting divides the span among the M
		// workers in its own way; only the M>P regime must coincide
		// exactly with (M/P)·(2N−1).
		if m > p480 {
			if diff := h - th; diff < 0 || diff > float64(m)/float64(p480) {
				t.Errorf("M=%d: hybrid k=0 cost %g vs Thomas %g", m, h, th)
			}
		}
		if h <= 0 {
			t.Errorf("M=%d: non-positive cost %g", m, h)
		}
	}
}

func TestOptimalKMatchesPaperRule(t *testing.T) {
	// §III.D: M > P -> k = 0; M < P -> max k with 2^k·M <= P.
	if k := OptimalK(512, 2*p480, p480); k != 0 {
		t.Errorf("M > P: k = %d, want 0", k)
	}
	for _, tc := range []struct{ n, m, wantK int }{
		// P/M = 23040/8 = 2880 -> k = 11, capped by log2(n)=9 for n=512.
		{512, 8, 9},
		// P/M = 23040/1440 = 16 -> k = 4.
		{1 << 20, 1440, 4},
		// P/M = 23040/23040 = 1 -> k = 0.
		{1 << 20, p480, 0},
	} {
		if k := OptimalK(tc.n, tc.m, p480); k != tc.wantK {
			t.Errorf("n=%d m=%d: k = %d, want %d", tc.n, tc.m, k, tc.wantK)
		}
	}
}

func TestOptimalKMonotoneInM(t *testing.T) {
	// More systems -> the machine saturates sooner -> fewer PCR steps.
	prev := 1 << 30
	for _, m := range []int{1, 4, 16, 64, 256, 1024, 4096, 65536} {
		k := OptimalK(1<<16, m, p480)
		if k > prev {
			t.Errorf("OptimalK increased from %d to %d as M grew to %d", prev, k, m)
		}
		prev = k
	}
}

func TestHybridCostProperty(t *testing.T) {
	f := func(nRaw, mRaw uint16, kRaw uint8) bool {
		n := int(nRaw)%4096 + 2
		m := int(mRaw) + 1
		k := int(kRaw) % 12
		c := HybridCost(n, m, p480, k)
		return c > 0 && c < 1e15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHybridCostClampsKToSystemSize(t *testing.T) {
	// k with 2^k > n is clamped rather than nonsense.
	a := HybridCost(8, 1, p480, 3)
	b := HybridCost(8, 1, p480, 30)
	if a != b {
		t.Errorf("oversized k not clamped: %g vs %g", a, b)
	}
	if HybridCost(8, 1, p480, -5) != HybridCost(8, 1, p480, 0) {
		t.Error("negative k not clamped to 0")
	}
}
