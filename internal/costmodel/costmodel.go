// Package costmodel implements the paper's Table II: closed-form
// elimination-step costs of the Thomas algorithm, full PCR, and the
// k-step tiled-PCR + p-Thomas hybrid on a P-way parallel machine
// solving M independent systems of N rows each. These formulas drive
// the algorithm-transition analysis of §III.D; the empirical Table III
// heuristic lives in internal/core.
package costmodel

import "gputrid/internal/num"

// ThomasCost returns the Table II cost of solving M N-row systems with
// the Thomas algorithm on P workers: parallelism comes only from
// having multiple systems, so the time is (2N−1) scaled by the queue
// factor M/P when M exceeds P.
func ThomasCost(n, m, p int) float64 {
	steps := 2*float64(n) - 1
	if m > p {
		return float64(m) / float64(p) * steps
	}
	return steps
}

// PCRCost returns the Table II cost of full PCR: n·2^n+1 steps of work
// per system (log2(N)·N+1 for general N), which parallelizes freely and
// is therefore divided by P in both regimes; the critical path of
// log2(N)+1 steps is the floor.
func PCRCost(n, m, p int) float64 {
	lg := float64(num.CeilLog2(n))
	work := float64(m) * (lg*float64(n) + 1) / float64(p)
	if cp := lg + 1; work < cp {
		return cp
	}
	return work
}

// HybridCost returns the Table II cost of the k-step tiled PCR +
// p-Thomas hybrid. The PCR front-end contributes k·N work per system
// (freely parallel); the back-end runs Thomas on M·2^k subsystems of
// N/2^k rows. Three regimes, exactly as the table states:
//
//	M > P:            (M/P)·(kN + 2N − 2^k)        — all work queued on P
//	M ≤ P < 2^k·M:    (M/P)·kN + (M/P)·(2N − 2^k)  — back-end saturates P
//	2^k·M ≤ P:        (M/P)·kN + (2·N/2^k − 1)     — back-end underutilizes:
//	                  each of the 2^k·M busy workers runs one subsystem,
//	                  so the Thomas term is the per-subsystem span
//	                  2·2^(n−k) − 1 (§III.D inline text), not divided
//	                  further.
//
// The third branch is what drives the paper's transition rule: raising
// k by one costs (M/P)·N more PCR work but halves the Thomas span, a
// win exactly while 2^k < P/M — hence "the minimum is at the maximum k
// such that 2^k·M ≤ P".
func HybridCost(n, m, p, k int) float64 {
	if k < 0 {
		k = 0
	}
	for k > 0 && 1<<k > n {
		k--
	}
	pk := 1 << k
	mOverP := float64(m) / float64(p)
	pcrPart := mOverP * float64(k) * float64(n)
	thomasWork := 2*float64(n) - float64(pk) // per system, all subsystems
	switch {
	case m > p:
		return mOverP * (float64(k)*float64(n) + thomasWork)
	case pk*m > p:
		return pcrPart + mOverP*thomasWork
	default:
		return pcrPart + 2*float64(n)/float64(pk) - 1
	}
}

// OptimalK returns the k minimizing HybridCost for (N, M, P), searching
// k in [0, log2 N]. Ties resolve to the smaller k (less PCR overhead).
func OptimalK(n, m, p int) int {
	best, bestCost := 0, HybridCost(n, m, p, 0)
	for k := 1; 1<<k <= n; k++ {
		if c := HybridCost(n, m, p, k); c < bestCost {
			best, bestCost = k, c
		}
	}
	return best
}
