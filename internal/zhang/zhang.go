// Package zhang implements the classic small-system GPU tridiagonal
// solvers the paper builds on and is compared against (§II, refs
// [3][10][16][17]): cyclic reduction (Sengupta et al.; optionally with
// Göddeke & Strzodka's bank-conflict-free padding), parallel cyclic
// reduction, the Zhang-Cohen-Owens CR+PCR hybrid, and the
// Sakharnykh/Zhang PCR+Thomas hybrid. Each kernel keeps one ENTIRE
// system in one thread block's shared memory — which is precisely the
// limitation (§I, §II: "the limited capacity of shared memory
// considerably limits their availability for real use") that the
// paper's tiled PCR removes. The kernels return explicit errors when a
// system does not fit, and the harness's extra experiment demonstrates
// the size wall next to the scalable hybrid.
//
// All elimination arithmetic funnels through pcr.Combine and the Thomas
// recurrence used everywhere else in the module, so results agree with
// every other solver.
package zhang

import (
	"fmt"

	"gputrid/internal/gpusim"
	"gputrid/internal/matrix"
	"gputrid/internal/num"
	"gputrid/internal/pcr"
)

// sysShared is the per-block shared-memory image of one system plus its
// solution vector, with optional conflict-free padding.
type sysShared[T num.Real] struct {
	a, b, c, d, x gpusim.Shared[T]
	n             int
	padded        bool
}

// phys maps a logical row to its padded physical slot: inserting one
// pad element every NumBanks rows shifts strided access patterns across
// banks (Göddeke & Strzodka, ref. [10]).
func (s *sysShared[T]) phys(i int) int {
	if s.padded {
		return i + i/gpusim.NumBanks
	}
	return i
}

func newSysShared[T num.Real](blk *gpusim.Block, n int, padded bool) *sysShared[T] {
	s := &sysShared[T]{n: n, padded: padded}
	size := n
	if padded {
		size = n + n/gpusim.NumBanks
	}
	s.a = gpusim.NewShared[T](blk, size)
	s.b = gpusim.NewShared[T](blk, size)
	s.c = gpusim.NewShared[T](blk, size)
	s.d = gpusim.NewShared[T](blk, size)
	s.x = gpusim.NewShared[T](blk, size)
	return s
}

// load copies the block's system from global memory (coalesced) and
// normalizes the corner coefficients.
func (s *sysShared[T]) load(blk *gpusim.Block, threads, base int,
	ga, gb, gc, gd gpusim.Global[T]) {
	blk.Phase(func(t *gpusim.Thread) {
		for i := t.ID; i < s.n; i += threads {
			p := s.phys(i)
			av := ga.Load(t, base+i)
			cv := gc.Load(t, base+i)
			if i == 0 {
				av = 0
			}
			if i == s.n-1 {
				cv = 0
			}
			s.a.StoreT(t, p, av)
			s.b.StoreT(t, p, gb.Load(t, base+i))
			s.c.StoreT(t, p, cv)
			s.d.StoreT(t, p, gd.Load(t, base+i))
		}
	})
}

// row reads logical row i with identity padding outside [0, n).
func (s *sysShared[T]) row(t *gpusim.Thread, i int) pcr.Row[T] {
	if i < 0 || i >= s.n {
		return pcr.Identity[T]()
	}
	p := s.phys(i)
	return pcr.Row[T]{
		A: s.a.LoadT(t, p), B: s.b.LoadT(t, p),
		C: s.c.LoadT(t, p), D: s.d.LoadT(t, p),
	}
}

func (s *sysShared[T]) setRow(t *gpusim.Thread, i int, r pcr.Row[T]) {
	p := s.phys(i)
	s.a.StoreT(t, p, r.A)
	s.b.StoreT(t, p, r.B)
	s.c.StoreT(t, p, r.C)
	s.d.StoreT(t, p, r.D)
}

// xAt reads solution entry i, zero outside [0, n) (the identity-row
// convention: out-of-range unknowns are pinned to zero).
func (s *sysShared[T]) xAt(t *gpusim.Thread, i int) T {
	if i < 0 || i >= s.n {
		return 0
	}
	return s.x.LoadT(t, s.phys(i))
}

// store writes the solution back to global memory (coalesced).
func (s *sysShared[T]) store(blk *gpusim.Block, threads, base int, gx gpusim.Global[T]) {
	blk.PhaseNoSync(func(t *gpusim.Thread) {
		for i := t.ID; i < s.n; i += threads {
			gx.Store(t, base+i, s.x.LoadT(t, s.phys(i)))
		}
	})
}

// crForward runs CR forward reduction levels span = 2,4,... while
// span <= until, in place (writes are multiples of span, reads odd
// multiples of span/2 — disjoint).
func (s *sysShared[T]) crForward(blk *gpusim.Block, threads, until int) {
	for span := 2; span <= until; span <<= 1 {
		half := span >> 1
		s2 := span
		blk.Phase(func(t *gpusim.Thread) {
			for i := s2 - 1 + t.ID*s2; i < s.n; i += threads * s2 {
				s.setRow(t, i, pcr.Combine(s.row(t, i-half), s.row(t, i), s.row(t, i+half)))
				t.Eliminations(1)
			}
		})
	}
}

// crBackward substitutes levels from span = from down to 2 (paper
// Eq. 7), filling s.x for every row not already solved.
func (s *sysShared[T]) crBackward(blk *gpusim.Block, threads, from int) {
	for span := from; span >= 2; span >>= 1 {
		half := span >> 1
		s2 := span
		blk.Phase(func(t *gpusim.Thread) {
			for i := half - 1 + t.ID*s2; i < s.n; i += threads * s2 {
				r := s.row(t, i)
				v := (r.D - r.A*s.xAt(t, i-half) - r.C*s.xAt(t, i+half)) / r.B
				s.x.StoreT(t, s.phys(i), v)
				t.ThomasSteps(1)
			}
		})
	}
}

// checkFit verifies the system fits the device's shared memory for the
// given number of element arrays.
func checkFit[T num.Real](dev *gpusim.Device, n, arrays int, padded bool) error {
	size := n
	if padded {
		size += n / gpusim.NumBanks
	}
	need := arrays * size * num.SizeOf[T]()
	if need > dev.SharedMemPerSM {
		return fmt.Errorf("zhang: system of %d rows needs %d bytes shared memory, device SM has %d — this family cannot scale past shared memory (the paper's point)",
			n, need, dev.SharedMemPerSM)
	}
	return nil
}

// blockThreads picks the thread count for an n-row in-shared solve.
func blockThreads(dev *gpusim.Device, n int) (int, error) {
	t := n
	if t < 1 {
		t = 1
	}
	if t > dev.MaxThreadsPerBlock {
		return 0, fmt.Errorf("zhang: %d rows exceed the %d-thread block limit", n, dev.MaxThreadsPerBlock)
	}
	return t, nil
}

// KernelCR solves every system of the batch with in-shared-memory
// cyclic reduction, one block per system (Sengupta et al., ref. [3]).
// padded enables the conflict-free layout of ref. [10].
func KernelCR[T num.Real](dev *gpusim.Device, b *matrix.Batch[T], padded bool) ([]T, *gpusim.Stats, error) {
	m, n := b.M, b.N
	if err := checkFit[T](dev, n, 5, padded); err != nil {
		return nil, nil, err
	}
	threads, err := blockThreads(dev, (n+1)/2)
	if err != nil {
		return nil, nil, err
	}
	x := make([]T, m*n)
	ga, gb := gpusim.NewGlobal(b.Lower), gpusim.NewGlobal(b.Diag)
	gc, gd := gpusim.NewGlobal(b.Upper), gpusim.NewGlobal(b.RHS)
	gx := gpusim.NewGlobal(x)
	name := "zhangCR"
	if padded {
		name = "zhangCRpadded"
	}
	st, err := dev.Launch(name, gpusim.LaunchConfig{Grid: m, Block: threads},
		func(blk *gpusim.Block) {
			s := newSysShared[T](blk, n, padded)
			s.load(blk, threads, blk.ID*n, ga, gb, gc, gd)
			s.crForward(blk, threads, n)
			s.crBackward(blk, threads, num.NextPow2(n+1))
			s.store(blk, threads, blk.ID*n, gx)
		})
	if err != nil {
		return nil, nil, err
	}
	return x, st, nil
}

// KernelPCR solves every system with full in-shared-memory PCR, one
// block per system, one thread per row (Egloff-style, refs [14][15]
// shrunk to shared memory as in [16]).
func KernelPCR[T num.Real](dev *gpusim.Device, b *matrix.Batch[T]) ([]T, *gpusim.Stats, error) {
	m, n := b.M, b.N
	// Double-buffered coefficients plus x: 9 arrays.
	if err := checkFit[T](dev, n, 9, false); err != nil {
		return nil, nil, err
	}
	threads, err := blockThreads(dev, n)
	if err != nil {
		return nil, nil, err
	}
	x := make([]T, m*n)
	ga, gb := gpusim.NewGlobal(b.Lower), gpusim.NewGlobal(b.Diag)
	gc, gd := gpusim.NewGlobal(b.Upper), gpusim.NewGlobal(b.RHS)
	gx := gpusim.NewGlobal(x)
	st, err := dev.Launch("zhangPCR", gpusim.LaunchConfig{Grid: m, Block: threads},
		func(blk *gpusim.Block) {
			cur := newSysShared[T](blk, n, false)
			nxt := newSysShared[T](blk, n, false)
			cur.load(blk, threads, blk.ID*n, ga, gb, gc, gd)
			for stride := 1; stride < n; stride <<= 1 {
				st := stride
				blk.Phase(func(t *gpusim.Thread) {
					for i := t.ID; i < n; i += threads {
						nxt.setRow(t, i, pcr.Combine(cur.row(t, i-st), cur.row(t, i), cur.row(t, i+st)))
						t.Eliminations(1)
					}
				})
				cur, nxt = nxt, cur
			}
			blk.Phase(func(t *gpusim.Thread) {
				for i := t.ID; i < n; i += threads {
					r := cur.row(t, i)
					cur.x.StoreT(t, cur.phys(i), r.D/r.B)
				}
			})
			cur.store(blk, threads, blk.ID*n, gx)
		})
	if err != nil {
		return nil, nil, err
	}
	return x, st, nil
}

// KernelCRPCR is the Zhang-Cohen-Owens CR+PCR hybrid (ref. [16]): CR
// forward reduction until at most switchSize unknowns remain, full PCR
// on that small core, then CR backward substitution.
func KernelCRPCR[T num.Real](dev *gpusim.Device, b *matrix.Batch[T], switchSize int) ([]T, *gpusim.Stats, error) {
	m, n := b.M, b.N
	if switchSize < 2 {
		switchSize = 2
	}
	// 5 arrays for the system plus 2×5 double-buffered core arrays.
	if need := (5*n + 10*switchSize) * num.SizeOf[T](); need > dev.SharedMemPerSM {
		return nil, nil, fmt.Errorf("zhang: CR+PCR on %d rows needs %d bytes shared memory, device SM has %d",
			n, need, dev.SharedMemPerSM)
	}
	threads, err := blockThreads(dev, (n+1)/2)
	if err != nil {
		return nil, nil, err
	}
	x := make([]T, m*n)
	ga, gb := gpusim.NewGlobal(b.Lower), gpusim.NewGlobal(b.Diag)
	gc, gd := gpusim.NewGlobal(b.Upper), gpusim.NewGlobal(b.RHS)
	gx := gpusim.NewGlobal(x)
	st, err := dev.Launch("zhangCRPCR", gpusim.LaunchConfig{Grid: m, Block: threads},
		func(blk *gpusim.Block) {
			s := newSysShared[T](blk, n, false)
			s.load(blk, threads, blk.ID*n, ga, gb, gc, gd)

			// CR forward until at most switchSize unknowns remain.
			span := 1
			for n/span > switchSize {
				span <<= 1
			}
			s.crForward(blk, threads, span)
			q := n / span // remaining unknowns: rows (i+1) % span == 0

			// PCR on the q-row core (locally tridiagonal: local row r is
			// global row (r+1)*span-1, coupled to local r±1).
			core := newSysShared[T](blk, q, false)
			coreNxt := newSysShared[T](blk, q, false)
			sp := span
			blk.Phase(func(t *gpusim.Thread) {
				for r := t.ID; r < q; r += threads {
					core.setRow(t, r, s.row(t, (r+1)*sp-1))
				}
			})
			cur, nxt := core, coreNxt
			for stride := 1; stride < q; stride <<= 1 {
				st := stride
				blk.Phase(func(t *gpusim.Thread) {
					for r := t.ID; r < q; r += threads {
						nxt.setRow(t, r, pcr.Combine(cur.row(t, r-st), cur.row(t, r), cur.row(t, r+st)))
						t.Eliminations(1)
					}
				})
				cur, nxt = nxt, cur
			}
			blk.Phase(func(t *gpusim.Thread) {
				for r := t.ID; r < q; r += threads {
					rr := cur.row(t, r)
					s.x.StoreT(t, s.phys((r+1)*sp-1), rr.D/rr.B)
				}
			})

			// CR backward from the switch level down.
			s.crBackward(blk, threads, span)
			s.store(blk, threads, blk.ID*n, gx)
		})
	if err != nil {
		return nil, nil, err
	}
	return x, st, nil
}

// KernelPCRThomas is the Sakharnykh/Zhang PCR+Thomas hybrid for systems
// that fit in shared memory (refs [5][17]): k PCR steps split the
// system into 2^k subsystems, each solved by one thread with Thomas —
// all inside one block's shared memory. This is what the paper's method
// "naturally reduces to ... when the input system fits shared memory".
func KernelPCRThomas[T num.Real](dev *gpusim.Device, b *matrix.Batch[T], k int) ([]T, *gpusim.Stats, error) {
	m, n := b.M, b.N
	if k < 0 {
		return nil, nil, fmt.Errorf("zhang: negative k")
	}
	for k > 0 && 1<<k > n {
		k--
	}
	if err := checkFit[T](dev, n, 9, false); err != nil {
		return nil, nil, err
	}
	threads, err := blockThreads(dev, n)
	if err != nil {
		return nil, nil, err
	}
	x := make([]T, m*n)
	ga, gb := gpusim.NewGlobal(b.Lower), gpusim.NewGlobal(b.Diag)
	gc, gd := gpusim.NewGlobal(b.Upper), gpusim.NewGlobal(b.RHS)
	gx := gpusim.NewGlobal(x)
	p := 1 << k
	st, err := dev.Launch("zhangPCRThomas", gpusim.LaunchConfig{Grid: m, Block: threads},
		func(blk *gpusim.Block) {
			cur := newSysShared[T](blk, n, false)
			nxt := newSysShared[T](blk, n, false)
			cur.load(blk, threads, blk.ID*n, ga, gb, gc, gd)
			for stride := 1; stride < p; stride <<= 1 {
				st := stride
				blk.Phase(func(t *gpusim.Thread) {
					for i := t.ID; i < n; i += threads {
						nxt.setRow(t, i, pcr.Combine(cur.row(t, i-st), cur.row(t, i), cur.row(t, i+st)))
						t.Eliminations(1)
					}
				})
				cur, nxt = nxt, cur
			}
			// Per-thread Thomas on the 2^k chains, in shared memory
			// (c/d fields are overwritten with c'/d').
			blk.Phase(func(t *gpusim.Thread) {
				r := t.ID
				if r >= p || r >= n {
					return
				}
				L := (n - r + p - 1) / p
				first := cur.row(t, r)
				cp := first.C / first.B
				dp := first.D / first.B
				cur.setRow(t, r, pcr.Row[T]{A: first.A, B: first.B, C: cp, D: dp})
				t.ThomasSteps(1)
				for l := 1; l < L; l++ {
					i := r + l*p
					row := cur.row(t, i)
					den := row.B - cp*row.A
					inv := 1 / den
					cp = row.C * inv
					dp = (row.D - dp*row.A) * inv
					cur.setRow(t, i, pcr.Row[T]{A: row.A, B: row.B, C: cp, D: dp})
					t.ThomasSteps(1)
				}
				xn := cur.row(t, r+(L-1)*p).D
				cur.x.StoreT(t, cur.phys(r+(L-1)*p), xn)
				for l := L - 2; l >= 0; l-- {
					i := r + l*p
					row := cur.row(t, i)
					xn = row.D - row.C*xn
					cur.x.StoreT(t, cur.phys(i), xn)
					t.ThomasSteps(1)
				}
			})
			cur.store(blk, threads, blk.ID*n, gx)
		})
	if err != nil {
		return nil, nil, err
	}
	return x, st, nil
}
