package zhang

import (
	"testing"
	"testing/quick"

	"gputrid/internal/cpu"
	"gputrid/internal/gpusim"
	"gputrid/internal/matrix"
	"gputrid/internal/pcr"
	"gputrid/internal/workload"
)

func dev() *gpusim.Device { return gpusim.GTX480() }

func checkAgainstThomas(t *testing.T, name string, b *matrix.Batch[float64], x []float64, tol float64) {
	t.Helper()
	want, err := cpu.SolveBatchSeq(b)
	if err != nil {
		t.Fatal(err)
	}
	if d := matrix.MaxRelDiff(x, want); d > tol {
		t.Errorf("%s: differs from Thomas by %g", name, d)
	}
}

func TestKernelCRMatchesThomas(t *testing.T) {
	for _, tc := range []struct{ m, n int }{
		{1, 2}, {1, 64}, {3, 127}, {2, 128}, {4, 255}, {2, 512}, {1, 1000},
	} {
		b := workload.Batch[float64](workload.DiagDominant, tc.m, tc.n, uint64(tc.m*tc.n))
		for _, padded := range []bool{false, true} {
			x, _, err := KernelCR(dev(), b, padded)
			if err != nil {
				t.Fatalf("%+v padded=%v: %v", tc, padded, err)
			}
			checkAgainstThomas(t, "CR", b, x, 1e-8)
		}
	}
}

func TestKernelCRMatchesReferenceCR(t *testing.T) {
	// The kernel must be the same arithmetic as pcr.SolveCR.
	b := workload.Batch[float64](workload.DiagDominant, 2, 300, 5)
	x, _, err := KernelCR(dev(), b, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < b.M; i++ {
		want := refCR(b, i)
		if d := matrix.MaxAbsDiff(x[i*b.N:(i+1)*b.N], want); d != 0 {
			t.Errorf("system %d: kernel CR differs from reference by %g", i, d)
		}
	}
}

func TestPaddingReducesBankConflicts(t *testing.T) {
	b := workload.Batch[float64](workload.DiagDominant, 4, 512, 7)
	_, plain, err := KernelCR(dev(), b, false)
	if err != nil {
		t.Fatal(err)
	}
	_, padded, err := KernelCR(dev(), b, true)
	if err != nil {
		t.Fatal(err)
	}
	if plain.SharedBankConflicts == 0 {
		t.Fatal("plain CR recorded no bank conflicts; the classic problem should appear")
	}
	if padded.SharedBankConflicts >= plain.SharedBankConflicts {
		t.Errorf("padding did not reduce conflicts: %d -> %d",
			plain.SharedBankConflicts, padded.SharedBankConflicts)
	}
}

func TestKernelPCRMatchesThomas(t *testing.T) {
	for _, tc := range []struct{ m, n int }{
		{1, 2}, {2, 64}, {3, 100}, {2, 512}, {1, 600},
	} {
		b := workload.Batch[float64](workload.DiagDominant, tc.m, tc.n, uint64(tc.n*7))
		x, _, err := KernelPCR(dev(), b)
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		checkAgainstThomas(t, "PCR", b, x, 1e-8)
	}
}

func TestKernelCRPCRMatchesThomas(t *testing.T) {
	for _, tc := range []struct{ m, n, sw int }{
		{1, 512, 64}, {2, 256, 32}, {1, 1000, 100}, {3, 64, 64}, {1, 48, 8},
	} {
		b := workload.Batch[float64](workload.DiagDominant, tc.m, tc.n, uint64(tc.n*13+tc.sw))
		x, _, err := KernelCRPCR(dev(), b, tc.sw)
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		checkAgainstThomas(t, "CRPCR", b, x, 1e-8)
	}
}

func TestKernelPCRThomasMatchesThomas(t *testing.T) {
	for _, tc := range []struct{ m, n, k int }{
		{1, 512, 5}, {2, 256, 4}, {3, 100, 3}, {1, 600, 6}, {2, 64, 0},
	} {
		b := workload.Batch[float64](workload.DiagDominant, tc.m, tc.n, uint64(tc.n*17+tc.k))
		x, _, err := KernelPCRThomas(dev(), b, tc.k)
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		checkAgainstThomas(t, "PCRThomas", b, x, 1e-8)
	}
}

func TestSharedMemoryWall(t *testing.T) {
	// The defining limitation: none of these solvers accept a system
	// larger than shared memory. (CR's 5 arrays of float64 cap at
	// 48K/40 = 1228 rows on the GTX480.)
	big := workload.Batch[float64](workload.DiagDominant, 1, 4096, 1)
	if _, _, err := KernelCR(dev(), big, false); err == nil {
		t.Error("CR accepted a 4096-row system")
	}
	if _, _, err := KernelPCR(dev(), big); err == nil {
		t.Error("PCR accepted a 4096-row system")
	}
	if _, _, err := KernelCRPCR(dev(), big, 64); err == nil {
		t.Error("CR+PCR accepted a 4096-row system")
	}
	if _, _, err := KernelPCRThomas(dev(), big, 5); err == nil {
		t.Error("PCR+Thomas accepted a 4096-row system")
	}
}

func TestOccupancyIsSharedLimited(t *testing.T) {
	// "Maximally occupying shared memory" caps residency.
	b := workload.Batch[float64](workload.DiagDominant, 2, 1000, 3)
	_, st, err := KernelCR(dev(), b, false)
	if err != nil {
		t.Fatal(err)
	}
	if occ := dev().Occupancy(st.ThreadsPerBlock, st.SharedPerBlock); occ > 1 {
		t.Errorf("occupancy = %d blocks/SM for a 1000-row in-shared CR, want 1", occ)
	}
}

func TestFloat32Kernels(t *testing.T) {
	b := workload.Batch[float32](workload.DiagDominant, 2, 256, 9)
	want, err := cpu.SolveBatchSeq(b)
	if err != nil {
		t.Fatal(err)
	}
	for name, run := range map[string]func() ([]float32, *gpusim.Stats, error){
		"cr":        func() ([]float32, *gpusim.Stats, error) { return KernelCR(dev(), b, true) },
		"pcr":       func() ([]float32, *gpusim.Stats, error) { return KernelPCR(dev(), b) },
		"crpcr":     func() ([]float32, *gpusim.Stats, error) { return KernelCRPCR(dev(), b, 32) },
		"pcrthomas": func() ([]float32, *gpusim.Stats, error) { return KernelPCRThomas(dev(), b, 4) },
	} {
		x, _, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if d := matrix.MaxRelDiff(x, want); d > 1e-3 {
			t.Errorf("%s float32: differs from Thomas by %g", name, d)
		}
	}
}

func TestAllZhangSolversProperty(t *testing.T) {
	f := func(seed uint32, mRaw, nRaw uint8) bool {
		m := int(mRaw)%4 + 1
		n := int(nRaw)%500 + 2
		b := workload.Batch[float64](workload.DiagDominant, m, n, uint64(seed))
		want, err := cpu.SolveBatchSeq(b)
		if err != nil {
			return false
		}
		for _, run := range []func() ([]float64, *gpusim.Stats, error){
			func() ([]float64, *gpusim.Stats, error) { return KernelCR(dev(), b, false) },
			func() ([]float64, *gpusim.Stats, error) { return KernelPCR(dev(), b) },
			func() ([]float64, *gpusim.Stats, error) { return KernelCRPCR(dev(), b, 32) },
			func() ([]float64, *gpusim.Stats, error) { return KernelPCRThomas(dev(), b, 4) },
		} {
			x, _, err := run()
			if err != nil {
				return false
			}
			if matrix.MaxRelDiff(x, want) > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// refCR solves system i of the batch with the host reference CR.
func refCR(b *matrix.Batch[float64], i int) []float64 {
	return refCRSolve(b.System(i))
}

// refCRSolve delegates to the pcr package's reference implementation.
func refCRSolve(s *matrix.System[float64]) []float64 {
	return pcr.SolveCR(s)
}
