// Package cpu implements the CPU reference solvers that stand in for
// the paper's Intel MKL baselines: a tuned sequential Thomas solver
// (MKL's dgtsv on one thread is LU on a tridiagonal matrix — the Thomas
// algorithm) and a batch-parallel variant that solves independent
// systems on separate goroutines (MKL becomes multithreaded exactly
// when M >= 2 independent systems exist, per the paper §IV).
package cpu

import (
	"errors"
	"runtime"
	"sync"

	"gputrid/internal/matrix"
	"gputrid/internal/num"
)

// ErrZeroPivot is returned when forward elimination meets a vanishing
// pivot; the non-pivoting Thomas algorithm cannot continue.
var ErrZeroPivot = errors.New("cpu: zero pivot in Thomas elimination")

// Workspace holds the scratch vectors for a Thomas solve so repeated
// solves (time stepping, benchmarks) do not reallocate.
type Workspace[T num.Real] struct {
	cp []T // modified upper diagonal c'
	dp []T // modified right-hand side d'
}

// NewWorkspace returns a workspace for systems of up to n rows.
func NewWorkspace[T num.Real](n int) *Workspace[T] {
	return &Workspace[T]{cp: make([]T, n), dp: make([]T, n)}
}

func (w *Workspace[T]) grow(n int) {
	if len(w.cp) < n {
		w.cp = make([]T, n)
		w.dp = make([]T, n)
	}
}

// Thomas solves one tridiagonal system with the classic two-phase
// Thomas algorithm (paper Eqs. 2-4): forward reduction then backward
// substitution. 2n-1 elimination steps, O(n) work.
func Thomas[T num.Real](s *matrix.System[T]) ([]T, error) {
	x := make([]T, s.N())
	w := NewWorkspace[T](s.N())
	if err := ThomasInto(s, x, w); err != nil {
		return nil, err
	}
	return x, nil
}

// ThomasInto is Thomas with caller-provided output and workspace.
func ThomasInto[T num.Real](s *matrix.System[T], x []T, w *Workspace[T]) error {
	n := s.N()
	if n == 0 {
		return nil
	}
	if len(x) != n {
		panic("cpu: ThomasInto output length mismatch")
	}
	w.grow(n)
	a, b, c, d := s.Lower, s.Diag, s.Upper, s.RHS
	cp, dp := w.cp, w.dp

	if b[0] == 0 {
		return ErrZeroPivot
	}
	cp[0] = c[0] / b[0]
	dp[0] = d[0] / b[0]
	for i := 1; i < n; i++ {
		den := b[i] - cp[i-1]*a[i]
		if den == 0 {
			return ErrZeroPivot
		}
		inv := 1 / den
		if i < n-1 {
			cp[i] = c[i] * inv
		}
		dp[i] = (d[i] - dp[i-1]*a[i]) * inv
	}
	x[n-1] = dp[n-1]
	for i := n - 2; i >= 0; i-- {
		x[i] = dp[i] - cp[i]*x[i+1]
	}
	return nil
}

// SolveBatchSeq solves every system of the batch one after another on
// the calling goroutine — the MKL-sequential proxy. The returned slice
// holds the M solutions contiguously.
func SolveBatchSeq[T num.Real](b *matrix.Batch[T]) ([]T, error) {
	x := make([]T, b.M*b.N)
	w := NewWorkspace[T](b.N)
	for i := 0; i < b.M; i++ {
		if err := ThomasInto(b.System(i), x[i*b.N:(i+1)*b.N], w); err != nil {
			return nil, err
		}
	}
	return x, nil
}

// SolveBatchParallel solves the batch with one goroutine per worker,
// systems distributed round-robin — the MKL-multithreaded proxy.
// workers <= 0 selects GOMAXPROCS.
func SolveBatchParallel[T num.Real](b *matrix.Batch[T], workers int) ([]T, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > b.M {
		workers = b.M
	}
	x := make([]T, b.M*b.N)
	if workers <= 1 {
		if r, err := SolveBatchSeq(b); err != nil {
			return nil, err
		} else {
			copy(x, r)
			return x, nil
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, workers)
	wg.Add(workers)
	for wkr := 0; wkr < workers; wkr++ {
		go func(wkr int) {
			defer wg.Done()
			ws := NewWorkspace[T](b.N)
			for i := wkr; i < b.M; i += workers {
				if err := ThomasInto(b.System(i), x[i*b.N:(i+1)*b.N], ws); err != nil {
					errs[wkr] = err
					return
				}
			}
		}(wkr)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return x, nil
}

// ThomasEliminationSteps returns the paper's step count for one n-row
// Thomas solve: 2n - 1.
func ThomasEliminationSteps(n int) int64 {
	if n <= 0 {
		return 0
	}
	return 2*int64(n) - 1
}
