package cpu

import (
	"fmt"

	"gputrid/internal/matrix"
	"gputrid/internal/num"
)

// BatchFactorization caches the Thomas elimination of a batch's
// matrices (the LU of each tridiagonal matrix) so that time-stepping
// applications — ADI, Crank-Nicolson, splines with fixed knots — can
// re-solve against new right-hand sides at roughly half the work and
// without touching the matrix again.
type BatchFactorization[T num.Real] struct {
	m, n   int
	lower  []T // copy of the sub-diagonals
	cp     []T // c'[i] = c[i] / den[i]
	invDen []T // 1 / (b[i] − c'[i-1]·a[i])
}

// FactorBatch eliminates every matrix of the batch. The batch's RHS is
// ignored; the returned factorization is independent of b's storage.
func FactorBatch[T num.Real](b *matrix.Batch[T]) (*BatchFactorization[T], error) {
	m, n := b.M, b.N
	f := &BatchFactorization[T]{
		m: m, n: n,
		lower:  append([]T(nil), b.Lower...),
		cp:     make([]T, m*n),
		invDen: make([]T, m*n),
	}
	for i := 0; i < m; i++ {
		base := i * n
		den := b.Diag[base]
		if den == 0 {
			return nil, fmt.Errorf("cpu: system %d: %w", i, ErrZeroPivot)
		}
		f.invDen[base] = 1 / den
		if n > 1 {
			f.cp[base] = b.Upper[base] / den
		}
		for j := 1; j < n; j++ {
			k := base + j
			den = b.Diag[k] - f.cp[k-1]*b.Lower[k]
			if den == 0 {
				return nil, fmt.Errorf("cpu: system %d row %d: %w", i, j, ErrZeroPivot)
			}
			f.invDen[k] = 1 / den
			if j < n-1 {
				f.cp[k] = b.Upper[k] / den
			}
		}
	}
	return f, nil
}

// Shape returns the batch shape (M systems × N rows).
func (f *BatchFactorization[T]) Shape() (m, n int) { return f.m, f.n }

// Solve computes the solutions for the given right-hand sides (length
// M·N, contiguous) into x (same length). rhs and x may alias.
func (f *BatchFactorization[T]) Solve(rhs, x []T) error {
	if len(rhs) != f.m*f.n || len(x) != f.m*f.n {
		return fmt.Errorf("cpu: factorization solve length mismatch (want %d)", f.m*f.n)
	}
	for i := 0; i < f.m; i++ {
		base := i * f.n
		// Forward substitution with cached pivots.
		prev := rhs[base] * f.invDen[base]
		x[base] = prev
		for j := 1; j < f.n; j++ {
			k := base + j
			prev = (rhs[k] - prev*f.lower[k]) * f.invDen[k]
			x[k] = prev
		}
		// Backward substitution.
		for j := f.n - 2; j >= 0; j-- {
			k := base + j
			x[k] -= f.cp[k] * x[k+1]
		}
	}
	return nil
}
