package cpu

import (
	"gputrid/internal/matrix"
	"gputrid/internal/num"
)

// GTSVWorkspace holds the working copies a pivoting solve mutates (the
// three diagonals, plus the second super-diagonal filled in by row
// swaps), so repeated single-system re-solves — the guard's per-system
// rescue path — do not reallocate.
type GTSVWorkspace[T num.Real] struct {
	dl, d, du, du2 []T
}

// NewGTSVWorkspace returns a workspace for systems of up to n rows.
func NewGTSVWorkspace[T num.Real](n int) *GTSVWorkspace[T] {
	w := &GTSVWorkspace[T]{}
	w.grow(n)
	return w
}

func (w *GTSVWorkspace[T]) grow(n int) {
	if len(w.dl) < n {
		w.dl = make([]T, n)
		w.d = make([]T, n)
		w.du = make([]T, n)
		w.du2 = make([]T, n)
	}
}

// SolveGTSV solves one tridiagonal system with LU decomposition and
// partial pivoting — the algorithm behind LAPACK/MKL dgtsv, the paper's
// actual CPU baseline. Unlike Thomas it is stable for any nonsingular
// tridiagonal matrix, at the price of an extra super-diagonal fill-in
// vector and branchy row swaps (the reason the proxy cost model charges
// it more cycles per row than textbook Thomas).
//
// The input is not modified.
func SolveGTSV[T num.Real](s *matrix.System[T]) ([]T, error) {
	x := make([]T, s.N())
	if err := SolveGTSVInto(s, x, NewGTSVWorkspace[T](s.N())); err != nil {
		return nil, err
	}
	return x, nil
}

// SolveGTSVInto is SolveGTSV with caller-provided output and workspace:
// it re-solves a single system without allocating and without touching
// any other system of a batch (pass a Batch.System(i) view). On error x
// is left unspecified.
func SolveGTSVInto[T num.Real](s *matrix.System[T], x []T, w *GTSVWorkspace[T]) error {
	n := s.N()
	if len(x) != n {
		panic("cpu: SolveGTSVInto output length mismatch")
	}
	if n == 0 {
		return nil
	}
	w.grow(n)
	// Working copies of the three diagonals, RHS, and the second
	// super-diagonal fill-in introduced by row swaps.
	dl := w.dl[:n] // dl[i] couples row i to i-1
	d := w.d[:n]
	du := w.du[:n]
	du2 := w.du2[:n]
	copy(dl, s.Lower)
	copy(d, s.Diag)
	copy(du, s.Upper)
	for i := range du2 {
		du2[i] = 0 // fill-in: row i to i+2
	}
	copy(x, s.RHS)

	for i := 0; i < n-1; i++ {
		if num.Abs(d[i]) >= num.Abs(dl[i+1]) {
			// No swap: eliminate dl[i+1] with row i.
			if d[i] == 0 {
				return ErrZeroPivot
			}
			f := dl[i+1] / d[i]
			d[i+1] -= f * du[i]
			x[i+1] -= f * x[i]
			// du2 of row i stays zero in this branch.
		} else {
			// Swap rows i and i+1, then eliminate.
			f := d[i] / dl[i+1]
			d[i], dl[i+1] = dl[i+1], 0 // pivot now the old subdiagonal entry
			newDu := d[i+1]
			d[i+1] = du[i] - f*newDu
			du[i] = newDu
			if i < n-2 {
				du2[i] = du[i+1]
				du[i+1] = -f * du[i+1]
			}
			x[i], x[i+1] = x[i+1], x[i]-f*x[i+1]
		}
	}
	if d[n-1] == 0 {
		return ErrZeroPivot
	}

	// Back substitution with the extra diagonal.
	x[n-1] /= d[n-1]
	if n >= 2 {
		x[n-2] = (x[n-2] - du[n-2]*x[n-1]) / d[n-2]
	}
	for i := n - 3; i >= 0; i-- {
		x[i] = (x[i] - du[i]*x[i+1] - du2[i]*x[i+2]) / d[i]
	}
	return nil
}

// SolveSystemGTSV re-solves system i of a batch with the pivoting
// algorithm, writing the solution into x[i*N:(i+1)*N] of a full batch
// solution vector. It reads system i through a view, so nothing else of
// the batch is copied — the per-system rescue entry point of the
// guarded pipeline.
func SolveSystemGTSV[T num.Real](b *matrix.Batch[T], i int, x []T, w *GTSVWorkspace[T]) error {
	if len(x) != b.M*b.N {
		panic("cpu: SolveSystemGTSV solution length mismatch")
	}
	return SolveGTSVInto(b.System(i), x[i*b.N:(i+1)*b.N], w)
}

// SolveBatchGTSV runs SolveGTSV over every system of a batch,
// returning the solutions contiguously.
func SolveBatchGTSV[T num.Real](b *matrix.Batch[T]) ([]T, error) {
	x := make([]T, b.M*b.N)
	w := NewGTSVWorkspace[T](b.N)
	for i := 0; i < b.M; i++ {
		if err := SolveGTSVInto(b.System(i), x[i*b.N:(i+1)*b.N], w); err != nil {
			return nil, err
		}
	}
	return x, nil
}
