package cpu

import (
	"gputrid/internal/matrix"
	"gputrid/internal/num"
)

// SolveGTSV solves one tridiagonal system with LU decomposition and
// partial pivoting — the algorithm behind LAPACK/MKL dgtsv, the paper's
// actual CPU baseline. Unlike Thomas it is stable for any nonsingular
// tridiagonal matrix, at the price of an extra super-diagonal fill-in
// vector and branchy row swaps (the reason the proxy cost model charges
// it more cycles per row than textbook Thomas).
//
// The input is not modified.
func SolveGTSV[T num.Real](s *matrix.System[T]) ([]T, error) {
	n := s.N()
	x := make([]T, n)
	if n == 0 {
		return x, nil
	}
	// Working copies of the three diagonals, RHS, and the second
	// super-diagonal fill-in introduced by row swaps.
	dl := append([]T(nil), s.Lower...) // dl[i] couples row i to i-1
	d := append([]T(nil), s.Diag...)
	du := append([]T(nil), s.Upper...)
	du2 := make([]T, n) // fill-in: row i to i+2
	copy(x, s.RHS)

	for i := 0; i < n-1; i++ {
		if num.Abs(d[i]) >= num.Abs(dl[i+1]) {
			// No swap: eliminate dl[i+1] with row i.
			if d[i] == 0 {
				return nil, ErrZeroPivot
			}
			f := dl[i+1] / d[i]
			d[i+1] -= f * du[i]
			x[i+1] -= f * x[i]
			// du2 of row i stays zero in this branch.
		} else {
			// Swap rows i and i+1, then eliminate.
			f := d[i] / dl[i+1]
			d[i], dl[i+1] = dl[i+1], 0 // pivot now the old subdiagonal entry
			newDu := d[i+1]
			d[i+1] = du[i] - f*newDu
			du[i] = newDu
			if i < n-2 {
				du2[i] = du[i+1]
				du[i+1] = -f * du[i+1]
			}
			x[i], x[i+1] = x[i+1], x[i]-f*x[i+1]
		}
	}
	if d[n-1] == 0 {
		return nil, ErrZeroPivot
	}

	// Back substitution with the extra diagonal.
	x[n-1] /= d[n-1]
	if n >= 2 {
		x[n-2] = (x[n-2] - du[n-2]*x[n-1]) / d[n-2]
	}
	for i := n - 3; i >= 0; i-- {
		x[i] = (x[i] - du[i]*x[i+1] - du2[i]*x[i+2]) / d[i]
	}
	return x, nil
}

// SolveBatchGTSV runs SolveGTSV over every system of a batch,
// returning the solutions contiguously.
func SolveBatchGTSV[T num.Real](b *matrix.Batch[T]) ([]T, error) {
	x := make([]T, b.M*b.N)
	for i := 0; i < b.M; i++ {
		xi, err := SolveGTSV(b.System(i))
		if err != nil {
			return nil, err
		}
		copy(x[i*b.N:], xi)
	}
	return x, nil
}
