package cpu

import (
	"testing"
	"testing/quick"

	"gputrid/internal/matrix"
	"gputrid/internal/workload"
)

func TestThomasKnown(t *testing.T) {
	// [2 1; 1 2] x = [3; 3] -> x = (1, 1)
	s := matrix.NewSystem[float64](2)
	s.Diag[0], s.Upper[0], s.RHS[0] = 2, 1, 3
	s.Lower[1], s.Diag[1], s.RHS[1] = 1, 2, 3
	x, err := Thomas(s)
	if err != nil {
		t.Fatal(err)
	}
	if matrix.MaxAbsDiff(x, []float64{1, 1}) > 1e-14 {
		t.Errorf("x = %v", x)
	}
}

func TestThomasSingleRow(t *testing.T) {
	s := matrix.NewSystem[float64](1)
	s.Diag[0], s.RHS[0] = 4, 8
	x, err := Thomas(s)
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 2 {
		t.Errorf("x = %v, want [2]", x)
	}
}

func TestThomasEmpty(t *testing.T) {
	s := matrix.NewSystem[float64](0)
	x, err := Thomas(s)
	if err != nil || len(x) != 0 {
		t.Errorf("empty solve: x=%v err=%v", x, err)
	}
}

func TestThomasAgainstDense(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8, 17, 64, 255} {
		s := workload.System[float64](workload.DiagDominant, n, uint64(n))
		x, err := Thomas(s)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		ref, err := matrix.SolveDense(s)
		if err != nil {
			t.Fatalf("n=%d dense: %v", n, err)
		}
		if d := matrix.MaxRelDiff(x, ref); d > 1e-10 {
			t.Errorf("n=%d: max rel diff vs dense = %g", n, d)
		}
	}
}

func TestThomasResidualProperty(t *testing.T) {
	f := func(seed uint32, nRaw uint16, kindRaw uint8) bool {
		n := int(nRaw)%500 + 1
		kind := workload.Kind(int(kindRaw) % 4)
		s := workload.System[float64](kind, n, uint64(seed))
		x, err := Thomas(s)
		if err != nil {
			return false
		}
		return matrix.CheckSolution(s, x) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestThomasFloat32(t *testing.T) {
	s := workload.System[float32](workload.DiagDominant, 128, 5)
	x, err := Thomas(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := matrix.CheckSolution(s, x); err != nil {
		t.Error(err)
	}
}

func TestThomasZeroPivot(t *testing.T) {
	s := matrix.NewSystem[float64](2)
	// b[0] = 0 defeats non-pivoting elimination.
	s.Upper[0], s.RHS[0] = 1, 2
	s.Lower[1], s.RHS[1] = 1, 3
	if _, err := Thomas(s); err != ErrZeroPivot {
		t.Errorf("err = %v, want ErrZeroPivot", err)
	}
}

func TestThomasIntoWorkspaceReuse(t *testing.T) {
	w := NewWorkspace[float64](4)
	x := make([]float64, 64)
	for trial := 0; trial < 3; trial++ {
		s := workload.System[float64](workload.Toeplitz, 64, uint64(trial))
		if err := ThomasInto(s, x, w); err != nil { // forces grow
			t.Fatal(err)
		}
		if err := matrix.CheckSolution(s, x); err != nil {
			t.Errorf("trial %d: %v", trial, err)
		}
	}
}

func TestSolveBatchSeq(t *testing.T) {
	b := workload.Batch[float64](workload.DiagDominant, 7, 33, 3)
	x, err := SolveBatchSeq(b)
	if err != nil {
		t.Fatal(err)
	}
	if r := matrix.MaxResidual(b, x); r > matrix.ResidualTolerance[float64](33) {
		t.Errorf("max residual %g", r)
	}
}

func TestSolveBatchParallelMatchesSeq(t *testing.T) {
	b := workload.Batch[float64](workload.DiagDominant, 16, 50, 9)
	seq, err := SolveBatchSeq(b)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 2, 3, 8, 100} {
		par, err := SolveBatchParallel(b, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if d := matrix.MaxAbsDiff(seq, par); d != 0 {
			t.Errorf("workers=%d: parallel differs from sequential by %g", workers, d)
		}
	}
}

func TestSolveBatchParallelError(t *testing.T) {
	b := matrix.NewBatch[float64](4, 3) // all-zero systems: zero pivot
	if _, err := SolveBatchParallel(b, 2); err == nil {
		t.Error("zero-pivot batch accepted")
	}
	if _, err := SolveBatchSeq(b); err == nil {
		t.Error("zero-pivot batch accepted (seq)")
	}
}

func TestThomasEliminationSteps(t *testing.T) {
	if ThomasEliminationSteps(512) != 1023 {
		t.Error("2n-1 wrong")
	}
	if ThomasEliminationSteps(0) != 0 || ThomasEliminationSteps(-3) != 0 {
		t.Error("degenerate step counts wrong")
	}
}
