package cpu

import (
	"testing"

	"gputrid/internal/matrix"
	"gputrid/internal/workload"
)

// TestSolveGTSVIntoMatchesAllocating: the workspace path must agree
// bitwise with SolveGTSV across repeated, size-varying reuse.
func TestSolveGTSVIntoMatchesAllocating(t *testing.T) {
	w := NewGTSVWorkspace[float64](1) // deliberately undersized: grow() must handle it
	for _, n := range []int{1, 2, 7, 64, 33} {
		s := workload.System[float64](workload.DiagDominant, n, uint64(n))
		want, err := SolveGTSV(s)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]float64, n)
		if err := SolveGTSVInto(s, got, w); err != nil {
			t.Fatal(err)
		}
		if d := matrix.MaxAbsDiff(got, want); d != 0 {
			t.Errorf("n=%d: workspace solve differs from allocating solve by %g", n, d)
		}
	}
}

// TestSolveGTSVIntoPivotingReuse: a system that forces row swaps must
// not leave fill-in state behind that corrupts the next solve.
func TestSolveGTSVIntoPivotingReuse(t *testing.T) {
	swappy := workload.System[float64](workload.DiagDominant, 32, 3)
	swappy.Diag[0] = 0 // first pivot vanishes; GTSV must swap
	w := NewGTSVWorkspace[float64](32)
	x := make([]float64, 32)
	if err := SolveGTSVInto(swappy, x, w); err != nil {
		t.Fatal(err)
	}
	if err := matrix.CheckSolution(swappy, x); err != nil {
		t.Errorf("pivoting solve: %v", err)
	}
	// Now a clean solve with the same (dirty) workspace.
	clean := workload.System[float64](workload.DiagDominant, 32, 4)
	want, err := SolveGTSV(clean)
	if err != nil {
		t.Fatal(err)
	}
	if err := SolveGTSVInto(clean, x, w); err != nil {
		t.Fatal(err)
	}
	if d := matrix.MaxAbsDiff(x, want); d != 0 {
		t.Errorf("workspace reuse after pivoting changed the result by %g", d)
	}
}

// TestSolveSystemGTSV re-solves one slot of a batch in place without
// touching the neighbours' solutions.
func TestSolveSystemGTSV(t *testing.T) {
	b := workload.Batch[float64](workload.DiagDominant, 4, 16, 9)
	x := make([]float64, 4*16)
	for i := range x {
		x[i] = -1 // sentinel
	}
	w := NewGTSVWorkspace[float64](16)
	if err := SolveSystemGTSV(b, 2, x, w); err != nil {
		t.Fatal(err)
	}
	if err := matrix.CheckSolution(b.System(2), x[2*16:3*16]); err != nil {
		t.Errorf("slot 2: %v", err)
	}
	for i, v := range x {
		if (i < 2*16 || i >= 3*16) && v != -1 {
			t.Fatalf("x[%d] = %g: neighbour slot touched", i, v)
		}
	}
}
