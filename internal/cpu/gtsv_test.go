package cpu

import (
	"testing"
	"testing/quick"

	"gputrid/internal/matrix"
	"gputrid/internal/num"
	"gputrid/internal/workload"
)

func TestGTSVMatchesDense(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 8, 17, 64, 255} {
		s := workload.System[float64](workload.DiagDominant, n, uint64(n)*5+3)
		x, err := SolveGTSV(s)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		ref, err := matrix.SolveDense(s)
		if err != nil {
			t.Fatal(err)
		}
		if d := matrix.MaxRelDiff(x, ref); d > 1e-11 {
			t.Errorf("n=%d: max rel diff %g", n, d)
		}
	}
}

func TestGTSVHandlesZeroDiagonal(t *testing.T) {
	// [0 1; 1 0] x = [2; 3]: Thomas fails, pivoting succeeds.
	s := matrix.NewSystem[float64](2)
	s.Upper[0], s.RHS[0] = 1, 2
	s.Lower[1], s.RHS[1] = 1, 3
	if _, err := Thomas(s); err != ErrZeroPivot {
		t.Fatalf("Thomas err = %v, want ErrZeroPivot", err)
	}
	x, err := SolveGTSV(s)
	if err != nil {
		t.Fatal(err)
	}
	if num.Abs(x[0]-3) > 1e-14 || num.Abs(x[1]-2) > 1e-14 {
		t.Errorf("x = %v, want [3 2]", x)
	}
}

func TestGTSVZeroDiagonalInterior(t *testing.T) {
	// Interior zero pivots needing swaps on several rows.
	n := 6
	s := matrix.NewSystem[float64](n)
	for i := 0; i < n; i++ {
		if i > 0 {
			s.Lower[i] = 2
		}
		if i < n-1 {
			s.Upper[i] = 1
		}
		s.Diag[i] = 0
		s.RHS[i] = float64(i + 1)
	}
	x, err := SolveGTSV(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := matrix.CheckSolution(s, x); err != nil {
		t.Error(err)
	}
}

func TestGTSVNearSingularBeatsThomas(t *testing.T) {
	// On near-singular systems the pivoted solve must stay accurate.
	s := workload.System[float64](workload.NearSingular, 96, 7)
	x, err := SolveGTSV(s)
	if err != nil {
		t.Fatal(err)
	}
	if r := matrix.Residual(s, x); r > 1e-12 {
		t.Errorf("pivoted residual %g", r)
	}
}

func TestGTSVSingular(t *testing.T) {
	s := matrix.NewSystem[float64](3) // zero matrix
	if _, err := SolveGTSV(s); err != ErrZeroPivot {
		t.Errorf("err = %v, want ErrZeroPivot", err)
	}
}

func TestGTSVEmptyAndSingle(t *testing.T) {
	if x, err := SolveGTSV(matrix.NewSystem[float64](0)); err != nil || len(x) != 0 {
		t.Error("empty solve failed")
	}
	s := matrix.NewSystem[float64](1)
	s.Diag[0], s.RHS[0] = 2, 6
	x, err := SolveGTSV(s)
	if err != nil || x[0] != 3 {
		t.Errorf("x = %v err = %v", x, err)
	}
}

func TestGTSVBatch(t *testing.T) {
	b := workload.Batch[float64](workload.NearSingular, 5, 40, 9)
	x, err := SolveBatchGTSV(b)
	if err != nil {
		t.Fatal(err)
	}
	if r := matrix.MaxResidual(b, x); r > 1e-11 {
		t.Errorf("batch residual %g", r)
	}
}

func TestGTSVAgreesWithThomasOnDominant(t *testing.T) {
	f := func(seed uint32, nRaw uint16) bool {
		n := int(nRaw)%400 + 1
		s := workload.System[float64](workload.DiagDominant, n, uint64(seed))
		xg, err := SolveGTSV(s)
		if err != nil {
			return false
		}
		xt, err := Thomas(s)
		if err != nil {
			return false
		}
		return matrix.MaxRelDiff(xg, xt) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestGTSVFloat32(t *testing.T) {
	s := workload.System[float32](workload.DiagDominant, 128, 11)
	x, err := SolveGTSV(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := matrix.CheckSolution(s, x); err != nil {
		t.Error(err)
	}
}
