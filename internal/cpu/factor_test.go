package cpu

import (
	"testing"
	"testing/quick"

	"gputrid/internal/matrix"
	"gputrid/internal/num"
	"gputrid/internal/workload"
)

func TestFactorBatchMatchesThomas(t *testing.T) {
	b := workload.Batch[float64](workload.DiagDominant, 6, 77, 3)
	f, err := FactorBatch(b)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, b.M*b.N)
	if err := f.Solve(b.RHS, x); err != nil {
		t.Fatal(err)
	}
	want, err := SolveBatchSeq(b)
	if err != nil {
		t.Fatal(err)
	}
	if d := matrix.MaxAbsDiff(x, want); d > 1e-14 {
		t.Errorf("factored solve differs from Thomas by %g", d)
	}
}

func TestFactorBatchRepeatedSolves(t *testing.T) {
	// Time-stepping pattern: one factorization, many right-hand sides.
	b := workload.Batch[float64](workload.Heat, 4, 64, 9)
	f, err := FactorBatch(b)
	if err != nil {
		t.Fatal(err)
	}
	rng := num.NewRNG(5)
	x := make([]float64, b.M*b.N)
	for step := 0; step < 5; step++ {
		for i := range b.RHS {
			b.RHS[i] = rng.Range(-1, 1)
		}
		if err := f.Solve(b.RHS, x); err != nil {
			t.Fatal(err)
		}
		if r := matrix.MaxResidual(b, x); r > matrix.ResidualTolerance[float64](b.N) {
			t.Fatalf("step %d: residual %g", step, r)
		}
	}
}

func TestFactorBatchInPlace(t *testing.T) {
	b := workload.Batch[float64](workload.DiagDominant, 3, 40, 11)
	f, err := FactorBatch(b)
	if err != nil {
		t.Fatal(err)
	}
	rhs := append([]float64(nil), b.RHS...)
	if err := f.Solve(rhs, rhs); err != nil { // aliased
		t.Fatal(err)
	}
	want, _ := SolveBatchSeq(b)
	if d := matrix.MaxAbsDiff(rhs, want); d > 1e-14 {
		t.Errorf("in-place solve differs by %g", d)
	}
}

func TestFactorBatchIndependentOfInput(t *testing.T) {
	// Mutating the batch after factoring must not change results.
	b := workload.Batch[float64](workload.DiagDominant, 2, 16, 13)
	f, err := FactorBatch(b)
	if err != nil {
		t.Fatal(err)
	}
	rhs := append([]float64(nil), b.RHS...)
	want := make([]float64, len(rhs))
	if err := f.Solve(rhs, want); err != nil {
		t.Fatal(err)
	}
	for i := range b.Lower {
		b.Lower[i] = 999
		b.Diag[i] = -1
		b.Upper[i] = 42
	}
	got := make([]float64, len(rhs))
	if err := f.Solve(rhs, got); err != nil {
		t.Fatal(err)
	}
	if d := matrix.MaxAbsDiff(got, want); d != 0 {
		t.Errorf("factorization aliased the input batch (diff %g)", d)
	}
}

func TestFactorBatchErrors(t *testing.T) {
	sing := matrix.NewBatch[float64](1, 4) // zero matrix
	if _, err := FactorBatch(sing); err == nil {
		t.Error("singular factorization accepted")
	}
	b := workload.Batch[float64](workload.DiagDominant, 2, 8, 1)
	f, err := FactorBatch(b)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Solve(make([]float64, 3), make([]float64, 16)); err == nil {
		t.Error("short rhs accepted")
	}
	if m, n := f.Shape(); m != 2 || n != 8 {
		t.Errorf("Shape = %d,%d", m, n)
	}
}

func TestFactorBatchProperty(t *testing.T) {
	f := func(seed uint32, mRaw, nRaw uint8) bool {
		m := int(mRaw)%8 + 1
		n := int(nRaw)%100 + 1
		b := workload.Batch[float64](workload.DiagDominant, m, n, uint64(seed))
		fac, err := FactorBatch(b)
		if err != nil {
			return false
		}
		x := make([]float64, m*n)
		if err := fac.Solve(b.RHS, x); err != nil {
			return false
		}
		return matrix.MaxResidual(b, x) <= matrix.ResidualTolerance[float64](n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
