package adi

import (
	"math"
	"testing"

	"gputrid/internal/core"
)

func fill2D(g Grid2D, f func(x, y float64) float64) []float64 {
	u := make([]float64, g.NX*g.NY)
	for j := 0; j < g.NY; j++ {
		y := float64(j+1) * g.HY
		for i := 0; i < g.NX; i++ {
			x := float64(i+1) * g.HX
			u[g.idx(i, j)] = f(x, y)
		}
	}
	return u
}

func maxErr2D(g Grid2D, u []float64, f func(x, y float64) float64) float64 {
	var worst float64
	for j := 0; j < g.NY; j++ {
		y := float64(j+1) * g.HY
		for i := 0; i < g.NX; i++ {
			x := float64(i+1) * g.HX
			if e := math.Abs(u[g.idx(i, j)] - f(x, y)); e > worst {
				worst = e
			}
		}
	}
	return worst
}

func TestHeat2DMatchesAnalyticDecay(t *testing.T) {
	g := NewGrid2D(63, 63)
	const alpha, tEnd, steps = 0.05, 0.02, 40
	dt := tEnd / steps
	u := fill2D(g, func(x, y float64) float64 {
		return math.Sin(math.Pi*x) * math.Sin(2*math.Pi*y)
	})
	h := &Heat2D[float64]{Grid: g, Alpha: alpha, Backend: CPUBackend[float64]()}
	for s := 0; s < steps; s++ {
		if err := h.Step(u, nil, dt); err != nil {
			t.Fatal(err)
		}
	}
	decay := math.Exp(-(1 + 4) * math.Pi * math.Pi * alpha * tEnd)
	err := maxErr2D(g, u, func(x, y float64) float64 {
		return math.Sin(math.Pi*x) * math.Sin(2*math.Pi*y) * decay
	})
	if err > 5e-4 {
		t.Errorf("Heat2D error %g vs analytic decay", err)
	}
}

func TestHeat2DGPUBackendMatchesCPU(t *testing.T) {
	g := NewGrid2D(31, 47)
	u1 := fill2D(g, func(x, y float64) float64 { return x * (1 - x) * y * (1 - y) })
	u2 := append([]float64(nil), u1...)
	dt := 1e-3
	hc := &Heat2D[float64]{Grid: g, Alpha: 0.1, Backend: CPUBackend[float64]()}
	hg := &Heat2D[float64]{Grid: g, Alpha: 0.1, Backend: GPUBackend[float64](core.Config{K: core.KAuto})}
	for s := 0; s < 3; s++ {
		if err := hc.Step(u1, nil, dt); err != nil {
			t.Fatal(err)
		}
		if err := hg.Step(u2, nil, dt); err != nil {
			t.Fatal(err)
		}
	}
	var worst float64
	for i := range u1 {
		if d := math.Abs(u1[i] - u2[i]); d > worst {
			worst = d
		}
	}
	if worst > 1e-11 {
		t.Errorf("CPU and GPU ADI paths differ by %g", worst)
	}
}

func TestHeat2DWithSource(t *testing.T) {
	// Steady state of u_t = ∇²u + f with f = (5π²)·sin πx sin 2πy is
	// u* = sin πx sin 2πy; stepping long enough must converge to it.
	g := NewGrid2D(63, 63)
	f := fill2D(g, func(x, y float64) float64 {
		return 5 * math.Pi * math.Pi * math.Sin(math.Pi*x) * math.Sin(2*math.Pi*y)
	})
	u := make([]float64, g.NX*g.NY)
	h := &Heat2D[float64]{Grid: g, Alpha: 1, Backend: CPUBackend[float64]()}
	for s := 0; s < 200; s++ {
		if err := h.Step(u, f, 0.002); err != nil {
			t.Fatal(err)
		}
	}
	err := maxErr2D(g, u, func(x, y float64) float64 {
		return math.Sin(math.Pi*x) * math.Sin(2*math.Pi*y)
	})
	if err > 2e-3 {
		t.Errorf("steady-state error %g", err)
	}
}

func TestWachspressParams(t *testing.T) {
	ps := WachspressParams(5, 10, 1000)
	if len(ps) != 5 {
		t.Fatalf("got %d params", len(ps))
	}
	for i, p := range ps {
		if p < 10 || p > 1000 {
			t.Errorf("param %d = %g outside [a,b]", i, p)
		}
		if i > 0 && ps[i] >= ps[i-1] {
			t.Errorf("params not decreasing: %v", ps)
		}
	}
	if got := WachspressParams(0, 1, 2); len(got) != 1 {
		t.Error("J<1 not clamped")
	}
}

func TestPoisson2DWachspressConvergence(t *testing.T) {
	g := NewGrid2D(63, 63)
	f := fill2D(g, func(x, y float64) float64 {
		return (9 + 4) * math.Pi * math.Pi * math.Sin(3*math.Pi*x) * math.Sin(2*math.Pi*y)
	})
	u := make([]float64, g.NX*g.NY)
	p := &Poisson2D[float64]{Grid: g, Backend: CPUBackend[float64]()}
	r0 := p.Residual(u, f)
	res, err := p.Iterate(u, f, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res > r0/1e3 {
		t.Errorf("Wachspress cycles reduced residual only %g -> %g", r0, res)
	}
	solErr := maxErr2D(g, u, func(x, y float64) float64 {
		return math.Sin(3*math.Pi*x) * math.Sin(2*math.Pi*y)
	})
	if solErr > 5e-3 {
		t.Errorf("Poisson solution error %g", solErr)
	}
}

func TestPoisson2DBadShapes(t *testing.T) {
	p := &Poisson2D[float64]{Grid: NewGrid2D(4, 4)}
	if _, err := p.Iterate(make([]float64, 3), make([]float64, 16), nil, 1); err == nil {
		t.Error("short state accepted")
	}
	h := &Heat2D[float64]{Grid: NewGrid2D(4, 4), Alpha: 1}
	if err := h.Step(make([]float64, 3), nil, 0.1); err == nil {
		t.Error("short state accepted")
	}
	h3 := &Heat3D[float64]{Grid: NewGrid3D(4, 4, 4), Alpha: 1}
	if err := h3.Step(make([]float64, 3), 0.1); err == nil {
		t.Error("short 3D state accepted")
	}
}

func TestHeat3DMatchesAnalyticDecay(t *testing.T) {
	g := NewGrid3D(23, 23, 23)
	const alpha, tEnd, steps = 0.05, 0.01, 20
	dt := tEnd / steps
	u := make([]float64, g.NX*g.NY*g.NZ)
	for k := 0; k < g.NZ; k++ {
		z := float64(k+1) * g.HZ
		for j := 0; j < g.NY; j++ {
			y := float64(j+1) * g.HY
			for i := 0; i < g.NX; i++ {
				x := float64(i+1) * g.HX
				u[g.idx(i, j, k)] = math.Sin(math.Pi*x) * math.Sin(math.Pi*y) * math.Sin(math.Pi*z)
			}
		}
	}
	h := &Heat3D[float64]{Grid: g, Alpha: alpha, Backend: CPUBackend[float64]()}
	for s := 0; s < steps; s++ {
		if err := h.Step(u, dt); err != nil {
			t.Fatal(err)
		}
	}
	decay := math.Exp(-3 * math.Pi * math.Pi * alpha * tEnd)
	var worst float64
	for k := 0; k < g.NZ; k++ {
		z := float64(k+1) * g.HZ
		for j := 0; j < g.NY; j++ {
			y := float64(j+1) * g.HY
			for i := 0; i < g.NX; i++ {
				x := float64(i+1) * g.HX
				exact := math.Sin(math.Pi*x) * math.Sin(math.Pi*y) * math.Sin(math.Pi*z) * decay
				if e := math.Abs(u[g.idx(i, j, k)] - exact); e > worst {
					worst = e
				}
			}
		}
	}
	if worst > 2e-3 {
		t.Errorf("Heat3D error %g vs analytic decay", worst)
	}
}

func TestHeat3DGPUBackend(t *testing.T) {
	g := NewGrid3D(15, 17, 13)
	u := make([]float64, g.NX*g.NY*g.NZ)
	for i := range u {
		u[i] = float64(i%7) / 7
	}
	ref := append([]float64(nil), u...)
	hg := &Heat3D[float64]{Grid: g, Alpha: 0.2, Backend: GPUBackend[float64](core.Config{K: core.KAuto})}
	hc := &Heat3D[float64]{Grid: g, Alpha: 0.2, Backend: CPUBackend[float64]()}
	if err := hg.Step(u, 1e-3); err != nil {
		t.Fatal(err)
	}
	if err := hc.Step(ref, 1e-3); err != nil {
		t.Fatal(err)
	}
	var worst float64
	for i := range u {
		if d := math.Abs(u[i] - ref[i]); d > worst {
			worst = d
		}
	}
	if worst > 1e-12 {
		t.Errorf("GPU vs CPU 3-D step differ by %g", worst)
	}
}
