package adi

import (
	"fmt"

	"gputrid/internal/core"
	"gputrid/internal/matrix"
	"gputrid/internal/num"
)

// Grid3D is a uniform interior grid on the unit cube: nx × ny × nz
// unknowns, u = 0 on the boundary, index = (k*ny + j)*nx + i.
type Grid3D struct {
	NX, NY, NZ int
	HX, HY, HZ float64
}

// NewGrid3D builds the grid for nx × ny × nz interior points.
func NewGrid3D(nx, ny, nz int) Grid3D {
	return Grid3D{
		NX: nx, NY: ny, NZ: nz,
		HX: 1 / float64(nx+1), HY: 1 / float64(ny+1), HZ: 1 / float64(nz+1),
	}
}

func (g Grid3D) idx(i, j, k int) int { return (k*g.NY+j)*g.NX + i }

// second differences along each axis (undivided).
func dxx3[T num.Real](g Grid3D, u []T, i, j, k int) T {
	c := u[g.idx(i, j, k)]
	var l, r T
	if i > 0 {
		l = u[g.idx(i-1, j, k)]
	}
	if i < g.NX-1 {
		r = u[g.idx(i+1, j, k)]
	}
	return l - 2*c + r
}

func dyy3[T num.Real](g Grid3D, u []T, i, j, k int) T {
	c := u[g.idx(i, j, k)]
	var l, r T
	if j > 0 {
		l = u[g.idx(i, j-1, k)]
	}
	if j < g.NY-1 {
		r = u[g.idx(i, j+1, k)]
	}
	return l - 2*c + r
}

func dzz3[T num.Real](g Grid3D, u []T, i, j, k int) T {
	c := u[g.idx(i, j, k)]
	var l, r T
	if k > 0 {
		l = u[g.idx(i, j, k-1)]
	}
	if k < g.NZ-1 {
		r = u[g.idx(i, j, k+1)]
	}
	return l - 2*c + r
}

// Heat3D integrates u_t = alpha ∇²u with the Douglas-Gunn scheme:
// three tridiagonal sweeps per step, unconditionally stable and
// second-order in time for the homogeneous problem.
type Heat3D[T num.Real] struct {
	Grid    Grid3D
	Alpha   float64
	Backend Backend[T]
}

// Step advances u (length NX*NY*NZ) by dt.
func (h *Heat3D[T]) Step(u []T, dt float64) error {
	g := h.Grid
	total := g.NX * g.NY * g.NZ
	if len(u) != total {
		return fmt.Errorf("adi: state length %d != %d", len(u), total)
	}
	if h.Backend == nil {
		h.Backend = GPUBackend[T](core.Config{K: core.KAuto})
	}
	lx := T(h.Alpha * dt / (g.HX * g.HX))
	ly := T(h.Alpha * dt / (g.HY * g.HY))
	lz := T(h.Alpha * dt / (g.HZ * g.HZ))

	// Stage 1 (x-implicit):
	// (I − lx/2 Dx) v1 = [I + lx/2 Dx + ly Dy + lz Dz] u
	b1 := matrix.NewBatch[T](g.NY*g.NZ, g.NX)
	for k := 0; k < g.NZ; k++ {
		for j := 0; j < g.NY; j++ {
			base := (k*g.NY + j) * g.NX
			for i := 0; i < g.NX; i++ {
				if i > 0 {
					b1.Lower[base+i] = -lx / 2
				}
				b1.Diag[base+i] = 1 + lx
				if i < g.NX-1 {
					b1.Upper[base+i] = -lx / 2
				}
				b1.RHS[base+i] = u[g.idx(i, j, k)] +
					lx/2*dxx3(g, u, i, j, k) +
					ly*dyy3(g, u, i, j, k) +
					lz*dzz3(g, u, i, j, k)
			}
		}
	}
	v1, err := h.Backend(b1)
	if err != nil {
		return err
	}
	// v1 is already in grid layout (x-lines are contiguous).

	// Stage 2 (y-implicit): (I − ly/2 Dy) v2 = v1 − ly/2 Dy u
	b2 := matrix.NewBatch[T](g.NX*g.NZ, g.NY)
	for k := 0; k < g.NZ; k++ {
		for i := 0; i < g.NX; i++ {
			base := (k*g.NX + i) * g.NY
			for j := 0; j < g.NY; j++ {
				if j > 0 {
					b2.Lower[base+j] = -ly / 2
				}
				b2.Diag[base+j] = 1 + ly
				if j < g.NY-1 {
					b2.Upper[base+j] = -ly / 2
				}
				b2.RHS[base+j] = v1[g.idx(i, j, k)] - ly/2*dyy3(g, u, i, j, k)
			}
		}
	}
	x2, err := h.Backend(b2)
	if err != nil {
		return err
	}
	v2 := make([]T, total)
	for k := 0; k < g.NZ; k++ {
		for i := 0; i < g.NX; i++ {
			base := (k*g.NX + i) * g.NY
			for j := 0; j < g.NY; j++ {
				v2[g.idx(i, j, k)] = x2[base+j]
			}
		}
	}

	// Stage 3 (z-implicit): (I − lz/2 Dz) u' = v2 − lz/2 Dz u
	b3 := matrix.NewBatch[T](g.NX*g.NY, g.NZ)
	for j := 0; j < g.NY; j++ {
		for i := 0; i < g.NX; i++ {
			base := (j*g.NX + i) * g.NZ
			for k := 0; k < g.NZ; k++ {
				if k > 0 {
					b3.Lower[base+k] = -lz / 2
				}
				b3.Diag[base+k] = 1 + lz
				if k < g.NZ-1 {
					b3.Upper[base+k] = -lz / 2
				}
				b3.RHS[base+k] = v2[g.idx(i, j, k)] - lz/2*dzz3(g, u, i, j, k)
			}
		}
	}
	x3, err := h.Backend(b3)
	if err != nil {
		return err
	}
	for j := 0; j < g.NY; j++ {
		for i := 0; i < g.NX; i++ {
			base := (j*g.NX + i) * g.NZ
			for k := 0; k < g.NZ; k++ {
				u[g.idx(i, j, k)] = x3[base+k]
			}
		}
	}
	return nil
}
