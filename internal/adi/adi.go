// Package adi implements alternating-direction-implicit integrators —
// the fluid-dynamics workload family the paper targets (Sakharnykh,
// refs [4][5]: "Efficient tridiagonal solvers for ADI methods"). Every
// implicit half-sweep solves one tridiagonal system per grid line, so a
// 2-D or 3-D step is a perfect batch for the hybrid solver.
//
// Provided schemes (uniform grids, homogeneous Dirichlet boundaries):
//
//   - Heat2D: Peaceman-Rachford for u_t = α∇²u + f, second-order in
//     time and unconditionally stable;
//   - Poisson2D: the stationary PR iteration for −∇²u = f, with
//     Wachspress-cycled acceleration parameters;
//   - Heat3D: Douglas-Gunn for the 3-D heat equation (three tridiagonal
//     sweeps per step).
//
// The tridiagonal backend is pluggable so tests can swap the simulated
// GPU for the plain CPU path.
package adi

import (
	"fmt"
	"math"

	"gputrid/internal/core"
	"gputrid/internal/cpu"
	"gputrid/internal/matrix"
	"gputrid/internal/num"
)

// Backend solves every system of a batch, returning the solutions
// contiguously (the gputrid.SolveBatch contract).
type Backend[T num.Real] func(*matrix.Batch[T]) ([]T, error)

// GPUBackend returns a backend running the hybrid solver with the
// given configuration.
func GPUBackend[T num.Real](cfg core.Config) Backend[T] {
	return func(b *matrix.Batch[T]) ([]T, error) {
		x, _, err := core.Solve(cfg, b)
		return x, err
	}
}

// CPUBackend returns the sequential Thomas backend.
func CPUBackend[T num.Real]() Backend[T] {
	return cpu.SolveBatchSeq[T]
}

// Grid2D is a uniform interior grid on the unit square: nx × ny
// unknowns, u = 0 on the boundary, index = j*nx + i.
type Grid2D struct {
	NX, NY int
	HX, HY float64
}

// NewGrid2D builds the grid for nx × ny interior points.
func NewGrid2D(nx, ny int) Grid2D {
	return Grid2D{NX: nx, NY: ny, HX: 1 / float64(nx+1), HY: 1 / float64(ny+1)}
}

func (g Grid2D) idx(i, j int) int { return j*g.NX + i }

// dxx returns the undivided second difference in x at (i, j).
func dxx[T num.Real](g Grid2D, u []T, i, j int) T {
	c := u[g.idx(i, j)]
	var l, r T
	if i > 0 {
		l = u[g.idx(i-1, j)]
	}
	if i < g.NX-1 {
		r = u[g.idx(i+1, j)]
	}
	return l - 2*c + r
}

func dyy[T num.Real](g Grid2D, u []T, i, j int) T {
	c := u[g.idx(i, j)]
	var d, up T
	if j > 0 {
		d = u[g.idx(i, j-1)]
	}
	if j < g.NY-1 {
		up = u[g.idx(i, j+1)]
	}
	return d - 2*c + up
}

// lineBatchX builds the x-direction implicit batch: one system per row
// j, solving (diag + offd·Dx) u_row = rhs.
func lineBatchX[T num.Real](g Grid2D, offd, diag T, rhs func(i, j int) T) *matrix.Batch[T] {
	b := matrix.NewBatch[T](g.NY, g.NX)
	for j := 0; j < g.NY; j++ {
		base := j * g.NX
		for i := 0; i < g.NX; i++ {
			if i > 0 {
				b.Lower[base+i] = offd
			}
			b.Diag[base+i] = diag
			if i < g.NX-1 {
				b.Upper[base+i] = offd
			}
			b.RHS[base+i] = rhs(i, j)
		}
	}
	return b
}

// lineBatchY builds the y-direction implicit batch: one system per
// column i.
func lineBatchY[T num.Real](g Grid2D, offd, diag T, rhs func(i, j int) T) *matrix.Batch[T] {
	b := matrix.NewBatch[T](g.NX, g.NY)
	for i := 0; i < g.NX; i++ {
		base := i * g.NY
		for j := 0; j < g.NY; j++ {
			if j > 0 {
				b.Lower[base+j] = offd
			}
			b.Diag[base+j] = diag
			if j < g.NY-1 {
				b.Upper[base+j] = offd
			}
			b.RHS[base+j] = rhs(i, j)
		}
	}
	return b
}

// scatterX copies row-major solutions back into u.
func scatterX[T num.Real](g Grid2D, u, x []T) {
	copy(u, x) // row-major batch is already the grid layout
}

// scatterY copies column-major solutions back into u.
func scatterY[T num.Real](g Grid2D, u, x []T) {
	for i := 0; i < g.NX; i++ {
		for j := 0; j < g.NY; j++ {
			u[g.idx(i, j)] = x[i*g.NY+j]
		}
	}
}

// Heat2D integrates u_t = alpha ∇²u + f with Peaceman-Rachford steps.
type Heat2D[T num.Real] struct {
	Grid    Grid2D
	Alpha   float64
	Backend Backend[T]
}

// Step advances u (length NX*NY) by dt; f may be nil for the
// homogeneous equation.
func (h *Heat2D[T]) Step(u, f []T, dt float64) error {
	g := h.Grid
	if len(u) != g.NX*g.NY {
		return fmt.Errorf("adi: state length %d != %d", len(u), g.NX*g.NY)
	}
	if h.Backend == nil {
		h.Backend = GPUBackend[T](core.Config{K: core.KAuto})
	}
	lx := T(h.Alpha * dt / (2 * g.HX * g.HX))
	ly := T(h.Alpha * dt / (2 * g.HY * g.HY))
	src := func(i, j int) T {
		if f == nil {
			return 0
		}
		return T(dt/2) * f[g.idx(i, j)]
	}

	// Half-step 1: implicit in x, explicit in y.
	bx := lineBatchX(g, -lx, 1+2*lx, func(i, j int) T {
		return u[g.idx(i, j)] + ly*dyy(g, u, i, j) + src(i, j)
	})
	xs, err := h.Backend(bx)
	if err != nil {
		return err
	}
	half := make([]T, len(u))
	copy(half, xs)

	// Half-step 2: implicit in y, explicit in x on the intermediate.
	by := lineBatchY(g, -ly, 1+2*ly, func(i, j int) T {
		return half[g.idx(i, j)] + lx*dxx(g, half, i, j) + src(i, j)
	})
	ys, err := h.Backend(by)
	if err != nil {
		return err
	}
	scatterY(g, u, ys)
	return nil
}

// Poisson2D solves −∇²u = f with the stationary Peaceman-Rachford
// iteration.
type Poisson2D[T num.Real] struct {
	Grid    Grid2D
	Backend Backend[T]
}

// WachspressParams returns J acceleration parameters geometrically
// spaced across the Laplacian's eigenvalue range [a, b] — the classical
// optimal cycling for the PR iteration.
func WachspressParams(j int, a, b float64) []float64 {
	if j < 1 {
		j = 1
	}
	out := make([]float64, j)
	for i := 0; i < j; i++ {
		out[i] = b * math.Pow(a/b, (2*float64(i)+1)/(2*float64(j)))
	}
	return out
}

// DefaultParams returns a Wachspress cycle sized for the grid.
func (p *Poisson2D[T]) DefaultParams() []float64 {
	g := p.Grid
	a := 2 * math.Pi * math.Pi // ~ smallest eigenvalue of -∇² on the unit square
	b := 4/(g.HX*g.HX) + 4/(g.HY*g.HY)
	j := int(math.Ceil(math.Log2(b/a) / 2))
	if j < 3 {
		j = 3
	}
	return WachspressParams(j, a, b)
}

// Iterate runs `cycles` sweeps through the parameter list, updating u
// in place, and returns the final max-norm residual of −∇²u = f.
func (p *Poisson2D[T]) Iterate(u, f []T, params []float64, cycles int) (float64, error) {
	g := p.Grid
	if len(u) != g.NX*g.NY || len(f) != g.NX*g.NY {
		return 0, fmt.Errorf("adi: state/f length mismatch")
	}
	if p.Backend == nil {
		p.Backend = GPUBackend[T](core.Config{K: core.KAuto})
	}
	if len(params) == 0 {
		params = p.DefaultParams()
	}
	ax := T(1 / (g.HX * g.HX))
	ay := T(1 / (g.HY * g.HY))
	for c := 0; c < cycles; c++ {
		for _, rhoF := range params {
			rho := T(rhoF)
			// x half-sweep: (rho + Ax) u' = f - Ay u + rho u, where
			// Ax = -dxx/hx², Ay = -dyy/hy².
			bx := lineBatchX(g, -ax, 2*ax+rho, func(i, j int) T {
				return f[g.idx(i, j)] + ay*dyy(g, u, i, j) + rho*u[g.idx(i, j)]
			})
			xs, err := p.Backend(bx)
			if err != nil {
				return 0, err
			}
			scatterX(g, u, xs)
			// y half-sweep.
			by := lineBatchY(g, -ay, 2*ay+rho, func(i, j int) T {
				return f[g.idx(i, j)] + ax*dxx(g, u, i, j) + rho*u[g.idx(i, j)]
			})
			ys, err := p.Backend(by)
			if err != nil {
				return 0, err
			}
			scatterY(g, u, ys)
		}
	}
	return p.Residual(u, f), nil
}

// Residual returns max |f + ∇²u| over the grid.
func (p *Poisson2D[T]) Residual(u, f []T) float64 {
	g := p.Grid
	var worst float64
	for j := 0; j < g.NY; j++ {
		for i := 0; i < g.NX; i++ {
			r := float64(f[g.idx(i, j)]) +
				float64(dxx(g, u, i, j))/(g.HX*g.HX) +
				float64(dyy(g, u, i, j))/(g.HY*g.HY)
			if a := math.Abs(r); a > worst {
				worst = a
			}
		}
	}
	return worst
}
