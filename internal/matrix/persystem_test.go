package matrix

import (
	"math"
	"testing"
)

// threeSystems builds a 3×4 batch whose systems are identity matrices
// with distinct right-hand sides, so solutions are the RHS themselves.
func threeSystems() *Batch[float64] {
	b := NewBatch[float64](3, 4)
	for i := range b.Diag {
		b.Diag[i] = 1
		b.RHS[i] = float64(i)
	}
	return b
}

func TestResidualsPerSystemIsolatesNonFinite(t *testing.T) {
	b := threeSystems()
	x := append([]float64(nil), b.RHS...) // exact solution everywhere
	x[1*4+2] = math.NaN()                 // poison system 1 only
	rs := ResidualsPerSystem(b, x)
	if len(rs) != 3 {
		t.Fatalf("%d residuals, want 3", len(rs))
	}
	if rs[0] != 0 || rs[2] != 0 {
		t.Errorf("healthy systems have residuals %g, %g; want 0", rs[0], rs[2])
	}
	if !math.IsInf(rs[1], 1) {
		t.Errorf("poisoned system residual %g, want +Inf", rs[1])
	}
	// MaxResidual must agree with the per-system worst.
	if r := MaxResidual(b, x); !math.IsInf(r, 1) {
		t.Errorf("MaxResidual %g, want +Inf", r)
	}
}

func TestGatherAndScatterVector(t *testing.T) {
	b := threeSystems()
	g := b.Gather([]int{2, 0})
	if g.M != 2 || g.N != 4 {
		t.Fatalf("gathered shape %dx%d", g.M, g.N)
	}
	for j := 0; j < 4; j++ {
		if g.RHS[j] != b.RHS[2*4+j] {
			t.Errorf("gathered system 0 row %d: %g, want system 2's %g", j, g.RHS[j], b.RHS[2*4+j])
		}
		if g.RHS[4+j] != b.RHS[j] {
			t.Errorf("gathered system 1 row %d: %g, want system 0's %g", j, g.RHS[4+j], b.RHS[j])
		}
	}
	// Gather copies; mutating the gather must not touch the source.
	g.Diag[0] = 99
	if b.Diag[2*4] == 99 {
		t.Error("Gather shares storage with the source batch")
	}

	dst := make([]float64, 12)
	src := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	ScatterVector(dst, src, []int{2, 0}, 4)
	want := []float64{5, 6, 7, 8, 0, 0, 0, 0, 1, 2, 3, 4}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("scatter result %v, want %v", dst, want)
		}
	}
}

func TestSystemIsFinite(t *testing.T) {
	s := NewSystem[float64](3)
	s.Diag[0] = 1
	if !s.IsFinite() {
		t.Error("finite system reported non-finite")
	}
	s.Lower[2] = math.Inf(-1)
	if s.IsFinite() {
		t.Error("Inf coefficient not detected")
	}
}
