package matrix

import (
	"fmt"
	"math"

	"gputrid/internal/num"
)

// Residual returns the normwise relative backward error of a candidate
// solution x:
//
//	||A x − d||_inf / (||A||_inf ||x||_inf + ||d||_inf)
//
// For a backward-stable solve on a well-conditioned system this is a
// small multiple of machine epsilon.
func Residual[T num.Real](s *System[T], x []T) float64 {
	n := s.N()
	if len(x) != n {
		panic("matrix: Residual dimension mismatch")
	}
	// A x is computed row by row (same expression and evaluation order
	// as System.Apply) instead of through Apply, so the residual scan
	// allocates nothing — it runs per system per solve on the guarded
	// path.
	var rmax, xmax, dmax float64
	for i := 0; i < n; i++ {
		v := s.Diag[i] * x[i]
		if i > 0 {
			v += s.Lower[i] * x[i-1]
		}
		if i < n-1 {
			v += s.Upper[i] * x[i+1]
		}
		if !num.IsFinite(x[i]) || !num.IsFinite(v) {
			return math.Inf(1)
		}
		r := float64(v) - float64(s.RHS[i])
		if r < 0 {
			r = -r
		}
		if r > rmax {
			rmax = r
		}
		xa := float64(num.Abs(x[i]))
		if xa > xmax {
			xmax = xa
		}
		da := float64(num.Abs(s.RHS[i]))
		if da > dmax {
			dmax = da
		}
	}
	den := float64(s.InfNorm())*xmax + dmax
	if den == 0 {
		return rmax
	}
	return rmax / den
}

// MaxResidual returns the worst Residual over all systems in a batch,
// where x holds the M solutions contiguously (system i in [i*N,(i+1)*N)).
func MaxResidual[T num.Real](b *Batch[T], x []T) float64 {
	var worst float64
	for _, r := range ResidualsPerSystem(b, x) {
		if r > worst {
			worst = r
		}
	}
	return worst
}

// ResidualsPerSystem returns the Residual of every system of the batch
// individually (length M, index = system). A non-finite solution entry
// yields +Inf for that system only; healthy neighbours keep their small
// residuals — the scan the guarded pipeline and verification diagnostics
// classify systems with.
func ResidualsPerSystem[T num.Real](b *Batch[T], x []T) []float64 {
	res := make([]float64, b.M)
	ResidualsPerSystemInto(res, b, x)
	return res
}

// ResidualsPerSystemInto is ResidualsPerSystem into a caller-owned
// slice of length M; the reusable guarded runner calls it every solve
// with a buffer from its arena.
func ResidualsPerSystemInto[T num.Real](dst []float64, b *Batch[T], x []T) {
	if len(x) != b.M*b.N {
		panic("matrix: ResidualsPerSystem dimension mismatch")
	}
	if len(dst) != b.M {
		panic("matrix: ResidualsPerSystemInto destination length mismatch")
	}
	var sys System[T]
	for i := 0; i < b.M; i++ {
		lo, hi := i*b.N, (i+1)*b.N
		sys.Lower, sys.Diag, sys.Upper, sys.RHS =
			b.Lower[lo:hi], b.Diag[lo:hi], b.Upper[lo:hi], b.RHS[lo:hi]
		dst[i] = Residual(&sys, x[lo:hi])
	}
}

// ResidualTolerance returns a pass/fail threshold for the relative
// residual of an n-row solve in precision T: c·n·eps with a generous
// constant, loose enough for the non-pivoting parallel algorithms on
// diagonally dominant systems, tight enough to catch real bugs (which
// produce O(1) residuals).
func ResidualTolerance[T num.Real](n int) float64 {
	eps := float64(num.Eps[T]())
	c := 64.0
	t := c * float64(n) * eps
	if t > 1e-2 {
		t = 1e-2
	}
	return t
}

// CheckSolution verifies x against the system with ResidualTolerance and
// returns a descriptive error on failure.
func CheckSolution[T num.Real](s *System[T], x []T) error {
	for i, v := range x {
		if !num.IsFinite(v) {
			return fmt.Errorf("matrix: non-finite solution entry x[%d]=%v", i, v)
		}
	}
	r := Residual(s, x)
	tol := ResidualTolerance[T](s.N())
	if r > tol {
		return fmt.Errorf("matrix: residual %.3e exceeds tolerance %.3e (n=%d)", r, tol, s.N())
	}
	return nil
}

// MaxAbsDiff returns the largest elementwise |a[i]−b[i]|.
func MaxAbsDiff[T num.Real](a, b []T) T {
	if len(a) != len(b) {
		panic("matrix: MaxAbsDiff length mismatch")
	}
	var m T
	for i := range a {
		m = num.Max(m, num.Abs(a[i]-b[i]))
	}
	return m
}

// MaxRelDiff returns the largest elementwise num.RelDiff(a[i], b[i]).
func MaxRelDiff[T num.Real](a, b []T) T {
	if len(a) != len(b) {
		panic("matrix: MaxRelDiff length mismatch")
	}
	var m T
	for i := range a {
		m = num.Max(m, num.RelDiff(a[i], b[i]))
	}
	return m
}

// ResidualsPerSystemInterleavedInto is ResidualsPerSystemInto for an
// interleaved batch with an interleaved candidate solution x (entry of
// system i at row j lives at j*M+i): dst[i] receives the Residual of
// system i for the first count systems. It traverses row-major — one
// pass over the strided planes — but accumulates each system's
// max/sum reductions in exactly the order Residual does row by row, so
// the results are bitwise identical to deinterleaving and calling
// ResidualsPerSystemInto. That identity is what lets the batching
// front-end guard a coalesced megabatch without converting layouts.
//
// scratch must hold at least 3*count float64s; it carries the per-
// system xmax/dmax/|A|_inf partials across rows and its contents on
// entry are ignored.
//
//tridlint:hotpath
func ResidualsPerSystemInterleavedInto[T num.Real](dst, scratch []float64, v *Interleaved[T], x []T, count int) {
	if count < 0 || count > v.M {
		panic("matrix: ResidualsPerSystemInterleavedInto count out of range")
	}
	if len(x) < v.M*v.N {
		panic("matrix: ResidualsPerSystemInterleavedInto solution length mismatch")
	}
	if len(dst) < count || len(scratch) < 3*count {
		panic("matrix: ResidualsPerSystemInterleavedInto buffer too short")
	}
	xmax := scratch[:count]
	dmax := scratch[count : 2*count]
	anorm := scratch[2*count : 3*count]
	for i := 0; i < count; i++ {
		dst[i], xmax[i], dmax[i], anorm[i] = 0, 0, 0, 0
	}
	m, n := v.M, v.N
	for j := 0; j < n; j++ {
		base := j * m
		for i := 0; i < count; i++ {
			// xmax < 0 marks a system already classified non-finite:
			// Residual early-returns +Inf there, so stop accumulating.
			if xmax[i] < 0 {
				continue
			}
			idx := base + i
			xi := x[idx]
			val := v.Diag[idx] * xi
			if j > 0 {
				val += v.Lower[idx] * x[idx-m]
			}
			if j < n-1 {
				val += v.Upper[idx] * x[idx+m]
			}
			if !num.IsFinite(xi) || !num.IsFinite(val) {
				dst[i] = math.Inf(1)
				xmax[i] = -1
				continue
			}
			r := float64(val) - float64(v.RHS[idx])
			if r < 0 {
				r = -r
			}
			if r > dst[i] {
				dst[i] = r
			}
			if xa := float64(num.Abs(xi)); xa > xmax[i] {
				xmax[i] = xa
			}
			if da := float64(num.Abs(v.RHS[idx])); da > dmax[i] {
				dmax[i] = da
			}
			// ||A||_inf accumulates in T exactly as System.InfNorm does;
			// the float64 slot round-trips T values losslessly.
			row := num.Abs(v.Diag[idx])
			if j > 0 {
				row += num.Abs(v.Lower[idx])
			}
			if j < n-1 {
				row += num.Abs(v.Upper[idx])
			}
			anorm[i] = float64(num.Max(T(anorm[i]), row))
		}
	}
	for i := 0; i < count; i++ {
		if xmax[i] < 0 {
			continue // dst[i] is already +Inf
		}
		if den := anorm[i]*xmax[i] + dmax[i]; den != 0 {
			dst[i] /= den
		}
	}
}
