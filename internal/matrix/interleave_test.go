package matrix

import (
	"fmt"
	"testing"
)

// fillSeq gives every element a distinct value so any transpose
// index error shows up as a mismatch.
func fillSeq(x []float64) {
	for i := range x {
		x[i] = float64(i)*1.5 + 1
	}
}

// TestTransposeBlockedMatchesNaive drives the blocked kernel across
// shapes that exercise full tiles, ragged edges, and degenerate rows
// or columns, requiring exact agreement with the naive transpose.
func TestTransposeBlockedMatchesNaive(t *testing.T) {
	shapes := []struct{ rows, cols int }{
		{1, 1}, {1, 97}, {97, 1},
		{32, 32}, {64, 33}, {33, 64},
		{31, 100}, {100, 31}, {128, 512},
	}
	for _, sh := range shapes {
		t.Run(fmt.Sprintf("%dx%d", sh.rows, sh.cols), func(t *testing.T) {
			src := make([]float64, sh.rows*sh.cols)
			fillSeq(src)
			want := make([]float64, len(src))
			got := make([]float64, len(src))
			transposeNaive(want, src, sh.rows, sh.cols)
			transposeBlocked(got, src, sh.rows, sh.cols)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("blocked transpose differs from naive at %d: %v vs %v", i, got[i], want[i])
				}
			}
		})
	}
}

// TestInterleavePlacement checks the layout conversions built on the
// blocked kernel invert each other and place elements at the
// documented positions.
func TestInterleavePlacement(t *testing.T) {
	m, n := 13, 70
	b := NewBatch[float64](m, n)
	fillSeq(b.Lower)
	fillSeq(b.Diag)
	fillSeq(b.Upper)
	fillSeq(b.RHS)

	v := b.ToInterleaved()
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			if v.Diag[j*m+i] != b.Diag[i*n+j] {
				t.Fatalf("interleaved Diag[%d*m+%d] = %v, want batch Diag[%d*n+%d] = %v",
					j, i, v.Diag[j*m+i], i, j, b.Diag[i*n+j])
			}
		}
	}
	rt := v.ToBatch()
	for i := range b.Diag {
		if rt.Lower[i] != b.Lower[i] || rt.Diag[i] != b.Diag[i] ||
			rt.Upper[i] != b.Upper[i] || rt.RHS[i] != b.RHS[i] {
			t.Fatalf("ToInterleaved/ToBatch round trip differs at %d", i)
		}
	}

	x := make([]float64, m*n)
	fillSeq(x)
	xi := InterleaveVector(x, m, n)
	xc := DeinterleaveVector(xi, m, n)
	for i := range x {
		if xc[i] != x[i] {
			t.Fatalf("vector round trip differs at %d", i)
		}
	}
}

// BenchmarkInterleave pits the cache-blocked transpose against the
// naive strided loop at the large shapes where TLB and cache-line
// behaviour dominate. The blocked kernel is the one the interleave
// paths use; naive is kept solely as this comparison baseline.
func BenchmarkInterleave(bb *testing.B) {
	// Square-ish shapes plus the tall/thin extremes the batching
	// front-end produces: megabatches are many systems of modest N
	// (M >> N) while huge single systems are the opposite (N >> M).
	for _, sh := range []struct{ m, n int }{{512, 512}, {512, 2048}, {4096, 64}, {64, 4096}} {
		src := make([]float64, sh.m*sh.n)
		dst := make([]float64, sh.m*sh.n)
		fillSeq(src)
		bb.Run(fmt.Sprintf("blocked-%dx%d", sh.m, sh.n), func(b *testing.B) {
			b.SetBytes(int64(len(src) * 8))
			for i := 0; i < b.N; i++ {
				transposeBlocked(dst, src, sh.m, sh.n)
			}
		})
		bb.Run(fmt.Sprintf("naive-%dx%d", sh.m, sh.n), func(b *testing.B) {
			b.SetBytes(int64(len(src) * 8))
			for i := 0; i < b.N; i++ {
				transposeNaive(dst, src, sh.m, sh.n)
			}
		})
	}
}

// BenchmarkInterleaveRoundTrip times the full batch layout round trip
// (ToInterleavedInto then ToBatchInto — 4 planes each way) on the
// same square and tall/thin shapes, pinning the cost the interleaved-
// native solve path removes from the per-solve hot loop.
func BenchmarkInterleaveRoundTrip(bb *testing.B) {
	for _, sh := range []struct{ m, n int }{{512, 512}, {4096, 64}, {64, 4096}} {
		b := NewBatch[float64](sh.m, sh.n)
		fillSeq(b.Lower)
		fillSeq(b.Diag)
		fillSeq(b.Upper)
		fillSeq(b.RHS)
		v := NewInterleaved[float64](sh.m, sh.n)
		rt := NewBatch[float64](sh.m, sh.n)
		bb.Run(fmt.Sprintf("%dx%d", sh.m, sh.n), func(b2 *testing.B) {
			b2.SetBytes(int64(sh.m * sh.n * 8 * 4 * 2))
			b2.ReportAllocs()
			for i := 0; i < b2.N; i++ {
				b.ToInterleavedInto(v)
				v.ToBatchInto(rt)
			}
		})
	}
}
