// Package matrix defines the tridiagonal-system containers shared by all
// solvers in this module, the memory layouts the paper distinguishes
// (one-system-contiguous versus batch-interleaved), a dense
// partial-pivoting reference solver used to verify every fast algorithm,
// and residual/verification helpers.
//
// Conventions follow Eq. (1) of the paper: system rows are
//
//	a[i]*x[i-1] + b[i]*x[i] + c[i]*x[i+1] = d[i]
//
// with a[0] and c[n-1] ignored (treated as zero).
package matrix

import (
	"fmt"

	"gputrid/internal/num"
)

// System is a single tridiagonal system A x = d of size N.
// A is stored as three diagonals: Lower (a), Diag (b), Upper (c).
type System[T num.Real] struct {
	Lower []T // a: sub-diagonal; Lower[0] is ignored
	Diag  []T // b: main diagonal
	Upper []T // c: super-diagonal; Upper[n-1] is ignored
	RHS   []T // d: right-hand side
}

// NewSystem allocates an n-row system with all coefficients zero.
func NewSystem[T num.Real](n int) *System[T] {
	return &System[T]{
		Lower: make([]T, n),
		Diag:  make([]T, n),
		Upper: make([]T, n),
		RHS:   make([]T, n),
	}
}

// N returns the number of rows.
func (s *System[T]) N() int { return len(s.Diag) }

// Clone returns a deep copy of s.
func (s *System[T]) Clone() *System[T] {
	c := NewSystem[T](s.N())
	copy(c.Lower, s.Lower)
	copy(c.Diag, s.Diag)
	copy(c.Upper, s.Upper)
	copy(c.RHS, s.RHS)
	return c
}

// Validate checks structural consistency: all four slices share one
// length and every coefficient is finite. A non-finite entry is reported
// with its array name, row, and value, so garbage-in is distinguishable
// from downstream numerical breakdown.
func (s *System[T]) Validate() error {
	n := s.N()
	if len(s.Lower) != n || len(s.Upper) != n || len(s.RHS) != n {
		return fmt.Errorf("matrix: inconsistent slice lengths (a=%d b=%d c=%d d=%d)",
			len(s.Lower), n, len(s.Upper), len(s.RHS))
	}
	for i := 0; i < n; i++ {
		switch {
		case !num.IsFinite(s.Lower[i]):
			return fmt.Errorf("matrix: non-finite coefficient Lower[%d] = %v", i, s.Lower[i])
		case !num.IsFinite(s.Diag[i]):
			return fmt.Errorf("matrix: non-finite coefficient Diag[%d] = %v", i, s.Diag[i])
		case !num.IsFinite(s.Upper[i]):
			return fmt.Errorf("matrix: non-finite coefficient Upper[%d] = %v", i, s.Upper[i])
		case !num.IsFinite(s.RHS[i]):
			return fmt.Errorf("matrix: non-finite coefficient RHS[%d] = %v", i, s.RHS[i])
		}
	}
	return nil
}

// IsFinite reports whether every coefficient of the system (all four
// arrays) is finite — the cheap per-system scan the guarded pipeline
// uses to separate invalid input from numerical breakdown.
func (s *System[T]) IsFinite() bool {
	n := s.N()
	for i := 0; i < n; i++ {
		if !num.IsFinite(s.Lower[i]) || !num.IsFinite(s.Diag[i]) ||
			!num.IsFinite(s.Upper[i]) || !num.IsFinite(s.RHS[i]) {
			return false
		}
	}
	return true
}

// Apply computes y = A x for the tridiagonal matrix of s.
// It does not read s.RHS.
func (s *System[T]) Apply(x []T) []T {
	n := s.N()
	if len(x) != n {
		panic("matrix: Apply dimension mismatch")
	}
	y := make([]T, n)
	for i := 0; i < n; i++ {
		v := s.Diag[i] * x[i]
		if i > 0 {
			v += s.Lower[i] * x[i-1]
		}
		if i < n-1 {
			v += s.Upper[i] * x[i+1]
		}
		y[i] = v
	}
	return y
}

// DiagonallyDominant reports whether |b[i]| >= |a[i]| + |c[i]| + margin
// holds on every row, the standard sufficient condition for Thomas/PCR
// stability without pivoting.
func (s *System[T]) DiagonallyDominant(margin T) bool {
	n := s.N()
	for i := 0; i < n; i++ {
		off := T(0)
		if i > 0 {
			off += num.Abs(s.Lower[i])
		}
		if i < n-1 {
			off += num.Abs(s.Upper[i])
		}
		if num.Abs(s.Diag[i]) < off+margin {
			return false
		}
	}
	return true
}

// InfNorm returns the infinity norm of the tridiagonal matrix
// (maximum absolute row sum).
func (s *System[T]) InfNorm() T {
	n := s.N()
	var m T
	for i := 0; i < n; i++ {
		row := num.Abs(s.Diag[i])
		if i > 0 {
			row += num.Abs(s.Lower[i])
		}
		if i < n-1 {
			row += num.Abs(s.Upper[i])
		}
		m = num.Max(m, row)
	}
	return m
}
