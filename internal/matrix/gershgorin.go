package matrix

import "gputrid/internal/num"

// GershgorinBounds returns an interval [lo, hi] containing every
// eigenvalue of the tridiagonal matrix, from the Gershgorin circle
// theorem: each eigenvalue lies within |b_i| ± (|a_i| + |c_i|) of some
// diagonal entry. For a symmetric positive-definite operator (e.g. a
// discrete Laplacian) the bounds feed ADI parameter selection
// (adi.WachspressParams).
func GershgorinBounds[T num.Real](s *System[T]) (lo, hi float64) {
	n := s.N()
	if n == 0 {
		return 0, 0
	}
	first := true
	for i := 0; i < n; i++ {
		var off T
		if i > 0 {
			off += num.Abs(s.Lower[i])
		}
		if i < n-1 {
			off += num.Abs(s.Upper[i])
		}
		l := float64(s.Diag[i]) - float64(off)
		h := float64(s.Diag[i]) + float64(off)
		if first {
			lo, hi = l, h
			first = false
			continue
		}
		if l < lo {
			lo = l
		}
		if h > hi {
			hi = h
		}
	}
	return lo, hi
}
