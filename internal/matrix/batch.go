package matrix

import (
	"fmt"

	"gputrid/internal/num"
)

// Batch holds M independent tridiagonal systems of N rows each in the
// "contiguous" layout: system i occupies [i*N, (i+1)*N) of each diagonal
// slice. This is the natural CPU layout (one system after another) and
// the layout the MKL-proxy baselines consume.
type Batch[T num.Real] struct {
	M, N  int
	Lower []T
	Diag  []T
	Upper []T
	RHS   []T
}

// NewBatch allocates an M×N batch with all coefficients zero.
func NewBatch[T num.Real](m, n int) *Batch[T] {
	if m <= 0 || n <= 0 {
		panic(fmt.Sprintf("matrix: invalid batch shape %dx%d", m, n))
	}
	size := m * n
	return &Batch[T]{
		M: m, N: n,
		Lower: make([]T, size),
		Diag:  make([]T, size),
		Upper: make([]T, size),
		RHS:   make([]T, size),
	}
}

// System returns a view (shared storage) of system i as a System.
func (b *Batch[T]) System(i int) *System[T] {
	if i < 0 || i >= b.M {
		panic("matrix: batch system index out of range")
	}
	lo, hi := i*b.N, (i+1)*b.N
	return &System[T]{
		Lower: b.Lower[lo:hi],
		Diag:  b.Diag[lo:hi],
		Upper: b.Upper[lo:hi],
		RHS:   b.RHS[lo:hi],
	}
}

// SetSystem copies s into slot i of the batch.
func (b *Batch[T]) SetSystem(i int, s *System[T]) {
	if s.N() != b.N {
		panic("matrix: SetSystem size mismatch")
	}
	dst := b.System(i)
	copy(dst.Lower, s.Lower)
	copy(dst.Diag, s.Diag)
	copy(dst.Upper, s.Upper)
	copy(dst.RHS, s.RHS)
}

// Clone returns a deep copy of the batch.
func (b *Batch[T]) Clone() *Batch[T] {
	c := NewBatch[T](b.M, b.N)
	copy(c.Lower, b.Lower)
	copy(c.Diag, b.Diag)
	copy(c.Upper, b.Upper)
	copy(c.RHS, b.RHS)
	return c
}

// Validate checks every system in the batch. A NaN/Inf coefficient is
// rejected up front with the system, array, and row of the offending
// entry, so garbage-in is distinguished from numerical breakdown inside
// a solver.
func (b *Batch[T]) Validate() error {
	if len(b.Lower) != b.M*b.N || len(b.Diag) != b.M*b.N ||
		len(b.Upper) != b.M*b.N || len(b.RHS) != b.M*b.N {
		return fmt.Errorf("matrix: batch slice lengths do not match M*N=%d", b.M*b.N)
	}
	for i := 0; i < b.M; i++ {
		if err := b.System(i).Validate(); err != nil {
			return fmt.Errorf("system %d: %w", i, err)
		}
	}
	return nil
}

// Gather copies the selected systems into a new len(idx)-system batch
// (system j of the result is system idx[j] of b). The guarded pipeline
// uses it to re-solve only the failing systems of a batch.
func (b *Batch[T]) Gather(idx []int) *Batch[T] {
	if len(idx) == 0 {
		panic("matrix: Gather of zero systems")
	}
	g := NewBatch[T](len(idx), b.N)
	for j, i := range idx {
		if i < 0 || i >= b.M {
			panic("matrix: Gather system index out of range")
		}
		lo, glo := i*b.N, j*b.N
		copy(g.Lower[glo:glo+b.N], b.Lower[lo:lo+b.N])
		copy(g.Diag[glo:glo+b.N], b.Diag[lo:lo+b.N])
		copy(g.Upper[glo:glo+b.N], b.Upper[lo:lo+b.N])
		copy(g.RHS[glo:glo+b.N], b.RHS[lo:lo+b.N])
	}
	return g
}

// ScatterVector copies per-system solutions for the systems named by
// idx back into a full batch solution vector: src holds len(idx)
// contiguous n-row solutions (Gather order), dst holds M of them.
func ScatterVector[T num.Real](dst, src []T, idx []int, n int) {
	if len(src) != len(idx)*n {
		panic("matrix: ScatterVector source length mismatch")
	}
	for j, i := range idx {
		copy(dst[i*n:(i+1)*n], src[j*n:(j+1)*n])
	}
}

// Interleaved holds M independent tridiagonal systems of N rows each in
// the "interleaved" layout: row j of system i lives at index j*M + i.
// Threads t, t+1, ... walking their own systems row-by-row therefore
// touch adjacent memory — the coalesced layout p-Thomas requires
// (paper §III.B), and the layout k-step PCR naturally produces for its
// 2^k subsystems.
type Interleaved[T num.Real] struct {
	M, N  int
	Lower []T
	Diag  []T
	Upper []T
	RHS   []T
}

// NewInterleaved allocates an M×N interleaved batch with all
// coefficients zero.
func NewInterleaved[T num.Real](m, n int) *Interleaved[T] {
	if m <= 0 || n <= 0 {
		panic(fmt.Sprintf("matrix: invalid interleaved shape %dx%d", m, n))
	}
	size := m * n
	return &Interleaved[T]{
		M: m, N: n,
		Lower: make([]T, size),
		Diag:  make([]T, size),
		Upper: make([]T, size),
		RHS:   make([]T, size),
	}
}

// Idx returns the flat index of row j of system i.
func (v *Interleaved[T]) Idx(i, j int) int { return j*v.M + i }

// Clone returns a deep copy.
func (v *Interleaved[T]) Clone() *Interleaved[T] {
	c := NewInterleaved[T](v.M, v.N)
	copy(c.Lower, v.Lower)
	copy(c.Diag, v.Diag)
	copy(c.Upper, v.Upper)
	copy(c.RHS, v.RHS)
	return c
}

// ExtractSystem copies system i out into a standalone System.
func (v *Interleaved[T]) ExtractSystem(i int) *System[T] {
	s := NewSystem[T](v.N)
	for j := 0; j < v.N; j++ {
		k := v.Idx(i, j)
		s.Lower[j] = v.Lower[k]
		s.Diag[j] = v.Diag[k]
		s.Upper[j] = v.Upper[k]
		s.RHS[j] = v.RHS[k]
	}
	return s
}

// ToInterleaved converts a contiguous batch to the interleaved layout.
func (b *Batch[T]) ToInterleaved() *Interleaved[T] {
	v := NewInterleaved[T](b.M, b.N)
	b.ToInterleavedInto(v)
	return v
}

// ToBatch converts an interleaved batch back to the contiguous layout.
func (v *Interleaved[T]) ToBatch() *Batch[T] {
	b := NewBatch[T](v.M, v.N)
	v.ToBatchInto(b)
	return b
}

// DeinterleaveVector converts a solution vector in interleaved order
// (row j of system i at j*M+i) into contiguous order (system i occupies
// [i*N,(i+1)*N)).
func DeinterleaveVector[T num.Real](x []T, m, n int) []T {
	if len(x) != m*n {
		panic("matrix: DeinterleaveVector length mismatch")
	}
	out := make([]T, m*n)
	DeinterleaveVectorInto(out, x, m, n)
	return out
}

// InterleaveVector is the inverse of DeinterleaveVector.
func InterleaveVector[T num.Real](x []T, m, n int) []T {
	if len(x) != m*n {
		panic("matrix: InterleaveVector length mismatch")
	}
	out := make([]T, m*n)
	InterleaveVectorInto(out, x, m, n)
	return out
}
