package matrix

import (
	"math"
	"testing"
)

func TestGershgorinPoisson(t *testing.T) {
	// The -1, 2, -1 matrix has eigenvalues in (0, 4); Gershgorin gives
	// exactly [0, 4].
	n := 32
	s := NewSystem[float64](n)
	for i := 0; i < n; i++ {
		if i > 0 {
			s.Lower[i] = -1
		}
		if i < n-1 {
			s.Upper[i] = -1
		}
		s.Diag[i] = 2
	}
	lo, hi := GershgorinBounds(s)
	if lo != 0 || hi != 4 {
		t.Errorf("bounds [%g, %g], want [0, 4]", lo, hi)
	}
	// True eigenvalues 2 - 2cos(kπ/(n+1)) must be inside.
	for k := 1; k <= n; k++ {
		ev := 2 - 2*math.Cos(float64(k)*math.Pi/float64(n+1))
		if ev < lo || ev > hi {
			t.Errorf("eigenvalue %g outside [%g, %g]", ev, lo, hi)
		}
	}
}

func TestGershgorinDiagonal(t *testing.T) {
	s := NewSystem[float64](3)
	s.Diag[0], s.Diag[1], s.Diag[2] = -1, 5, 2
	lo, hi := GershgorinBounds(s)
	if lo != -1 || hi != 5 {
		t.Errorf("bounds [%g, %g], want [-1, 5]", lo, hi)
	}
}

func TestGershgorinEmpty(t *testing.T) {
	lo, hi := GershgorinBounds(NewSystem[float64](0))
	if lo != 0 || hi != 0 {
		t.Errorf("empty bounds [%g, %g]", lo, hi)
	}
}

func TestGershgorinContainsDenseSolveSpectrumSample(t *testing.T) {
	// Rayleigh quotients of random vectors always lie within the
	// eigenvalue range of a symmetric matrix, hence within Gershgorin.
	n := 24
	s := testSystem(n, 77)
	// Symmetrize: upper := lower transposed.
	for i := 0; i < n-1; i++ {
		s.Upper[i] = s.Lower[i+1]
	}
	lo, hi := GershgorinBounds(s)
	for trial := 0; trial < 10; trial++ {
		x := make([]float64, n)
		for i := range x {
			x[i] = math.Sin(float64(trial*7 + i*13))
		}
		ax := s.Apply(x)
		var num, den float64
		for i := range x {
			num += x[i] * ax[i]
			den += x[i] * x[i]
		}
		r := num / den
		if r < lo-1e-12 || r > hi+1e-12 {
			t.Errorf("Rayleigh quotient %g outside Gershgorin [%g, %g]", r, lo, hi)
		}
	}
}
