package matrix

import (
	"errors"

	"gputrid/internal/num"
)

// ErrSingular is returned by SolveDense when elimination encounters a
// zero (or numerically vanishing) pivot.
var ErrSingular = errors.New("matrix: singular system")

// SolveDense solves the tridiagonal system by expanding it into a dense
// n×n matrix and running Gaussian elimination with partial pivoting.
// It is O(n^3)-ish in storage terms (O(n^2)) and exists purely as an
// independently-trustworthy reference for verifying the fast solvers on
// small systems; it shares no code path with any of them.
func SolveDense[T num.Real](s *System[T]) ([]T, error) {
	n := s.N()
	if n == 0 {
		return nil, nil
	}
	// Build augmented dense matrix in float64 regardless of T so the
	// reference is always the most accurate answer available.
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n+1)
		a[i][i] = float64(s.Diag[i])
		if i > 0 {
			a[i][i-1] = float64(s.Lower[i])
		}
		if i < n-1 {
			a[i][i+1] = float64(s.Upper[i])
		}
		a[i][n] = float64(s.RHS[i])
	}
	// Forward elimination with partial pivoting.
	for col := 0; col < n; col++ {
		piv := col
		for r := col + 1; r < n; r++ {
			if abs64(a[r][col]) > abs64(a[piv][col]) {
				piv = r
			}
		}
		if abs64(a[piv][col]) == 0 {
			return nil, ErrSingular
		}
		a[col], a[piv] = a[piv], a[col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			if f == 0 {
				continue
			}
			for c := col; c <= n; c++ {
				a[r][c] -= f * a[col][c]
			}
		}
	}
	// Back substitution.
	x := make([]T, n)
	for i := n - 1; i >= 0; i-- {
		sum := a[i][n]
		for c := i + 1; c < n; c++ {
			sum -= a[i][c] * float64(x[c])
		}
		x[i] = T(sum / a[i][i])
	}
	return x, nil
}

func abs64(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
