package matrix

import (
	"math"
	"testing"
)

func TestNorm1Known(t *testing.T) {
	// [2 1 0; -1 3 1; 0 2 4]: column sums 3, 6, 5.
	s := NewSystem[float64](3)
	s.Diag[0], s.Upper[0] = 2, 1
	s.Lower[1], s.Diag[1], s.Upper[1] = -1, 3, 1
	s.Lower[2], s.Diag[2] = 2, 4
	if got := s.Norm1(); got != 6 {
		t.Errorf("Norm1 = %g, want 6", got)
	}
}

func TestTranspose(t *testing.T) {
	s := testSystem(8, 42)
	tt := s.Transpose()
	// (A^T)^T == A.
	back := tt.Transpose()
	if MaxAbsDiff(back.Lower, s.Lower) != 0 || MaxAbsDiff(back.Upper, s.Upper) != 0 ||
		MaxAbsDiff(back.Diag, s.Diag) != 0 {
		t.Error("double transpose is not identity")
	}
	// Norms agree: ||A||_1 == ||A^T||_inf.
	if math.Abs(float64(s.Norm1()-tt.InfNorm())) > 1e-15 {
		t.Errorf("||A||_1 = %g, ||A^T||_inf = %g", s.Norm1(), tt.InfNorm())
	}
}

func TestTransposeSolveConsistency(t *testing.T) {
	// Solving A^T y = b must satisfy the transposed equations.
	s := testSystem(12, 17)
	tt := s.Transpose()
	y, err := SolveDense(tt)
	if err != nil {
		t.Fatal(err)
	}
	if r := Residual(tt, y); r > 1e-13 {
		t.Errorf("transpose solve residual %g", r)
	}
}

func TestCond1EstIdentity(t *testing.T) {
	n := 16
	s := NewSystem[float64](n)
	for i := 0; i < n; i++ {
		s.Diag[i] = 1
	}
	got := Cond1Est(s, SolveDense[float64])
	if math.Abs(got-1) > 1e-12 {
		t.Errorf("κ₁(I) = %g, want 1", got)
	}
}

func TestCond1EstDiagonal(t *testing.T) {
	// diag(1, 10): κ₁ = 10 exactly.
	s := NewSystem[float64](2)
	s.Diag[0], s.Diag[1] = 1, 10
	got := Cond1Est(s, SolveDense[float64])
	if math.Abs(got-10) > 1e-9 {
		t.Errorf("κ₁ = %g, want 10", got)
	}
}

func TestCond1EstAgainstExplicitInverse(t *testing.T) {
	// For small systems compute ||A^{-1}||_1 exactly by solving against
	// every basis vector; the estimate must be within [0.3, 1.0]× of
	// κ exact (Hager's estimate is a lower bound, usually tight).
	for seed := uint64(1); seed <= 8; seed++ {
		n := 12
		s := testSystem(n, seed+200)
		var invNorm float64
		for j := 0; j < n; j++ {
			w := s.Clone()
			for i := range w.RHS {
				w.RHS[i] = 0
			}
			w.RHS[j] = 1
			col, err := SolveDense(w)
			if err != nil {
				t.Fatal(err)
			}
			var sum float64
			for _, v := range col {
				sum += math.Abs(float64(v))
			}
			if sum > invNorm {
				invNorm = sum
			}
		}
		exact := float64(s.Norm1()) * invNorm
		est := Cond1Est(s, SolveDense[float64])
		if est > exact*1.0000001 || est < exact*0.3 {
			t.Errorf("seed %d: estimate %g vs exact %g", seed, est, exact)
		}
	}
}

func TestCond1EstSingular(t *testing.T) {
	s := NewSystem[float64](4) // zero matrix
	if got := Cond1Est(s, SolveDense[float64]); !math.IsInf(got, 1) {
		t.Errorf("κ₁(singular) = %g, want +Inf", got)
	}
}

func TestCond1EstEmpty(t *testing.T) {
	if got := Cond1Est(NewSystem[float64](0), SolveDense[float64]); got != 0 {
		t.Errorf("κ₁(empty) = %g", got)
	}
}

func TestCond1EstIllConditioned(t *testing.T) {
	// A nearly singular system must report a large condition number.
	n := 32
	s := NewSystem[float64](n)
	for i := 0; i < n; i++ {
		if i > 0 {
			s.Lower[i] = 1
		}
		if i < n-1 {
			s.Upper[i] = 1
		}
		s.Diag[i] = 2.0000001 // near the -1,2,-1 spectrum edge... 1-4-1 style
	}
	// Use the classic -1, 2, -1 matrix: κ grows like n².
	for i := 0; i < n; i++ {
		if i > 0 {
			s.Lower[i] = -1
		}
		if i < n-1 {
			s.Upper[i] = -1
		}
		s.Diag[i] = 2
	}
	got := Cond1Est(s, SolveDense[float64])
	if got < 100 {
		t.Errorf("κ₁(Poisson %d) = %g, want > 100", n, got)
	}
}
