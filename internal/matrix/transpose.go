package matrix

import "gputrid/internal/num"

// transposeTile is the square tile edge of the blocked transpose. A
// 32×32 float64 tile is 8 KiB, so a source tile plus a destination
// tile stay resident in L1 while the inner loops run; the naive
// strided loop instead touches a new cache line (and, for large N, a
// new TLB page) on every single element of one side.
const transposeTile = 32

// transposeBlocked writes the transpose of src (rows×cols, row-major)
// into dst (cols×rows, row-major) tile by tile. dst and src must not
// overlap.
//
//tridlint:hotpath
func transposeBlocked[T num.Real](dst, src []T, rows, cols int) {
	if len(src) != rows*cols || len(dst) != rows*cols {
		panic("matrix: transpose length mismatch")
	}
	for ii := 0; ii < rows; ii += transposeTile {
		imax := ii + transposeTile
		if imax > rows {
			imax = rows
		}
		for jj := 0; jj < cols; jj += transposeTile {
			jmax := jj + transposeTile
			if jmax > cols {
				jmax = cols
			}
			for j := jj; j < jmax; j++ {
				// Destination-sequential inner loop: the 32 strided
				// source reads hit lines the previous columns of this
				// tile already pulled into L1.
				dcol := dst[j*rows+ii : j*rows+imax]
				si := ii*cols + j
				for i := range dcol {
					dcol[i] = src[si]
					si += cols
				}
			}
		}
	}
}

// transposeNaive is the strided element-at-a-time transpose the
// blocked kernel replaced, kept for the benchmark pair that quantifies
// the difference (BenchmarkInterleave).
func transposeNaive[T num.Real](dst, src []T, rows, cols int) {
	if len(src) != rows*cols || len(dst) != rows*cols {
		panic("matrix: transpose length mismatch")
	}
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			dst[j*rows+i] = src[i*cols+j]
		}
	}
}

// ToInterleavedInto converts the contiguous batch to the interleaved
// layout in caller-owned storage. dst must have the batch's shape.
//
//tridlint:hotpath
func (b *Batch[T]) ToInterleavedInto(dst *Interleaved[T]) {
	if dst.M != b.M || dst.N != b.N {
		panic("matrix: ToInterleavedInto shape mismatch")
	}
	transposeBlocked(dst.Lower, b.Lower, b.M, b.N)
	transposeBlocked(dst.Diag, b.Diag, b.M, b.N)
	transposeBlocked(dst.Upper, b.Upper, b.M, b.N)
	transposeBlocked(dst.RHS, b.RHS, b.M, b.N)
}

// ToBatchInto converts the interleaved batch to the contiguous layout
// in caller-owned storage. dst must have the batch's shape.
//
//tridlint:hotpath
func (v *Interleaved[T]) ToBatchInto(dst *Batch[T]) {
	if dst.M != v.M || dst.N != v.N {
		panic("matrix: ToBatchInto shape mismatch")
	}
	transposeBlocked(dst.Lower, v.Lower, v.N, v.M)
	transposeBlocked(dst.Diag, v.Diag, v.N, v.M)
	transposeBlocked(dst.Upper, v.Upper, v.N, v.M)
	transposeBlocked(dst.RHS, v.RHS, v.N, v.M)
}

// DeinterleaveVectorInto converts a solution vector in interleaved
// order (row j of system i at j*M+i) into contiguous order (system i
// occupying [i*N,(i+1)*N)) in caller-owned storage.
//
//tridlint:hotpath
func DeinterleaveVectorInto[T num.Real](dst, x []T, m, n int) {
	transposeBlocked(dst, x, n, m)
}

// InterleaveVectorInto is the inverse of DeinterleaveVectorInto.
//
//tridlint:hotpath
func InterleaveVectorInto[T num.Real](dst, x []T, m, n int) {
	transposeBlocked(dst, x, m, n)
}
