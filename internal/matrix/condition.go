package matrix

import (
	"math"

	"gputrid/internal/num"
)

// Norm1 returns the 1-norm of the tridiagonal matrix (maximum absolute
// column sum).
func (s *System[T]) Norm1() T {
	n := s.N()
	var m T
	for j := 0; j < n; j++ {
		col := num.Abs(s.Diag[j])
		if j > 0 {
			col += num.Abs(s.Upper[j-1]) // row j-1 couples to column j
		}
		if j < n-1 {
			col += num.Abs(s.Lower[j+1]) // row j+1 couples to column j
		}
		m = num.Max(m, col)
	}
	return m
}

// Transpose returns the transposed system (sub- and super-diagonals
// swapped); the RHS is copied unchanged.
func (s *System[T]) Transpose() *System[T] {
	n := s.N()
	t := NewSystem[T](n)
	copy(t.Diag, s.Diag)
	copy(t.RHS, s.RHS)
	for i := 0; i < n-1; i++ {
		t.Upper[i] = s.Lower[i+1]
		t.Lower[i+1] = s.Upper[i]
	}
	return t
}

// Cond1Est estimates the 1-norm condition number κ₁(A) = ‖A‖₁·‖A⁻¹‖₁
// with Hager's algorithm as refined by Higham (the method behind
// LAPACK's xGECON): a few tridiagonal solves with A and Aᵀ steer a
// gradient ascent on ‖A⁻¹x‖₁/‖x‖₁. The solver callback must solve the
// given system (it is handed fresh System values whose RHS is the
// vector to invert against).
//
// Returns +Inf when a solve fails (singular matrix). The estimate is a
// lower bound on the true κ₁, almost always within a small factor.
func Cond1Est[T num.Real](s *System[T], solve func(*System[T]) ([]T, error)) float64 {
	n := s.N()
	if n == 0 {
		return 0
	}
	at := s.Transpose()

	solveWith := func(m *System[T], rhs []T) ([]T, bool) {
		w := m.Clone()
		copy(w.RHS, rhs)
		x, err := solve(w)
		if err != nil {
			return nil, false
		}
		for _, v := range x {
			if !num.IsFinite(v) {
				return nil, false
			}
		}
		return x, true
	}

	norm1 := func(v []T) float64 {
		var sum float64
		for _, u := range v {
			sum += math.Abs(float64(u))
		}
		return sum
	}

	x := make([]T, n)
	for i := range x {
		x[i] = T(1.0 / float64(n))
	}
	var est float64
	for iter := 0; iter < 5; iter++ {
		y, ok := solveWith(s, x)
		if !ok {
			return math.Inf(1)
		}
		est = norm1(y)
		// ξ = sign(y)
		xi := make([]T, n)
		for i, v := range y {
			if v >= 0 {
				xi[i] = 1
			} else {
				xi[i] = -1
			}
		}
		z, ok := solveWith(at, xi)
		if !ok {
			return math.Inf(1)
		}
		// Find j maximizing |z_j|.
		j, zmax := 0, math.Abs(float64(z[0]))
		for i := 1; i < n; i++ {
			if a := math.Abs(float64(z[i])); a > zmax {
				j, zmax = i, a
			}
		}
		var ztx float64
		for i := range z {
			ztx += float64(z[i]) * float64(x[i])
		}
		if zmax <= ztx {
			break // converged
		}
		for i := range x {
			x[i] = 0
		}
		x[j] = 1
	}
	return float64(s.Norm1()) * est
}

// Cond1EstBatch runs Cond1Est on the selected systems of a batch,
// returning estimates aligned with systems (result[j] is the estimate
// for batch system systems[j]). Estimation costs a handful of pivoted
// solves per system, so callers — the guard's diagnostic report above
// all — invoke it lazily, only for the systems that needed rescue.
func Cond1EstBatch[T num.Real](b *Batch[T], systems []int, solve func(*System[T]) ([]T, error)) []float64 {
	out := make([]float64, len(systems))
	for j, i := range systems {
		out[j] = Cond1Est(b.System(i), solve)
	}
	return out
}
