package matrix

import (
	"math"
	"math/rand"
	"testing"
)

// sameFloat treats two float64s as equal when they are bitwise equal
// or both NaN — the equivalence the interleaved residual scan promises
// against the contiguous one.
func sameFloat(a, b float64) bool {
	return a == b || (math.IsNaN(a) && math.IsNaN(b)) ||
		(math.IsInf(a, 1) && math.IsInf(b, 1))
}

// TestResidualsPerSystemInterleavedBitwise drives the interleaved
// residual scan against ResidualsPerSystemInto on the same data in
// both layouts and requires bitwise-identical residuals, including
// the +Inf classification of poisoned systems. The batching
// front-end's per-system guard verdicts rest on this identity.
func TestResidualsPerSystemInterleavedBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, sh := range []struct{ m, n int }{{1, 8}, {7, 33}, {64, 16}, {16, 257}} {
		m, n := sh.m, sh.n
		b := NewBatch[float64](m, n)
		x := make([]float64, m*n)
		for i := range b.Diag {
			b.Lower[i] = rng.NormFloat64()
			b.Upper[i] = rng.NormFloat64()
			b.Diag[i] = 4 + rng.Float64()
			b.RHS[i] = rng.NormFloat64()
			x[i] = rng.NormFloat64()
		}
		// Poison a couple of systems the way real faults do: a
		// non-finite solution entry, and a non-finite RHS (the latter
		// yields a NaN residual via Inf/Inf in both scans).
		if m >= 3 {
			x[1*n+n/2] = math.NaN()
			b.RHS[2*n] = math.Inf(1)
		}

		want := make([]float64, m)
		ResidualsPerSystemInto(want, b, x)

		v := b.ToInterleaved()
		xi := InterleaveVector(x, m, n)
		got := make([]float64, m)
		scratch := make([]float64, 3*m)
		for i := range scratch {
			scratch[i] = math.NaN() // contents on entry must not matter
		}
		ResidualsPerSystemInterleavedInto(got, scratch, v, xi, m)
		for i := range want {
			if !sameFloat(got[i], want[i]) {
				t.Fatalf("%dx%d system %d: interleaved residual %v != contiguous %v",
					m, n, i, got[i], want[i])
			}
		}

		// A shorter count scans a prefix only.
		if m > 2 {
			partial := make([]float64, m)
			ResidualsPerSystemInterleavedInto(partial, scratch, v, xi, 2)
			for i := 0; i < 2; i++ {
				if !sameFloat(partial[i], want[i]) {
					t.Fatalf("prefix scan system %d: %v != %v", i, partial[i], want[i])
				}
			}
		}
	}
}

// TestResidualsPerSystemInterleavedFloat32 pins the T-typed ||A||_inf
// accumulation: for float32 the row sums must round in float32, as
// System.InfNorm does, or residuals drift from the contiguous scan.
func TestResidualsPerSystemInterleavedFloat32(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m, n := 9, 41
	b := NewBatch[float32](m, n)
	x := make([]float32, m*n)
	for i := range b.Diag {
		b.Lower[i] = float32(rng.NormFloat64())
		b.Upper[i] = float32(rng.NormFloat64())
		b.Diag[i] = float32(4 + rng.Float64())
		b.RHS[i] = float32(rng.NormFloat64())
		x[i] = float32(rng.NormFloat64())
	}
	want := make([]float64, m)
	ResidualsPerSystemInto(want, b, x)
	got := make([]float64, m)
	scratch := make([]float64, 3*m)
	ResidualsPerSystemInterleavedInto(got, scratch, b.ToInterleaved(), InterleaveVector(x, m, n), m)
	for i := range want {
		if !sameFloat(got[i], want[i]) {
			t.Fatalf("float32 system %d: interleaved residual %v != contiguous %v", i, got[i], want[i])
		}
	}
}
