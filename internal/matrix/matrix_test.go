package matrix

import (
	"math"
	"testing"
	"testing/quick"

	"gputrid/internal/num"
)

// tiny deterministic generator local to this package's tests.
func testSystem(n int, seed uint64) *System[float64] {
	r := num.NewRNG(seed)
	s := NewSystem[float64](n)
	for i := 0; i < n; i++ {
		if i > 0 {
			s.Lower[i] = r.Range(-1, 1)
		}
		if i < n-1 {
			s.Upper[i] = r.Range(-1, 1)
		}
		s.Diag[i] = math.Abs(s.Lower[i]) + math.Abs(s.Upper[i]) + r.Range(0.5, 1.5)
		s.RHS[i] = r.Range(-10, 10)
	}
	return s
}

func TestNewSystemZeroed(t *testing.T) {
	s := NewSystem[float64](5)
	if s.N() != 5 {
		t.Fatalf("N = %d", s.N())
	}
	for i := 0; i < 5; i++ {
		if s.Lower[i] != 0 || s.Diag[i] != 0 || s.Upper[i] != 0 || s.RHS[i] != 0 {
			t.Fatal("not zeroed")
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	s := testSystem(8, 1)
	c := s.Clone()
	c.Diag[3] = 999
	if s.Diag[3] == 999 {
		t.Error("Clone shares storage")
	}
}

func TestValidate(t *testing.T) {
	s := testSystem(8, 2)
	if err := s.Validate(); err != nil {
		t.Errorf("valid system rejected: %v", err)
	}
	s.Diag[4] = math.NaN()
	if s.Validate() == nil {
		t.Error("NaN accepted")
	}
	bad := &System[float64]{Lower: make([]float64, 3), Diag: make([]float64, 4),
		Upper: make([]float64, 4), RHS: make([]float64, 4)}
	if bad.Validate() == nil {
		t.Error("length mismatch accepted")
	}
}

func TestApplyIdentity(t *testing.T) {
	n := 6
	s := NewSystem[float64](n)
	for i := 0; i < n; i++ {
		s.Diag[i] = 1
	}
	x := []float64{1, 2, 3, 4, 5, 6}
	y := s.Apply(x)
	for i := range x {
		if y[i] != x[i] {
			t.Fatalf("identity apply wrong at %d", i)
		}
	}
}

func TestApplyKnown(t *testing.T) {
	// [2 1; 1 2] x = y with x = (1, 1) -> y = (3, 3)
	s := NewSystem[float64](2)
	s.Diag[0], s.Upper[0] = 2, 1
	s.Lower[1], s.Diag[1] = 1, 2
	y := s.Apply([]float64{1, 1})
	if y[0] != 3 || y[1] != 3 {
		t.Fatalf("Apply = %v, want [3 3]", y)
	}
}

func TestDiagonallyDominant(t *testing.T) {
	s := testSystem(16, 3)
	if !s.DiagonallyDominant(0.25) {
		t.Error("generated dominant system not recognized")
	}
	s.Diag[7] = 0
	if s.DiagonallyDominant(0) {
		t.Error("broken dominance not detected")
	}
}

func TestInfNorm(t *testing.T) {
	s := NewSystem[float64](3)
	s.Diag[0], s.Upper[0] = -2, 1 // row sum 3
	s.Lower[1], s.Diag[1], s.Upper[1] = 1, 5, -1
	s.Lower[2], s.Diag[2] = 2, 2
	if got := s.InfNorm(); got != 7 {
		t.Errorf("InfNorm = %g, want 7", got)
	}
}

func TestSolveDenseKnown(t *testing.T) {
	// 2x2: [2 1; 1 2] x = [3; 3] -> x = (1, 1)
	s := NewSystem[float64](2)
	s.Diag[0], s.Upper[0], s.RHS[0] = 2, 1, 3
	s.Lower[1], s.Diag[1], s.RHS[1] = 1, 2, 3
	x, err := SolveDense(s)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-1) > 1e-12 {
		t.Errorf("x = %v, want [1 1]", x)
	}
}

func TestSolveDenseSingular(t *testing.T) {
	s := NewSystem[float64](2) // all zero
	if _, err := SolveDense(s); err != ErrSingular {
		t.Errorf("err = %v, want ErrSingular", err)
	}
}

func TestSolveDenseResidualProperty(t *testing.T) {
	f := func(seedRaw uint16, nRaw uint8) bool {
		n := int(nRaw)%30 + 2
		s := testSystem(n, uint64(seedRaw)+100)
		x, err := SolveDense(s)
		if err != nil {
			return false
		}
		return Residual(s, x) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSolveDensePivotingHandlesZeroDiag(t *testing.T) {
	// Row 0 has zero diagonal but the system is nonsingular:
	// [0 1; 1 0] x = [2; 3] -> x = (3, 2).
	s := NewSystem[float64](2)
	s.Upper[0], s.RHS[0] = 1, 2
	s.Lower[1], s.RHS[1] = 1, 3
	x, err := SolveDense(s)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-3) > 1e-12 || math.Abs(x[1]-2) > 1e-12 {
		t.Errorf("x = %v, want [3 2]", x)
	}
}

func TestBatchSystemViewsShareStorage(t *testing.T) {
	b := NewBatch[float64](3, 4)
	b.System(1).Diag[2] = 42
	if b.Diag[1*4+2] != 42 {
		t.Error("System view does not alias batch storage")
	}
}

func TestBatchSetSystem(t *testing.T) {
	b := NewBatch[float64](2, 5)
	s := testSystem(5, 9)
	b.SetSystem(1, s)
	got := b.System(1)
	for j := 0; j < 5; j++ {
		if got.Diag[j] != s.Diag[j] || got.RHS[j] != s.RHS[j] {
			t.Fatal("SetSystem copy mismatch")
		}
	}
}

func TestInterleaveRoundTrip(t *testing.T) {
	m, n := 5, 7
	b := NewBatch[float64](m, n)
	r := num.NewRNG(4)
	for i := range b.Diag {
		b.Lower[i] = r.Range(-1, 1)
		b.Diag[i] = r.Range(1, 2)
		b.Upper[i] = r.Range(-1, 1)
		b.RHS[i] = r.Range(-5, 5)
	}
	v := b.ToInterleaved()
	back := v.ToBatch()
	if MaxAbsDiff(b.Diag, back.Diag) != 0 || MaxAbsDiff(b.Lower, back.Lower) != 0 ||
		MaxAbsDiff(b.Upper, back.Upper) != 0 || MaxAbsDiff(b.RHS, back.RHS) != 0 {
		t.Error("interleave round trip not exact")
	}
}

func TestInterleavedIdx(t *testing.T) {
	v := NewInterleaved[float64](4, 3)
	if v.Idx(1, 2) != 2*4+1 {
		t.Errorf("Idx(1,2) = %d", v.Idx(1, 2))
	}
}

func TestExtractSystemMatchesBatchSystem(t *testing.T) {
	b := NewBatch[float64](3, 6)
	for i := 0; i < 3; i++ {
		b.SetSystem(i, testSystem(6, uint64(i)+20))
	}
	v := b.ToInterleaved()
	for i := 0; i < 3; i++ {
		want := b.System(i)
		got := v.ExtractSystem(i)
		if MaxAbsDiff(want.Diag, got.Diag) != 0 || MaxAbsDiff(want.RHS, got.RHS) != 0 {
			t.Fatalf("ExtractSystem(%d) mismatch", i)
		}
	}
}

func TestVectorInterleaveRoundTrip(t *testing.T) {
	m, n := 3, 4
	x := make([]float64, m*n)
	for i := range x {
		x[i] = float64(i)
	}
	y := InterleaveVector(x, m, n)
	z := DeinterleaveVector(y, m, n)
	if MaxAbsDiff(x, z) != 0 {
		t.Error("vector interleave round trip not exact")
	}
	// Spot-check placement: contiguous x[i*n+j] must land at j*m+i.
	if y[2*3+1] != x[1*4+2] {
		t.Error("InterleaveVector placement wrong")
	}
}

func TestResidualExactSolutionIsZero(t *testing.T) {
	s := testSystem(10, 30)
	x, err := SolveDense(s)
	if err != nil {
		t.Fatal(err)
	}
	if r := Residual(s, x); r > 1e-14 {
		t.Errorf("residual of reference solution = %g", r)
	}
}

func TestResidualDetectsWrongSolution(t *testing.T) {
	s := testSystem(10, 31)
	x := make([]float64, 10) // all zeros, certainly wrong for random RHS
	if r := Residual(s, x); r < 1e-3 {
		t.Errorf("residual of zero solution suspiciously small: %g", r)
	}
}

func TestCheckSolution(t *testing.T) {
	s := testSystem(12, 32)
	x, err := SolveDense(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckSolution(s, x); err != nil {
		t.Errorf("good solution rejected: %v", err)
	}
	x[5] = math.NaN()
	if CheckSolution(s, x) == nil {
		t.Error("NaN solution accepted")
	}
}

func TestMaxResidualBatch(t *testing.T) {
	m, n := 4, 8
	b := NewBatch[float64](m, n)
	x := make([]float64, m*n)
	for i := 0; i < m; i++ {
		s := testSystem(n, uint64(i)+40)
		b.SetSystem(i, s)
		xi, err := SolveDense(s)
		if err != nil {
			t.Fatal(err)
		}
		copy(x[i*n:(i+1)*n], xi)
	}
	if r := MaxResidual(b, x); r > 1e-13 {
		t.Errorf("MaxResidual = %g", r)
	}
	x[2*n+3] += 1 // corrupt system 2
	if r := MaxResidual(b, x); r < 1e-6 {
		t.Errorf("corruption not detected: %g", r)
	}
}

func TestResidualToleranceScales(t *testing.T) {
	if ResidualTolerance[float64](100) >= ResidualTolerance[float32](100) {
		t.Error("double tolerance should be tighter than single")
	}
	if ResidualTolerance[float64](10) >= ResidualTolerance[float64](10000) {
		t.Error("tolerance should grow with n")
	}
	if ResidualTolerance[float32](1<<30) > 1e-2 {
		t.Error("tolerance cap not applied")
	}
}

func TestBatchValidate(t *testing.T) {
	b := NewBatch[float64](2, 3)
	if err := b.Validate(); err != nil {
		t.Errorf("zero batch should validate: %v", err)
	}
	b.Diag[4] = math.Inf(1)
	if b.Validate() == nil {
		t.Error("Inf accepted")
	}
}

func TestPanicsOnBadShapes(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("NewBatch(0,1)", func() { NewBatch[float64](0, 1) })
	mustPanic("NewInterleaved(1,0)", func() { NewInterleaved[float64](1, 0) })
	mustPanic("System index", func() { NewBatch[float64](2, 2).System(5) })
	mustPanic("Apply mismatch", func() { NewSystem[float64](3).Apply(make([]float64, 2)) })
	mustPanic("Residual mismatch", func() { Residual(NewSystem[float64](3), make([]float64, 2)) })
}
