package clock

import (
	"sync"
	"testing"
	"time"
)

// TestVirtualClockStep: time moves only when Advance says so, by
// exactly the asked-for step, and Advance returns the instant it
// produced.
func TestVirtualClockStep(t *testing.T) {
	start := time.Unix(1000, 0).UTC()
	c := NewVirtualClock(start)
	if got := c.Now(); !got.Equal(start) {
		t.Fatalf("Now() = %v, want the start instant %v", got, start)
	}
	if got := c.Now(); !got.Equal(start) {
		t.Fatalf("reading the clock moved it: %v", got)
	}
	for i, step := range []time.Duration{time.Second, time.Millisecond, 3 * time.Hour} {
		before := c.Now()
		ret := c.Advance(step)
		if want := before.Add(step); !ret.Equal(want) {
			t.Fatalf("step %d: Advance returned %v, want %v", i, ret, want)
		}
		if got := c.Now(); !got.Equal(ret) {
			t.Fatalf("step %d: Now() = %v after Advance returned %v", i, got, ret)
		}
	}
}

// TestVirtualClockZeroValue: the zero VirtualClock starts at the zero
// time and still advances.
func TestVirtualClockZeroValue(t *testing.T) {
	var c VirtualClock
	if got := c.Now(); !got.IsZero() {
		t.Fatalf("zero clock Now() = %v, want the zero time", got)
	}
	c.Advance(time.Minute)
	if got := c.Now(); !got.Equal(time.Time{}.Add(time.Minute)) {
		t.Fatalf("zero clock after Advance = %v", got)
	}
}

// TestVirtualClockOrdering: observations never run backwards, and
// concurrent advances accumulate exactly — the property the fleet's
// deterministic replay rests on.
func TestVirtualClockOrdering(t *testing.T) {
	c := NewVirtualClock(time.Unix(0, 0).UTC())
	const (
		goroutines = 8
		stepsEach  = 200
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			prev := c.Now()
			for i := 0; i < stepsEach; i++ {
				got := c.Advance(time.Millisecond)
				if got.Before(prev) {
					t.Errorf("clock ran backwards: %v after %v", got, prev)
					return
				}
				prev = got
			}
		}()
	}
	wg.Wait()
	want := time.Unix(0, 0).UTC().Add(goroutines * stepsEach * time.Millisecond)
	if got := c.Now(); !got.Equal(want) {
		t.Fatalf("final instant = %v, want every advance counted: %v", got, want)
	}
}

// TestVirtualClockSatisfiesClock pins the interface contract both
// implementations share.
func TestVirtualClockSatisfiesClock(t *testing.T) {
	var _ Clock = &VirtualClock{}
	var _ Clock = WallClock{}
	if (WallClock{}).Now().IsZero() {
		t.Fatal("WallClock returned the zero time")
	}
}
