package clock

import (
	"sync"
	"testing"
	"time"
)

// TestVirtualClockStep: time moves only when Advance says so, by
// exactly the asked-for step, and Advance returns the instant it
// produced.
func TestVirtualClockStep(t *testing.T) {
	start := time.Unix(1000, 0).UTC()
	c := NewVirtualClock(start)
	if got := c.Now(); !got.Equal(start) {
		t.Fatalf("Now() = %v, want the start instant %v", got, start)
	}
	if got := c.Now(); !got.Equal(start) {
		t.Fatalf("reading the clock moved it: %v", got)
	}
	for i, step := range []time.Duration{time.Second, time.Millisecond, 3 * time.Hour} {
		before := c.Now()
		ret := c.Advance(step)
		if want := before.Add(step); !ret.Equal(want) {
			t.Fatalf("step %d: Advance returned %v, want %v", i, ret, want)
		}
		if got := c.Now(); !got.Equal(ret) {
			t.Fatalf("step %d: Now() = %v after Advance returned %v", i, got, ret)
		}
	}
}

// TestVirtualClockZeroValue: the zero VirtualClock starts at the zero
// time and still advances.
func TestVirtualClockZeroValue(t *testing.T) {
	var c VirtualClock
	if got := c.Now(); !got.IsZero() {
		t.Fatalf("zero clock Now() = %v, want the zero time", got)
	}
	c.Advance(time.Minute)
	if got := c.Now(); !got.Equal(time.Time{}.Add(time.Minute)) {
		t.Fatalf("zero clock after Advance = %v", got)
	}
}

// TestVirtualClockOrdering: observations never run backwards, and
// concurrent advances accumulate exactly — the property the fleet's
// deterministic replay rests on.
func TestVirtualClockOrdering(t *testing.T) {
	c := NewVirtualClock(time.Unix(0, 0).UTC())
	const (
		goroutines = 8
		stepsEach  = 200
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			prev := c.Now()
			for i := 0; i < stepsEach; i++ {
				got := c.Advance(time.Millisecond)
				if got.Before(prev) {
					t.Errorf("clock ran backwards: %v after %v", got, prev)
					return
				}
				prev = got
			}
		}()
	}
	wg.Wait()
	want := time.Unix(0, 0).UTC().Add(goroutines * stepsEach * time.Millisecond)
	if got := c.Now(); !got.Equal(want) {
		t.Fatalf("final instant = %v, want every advance counted: %v", got, want)
	}
}

// TestVirtualClockSatisfiesClock pins the interface contract both
// implementations share.
func TestVirtualClockSatisfiesClock(t *testing.T) {
	var _ Clock = &VirtualClock{}
	var _ Clock = WallClock{}
	if (WallClock{}).Now().IsZero() {
		t.Fatal("WallClock returned the zero time")
	}
}

// drained reports whether the timer's channel is currently empty.
func drained(tm Timer) bool {
	select {
	case <-tm.C():
		return false
	default:
		return true
	}
}

// TestVirtualTimerFiresOnAdvance: a timer fires during the Advance
// that reaches its deadline, not before, and fires only once.
func TestVirtualTimerFiresOnAdvance(t *testing.T) {
	c := NewVirtualClock(time.Unix(0, 0).UTC())
	tm := c.NewTimer(10 * time.Millisecond)
	c.Advance(9 * time.Millisecond)
	if !drained(tm) {
		t.Fatal("timer fired before its deadline")
	}
	c.Advance(time.Millisecond)
	select {
	case got := <-tm.C():
		if want := time.Unix(0, 0).UTC().Add(10 * time.Millisecond); !got.Equal(want) {
			t.Fatalf("firing carried %v, want %v", got, want)
		}
	default:
		t.Fatal("timer did not fire at its deadline")
	}
	c.Advance(time.Hour)
	if !drained(tm) {
		t.Fatal("one-shot timer fired twice")
	}
}

// TestVirtualTimerImmediate: a non-positive duration fires without any
// Advance at all — the batcher relies on this for already-due flushes.
func TestVirtualTimerImmediate(t *testing.T) {
	c := NewVirtualClock(time.Unix(0, 0).UTC())
	for _, d := range []time.Duration{0, -time.Second} {
		if drained(c.NewTimer(d)) {
			t.Fatalf("NewTimer(%v) did not fire immediately", d)
		}
	}
}

// TestVirtualTimerStop: Stop disarms and reports prior armed state; a
// stopped timer never fires.
func TestVirtualTimerStop(t *testing.T) {
	c := NewVirtualClock(time.Unix(0, 0).UTC())
	tm := c.NewTimer(time.Second)
	if !tm.Stop() {
		t.Fatal("Stop on an armed timer reported false")
	}
	if tm.Stop() {
		t.Fatal("second Stop reported the timer still armed")
	}
	c.Advance(time.Minute)
	if !drained(tm) {
		t.Fatal("stopped timer fired")
	}
}

// TestVirtualTimerReset: Reset re-arms to a new deadline and drains a
// stale buffered firing, so a Reset-then-wait observes only the new
// deadline (Go >= 1.23 time.Timer semantics).
func TestVirtualTimerReset(t *testing.T) {
	c := NewVirtualClock(time.Unix(0, 0).UTC())
	tm := c.NewTimer(time.Millisecond)
	c.Advance(time.Millisecond) // fires; firing left buffered
	tm.Reset(5 * time.Millisecond)
	if !drained(tm) {
		t.Fatal("Reset left a stale firing buffered")
	}
	c.Advance(4 * time.Millisecond)
	if !drained(tm) {
		t.Fatal("reset timer fired before its new deadline")
	}
	c.Advance(time.Millisecond)
	if drained(tm) {
		t.Fatal("reset timer did not fire at its new deadline")
	}
}

// TestVirtualTimerResetImmediate: Reset with a non-positive duration
// fires without an Advance, same as NewTimer.
func TestVirtualTimerResetImmediate(t *testing.T) {
	c := NewVirtualClock(time.Unix(0, 0).UTC())
	tm := c.NewTimer(time.Hour)
	tm.Reset(0)
	if drained(tm) {
		t.Fatal("Reset(0) did not fire immediately")
	}
}

// TestVirtualTimerMany: several timers on one clock each fire at their
// own deadline during a single large Advance.
func TestVirtualTimerMany(t *testing.T) {
	c := NewVirtualClock(time.Unix(0, 0).UTC())
	short := c.NewTimer(time.Millisecond)
	long := c.NewTimer(time.Second)
	c.Advance(time.Millisecond)
	if drained(short) {
		t.Fatal("short timer missed its deadline")
	}
	if !drained(long) {
		t.Fatal("long timer fired early")
	}
	c.Advance(time.Second)
	if drained(long) {
		t.Fatal("long timer missed its deadline")
	}
}

// TestWallTimerSatisfiesTimerClock pins that both clocks can mint
// timers and that a wall timer with zero duration delivers promptly.
func TestWallTimerSatisfiesTimerClock(t *testing.T) {
	var _ TimerClock = WallClock{}
	var _ TimerClock = &VirtualClock{}
	tm := WallClock{}.NewTimer(0)
	select {
	case <-tm.C():
	case <-time.After(5 * time.Second):
		t.Fatal("wall timer with zero duration never fired")
	}
}
