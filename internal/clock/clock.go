// Package clock is the shared time source for the serving stack.
//
// Every control-plane decision that involves elapsed time — pool idle
// eviction, breaker cooldowns, fleet probation expiry, autoscale
// cooldowns — reads an injected Clock, never time.Now directly, so a
// scenario driven by a VirtualClock replays the exact same decision
// sequence on every run. The clockinject analyzer (internal/analysis)
// enforces this mechanically across internal/pool, internal/fleet and
// internal/gpusim; WallClock below is the one sanctioned place those
// packages' time comes from in production.
package clock

import (
	"sync"
	"time"
)

// Clock abstracts time for the serving control plane.
type Clock interface {
	Now() time.Time
}

// WallClock is the production clock.
type WallClock struct{}

// Now returns the current wall time.
//
//tridlint:wallclock
func (WallClock) Now() time.Time { return time.Now() }

// VirtualClock is a manually advanced clock for deterministic
// scenarios and tests: time moves only when the driver says so.
// The zero value starts at the zero time; all methods are safe for
// concurrent use.
type VirtualClock struct {
	mu sync.Mutex
	t  time.Time
}

// NewVirtualClock starts a virtual clock at the given instant.
func NewVirtualClock(start time.Time) *VirtualClock {
	return &VirtualClock{t: start}
}

// Now returns the current virtual time.
func (c *VirtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

// Advance moves the clock forward by d and returns the new time.
func (c *VirtualClock) Advance(d time.Duration) time.Time {
	c.mu.Lock()
	c.t = c.t.Add(d)
	t := c.t
	c.mu.Unlock()
	return t
}
