// Package clock is the shared time source for the serving stack.
//
// Every control-plane decision that involves elapsed time — pool idle
// eviction, breaker cooldowns, fleet probation expiry, autoscale
// cooldowns — reads an injected Clock, never time.Now directly, so a
// scenario driven by a VirtualClock replays the exact same decision
// sequence on every run. The clockinject analyzer (internal/analysis)
// enforces this mechanically across internal/pool, internal/fleet,
// internal/gpusim and internal/batcher; WallClock below is the one
// sanctioned place those packages' time comes from in production.
package clock

import (
	"sync"
	"time"
)

// Clock abstracts time for the serving control plane.
type Clock interface {
	Now() time.Time
}

// Timer is a resettable one-shot timer bound to a Clock. Semantics
// follow time.Timer loosely, with one deliberate loosening: after a
// Reset, a consumer may still observe one spurious firing scheduled by
// an earlier arming. Consumers must therefore treat a firing as a hint
// and re-check their own deadlines — which is exactly what the
// batcher's flusher loop does.
type Timer interface {
	// C is the firing channel. At most one firing is buffered.
	C() <-chan time.Time
	// Stop disarms the timer; it reports whether the timer was armed.
	// A firing already delivered to C stays there.
	Stop() bool
	// Reset re-arms the timer to fire d from the clock's now. A
	// non-positive d fires immediately.
	Reset(d time.Duration)
}

// TimerClock is a Clock that can also mint Timers — the interface the
// batcher's deadline-flush machinery requires. WallClock timers are
// real time.Timers; VirtualClock timers fire inside Advance.
type TimerClock interface {
	Clock
	// NewTimer returns an armed timer firing d from now (immediately
	// when d <= 0).
	NewTimer(d time.Duration) Timer
}

// WallClock is the production clock.
type WallClock struct{}

// Now returns the current wall time.
//
//tridlint:wallclock
func (WallClock) Now() time.Time { return time.Now() }

// NewTimer returns a Timer over a real time.Timer.
//
//tridlint:wallclock
func (WallClock) NewTimer(d time.Duration) Timer {
	return &wallTimer{t: time.NewTimer(d)}
}

// wallTimer adapts time.Timer to the Timer interface. Go ≥ 1.23 timer
// semantics (Reset drains a stale pending firing) give it the
// documented at-most-one-spurious-firing behavior for free.
type wallTimer struct{ t *time.Timer }

func (w *wallTimer) C() <-chan time.Time   { return w.t.C }
func (w *wallTimer) Stop() bool            { return w.t.Stop() }
func (w *wallTimer) Reset(d time.Duration) { w.t.Reset(d) }

// VirtualClock is a manually advanced clock for deterministic
// scenarios and tests: time moves only when the driver says so.
// The zero value starts at the zero time; all methods are safe for
// concurrent use.
//
// Timers minted by NewTimer fire during the Advance (or Reset) that
// first reaches their deadline: the firing is delivered into the
// timer's buffered channel before Advance returns, so a test that
// advances past a deadline can immediately wait for the consumer's
// observable reaction without any wall-clock sleep.
type VirtualClock struct {
	mu     sync.Mutex
	t      time.Time
	timers map[*virtualTimer]struct{}
}

// NewVirtualClock starts a virtual clock at the given instant.
func NewVirtualClock(start time.Time) *VirtualClock {
	return &VirtualClock{t: start}
}

// Now returns the current virtual time.
func (c *VirtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

// Advance moves the clock forward by d, fires every timer whose
// deadline is reached, and returns the new time.
func (c *VirtualClock) Advance(d time.Duration) time.Time {
	c.mu.Lock()
	c.t = c.t.Add(d)
	t := c.t
	for vt := range c.timers {
		vt.fireIfDueLocked(t)
	}
	c.mu.Unlock()
	return t
}

// NewTimer returns a virtual timer firing when the clock is advanced
// d past now (immediately when d <= 0). The timer stays registered
// with the clock for the clock's lifetime — VirtualClocks are
// test/scenario objects, so the bookkeeping is deliberately simple.
func (c *VirtualClock) NewTimer(d time.Duration) Timer {
	c.mu.Lock()
	defer c.mu.Unlock()
	vt := &virtualTimer{clk: c, ch: make(chan time.Time, 1)}
	if c.timers == nil {
		c.timers = make(map[*virtualTimer]struct{})
	}
	c.timers[vt] = struct{}{}
	vt.armLocked(c.t, d)
	return vt
}

// virtualTimer is one registration in a VirtualClock. Its fields are
// guarded by the clock's mutex.
type virtualTimer struct {
	clk   *VirtualClock
	ch    chan time.Time
	when  time.Time
	armed bool
}

func (vt *virtualTimer) C() <-chan time.Time { return vt.ch }

func (vt *virtualTimer) Stop() bool {
	vt.clk.mu.Lock()
	defer vt.clk.mu.Unlock()
	was := vt.armed
	vt.armed = false
	return was
}

func (vt *virtualTimer) Reset(d time.Duration) {
	vt.clk.mu.Lock()
	defer vt.clk.mu.Unlock()
	// Drain a stale pending firing, mirroring Go ≥ 1.23 time.Timer
	// semantics, so a Reset-then-wait observes only the new deadline.
	select {
	case <-vt.ch:
	default:
	}
	vt.armLocked(vt.clk.t, d)
}

// armLocked schedules the timer d from now, firing immediately when
// d <= 0 (the clock cannot move again before the caller returns, so
// "immediately" means a buffered firing the consumer sees next poll).
func (vt *virtualTimer) armLocked(now time.Time, d time.Duration) {
	vt.when = now.Add(d)
	vt.armed = true
	vt.fireIfDueLocked(now)
}

// fireIfDueLocked delivers the firing when the deadline has been
// reached. The channel has capacity one; if an undrained firing is
// already buffered, the new one is dropped — the consumer will observe
// a firing either way.
func (vt *virtualTimer) fireIfDueLocked(now time.Time) {
	if !vt.armed || now.Before(vt.when) {
		return
	}
	vt.armed = false
	select {
	case vt.ch <- now:
	default:
	}
}
