// Package serving is a lockorder fixture: a fleet-like outer lock
// (rank 10), a pool-like middle lock (rank 20), and a station-like
// inner lock (rank 30).
package serving

import "sync"

type fleet struct {
	mu   sync.Mutex //tridlint:lockrank 10
	pool *pool
}

type pool struct {
	mu sync.Mutex //tridlint:lockrank 20
	st *station
}

type station struct {
	mu     sync.Mutex //tridlint:lockrank 30
	leased int
}

type batch struct{}

func SolveBatch(b *batch) error { return nil }

// orderedClean acquires outer-to-inner: fine.
func (f *fleet) orderedClean() {
	f.mu.Lock()
	f.pool.mu.Lock()
	f.pool.st.mu.Lock()
	f.pool.st.leased++
	f.pool.st.mu.Unlock()
	f.pool.mu.Unlock()
	f.mu.Unlock()
}

// sequentialClean never overlaps: inner then outer is fine when the
// inner lock is released first.
func (p *pool) sequentialClean() {
	p.st.mu.Lock()
	p.st.leased--
	p.st.mu.Unlock()
	p.mu.Lock()
	p.mu.Unlock()
}

// invertedBad acquires the pool lock while holding the station lock.
func (p *pool) invertedBad() {
	p.st.mu.Lock()
	p.mu.Lock() // want `lock order inversion: acquiring pool\.mu \(rank 20\) while holding station\.mu \(rank 30\)`
	p.mu.Unlock()
	p.st.mu.Unlock()
}

// doubleBad re-acquires the same rank: deadlock-shaped.
func (f *fleet) doubleBad(other *fleet) {
	f.mu.Lock()
	other.mu.Lock() // want `lock order inversion: acquiring fleet\.mu \(rank 10\) while holding fleet\.mu \(rank 10\)`
	other.mu.Unlock()
	f.mu.Unlock()
}

// solveUnderLockBad runs a solve while holding the fleet lock.
func (f *fleet) solveUnderLockBad(b *batch) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return SolveBatch(b) // want `SolveBatch called while holding fleet\.mu`
}

// snapshotThenCallClean is the sanctioned pattern: capture under the
// lock, release, then solve.
func (f *fleet) snapshotThenCallClean(b *batch) error {
	f.mu.Lock()
	p := f.pool
	f.mu.Unlock()
	_ = p
	return SolveBatch(b)
}

// goroutineClean: a spawned goroutine starts with no locks held, so
// its solve is fine even when launched under the fleet lock.
func (f *fleet) goroutineClean(b *batch) {
	f.mu.Lock()
	go func() {
		_ = SolveBatch(b)
	}()
	f.mu.Unlock()
}

// deferHoldBad: defer keeps the lock held across the solve below it.
func (p *pool) deferHoldBad(b *batch) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return SolveBatch(b) // want `SolveBatch called while holding pool\.mu`
}

// unrankedClean: plain mutexes without the annotation are ignored.
type plain struct {
	mu sync.Mutex
}

func (p *plain) anythingGoes(b *batch) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return SolveBatch(b)
}
