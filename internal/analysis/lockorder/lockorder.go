// Package lockorder checks the serving stack's lock discipline against
// annotated mutex ranks.
//
// The fleet control plane and the pool form a lock hierarchy: the
// fleet lock is acquired before any pool lock, the pool lock before
// any station lock, and no solve (a potentially long, blocking
// operation that may itself take pool locks on another goroutine) runs
// while any control-plane lock is held — fleet.Stats deliberately
// snapshots device backends first and calls their Stats after
// releasing the fleet lock for exactly this reason.
//
// Mutex fields declare their rank with an annotation on the field:
//
//	mu sync.Mutex //tridlint:lockrank 20
//
// Lower ranks are outer locks. Within one function the analyzer
// tracks annotated Lock/Unlock pairs in statement order and reports:
//
//   - acquiring a rank ≤ an already-held rank (inversion, or
//     same-rank double-acquire — both deadlock-shaped), and
//   - calling a Solve* function or method while any annotated lock is
//     held (lock-held-across-solve).
//
// The analysis is intraprocedural and flow-approximate: it cannot see
// a lock held by a caller, and a branch that unlocks early is merged
// conservatively. That is the useful half of the invariant — every
// deadlock this repo has had was visible within one function body.
package lockorder

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"

	"gputrid/internal/analysis"
)

// Analyzer is the lockorder analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "annotated mutexes (//tridlint:lockrank N) must be acquired in strictly " +
		"increasing rank order, and no Solve* call may run while one is held",
	Run: run,
}

// rankedField identifies an annotated mutex: the struct type that owns
// it and the field name.
type rankedField struct {
	typeName string // named struct type, package-local name
	field    string
}

func run(pass *analysis.Pass) error {
	ranks := collectRanks(pass)
	if len(ranks) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := &walker{pass: pass, ranks: ranks, held: map[rankedField]int{}}
			w.stmts(fd.Body.List)
		}
	}
	return nil
}

// collectRanks scans struct declarations for annotated mutex fields.
func collectRanks(pass *analysis.Pass) map[rankedField]int {
	ranks := make(map[rankedField]int)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				arg, ok := markerOn(field)
				if !ok {
					continue
				}
				rank, err := strconv.Atoi(arg)
				if err != nil {
					pass.Reportf(field.Pos(), "bad //tridlint:lockrank argument %q: want an integer", arg)
					continue
				}
				for _, name := range field.Names {
					ranks[rankedField{ts.Name.Name, name.Name}] = rank
				}
			}
			return true
		})
	}
	return ranks
}

func markerOn(field *ast.Field) (string, bool) {
	if arg, ok := analysis.MarkerArg(field.Doc, "lockrank"); ok {
		return arg, true
	}
	return analysis.MarkerArg(field.Comment, "lockrank")
}

// walker tracks held annotated locks through one function body.
type walker struct {
	pass  *analysis.Pass
	ranks map[rankedField]int
	held  map[rankedField]int
}

func (w *walker) stmts(list []ast.Stmt) {
	for _, s := range list {
		w.stmt(s)
	}
}

func (w *walker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.ExprStmt:
		w.expr(s.X)
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the lock held to function end: do not
		// process the unlock. Other deferred calls are still scanned for
		// Solve* (they run with whatever is held at return).
		if fld, op, ok := w.lockCall(s.Call); ok {
			_ = fld
			_ = op
			return
		}
		w.expr(s.Call)
	case *ast.GoStmt:
		// A spawned goroutine has its own (empty) lock context; its body
		// is walked separately via the FuncLit case in expr.
		w.expr(s.Call.Fun)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e)
		}
		for _, e := range s.Lhs {
			w.expr(e)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e)
		}
	case *ast.IfStmt:
		w.stmt(s.Init)
		w.expr(s.Cond)
		w.stmts(s.Body.List)
		w.stmt(s.Else)
	case *ast.ForStmt:
		w.stmt(s.Init)
		if s.Cond != nil {
			w.expr(s.Cond)
		}
		w.stmts(s.Body.List)
		w.stmt(s.Post)
	case *ast.RangeStmt:
		w.expr(s.X)
		w.stmts(s.Body.List)
	case *ast.BlockStmt:
		w.stmts(s.List)
	case *ast.SwitchStmt:
		w.stmt(s.Init)
		if s.Tag != nil {
			w.expr(s.Tag)
		}
		w.stmts(s.Body.List)
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init)
		w.stmt(s.Assign)
		w.stmts(s.Body.List)
	case *ast.SelectStmt:
		w.stmts(s.Body.List)
	case *ast.CaseClause:
		for _, e := range s.List {
			w.expr(e)
		}
		w.stmts(s.Body)
	case *ast.CommClause:
		w.stmt(s.Comm)
		w.stmts(s.Body)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	case *ast.SendStmt:
		w.expr(s.Chan)
		w.expr(s.Value)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.expr(e)
					}
				}
			}
		}
	case *ast.IncDecStmt:
		w.expr(s.X)
	}
}

func (w *walker) expr(e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Fresh lock context: the literal runs later (goroutine,
			// callback), not under the current held set.
			inner := &walker{pass: w.pass, ranks: w.ranks, held: map[rankedField]int{}}
			inner.stmts(n.Body.List)
			return false
		case *ast.CallExpr:
			w.call(n)
			for _, a := range n.Args {
				w.expr(a)
			}
			return false
		}
		return true
	})
}

func (w *walker) call(call *ast.CallExpr) {
	if fld, op, ok := w.lockCall(call); ok {
		switch op {
		case "Lock", "RLock":
			rank := w.ranks[fld]
			for held, hrank := range w.held {
				if rank <= hrank {
					w.pass.Reportf(call.Pos(),
						"lock order inversion: acquiring %s.%s (rank %d) while holding %s.%s (rank %d); "+
							"acquire strictly outer-to-inner", fld.typeName, fld.field, rank,
						held.typeName, held.field, hrank)
				}
			}
			w.held[fld] = rank
		case "Unlock", "RUnlock":
			delete(w.held, fld)
		}
		return
	}
	if len(w.held) == 0 {
		return
	}
	if name := calleeName(call); strings.HasPrefix(name, "Solve") {
		for held, hrank := range w.held {
			w.pass.Reportf(call.Pos(),
				"%s called while holding %s.%s (rank %d): solves are long and may take "+
					"other locks — release control-plane locks first (snapshot-then-call, as in fleet.Stats)",
				name, held.typeName, held.field, hrank)
			break
		}
	}
}

// lockCall matches x.<field>.Lock/Unlock/RLock/RUnlock() where field is
// an annotated mutex, returning its identity and the operation.
func (w *walker) lockCall(call *ast.CallExpr) (rankedField, string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return rankedField{}, "", false
	}
	op := sel.Sel.Name
	switch op {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return rankedField{}, "", false
	}
	fieldSel, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return rankedField{}, "", false
	}
	owner := ownerTypeName(w.pass.TypesInfo, fieldSel)
	if owner == "" {
		return rankedField{}, "", false
	}
	fld := rankedField{owner, fieldSel.Sel.Name}
	if _, ok := w.ranks[fld]; !ok {
		return rankedField{}, "", false
	}
	return fld, op, true
}

// ownerTypeName resolves the package-local named type that owns the
// selected field ("" when unresolvable or foreign).
func ownerTypeName(info *types.Info, fieldSel *ast.SelectorExpr) string {
	tv, ok := info.Types[fieldSel.X]
	if !ok {
		return ""
	}
	t := tv.Type
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	return named.Obj().Name()
}

func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}
