package lockorder_test

import (
	"testing"

	"gputrid/internal/analysis/analysistest"
	"gputrid/internal/analysis/lockorder"
)

func TestFixtures(t *testing.T) {
	analysistest.Run(t, lockorder.Analyzer, "serving")
}

// TestRepositoryClean pins the invariant on the real serving stack,
// whose mutexes carry //tridlint:lockrank annotations.
func TestRepositoryClean(t *testing.T) {
	findings, err := analysistest.Findings(lockorder.Analyzer, "../../..",
		"./internal/pool", "./internal/fleet/...")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
