// Package clockinject forbids direct wall-clock reads in the
// clock-injected serving packages.
//
// The fleet control plane and the solver pool make every elapsed-time
// policy decision — LRU eviction, probation expiry, breaker cooldowns,
// autoscale cooldowns — through an injectable clock, so a scenario
// driven by a VirtualClock replays the exact same decision sequence on
// every run (see internal/clock and DESIGN.md §11). One stray
// time.Now breaks that determinism silently: the run still passes on
// a fast machine and flakes everywhere else.
//
// In scoped packages (internal/pool, internal/fleet,
// internal/fleet/scenario, internal/gpusim) any use of time.Now,
// time.Since, time.Until, time.Sleep, time.After, time.AfterFunc,
// time.Tick, time.NewTimer or time.NewTicker is a diagnostic — whether
// called or captured as a function value — unless it appears inside a
// WallClock method or a function annotated //tridlint:wallclock (the
// one place the production clock is allowed to touch the real one).
package clockinject

import (
	"go/ast"

	"gputrid/internal/analysis"
)

// ScopedPackages are the final path segments of the clock-injected
// packages; a package is in scope when its import path ends in one of
// them.
var ScopedPackages = []string{
	"internal/pool",
	"internal/fleet",
	"internal/fleet/scenario",
	"internal/gpusim",
	"internal/batcher",
	// Bare names put analysistest fixture packages (testdata/src/pool,
	// ...) under the same rules as the real packages.
	"pool", "fleet", "scenario", "gpusim", "batcher",
}

// forbidden lists the time package's wall-clock entry points.
var forbidden = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"Sleep": true, "After": true, "AfterFunc": true,
	"Tick": true, "NewTimer": true, "NewTicker": true,
}

// Analyzer is the clockinject analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "clockinject",
	Doc: "forbid direct time.Now/Sleep/After/... in clock-injected packages " +
		"(internal/pool, internal/fleet, internal/fleet/scenario, internal/gpusim); " +
		"read the injected clock instead, so virtual-clock scenarios stay deterministic",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !analysis.PathEndsIn(pass.Pkg.Path(), ScopedPackages...) {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if allowed(fd) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				e, ok := n.(ast.Expr)
				if !ok {
					return true
				}
				sel, ok := e.(*ast.SelectorExpr)
				if !ok || !forbidden[sel.Sel.Name] {
					return true
				}
				if analysis.IsPkgFunc(pass.TypesInfo, sel, "time", sel.Sel.Name) {
					pass.Reportf(sel.Pos(),
						"time.%s in clock-injected package %s: use the injected clock "+
							"(clock.Clock / Config.Clock) so virtual-clock replay stays deterministic",
						sel.Sel.Name, pass.Pkg.Path())
					return false
				}
				return true
			})
		}
	}
	return nil
}

// allowed reports whether the function is a sanctioned wall-clock
// implementation: a method on a type named WallClock, or a function
// annotated //tridlint:wallclock.
func allowed(fd *ast.FuncDecl) bool {
	if analysis.HasMarker(fd.Doc, "wallclock") {
		return true
	}
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return false
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	// Strip generic receiver type parameters, e.g. WallClock[T].
	if idx, ok := t.(*ast.IndexExpr); ok {
		t = idx.X
	}
	id, ok := t.(*ast.Ident)
	return ok && id.Name == "WallClock"
}
