package clockinject_test

import (
	"testing"

	"gputrid/internal/analysis/analysistest"
	"gputrid/internal/analysis/clockinject"
)

func TestFixtures(t *testing.T) {
	analysistest.Run(t, clockinject.Analyzer, "pool", "outofscope")
}

// TestRepositoryClean pins the invariant on the real tree: the
// clock-injected packages contain no direct wall-clock reads.
func TestRepositoryClean(t *testing.T) {
	findings, err := analysistest.Findings(clockinject.Analyzer, "../../..",
		"./internal/pool", "./internal/fleet/...", "./internal/gpusim")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
