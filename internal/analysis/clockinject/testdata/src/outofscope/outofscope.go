// Package outofscope is a clockinject fixture: its import path ends
// in a segment outside the scoped set, so wall-clock reads are fine
// here (data-plane code measures real durations freely).
package outofscope

import "time"

func measure(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}

func nap() { time.Sleep(time.Millisecond) }
