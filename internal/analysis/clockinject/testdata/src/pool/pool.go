// Package pool is a clockinject fixture: its import path ends in
// /pool, so it is in scope for the wall-clock ban.
package pool

import "time"

// Clock is the injected time source.
type Clock interface {
	Now() time.Time
}

// WallClock is the sanctioned production clock: time.Now inside its
// methods is allowed.
type WallClock struct{}

func (WallClock) Now() time.Time { return time.Now() }

//tridlint:wallclock
func sanctionedHelper() time.Time { return time.Now() }

type station struct {
	lastUse time.Time
	clock   Clock
}

func (s *station) stampBad() {
	s.lastUse = time.Now() // want `time\.Now in clock-injected package`
}

func (s *station) stampGood() {
	s.lastUse = s.clock.Now()
}

func waitBad(d time.Duration) {
	time.Sleep(d)   // want `time\.Sleep in clock-injected package`
	<-time.After(d) // want `time\.After in clock-injected package`
}

func idleBad(s *station) time.Duration {
	return time.Since(s.lastUse) // want `time\.Since in clock-injected package`
}

func valueCaptureBad() func() time.Time {
	return time.Now // want `time\.Now in clock-injected package`
}

func tickerBad() *time.Ticker {
	return time.NewTicker(time.Second) // want `time\.NewTicker in clock-injected package`
}

// notTimeNow exercises the package check: a local type with the same
// method names must not be flagged.
type fakeTime struct{}

func (fakeTime) Now() int   { return 0 }
func (fakeTime) Sleep() int { return 0 }

func localNamesClean() int {
	var ft fakeTime
	return ft.Now() + ft.Sleep()
}
