// Package kernels is a hotpathalloc fixture: annotated functions must
// be allocation-free, unannotated ones may do anything.
package kernels

import "fmt"

type workspace struct {
	cp, dp []float64
}

// thomasClean is the shape of a real kernel: pure index arithmetic
// over caller-owned slices, stack scalars, constant panics.
//
//tridlint:hotpath
func thomasClean(a, b, c, d, x, cp, dp []float64, n int) {
	if n <= 0 {
		panic("kernels: empty system")
	}
	cp[0] = c[0] / b[0]
	dp[0] = d[0] / b[0]
	for i := 1; i < n; i++ {
		inv := 1 / (b[i] - cp[i-1]*a[i])
		cp[i] = c[i] * inv
		dp[i] = (d[i] - dp[i-1]*a[i]) * inv
	}
	x[n-1] = dp[n-1]
	for i := n - 2; i >= 0; i-- {
		x[i] = dp[i] - cp[i]*x[i+1]
	}
}

// genericClean proves type-parameter flow is not mistaken for boxing.
//
//tridlint:hotpath
func genericClean[T ~float32 | ~float64](dst, src []T) {
	for i := range dst {
		dst[i] = scale(src[i])
	}
}

func scale[T ~float32 | ~float64](v T) T { return 2 * v }

// stackArrayClean: fixed-size array literals stay on the stack.
//
//tridlint:hotpath
func stackArrayClean(x []float64) float64 {
	w := [4]float64{1, 3, 3, 1}
	var s float64
	for i := range x {
		s += w[i%4] * x[i]
	}
	return s
}

//tridlint:hotpath
func makeBad(n int) []float64 {
	return make([]float64, n) // want `make in hotpath function makeBad`
}

//tridlint:hotpath
func appendBad(dst []float64, v float64) []float64 {
	return append(dst, v) // want `append in hotpath function appendBad`
}

//tridlint:hotpath
func newBad() *workspace {
	return new(workspace) // want `new in hotpath function newBad`
}

//tridlint:hotpath
func literalBad() *workspace {
	return &workspace{} // want `composite literal in hotpath function literalBad`
}

//tridlint:hotpath
func closureBad(x []float64) func() {
	return func() { x[0] = 0 } // want `func literal in hotpath function closureBad`
}

//tridlint:hotpath
func goBad() {
	go helper() // want `go statement in hotpath function goBad`
}

//tridlint:hotpath
func stringBad(name, suffix string) string {
	return name + suffix // want `string concatenation in hotpath function stringBad`
}

//tridlint:hotpath
func bytesBad(s string) []byte {
	return []byte(s) // want `allocating conversion \[\]byte in hotpath function bytesBad`
}

//tridlint:hotpath
func boxBad(v float64) {
	sink(v) // want `interface conversion from float64 in hotpath function boxBad`
}

//tridlint:hotpath
func boxVariadicBad(v float64) {
	_ = fmt.Sprint(v) // want `interface conversion from float64 in hotpath function boxVariadicBad`
}

//tridlint:hotpath
func boxConstClean() {
	sink("constant strings box into static data")
}

// unannotated may allocate freely.
func unannotated(n int) []float64 {
	x := make([]float64, n)
	return append(x, 1)
}

func helper()    {}
func sink(v any) {}
