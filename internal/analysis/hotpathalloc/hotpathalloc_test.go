package hotpathalloc_test

import (
	"testing"

	"gputrid/internal/analysis/analysistest"
	"gputrid/internal/analysis/hotpathalloc"
)

func TestFixtures(t *testing.T) {
	analysistest.Run(t, hotpathalloc.Analyzer, "kernels")
}

// TestRepositoryClean pins the invariant on the real annotated kernels.
func TestRepositoryClean(t *testing.T) {
	findings, err := analysistest.Findings(hotpathalloc.Analyzer, "../../..",
		"./internal/...")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
