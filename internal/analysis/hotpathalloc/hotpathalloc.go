// Package hotpathalloc is the compile-time complement of the runtime
// AllocsPerRun tier-1 tests: functions annotated //tridlint:hotpath
// (the *Into solve pipeline, the pThomas and tiled-PCR kernel thread
// bodies, the blocked transpose) must not contain constructs that
// heap-allocate.
//
// The zero-allocs-per-solve discipline (PR 2, after the interleaved
// batch layout of Gloster et al., arXiv:1909.04539) is what makes the
// warmed-solver pool cheap at high request rates; AllocsPerRun only
// catches a regression on the configurations the benchmarks happen to
// run, while this gate catches the construct itself on every build.
//
// Flagged inside an annotated function:
//
//   - make, new, append
//   - composite literals (except arrays, which stay on the stack when
//     they do not escape) and &T{...}
//   - func literals (closure environments allocate)
//   - go statements (goroutine stacks are not hot-path material)
//   - string concatenation and string<->[]byte/[]rune conversions
//   - non-constant concrete values converted to interface types at
//     call arguments, assignments, or returns (boxing allocates)
//
// The gate is intentionally stricter than the optimizer: a construct
// the escape analyzer happens to keep on the stack today is still a
// diagnostic, because the next refactor can tip it over silently.
package hotpathalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"gputrid/internal/analysis"
)

// Analyzer is the hotpathalloc analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "hotpathalloc",
	Doc: "functions annotated //tridlint:hotpath may not allocate: no make/new/append, " +
		"composite literals, closures, string building, or interface boxing " +
		"(compile-time complement of the AllocsPerRun tests)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !analysis.HasMarker(fd.Doc, "hotpath") {
				continue
			}
			check(pass, fd)
		}
	}
	return nil
}

func check(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	sig, _ := info.Defs[fd.Name].Type().(*types.Signature)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "go statement in hotpath function %s", fd.Name.Name)
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "func literal in hotpath function %s: closures allocate", fd.Name.Name)
			return false // the literal's own body is not this function's hot path
		case *ast.CompositeLit:
			if t, ok := info.Types[n]; ok {
				if _, isArray := t.Type.Underlying().(*types.Array); isArray {
					return true
				}
			}
			pass.Reportf(n.Pos(), "composite literal in hotpath function %s: allocate in the workspace/arena instead", fd.Name.Name)
		case *ast.BinaryExpr:
			if n.Op.String() == "+" {
				if t, ok := info.Types[n]; ok && isString(t.Type) && t.Value == nil {
					pass.Reportf(n.Pos(), "string concatenation in hotpath function %s", fd.Name.Name)
				}
			}
		case *ast.CallExpr:
			checkCall(pass, fd, n)
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if len(n.Lhs) != len(n.Rhs) {
					break
				}
				if lt, ok := info.Types[n.Lhs[i]]; ok {
					reportBoxing(pass, fd, rhs, lt.Type)
				}
			}
		case *ast.ReturnStmt:
			if sig != nil && sig.Results() != nil && len(n.Results) == sig.Results().Len() {
				for i, r := range n.Results {
					reportBoxing(pass, fd, r, sig.Results().At(i).Type())
				}
			}
		}
		return true
	})
}

// checkCall flags allocating builtins, allocating conversions, and
// interface boxing at call arguments.
func checkCall(pass *analysis.Pass, fd *ast.FuncDecl, call *ast.CallExpr) {
	info := pass.TypesInfo

	// Builtins: make, new, append.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new", "append":
				pass.Reportf(call.Pos(), "%s in hotpath function %s: pre-allocate in the workspace/arena", b.Name(), fd.Name.Name)
				return
			}
		}
	}

	// Conversions: T(x) where the callee is a type.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst := tv.Type
		if src, ok := info.Types[call.Args[0]]; ok && src.Value == nil {
			if allocatingConversion(src.Type, dst) {
				pass.Reportf(call.Pos(), "allocating conversion %s in hotpath function %s", types.TypeString(dst, nil), fd.Name.Name)
			}
			reportBoxingType(pass, fd, call.Args[0].Pos(), src.Type, dst)
		}
		return
	}

	// Interface boxing at ordinary call arguments.
	sig := callSignature(info, call)
	if sig == nil {
		return
	}
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case i < sig.Params().Len()-1 || (!sig.Variadic() && i < sig.Params().Len()):
			param = sig.Params().At(i).Type()
		case sig.Variadic():
			last := sig.Params().At(sig.Params().Len() - 1).Type()
			if s, ok := last.(*types.Slice); ok {
				param = s.Elem()
			}
		}
		if param != nil {
			reportBoxing(pass, fd, arg, param)
		}
	}
}

// reportBoxing flags a non-constant concrete expression flowing into an
// interface-typed slot.
func reportBoxing(pass *analysis.Pass, fd *ast.FuncDecl, e ast.Expr, dst types.Type) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value != nil { // constants box into static data
		return
	}
	reportBoxingType(pass, fd, e.Pos(), tv.Type, dst)
}

func reportBoxingType(pass *analysis.Pass, fd *ast.FuncDecl, pos token.Pos, src, dst types.Type) {
	// A type parameter's underlying type is its constraint interface;
	// passing T to a T-typed slot is not boxing.
	if _, ok := dst.(*types.TypeParam); ok {
		return
	}
	if !types.IsInterface(dst) || types.IsInterface(src) {
		return
	}
	if src == types.Typ[types.UntypedNil] {
		return
	}
	pass.Reportf(pos, "interface conversion from %s in hotpath function %s: boxing allocates",
		types.TypeString(src, nil), fd.Name.Name)
}

// allocatingConversion reports string<->[]byte/[]rune conversions.
func allocatingConversion(src, dst types.Type) bool {
	s, d := src.Underlying(), dst.Underlying()
	return (isString(s) && isByteOrRuneSlice(d)) || (isByteOrRuneSlice(s) && isString(d))
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune)
}

// callSignature returns the callee's signature, nil for type
// conversions and unresolvable callees.
func callSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	if tv, ok := info.Types[call.Fun]; ok {
		if sig, ok := tv.Type.Underlying().(*types.Signature); ok {
			return sig
		}
	}
	return nil
}
