package ctxsolve_test

import (
	"testing"

	"gputrid/internal/analysis/analysistest"
	"gputrid/internal/analysis/ctxsolve"
)

func TestFixtures(t *testing.T) {
	analysistest.Run(t, ctxsolve.Analyzer, "fleet", "examplecode")
}

// TestRepositoryClean pins the invariant on the real serving layer.
func TestRepositoryClean(t *testing.T) {
	findings, err := analysistest.Findings(ctxsolve.Analyzer, "../../..",
		"./internal/pool", "./internal/fleet/...", "./cmd/tridserve")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
