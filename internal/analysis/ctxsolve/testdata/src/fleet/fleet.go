// Package fleet is a ctxsolve fixture for serving-layer rules: both
// the context.TODO ban and the ctx-less solve ban apply here.
package fleet

import "context"

type batch struct{ m, n int }

func SolveBatch(b *batch) error                                            { return nil }
func SolveBatchCtx(ctx context.Context, b *batch) error                    { return nil }
func SolveBatchInto(dst []float64, b *batch) error                         { return nil }
func SolveBatchIntoCtx(ctx context.Context, dst []float64, b *batch) error { return nil }

type solver struct{}

func (solver) SolveGuarded(b *batch) error                         { return nil }
func (solver) SolveGuardedCtx(ctx context.Context, b *batch) error { return nil }

func serveBad(b *batch) {
	_ = SolveBatch(b)          // want `ctx-less SolveBatch in serving-layer package`
	_ = SolveBatchInto(nil, b) // want `ctx-less SolveBatchInto in serving-layer package`
	var s solver
	_ = s.SolveGuarded(b) // want `ctx-less SolveGuarded in serving-layer package`
}

func serveTODO(b *batch) {
	_ = SolveBatchCtx(context.TODO(), b)          // want `context\.TODO\(\) passed to SolveBatchCtx`
	_ = SolveBatchIntoCtx(context.TODO(), nil, b) // want `context\.TODO\(\) passed to SolveBatchIntoCtx`
}

func serveGood(ctx context.Context, b *batch) {
	_ = SolveBatchCtx(ctx, b)
	_ = SolveBatchIntoCtx(context.Background(), nil, b)
	var s solver
	_ = s.SolveGuardedCtx(ctx, b)
}
