// Package examplecode is a ctxsolve fixture outside the serving
// layer: ctx-less solves are fine (examples, CLIs, references), but
// context.TODO() into a *Ctx variant is still banned.
package examplecode

import "context"

type batch struct{}

func SolveBatch(b *batch) error                         { return nil }
func SolveBatchCtx(ctx context.Context, b *batch) error { return nil }

func demo(b *batch) {
	_ = SolveBatch(b) // ctx-less is allowed outside the serving layer
	_ = SolveBatchCtx(context.Background(), b)
	_ = SolveBatchCtx(context.TODO(), b) // want `context\.TODO\(\) passed to SolveBatchCtx`
}
