// Package ctxsolve enforces context threading through the solve paths.
//
// PR 4 threaded cooperative cancellation through every solve pipeline;
// the serving layer depends on it: graceful drain force-cancels
// in-flight solves through their lease contexts, re-route needs the
// device error promptly, and deadline admission control is meaningless
// if the solve itself cannot be cut short. Two rules keep that wiring
// intact:
//
//  1. Everywhere: a call to a *Ctx solve variant (SolveBatchCtx,
//     SolveBatchIntoCtx, SolveGuardedCtx, SolveCtx, SolveIntoCtx) must
//     not pass context.TODO() — TODO marks unfinished plumbing and
//     defeats cancellation exactly where it matters.
//
//  2. In serving-layer packages (internal/pool, internal/fleet,
//     internal/fleet/scenario, cmd/tridserve) the ctx-less forms
//     (SolveBatch, SolveBatchInto, SolveGuarded) are banned outright:
//     serving code always has a request or lifecycle context to
//     thread, and a ctx-less solve is undrainable.
package ctxsolve

import (
	"go/ast"
	"strings"

	"gputrid/internal/analysis"
)

// ServingPackages are the final path segments of the serving-layer
// packages where ctx-less solve calls are banned.
var ServingPackages = []string{
	"internal/pool",
	"internal/fleet",
	"internal/fleet/scenario",
	"cmd/tridserve",
	// Bare names scope the analysistest fixtures.
	"pool", "fleet", "scenario", "tridserve",
}

// ctxless are the solve entry points without a context parameter.
var ctxless = map[string]bool{
	"SolveBatch":       true,
	"SolveBatchInto":   true,
	"SolveGuarded":     true,
	"SolveInterleaved": true,
}

// Analyzer is the ctxsolve analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "ctxsolve",
	Doc: "solve calls must thread real contexts: no context.TODO() into *Ctx solve " +
		"variants anywhere, and no ctx-less SolveBatch/SolveBatchInto/SolveGuarded " +
		"in serving-layer packages (pool, fleet, scenario, tridserve)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	serving := analysis.PathEndsIn(pass.Pkg.Path(), ServingPackages...)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name := calleeName(call)
			switch {
			case strings.HasPrefix(name, "Solve") && strings.HasSuffix(name, "Ctx"):
				if len(call.Args) > 0 && isContextTODO(pass, call.Args[0]) {
					pass.Reportf(call.Args[0].Pos(),
						"context.TODO() passed to %s: thread the caller's context "+
							"(or context.Background() at a true root) so cancellation and drain reach the solve",
						name)
				}
			case serving && ctxless[name]:
				pass.Reportf(call.Pos(),
					"ctx-less %s in serving-layer package %s: use %sCtx so drain, "+
						"deadlines and re-route can cancel the solve", name, pass.Pkg.Path(), name)
			}
			return true
		})
	}
	return nil
}

// calleeName returns the called function or method name ("" when the
// callee is not an identifier or selector).
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	case *ast.IndexExpr: // explicit generic instantiation f[T](...)
		if id, ok := fun.X.(*ast.Ident); ok {
			return id.Name
		}
		if sel, ok := fun.X.(*ast.SelectorExpr); ok {
			return sel.Sel.Name
		}
	}
	return ""
}

// isContextTODO reports whether the expression is a direct
// context.TODO() call.
func isContextTODO(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	return analysis.IsPkgFunc(pass.TypesInfo, call.Fun, "context", "TODO")
}
