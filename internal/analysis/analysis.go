// Package analysis is a small, dependency-free static-analysis
// framework encoding this repository's project invariants: clock
// injection in the serving control plane, context threading through
// the solve paths, allocation-free hot-path kernels, lock-acquisition
// ordering, and errors.Is/As discipline for typed errors.
//
// It deliberately mirrors the shape of golang.org/x/tools/go/analysis
// (Analyzer, Pass, Diagnostic) so the analyzers could be ported to the
// upstream multichecker verbatim — but it is built entirely on the
// standard library (go/ast, go/types, and export data produced by
// `go list -export`), because this module pins zero third-party
// dependencies. See DESIGN.md §11.
//
// The five analyzers live in subpackages (clockinject, ctxsolve,
// hotpathalloc, lockorder, errcompare); cmd/tridlint is the driver
// that runs them over package patterns and exits non-zero on any
// diagnostic, wired into CI as a tier-1 gate.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics (lower-case, no
	// spaces, e.g. "clockinject").
	Name string
	// Doc is the one-paragraph description printed by `tridlint -help`.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass) error
}

// Pass carries one package's syntax and type information to an
// analyzer, plus the Report sink for its findings.
type Pass struct {
	Analyzer *Analyzer
	// Fset maps token positions of Files to file/line/column.
	Fset *token.FileSet
	// Files is the package's parsed syntax (non-test files only),
	// with comments.
	Files []*ast.File
	// Pkg is the type-checked package; TypesInfo its expression types,
	// uses, definitions and selections.
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report receives one diagnostic.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Finding is a resolved diagnostic: the analyzer that produced it and
// its file position, ready for printing and for test harnesses.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// Run applies the analyzers to one loaded package and returns the
// findings sorted by position.
func Run(pkg *Package, analyzers []*Analyzer) ([]Finding, error) {
	var out []Finding
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Report: func(d Diagnostic) {
				out = append(out, Finding{
					Analyzer: a.Name,
					Pos:      pkg.Fset.Position(d.Pos),
					Message:  d.Message,
				})
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", pkg.Path, a.Name, err)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}

// PathEndsIn reports whether the package import path's final segments
// equal any of the given suffixes (each "a/b" or bare "b"). Analyzers
// use it to scope rules to serving-layer packages by name, which keeps
// their analysistest fixtures self-contained: a fixture package under
// testdata/src/pool is in scope for the same rules as internal/pool.
func PathEndsIn(path string, suffixes ...string) bool {
	for _, s := range suffixes {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

// HasMarker reports whether any line of the comment group carries the
// given //tridlint: marker (e.g. "hotpath" matches "//tridlint:hotpath").
func HasMarker(doc *ast.CommentGroup, marker string) bool {
	if doc == nil {
		return false
	}
	want := "//tridlint:" + marker
	for _, c := range doc.List {
		text := strings.TrimSpace(c.Text)
		if text == want || strings.HasPrefix(text, want+" ") {
			return true
		}
	}
	return false
}

// MarkerArg returns the argument of a //tridlint:<marker> <arg> line in
// the comment group ("" and false when absent).
func MarkerArg(doc *ast.CommentGroup, marker string) (string, bool) {
	if doc == nil {
		return "", false
	}
	prefix := "//tridlint:" + marker
	for _, c := range doc.List {
		text := strings.TrimSpace(c.Text)
		if rest, ok := strings.CutPrefix(text, prefix); ok {
			return strings.TrimSpace(rest), true
		}
	}
	return "", false
}

// IsPkgFunc reports whether the expression uses the named function of
// the named package (e.g. pkg "time", name "Now" matches time.Now both
// called and referenced as a value).
func IsPkgFunc(info *types.Info, e ast.Expr, pkgPath, name string) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	obj := info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == pkgPath
}
