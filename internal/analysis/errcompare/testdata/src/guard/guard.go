// Package guard is an errcompare fixture: typed errors matched the
// wrong way (==, type switch, type assert) versus the sanctioned
// errors.Is/As forms.
package guard

import (
	"errors"
	"fmt"
)

type SolveError struct {
	Stage string
}

func (e *SolveError) Error() string { return "solve failed at " + e.Stage }

type OverloadError struct {
	Queued int
}

func (e *OverloadError) Error() string { return "overloaded" }

type LaunchError struct {
	Attempt int
}

func (e *LaunchError) Error() string { return "launch failed" }

var ErrShutdown = errors.New("guard: shutdown")

// compareBad tests identity on a typed error pointer: breaks the
// moment a wrapper appears.
func compareBad(err error, known *SolveError) bool {
	return err == known // want `SolveError compared with ==`
}

func compareNeqBad(err error, known *OverloadError) bool {
	return err != known // want `OverloadError compared with !=`
}

// assertBad dispatches on the concrete type directly.
func assertBad(err error) int {
	if le, ok := err.(*LaunchError); ok { // want `type assertion on LaunchError`
		return le.Attempt
	}
	return 0
}

// switchBad does the same via a type switch.
func switchBad(err error) string {
	switch err.(type) {
	case *SolveError: // want `type switch case on SolveError`
		return "solve"
	case *OverloadError: // want `type switch case on OverloadError`
		return "overload"
	default:
		return "other"
	}
}

// nilClean: nil comparisons are the normal presence test.
func nilClean(e *SolveError) bool {
	return e != nil && e.Stage != ""
}

// isAsClean is the sanctioned matching style.
func isAsClean(err error) (string, bool) {
	if errors.Is(err, ErrShutdown) {
		return "shutdown", true
	}
	var se *SolveError
	if errors.As(err, &se) {
		return se.Stage, true
	}
	var oe *OverloadError
	if errors.As(err, &oe) {
		return fmt.Sprintf("queued=%d", oe.Queued), true
	}
	return "", false
}

// Is implements the errors.Is protocol: identity comparison inside it
// is the point, not a bug.
func (e *OverloadError) Is(target error) bool {
	return target == ErrShutdown
}

// plainClean: comparisons of other error types are out of scope.
func plainClean(err error) bool {
	return err == ErrShutdown
}
