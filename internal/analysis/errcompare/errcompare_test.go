package errcompare_test

import (
	"testing"

	"gputrid/internal/analysis/analysistest"
	"gputrid/internal/analysis/errcompare"
)

func TestFixtures(t *testing.T) {
	analysistest.Run(t, errcompare.Analyzer, "guard")
}

// TestRepositoryClean pins the invariant on the whole module: typed
// errors are only ever matched through errors.Is/As.
func TestRepositoryClean(t *testing.T) {
	findings, err := analysistest.Findings(errcompare.Analyzer, "../../..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
