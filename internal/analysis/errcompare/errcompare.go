// Package errcompare enforces errors.Is/As matching for this repo's
// typed errors.
//
// SolveError (internal/guard), OverloadError (internal/pool) and
// LaunchError (internal/gpusim) travel through several wrapping layers
// ("gputrid: ..." fmt.Errorf %w chains, retry wrappers, pool
// admission) before reaching a caller. Comparing them with == or
// dispatching on their concrete type with a type switch or type
// assertion silently stops matching the moment anyone adds a wrapper —
// exactly the bug class errors.Is/As exists to kill. The analyzer
// flags:
//
//   - == / != where either operand is one of the typed errors (nil
//     comparisons are fine — that is how presence is tested);
//   - type assertions err.(*SolveError) and type-switch cases naming
//     the typed errors when the operand is an error.
//
// Methods named Is, As or Unwrap are exempt: they are the sanctioned
// place where identity comparison implements the errors.Is protocol.
package errcompare

import (
	"go/ast"
	"go/token"
	"go/types"

	"gputrid/internal/analysis"
)

// TypedErrors are the names of the error types that must be matched
// with errors.Is/As.
var TypedErrors = map[string]bool{
	"SolveError":    true,
	"OverloadError": true,
	"LaunchError":   true,
}

// Analyzer is the errcompare analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "errcompare",
	Doc: "typed errors (SolveError, OverloadError, LaunchError) must be matched with " +
		"errors.Is/As — == and type switches break as soon as a wrapper is added",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if exempt(fd) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.BinaryExpr:
					checkCompare(pass, n)
				case *ast.TypeAssertExpr:
					// n.Type is nil inside a type switch; those are
					// handled via the CaseClause below.
					if n.Type != nil {
						checkAssert(pass, n, n.Type)
					}
				case *ast.TypeSwitchStmt:
					checkTypeSwitch(pass, n)
				}
				return true
			})
		}
	}
	return nil
}

// exempt reports whether the function implements the errors.Is
// protocol, where identity comparison is the point.
func exempt(fd *ast.FuncDecl) bool {
	switch fd.Name.Name {
	case "Is", "As", "Unwrap":
		return fd.Recv != nil
	}
	return false
}

func checkCompare(pass *analysis.Pass, b *ast.BinaryExpr) {
	if b.Op != token.EQL && b.Op != token.NEQ {
		return
	}
	if isNil(pass, b.X) || isNil(pass, b.Y) {
		return
	}
	for _, side := range []ast.Expr{b.X, b.Y} {
		if name, ok := typedErrorName(pass, side); ok {
			pass.Reportf(b.Pos(),
				"%s compared with %s: use errors.Is (sentinels) or errors.As (*%s) so "+
					"wrapped errors keep matching", name, b.Op, name)
			return
		}
	}
}

func checkAssert(pass *analysis.Pass, at ast.Node, t ast.Expr) {
	if name, ok := typedErrorTypeExpr(pass, t); ok {
		pass.Reportf(at.Pos(),
			"type assertion on %s: use errors.As so wrapped errors keep matching", name)
	}
}

func checkTypeSwitch(pass *analysis.Pass, ts *ast.TypeSwitchStmt) {
	for _, s := range ts.Body.List {
		cc, ok := s.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, t := range cc.List {
			if name, ok := typedErrorTypeExpr(pass, t); ok {
				pass.Reportf(t.Pos(),
					"type switch case on %s: use errors.As so wrapped errors keep matching", name)
			}
		}
	}
}

// typedErrorName reports whether the expression's static type is (a
// pointer to) one of the typed errors.
func typedErrorName(pass *analysis.Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok {
		return "", false
	}
	return namedTypedError(tv.Type)
}

// typedErrorTypeExpr is typedErrorName for type expressions (assert /
// switch case types).
func typedErrorTypeExpr(pass *analysis.Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || !tv.IsType() {
		return "", false
	}
	return namedTypedError(tv.Type)
}

func namedTypedError(t types.Type) (string, bool) {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	name := named.Obj().Name()
	return name, TypedErrors[name]
}

func isNil(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Type == types.Typ[types.UntypedNil]
}
