// Package analysistest runs an analyzer over fixture packages under
// the calling test's testdata/src directory and checks its diagnostics
// against // want comments, in the style of
// golang.org/x/tools/go/analysis/analysistest.
//
// A fixture line expecting a diagnostic carries a trailing comment
//
//	time.Now() // want `clockinject`
//
// where the backquoted (or double-quoted) text is a regular expression
// that must match the message of a diagnostic reported on that line.
// Multiple expectations may follow one // want. Lines without a want
// comment must produce no diagnostics.
package analysistest

import (
	"fmt"
	"go/token"
	"regexp"
	"strings"
	"testing"

	"gputrid/internal/analysis"
)

// wantRe matches one backquoted or double-quoted expectation.
var wantRe = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// Run loads each fixture package dir (relative to testdata/src in the
// test's working directory), applies the analyzer, and reports any
// mismatch between its diagnostics and the // want expectations.
func Run(t *testing.T, a *analysis.Analyzer, fixtures ...string) {
	t.Helper()
	patterns := make([]string, len(fixtures))
	for i, f := range fixtures {
		patterns[i] = "./testdata/src/" + f
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	for _, pkg := range pkgs {
		findings, err := analysis.Run(pkg, []*analysis.Analyzer{a})
		if err != nil {
			t.Fatalf("%s: %v", pkg.Path, err)
		}
		checkPackage(t, pkg, findings)
	}
}

// checkPackage matches findings against the package's want comments.
func checkPackage(t *testing.T, pkg *analysis.Package, findings []analysis.Finding) {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, m := range wantRe.FindAllStringSubmatch(rest, -1) {
					pat := m[1]
					if pat == "" {
						pat = m[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}

	for _, fd := range findings {
		if w := match(wants, fd.Pos, fd.Message); w != nil {
			w.matched = true
		} else {
			t.Errorf("unexpected diagnostic: %s", fd)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

func match(wants []*expectation, pos token.Position, msg string) *expectation {
	for _, w := range wants {
		if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(msg) {
			return w
		}
	}
	return nil
}

// Findings is a test helper that loads real repository packages and
// returns the analyzer's findings, for tests asserting a clean tree.
func Findings(a *analysis.Analyzer, dir string, patterns ...string) ([]analysis.Finding, error) {
	pkgs, err := analysis.Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	var all []analysis.Finding
	for _, pkg := range pkgs {
		fs, err := analysis.Run(pkg, []*analysis.Analyzer{a})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", pkg.Path, err)
		}
		all = append(all, fs...)
	}
	return all, nil
}
