package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Path is the import path.
	Path string
	// Dir is the package's source directory.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load resolves the package patterns with the go command (run in dir)
// and type-checks every matched package from source. Dependencies —
// including the standard library — are imported from the compiler
// export data that `go list -export` materializes in the build cache,
// so loading works offline and needs nothing beyond the Go toolchain.
//
// Patterns are anything `go list` accepts: ./..., explicit directories
// (including testdata directories, which wildcards skip — the
// analysistest harness relies on that to load fixture packages).
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-e", "-deps", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	exports := make(map[string]string)
	var targets []*listedPackage
	dec := json.NewDecoder(&out)
	for {
		var p listedPackage
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			q := p
			targets = append(targets, &q)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(f)
	})

	var pkgs []*Package
	for _, p := range targets {
		var files []*ast.File
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("analysis: %w", err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(p.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("analysis: type-checking %s: %w", p.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			Path: p.ImportPath, Dir: p.Dir,
			Fset: fset, Files: files, Types: tpkg, Info: info,
		})
	}
	return pkgs, nil
}
