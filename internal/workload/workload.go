// Package workload generates the tridiagonal test and benchmark inputs
// used throughout the module: random diagonally dominant systems (the
// paper's benchmark inputs), constant-coefficient Toeplitz systems,
// PDE-discretization stencils (heat, Poisson), cubic-spline systems, and
// deliberately ill-conditioned systems for failure-injection tests.
// All generators are deterministic given a seed.
package workload

import (
	"gputrid/internal/matrix"
	"gputrid/internal/num"
)

// Kind selects a generator family.
type Kind int

const (
	// DiagDominant is a random system with |b| > |a| + |c| on every
	// row — unconditionally safe for all non-pivoting solvers. This is
	// the input family used for every paper experiment.
	DiagDominant Kind = iota
	// Toeplitz is the constant-coefficient system (-1, 2+delta, -1),
	// the 1-D Poisson stencil with a stabilizing shift.
	Toeplitz
	// Heat is the implicit (backward-Euler) 1-D heat-equation matrix
	// (I + lambda*L) with lambda = 1.
	Heat
	// Spline is the natural-cubic-spline second-derivative system for
	// unit-spaced knots.
	Spline
	// NearSingular has rows where dominance margin shrinks towards
	// zero; used by robustness tests only.
	NearSingular
)

// String names the generator kind.
func (k Kind) String() string {
	switch k {
	case DiagDominant:
		return "diag-dominant"
	case Toeplitz:
		return "toeplitz"
	case Heat:
		return "heat"
	case Spline:
		return "spline"
	case NearSingular:
		return "near-singular"
	default:
		return "unknown"
	}
}

// System generates one n-row system of the given kind.
func System[T num.Real](kind Kind, n int, seed uint64) *matrix.System[T] {
	s := matrix.NewSystem[T](n)
	fill(kind, s.Lower, s.Diag, s.Upper, s.RHS, seed)
	return s
}

// Batch generates M independent n-row systems in the contiguous layout.
// Each system gets a distinct derived seed so systems differ.
func Batch[T num.Real](kind Kind, m, n int, seed uint64) *matrix.Batch[T] {
	b := matrix.NewBatch[T](m, n)
	for i := 0; i < m; i++ {
		lo, hi := i*n, (i+1)*n
		fill(kind, b.Lower[lo:hi], b.Diag[lo:hi], b.Upper[lo:hi], b.RHS[lo:hi],
			seed+uint64(i)*0x9E3779B97F4A7C15+1)
	}
	return b
}

// Interleaved generates M independent n-row systems directly in the
// interleaved layout (identical content to Batch(...).ToInterleaved()).
func Interleaved[T num.Real](kind Kind, m, n int, seed uint64) *matrix.Interleaved[T] {
	return Batch[T](kind, m, n, seed).ToInterleaved()
}

func fill[T num.Real](kind Kind, a, b, c, d []T, seed uint64) {
	n := len(b)
	r := num.NewRNG(seed)
	switch kind {
	case DiagDominant:
		for i := 0; i < n; i++ {
			ai := T(r.Range(-1, 1))
			ci := T(r.Range(-1, 1))
			if i == 0 {
				ai = 0
			}
			if i == n-1 {
				ci = 0
			}
			// Margin in [0.5, 1.5] keeps the condition number modest.
			bi := num.Abs(ai) + num.Abs(ci) + T(r.Range(0.5, 1.5))
			if r.Float64() < 0.5 {
				bi = -bi
			}
			a[i], b[i], c[i] = ai, bi, ci
			d[i] = T(r.Range(-10, 10))
		}
	case Toeplitz:
		const delta = 0.05
		for i := 0; i < n; i++ {
			a[i], b[i], c[i] = -1, 2+delta, -1
			if i == 0 {
				a[i] = 0
			}
			if i == n-1 {
				c[i] = 0
			}
			d[i] = T(r.Range(-1, 1))
		}
	case Heat:
		const lambda = 1.0
		for i := 0; i < n; i++ {
			a[i], b[i], c[i] = -lambda, 1+2*lambda, -lambda
			if i == 0 {
				a[i] = 0
			}
			if i == n-1 {
				c[i] = 0
			}
			d[i] = T(r.Range(0, 1))
		}
	case Spline:
		for i := 0; i < n; i++ {
			a[i], b[i], c[i] = 1, 4, 1
			if i == 0 {
				a[i], b[i] = 0, 2
			}
			if i == n-1 {
				c[i], b[i] = 0, 2
			}
			d[i] = T(r.Range(-3, 3))
		}
	case NearSingular:
		for i := 0; i < n; i++ {
			ai := T(r.Range(-1, 1))
			ci := T(r.Range(-1, 1))
			if i == 0 {
				ai = 0
			}
			if i == n-1 {
				ci = 0
			}
			// Dominance margin decays geometrically along the rows.
			margin := T(2.0)
			for j := 0; j < i%24; j++ {
				margin /= 2
			}
			a[i], b[i], c[i] = ai, num.Abs(ai)+num.Abs(ci)+margin, ci
			d[i] = T(r.Range(-10, 10))
		}
	default:
		panic("workload: unknown kind")
	}
}
