package workload

import (
	"testing"
	"testing/quick"

	"gputrid/internal/matrix"
)

func TestKindString(t *testing.T) {
	kinds := []Kind{DiagDominant, Toeplitz, Heat, Spline, NearSingular, Kind(99)}
	want := []string{"diag-dominant", "toeplitz", "heat", "spline", "near-singular", "unknown"}
	for i, k := range kinds {
		if k.String() != want[i] {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), k.String(), want[i])
		}
	}
}

func TestSystemDeterminism(t *testing.T) {
	a := System[float64](DiagDominant, 64, 7)
	b := System[float64](DiagDominant, 64, 7)
	if matrix.MaxAbsDiff(a.Diag, b.Diag) != 0 || matrix.MaxAbsDiff(a.RHS, b.RHS) != 0 {
		t.Error("same seed produced different systems")
	}
	c := System[float64](DiagDominant, 64, 8)
	if matrix.MaxAbsDiff(a.Diag, c.Diag) == 0 {
		t.Error("different seeds produced identical systems")
	}
}

func TestDominantKindsAreDominant(t *testing.T) {
	for _, kind := range []Kind{DiagDominant, Toeplitz, Heat, Spline} {
		s := System[float64](kind, 257, 11)
		if !s.DiagonallyDominant(0) {
			t.Errorf("%v system not diagonally dominant", kind)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("%v system invalid: %v", kind, err)
		}
	}
}

func TestBoundaryCoefficientsZero(t *testing.T) {
	for _, kind := range []Kind{DiagDominant, Toeplitz, Heat, Spline, NearSingular} {
		s := System[float64](kind, 33, 5)
		if s.Lower[0] != 0 {
			t.Errorf("%v: a[0] = %g, want 0", kind, s.Lower[0])
		}
		if s.Upper[32] != 0 {
			t.Errorf("%v: c[n-1] = %g, want 0", kind, s.Upper[32])
		}
	}
}

func TestBatchSystemsDiffer(t *testing.T) {
	b := Batch[float64](DiagDominant, 4, 32, 3)
	s0, s1 := b.System(0), b.System(1)
	if matrix.MaxAbsDiff(s0.Diag, s1.Diag) == 0 {
		t.Error("batch systems 0 and 1 identical; derived seeds broken")
	}
}

func TestBatchMatchesSystemSeeds(t *testing.T) {
	// Batch must be reproducible as a whole.
	a := Batch[float64](Heat, 3, 16, 77)
	b := Batch[float64](Heat, 3, 16, 77)
	if matrix.MaxAbsDiff(a.Diag, b.Diag) != 0 || matrix.MaxAbsDiff(a.RHS, b.RHS) != 0 {
		t.Error("batch not deterministic")
	}
}

func TestInterleavedMatchesBatch(t *testing.T) {
	b := Batch[float64](Spline, 5, 12, 99)
	v := Interleaved[float64](Spline, 5, 12, 99)
	want := b.ToInterleaved()
	if matrix.MaxAbsDiff(v.Diag, want.Diag) != 0 || matrix.MaxAbsDiff(v.RHS, want.RHS) != 0 {
		t.Error("Interleaved() differs from Batch().ToInterleaved()")
	}
}

func TestFloat32Generation(t *testing.T) {
	s := System[float32](DiagDominant, 128, 21)
	if !s.DiagonallyDominant(0) {
		t.Error("float32 system not dominant")
	}
	if err := s.Validate(); err != nil {
		t.Error(err)
	}
}

func TestNearSingularStillSolvable(t *testing.T) {
	s := System[float64](NearSingular, 48, 13)
	x, err := matrix.SolveDense(s)
	if err != nil {
		t.Fatalf("near-singular system unsolvable by pivoted reference: %v", err)
	}
	if r := matrix.Residual(s, x); r > 1e-10 {
		t.Errorf("reference residual %g on near-singular system", r)
	}
}

func TestDominanceProperty(t *testing.T) {
	f := func(seed uint32, nRaw uint8, kindRaw uint8) bool {
		n := int(nRaw)%100 + 2
		kind := Kind(int(kindRaw) % 4) // the four dominant kinds
		s := System[float64](kind, n, uint64(seed))
		return s.DiagonallyDominant(0) && s.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestUnknownKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown kind did not panic")
		}
	}()
	System[float64](Kind(42), 8, 1)
}
