package pool

import (
	"errors"
	"fmt"
	"time"
)

// Typed admission errors of the serving pool, matchable with errors.Is
// through the "gputrid:"-prefixed wrappers the public Pool returns.
var (
	// ErrOverloaded matches every admission rejection: the shape's wait
	// queue is full, or the request's deadline cannot be met given the
	// observed service time. The concrete error is an *OverloadError
	// carrying a queue-depth snapshot; retrieve it with errors.As.
	ErrOverloaded = errors.New("pool: overloaded")
	// ErrClosed reports a Solve against a pool whose Close has begun.
	ErrClosed = errors.New("pool: closed")
)

// OverloadReason says why admission control rejected a request.
type OverloadReason int

const (
	// QueueFull: the shape's bounded wait queue was at capacity.
	QueueFull OverloadReason = iota
	// DeadlineInfeasible: the request carried a deadline that the
	// estimated queue wait plus one service time already exceeds, so it
	// was rejected eagerly instead of timing out while queued.
	DeadlineInfeasible
)

// String names the rejection reason.
func (r OverloadReason) String() string {
	switch r {
	case QueueFull:
		return "queue full"
	case DeadlineInfeasible:
		return "deadline infeasible"
	default:
		return fmt.Sprintf("overload(%d)", int(r))
	}
}

// OverloadError is the typed fail-fast rejection of admission control.
// It snapshots the congestion the request saw, so callers (and the
// HTTP front-end's Retry-After logic) can act on it.
type OverloadError struct {
	// M, N identify the shape the request asked for.
	M, N int
	// Reason says which admission check failed.
	Reason OverloadReason
	// QueueDepth is the number of requests already waiting for this
	// shape at rejection time; QueueLimit is the configured bound.
	QueueDepth, QueueLimit int
	// Capacity is the number of warmed solver instances for the shape.
	Capacity int
	// EstWait is the admission controller's service-time estimate for
	// how long the request would have waited (0 when unknown).
	EstWait time.Duration
}

// Error formats the rejection with its congestion snapshot.
func (e *OverloadError) Error() string {
	return fmt.Sprintf("pool: overloaded (%s): shape %dx%d, %d/%d queued, capacity %d, est wait %v",
		e.Reason, e.M, e.N, e.QueueDepth, e.QueueLimit, e.Capacity, e.EstWait)
}

// Is matches the ErrOverloaded class.
func (e *OverloadError) Is(target error) bool { return target == ErrOverloaded }
