// Package pool implements the overload-safe serving layer: it
// multiplexes many concurrent callers onto a bounded set of warmed,
// shape-keyed solver instances, with admission control (a bounded wait
// queue per shape, fail-fast typed rejection when it is full),
// deadline-aware early rejection (an EWMA of per-shape service time,
// seeded from the cost model, predicts whether a queued request could
// ever meet its deadline), a per-device circuit breaker (sustained
// fault degradation trips traffic over to the CPU fallback, with
// half-open probing to detect recovery), and graceful drain (Close
// stops admissions, waits for in-flight solves, and force-cancels them
// through their contexts when its own deadline expires).
//
// The package is generic over the solver type S so the machinery is
// testable with fake solvers; the public gputrid.Pool[T] instantiates
// it with *gputrid.Solver[T].
package pool

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gputrid/internal/clock"
	"gputrid/internal/core"
)

// Key identifies a batch shape: M systems of N rows.
type Key struct{ M, N int }

// skey identifies a station: a shape plus whether it serves megabatch
// solvers. Megabatch stations hold solvers built by the MegaBuild hook
// (interleaved-native, batching-front-end tuned) and are warmed,
// leased, evicted and drained by exactly the same machinery as regular
// stations — they are just distinct keys in the same map, so a shape
// can have both kinds warmed at once.
type skey struct {
	Key
	Mega bool
}

// Config sizes the pool. The zero value is a small production default:
// 2 solvers and a queue of 8 per shape, at most 8 warmed shapes, the
// default breaker.
type Config struct {
	// Capacity is the number of warmed solver instances per shape —
	// the shape's concurrency limit; 0 means 2.
	Capacity int
	// QueueLimit bounds the requests waiting for a solver of one
	// shape; beyond it admission fails fast with an *OverloadError.
	// 0 means 4*Capacity; negative means no queueing (a request that
	// cannot be served immediately is rejected).
	QueueLimit int
	// MaxShapes bounds the distinct warmed shapes; when exceeded the
	// least-recently-used idle shape's solvers are closed and evicted.
	// (Shapes with traffic in flight are never evicted, so the bound
	// is soft under adversarial shape churn.) 0 means 8.
	MaxShapes int
	// Breaker tunes the circuit breaker.
	Breaker BreakerPolicy
	// EWMAAlpha is the service-time smoothing factor in (0, 1];
	// 0 means 0.2.
	EWMAAlpha float64
	// Clock is the pool's time source for idle-eviction stamps,
	// deadline-feasibility checks and (unless overridden per policy)
	// the breaker cooldown; nil means wall time. Scenario runs inject
	// the fleet's virtual clock so eviction order replays exactly.
	Clock clock.Clock
}

func (c Config) clock() clock.Clock {
	if c.Clock == nil {
		return clock.WallClock{}
	}
	return c.Clock
}

func (c Config) capacity() int {
	if c.Capacity <= 0 {
		return 2
	}
	return c.Capacity
}

func (c Config) queueLimit() int {
	switch {
	case c.QueueLimit == 0:
		return 4 * c.capacity()
	case c.QueueLimit < 0:
		return 0
	default:
		return c.QueueLimit
	}
}

func (c Config) maxShapes() int {
	if c.MaxShapes <= 0 {
		return 8
	}
	return c.MaxShapes
}

// ShapeStats describes one warmed shape station: its congestion and
// its current service-time estimate. The HTTP front-end surfaces these
// per shape so operators can see *which* traffic class is queueing,
// and derives Retry-After hints from ServiceTime.
type ShapeStats struct {
	// M, N identify the shape; Mega marks the shape's megabatch
	// station (solvers built by the MegaBuild hook).
	M, N int
	Mega bool
	// Built is the number of solver instances the station has created;
	// Leased of those are checked out right now.
	Built, Leased int
	// QueueDepth is the number of requests waiting for this shape.
	QueueDepth int
	// ServiceTime is the station's EWMA service-time estimate
	// (0 when no solve or model seed has been observed).
	ServiceTime time.Duration
}

// Stats is an instantaneous snapshot of the pool, for health endpoints
// and tests. Counters are cumulative since construction.
type Stats struct {
	// Shapes is the number of warmed shape stations.
	Shapes int
	// InFlight is the number of leases currently held.
	InFlight int
	// QueueDepth is the total number of requests waiting, all shapes.
	QueueDepth int
	// PerShape details every warmed station, sorted by (M, N).
	PerShape []ShapeStats

	// Admitted counts granted leases. RejectedQueueFull and
	// RejectedDeadline count the two admission-control rejections;
	// RejectedClosed counts requests that hit a closing pool;
	// CancelledWaits counts requests whose context ended while queued.
	Admitted, RejectedQueueFull, RejectedDeadline uint64
	RejectedClosed, CancelledWaits                uint64

	// DeviceSolves, ProbeSolves and FallbackSolves count completed
	// solves per route (probes are also device solves).
	DeviceSolves, ProbeSolves, FallbackSolves uint64

	// Breaker is the circuit breaker's state.
	Breaker BreakerSnapshot
}

// Pool multiplexes callers onto warmed solver instances of type S.
type Pool[S any] struct {
	cfg   Config
	build func(m, n int) (S, error)
	// megaBuild, when set via MegaBuild, constructs the solvers of
	// megabatch stations; nil falls back to build.
	megaBuild func(m, n int) (S, error)
	close     func(S) error
	// modeled seeds a fresh solver's service-time estimate (return 0
	// when unknown); observed times take over from the first solve.
	modeled func(S) time.Duration

	clk clock.Clock
	brk *breaker

	mu            sync.Mutex //tridlint:lockrank 20
	stations      map[skey]*station[S]
	leases        map[*Lease[S]]struct{}
	inflight      int
	closed        bool
	drainCh       chan struct{} // closed when Close begins: admissions stop
	drained       chan struct{} // closed when the last lease is released
	drainedClosed bool
	done          chan struct{} // closed when teardown completes

	admitted, rejFull, rejDeadline, rejClosed, cancelledWaits atomic.Uint64
	deviceSolves, probeSolves, fallbackSolves                 atomic.Uint64
}

// station serves one shape: a free list of warmed solvers and the
// bounded wait queue's bookkeeping. The free-list receives on the
// non-waiting paths happen under mu together with the leased/built
// accounting, so eviction can atomically verify that every built
// solver is present before tearing the station down.
type station[S any] struct {
	key  skey
	free chan S
	svc  *ewma

	mu      sync.Mutex //tridlint:lockrank 30
	built   int        // solvers created (≤ capacity)
	leased  int        // solvers currently checked out
	waiters int        // requests blocked waiting for a solver
	closing bool       // evicted or in pool teardown; acquisitions bounce
	lastUse time.Time
}

// New builds a pool over the given solver lifecycle hooks. build makes
// a warmed solver for a shape, close releases one, modeled returns the
// cost model's per-solve time estimate for seeding the admission
// controller (may return 0). Either hook may be nil.
func New[S any](cfg Config, build func(m, n int) (S, error), close func(S) error, modeled func(S) time.Duration) *Pool[S] {
	if modeled == nil {
		modeled = func(S) time.Duration { return 0 }
	}
	if close == nil {
		close = func(S) error { return nil }
	}
	clk := cfg.clock()
	return &Pool[S]{
		cfg:      cfg,
		build:    build,
		close:    close,
		modeled:  modeled,
		clk:      clk,
		brk:      newBreaker(cfg.Breaker, clk.Now),
		stations: make(map[skey]*station[S]),
		leases:   make(map[*Lease[S]]struct{}),
		drainCh:  make(chan struct{}),
		drained:  make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Lease is one granted admission: a solver checked out of its station.
// The solve must run under Ctx (it is force-cancelled when Close's
// drain deadline expires) and end with exactly one Release call.
type Lease[S any] struct {
	// Solver is the checked-out instance.
	Solver S
	// Ctx derives from the acquiring context and is additionally
	// cancelled by a force-drain.
	Ctx context.Context

	p      *Pool[S]
	st     *station[S]
	cancel context.CancelFunc
}

// cancelledError matches both core.ErrCancelled and the underlying
// context error, like the solver's own cancellation errors, so callers
// see one error class whether the deadline expired while queued or
// mid-solve.
type cancelledError struct{ cause error }

func (e *cancelledError) Error() string {
	return "pool: admission wait cancelled: " + e.cause.Error()
}
func (e *cancelledError) Is(target error) bool { return target == core.ErrCancelled }
func (e *cancelledError) Unwrap() error        { return e.cause }

// Acquire admits one request for shape (m, n): it returns a warmed
// solver immediately when one is free (building lazily up to
// Config.Capacity), otherwise joins the shape's bounded wait queue.
// It fails fast with an *OverloadError (matching ErrOverloaded) when
// the queue is full or the context's deadline is infeasible given the
// observed service time, with ErrClosed when the pool is draining, and
// with an error matching core.ErrCancelled when ctx ends while queued.
func (p *Pool[S]) Acquire(ctx context.Context, m, n int) (*Lease[S], error) {
	return p.acquire(ctx, skey{Key{m, n}, false})
}

// AcquireMega is Acquire against the shape's megabatch station, whose
// solvers come from the MegaBuild hook. The stations are independent:
// megabatch traffic never competes with direct traffic for solver
// instances, and each keeps its own service-time estimate (megabatch
// solves are much larger, so mixing the EWMAs would wreck both
// admission controllers).
func (p *Pool[S]) AcquireMega(ctx context.Context, m, n int) (*Lease[S], error) {
	return p.acquire(ctx, skey{Key{m, n}, true})
}

func (p *Pool[S]) acquire(ctx context.Context, k skey) (*Lease[S], error) {
	for {
		st, err := p.lookup(k)
		if err != nil {
			return nil, err
		}
		l, retry, err := p.acquireAt(ctx, st)
		if retry {
			continue // station was evicted between lookup and checkout
		}
		return l, err
	}
}

// acquireAt runs one admission attempt against a station. retry=true
// reports that the station is being torn down under a live pool and
// the caller should look it up again.
func (p *Pool[S]) acquireAt(ctx context.Context, st *station[S]) (l *Lease[S], retry bool, err error) {
	m, n := st.key.M, st.key.N
	st.mu.Lock()
	if st.closing {
		st.mu.Unlock()
		return nil, true, nil
	}

	// Fast path: a solver is free right now.
	select {
	case s := <-st.free:
		st.leased++
		st.mu.Unlock()
		return p.grant(ctx, st, s)
	default:
	}

	// Build lazily up to capacity.
	if st.built < p.cfg.capacity() {
		st.built++
		st.mu.Unlock()
		s, err := p.builderFor(st.key)(m, n)
		if err != nil {
			st.mu.Lock()
			st.built--
			st.mu.Unlock()
			return nil, false, err
		}
		st.svc.seed(p.modeled(s))
		st.mu.Lock()
		st.leased++
		st.mu.Unlock()
		return p.grant(ctx, st, s)
	}

	// Queue, or fail fast. st.mu is held.
	limit := p.cfg.queueLimit()
	if st.waiters >= limit {
		depth := st.waiters
		st.mu.Unlock()
		p.rejFull.Add(1)
		return nil, false, &OverloadError{
			M: m, N: n, Reason: QueueFull,
			QueueDepth: depth, QueueLimit: limit,
			Capacity: p.cfg.capacity(),
		}
	}
	if dl, ok := ctx.Deadline(); ok {
		if svc, known := st.svc.value(); known && svc > 0 {
			// The request is behind st.waiters others on capacity
			// servers: it finishes roughly one queue drain plus its
			// own service time from now.
			pos := st.waiters + 1
			cap := p.cfg.capacity()
			estWait := svc * time.Duration((pos+cap-1)/cap)
			if dl.Sub(p.clk.Now()) < estWait+svc {
				depth := st.waiters
				st.mu.Unlock()
				p.rejDeadline.Add(1)
				return nil, false, &OverloadError{
					M: m, N: n, Reason: DeadlineInfeasible,
					QueueDepth: depth, QueueLimit: limit,
					Capacity: p.cfg.capacity(), EstWait: estWait,
				}
			}
		}
	}
	st.waiters++
	st.mu.Unlock()

	select {
	case s := <-st.free:
		st.mu.Lock()
		st.waiters--
		st.leased++
		st.mu.Unlock()
		return p.grant(ctx, st, s)
	case <-ctx.Done():
		st.mu.Lock()
		st.waiters--
		st.mu.Unlock()
		p.cancelledWaits.Add(1)
		return nil, false, &cancelledError{ctx.Err()}
	case <-p.drainCh:
		st.mu.Lock()
		st.waiters--
		st.mu.Unlock()
		p.rejClosed.Add(1)
		return nil, false, ErrClosed
	}
}

// grant registers the lease. A checkout that races the start of a
// drain is undone — the solver goes back to its station, where
// teardown collects it — and reports ErrClosed.
func (p *Pool[S]) grant(ctx context.Context, st *station[S], s S) (*Lease[S], bool, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		st.mu.Lock()
		st.leased--
		st.mu.Unlock()
		st.free <- s
		p.rejClosed.Add(1)
		return nil, false, ErrClosed
	}
	cctx, cancel := context.WithCancel(ctx)
	l := &Lease[S]{Solver: s, Ctx: cctx, p: p, st: st, cancel: cancel}
	p.leases[l] = struct{}{}
	p.inflight++
	p.mu.Unlock()

	st.mu.Lock()
	st.lastUse = p.clk.Now()
	st.mu.Unlock()
	p.admitted.Add(1)
	return l, false, nil
}

// Release returns the lease's solver to its station. A positive svc
// feeds the shape's service-time estimate.
func (l *Lease[S]) Release(svc time.Duration) {
	if svc > 0 {
		l.st.svc.observe(svc)
	}
	l.cancel()
	l.st.mu.Lock()
	l.st.leased--
	l.st.mu.Unlock()
	l.st.free <- l.Solver

	p := l.p
	p.mu.Lock()
	delete(p.leases, l)
	p.inflight--
	if p.closed && p.inflight == 0 && !p.drainedClosed {
		p.drainedClosed = true
		close(p.drained)
	}
	p.mu.Unlock()
}

// MegaBuild installs the constructor for megabatch-station solvers
// (AcquireMega/WarmMega). Call it once during setup, before any
// megabatch traffic; nil (the default) makes megabatch stations fall
// back to the regular build hook. It exists as a setter rather than a
// Config field so the generic pool's construction signature — which
// fakes in tests instantiate — stays unchanged.
func (p *Pool[S]) MegaBuild(build func(m, n int) (S, error)) {
	p.megaBuild = build
}

// builderFor picks the station's constructor hook.
func (p *Pool[S]) builderFor(k skey) func(m, n int) (S, error) {
	if k.Mega && p.megaBuild != nil {
		return p.megaBuild
	}
	return p.build
}

// lookup returns (building if needed) the station for a shape,
// evicting the least-recently-used idle station when the shape set
// outgrows Config.MaxShapes.
func (p *Pool[S]) lookup(key skey) (*station[S], error) {
	if key.M <= 0 || key.N <= 0 {
		return nil, fmt.Errorf("pool: invalid shape %dx%d", key.M, key.N)
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.rejClosed.Add(1)
		return nil, ErrClosed
	}
	if st, ok := p.stations[key]; ok {
		p.mu.Unlock()
		return st, nil
	}
	var victim *station[S]
	if len(p.stations) >= p.cfg.maxShapes() {
		victim = p.evictIdleLocked()
	}
	st := &station[S]{
		key:  key,
		free: make(chan S, p.cfg.capacity()),
		svc:  newEWMA(p.cfg.EWMAAlpha),
	}
	st.lastUse = p.clk.Now()
	p.stations[key] = st
	p.mu.Unlock()
	if victim != nil {
		p.drainStation(victim)
	}
	return st, nil
}

// evictIdleLocked (p.mu held) marks the least-recently-used fully idle
// station as closing and removes it from the map; the caller drains it
// after releasing p.mu. A station counts as idle only when every built
// solver is back in the free list and nobody waits, checked atomically
// with setting closing — so nothing can check a solver out of an
// evicted station, and the drain's receives cannot block.
func (p *Pool[S]) evictIdleLocked() *station[S] {
	var victim *station[S]
	for _, st := range p.stations {
		st.mu.Lock()
		idle := st.leased == 0 && st.waiters == 0 && len(st.free) == st.built
		last := st.lastUse
		st.mu.Unlock()
		if idle && (victim == nil || last.Before(victim.lastUse)) {
			victim = st
		}
	}
	if victim == nil {
		return nil
	}
	victim.mu.Lock()
	ok := victim.leased == 0 && victim.waiters == 0 && len(victim.free) == victim.built && !victim.closing
	if ok {
		victim.closing = true
	}
	victim.mu.Unlock()
	if !ok {
		return nil
	}
	delete(p.stations, victim.key)
	return victim
}

// drainStation closes every solver the station built. Each one is
// either in the free list or about to be pushed back by a racing
// checkout that lost to the drain, so a blocking receive collects
// exactly built solvers.
func (p *Pool[S]) drainStation(st *station[S]) {
	st.mu.Lock()
	st.closing = true
	built := st.built
	st.built = 0
	st.mu.Unlock()
	for i := 0; i < built; i++ {
		s := <-st.free
		_ = p.close(s)
	}
}

// Warm eagerly builds the shape's full solver complement so the first
// requests are not serialized behind construction and recording.
func (p *Pool[S]) Warm(m, n int) error {
	return p.warm(skey{Key{m, n}, false})
}

// WarmMega is Warm for the shape's megabatch station.
func (p *Pool[S]) WarmMega(m, n int) error {
	return p.warm(skey{Key{m, n}, true})
}

func (p *Pool[S]) warm(k skey) error {
	for {
		st, err := p.lookup(k)
		if err != nil {
			return err
		}
		st.mu.Lock()
		if st.closing {
			st.mu.Unlock()
			continue
		}
		if st.built >= p.cfg.capacity() {
			st.mu.Unlock()
			return nil
		}
		st.built++
		st.mu.Unlock()
		s, err := p.builderFor(k)(k.M, k.N)
		if err != nil {
			st.mu.Lock()
			st.built--
			st.mu.Unlock()
			return err
		}
		st.svc.seed(p.modeled(s))
		st.free <- s
	}
}

// Route asks the circuit breaker where the next solve should go:
// device=false routes to the CPU fallback; probe=true marks a
// half-open probe whose outcome must be reported via Record (or
// Abandon when the solve was cancelled).
func (p *Pool[S]) Route() (device, probe bool) { return p.brk.route() }

// Record reports a completed device solve to the breaker and the
// route counters; degraded is the breaker's failure signal.
func (p *Pool[S]) Record(probe, degraded bool) {
	p.deviceSolves.Add(1)
	if probe {
		p.probeSolves.Add(1)
	}
	p.brk.record(probe, degraded)
}

// Abandon releases a probe slot whose solve was cancelled before
// yielding a verdict on device health.
func (p *Pool[S]) Abandon(probe bool) { p.brk.abandon(probe) }

// RecordFallback counts a completed CPU-fallback solve.
func (p *Pool[S]) RecordFallback() { p.fallbackSolves.Add(1) }

// Breaker returns the circuit breaker's observable state.
func (p *Pool[S]) Breaker() BreakerSnapshot { return p.brk.snapshot() }

// ServiceTime returns the current service-time estimate for a shape
// (false when the shape has never been seen).
func (p *Pool[S]) ServiceTime(m, n int) (time.Duration, bool) {
	return p.serviceTime(skey{Key{m, n}, false})
}

// ServiceTimeMega returns the megabatch station's estimate — the
// batcher's flush scheduler reads it to bound deadline slack.
func (p *Pool[S]) ServiceTimeMega(m, n int) (time.Duration, bool) {
	return p.serviceTime(skey{Key{m, n}, true})
}

func (p *Pool[S]) serviceTime(k skey) (time.Duration, bool) {
	p.mu.Lock()
	st, ok := p.stations[k]
	p.mu.Unlock()
	if !ok {
		return 0, false
	}
	return st.svc.value()
}

// Stats snapshots the pool.
func (p *Pool[S]) Stats() Stats {
	s := Stats{
		Admitted:          p.admitted.Load(),
		RejectedQueueFull: p.rejFull.Load(),
		RejectedDeadline:  p.rejDeadline.Load(),
		RejectedClosed:    p.rejClosed.Load(),
		CancelledWaits:    p.cancelledWaits.Load(),
		DeviceSolves:      p.deviceSolves.Load(),
		ProbeSolves:       p.probeSolves.Load(),
		FallbackSolves:    p.fallbackSolves.Load(),
		Breaker:           p.brk.snapshot(),
	}
	p.mu.Lock()
	s.Shapes = len(p.stations)
	s.InFlight = p.inflight
	stations := make([]*station[S], 0, len(p.stations))
	for _, st := range p.stations {
		stations = append(stations, st)
	}
	p.mu.Unlock()
	s.PerShape = make([]ShapeStats, 0, len(stations))
	for _, st := range stations {
		svc, _ := st.svc.value()
		st.mu.Lock()
		s.QueueDepth += st.waiters
		s.PerShape = append(s.PerShape, ShapeStats{
			M: st.key.M, N: st.key.N, Mega: st.key.Mega,
			Built: st.built, Leased: st.leased,
			QueueDepth:  st.waiters,
			ServiceTime: svc,
		})
		st.mu.Unlock()
	}
	sort.Slice(s.PerShape, func(i, j int) bool {
		a, b := s.PerShape[i], s.PerShape[j]
		if a.M != b.M {
			return a.M < b.M
		}
		if a.N != b.N {
			return a.N < b.N
		}
		return !a.Mega && b.Mega
	})
	return s
}

// Close drains the pool: admissions stop immediately (queued requests
// fail with ErrClosed), in-flight solves run to completion, and if ctx
// expires first every remaining lease's context is cancelled — the
// PR 4 solve paths then stop promptly — before teardown closes all
// solvers. Close is idempotent; concurrent calls wait for the first
// teardown to finish. It returns nil on a clean drain and a non-nil
// error (wrapping ctx's error) when solves had to be force-cancelled.
func (p *Pool[S]) Close(ctx context.Context) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		<-p.done
		return nil
	}
	p.closed = true
	close(p.drainCh)
	if p.inflight == 0 && !p.drainedClosed {
		p.drainedClosed = true
		close(p.drained)
	}
	p.mu.Unlock()

	forced := 0
	select {
	case <-p.drained:
	case <-ctx.Done():
		p.mu.Lock()
		for l := range p.leases {
			l.cancel()
			forced++
		}
		p.mu.Unlock()
		<-p.drained
	}

	p.mu.Lock()
	stations := make([]*station[S], 0, len(p.stations))
	for _, st := range p.stations {
		stations = append(stations, st)
	}
	p.stations = make(map[skey]*station[S])
	p.mu.Unlock()
	for _, st := range stations {
		p.drainStation(st)
	}
	close(p.done)
	if forced > 0 {
		return fmt.Errorf("pool: drain deadline expired, force-cancelled %d in-flight solve(s): %w", forced, ctx.Err())
	}
	return nil
}
