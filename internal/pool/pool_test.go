package pool

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gputrid/internal/clock"
	"gputrid/internal/core"
)

// fakeSolver stands in for a warmed solver instance.
type fakeSolver struct {
	m, n int
	id   int
}

type fakeFactory struct {
	mu     sync.Mutex
	built  int
	closed int
}

func (f *fakeFactory) build(m, n int) (*fakeSolver, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.built++
	return &fakeSolver{m: m, n: n, id: f.built}, nil
}

func (f *fakeFactory) close(*fakeSolver) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.closed++
	return nil
}

func (f *fakeFactory) counts() (built, closed int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.built, f.closed
}

func newTestPool(cfg Config, f *fakeFactory, modeled time.Duration) *Pool[*fakeSolver] {
	return New(cfg, f.build, f.close, func(*fakeSolver) time.Duration { return modeled })
}

// TestAdmissionOverload is the deterministic overload scenario of the
// acceptance criteria: with capacity 2 and a queue of 3, an offered
// load of 8 concurrent requests (4x capacity) admits 2, queues 3, and
// fail-fasts the remaining 5 with a typed ErrOverloaded carrying the
// queue-depth snapshot.
func TestAdmissionOverload(t *testing.T) {
	f := &fakeFactory{}
	p := newTestPool(Config{Capacity: 2, QueueLimit: 3}, f, 0)
	ctx := context.Background()

	// Admit capacity.
	l1, err := p.Acquire(ctx, 4, 32)
	if err != nil {
		t.Fatalf("acquire 1: %v", err)
	}
	l2, err := p.Acquire(ctx, 4, 32)
	if err != nil {
		t.Fatalf("acquire 2: %v", err)
	}

	// Fill the queue with 3 blocked requests.
	type got struct {
		l   *Lease[*fakeSolver]
		err error
	}
	queued := make(chan got, 3)
	for i := 0; i < 3; i++ {
		go func() {
			l, err := p.Acquire(ctx, 4, 32)
			queued <- got{l, err}
		}()
	}
	waitFor(t, func() bool { return p.Stats().QueueDepth == 3 })

	// The rest of the 4x offered load must fail fast, typed, with the
	// congestion snapshot.
	for i := 0; i < 3; i++ {
		_, err := p.Acquire(ctx, 4, 32)
		if !errors.Is(err, ErrOverloaded) {
			t.Fatalf("overflow request %d: got %v, want ErrOverloaded", i, err)
		}
		var oe *OverloadError
		if !errors.As(err, &oe) {
			t.Fatalf("overflow request %d: error is not *OverloadError: %v", i, err)
		}
		if oe.Reason != QueueFull || oe.QueueDepth != 3 || oe.QueueLimit != 3 || oe.Capacity != 2 {
			t.Fatalf("overflow snapshot: %+v", oe)
		}
	}
	if s := p.Stats(); s.RejectedQueueFull != 3 || s.Admitted != 2 {
		t.Fatalf("stats after overload: %+v", s)
	}

	// Releasing the held leases serves every queued request.
	l1.Release(0)
	l2.Release(0)
	served := 0
	for served < 3 {
		g := <-queued
		if g.err != nil {
			t.Fatalf("queued request failed: %v", g.err)
		}
		g.l.Release(0)
		served++
	}
	if err := p.Close(context.Background()); err != nil {
		t.Fatalf("close: %v", err)
	}
	built, closed := f.counts()
	if built != 2 || closed != 2 {
		t.Fatalf("solver lifecycle: built %d closed %d", built, closed)
	}
}

// TestDeadlineInfeasible checks the EWMA-driven early rejection: a
// queued request whose deadline cannot be met given the modeled
// service time is rejected immediately instead of timing out in the
// queue.
func TestDeadlineInfeasible(t *testing.T) {
	f := &fakeFactory{}
	const svc = 50 * time.Millisecond
	p := newTestPool(Config{Capacity: 1, QueueLimit: 4}, f, svc)
	defer p.Close(context.Background())

	l, err := p.Acquire(context.Background(), 2, 16)
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	_, err = p.Acquire(ctx, 2, 16)
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Reason != DeadlineInfeasible {
		t.Fatalf("got %v, want DeadlineInfeasible OverloadError", err)
	}
	if oe.EstWait != svc {
		t.Fatalf("EstWait = %v, want the seeded %v", oe.EstWait, svc)
	}
	if s := p.Stats(); s.RejectedDeadline != 1 {
		t.Fatalf("RejectedDeadline = %d, want 1", s.RejectedDeadline)
	}

	// A generous deadline queues instead.
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Hour)
	defer cancel2()
	done := make(chan error, 1)
	go func() {
		l2, err := p.Acquire(ctx2, 2, 16)
		if err == nil {
			l2.Release(0)
		}
		done <- err
	}()
	waitFor(t, func() bool { return p.Stats().QueueDepth == 1 })
	l.Release(0)
	if err := <-done; err != nil {
		t.Fatalf("feasible-deadline request failed: %v", err)
	}
}

// TestAdmissionCancelledWhileQueued: a context that ends while queued
// yields an error matching core.ErrCancelled and the context error.
func TestAdmissionCancelledWhileQueued(t *testing.T) {
	f := &fakeFactory{}
	p := newTestPool(Config{Capacity: 1, QueueLimit: 4}, f, 0)
	defer p.Close(context.Background())

	l, err := p.Acquire(context.Background(), 2, 16)
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	defer l.Release(0)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := p.Acquire(ctx, 2, 16)
		done <- err
	}()
	waitFor(t, func() bool { return p.Stats().QueueDepth == 1 })
	cancel()
	err = <-done
	if !errors.Is(err, core.ErrCancelled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want ErrCancelled matching context.Canceled", err)
	}
}

// TestBreakerStateMachine drives trip, half-open probing, re-trip and
// recovery with a fake clock — fully deterministic.
func TestBreakerStateMachine(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	pol := BreakerPolicy{
		Window: 4, TripRatio: 0.5, MinSamples: 2,
		Cooldown: 100 * time.Millisecond, ProbeSuccesses: 2, Clock: clock,
	}
	b := newBreaker(pol, time.Now)

	// Healthy traffic keeps it closed.
	for i := 0; i < 6; i++ {
		if dev, probe := b.route(); !dev || probe {
			t.Fatalf("closed breaker must route to device")
		}
		b.record(false, false)
	}
	if s := b.snapshot(); s.State != BreakerClosed {
		t.Fatalf("state = %v, want closed", s.State)
	}

	// Two degraded solves: window fill 4 is stale-free after reset? No:
	// the window holds the last 4; two degraded out of the last 4 hits
	// the 50% trip ratio with MinSamples met.
	b.record(false, true)
	b.record(false, true)
	if s := b.snapshot(); s.State != BreakerOpen || s.Trips != 1 {
		t.Fatalf("after sustained degradation: %+v, want open after 1 trip", s)
	}

	// Open: everything falls back until the cooldown elapses.
	if dev, _ := b.route(); dev {
		t.Fatalf("open breaker must route to fallback")
	}
	now = now.Add(50 * time.Millisecond)
	if dev, _ := b.route(); dev {
		t.Fatalf("open breaker must stay on fallback inside the cooldown")
	}

	// Cooldown over: exactly one probe goes through at a time.
	now = now.Add(60 * time.Millisecond)
	dev, probe := b.route()
	if !dev || !probe {
		t.Fatalf("after cooldown, want a device probe; got device=%v probe=%v", dev, probe)
	}
	if dev, _ := b.route(); dev {
		t.Fatalf("second concurrent request during probe must fall back")
	}

	// Failed probe re-opens and restarts the cooldown.
	b.record(true, true)
	if s := b.snapshot(); s.State != BreakerOpen || s.Trips != 2 {
		t.Fatalf("failed probe: %+v, want re-opened", s)
	}

	// Recovery: cooldown, then ProbeSuccesses clean probes close it.
	now = now.Add(200 * time.Millisecond)
	for i := 0; i < 2; i++ {
		dev, probe := b.route()
		if !dev || !probe {
			t.Fatalf("recovery probe %d not granted (device=%v probe=%v)", i, dev, probe)
		}
		b.record(true, false)
	}
	if s := b.snapshot(); s.State != BreakerClosed {
		t.Fatalf("after clean probes: %+v, want closed", s)
	}
	// The window restarted: old degradation must not instantly re-trip.
	b.record(false, false)
	if s := b.snapshot(); s.State != BreakerClosed || s.WindowFill != 1 {
		t.Fatalf("window not reset after recovery: %+v", s)
	}
}

// TestBreakerAbandonedProbe: a cancelled probe neither closes nor
// re-opens the breaker, and frees the probe slot.
func TestBreakerAbandonedProbe(t *testing.T) {
	now := time.Unix(0, 0)
	pol := BreakerPolicy{
		Window: 4, MinSamples: 2, Cooldown: time.Millisecond,
		ProbeSuccesses: 1, Clock: func() time.Time { return now },
	}
	b := newBreaker(pol, time.Now)
	b.record(false, true)
	b.record(false, true)
	now = now.Add(2 * time.Millisecond)
	if dev, probe := b.route(); !dev || !probe {
		t.Fatalf("want probe; got device=%v probe=%v", dev, probe)
	}
	b.abandon(true)
	if s := b.snapshot(); s.State != BreakerHalfOpen {
		t.Fatalf("abandoned probe changed state: %+v", s)
	}
	if dev, probe := b.route(); !dev || !probe {
		t.Fatalf("probe slot not freed after abandon")
	}
	b.record(true, false)
	if s := b.snapshot(); s.State != BreakerClosed {
		t.Fatalf("recovery after abandon: %+v", s)
	}
}

// TestCloseForcesCancel: Close with an expiring context cancels the
// in-flight lease's context, the drain completes, and the pool reports
// the forced cancellation.
func TestCloseForcesCancel(t *testing.T) {
	f := &fakeFactory{}
	p := newTestPool(Config{Capacity: 1}, f, 0)
	l, err := p.Acquire(context.Background(), 2, 16)
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}

	released := make(chan struct{})
	go func() {
		// The "solve": runs until the lease context is force-cancelled.
		<-l.Ctx.Done()
		l.Release(0)
		close(released)
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	err = p.Close(ctx)
	if err == nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forced close: got %v, want error wrapping deadline", err)
	}
	<-released
	if _, err := p.Acquire(context.Background(), 2, 16); !errors.Is(err, ErrClosed) {
		t.Fatalf("acquire after close: %v, want ErrClosed", err)
	}
	// Idempotent.
	if err := p.Close(context.Background()); err != nil {
		t.Fatalf("second close: %v", err)
	}
	built, closed := f.counts()
	if built != closed || built == 0 {
		t.Fatalf("teardown lifecycle: built %d closed %d", built, closed)
	}
}

// TestCloseRejectsQueued: queued requests fail with ErrClosed the
// moment a drain starts.
func TestCloseRejectsQueued(t *testing.T) {
	f := &fakeFactory{}
	p := newTestPool(Config{Capacity: 1, QueueLimit: 2}, f, 0)
	l, err := p.Acquire(context.Background(), 2, 16)
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := p.Acquire(context.Background(), 2, 16)
		done <- err
	}()
	waitFor(t, func() bool { return p.Stats().QueueDepth == 1 })

	closeDone := make(chan error, 1)
	go func() { closeDone <- p.Close(context.Background()) }()
	if err := <-done; !errors.Is(err, ErrClosed) {
		t.Fatalf("queued request during drain: %v, want ErrClosed", err)
	}
	l.Release(0)
	if err := <-closeDone; err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestShapeEviction: exceeding MaxShapes evicts the least-recently
// used idle shape and closes its solvers.
func TestShapeEviction(t *testing.T) {
	f := &fakeFactory{}
	p := newTestPool(Config{Capacity: 1, MaxShapes: 2}, f, 0)
	defer p.Close(context.Background())

	for i, shape := range []Key{{2, 8}, {2, 16}, {2, 32}} {
		l, err := p.Acquire(context.Background(), shape.M, shape.N)
		if err != nil {
			t.Fatalf("acquire shape %d: %v", i, err)
		}
		l.Release(0)
	}
	if s := p.Stats(); s.Shapes != 2 {
		t.Fatalf("shapes = %d, want 2 after eviction", s.Shapes)
	}
	_, closed := f.counts()
	if closed != 1 {
		t.Fatalf("closed = %d, want the evicted shape's solver closed", closed)
	}
	// The evicted shape is rebuilt transparently on demand.
	l, err := p.Acquire(context.Background(), 2, 8)
	if err != nil {
		t.Fatalf("reacquire evicted shape: %v", err)
	}
	l.Release(0)
}

// TestIdleEvictionVirtualClock pins LRU eviction to injected time: the
// lastUse stamps come from Config.Clock, so which shape is evicted is a
// pure function of the virtual schedule, replaying identically on
// every run — the property the scenario runner relies on when it hands
// every pool the fleet's virtual clock.
func TestIdleEvictionVirtualClock(t *testing.T) {
	shapeSet := func(p *Pool[*fakeSolver]) map[Key]bool {
		set := make(map[Key]bool)
		for _, s := range p.Stats().PerShape {
			set[Key{s.M, s.N}] = true
		}
		return set
	}
	touch := func(t *testing.T, p *Pool[*fakeSolver], k Key) {
		t.Helper()
		l, err := p.Acquire(context.Background(), k.M, k.N)
		if err != nil {
			t.Fatalf("acquire %v: %v", k, err)
		}
		l.Release(0)
	}

	a, b, c := Key{2, 8}, Key{2, 16}, Key{2, 32}
	for run := 0; run < 3; run++ {
		vc := clock.NewVirtualClock(time.Unix(0, 0).UTC())
		f := &fakeFactory{}
		p := newTestPool(Config{Capacity: 1, MaxShapes: 2, Clock: vc}, f, 0)

		touch(t, p, a) // a @ t=0
		vc.Advance(time.Second)
		touch(t, p, b) // b @ t=1
		vc.Advance(time.Second)
		touch(t, p, a) // a refreshed @ t=2: b is now the LRU shape
		vc.Advance(time.Second)
		touch(t, p, c) // c @ t=3 overflows MaxShapes: b must go

		got := shapeSet(p)
		if len(got) != 2 || !got[a] || !got[c] || got[b] {
			t.Fatalf("run %d: warmed shapes after eviction = %v, want {%v %v}", run, got, a, c)
		}
		if _, closed := f.counts(); closed != 1 {
			t.Fatalf("run %d: closed = %d, want exactly the evicted shape's solver", run, closed)
		}
		if err := p.Close(context.Background()); err != nil {
			t.Fatalf("run %d: close: %v", run, err)
		}
	}
}

// TestEWMAObservation: observed service times replace the modeled seed
// and converge with the configured smoothing.
func TestEWMAObservation(t *testing.T) {
	e := newEWMA(0.5)
	if _, ok := e.value(); ok {
		t.Fatal("empty ewma must report unknown")
	}
	e.seed(100 * time.Millisecond)
	if v, ok := e.value(); !ok || v != 100*time.Millisecond {
		t.Fatalf("seed: %v %v", v, ok)
	}
	e.seed(999 * time.Hour) // second seed must not override
	if v, _ := e.value(); v != 100*time.Millisecond {
		t.Fatalf("re-seed overwrote: %v", v)
	}
	e.observe(10 * time.Millisecond) // first observation replaces seed
	if v, _ := e.value(); v != 10*time.Millisecond {
		t.Fatalf("first observation: %v", v)
	}
	e.observe(20 * time.Millisecond) // 10 + 0.5*(20-10) = 15
	if v, _ := e.value(); v != 15*time.Millisecond {
		t.Fatalf("smoothing: %v, want 15ms", v)
	}
}

// TestConcurrentAcquireRelease hammers one station from many
// goroutines (race-detector food) and checks the pool settles.
func TestConcurrentAcquireRelease(t *testing.T) {
	f := &fakeFactory{}
	p := newTestPool(Config{Capacity: 3, QueueLimit: 64}, f, 0)
	var granted, rejected atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				l, err := p.Acquire(context.Background(), 4, 16)
				if err != nil {
					rejected.Add(1)
					continue
				}
				granted.Add(1)
				l.Release(time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	if err := p.Close(context.Background()); err != nil {
		t.Fatalf("close: %v", err)
	}
	if granted.Load() == 0 {
		t.Fatal("nothing granted")
	}
	built, closed := f.counts()
	if built != closed {
		t.Fatalf("lifecycle: built %d closed %d", built, closed)
	}
	if s := p.Stats(); s.InFlight != 0 || s.QueueDepth != 0 {
		t.Fatalf("pool did not settle: %+v", s)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}
