package pool

import (
	"sync"
	"time"
)

// ewma is a concurrency-safe exponentially weighted moving average of
// per-solve service time, one per shape. The admission controller uses
// it to reject requests whose deadline the queue ahead of them already
// makes infeasible; it is seeded with the cost model's modeled device
// time so deadline checks work before the first solve completes, then
// tracks observed service time (which includes the host-side sharded
// replay, interleave passes and any retry backoff the model does not
// see).
type ewma struct {
	mu    sync.Mutex
	alpha float64
	v     float64 // seconds
	n     int     // observations (seed included)
}

func newEWMA(alpha float64) *ewma {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.2
	}
	return &ewma{alpha: alpha}
}

// seed installs a prior estimate without counting it as an
// observation-weighted sample; a later first Observe overwrites it.
func (e *ewma) seed(d time.Duration) {
	e.mu.Lock()
	if e.n == 0 {
		e.v = d.Seconds()
		e.n = 1
	}
	e.mu.Unlock()
}

// observe folds one measured service time into the average.
func (e *ewma) observe(d time.Duration) {
	x := d.Seconds()
	e.mu.Lock()
	if e.n <= 1 {
		// First real measurement replaces the modeled-time seed.
		e.v = x
	} else {
		e.v += e.alpha * (x - e.v)
	}
	e.n++
	e.mu.Unlock()
}

// value returns the current estimate and whether any estimate exists.
func (e *ewma) value() (time.Duration, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.n == 0 {
		return 0, false
	}
	return time.Duration(e.v * float64(time.Second)), true
}
