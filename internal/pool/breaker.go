package pool

import (
	"sync"
	"time"
)

// BreakerState is the circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed: traffic flows to the device path; outcomes are
	// recorded in the sliding window.
	BreakerClosed BreakerState = iota
	// BreakerOpen: sustained degradation tripped the breaker; all
	// traffic is routed to the CPU fallback until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: the cooldown elapsed; single probe requests are
	// let through the device path while everyone else stays on the
	// fallback, and the probes' outcomes decide between re-opening and
	// closing.
	BreakerHalfOpen
)

// String names the state.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// BreakerPolicy tunes the circuit breaker. The zero value is the
// production default: a 20-solve sliding window, trip at a 50%
// degraded rate with at least 8 samples, 100ms cooldown, 3 consecutive
// probe successes to close.
type BreakerPolicy struct {
	// Window is the sliding window length in completed device solves;
	// 0 means 20.
	Window int
	// TripRatio is the degraded fraction of the window that trips the
	// breaker; 0 means 0.5.
	TripRatio float64
	// MinSamples is the minimum window fill before the ratio is
	// consulted; 0 means 8.
	MinSamples int
	// Cooldown is how long the breaker stays open before probing;
	// 0 means 100ms.
	Cooldown time.Duration
	// ProbeSuccesses is how many consecutive half-open probes must
	// succeed to close the breaker; 0 means 3.
	ProbeSuccesses int
	// Disabled wires the breaker permanently closed (every request
	// takes the device path). For ablation and tests.
	Disabled bool
	// Clock overrides the breaker's time source; nil means the pool's
	// clock (Config.Clock, wall time by default). Tests inject a fake
	// clock to drive the cooldown deterministically.
	Clock func() time.Time
}

func (p BreakerPolicy) window() int {
	if p.Window <= 0 {
		return 20
	}
	return p.Window
}

func (p BreakerPolicy) tripRatio() float64 {
	if p.TripRatio <= 0 {
		return 0.5
	}
	return p.TripRatio
}

func (p BreakerPolicy) minSamples() int {
	if p.MinSamples <= 0 {
		return 8
	}
	return p.MinSamples
}

func (p BreakerPolicy) cooldown() time.Duration {
	if p.Cooldown <= 0 {
		return 100 * time.Millisecond
	}
	return p.Cooldown
}

func (p BreakerPolicy) probeSuccesses() int {
	if p.ProbeSuccesses <= 0 {
		return 3
	}
	return p.ProbeSuccesses
}

// BreakerSnapshot is the observable breaker state, for health
// endpoints and tests.
type BreakerSnapshot struct {
	State BreakerState
	// WindowFill and WindowDegraded describe the sliding window
	// (meaningful while closed).
	WindowFill, WindowDegraded int
	// Trips counts closed->open transitions since construction.
	Trips int
	// ProbeStreak is the consecutive-success count of the current
	// half-open phase.
	ProbeStreak int
}

// breaker is the per-pool (per simulated device) circuit breaker: a
// sliding window of device-solve outcomes, a cooldown, and a half-open
// probing phase. All methods are safe for concurrent use.
type breaker struct {
	pol BreakerPolicy
	now func() time.Time

	mu       sync.Mutex //tridlint:lockrank 40
	state    BreakerState
	window   []bool // true = degraded
	idx      int    // next write position
	fill     int    // valid entries
	degraded int    // degraded entries among the valid ones
	openedAt time.Time
	probing  bool // a half-open probe is in flight
	streak   int  // consecutive successful probes
	trips    int
}

// newBreaker builds the breaker; defNow is the pool's injected clock,
// used when the policy does not override it. (This package never reads
// time.Now directly — the clockinject analyzer enforces it.)
func newBreaker(pol BreakerPolicy, defNow func() time.Time) *breaker {
	now := pol.Clock
	if now == nil {
		now = defNow
	}
	return &breaker{pol: pol, now: now, window: make([]bool, pol.window())}
}

// route decides where one request goes. device=false means the CPU
// fallback; probe=true marks a half-open device probe whose outcome
// MUST be reported through record (or abandon, if the solve was
// cancelled) to unblock further probing.
func (b *breaker) route() (device, probe bool) {
	if b.pol.Disabled {
		return true, false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true, false
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.pol.cooldown() {
			return false, false
		}
		b.state = BreakerHalfOpen
		b.streak = 0
		fallthrough
	default: // BreakerHalfOpen
		if b.probing {
			return false, false
		}
		b.probing = true
		return true, true
	}
}

// record reports the outcome of a device solve: degraded is the
// breaker's failure signal (fault activity or an ErrFaulted-class
// error). Cancelled solves must call abandon instead — they say
// nothing about device health.
func (b *breaker) record(probe, degraded bool) {
	if b.pol.Disabled {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if probe {
		b.probing = false
		if b.state != BreakerHalfOpen {
			return // a trip raced the probe; its outcome is moot
		}
		if degraded {
			b.trip()
			return
		}
		b.streak++
		if b.streak >= b.pol.probeSuccesses() {
			b.state = BreakerClosed
			b.resetWindow()
		}
		return
	}
	if b.state != BreakerClosed {
		return // stale pre-trip completion
	}
	if old := b.window[b.idx]; b.fill == len(b.window) && old {
		b.degraded--
	}
	b.window[b.idx] = degraded
	b.idx = (b.idx + 1) % len(b.window)
	if b.fill < len(b.window) {
		b.fill++
	}
	if degraded {
		b.degraded++
	}
	if b.fill >= b.pol.minSamples() &&
		float64(b.degraded) >= b.pol.tripRatio()*float64(b.fill) {
		b.trip()
	}
}

// abandon releases a probe slot without judging the device (the probe
// solve was cancelled by its caller before completing).
func (b *breaker) abandon(probe bool) {
	if !probe || b.pol.Disabled {
		return
	}
	b.mu.Lock()
	b.probing = false
	b.mu.Unlock()
}

// trip opens the breaker (callers hold b.mu).
func (b *breaker) trip() {
	b.state = BreakerOpen
	b.openedAt = b.now()
	b.trips++
	b.streak = 0
	b.resetWindow()
}

func (b *breaker) resetWindow() {
	clear(b.window)
	b.idx, b.fill, b.degraded = 0, 0, 0
}

// snapshot returns the observable state.
func (b *breaker) snapshot() BreakerSnapshot {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerSnapshot{
		State:          b.state,
		WindowFill:     b.fill,
		WindowDegraded: b.degraded,
		Trips:          b.trips,
		ProbeStreak:    b.streak,
	}
}
