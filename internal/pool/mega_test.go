package pool

import (
	"context"
	"testing"
	"time"
)

// TestMegaStationsIndependent pins the megabatch-station contract:
// AcquireMega leases out of its own station with its own builder and
// capacity, so megabatch traffic never competes with direct traffic
// for instances, and the two service-time estimates stay separate.
func TestMegaStationsIndependent(t *testing.T) {
	f := &fakeFactory{}
	mega := &fakeFactory{}
	p := newTestPool(Config{Capacity: 1, QueueLimit: -1}, f, 0)
	p.MegaBuild(mega.build)
	ctx := context.Background()

	// Exhaust the regular station; the mega station must still admit.
	ld, err := p.Acquire(ctx, 64, 128)
	if err != nil {
		t.Fatalf("direct acquire: %v", err)
	}
	lm, err := p.AcquireMega(ctx, 64, 128)
	if err != nil {
		t.Fatalf("mega acquire with direct station exhausted: %v", err)
	}
	if fb, _ := f.counts(); fb != 1 {
		t.Fatalf("regular builder built %d, want 1", fb)
	}
	if mb, _ := mega.counts(); mb != 1 {
		t.Fatalf("mega builder built %d, want 1", mb)
	}

	// Same-shape second mega acquire bounces off the mega station's
	// own capacity (QueueLimit<0 = no queueing).
	if _, err := p.AcquireMega(ctx, 64, 128); err == nil {
		t.Fatal("second mega acquire should overload its own station")
	}

	// EWMAs are independent.
	ld.Release(10 * time.Millisecond)
	lm.Release(70 * time.Millisecond)
	if svc, ok := p.ServiceTime(64, 128); !ok || svc != 10*time.Millisecond {
		t.Fatalf("direct service time = %v ok=%v, want 10ms", svc, ok)
	}
	if svc, ok := p.ServiceTimeMega(64, 128); !ok || svc != 70*time.Millisecond {
		t.Fatalf("mega service time = %v ok=%v, want 70ms", svc, ok)
	}

	// Stats name both stations and tell them apart.
	st := p.Stats()
	if st.Shapes != 2 {
		t.Fatalf("Shapes = %d, want 2 stations for one shape", st.Shapes)
	}
	var sawMega, sawDirect bool
	for _, sh := range st.PerShape {
		if sh.M != 64 || sh.N != 128 {
			t.Fatalf("unexpected shape %dx%d", sh.M, sh.N)
		}
		if sh.Mega {
			sawMega = true
		} else {
			sawDirect = true
		}
	}
	if !sawMega || !sawDirect {
		t.Fatalf("PerShape missing a station kind: mega=%v direct=%v", sawMega, sawDirect)
	}

	if err := p.Close(context.Background()); err != nil {
		t.Fatalf("close: %v", err)
	}
	// The close hook is pool-wide — only construction differs per
	// station — so teardown closes both solvers through it.
	if _, fc := f.counts(); fc != 2 {
		t.Fatalf("close count = %d, want both stations' solvers (2)", fc)
	}
}

// TestMegaWarmFallsBackToBuild pins the nil-hook default: without
// MegaBuild, WarmMega builds through the regular hook.
func TestMegaWarmFallsBackToBuild(t *testing.T) {
	f := &fakeFactory{}
	p := newTestPool(Config{Capacity: 2}, f, 0)
	if err := p.WarmMega(8, 64); err != nil {
		t.Fatalf("WarmMega: %v", err)
	}
	if fb, _ := f.counts(); fb != 2 {
		t.Fatalf("built %d, want capacity 2", fb)
	}
	_ = p.Close(context.Background())
}
