package pool

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"
)

// trackingFactory records every solver instance it builds and closes,
// so the hammer below can prove lifecycle exactness: each built solver
// closed exactly once, none leaked, none double-torn-down.
type trackingFactory struct {
	mu     sync.Mutex
	nextID int
	built  map[int]bool // id -> still open
	double int
}

func newTrackingFactory() *trackingFactory {
	return &trackingFactory{built: make(map[int]bool)}
}

func (f *trackingFactory) build(m, n int) (*fakeSolver, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.nextID++
	f.built[f.nextID] = true
	return &fakeSolver{m: m, n: n, id: f.nextID}, nil
}

func (f *trackingFactory) close(s *fakeSolver) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.built[s.id] {
		f.double++
		return nil
	}
	f.built[s.id] = false
	return nil
}

// audit returns (open, doubleClosed): solvers built but never closed,
// and close calls on already-closed solvers.
func (f *trackingFactory) audit() (open, double int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, isOpen := range f.built {
		if isOpen {
			open++
		}
	}
	return open, f.double
}

// TestCloseRacingEvictions is the cordon-mid-checkout hammer: many
// goroutines churn leases across more shapes than MaxShapes allows, so
// LRU station evictions — the same teardown path a fleet cordon drives
// — constantly race checkouts, while Close fires mid-traffic. After
// everything settles, every solver ever built must have been closed
// exactly once (no leaked leases, no double teardown), and no
// goroutine may survive.
func TestCloseRacingEvictions(t *testing.T) {
	base := runtime.NumGoroutine()
	f := newTrackingFactory()
	p := New(Config{Capacity: 2, QueueLimit: 4, MaxShapes: 3}, f.build, f.close, nil)

	shapes := [][2]int{{1, 32}, {2, 32}, {3, 32}, {4, 32}, {5, 32}, {6, 32}}
	const workers = 24
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := 0; i < 200; i++ {
				mn := shapes[(g*7+i)%len(shapes)]
				ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
				l, err := p.Acquire(ctx, mn[0], mn[1])
				cancel()
				if err != nil {
					if errors.Is(err, ErrClosed) {
						return // pool shut down beneath us: expected
					}
					if errors.Is(err, ErrOverloaded) || errors.Is(err, context.DeadlineExceeded) {
						continue
					}
					t.Errorf("acquire %v: unexpected error %v", mn, err)
					return
				}
				if i%3 == 0 {
					runtime.Gosched() // hold the lease across a scheduling point
				}
				l.Release(time.Microsecond)
			}
		}(g)
	}
	close(start)

	// Let the hammer run, then close mid-traffic with a generous drain
	// budget: the drain must win against in-flight churn without
	// leaking or double-closing anything.
	time.Sleep(10 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := p.Close(ctx); err != nil {
		t.Fatalf("close: %v", err)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	open, double := f.audit()
	if open != 0 {
		t.Errorf("%d solver(s) built but never closed (leaked lease or lost eviction)", open)
	}
	if double != 0 {
		t.Errorf("%d double-teardown(s): a solver was closed twice", double)
	}
	if s := p.Stats(); s.InFlight != 0 || s.QueueDepth != 0 {
		t.Errorf("pool did not settle: %+v", s)
	}

	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d > %d\n%s", runtime.NumGoroutine(), base,
				buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestPerShapeStats checks the per-shape congestion snapshot: built,
// leased and queued counts per station, sorted by shape, with the
// service-time estimate exposed once observed.
func TestPerShapeStats(t *testing.T) {
	f := &fakeFactory{}
	p := newTestPool(Config{Capacity: 1, QueueLimit: 4}, f, 0)
	ctx := context.Background()

	// Station (2, 64): one leased solver and one queued waiter.
	l, err := p.Acquire(ctx, 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	queued := make(chan struct{})
	go func() {
		l2, err := p.Acquire(ctx, 2, 64)
		if err == nil {
			l2.Release(0)
		}
		close(queued)
	}()
	waitFor(t, func() bool { return p.Stats().QueueDepth == 1 })

	// Station (4, 32): idle with an observed service time.
	l3, err := p.Acquire(ctx, 4, 32)
	if err != nil {
		t.Fatal(err)
	}
	l3.Release(3 * time.Millisecond)

	s := p.Stats()
	if len(s.PerShape) != 2 {
		t.Fatalf("PerShape has %d entries, want 2: %+v", len(s.PerShape), s.PerShape)
	}
	small, big := s.PerShape[0], s.PerShape[1]
	if small.M != 2 || big.M != 4 {
		t.Fatalf("PerShape not sorted by shape: %+v", s.PerShape)
	}
	if small.Built != 1 || small.Leased != 1 || small.QueueDepth != 1 {
		t.Errorf("busy shape stats = %+v, want built/leased/queued 1/1/1", small)
	}
	if big.Leased != 0 || big.QueueDepth != 0 {
		t.Errorf("idle shape stats = %+v, want nothing leased or queued", big)
	}
	if big.ServiceTime != 3*time.Millisecond {
		t.Errorf("idle shape ServiceTime = %v, want the observed 3ms", big.ServiceTime)
	}

	l.Release(0)
	<-queued
	if err := p.Close(ctx); err != nil {
		t.Fatal(err)
	}
}
