package fleet_test

import (
	"context"
	"errors"
	"math"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"testing"
	"time"

	"gputrid"
	"gputrid/internal/core"
	"gputrid/internal/fleet"
	"gputrid/internal/gpusim"
	"gputrid/internal/workload"
)

// distReference runs the same distributed solve on a fault-free
// topology of the same width — the bitwise reference the fleet-served
// result must reproduce regardless of deaths and migrations.
func distReference(t *testing.T, devices int, b *gputrid.Batch[float64]) []float64 {
	t.Helper()
	topo, err := gpusim.UniformTopology(devices, gpusim.NVLinkMesh(), gpusim.GTX480())
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.NewDistSolver[float64](core.DistConfig{Topology: topo, Slabs: devices}, b.M, b.N)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ref := make([]float64, b.M*b.N)
	if _, err := s.SolveInto(context.Background(), ref, b); err != nil {
		t.Fatal(err)
	}
	return ref
}

func TestFleetSolveDistributed(t *testing.T) {
	vc := fleet.NewVirtualClock(time.Unix(0, 0))
	ff := &fakeFactory{}
	f := newTestFleet(t, fleet.Config{Devices: 3}, ff, vc)

	const m, n = 2, 193
	b := workload.Batch[float64](workload.DiagDominant, m, n, 7)
	res, err := f.SolveDistributed(context.Background(), b)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Live) != 3 || res.Report.Slabs != 3 || len(res.Report.Deaths) != 0 {
		t.Fatalf("unexpected result: live %v report %+v", res.Live, res.Report)
	}
	ref := distReference(t, 3, b)
	for i := range ref {
		if res.X[i] != ref[i] {
			t.Fatalf("element %d differs bitwise from fault-free reference: %x vs %x",
				i, math.Float64bits(res.X[i]), math.Float64bits(ref[i]))
		}
	}
	st := f.Stats()
	if st.DistSolves != 1 || st.DistDeaths != 0 || st.Served != 1 {
		t.Errorf("stats %+v, want 1 distributed solve served", st)
	}
	// A second same-shape solve reuses the cached solver.
	if _, err := f.SolveDistributed(context.Background(), b); err != nil {
		t.Fatal(err)
	}
	if st := f.Stats(); st.DistSolves != 2 {
		t.Errorf("DistSolves = %d after second solve, want 2", st.DistSolves)
	}
}

// TestFleetDistributedDeviceDeath is the integration contract of the
// issue: a device dying mid-distributed-solve must (a) not fail the
// solve, (b) leave the answer bitwise identical to the fault-free run,
// and (c) surface into the fleet's health feed so the next Tick
// cordons the failure domain while the solve's result is already
// served.
func TestFleetDistributedDeviceDeath(t *testing.T) {
	const devices, victim = 3, 1
	topo, err := gpusim.UniformTopology(devices, gpusim.NVLinkMesh(), gpusim.GTX480())
	if err != nil {
		t.Fatal(err)
	}
	topo.Device(victim).Faults = &gpusim.Injector{
		Schedule: []gpusim.ScheduledFault{{Kind: gpusim.FaultAbort, Repeat: 1 << 30}},
	}
	vc := fleet.NewVirtualClock(time.Unix(0, 0))
	ff := &fakeFactory{}
	f := newTestFleet(t, fleet.Config{Devices: devices, DistTopology: topo}, ff, vc)

	const m, n = 2, 193
	b := workload.Batch[float64](workload.DiagDominant, m, n, 7)
	res, err := f.SolveDistributed(context.Background(), b)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Report.Deaths) != 1 || res.Report.Deaths[0] != victim {
		t.Fatalf("Deaths = %v, want [%d]", res.Report.Deaths, victim)
	}
	if res.Report.Migrations == 0 {
		t.Error("death recovered without any migration recorded")
	}
	ref := distReference(t, devices, b)
	for i := range ref {
		if res.X[i] != ref[i] {
			t.Fatalf("element %d differs bitwise from fault-free reference: %x vs %x",
				i, math.Float64bits(res.X[i]), math.Float64bits(ref[i]))
		}
	}

	// The death was injected into the health feed during the solve;
	// the next control-loop step cordons the victim.
	f.Tick()
	f.Quiesce()
	st := f.Stats()
	if st.DistDeaths != 1 {
		t.Errorf("DistDeaths = %d, want 1", st.DistDeaths)
	}
	if got := st.Devices[victim].State; got != fleet.StateDead {
		t.Errorf("victim device state = %v after Tick+drain, want dead", got)
	}
	if st.Cordons != 1 {
		t.Errorf("Cordons = %d, want 1", st.Cordons)
	}

	// Survivors keep serving distributed solves: the partition is a
	// function of the fleet width, so the degraded fleet reproduces the
	// same bits.
	res2, err := f.SolveDistributed(context.Background(), b)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Live) != devices-1 {
		t.Fatalf("post-cordon live set %v, want %d survivors", res2.Live, devices-1)
	}
	for i := range ref {
		if res2.X[i] != ref[i] {
			t.Fatalf("post-cordon element %d differs bitwise: %x vs %x",
				i, math.Float64bits(res2.X[i]), math.Float64bits(ref[i]))
		}
	}
}

func TestFleetDistributedNoDevices(t *testing.T) {
	vc := fleet.NewVirtualClock(time.Unix(0, 0))
	ff := &fakeFactory{}
	f := newTestFleet(t, fleet.Config{Devices: 2}, ff, vc)
	for id := 0; id < 2; id++ {
		f.Inject(gpusim.HealthEvent{Device: id, Kind: gpusim.HealthXID, XID: 79})
	}
	f.Tick()
	f.Quiesce()

	b := workload.Batch[float64](workload.DiagDominant, 1, 64, 1)
	if _, err := f.SolveDistributed(context.Background(), b); !errors.Is(err, fleet.ErrNoDevices) {
		t.Fatalf("err = %v, want ErrNoDevices", err)
	}
	if err := f.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := f.SolveDistributed(context.Background(), b); !errors.Is(err, fleet.ErrFleetClosed) {
		t.Fatalf("err = %v, want ErrFleetClosed", err)
	}
}

func TestFleetDistributedTopologyMismatch(t *testing.T) {
	topo, err := gpusim.UniformTopology(2, gpusim.PCIe2(), gpusim.GTX480())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fleet.New(fleet.Config{Devices: 3, DistTopology: topo}); err == nil {
		t.Fatal("accepted a topology narrower than the fleet")
	}
}

// drainBackend models the pool drain protocol the fleet relies on:
// Solve parks until the backend is drained (Close) or the request's
// context ends, so a cordon's force-cancel genuinely interrupts
// in-flight work and triggers re-routes.
type drainBackend struct {
	id      int
	drained chan struct{}
	once    sync.Once
}

func newDrainBackend(id int) *drainBackend {
	return &drainBackend{id: id, drained: make(chan struct{})}
}

func (b *drainBackend) Solve(ctx context.Context, _ *gputrid.Batch[float64]) (*gputrid.PoolResult[float64], error) {
	select {
	case <-b.drained:
		return nil, gputrid.ErrPoolClosed
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (b *drainBackend) SolveMegabatch(ctx context.Context, _ *gputrid.Megabatch[float64]) error {
	select {
	case <-b.drained:
		return gputrid.ErrPoolClosed
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (b *drainBackend) Warm(m, n int) error                        { return nil }
func (b *drainBackend) Stats() gputrid.PoolStats                   { return gputrid.PoolStats{} }
func (b *drainBackend) ServiceTime(m, n int) (time.Duration, bool) { return time.Millisecond, true }
func (b *drainBackend) Breaker() gputrid.BreakerSnapshot           { return gputrid.BreakerSnapshot{} }
func (b *drainBackend) Close(ctx context.Context) error {
	b.once.Do(func() { close(b.drained) })
	return nil
}

// TestCloseRacesDrainReroute is the shutdown goroutine-settle test: a
// cordon-triggered drain force-fails in-flight solves, whose requests
// re-route to the other device — and Fleet.Close lands in the middle
// of that re-route storm. Whatever interleaving the race takes, every
// request goroutine and every internal drain goroutine must exit: the
// process settles back to its pre-fleet goroutine count.
func TestCloseRacesDrainReroute(t *testing.T) {
	baseline := runtime.NumGoroutine()

	vc := fleet.NewVirtualClock(time.Unix(0, 0))
	cfg := fleet.Config{
		Devices:      2,
		Clock:        vc,
		DrainTimeout: 50 * time.Millisecond,
		Factory:      func(id int) (fleet.Backend, error) { return newDrainBackend(id), nil },
	}
	f, err := fleet.New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Park a pile of requests across both devices.
	b := workload.Batch[float64](workload.DiagDominant, 1, 8, 1)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Every outcome is an error here (the backends never
			// complete a solve); the assertion is purely that the call
			// returns.
			_, _ = f.Solve(context.Background(), b)
		}()
	}

	// Cordon device 0: its drain force-fails the parked solves, which
	// re-route onto device 1 — while Close races the whole thing.
	f.Inject(gpusim.HealthEvent{Device: 0, Kind: gpusim.HealthXID, XID: 79})
	var closeWG sync.WaitGroup
	closeWG.Add(2)
	go func() {
		defer closeWG.Done()
		f.Tick()
	}()
	go func() {
		defer closeWG.Done()
		_ = f.Close(context.Background())
	}()
	closeWG.Wait()
	wg.Wait()

	// Settle: every fleet goroutine (drains, request retries) must be
	// gone. Allow a generous window — the drain timeout bounds the
	// slowest exit path.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > baseline {
		var buf strings.Builder
		_ = pprof.Lookup("goroutine").WriteTo(&buf, 1)
		t.Fatalf("goroutines did not settle: %d > baseline %d\n%s", got, baseline, buf.String())
	}
}
