package fleet

import (
	"context"
	"sync"

	"gputrid"
	"gputrid/internal/core"
	"gputrid/internal/gpusim"
)

// DistResult is one fleet-served distributed solve: the solution plus
// the core layer's full recovery report and the fleet devices the
// solve started on.
type DistResult struct {
	// X is the solution, M contiguous N-row systems.
	X []float64
	// Report is the distributed solve's recovery report: final slab
	// assignment, deaths, migrations, degradations, interconnect
	// traffic, and modeled makespans.
	Report core.DistReport
	// Live is the (ascending) fleet device set the solve was launched
	// across — the servable devices at admission time. Devices that
	// died mid-solve are still listed here; Report.Deaths says which.
	Live []int
}

// distPlane is the fleet's simulated multi-device fabric and the
// shape-keyed distributed solvers over it. It is lazily built on the
// first SolveDistributed call so fleets that never serve huge-N
// requests pay nothing.
//
// The plane maps topology device i to fleet device i, one to one: a
// device death during a distributed solve surfaces as a HealthEvent
// whose Device is the fleet id, so the next Tick cordons exactly the
// failure domain that died — while the in-flight distributed solve
// completes on the survivors.
type distPlane struct {
	mu      sync.Mutex
	topo    *gpusim.Topology
	solvers map[[2]int]*distEntry
}

// distEntry serializes one shape's solver: DistSolver is single-flight
// (ErrDistBusy), so concurrent same-shape fleet requests queue on the
// entry mutex instead of failing.
type distEntry struct {
	mu sync.Mutex
	s  *core.DistSolver[float64]
}

// SolveDistributed solves one batch across every servable device's
// share of the simulated interconnect fabric, using separator-based
// domain decomposition (see core.DistSolver). The partition width is
// always Config.Devices — a pure function of the fleet size, never of
// which devices happen to be live — so the answer is bitwise identical
// whether the solve runs on the full fleet, a degraded remnant, or
// migrates slabs mid-solve after a device death.
//
// A device that dies mid-solve is reported to the fleet's health feed
// immediately (before its slab is migrated), so the next Tick cordons
// it while this solve is still completing on the survivors. The solve
// itself only fails when the caller's context ends or recovery is
// exhausted with NoDegrade semantics.
func (f *Fleet) SolveDistributed(ctx context.Context, b *gputrid.Batch[float64]) (*DistResult, error) {
	live, err := f.admitDistributed(int64(b.M))
	if err != nil {
		return nil, err
	}
	defer f.inflightTotal.Add(-int64(b.M))

	ent, err := f.distEntry(b.M, b.N)
	if err != nil {
		f.rejected.Add(1)
		return nil, err
	}

	dst := make([]float64, b.M*b.N)
	ent.mu.Lock()
	rep, err := ent.s.SolveOn(ctx, dst, b, live)
	ent.mu.Unlock()
	if err != nil {
		f.rejected.Add(1)
		return nil, err
	}
	f.served.Add(1)
	f.distSolves.Add(1)
	f.distDeaths.Add(uint64(len(rep.Deaths)))
	f.distMigrations.Add(uint64(rep.Migrations))
	f.distDegraded.Add(uint64(len(rep.Degraded)))
	f.distIntegrity.Add(uint64(rep.IntegrityRetries))
	f.distHedges.Add(uint64(rep.Hedges))
	f.distHedgeWins.Add(uint64(rep.HedgeWins))
	// Feed the gray-failure detector: silent stragglers and flaky
	// links leave no driver event, only statistical residue in these
	// reports.
	f.observeGray(rep)
	return &DistResult{X: dst, Report: *rep, Live: live}, nil
}

// admitDistributed snapshots the servable device set and charges the
// request's weight (M systems) into the router's load signals, exactly
// as pick does for pool-served requests — so the autoscaler and stats
// see distributed load too.
func (f *Fleet) admitDistributed(weight int64) ([]int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil, ErrFleetClosed
	}
	var live []int
	for _, d := range f.devices {
		if d.state.servable() && d.backend != nil {
			live = append(live, d.id)
		}
	}
	if len(live) == 0 {
		f.noDevice.Add(1)
		return nil, ErrNoDevices
	}
	f.offeredInterval += int(weight)
	if cur := f.inflightTotal.Add(weight); cur > f.peakInterval {
		f.peakInterval = cur
	}
	return live, nil
}

// distEntry returns the serialized distributed solver for a shape,
// building the simulation plane and the solver on first use.
func (f *Fleet) distEntry(m, n int) (*distEntry, error) {
	f.dist.mu.Lock()
	defer f.dist.mu.Unlock()
	if f.dist.topo == nil {
		topo := f.cfg.DistTopology
		if topo == nil {
			var err error
			topo, err = gpusim.UniformTopology(f.cfg.Devices, gpusim.NVLinkMesh(), gpusim.GTX480())
			if err != nil {
				return nil, err
			}
		}
		f.dist.topo = topo
		f.dist.solvers = make(map[[2]int]*distEntry)
	}
	key := [2]int{m, n}
	if ent, ok := f.dist.solvers[key]; ok {
		return ent, nil
	}
	s, err := core.NewDistSolver[float64](core.DistConfig{
		Topology: f.dist.topo,
		Slabs:    f.cfg.Devices,
		Retry:    f.cfg.DistRetry,
		Hedge:    f.cfg.DistHedge,
		Health:   f.Inject,
		// Topology device i is fleet device i; events land on the
		// failure domain that died.
		HealthDevice: func(topoIdx int) int { return topoIdx },
	}, m, n)
	if err != nil {
		return nil, err
	}
	ent := &distEntry{s: s}
	f.dist.solvers[key] = ent
	return ent, nil
}

// closeDistributed tears down the shape-keyed distributed solvers.
func (f *Fleet) closeDistributed() {
	f.dist.mu.Lock()
	defer f.dist.mu.Unlock()
	for _, ent := range f.dist.solvers {
		ent.mu.Lock()
		_ = ent.s.Close()
		ent.mu.Unlock()
	}
	f.dist.solvers = nil
	f.dist.topo = nil
}
