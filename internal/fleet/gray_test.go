package fleet_test

import (
	"context"
	"math"
	"testing"
	"time"

	"gputrid/internal/core"
	"gputrid/internal/fleet"
	"gputrid/internal/gpusim"
	"gputrid/internal/workload"
)

// grayTopo builds the distributed fabric for gray-failure tests:
// `devices` GTX480s on an NVLink mesh, with one silent straggler
// (SlowFactor, no health event) and/or one flaky link (seeded
// corruption on every transfer touching the victim device).
func grayTopo(t *testing.T, devices, straggler int, slow float64, flaky int, rate float64) *gpusim.Topology {
	t.Helper()
	devs := make([]*gpusim.Device, devices)
	for i := range devs {
		devs[i] = gpusim.GTX480()
		if i == straggler {
			devs[i].SlowFactor = slow
		}
	}
	topo, err := gpusim.NewTopology(gpusim.NVLinkMesh(), devs...)
	if err != nil {
		t.Fatal(err)
	}
	if flaky >= 0 {
		topo.Links = &gpusim.LinkInjector{
			Seed:    99,
			Rate:    rate,
			Kinds:   []gpusim.LinkFaultKind{gpusim.LinkCorrupt},
			Devices: []int{flaky},
		}
	}
	return topo
}

// A silently slow device — correct answers, no driver event, just a
// SlowFactor on its modeled kernel time — must be diagnosed from
// distributed-solve latency residue and cordoned by the control loop,
// while every response stays bitwise identical to the fault-free
// fleet's.
func TestGrayStragglerDetectedAndCordoned(t *testing.T) {
	const devices, straggler = 4, 2
	vc := fleet.NewVirtualClock(time.Unix(0, 0))
	ff := &fakeFactory{}
	f := newTestFleet(t, fleet.Config{
		Devices:      devices,
		DistTopology: grayTopo(t, devices, straggler, 20, -1, 0),
		// Hedging off so the straggler keeps its slab and its latency
		// signature stays in the per-device observations.
		DistHedge: core.HedgePolicy{Disable: true},
		Gray:      fleet.GrayPolicy{MinSamples: 2},
	}, ff, vc)

	const m, n = 2, 193
	b := workload.Batch[float64](workload.DiagDominant, m, n, 11)
	ref := distReference(t, devices, b)

	for i := 0; i < 3; i++ {
		res, err := f.SolveDistributed(context.Background(), b)
		if err != nil {
			t.Fatal(err)
		}
		for j := range ref {
			if res.X[j] != ref[j] {
				t.Fatalf("solve %d element %d differs bitwise from fault-free reference: %x vs %x",
					i, j, math.Float64bits(res.X[j]), math.Float64bits(ref[j]))
			}
		}
		vc.Advance(10 * time.Millisecond)
		f.Tick()
	}
	f.Quiesce()

	st := f.Stats()
	if st.GrayStragglers != 1 {
		t.Fatalf("GrayStragglers = %d, want 1", st.GrayStragglers)
	}
	if got := st.Devices[straggler].State; got != fleet.StateDead && got != fleet.StateCordoned {
		t.Fatalf("straggler device state %v, want cordoned/dead", got)
	}
	if st.Devices[straggler].GrayRatio < 2.5 {
		t.Fatalf("straggler EWMA ratio %.2f, want >= 2.5", st.Devices[straggler].GrayRatio)
	}
	for id, d := range st.Devices {
		if id != straggler && d.State != fleet.StateActive {
			t.Fatalf("healthy device %d left active (state %v)", id, d.State)
		}
	}
	if st.Cordons != 1 {
		t.Fatalf("Cordons = %d, want exactly the straggler's", st.Cordons)
	}
}

// With the detector disabled the same straggler must keep serving:
// gray evidence alone never cordons unless the policy says so.
func TestGrayDetectorDisable(t *testing.T) {
	const devices, straggler = 4, 1
	vc := fleet.NewVirtualClock(time.Unix(0, 0))
	ff := &fakeFactory{}
	f := newTestFleet(t, fleet.Config{
		Devices:      devices,
		DistTopology: grayTopo(t, devices, straggler, 20, -1, 0),
		DistHedge:    core.HedgePolicy{Disable: true},
		Gray:         fleet.GrayPolicy{Disable: true},
	}, ff, vc)

	b := workload.Batch[float64](workload.DiagDominant, 2, 129, 5)
	for i := 0; i < 3; i++ {
		if _, err := f.SolveDistributed(context.Background(), b); err != nil {
			t.Fatal(err)
		}
		vc.Advance(10 * time.Millisecond)
		f.Tick()
	}
	st := f.Stats()
	if st.GrayStragglers != 0 || st.Cordons != 0 {
		t.Fatalf("disabled detector still acted: stragglers %d cordons %d",
			st.GrayStragglers, st.Cordons)
	}
	if st.Devices[straggler].State != fleet.StateActive {
		t.Fatalf("straggler state %v, want active with detector off", st.Devices[straggler].State)
	}
}

// A link that keeps corrupting transfers — every corruption caught
// and repaired by the solver's checksum layer, so no answer is ever
// wrong — must still get its device cordoned once the integrity-retry
// residue crosses the policy limit.
func TestGrayFlakyLinkDetectedAndCordoned(t *testing.T) {
	const devices, victim = 4, 1
	vc := fleet.NewVirtualClock(time.Unix(0, 0))
	ff := &fakeFactory{}
	f := newTestFleet(t, fleet.Config{
		Devices:      devices,
		DistTopology: grayTopo(t, devices, -1, 0, victim, 0.45),
		DistHedge:    core.HedgePolicy{Disable: true},
		Gray:         fleet.GrayPolicy{IntegrityLimit: 3},
	}, ff, vc)

	const m, n = 2, 257
	b := workload.Batch[float64](workload.DiagDominant, m, n, 23)
	ref := distReference(t, devices, b)

	degraded := 0
	for i := 0; i < 8; i++ {
		res, err := f.SolveDistributed(context.Background(), b)
		if err != nil {
			t.Fatal(err)
		}
		degraded += len(res.Report.Degraded)
		if len(res.Report.Degraded) == 0 {
			// Every corruption was repaired in place: the response must
			// be bitwise identical to the fault-free fleet's.
			for j := range ref {
				if res.X[j] != ref[j] {
					t.Fatalf("solve %d element %d differs bitwise: %x vs %x",
						i, j, math.Float64bits(res.X[j]), math.Float64bits(ref[j]))
				}
			}
		}
		for j := range res.X {
			if math.IsNaN(res.X[j]) {
				t.Fatalf("solve %d: NaN escaped into a served response", i)
			}
		}
		vc.Advance(10 * time.Millisecond)
		f.Tick()
		if f.Stats().GrayLinkFlaky > 0 {
			break
		}
	}
	f.Quiesce()

	st := f.Stats()
	if st.GrayLinkFlaky != 1 {
		t.Fatalf("GrayLinkFlaky = %d, want 1 (degraded slabs seen: %d)", st.GrayLinkFlaky, degraded)
	}
	if got := st.Devices[victim].State; got != fleet.StateDead && got != fleet.StateCordoned {
		t.Fatalf("flaky-link device state %v, want cordoned/dead", got)
	}
	if st.DistIntegrityRetries < 3 {
		t.Fatalf("DistIntegrityRetries = %d, want >= IntegrityLimit", st.DistIntegrityRetries)
	}
	if st.Devices[victim].IntegrityRetries < 3 {
		t.Fatalf("victim attributed %d integrity retries, want >= 3", st.Devices[victim].IntegrityRetries)
	}
	for id, d := range st.Devices {
		if id != victim && d.IntegrityRetries != 0 {
			t.Fatalf("healthy device %d attributed %d integrity retries", id, d.IntegrityRetries)
		}
	}
}

// A revived device starts with a clean gray slate: the diagnosis
// belonged to the hardware state the reset wiped, so stale evidence
// must not re-cordon it on its first healthy solve.
func TestGrayEvidenceResetOnRevive(t *testing.T) {
	const devices, straggler = 4, 0
	vc := fleet.NewVirtualClock(time.Unix(0, 0))
	ff := &fakeFactory{}
	topo := grayTopo(t, devices, straggler, 20, -1, 0)
	f := newTestFleet(t, fleet.Config{
		Devices:      devices,
		DistTopology: topo,
		DistHedge:    core.HedgePolicy{Disable: true},
		Gray:         fleet.GrayPolicy{MinSamples: 2},
		Probation:    10 * time.Millisecond,
	}, ff, vc)

	b := workload.Batch[float64](workload.DiagDominant, 2, 129, 3)
	for i := 0; i < 3; i++ {
		if _, err := f.SolveDistributed(context.Background(), b); err != nil {
			t.Fatal(err)
		}
		vc.Advance(time.Millisecond)
		f.Tick()
	}
	f.Quiesce()
	if st := f.Stats(); st.GrayStragglers != 1 {
		t.Fatalf("setup: GrayStragglers = %d, want 1", st.GrayStragglers)
	}

	// The operator replaces the card (the modeled slowdown is gone)
	// and heals the device.
	topo.Device(straggler).SlowFactor = 0
	f.Inject(gpusim.HealthEvent{Device: straggler, Kind: gpusim.HealthHealed})
	vc.Advance(time.Millisecond)
	f.Tick()
	f.Quiesce()

	st := f.Stats()
	if st.Devices[straggler].State != fleet.StateProbation && st.Devices[straggler].State != fleet.StateActive {
		t.Fatalf("healed device state %v, want probation/active", st.Devices[straggler].State)
	}
	if st.Devices[straggler].GrayRatio != 0 {
		t.Fatalf("revived device kept stale gray ratio %.2f", st.Devices[straggler].GrayRatio)
	}
}
