package fleet

import "gputrid"

// pick selects the best untried servable device and marks it in the
// caller's tried-bitmask. Selection is a strict preference order:
//
//  1. tier — Active and Probation devices first, thermally
//     Deprioritized devices only when no device of the first tier is
//     available (they compute correctly but slowly);
//  2. breaker — within a tier, devices whose circuit breaker is closed
//     (device path healthy) beat devices serving off their CPU
//     fallback;
//  3. load — least weighted work in flight. The unit is *systems*,
//     not requests: a direct request weighs 1, a coalesced megabatch
//     weighs its system count (weight), so the router does not treat
//     a device holding a 48-system flight as idle. The count covers
//     both pool-queued and solving work, since the fleet's in-flight
//     span covers the pool admission wait;
//  4. rotation — full ties break round-robin: each pick starts its
//     scan one device further along, so a serial request stream (loads
//     all zero by the time the next request arrives) still spreads
//     across the healthy devices instead of pinning the lowest id.
//
// It also feeds the autoscaler's load signals: requests routed this
// interval, and the peak concurrent in-flight count.
//
// The chosen device's in-flight count is incremented by weight *here,
// under the fleet lock* — not by the caller afterwards — so a burst
// of concurrent picks each sees the loads its predecessors created
// and the burst spreads across equally-loaded devices instead of
// piling onto the lowest id. The caller owns the matching decrement
// (of the same weight) once the solve finishes. The backend is
// returned as a value captured under the lock: a concurrent cordon
// nils d.backend, so the caller must never re-read it.
func (f *Fleet) pick(tried *uint64, weight int64) (*device, Backend, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil, nil, ErrFleetClosed
	}

	var best *device
	var bestKey routeKey
	for i := 0; i < len(f.devices); i++ {
		d := f.devices[(f.rr+i)%len(f.devices)]
		if *tried&(1<<uint(d.id)) != 0 || !d.state.servable() || d.backend == nil {
			continue
		}
		key := routeKey{
			deprioritized: d.state == StateDeprioritized,
			breakerOpen:   d.backend.Breaker().State != gputrid.BreakerClosed,
			load:          d.inflight.Load(),
		}
		// Strict less: among equal keys the first device in rotated
		// scan order wins, which is what makes ties round-robin.
		if best == nil || key.less(bestKey) {
			best, bestKey = d, key
		}
	}
	f.rr++
	if best == nil {
		return nil, nil, ErrNoDevices
	}
	*tried |= 1 << uint(best.id)

	best.inflight.Add(weight)
	f.offeredInterval += int(weight)
	if cur := f.inflightTotal.Add(weight); cur > f.peakInterval {
		f.peakInterval = cur
	}
	return best, best.backend, nil
}

// routeKey orders routing candidates; less = strictly preferred (full
// ties resolve by rotated scan order in pick).
type routeKey struct {
	deprioritized bool
	breakerOpen   bool
	load          int64
}

func (a routeKey) less(b routeKey) bool {
	if a.deprioritized != b.deprioritized {
		return !a.deprioritized
	}
	if a.breakerOpen != b.breakerOpen {
		return !a.breakerOpen
	}
	return a.load < b.load
}
