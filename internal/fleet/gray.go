package fleet

import (
	"fmt"
	"sort"
	"sync"

	"gputrid/internal/core"
	"gputrid/internal/gpusim"
)

// GrayPolicy tunes the fleet's gray-failure detector. Gray failures
// are the ones no driver event announces: a device that computes
// correct answers slowly (silent straggler), or an interconnect that
// keeps corrupting transfers which the solver's end-to-end integrity
// checks catch and repair (flaky link). Both are invisible to the
// XID/ECC health machinery — the only evidence is statistical, spread
// across distributed-solve reports — so the fleet watches those
// reports and *synthesizes* HealthStraggler / HealthLinkFlaky events
// into its own feed, where the ordinary cordon/drain policy takes
// over. The zero value of every field picks the documented default.
type GrayPolicy struct {
	// Disable turns the detector off entirely.
	Disable bool
	// StragglerRatio is the EWMA per-slab modeled-latency ratio
	// (device vs. fleet median) past which a device is declared a
	// straggler; values ≤ 1 mean 2.5.
	StragglerRatio float64
	// Alpha is the EWMA smoothing factor in (0, 1]: higher weighs the
	// newest solve more. 0 means 0.4.
	Alpha float64
	// MinSamples is how many distributed solves a device must appear
	// in before its ratio is trusted — one outlier solve (cold cache,
	// unlucky slab mix) must not cordon a healthy device. 0 means 2.
	MinSamples int
	// IntegrityLimit is the cumulative integrity-retry count
	// (checksum-mismatched transfers re-exchanged by the solver) past
	// which a device's link is declared flaky; 0 means 4, negative
	// disables the link check.
	IntegrityLimit int
}

func (p GrayPolicy) stragglerRatio() float64 {
	if p.StragglerRatio <= 1 {
		return 2.5
	}
	return p.StragglerRatio
}

func (p GrayPolicy) alpha() float64 {
	if p.Alpha <= 0 || p.Alpha > 1 {
		return 0.4
	}
	return p.Alpha
}

func (p GrayPolicy) minSamples() int {
	if p.MinSamples <= 0 {
		return 2
	}
	return p.MinSamples
}

func (p GrayPolicy) integrityLimit() int {
	switch {
	case p.IntegrityLimit == 0:
		return 4
	case p.IntegrityLimit < 0:
		return 1 << 30
	default:
		return p.IntegrityLimit
	}
}

// grayDev is the detector's per-device evidence.
type grayDev struct {
	// ewma is the smoothed per-slab modeled-latency ratio vs. the
	// fleet median; samples counts the solves it aggregates.
	ewma    float64
	samples int
	// integrity and hedged accumulate the device's integrity retries
	// and hedged-away slabs across solves.
	integrity int
	hedged    int
	// stragglerSent / flakySent latch the synthesized events: the
	// evidence keeps accumulating while the device drains, and one
	// cordon per diagnosis is enough. reset() (device revival) clears
	// them so a healed device is judged on fresh evidence.
	stragglerSent bool
	flakySent     bool
}

// grayDetector folds distributed-solve reports into per-device
// gray-failure evidence. It has its own lock (acquired from the data
// plane on every distributed solve, and briefly by Stats) so the
// fleet's control-plane mutex never serializes solves.
type grayDetector struct {
	mu   sync.Mutex //tridlint:lockrank 30
	devs map[int]*grayDev
}

func (g *grayDetector) dev(id int) *grayDev {
	if g.devs == nil {
		g.devs = make(map[int]*grayDev)
	}
	d := g.devs[id]
	if d == nil {
		d = &grayDev{}
		g.devs[id] = d
	}
	return d
}

// reset clears a device's evidence and latches; called when the
// device is revived with a fresh pool, since the old diagnosis
// belongs to the hardware state that was reset away.
func (g *grayDetector) reset(id int) {
	g.mu.Lock()
	delete(g.devs, id)
	g.mu.Unlock()
}

// observeGray folds one distributed solve's per-device observations
// into the detector and synthesizes health events for devices whose
// evidence crosses the policy thresholds. Topology device indices are
// fleet device ids (the distributed plane maps them one to one), so
// synthesized events land on the right failure domain.
func (f *Fleet) observeGray(rep *core.DistReport) {
	p := f.cfg.Gray
	if p.Disable || len(rep.PerDevice) == 0 {
		return
	}

	// Per-slab modeled busy time normalizes away uneven slab counts:
	// a device holding 3 slabs is busier, not slower. The fleet
	// median is the baseline — with most devices healthy it tracks
	// true speed, and a single straggler cannot drag it.
	perSlab := make(map[int]float64, len(rep.PerDevice))
	var sample []float64
	for _, o := range rep.PerDevice {
		if o.Slabs > 0 && o.ModeledBusy > 0 {
			v := o.ModeledBusy / float64(o.Slabs)
			perSlab[o.Device] = v
			sample = append(sample, v)
		}
	}
	var median float64
	if n := len(sample); n > 0 {
		sort.Float64s(sample)
		if n%2 == 1 {
			median = sample[n/2]
		} else {
			median = (sample[n/2-1] + sample[n/2]) / 2
		}
	}

	var fire []gpusim.HealthEvent

	f.gray.mu.Lock()
	for _, o := range rep.PerDevice {
		g := f.gray.dev(o.Device)
		if v, ok := perSlab[o.Device]; ok && median > 0 && len(sample) >= 2 {
			ratio := v / median
			if g.samples == 0 {
				g.ewma = ratio
			} else {
				a := p.alpha()
				g.ewma = a*ratio + (1-a)*g.ewma
			}
			g.samples++
		}
		g.integrity += o.IntegrityRetries
		g.hedged += o.Hedged

		if !g.stragglerSent && g.samples >= p.minSamples() && g.ewma >= p.stragglerRatio() {
			g.stragglerSent = true
			f.grayStragglers.Add(1)
			fire = append(fire, gpusim.HealthEvent{
				Device: o.Device, Kind: gpusim.HealthStraggler,
				Message: fmt.Sprintf("modeled per-slab latency %.1fx fleet median over %d solves", g.ewma, g.samples),
			})
		}
		if !g.flakySent && g.integrity >= p.integrityLimit() {
			g.flakySent = true
			f.grayFlaky.Add(1)
			fire = append(fire, gpusim.HealthEvent{
				Device: o.Device, Kind: gpusim.HealthLinkFlaky,
				Message: fmt.Sprintf("%d integrity retries on this device's transfers", g.integrity),
			})
		}
	}
	f.gray.mu.Unlock()

	// Inject outside the detector lock; the next Tick cordons.
	for _, ev := range fire {
		f.Inject(ev)
	}
}

// graySnapshot copies a device's current evidence for Stats.
func (f *Fleet) graySnapshot(id int) (ratio float64, integrity, hedged int) {
	f.gray.mu.Lock()
	defer f.gray.mu.Unlock()
	g := f.gray.devs[id]
	if g == nil {
		return 0, 0, 0
	}
	return g.ewma, g.integrity, g.hedged
}
