// Package fleet is the multi-device serving control plane: N simulated
// devices, each wrapping its own warmed solver pool as an independent
// failure domain, behind a control loop that consumes typed device
// health events (gpusim.HealthEvent), applies a cordon/drain policy
// (fatal events drain the device through the pool's graceful-drain
// path, thermal events deprioritize it, healed events revive it into
// probation on a fresh pool), routes requests to the least-loaded
// healthy device with automatic re-route when a device dies beneath a
// request, and scales the active device set up and down on load
// watermarks with a cooldown.
//
// The control loop is deliberately *stepped*, not free-running: all
// policy evaluation happens in Tick, every elapsed-time decision reads
// an injectable Clock, and health events buffer in an injectable feed
// until the next Tick. Driven by a ticker and the wall clock this is a
// live control plane; driven by a scenario runner and a VirtualClock
// it is a fully deterministic, replayable one (see the scenario
// subpackage).
package fleet

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gputrid"
	"gputrid/internal/core"
	"gputrid/internal/gpusim"
)

// Typed fleet errors.
var (
	// ErrNoDevices reports that no servable device exists (every device
	// is cordoned, dead, or in standby).
	ErrNoDevices = errors.New("fleet: no servable device")
	// ErrFleetClosed reports a Solve against a closed fleet.
	ErrFleetClosed = errors.New("fleet: closed")
)

// Config sizes and tunes a fleet. The zero value of every field picks
// a sensible default (see each field); Devices is the only required
// one.
type Config struct {
	// Devices is the total number of failure domains (required ≥ 1).
	Devices int
	// InitialActive is how many devices start Active; the rest start
	// Standby for the autoscaler. 0 means all of them.
	InitialActive int
	// MinActive is the autoscaler's floor; 0 means 1.
	MinActive int

	// Factory builds one device's pool; nil means a gputrid.NewPool
	// over Pool + DeviceOptions, warmed on WarmShapes.
	Factory BackendFactory
	// Pool configures each device's pool (default factory only).
	Pool gputrid.PoolConfig
	// DeviceOptions returns extra per-device solver options — e.g. a
	// per-device fault injector seed (default factory only).
	DeviceOptions func(id int) []gputrid.Option
	// WarmShapes are pre-built on every device the factory creates.
	WarmShapes [][2]int

	// Clock drives every elapsed-time policy decision; nil means wall
	// clock.
	Clock Clock

	// CorrectedECCLimit is how many corrected-ECC events a device
	// absorbs before the controller escalates to a cordon; 0 means 8,
	// negative disables the escalation.
	CorrectedECCLimit int
	// Probation is how long a revived device must stay clean before
	// promotion to Active; 0 means 1s.
	Probation time.Duration
	// DrainTimeout bounds a cordon's graceful drain; past it in-flight
	// solves are force-cancelled through their lease contexts (they
	// re-route to healthy devices). 0 means 5s. This is a data-plane
	// safety bound and always reads the wall clock.
	DrainTimeout time.Duration
	// RerouteAttempts is the maximum number of devices one request may
	// try before its last error is returned; 0 means 3.
	RerouteAttempts int
	// DisableFaultECC stops the fleet from synthesizing corrected-ECC
	// health events out of solve-level fault reports. By default a
	// device whose transient-fault layer is visibly retrying emits
	// HealthECCCorrected into the feed, so sustained data-plane faults
	// escalate into control-plane action.
	DisableFaultECC bool

	// ScaleUpAt and ScaleDownAt are the autoscaler's load-per-slot
	// watermarks: load is max(systems routed, peak weighted
	// concurrency) since the last Tick, slots is the Active+Probation
	// solver capacity.
	// 0 means 1.5 up, 0.25 down; see scaler.go.
	ScaleUpAt, ScaleDownAt float64
	// ScaleCooldown is the minimum time between scaling actions;
	// 0 means 1s.
	ScaleCooldown time.Duration

	// DistTopology is the simulated multi-device fabric for
	// SolveDistributed; topology device i is fleet device i, so it must
	// have exactly Devices devices. nil means an NVLink-mesh of GTX480s
	// is built on first use. Scenarios supply their own topology to
	// schedule per-device fault injection.
	DistTopology *gpusim.Topology
	// DistRetry bounds per-slab recovery in distributed solves (see
	// core.DistConfig.Retry). The zero value is the production default.
	DistRetry core.RetryPolicy
	// DistHedge tunes straggler hedging in distributed solves (see
	// core.DistConfig.Hedge). The zero value is the production default
	// (hedging on, 3x outlier ratio).
	DistHedge core.HedgePolicy
	// Gray tunes the gray-failure detector that watches distributed
	// solve reports and synthesizes HealthStraggler/HealthLinkFlaky
	// events (see GrayPolicy). The zero value is the production
	// default (detector on).
	Gray GrayPolicy
}

func (c Config) initialActive() int {
	if c.InitialActive <= 0 || c.InitialActive > c.Devices {
		return c.Devices
	}
	return c.InitialActive
}

func (c Config) minActive() int {
	if c.MinActive <= 0 {
		return 1
	}
	if c.MinActive > c.Devices {
		return c.Devices
	}
	return c.MinActive
}

func (c Config) correctedECCLimit() int {
	switch {
	case c.CorrectedECCLimit == 0:
		return 8
	case c.CorrectedECCLimit < 0:
		return 1 << 30
	default:
		return c.CorrectedECCLimit
	}
}

func (c Config) probation() time.Duration {
	if c.Probation <= 0 {
		return time.Second
	}
	return c.Probation
}

func (c Config) drainTimeout() time.Duration {
	if c.DrainTimeout <= 0 {
		return 5 * time.Second
	}
	return c.DrainTimeout
}

func (c Config) rerouteAttempts() int {
	if c.RerouteAttempts <= 0 {
		return 3
	}
	return c.RerouteAttempts
}

// Result is one fleet-served solve: the pool result plus which device
// produced it and how many devices were tried.
type Result struct {
	*gputrid.PoolResult[float64]
	// Device is the id of the device that served the request.
	Device int
	// Attempts is the number of devices tried (1 = no re-route).
	Attempts int
}

// Stats is an instantaneous fleet snapshot.
type Stats struct {
	// Devices details every device, by id.
	Devices []DeviceStats
	// State census.
	Active, Probation, Deprioritized, Cordoned, Dead, Standby int
	// InFlight is the weighted work currently being served, in
	// systems: direct requests weigh 1, coalesced megabatches weigh
	// their system count. QueueDepth aggregates the live device pools'
	// wait queues.
	InFlight   int64
	QueueDepth int
	// Served counts successful solves; Rejected counts requests that
	// exhausted their attempts; Rerouted counts device-failure retries;
	// NoDevice counts requests that found no servable device at all.
	Served, Rejected, Rerouted, NoDevice uint64
	// Control-plane action counters.
	Cordons, Heals, ScaleUps, ScaleDowns, ForcedDrains uint64
	// BuildFailures counts factory failures during revive/scale-up.
	BuildFailures uint64
	// Events is the cumulative injected health-event count.
	Events uint64
	// Distributed-solve counters: solves completed, devices declared
	// dead mid-solve, slabs migrated to survivors, slabs degraded to
	// the host path.
	DistSolves, DistDeaths, DistMigrations, DistDegraded uint64
	// Gray-failure plane: integrity retries absorbed by distributed
	// solves, hedges launched / won, and devices the detector flagged
	// as stragglers or flaky links.
	DistIntegrityRetries, DistHedges, DistHedgeWins uint64
	GrayStragglers, GrayLinkFlaky                   uint64
}

// Fleet is the control plane over N device failure domains. All
// methods are safe for concurrent use; policy evaluation happens only
// inside Tick.
type Fleet struct {
	cfg     Config
	clock   Clock
	factory BackendFactory
	feed    *gpusim.HealthFeed

	mu        sync.Mutex //tridlint:lockrank 10
	devices   []*device
	closed    bool
	lastScale time.Time
	// rr rotates pick's scan start so full routing ties round-robin.
	rr int
	// offeredInterval and peakInterval are the scaler's load signals,
	// reset each Tick (guarded by mu).
	offeredInterval int
	peakInterval    int64

	inflightTotal atomic.Int64
	drains        sync.WaitGroup

	served, rejected, rerouted, noDevice               atomic.Uint64
	cordons, heals, scaleUps, scaleDowns, forcedDrains atomic.Uint64
	buildFailures                                      atomic.Uint64

	// dist is the lazily built distributed-solve plane (see
	// distributed.go).
	dist                                                 distPlane
	distSolves, distDeaths, distMigrations, distDegraded atomic.Uint64
	distIntegrity, distHedges, distHedgeWins             atomic.Uint64

	// gray is the gray-failure detector over distributed-solve
	// reports (see gray.go).
	gray                      grayDetector
	grayStragglers, grayFlaky atomic.Uint64
}

// New builds the fleet: InitialActive devices get live pools, the rest
// start in standby. A factory failure tears down what was built.
func New(cfg Config) (*Fleet, error) {
	if cfg.Devices < 1 || cfg.Devices > 64 {
		return nil, fmt.Errorf("fleet: Devices = %d, want 1..64", cfg.Devices)
	}
	if cfg.DistTopology != nil && cfg.DistTopology.NumDevices() != cfg.Devices {
		return nil, fmt.Errorf("fleet: DistTopology has %d devices, want Devices = %d",
			cfg.DistTopology.NumDevices(), cfg.Devices)
	}
	clock := cfg.Clock
	if clock == nil {
		clock = WallClock{}
	}
	factory := cfg.Factory
	if factory == nil {
		factory = defaultFactory(cfg)
	}
	f := &Fleet{
		cfg:     cfg,
		clock:   clock,
		factory: factory,
		feed:    &gpusim.HealthFeed{},
	}
	now := clock.Now()
	f.lastScale = now
	active := cfg.initialActive()
	for id := 0; id < cfg.Devices; id++ {
		d := &device{id: id, state: StateStandby, lastTransition: now}
		if id < active {
			be, err := factory(id)
			if err != nil {
				_ = f.Close(context.Background())
				return nil, fmt.Errorf("fleet: building device %d: %w", id, err)
			}
			d.backend = be
			d.state = StateActive
		}
		f.devices = append(f.devices, d)
	}
	return f, nil
}

// defaultFactory builds real gputrid pools, warmed on WarmShapes.
func defaultFactory(cfg Config) BackendFactory {
	return func(id int) (Backend, error) {
		pc := cfg.Pool
		if cfg.DeviceOptions != nil {
			opts := append([]gputrid.Option(nil), pc.SolverOptions...)
			pc.SolverOptions = append(opts, cfg.DeviceOptions(id)...)
		}
		p := gputrid.NewPool[float64](pc)
		for _, mn := range cfg.WarmShapes {
			if err := p.Warm(mn[0], mn[1]); err != nil {
				_ = p.Close(context.Background())
				return nil, err
			}
		}
		return p, nil
	}
}

// Feed returns the fleet's health-event feed, the injection hook for
// scenario runners, tests, and operational endpoints.
func (f *Fleet) Feed() *gpusim.HealthFeed { return f.feed }

// Inject stamps the event with the fleet clock when its Time is zero
// and appends it to the feed; the next Tick applies it.
func (f *Fleet) Inject(ev gpusim.HealthEvent) {
	if ev.Time.IsZero() {
		ev.Time = f.clock.Now()
	}
	f.feed.Inject(ev)
}

// Solve routes one batch to the least-loaded servable device and runs
// it there. When the device fails in a device-local way — drained
// beneath the request, force-cancelled mid-solve by a cordon, queue
// full, faulted — and the request's own context is still live, the
// request re-routes to the next-best untried device, up to
// RerouteAttempts devices in total. The returned error is the last
// device's (typed: ErrOverloaded, ErrPoolClosed, ErrCancelled,
// ErrFaulted through gputrid), or ErrNoDevices/ErrFleetClosed.
func (f *Fleet) Solve(ctx context.Context, b *gputrid.Batch[float64]) (*Result, error) {
	var tried uint64 // bitmask over device ids (Devices ≤ 64 enforced by pick)
	var lastErr error
	for attempt := 1; attempt <= f.cfg.rerouteAttempts(); attempt++ {
		d, be, err := f.pick(&tried, 1)
		if err != nil {
			if lastErr != nil {
				// Every servable device was tried and failed; surface
				// the device error, not the exhaustion.
				break
			}
			if errors.Is(err, ErrNoDevices) {
				f.noDevice.Add(1)
			}
			return nil, err
		}

		// pick counted the request in flight on d; be is the backend
		// captured under the lock (a concurrent cordon may nil
		// d.backend at any moment).
		res, err := be.Solve(ctx, b)
		f.inflightTotal.Add(-1)
		d.inflight.Add(-1)

		if err == nil {
			d.served.Add(1)
			f.served.Add(1)
			if res.Faults != nil && !f.cfg.DisableFaultECC {
				// The device's fault layer had to repair this solve:
				// surface it to the control plane as corrected-ECC
				// pressure so a sick device escalates to a cordon.
				f.Inject(gpusim.HealthEvent{
					Device: d.id, Kind: gpusim.HealthECCCorrected,
					Message: "fault-layer recovery activity",
				})
			}
			return &Result{PoolResult: res, Device: d.id, Attempts: attempt}, nil
		}
		d.failed.Add(1)
		lastErr = err
		if ctx.Err() != nil {
			// The caller's own deadline/cancellation — nothing another
			// device could fix.
			break
		}
		// Device-local failure: the pool drained beneath the request
		// (cordon), the lease was force-cancelled, the device is
		// overloaded, or the solve faulted unrecoverably. Re-route.
		f.rerouted.Add(1)
	}
	f.rejected.Add(1)
	return nil, lastErr
}

// SolveMegabatch routes one coalesced megabatch to the least-loaded
// servable device with the same re-route protocol as Solve. The
// flight weighs its system count in the router's load accounting —
// in-flight totals and the autoscaler's signals count systems, not
// requests, so a device holding a 48-system flight is not mistaken
// for an idle one. Device-local failures re-route the whole flight
// (per-system guard trouble never fails a flight; it lands in
// mb.Verdicts, which a failed attempt leaves untouched). Unlike
// Solve, no corrected-ECC health event is synthesized: the megabatch
// path surfaces no per-solve fault report.
func (f *Fleet) SolveMegabatch(ctx context.Context, mb *gputrid.Megabatch[float64]) error {
	if mb.Count == 0 {
		return nil
	}
	weight := int64(mb.Count)
	var tried uint64
	var lastErr error
	for attempt := 1; attempt <= f.cfg.rerouteAttempts(); attempt++ {
		d, be, err := f.pick(&tried, weight)
		if err != nil {
			if lastErr != nil {
				break
			}
			if errors.Is(err, ErrNoDevices) {
				f.noDevice.Add(1)
			}
			return err
		}

		err = be.SolveMegabatch(ctx, mb)
		f.inflightTotal.Add(-weight)
		d.inflight.Add(-weight)

		if err == nil {
			d.served.Add(1)
			f.served.Add(1)
			return nil
		}
		d.failed.Add(1)
		lastErr = err
		if ctx.Err() != nil {
			break
		}
		f.rerouted.Add(1)
	}
	f.rejected.Add(1)
	return lastErr
}

// Tick runs one control-loop step against the fleet clock: it applies
// every buffered health event, promotes devices whose probation
// expired, revives drained devices with a pending heal, and evaluates
// the autoscaler. Call it from a ticker in live serving, or from the
// scenario runner's virtual-time loop.
func (f *Fleet) Tick() {
	evs := f.feed.Drain()
	now := f.clock.Now()
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return
	}
	for _, ev := range evs {
		f.applyEventLocked(ev, now)
	}
	for _, d := range f.devices {
		switch {
		case d.state == StateProbation && !now.Before(d.probationUntil):
			d.state = StateActive
			d.lastTransition = now
		case d.state == StateDead && d.wantHeal && !d.draining:
			d.wantHeal = false
			f.reviveLocked(d, StateProbation, now)
		}
	}
	f.scaleLocked(now)
}

// applyEventLocked is the cordon/drain policy table.
func (f *Fleet) applyEventLocked(ev gpusim.HealthEvent, now time.Time) {
	if ev.Device < 0 || ev.Device >= len(f.devices) {
		return
	}
	d := f.devices[ev.Device]

	// A probation device gets no grace: anything short of recovery
	// re-cordons it immediately.
	if d.state == StateProbation && ev.Kind.Severity() != gpusim.SeverityRecovery {
		f.cordonLocked(d, StateDead, now)
		return
	}

	switch ev.Kind.Severity() {
	case gpusim.SeverityFatal:
		if d.state.servable() {
			f.cordonLocked(d, StateDead, now)
		} else if d.state == StateStandby {
			// No traffic to drain; the device is simply unavailable to
			// the scaler until healed.
			d.state = StateDead
			d.lastTransition = now
		}
	case gpusim.SeverityDegraded:
		if d.state == StateActive {
			d.state = StateDeprioritized
			d.lastTransition = now
		}
	case gpusim.SeverityInfo:
		d.correctedECC++
		if d.correctedECC >= f.cfg.correctedECCLimit() && d.state.servable() {
			f.cordonLocked(d, StateDead, now)
		}
	case gpusim.SeverityRecovery:
		f.heals.Add(1)
		switch d.state {
		case StateDead:
			if d.draining {
				d.wantHeal = true
			} else {
				f.reviveLocked(d, StateProbation, now)
			}
		case StateCordoned:
			d.wantHeal = true
		case StateDeprioritized:
			// The pool survived a thermal deprioritization; probation
			// on the same pool.
			d.state = StateProbation
			d.probationUntil = now.Add(f.cfg.probation())
			d.lastTransition = now
		case StateActive:
			d.correctedECC = 0
		}
	}
}

// cordonLocked starts a graceful drain of the device's pool — the
// exact pool.Close protocol: admissions stop, in-flight solves finish,
// the DrainTimeout force-cancels stragglers (whose requests then
// re-route). The device lands in `target` (Dead for health cordons,
// Standby for scale-downs) once the drain completes.
func (f *Fleet) cordonLocked(d *device, target DeviceState, now time.Time) {
	if d.backend == nil || d.draining {
		return
	}
	f.cordons.Add(1)
	be := d.backend
	d.backend = nil // the router can no longer pick it
	d.state = StateCordoned
	d.drainTarget = target
	d.draining = true
	d.correctedECC = 0
	d.lastTransition = now
	f.drains.Add(1)
	go func() {
		defer f.drains.Done()
		ctx, cancel := context.WithTimeout(context.Background(), f.cfg.drainTimeout())
		defer cancel()
		if be.Close(ctx) != nil {
			f.forcedDrains.Add(1)
		}
		f.mu.Lock()
		d.draining = false
		d.state = d.drainTarget
		d.lastTransition = f.clock.Now()
		f.mu.Unlock()
	}()
}

// reviveLocked gives a drained device a fresh pool (a real device
// reset wipes device state, so nothing warmed survives) and puts it in
// `state` — Probation for heals, Active for scale-ups.
func (f *Fleet) reviveLocked(d *device, state DeviceState, now time.Time) {
	be, err := f.factory(d.id)
	if err != nil {
		f.buildFailures.Add(1)
		return
	}
	d.backend = be
	d.state = state
	d.correctedECC = 0
	d.lastTransition = now
	if state == StateProbation {
		d.probationUntil = now.Add(f.cfg.probation())
	}
	// A revived device is judged on fresh evidence: the gray-failure
	// diagnosis belonged to the hardware state the reset wiped.
	f.gray.reset(d.id)
}

// Quiesce blocks until every in-progress drain has completed — the
// scenario runner calls it so device state is settled before
// assertions, without any wall-clock sleep.
func (f *Fleet) Quiesce() { f.drains.Wait() }

// Stats snapshots the fleet.
func (f *Fleet) Stats() Stats {
	s := Stats{
		InFlight:       f.inflightTotal.Load(),
		Served:         f.served.Load(),
		Rejected:       f.rejected.Load(),
		Rerouted:       f.rerouted.Load(),
		NoDevice:       f.noDevice.Load(),
		Cordons:        f.cordons.Load(),
		Heals:          f.heals.Load(),
		ScaleUps:       f.scaleUps.Load(),
		ScaleDowns:     f.scaleDowns.Load(),
		ForcedDrains:   f.forcedDrains.Load(),
		BuildFailures:  f.buildFailures.Load(),
		Events:         f.feed.Injected(),
		DistSolves:     f.distSolves.Load(),
		DistDeaths:     f.distDeaths.Load(),
		DistMigrations: f.distMigrations.Load(),
		DistDegraded:   f.distDegraded.Load(),

		DistIntegrityRetries: f.distIntegrity.Load(),
		DistHedges:           f.distHedges.Load(),
		DistHedgeWins:        f.distHedgeWins.Load(),
		GrayStragglers:       f.grayStragglers.Load(),
		GrayLinkFlaky:        f.grayFlaky.Load(),
	}
	type liveDev struct {
		i  int
		be Backend
	}
	var live []liveDev
	f.mu.Lock()
	for _, d := range f.devices {
		ds := DeviceStats{
			ID:           d.id,
			State:        d.state,
			InFlight:     d.inflight.Load(),
			Served:       d.served.Load(),
			Failed:       d.failed.Load(),
			CorrectedECC: d.correctedECC,
		}
		ds.GrayRatio, ds.IntegrityRetries, ds.Hedged = f.graySnapshot(d.id)
		switch d.state {
		case StateActive:
			s.Active++
		case StateProbation:
			s.Probation++
		case StateDeprioritized:
			s.Deprioritized++
		case StateCordoned:
			s.Cordoned++
		case StateDead:
			s.Dead++
		case StateStandby:
			s.Standby++
		}
		if d.backend != nil {
			live = append(live, liveDev{len(s.Devices), d.backend})
		}
		s.Devices = append(s.Devices, ds)
	}
	f.mu.Unlock()
	// Pool snapshots outside the fleet lock: Stats takes pool mutexes.
	for _, ld := range live {
		ps := ld.be.Stats()
		s.Devices[ld.i].QueueDepth = ps.QueueDepth
		s.Devices[ld.i].Breaker = ps.Breaker.State
		s.QueueDepth += ps.QueueDepth
	}
	return s
}

// Close shuts the fleet down: Solve and Tick become no-ops, every live
// device pool is drained concurrently under ctx, and outstanding
// cordon drains are awaited. Idempotent.
func (f *Fleet) Close(ctx context.Context) error {
	f.mu.Lock()
	alreadyClosed := f.closed
	f.closed = true
	var live []Backend
	for _, d := range f.devices {
		if d.backend != nil {
			live = append(live, d.backend)
			d.backend = nil
			d.state = StateDead
			d.lastTransition = f.clock.Now()
		}
	}
	f.mu.Unlock()

	var mu sync.Mutex
	var firstErr error
	var wg sync.WaitGroup
	for _, be := range live {
		wg.Add(1)
		go func(be Backend) {
			defer wg.Done()
			if err := be.Close(ctx); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}(be)
	}
	wg.Wait()
	f.drains.Wait()
	f.closeDistributed()
	if alreadyClosed {
		return nil
	}
	return firstErr
}
