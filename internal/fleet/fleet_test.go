package fleet_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"gputrid"
	"gputrid/internal/batcher"
	"gputrid/internal/fleet"
	"gputrid/internal/gpusim"
	"gputrid/internal/matrix"
)

// fakeBackend is a deterministic stand-in for one device's pool.
type fakeBackend struct {
	id int

	mu       sync.Mutex
	closed   bool
	solves   int
	solveErr error
	faults   *gputrid.FaultReport
	breaker  gputrid.BreakerState
	// holdClose, when non-nil, blocks Close until the channel closes or
	// the drain context expires (modeling a long graceful drain).
	holdClose chan struct{}
	// holdMega, when non-nil, parks SolveMegabatch until the channel
	// closes, so tests can observe weighted in-flight accounting.
	holdMega chan struct{}
}

func (b *fakeBackend) Solve(ctx context.Context, _ *gputrid.Batch[float64]) (*gputrid.PoolResult[float64], error) {
	b.mu.Lock()
	closed, err, faults := b.closed, b.solveErr, b.faults
	if !closed && err == nil {
		b.solves++
	}
	b.mu.Unlock()
	if closed {
		return nil, gputrid.ErrPoolClosed
	}
	if err != nil {
		return nil, err
	}
	return &gputrid.PoolResult[float64]{
		Result: &gputrid.Result[float64]{X: []float64{float64(b.id)}, Faults: faults},
		Route:  gputrid.RouteDevice,
	}, nil
}

func (b *fakeBackend) SolveMegabatch(ctx context.Context, mb *gputrid.Megabatch[float64]) error {
	b.mu.Lock()
	closed, err, hold := b.closed, b.solveErr, b.holdMega
	if !closed && err == nil {
		b.solves++
	}
	b.mu.Unlock()
	if hold != nil {
		select {
		case <-hold:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	if closed {
		return gputrid.ErrPoolClosed
	}
	if err != nil {
		return err
	}
	// Stamp every system's solution with the device id so tests can
	// tell which device served the flight.
	for i := 0; i < mb.Count; i++ {
		for j := 0; j < mb.V.N; j++ {
			mb.Xi[j*mb.V.M+i] = float64(b.id)
		}
	}
	return nil
}

func (b *fakeBackend) Warm(m, n int) error { return nil }
func (b *fakeBackend) Stats() gputrid.PoolStats {
	return gputrid.PoolStats{Breaker: gputrid.BreakerSnapshot{State: b.breakerState()}}
}
func (b *fakeBackend) ServiceTime(m, n int) (time.Duration, bool) { return time.Millisecond, true }
func (b *fakeBackend) Breaker() gputrid.BreakerSnapshot {
	return gputrid.BreakerSnapshot{State: b.breakerState()}
}

func (b *fakeBackend) breakerState() gputrid.BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.breaker
}

func (b *fakeBackend) Close(ctx context.Context) error {
	b.mu.Lock()
	hold := b.holdClose
	b.mu.Unlock()
	if hold != nil {
		select {
		case <-hold:
		case <-ctx.Done():
			b.mu.Lock()
			b.closed = true
			b.mu.Unlock()
			return ctx.Err()
		}
	}
	b.mu.Lock()
	b.closed = true
	b.mu.Unlock()
	return nil
}

func (b *fakeBackend) isClosed() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.closed
}

// fakeFactory builds fakeBackends and remembers every instance, so
// tests can assert which generation a device is running.
type fakeFactory struct {
	mu   sync.Mutex
	made []*fakeBackend
}

func (f *fakeFactory) build(id int) (fleet.Backend, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	be := &fakeBackend{id: id}
	f.made = append(f.made, be)
	return be, nil
}

func (f *fakeFactory) builds() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.made)
}

func (f *fakeFactory) backend(i int) *fakeBackend {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.made[i]
}

func newTestFleet(t *testing.T, cfg fleet.Config, ff *fakeFactory, vc *fleet.VirtualClock) *fleet.Fleet {
	t.Helper()
	cfg.Factory = ff.build
	cfg.Clock = vc
	f, err := fleet.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = f.Close(context.Background()) })
	return f
}

func deviceState(t *testing.T, f *fleet.Fleet, id int) fleet.DeviceState {
	t.Helper()
	return f.Stats().Devices[id].State
}

// TestCordonDrainHealProbation walks the full state machine: a fatal
// XID cordons and drains the device, traffic re-routes, a healed event
// revives it on a *fresh* pool into probation, and a clean probation
// period promotes it back to Active.
func TestCordonDrainHealProbation(t *testing.T) {
	vc := fleet.NewVirtualClock(time.Unix(0, 0))
	ff := &fakeFactory{}
	f := newTestFleet(t, fleet.Config{Devices: 2, Probation: 2 * time.Second}, ff, vc)
	ctx := context.Background()

	// Routing is least-loaded with round-robin ties; the first pick
	// starts its scan at device 0.
	res, err := f.Solve(ctx, nil)
	if err != nil || res.Device != 0 {
		t.Fatalf("first solve: dev=%v err=%v, want device 0", res, err)
	}

	// Fatal XID on device 0: next Tick cordons and drains it.
	f.Inject(gpusim.HealthEvent{Device: 0, Kind: gpusim.HealthXID, XID: 79, Message: "fallen off the bus"})
	f.Tick()
	f.Quiesce()
	if got := deviceState(t, f, 0); got != fleet.StateDead {
		t.Fatalf("after XID + drain: device 0 state = %v, want dead", got)
	}
	if !ff.backend(0).isClosed() {
		t.Fatal("cordon did not drain device 0's pool through Close")
	}
	st := f.Stats()
	if st.Cordons != 1 || st.ForcedDrains != 0 {
		t.Fatalf("cordons/forced = %d/%d, want 1/0 (graceful)", st.Cordons, st.ForcedDrains)
	}

	// Traffic routes around the corpse.
	for i := 0; i < 3; i++ {
		res, err := f.Solve(ctx, nil)
		if err != nil {
			t.Fatalf("solve after cordon: %v", err)
		}
		if res.Device != 1 {
			t.Fatalf("solve routed to device %d, want 1", res.Device)
		}
	}

	// Heal: fresh pool, probation.
	f.Inject(gpusim.HealthEvent{Device: 0, Kind: gpusim.HealthHealed})
	f.Tick()
	if got := deviceState(t, f, 0); got != fleet.StateProbation {
		t.Fatalf("after heal: device 0 state = %v, want probation", got)
	}
	if ff.builds() != 3 { // 2 initial + 1 revive
		t.Fatalf("factory built %d backends, want 3 (heal must NOT reuse the drained pool)", ff.builds())
	}

	// Probation device serves traffic.
	served0 := false
	for i := 0; i < 4; i++ {
		res, err := f.Solve(ctx, nil)
		if err != nil {
			t.Fatalf("probation solve: %v", err)
		}
		served0 = served0 || res.Device == 0
	}
	if !served0 {
		t.Fatal("probation device received no traffic")
	}

	// Probation expires only after the configured period of clock time.
	vc.Advance(time.Second)
	f.Tick()
	if got := deviceState(t, f, 0); got != fleet.StateProbation {
		t.Fatalf("1s into 2s probation: state = %v, want probation", got)
	}
	vc.Advance(time.Second + time.Millisecond)
	f.Tick()
	if got := deviceState(t, f, 0); got != fleet.StateActive {
		t.Fatalf("after probation: state = %v, want active", got)
	}
}

// TestProbationViolationRecordons: any non-recovery event during
// probation cordons the device immediately — no second chances.
func TestProbationViolationRecordons(t *testing.T) {
	vc := fleet.NewVirtualClock(time.Unix(0, 0))
	ff := &fakeFactory{}
	f := newTestFleet(t, fleet.Config{Devices: 2}, ff, vc)

	f.Inject(gpusim.HealthEvent{Device: 0, Kind: gpusim.HealthECCUncorrected})
	f.Tick()
	f.Quiesce()
	f.Inject(gpusim.HealthEvent{Device: 0, Kind: gpusim.HealthHealed})
	f.Tick()
	if got := deviceState(t, f, 0); got != fleet.StateProbation {
		t.Fatalf("state = %v, want probation", got)
	}

	// Even a mere corrected-ECC event is a probation violation.
	f.Inject(gpusim.HealthEvent{Device: 0, Kind: gpusim.HealthECCCorrected})
	f.Tick()
	f.Quiesce()
	if got := deviceState(t, f, 0); got != fleet.StateDead {
		t.Fatalf("state after probation violation = %v, want dead", got)
	}
}

// TestThermalDeprioritize: a thermal event demotes the device to
// last-choice routing without draining its pool; healing returns it
// through probation on the SAME pool (thermals don't wipe device
// state).
func TestThermalDeprioritize(t *testing.T) {
	vc := fleet.NewVirtualClock(time.Unix(0, 0))
	ff := &fakeFactory{}
	f := newTestFleet(t, fleet.Config{Devices: 2}, ff, vc)
	ctx := context.Background()

	f.Inject(gpusim.HealthEvent{Device: 0, Kind: gpusim.HealthThermal, Temp: 95})
	f.Tick()
	if got := deviceState(t, f, 0); got != fleet.StateDeprioritized {
		t.Fatalf("state = %v, want deprioritized", got)
	}
	if ff.backend(0).isClosed() {
		t.Fatal("thermal deprioritization must not drain the pool")
	}

	// All traffic avoids the hot device while device 1 is healthy.
	for i := 0; i < 4; i++ {
		res, err := f.Solve(ctx, nil)
		if err != nil || res.Device != 1 {
			t.Fatalf("solve %d: dev=%v err=%v, want device 1", i, res, err)
		}
	}

	// ...but it still serves when it is the only device left.
	f.Inject(gpusim.HealthEvent{Device: 1, Kind: gpusim.HealthXID, XID: 48})
	f.Tick()
	f.Quiesce()
	res, err := f.Solve(ctx, nil)
	if err != nil || res.Device != 0 {
		t.Fatalf("last-resort solve: dev=%v err=%v, want the deprioritized device 0", res, err)
	}

	// Heal the thermal: probation on the same pool — no rebuild.
	builds := ff.builds()
	f.Inject(gpusim.HealthEvent{Device: 0, Kind: gpusim.HealthHealed})
	f.Tick()
	if got := deviceState(t, f, 0); got != fleet.StateProbation {
		t.Fatalf("state after thermal heal = %v, want probation", got)
	}
	if ff.builds() != builds {
		t.Fatal("thermal heal rebuilt the pool; it must keep the live one")
	}
}

// TestCorrectedECCEscalation: corrected-ECC events are harmless
// individually but cordon the device once they accumulate past the
// policy threshold.
func TestCorrectedECCEscalation(t *testing.T) {
	vc := fleet.NewVirtualClock(time.Unix(0, 0))
	ff := &fakeFactory{}
	f := newTestFleet(t, fleet.Config{Devices: 2, CorrectedECCLimit: 3}, ff, vc)

	for i := 0; i < 2; i++ {
		f.Inject(gpusim.HealthEvent{Device: 0, Kind: gpusim.HealthECCCorrected})
	}
	f.Tick()
	if got := deviceState(t, f, 0); got != fleet.StateActive {
		t.Fatalf("below threshold: state = %v, want active", got)
	}
	f.Inject(gpusim.HealthEvent{Device: 0, Kind: gpusim.HealthECCCorrected})
	f.Tick()
	f.Quiesce()
	if got := deviceState(t, f, 0); got != fleet.StateDead {
		t.Fatalf("at threshold: state = %v, want dead (cordoned + drained)", got)
	}
}

// TestSolveFaultsEscalateToCordon: device solves whose fault layer had
// to recover emit corrected-ECC health events, so a device with
// sustained data-plane faults eventually cordons itself.
func TestSolveFaultsEscalateToCordon(t *testing.T) {
	vc := fleet.NewVirtualClock(time.Unix(0, 0))
	ff := &fakeFactory{}
	f := newTestFleet(t, fleet.Config{Devices: 2, CorrectedECCLimit: 2}, ff, vc)
	ctx := context.Background()

	// Device 0's solves carry fault reports; keep device 1 clean.
	ff.backend(0).mu.Lock()
	ff.backend(0).faults = &gputrid.FaultReport{Faults: 1}
	ff.backend(0).mu.Unlock()

	// Ties rotate round-robin, so 4 solves land on device 0 twice.
	for i := 0; i < 4; i++ {
		if _, err := f.Solve(ctx, nil); err != nil {
			t.Fatalf("solve %d: %v", i, err)
		}
		f.Tick()
		f.Quiesce()
	}
	if got := deviceState(t, f, 0); got != fleet.StateDead {
		t.Fatalf("faulty device state = %v, want dead (ECC escalation)", got)
	}
	if got := deviceState(t, f, 1); got != fleet.StateActive {
		t.Fatalf("clean device state = %v, want active", got)
	}
}

// TestRerouteOnDeadDevice: a request whose device drains beneath it
// re-routes to the next device and succeeds; Attempts reflects it.
func TestRerouteOnDeadDevice(t *testing.T) {
	vc := fleet.NewVirtualClock(time.Unix(0, 0))
	ff := &fakeFactory{}
	f := newTestFleet(t, fleet.Config{Devices: 2}, ff, vc)

	// Device 0's pool rejects with ErrPoolClosed (drained beneath the
	// router's nose — the fleet hasn't processed the cordon yet).
	ff.backend(0).mu.Lock()
	ff.backend(0).closed = true
	ff.backend(0).mu.Unlock()

	res, err := f.Solve(context.Background(), nil)
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	if res.Device != 1 || res.Attempts != 2 {
		t.Fatalf("served by device %d in %d attempts, want device 1 in 2", res.Device, res.Attempts)
	}
	if st := f.Stats(); st.Rerouted != 1 {
		t.Fatalf("rerouted = %d, want 1", st.Rerouted)
	}
}

// TestCallerCancellationDoesNotReroute: when the request's own context
// is dead, no re-route may happen — nothing another device could fix.
func TestCallerCancellationDoesNotReroute(t *testing.T) {
	vc := fleet.NewVirtualClock(time.Unix(0, 0))
	ff := &fakeFactory{}
	f := newTestFleet(t, fleet.Config{Devices: 2}, ff, vc)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ff.backend(0).mu.Lock()
	ff.backend(0).solveErr = gputrid.ErrCancelled
	ff.backend(0).mu.Unlock()
	ff.backend(1).mu.Lock()
	ff.backend(1).solveErr = gputrid.ErrCancelled
	ff.backend(1).mu.Unlock()

	if _, err := f.Solve(ctx, nil); !errors.Is(err, gputrid.ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	if st := f.Stats(); st.Rerouted != 0 {
		t.Fatalf("rerouted = %d, want 0 for caller-cancelled request", st.Rerouted)
	}
}

// TestBreakerAwareRouting: at equal load, a device whose breaker is
// open (serving off its CPU fallback) loses to one whose device path
// is healthy.
func TestBreakerAwareRouting(t *testing.T) {
	vc := fleet.NewVirtualClock(time.Unix(0, 0))
	ff := &fakeFactory{}
	f := newTestFleet(t, fleet.Config{Devices: 2}, ff, vc)

	// Device 0 would take its round-robin share; trip its breaker.
	ff.backend(0).mu.Lock()
	ff.backend(0).breaker = gputrid.BreakerOpen
	ff.backend(0).mu.Unlock()

	for i := 0; i < 3; i++ {
		res, err := f.Solve(context.Background(), nil)
		if err != nil || res.Device != 1 {
			t.Fatalf("solve %d: dev=%v err=%v, want breaker-closed device 1", i, res, err)
		}
	}
}

// TestAutoscaleUpAndDown: offered load above the high watermark
// activates a standby device (after the cooldown); sustained idleness
// drains one back to standby, never below MinActive.
func TestAutoscaleUpAndDown(t *testing.T) {
	vc := fleet.NewVirtualClock(time.Unix(0, 0))
	ff := &fakeFactory{}
	f := newTestFleet(t, fleet.Config{
		Devices: 2, InitialActive: 1, MinActive: 1,
		ScaleCooldown: time.Second,
	}, ff, vc)
	ctx := context.Background()

	// Heavy offered load: 10 requests against 1 device x capacity 2.
	for i := 0; i < 10; i++ {
		if _, err := f.Solve(ctx, nil); err != nil {
			t.Fatal(err)
		}
	}
	// Inside the cooldown no scaling happens...
	f.Tick()
	if got := deviceState(t, f, 1); got != fleet.StateStandby {
		t.Fatalf("scaled during cooldown: device 1 = %v", got)
	}
	// ...after it, the same load scales up.
	for i := 0; i < 10; i++ {
		if _, err := f.Solve(ctx, nil); err != nil {
			t.Fatal(err)
		}
	}
	vc.Advance(1100 * time.Millisecond)
	f.Tick()
	if got := deviceState(t, f, 1); got != fleet.StateActive {
		t.Fatalf("device 1 = %v, want active after scale-up", got)
	}
	if st := f.Stats(); st.ScaleUps != 1 {
		t.Fatalf("scaleUps = %d, want 1", st.ScaleUps)
	}

	// Idle long enough: scale back down to MinActive, but never below.
	vc.Advance(1100 * time.Millisecond)
	f.Tick() // idle interval -> scale down one
	f.Quiesce()
	vc.Advance(1100 * time.Millisecond)
	f.Tick() // still idle -> at MinActive, must hold
	f.Quiesce()
	st := f.Stats()
	if st.ScaleDowns != 1 {
		t.Fatalf("scaleDowns = %d, want exactly 1 (MinActive floor)", st.ScaleDowns)
	}
	if st.Active != 1 || st.Standby != 1 {
		t.Fatalf("census after scale-down: %+v, want 1 active + 1 standby", st)
	}
}

// TestMassCordonRevivesStandby: when every serving device dies, the
// scaler reactivates a standby device immediately, cooldown be damned.
func TestMassCordonRevivesStandby(t *testing.T) {
	vc := fleet.NewVirtualClock(time.Unix(0, 0))
	ff := &fakeFactory{}
	f := newTestFleet(t, fleet.Config{Devices: 2, InitialActive: 1}, ff, vc)

	f.Inject(gpusim.HealthEvent{Device: 0, Kind: gpusim.HealthXID, XID: 79})
	f.Tick()
	f.Quiesce()
	f.Tick() // scaler sees zero serving devices -> instant reactivation
	res, err := f.Solve(context.Background(), nil)
	if err != nil || res.Device != 1 {
		t.Fatalf("post-mass-cordon solve: dev=%v err=%v, want standby-revived device 1", res, err)
	}
}

// TestForcedDrainCount: a drain that outlives DrainTimeout is
// force-cancelled and counted.
func TestForcedDrainCount(t *testing.T) {
	vc := fleet.NewVirtualClock(time.Unix(0, 0))
	ff := &fakeFactory{}
	f := newTestFleet(t, fleet.Config{Devices: 2, DrainTimeout: 10 * time.Millisecond}, ff, vc)

	hold := make(chan struct{})
	ff.backend(0).mu.Lock()
	ff.backend(0).holdClose = hold
	ff.backend(0).mu.Unlock()
	defer close(hold)

	f.Inject(gpusim.HealthEvent{Device: 0, Kind: gpusim.HealthXID})
	f.Tick()
	f.Quiesce()
	st := f.Stats()
	if st.ForcedDrains != 1 {
		t.Fatalf("forcedDrains = %d, want 1", st.ForcedDrains)
	}
	if st.Devices[0].State != fleet.StateDead {
		t.Fatalf("device 0 = %v, want dead after forced drain", st.Devices[0].State)
	}
}

// TestFleetClose: close drains every live pool, further solves fail
// typed, and close is idempotent.
func TestFleetClose(t *testing.T) {
	vc := fleet.NewVirtualClock(time.Unix(0, 0))
	ff := &fakeFactory{}
	f := newTestFleet(t, fleet.Config{Devices: 3}, ff, vc)

	if err := f.Close(context.Background()); err != nil {
		t.Fatalf("close: %v", err)
	}
	for i := 0; i < ff.builds(); i++ {
		if !ff.backend(i).isClosed() {
			t.Fatalf("backend %d not drained by Close", i)
		}
	}
	if _, err := f.Solve(context.Background(), nil); !errors.Is(err, fleet.ErrFleetClosed) {
		t.Fatalf("solve after close: %v, want ErrFleetClosed", err)
	}
	if err := f.Close(context.Background()); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

// mkMega builds a minimal megabatch of count systems (the fake
// backends never read the coefficients).
func mkMega(count, n int) *gputrid.Megabatch[float64] {
	return &gputrid.Megabatch[float64]{
		V:        matrix.NewInterleaved[float64](count, n),
		Count:    count,
		Xi:       make([]float64, count*n),
		Verdicts: make([]batcher.Verdict, count),
	}
}

// TestSolveMegabatchWeightedRouting pins the batching tier's fleet
// contract: a coalesced flight counts its systems — not one request —
// in the fleet's in-flight accounting, and a device-local failure
// re-routes the whole flight to another device.
func TestSolveMegabatchWeightedRouting(t *testing.T) {
	vc := fleet.NewVirtualClock(time.Unix(0, 0))
	ff := &fakeFactory{}
	f := newTestFleet(t, fleet.Config{Devices: 2}, ff, vc)
	ctx := context.Background()

	// Park a 5-system flight on whichever device takes it; while held,
	// the fleet must report 5 systems in flight, not 1 request.
	hold := make(chan struct{})
	for i := 0; i < 2; i++ {
		ff.backend(i).mu.Lock()
		ff.backend(i).holdMega = hold
		ff.backend(i).mu.Unlock()
	}
	mb := mkMega(5, 4)
	done := make(chan error, 1)
	go func() { done <- f.SolveMegabatch(ctx, mb) }()
	deadline := time.Now().Add(5 * time.Second)
	for f.Stats().InFlight != 5 {
		if time.Now().After(deadline) {
			t.Fatalf("InFlight = %d, want 5 (systems, not requests)", f.Stats().InFlight)
		}
	}
	close(hold)
	if err := <-done; err != nil {
		t.Fatalf("held flight: %v", err)
	}
	st := f.Stats()
	if st.InFlight != 0 || st.Served != 1 {
		t.Fatalf("after flight: InFlight=%d Served=%d, want 0/1", st.InFlight, st.Served)
	}
	// The fake stamps solutions with its device id; all systems of one
	// flight must come from one device.
	for i, x := range mb.Xi {
		if x != mb.Xi[0] {
			t.Fatalf("Xi[%d] = %v: flight split across devices", i, x)
		}
	}
	served := int(mb.Xi[0])

	// Kill the serving device's backend and pin weighted load on the
	// healthy one, so the next flight is deterministically offered to
	// the failed device first and must re-route in one call.
	healthy := 1 - served
	ff.backend(served).mu.Lock()
	ff.backend(served).solveErr = gputrid.ErrFaulted
	ff.backend(served).holdMega = nil
	ff.backend(served).mu.Unlock()
	hold2 := make(chan struct{})
	ff.backend(healthy).mu.Lock()
	ff.backend(healthy).holdMega = hold2
	ff.backend(healthy).mu.Unlock()

	pin := mkMega(4, 4)
	pinDone := make(chan error, 1)
	go func() { pinDone <- f.SolveMegabatch(ctx, pin) }()
	deadline = time.Now().Add(5 * time.Second)
	for f.Stats().InFlight != 4 {
		if time.Now().After(deadline) {
			t.Fatalf("InFlight = %d, want pinned 4", f.Stats().InFlight)
		}
	}

	mb2 := mkMega(3, 4)
	done2 := make(chan error, 1)
	go func() { done2 <- f.SolveMegabatch(ctx, mb2) }()
	for f.Stats().InFlight != 7 {
		if time.Now().After(deadline) {
			t.Fatalf("InFlight = %d, want 7 after re-route", f.Stats().InFlight)
		}
	}
	close(hold2)
	if err := <-pinDone; err != nil {
		t.Fatalf("pin flight: %v", err)
	}
	if err := <-done2; err != nil {
		t.Fatalf("re-routed flight: %v", err)
	}
	if got := int(mb2.Xi[0]); got == served {
		t.Fatalf("flight served by failed device %d", got)
	}
	if st := f.Stats(); st.Rerouted == 0 {
		t.Fatal("no re-route recorded")
	}
}
