package scenario

import (
	"context"
	"sync"
	"time"

	"gputrid"
	"gputrid/internal/fleet"
)

// gatedBackend wraps a device's real serving pool with a holdpoint at
// the backend boundary. While armed, routed requests block at the gate
// (after the fleet has counted them in flight on the device, before
// they enter the pool) until the gate is released.
//
// The runner arms the gates for the span of a fatal-event tick to make
// "the device dies under load" true *by construction* instead of by
// scheduler luck: every request of the interval is routed and pinned
// in flight when the cordon fires, so the dying device demonstrably
// holds live traffic, and its held requests then race the drain —
// some slip in and are drained gracefully, the rest bounce off the
// closing pool and re-route. On a single-CPU runtime, where goroutines
// otherwise run each solve to completion before the next begins, this
// is the only way the scenario's concurrency is reproducible.
//
// Close releases the gate before draining the inner pool, so a cordon
// can never deadlock against its own held requests.
type gatedBackend struct {
	inner *gputrid.Pool[float64]

	mu   sync.Mutex
	gate chan struct{} // non-nil while armed
}

var _ fleet.Backend = (*gatedBackend)(nil)

// arm installs a fresh holdpoint; requests entering Solve block on it.
func (g *gatedBackend) arm() {
	g.mu.Lock()
	if g.gate == nil {
		g.gate = make(chan struct{})
	}
	g.mu.Unlock()
}

// release opens the holdpoint; idempotent.
func (g *gatedBackend) release() {
	g.mu.Lock()
	if g.gate != nil {
		close(g.gate)
		g.gate = nil
	}
	g.mu.Unlock()
}

func (g *gatedBackend) Solve(ctx context.Context, b *gputrid.Batch[float64]) (*gputrid.PoolResult[float64], error) {
	g.mu.Lock()
	gate := g.gate
	g.mu.Unlock()
	if gate != nil {
		select {
		case <-gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return g.inner.Solve(ctx, b)
}

func (g *gatedBackend) SolveMegabatch(ctx context.Context, mb *gputrid.Megabatch[float64]) error {
	g.mu.Lock()
	gate := g.gate
	g.mu.Unlock()
	if gate != nil {
		select {
		case <-gate:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return g.inner.SolveMegabatch(ctx, mb)
}

func (g *gatedBackend) Warm(m, n int) error { return g.inner.Warm(m, n) }

func (g *gatedBackend) Stats() gputrid.PoolStats { return g.inner.Stats() }

func (g *gatedBackend) ServiceTime(m, n int) (time.Duration, bool) {
	return g.inner.ServiceTime(m, n)
}

func (g *gatedBackend) Breaker() gputrid.BreakerSnapshot { return g.inner.Breaker() }

func (g *gatedBackend) Close(ctx context.Context) error {
	g.release()
	return g.inner.Close(ctx)
}

// gateSet tracks the current wrapper per device id (revives build
// fresh wrappers; the newest one is the live device).
type gateSet struct {
	mu sync.Mutex
	m  map[int]*gatedBackend
}

func (s *gateSet) put(id int, g *gatedBackend) {
	s.mu.Lock()
	if s.m == nil {
		s.m = make(map[int]*gatedBackend)
	}
	s.m[id] = g
	s.mu.Unlock()
}

func (s *gateSet) armAll() {
	s.mu.Lock()
	for _, g := range s.m {
		g.arm()
	}
	s.mu.Unlock()
}

func (s *gateSet) releaseAll() {
	s.mu.Lock()
	for _, g := range s.m {
		g.release()
	}
	s.mu.Unlock()
}
