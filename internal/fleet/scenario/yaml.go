package scenario

import (
	"fmt"
	"strings"
)

// This file is a minimal YAML-subset parser — the module takes no
// external dependencies, and scenario files need only a small, strict
// slice of YAML:
//
//   - block maps (`key: value`, nested by 2+ space indentation)
//   - block lists (`- item`, including `- key: value` inline-map items)
//   - one-level flow maps (`{m: 8, n: 64}`) and flow lists (`[a, b]`)
//   - scalars as strings (the typed decoder in scenario.go converts),
//     with optional single/double quoting
//   - `#` comments (full-line or trailing) and blank lines
//
// Tabs in indentation, mixed list/map siblings, and multi-line scalars
// are errors. Parse returns map[string]any | []any | string values,
// plus a key-path → source-line map ("distributed.victims",
// "load[0].rps") so the strict decoder can point typos at the exact
// line that holds them.
func parseYAML(data []byte) (map[string]any, map[string]int, error) {
	p := &yamlParser{keys: make(map[string]int)}
	if err := p.lex(string(data)); err != nil {
		return nil, nil, err
	}
	if len(p.lines) == 0 {
		return map[string]any{}, p.keys, nil
	}
	if p.lines[0].indent != 0 {
		return nil, nil, fmt.Errorf("yaml line %d: top level must not be indented", p.lines[0].no)
	}
	v, err := p.block(0, "")
	if err != nil {
		return nil, nil, err
	}
	if p.pos < len(p.lines) {
		return nil, nil, fmt.Errorf("yaml line %d: unexpected indentation", p.lines[p.pos].no)
	}
	m, ok := v.(map[string]any)
	if !ok {
		return nil, nil, fmt.Errorf("yaml: top level must be a map")
	}
	return m, p.keys, nil
}

// joinPath appends a key to a dotted key path.
func joinPath(path, key string) string {
	if path == "" {
		return key
	}
	return path + "." + key
}

type yamlLine struct {
	no     int // 1-based source line, for errors
	indent int
	text   string
}

type yamlParser struct {
	lines []yamlLine
	pos   int
	// keys maps each parsed key's dotted path to its 1-based source
	// line, for the decoder's line-numbered unknown-key errors.
	keys map[string]int
}

func (p *yamlParser) lex(src string) error {
	for i, raw := range strings.Split(src, "\n") {
		no := i + 1
		line := stripComment(raw)
		text := strings.TrimSpace(line)
		if text == "" {
			continue
		}
		indent := len(line) - len(strings.TrimLeft(line, " "))
		if strings.HasPrefix(strings.TrimLeft(line, " "), "\t") || strings.Contains(line[:indent+1], "\t") {
			return fmt.Errorf("yaml line %d: tabs are not allowed in indentation", no)
		}
		p.lines = append(p.lines, yamlLine{no: no, indent: indent, text: text})
	}
	return nil
}

// stripComment removes a trailing `#` comment, respecting quotes.
func stripComment(line string) string {
	var quote byte
	for i := 0; i < len(line); i++ {
		c := line[i]
		switch {
		case quote != 0:
			if c == quote {
				quote = 0
			}
		case c == '"' || c == '\'':
			quote = c
		case c == '#' && (i == 0 || line[i-1] == ' '):
			return line[:i]
		}
	}
	return line
}

// block parses the run of lines at exactly `indent`, deciding list vs
// map from the first line. `path` is the dotted key path of the value
// being parsed, for the key-line map.
func (p *yamlParser) block(indent int, path string) (any, error) {
	if strings.HasPrefix(p.lines[p.pos].text, "- ") || p.lines[p.pos].text == "-" {
		return p.list(indent, path)
	}
	return p.mapping(indent, path)
}

func (p *yamlParser) mapping(indent int, path string) (any, error) {
	m := make(map[string]any)
	for p.pos < len(p.lines) && p.lines[p.pos].indent == indent {
		ln := p.lines[p.pos]
		if strings.HasPrefix(ln.text, "- ") || ln.text == "-" {
			return nil, fmt.Errorf("yaml line %d: list item among map keys", ln.no)
		}
		key, rest, ok := splitKey(ln.text)
		if !ok {
			return nil, fmt.Errorf("yaml line %d: expected `key: value`", ln.no)
		}
		if _, dup := m[key]; dup {
			return nil, fmt.Errorf("yaml line %d: duplicate key %q", ln.no, key)
		}
		kp := joinPath(path, key)
		p.keys[kp] = ln.no
		p.pos++
		if rest != "" {
			v, err := p.parseFlow(rest, ln.no, kp)
			if err != nil {
				return nil, err
			}
			m[key] = v
			continue
		}
		// `key:` with a nested block — or an empty value.
		if p.pos < len(p.lines) && p.lines[p.pos].indent > indent {
			v, err := p.block(p.lines[p.pos].indent, kp)
			if err != nil {
				return nil, err
			}
			m[key] = v
		} else {
			m[key] = ""
		}
	}
	return m, nil
}

func (p *yamlParser) list(indent int, path string) (any, error) {
	var out []any
	for p.pos < len(p.lines) && p.lines[p.pos].indent == indent {
		ln := p.lines[p.pos]
		if !strings.HasPrefix(ln.text, "- ") && ln.text != "-" {
			return nil, fmt.Errorf("yaml line %d: map key among list items", ln.no)
		}
		ip := fmt.Sprintf("%s[%d]", path, len(out))
		rest := strings.TrimSpace(strings.TrimPrefix(ln.text, "-"))
		switch {
		case rest == "":
			// `-` alone: the item is the nested block.
			p.pos++
			if p.pos >= len(p.lines) || p.lines[p.pos].indent <= indent {
				return nil, fmt.Errorf("yaml line %d: empty list item", ln.no)
			}
			v, err := p.block(p.lines[p.pos].indent, ip)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		case isMapEntry(rest):
			// `- key: value`: the item is a map whose first entry sits
			// on the dash line; its siblings follow at the dash indent
			// plus two (the column where `key` starts).
			p.lines[p.pos] = yamlLine{no: ln.no, indent: indent + 2, text: rest}
			v, err := p.mapping(indent+2, ip)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		default:
			p.pos++
			v, err := p.parseFlow(rest, ln.no, ip)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
	}
	return out, nil
}

// splitKey splits `key: rest` (rest may be empty). The key must be a
// bare word — quoted keys are not part of the subset.
func splitKey(text string) (key, rest string, ok bool) {
	i := strings.IndexByte(text, ':')
	if i <= 0 {
		return "", "", false
	}
	key = strings.TrimSpace(text[:i])
	rest = strings.TrimSpace(text[i+1:])
	if key == "" || strings.ContainsAny(key, "\"'{}[],") {
		return "", "", false
	}
	return key, rest, true
}

// isMapEntry reports whether a list-item payload starts a map entry
// (`key: ...` with a bare-word key) rather than being a scalar.
func isMapEntry(s string) bool {
	i := strings.IndexByte(s, ':')
	if i <= 0 {
		return false
	}
	if i+1 < len(s) && s[i+1] != ' ' {
		return false // e.g. a time like `12:30` is a scalar
	}
	_, _, ok := splitKey(s)
	return ok
}

// parseFlow parses an inline value: a one-level flow map, a flow list,
// or a scalar. `path` is the value's key path; flow-map entries share
// their container's source line.
func (p *yamlParser) parseFlow(s string, no int, path string) (any, error) {
	switch {
	case strings.HasPrefix(s, "{"):
		if !strings.HasSuffix(s, "}") {
			return nil, fmt.Errorf("yaml line %d: unterminated flow map", no)
		}
		m := make(map[string]any)
		for _, part := range splitFlow(s[1 : len(s)-1]) {
			if part == "" {
				continue
			}
			key, rest, ok := splitKey(part)
			if !ok || rest == "" {
				return nil, fmt.Errorf("yaml line %d: bad flow map entry %q", no, part)
			}
			m[key] = unquote(rest)
			p.keys[joinPath(path, key)] = no
		}
		return m, nil
	case strings.HasPrefix(s, "["):
		if !strings.HasSuffix(s, "]") {
			return nil, fmt.Errorf("yaml line %d: unterminated flow list", no)
		}
		var out []any
		for _, part := range splitFlow(s[1 : len(s)-1]) {
			if part != "" {
				out = append(out, unquote(part))
			}
		}
		return out, nil
	default:
		return unquote(s), nil
	}
}

// splitFlow splits flow-collection innards on top-level commas.
func splitFlow(s string) []string {
	var parts []string
	var quote byte
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case quote != 0:
			if c == quote {
				quote = 0
			}
		case c == '"' || c == '\'':
			quote = c
		case c == ',':
			parts = append(parts, strings.TrimSpace(s[start:i]))
			start = i + 1
		}
	}
	return append(parts, strings.TrimSpace(s[start:]))
}

func unquote(s string) string {
	if len(s) >= 2 && (s[0] == '"' && s[len(s)-1] == '"' || s[0] == '\'' && s[len(s)-1] == '\'') {
		return s[1 : len(s)-1]
	}
	return s
}
