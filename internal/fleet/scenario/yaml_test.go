package scenario

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestParseYAMLShapes(t *testing.T) {
	src := `
# a comment
name: demo            # trailing comment
shape: {m: 8, n: 64}
tags: [a, "b c", d]
devices:
  count: 3
  nested:
    deep: yes
load:
  - {from: 0s, rps: 100}
  - from: 5s
    to: 9s
    rps: 250
plain:
  - one
  - "two # not a comment"
when: 12:30
empty:
`
	got, lines, err := parseYAML([]byte(src))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	want := map[string]any{
		"name":  "demo",
		"shape": map[string]any{"m": "8", "n": "64"},
		"tags":  []any{"a", "b c", "d"},
		"devices": map[string]any{
			"count":  "3",
			"nested": map[string]any{"deep": "yes"},
		},
		"load": []any{
			map[string]any{"from": "0s", "rps": "100"},
			map[string]any{"from": "5s", "to": "9s", "rps": "250"},
		},
		"plain": []any{"one", "two # not a comment"},
		"when":  "12:30",
		"empty": "",
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parse mismatch:\n got %#v\nwant %#v", got, want)
	}
	// The key-line map points every path at its source line, including
	// flow-map entries (which share their container's line) and keys
	// inside list items.
	for path, wantNo := range map[string]int{
		"name":                3,
		"shape.m":             4,
		"devices.nested.deep": 9,
		"load[0].rps":         11,
		"load[1].to":          13,
	} {
		if lines[path] != wantNo {
			t.Errorf("line of %q = %d, want %d", path, lines[path], wantNo)
		}
	}
}

func TestParseYAMLErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"tab indent", "a:\n\tb: 1", "tabs"},
		{"duplicate key", "a: 1\na: 2", "duplicate key"},
		{"list in map", "a: 1\n- b", "list item"},
		{"map in list", "x:\n  - a\n  b: 1", "map key"},
		{"indented top", "  a: 1", "top level"},
		{"bad flow map", "a: {b}", "flow map"},
		{"unterminated flow", "a: [1, 2", "unterminated"},
		{"empty list item", "a:\n  -", "empty list item"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := parseYAML([]byte(tc.src))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want mention of %q", err, tc.want)
			}
		})
	}
}

func TestDecodeDefaultsAndTimeline(t *testing.T) {
	sc, err := Decode([]byte(`
load:
  - {rps: 50}
events:
  - {at: 2s, device: 1, kind: healed}
  - {at: 1s, device: 0, kind: xid, xid: 79}
`))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if sc.Tick != 100*time.Millisecond || sc.Duration != 10*time.Second {
		t.Fatalf("time defaults: tick %v duration %v", sc.Tick, sc.Duration)
	}
	if sc.M != 8 || sc.N != 64 || sc.Devices != 3 || sc.Variants != 4 {
		t.Fatalf("shape/device defaults: %+v", sc)
	}
	// The load phase's To defaults to the scenario duration.
	if sc.Load[0].To != sc.Duration || sc.Load[0].RPS != 50 {
		t.Fatalf("load = %+v", sc.Load[0])
	}
	// Events come out sorted by At.
	if sc.Events[0].At != time.Second || sc.Events[0].XID != 79 {
		t.Fatalf("events not sorted: %+v", sc.Events)
	}
	// Correctness is always asserted even with no assert block.
	if sc.Assert.MinServed != 0 || sc.Assert.rejectedSet {
		t.Fatalf("assert defaults: %+v", sc.Assert)
	}
}

func TestDecodeStrictness(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"unknown top key", "rps: 5\nload:\n  - {rps: 1}", `unknown key "rps"`},
		{"unknown nested key", "devices:\n  cuont: 3\nload:\n  - {rps: 1}", `unknown key "cuont"`},
		// The canonical typo: the error must name the source line.
		{"typo names its line", "load:\n  - {rps: 1}\ndistributed:\n  n: 2049\n  vicitms: [1]",
			`line 5: distributed: unknown key "vicitms"`},
		{"flow typo names its line", "load:\n  - {rps: 1}\nshape: {m: 8, m_rows: 9}",
			`line 3: shape: unknown key "m_rows"`},
		{"bad kind", "load:\n  - {rps: 1}\nevents:\n  - {at: 1s, device: 0, kind: sharknado}", "sharknado"},
		{"missing kind", "load:\n  - {rps: 1}\nevents:\n  - {at: 1s, device: 0}", "missing kind"},
		{"bad int", "variants: soon\nload:\n  - {rps: 1}", "not an integer"},
		{"bad duration", "tick: fast\nload:\n  - {rps: 1}", "not a duration"},
		{"no load", "name: x", "no load phases"},
		{"event device range", "load:\n  - {rps: 1}\nevents:\n  - {at: 1s, device: 9, kind: xid}", "out of range"},
		{"too many devices", "devices:\n  count: 65\nload:\n  - {rps: 1}", "1..64"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Decode([]byte(tc.src))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want mention of %q", err, tc.want)
			}
		})
	}
}

func TestLoadCannedScenarios(t *testing.T) {
	for _, f := range []string{
		"testdata/device_death.yaml",
		"testdata/thermal_autoscale.yaml",
		"testdata/distributed_device_death.yaml",
		"testdata/gray_failure.yaml",
	} {
		sc, err := Load(f)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if sc.Name == "" || len(sc.Load) == 0 {
			t.Fatalf("%s: incomplete scenario %+v", f, sc)
		}
	}
}
