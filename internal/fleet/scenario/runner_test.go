package scenario

import (
	"testing"

	"gputrid/internal/fleet"
)

// TestDeviceDeathScenario is the acceptance scenario: 3 devices under
// sustained load, device 1 killed by a fatal XID at t=5s while its
// queue holds live requests, healed at t=8s. Every served response
// must be bitwise identical to its route's reference, rejections stay
// bounded, the dead device's traffic re-routes, and the device returns
// through probation to active — all on a virtual clock, replayable.
func TestDeviceDeathScenario(t *testing.T) {
	rep, err := RunFile("testdata/device_death.yaml", t.Logf)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !rep.OK() {
		t.Fatalf("scenario failed:\n%s", rep.Summary())
	}
	// Beyond the file's own assertions, pin the story's key beats.
	if rep.Incorrect != 0 {
		t.Fatalf("incorrect responses: %d", rep.Incorrect)
	}
	if rep.Stats.Cordons != 1 || rep.Stats.Heals != 1 {
		t.Fatalf("cordons/heals = %d/%d, want 1/1", rep.Stats.Cordons, rep.Stats.Heals)
	}
	if rep.Stats.Rerouted == 0 {
		t.Fatal("no re-routes: the death did not land under live traffic")
	}
	if st := rep.Stats.Devices[1].State; st != fleet.StateActive {
		t.Fatalf("device 1 final state = %v, want active", st)
	}
	if rep.Stats.Devices[1].Served == 0 {
		t.Fatal("device 1 served nothing after healing")
	}
	t.Logf("\n%s", rep.Summary())
}

// TestDistributedDeviceDeathScenario is the distributed acceptance
// scenario: a huge-N batch is solved across all three devices' slice
// of the interconnect fabric while device 1 is armed to die on its
// first kernel launch of the solve. The solve must complete bitwise
// identical to the fault-free reference (verified unconditionally by
// the runner), the death must surface mid-solve so the next tick
// cordons the device while the solve is in flight, and the serving
// plane must stay correct throughout.
func TestDistributedDeviceDeathScenario(t *testing.T) {
	rep, err := RunFile("testdata/distributed_device_death.yaml", t.Logf)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !rep.OK() {
		t.Fatalf("scenario failed:\n%s", rep.Summary())
	}
	if rep.Incorrect != 0 || rep.DistFailed != 0 {
		t.Fatalf("incorrect %d / distributed failures %d, want 0/0", rep.Incorrect, rep.DistFailed)
	}
	if rep.Stats.DistSolves != 1 || rep.Stats.DistDeaths != 1 {
		t.Fatalf("dist solves/deaths = %d/%d, want 1/1", rep.Stats.DistSolves, rep.Stats.DistDeaths)
	}
	if rep.Stats.DistMigrations == 0 {
		t.Fatal("no slab migrations: the death cost no live work")
	}
	if st := rep.Stats.Devices[1].State; st != fleet.StateDead {
		t.Fatalf("device 1 final state = %v, want dead", st)
	}
	t.Logf("\n%s", rep.Summary())
}

// TestGrayFailureScenario is the gray-failure acceptance scenario: a
// silent straggler and a flaky (corrupting) link, neither of which
// ever raises a driver event, must both be diagnosed from
// distributed-solve evidence and cordoned within the file's asserted
// tick bounds — while every accepted response stays bitwise identical
// to the fault-free reference (every corruption caught by checksum
// and repaired, straggler slabs hedged onto healthy devices, zero
// slabs degraded off the bit-exact device path).
func TestGrayFailureScenario(t *testing.T) {
	rep, err := RunFile("testdata/gray_failure.yaml", t.Logf)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !rep.OK() {
		t.Fatalf("scenario failed:\n%s", rep.Summary())
	}
	if rep.Incorrect != 0 || rep.DistFailed != 0 {
		t.Fatalf("incorrect %d / distributed failures %d, want 0/0", rep.Incorrect, rep.DistFailed)
	}
	// 100% corruption catch: every injected corrupt transfer was
	// noticed by a checksum and re-exchanged (an uncaught corruption
	// would have surfaced as an Incorrect response instead).
	if rep.Stats.DistIntegrityRetries == 0 {
		t.Fatal("no integrity retries: the flaky link never hit a verified transfer")
	}
	if rep.Stats.DistDegraded != 0 {
		t.Fatalf("%d slabs degraded to the host path; the scenario is tuned for in-place recovery", rep.Stats.DistDegraded)
	}
	if rep.Stats.GrayStragglers != 1 || rep.Stats.GrayLinkFlaky != 1 {
		t.Fatalf("detector flagged %d stragglers / %d flaky links, want 1/1",
			rep.Stats.GrayStragglers, rep.Stats.GrayLinkFlaky)
	}
	if rep.Stats.DistHedges == 0 || rep.Stats.DistHedgeWins == 0 {
		t.Fatalf("hedges/wins = %d/%d: the straggler never lost a slab race",
			rep.Stats.DistHedges, rep.Stats.DistHedgeWins)
	}
	// Nothing died — both cordons came from synthesized gray events.
	if rep.Stats.DistDeaths != 0 {
		t.Fatalf("dist deaths = %d, want 0", rep.Stats.DistDeaths)
	}
	t.Logf("\n%s", rep.Summary())
}

// TestThermalAutoscaleScenario: a load surge scales standby capacity
// in, a thermal throttle deprioritizes (never drains) a device, and
// the post-surge lull scales back down.
func TestThermalAutoscaleScenario(t *testing.T) {
	rep, err := RunFile("testdata/thermal_autoscale.yaml", t.Logf)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !rep.OK() {
		t.Fatalf("scenario failed:\n%s", rep.Summary())
	}
	if rep.Stats.ScaleUps == 0 || rep.Stats.ScaleDowns == 0 {
		t.Fatalf("scale ups/downs = %d/%d, want both > 0", rep.Stats.ScaleUps, rep.Stats.ScaleDowns)
	}
	t.Logf("\n%s", rep.Summary())
}

// TestScenarioDeterminism replays one scenario twice and demands
// identical control-plane outcomes: same cordons, heals, scale
// actions, final device states, and zero incorrect responses both
// times. (Data-plane tallies that depend on goroutine interleaving —
// exact reroute counts — are deliberately not compared.)
func TestScenarioDeterminism(t *testing.T) {
	src := []byte(`
name: determinism
seed: 9
tick: 250ms
duration: 4s
shape: {m: 4, n: 48}
variants: 2
devices: {count: 3, initial: 3, min_active: 2}
pool: {capacity: 2, queue: 64}
policy: {probation: 500ms}
load:
  - {from: 0s, to: 4s, rps: 60}
events:
  - {at: 1s, device: 2, kind: xid, xid: 48}
  - {at: 2500ms, device: 2, kind: healed}
`)
	type outcome struct {
		cordons, heals, ups, downs uint64
		incorrect, issued          int
		states                     [3]fleet.DeviceState
	}
	run := func() outcome {
		sc, err := Decode(src)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		rep, err := Run(sc, nil)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		if !rep.OK() {
			t.Fatalf("scenario failed:\n%s", rep.Summary())
		}
		o := outcome{
			cordons: rep.Stats.Cordons, heals: rep.Stats.Heals,
			ups: rep.Stats.ScaleUps, downs: rep.Stats.ScaleDowns,
			incorrect: rep.Incorrect, issued: rep.Issued,
		}
		for i, d := range rep.Stats.Devices {
			o.states[i] = d.State
		}
		return o
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("outcomes differ across replays:\n a: %+v\n b: %+v", a, b)
	}
	if a.cordons != 1 || a.heals != 1 || a.incorrect != 0 {
		t.Fatalf("unexpected outcome: %+v", a)
	}
	// Healed at 2.5s + 500ms probation => promoted by the 3s tick.
	if a.states[2] != fleet.StateActive {
		t.Fatalf("device 2 = %v, want active", a.states[2])
	}
}

// TestRunnerFaultInjection arms the per-device transient-fault
// injectors: recovered solves must still be bitwise identical to the
// fault-free reference (one-shot faults, retried), and sustained
// fault-layer activity must escalate through synthesized corrected-ECC
// events into control-plane action.
func TestRunnerFaultInjection(t *testing.T) {
	sc, err := Decode([]byte(`
name: faulty
seed: 3
tick: 250ms
duration: 3s
shape: {m: 4, n: 48}
variants: 2
devices: {count: 2, initial: 2, min_active: 1}
pool: {capacity: 2, queue: 64}
faults: {rate: 0.02}
load:
  - {from: 0s, to: 3s, rps: 80}
`))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	rep, err := Run(sc, nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if rep.Incorrect != 0 {
		t.Fatalf("fault recovery broke bitwise identity: %d incorrect\n%s", rep.Incorrect, rep.Summary())
	}
	if rep.Served == 0 {
		t.Fatal("nothing served")
	}
}
