package scenario

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gputrid"
	"gputrid/internal/core"
	"gputrid/internal/fleet"
	"gputrid/internal/gpusim"
	"gputrid/internal/workload"
)

// Report is the outcome of one scenario run. Failures lists every
// violated assertion; an empty list means the scenario passed.
type Report struct {
	Scenario string
	// Ticks is the number of control-loop steps executed.
	Ticks int
	// Issued counts requests offered; Served/Rejected their outcomes.
	Issued, Served, Rejected int
	// Incorrect counts served responses whose solution was not bitwise
	// identical to the route's reference — the one counter that must
	// be zero in every scenario, always.
	Incorrect int
	// DeviceRoute / FallbackRoute split Served by serving path.
	DeviceRoute, FallbackRoute int
	// DistFailed counts distributed solves that returned an error (a
	// completed-but-wrong distributed solve counts into Incorrect).
	DistFailed int
	// CordonTicks records, per device, the 0-based control-loop tick
	// at which the device was first observed cordoned (or dead) — the
	// gray-failure detector's measured detection latency.
	CordonTicks map[int]int
	// Stats is the fleet's final snapshot.
	Stats fleet.Stats
	// Failures lists violated assertions; Timeline is the narrative
	// event log (injections, end-of-run census).
	Failures []string
	Timeline []string
}

// OK reports whether every assertion held.
func (r *Report) OK() bool { return len(r.Failures) == 0 }

// Summary is a one-paragraph human rendering of the run.
func (r *Report) Summary() string {
	var sb strings.Builder
	status := "PASS"
	if !r.OK() {
		status = "FAIL"
	}
	fmt.Fprintf(&sb, "scenario %s: %s\n", r.Scenario, status)
	fmt.Fprintf(&sb, "  %d ticks, %d issued, %d served (%d device / %d fallback), %d rejected, %d incorrect\n",
		r.Ticks, r.Issued, r.Served, r.DeviceRoute, r.FallbackRoute, r.Rejected, r.Incorrect)
	fmt.Fprintf(&sb, "  cordons %d, heals %d, reroutes %d, scale up/down %d/%d, forced drains %d\n",
		r.Stats.Cordons, r.Stats.Heals, r.Stats.Rerouted, r.Stats.ScaleUps, r.Stats.ScaleDowns, r.Stats.ForcedDrains)
	if r.Stats.DistSolves > 0 || r.DistFailed > 0 {
		fmt.Fprintf(&sb, "  distributed: %d solved, %d failed, %d deaths, %d migrations, %d degraded\n",
			r.Stats.DistSolves, r.DistFailed, r.Stats.DistDeaths, r.Stats.DistMigrations, r.Stats.DistDegraded)
	}
	if r.Stats.DistIntegrityRetries > 0 || r.Stats.DistHedges > 0 ||
		r.Stats.GrayStragglers > 0 || r.Stats.GrayLinkFlaky > 0 {
		fmt.Fprintf(&sb, "  gray: %d integrity retries, %d hedges (%d won), %d stragglers flagged, %d flaky links flagged\n",
			r.Stats.DistIntegrityRetries, r.Stats.DistHedges, r.Stats.DistHedgeWins,
			r.Stats.GrayStragglers, r.Stats.GrayLinkFlaky)
	}
	for _, d := range r.Stats.Devices {
		fmt.Fprintf(&sb, "  device %d: %s (served %d, failed %d)\n", d.ID, d.State, d.Served, d.Failed)
	}
	for _, f := range r.Failures {
		fmt.Fprintf(&sb, "  FAIL: %s\n", f)
	}
	return sb.String()
}

// RunFile loads and runs a scenario file.
func RunFile(path string, logf func(format string, args ...any)) (*Report, error) {
	sc, err := Load(path)
	if err != nil {
		return nil, err
	}
	return Run(sc, logf)
}

// Run replays a scenario against a real fleet on a virtual clock and
// evaluates its assertions. logf, when non-nil, receives progress
// lines (tests pass t.Logf, the CLI passes log.Printf).
//
// The replay is a stepped loop over Tick-sized virtual intervals. Each
// step launches the interval's offered load asynchronously, *then*
// injects the interval's health events and runs the control loop —
// so a fatal event lands while that interval's requests are queued and
// in flight on the dying device, and the drain/re-route machinery is
// exercised under genuine traffic, not against an idle pool. The step
// then waits for the interval's requests and any drains to settle
// before advancing the virtual clock, so every control decision
// happens at a deterministic virtual instant.
//
// Every served response is verified bitwise against a precomputed
// reference for its route: the hybrid device solve for device routes,
// the host pivoting solve for breaker-fallback routes. With a
// faults.rate armed, the injector stays one-shot (Repeat 1), which the
// retry layer recovers bitwise-identically — so "zero incorrect
// responses" holds even in fault-injecting scenarios.
//
// Control-plane outcomes (cordons, heals, scale events, final device
// states) are deterministic across runs; data-plane tallies that
// depend on goroutine interleaving (exact reroute and rejection
// counts) are asserted through bounds, not equality.
func Run(sc *Scenario, logf func(format string, args ...any)) (*Report, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	rep := &Report{Scenario: sc.Name}
	var sayMu sync.Mutex // the distributed-solve goroutine narrates too
	say := func(format string, args ...any) {
		line := fmt.Sprintf(format, args...)
		sayMu.Lock()
		rep.Timeline = append(rep.Timeline, line)
		sayMu.Unlock()
		logf("%s", line)
	}

	// References: `Variants` distinct batches of the scenario shape,
	// each with its device-route and fallback-route reference solution.
	batches := make([]*gputrid.Batch[float64], sc.Variants)
	deviceRef := make([][]float64, sc.Variants)
	cpuRef := make([][]float64, sc.Variants)
	for v := 0; v < sc.Variants; v++ {
		b := workload.Batch[float64](workload.DiagDominant, sc.M, sc.N, sc.Seed+uint64(v)*7919+1)
		res, err := gputrid.SolveBatchCtx(context.Background(), b)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: device reference %d: %w", sc.Name, v, err)
		}
		x, err := gputrid.SolveCPUPivoting(b)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: pivot reference %d: %w", sc.Name, v, err)
		}
		batches[v], deviceRef[v], cpuRef[v] = b, res.X, x
	}

	// Distributed stanza: the fault-free reference is the same
	// distributed solve on a clean topology of the same width — the
	// bitwise contract says deaths and migrations must reproduce these
	// exact bits. The run's own topology arms each victim with a
	// permanent abort, so it dies on its first kernel launch of the
	// solve and stays dead for every retry.
	var distTopo *gpusim.Topology
	var distBatch *gputrid.Batch[float64]
	var distRef []float64
	if ds := sc.Distributed; ds != nil {
		distBatch = workload.Batch[float64](workload.DiagDominant, ds.M, ds.N, sc.Seed*31+17)
		clean, err := gpusim.UniformTopology(sc.Devices, gpusim.NVLinkMesh(), gpusim.GTX480())
		if err != nil {
			return nil, fmt.Errorf("scenario %s: distributed reference topology: %w", sc.Name, err)
		}
		refSolver, err := core.NewDistSolver[float64](core.DistConfig{
			Topology: clean, Slabs: sc.Devices,
		}, ds.M, ds.N)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: distributed reference solver: %w", sc.Name, err)
		}
		distRef = make([]float64, ds.M*ds.N)
		if _, err := refSolver.SolveInto(context.Background(), distRef, distBatch); err != nil {
			return nil, fmt.Errorf("scenario %s: distributed reference solve: %w", sc.Name, err)
		}
		_ = refSolver.Close()
		distTopo, err = gpusim.UniformTopology(sc.Devices, gpusim.NVLinkMesh(), gpusim.GTX480())
		if err != nil {
			return nil, fmt.Errorf("scenario %s: distributed topology: %w", sc.Name, err)
		}
		for _, v := range ds.Victims {
			distTopo.Device(v).Faults = &gpusim.Injector{
				Schedule: []gpusim.ScheduledFault{{Kind: gpusim.FaultAbort, Repeat: 1 << 30}},
			}
		}
		// Gray arming: a silent straggler (modeled slowdown, no event,
		// no error) and/or a flaky link (seeded corruption on every
		// transfer touching the device — each one caught by the
		// solver's checksums and repaired, so the reference stays
		// bitwise authoritative).
		if g := sc.Gray; g != nil {
			if g.Straggler >= 0 {
				distTopo.Device(g.Straggler).SlowFactor = g.StragglerFactor
			}
			if g.Flaky >= 0 {
				distTopo.Links = &gpusim.LinkInjector{
					Seed:    sc.Seed*0x9E3779B9 + 1,
					Rate:    g.FlakyRate,
					Kinds:   []gpusim.LinkFaultKind{gpusim.LinkCorrupt},
					Devices: []int{g.Flaky},
				}
			}
		}
	}

	// The factory builds each device's real serving pool, wrapped in a
	// gatedBackend (see gate.go) so the runner can pin a fatal-event
	// tick's requests in flight while the cordon lands. Revives go
	// through the same factory, so healed devices get fresh pools and
	// fresh (disarmed) gates.
	vc := fleet.NewVirtualClock(time.Unix(0, 0).UTC())
	var gates gateSet
	factory := func(id int) (fleet.Backend, error) {
		// The pools share the run's virtual clock, so control-plane
		// time (idle-eviction stamps, deadline feasibility) replays
		// identically too.
		pc := gputrid.PoolConfig{Capacity: sc.Capacity, QueueLimit: sc.Queue, Clock: vc}
		if sc.FaultRate > 0 {
			pc.SolverOptions = []gputrid.Option{gputrid.WithFaultInjection(&gputrid.FaultInjector{
				Seed: sc.Seed ^ uint64(id+1)*0x9E3779B97F4A7C15,
				Rate: sc.FaultRate, // Repeat stays 1: one-shot transients, bitwise-recoverable
			})}
		}
		p := gputrid.NewPool[float64](pc)
		if err := p.Warm(sc.M, sc.N); err != nil {
			_ = p.Close(context.Background())
			return nil, err
		}
		g := &gatedBackend{inner: p}
		gates.put(id, g)
		return g, nil
	}
	fcfg := fleet.Config{
		Devices:           sc.Devices,
		InitialActive:     sc.InitialActive,
		MinActive:         sc.MinActive,
		Clock:             vc,
		Factory:           factory,
		Probation:         sc.Probation,
		DrainTimeout:      sc.DrainTimeout,
		ScaleCooldown:     sc.ScaleCooldown,
		CorrectedECCLimit: sc.CorrectedECCLimit,
		RerouteAttempts:   sc.RerouteAttempts,
		ScaleUpAt:         sc.ScaleUpAt,
		ScaleDownAt:       sc.ScaleDownAt,
		DistTopology:      distTopo,
	}
	if g := sc.Gray; g != nil {
		fcfg.Gray = fleet.GrayPolicy{
			StragglerRatio: g.StragglerRatio,
			MinSamples:     g.MinSamples,
			IntegrityLimit: g.IntegrityLimit,
		}
		fcfg.DistHedge = core.HedgePolicy{Disable: g.DisableHedge}
	}
	fl, err := fleet.New(fcfg)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", sc.Name, err)
	}
	defer fl.Close(context.Background())

	var served, rejected, incorrect, devRoute, fbRoute atomic.Int64
	completed := func() int { return int(served.Load() + rejected.Load()) }
	solveOne := func(req int) {
		v := req % sc.Variants
		res, err := fl.Solve(context.Background(), batches[v])
		if err != nil {
			rejected.Add(1)
			return
		}
		served.Add(1)
		ref := deviceRef[v]
		if res.Route == gputrid.RouteFallback {
			ref = cpuRef[v]
			fbRoute.Add(1)
		} else {
			devRoute.Add(1)
		}
		for i := range ref {
			if res.X[i] != ref[i] {
				incorrect.Add(1)
				return
			}
		}
	}

	ticks := int(sc.Duration / sc.Tick)
	tickSec := sc.Tick.Seconds()
	var carry float64 // fractional requests carried between ticks
	nextEv := 0
	reqID := 0
	var distWG sync.WaitGroup
	var distFailed atomic.Int64
	distRemaining := 0
	var nextDistAt time.Duration
	if ds := sc.Distributed; ds != nil {
		distRemaining = ds.count()
		nextDistAt = ds.At
	}
	rep.CordonTicks = make(map[int]int)
	for t := 0; t < ticks; t++ {
		now := time.Duration(t) * sc.Tick

		// A tick that will deliver a fatal event pins its requests at
		// the device gates: they route (and are counted in flight)
		// but hold at the backend boundary until after the control
		// loop runs, so the cordon provably lands on a device with
		// live traffic and the held requests race its drain — some
		// drained gracefully, the rest re-routed off the closing pool.
		fatalTick := false
		for i := nextEv; i < len(sc.Events) && sc.Events[i].At <= now; i++ {
			if sc.Events[i].Kind.Severity() == gpusim.SeverityFatal {
				fatalTick = true
			}
		}
		if fatalTick {
			gates.armAll()
		}

		// 1. Offer this interval's load, asynchronously.
		for _, ph := range sc.Load {
			if now >= ph.From && now < ph.To {
				carry += ph.RPS * tickSec
			}
		}
		n := int(carry)
		carry -= float64(n)
		tickBase := completed()
		// A start gate releases the interval's requests simultaneously:
		// they must contend — filling device queues and raising the peak
		// concurrency the autoscaler reads — not trickle in one by one
		// as the launch loop schedules them.
		start := make(chan struct{})
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(req int) {
				defer wg.Done()
				<-start
				solveOne(req)
			}(reqID)
			reqID++
		}
		close(start)
		rep.Issued += n

		// 1b. Launch the distributed solve when its instant arrives,
		// then busy-wait (event-driven, no sleeps) until every armed
		// victim's death has surfaced in the health feed. The regular
		// Tick below therefore cordons the victims *while the
		// distributed solve is still in flight* — the issue's central
		// claim — and the solve's own migration machinery finishes the
		// answer on the survivors.
		if ds := sc.Distributed; ds != nil && distRemaining > 0 && now >= nextDistAt {
			first := distRemaining == ds.count()
			distRemaining--
			every := ds.Every
			if every <= 0 {
				every = sc.Tick
			}
			nextDistAt = now + every
			eventsBase := fl.Stats().Events
			if first {
				say("t=%v: launch distributed solve %dx%d, %d victims armed", now, ds.M, ds.N, len(ds.Victims))
			} else {
				say("t=%v: launch distributed solve %dx%d (%d of %d)", now, ds.M, ds.N, ds.count()-distRemaining, ds.count())
			}
			distWG.Add(1)
			go func() {
				defer distWG.Done()
				res, err := fl.SolveDistributed(context.Background(), distBatch)
				if err != nil {
					distFailed.Add(1)
					say("distributed solve failed: %v", err)
					return
				}
				for i := range distRef {
					if res.X[i] != distRef[i] {
						incorrect.Add(1)
						say("distributed solve diverged from fault-free reference at element %d", i)
						return
					}
				}
			}()
			// Armed victims die on their first kernel launch of the
			// first solve; later solves run on the survivors.
			if first {
				for fl.Stats().Events < eventsBase+uint64(len(ds.Victims)) {
					runtime.Gosched()
				}
				if len(ds.Victims) > 0 {
					say("t=%v: %d device death(s) surfaced mid-solve", now, len(ds.Victims))
				}
			}
			// With gray failures armed, the solve's statistical evidence
			// (latency residue, integrity retries) must reach the
			// detector before this tick's control loop runs — otherwise
			// the cordon tick would depend on a goroutine race and
			// cordoned_by assertions could not be deterministic.
			if sc.Gray != nil {
				distWG.Wait()
			}
		}

		// 2. Admission barrier: wait (event-driven, no sleeps) until
		// every request of the interval has been routed to a device
		// (counted in-flight) or already finished. Two things depend on
		// it. First, Tick's autoscaler reads how much load this interval
		// actually offered — without the barrier a Tick can observe an
		// empty interval under sustained load and spuriously scale down.
		// Second, events injected below land on a device with real
		// queued and running work — "a fatal event at t under load"
		// means *under load* — so the drained requests demonstrably
		// re-route. (Per-tick wg.Wait means no stragglers from earlier
		// intervals pollute the count.)
		for completed()-tickBase+int(fl.Stats().InFlight) < n {
			runtime.Gosched()
		}

		// 3. Inject the events due at this virtual instant — while the
		// interval's requests are live — and run the control loop.
		for nextEv < len(sc.Events) && sc.Events[nextEv].At <= now {
			ev := sc.Events[nextEv]
			say("t=%v: inject %s", now, gpusim.HealthEvent{
				Device: ev.Device, Kind: ev.Kind, XID: ev.XID, Temp: ev.Temp, Message: ev.Message,
			})
			fl.Inject(gpusim.HealthEvent{
				Device: ev.Device, Kind: ev.Kind, XID: ev.XID,
				Temp: ev.Temp, Message: ev.Message, Time: vc.Now(),
			})
			nextEv++
		}
		fl.Tick()
		if fatalTick {
			gates.releaseAll()
		}
		// Record each device's first observed cordon tick — the
		// detection-latency figure cordoned_by assertions bound.
		for _, d := range fl.Stats().Devices {
			if _, seen := rep.CordonTicks[d.ID]; !seen && (d.State == fleet.StateCordoned || d.State == fleet.StateDead) {
				rep.CordonTicks[d.ID] = t
				say("t=%v: device %d cordoned (tick %d)", now, d.ID, t)
			}
		}

		// 4. Settle the interval: requests complete (re-routing off any
		// device cordoned above), drains land, the distributed solve
		// (if launched this tick) delivers its recovered answer. No
		// wall-clock sleeps — all waits are event-driven.
		wg.Wait()
		distWG.Wait()
		fl.Quiesce()
		vc.Advance(sc.Tick)
		rep.Ticks++
	}
	// The timeline is the half-open interval [0, Duration): events and
	// probation expiries are serviced by the tick that covers them, and
	// the last tick's drains were already settled above. Deliberately
	// no extra settling Tick here — it would hand the autoscaler an
	// empty interval window and manufacture a spurious scale-down as
	// the run's final act.
	fl.Quiesce()

	rep.Served = int(served.Load())
	rep.Rejected = int(rejected.Load())
	rep.Incorrect = int(incorrect.Load())
	rep.DeviceRoute = int(devRoute.Load())
	rep.FallbackRoute = int(fbRoute.Load())
	rep.DistFailed = int(distFailed.Load())
	rep.Stats = fl.Stats()
	evaluate(sc, rep)
	say("t=%v: done — %d served, %d rejected, %d incorrect, cordons %d, heals %d",
		sc.Duration, rep.Served, rep.Rejected, rep.Incorrect, rep.Stats.Cordons, rep.Stats.Heals)
	return rep, nil
}

// evaluate applies the scenario's assertions to the finished run.
func evaluate(sc *Scenario, rep *Report) {
	fail := func(format string, args ...any) {
		rep.Failures = append(rep.Failures, fmt.Sprintf(format, args...))
	}
	a := sc.Assert

	// The unconditional assertion: a fleet may shed load, but a served
	// response is never wrong.
	if rep.Incorrect != 0 {
		fail("%d served responses were not bitwise identical to their reference", rep.Incorrect)
	}
	if rep.Served < a.MinServed {
		fail("served %d < min_served %d", rep.Served, a.MinServed)
	}
	if a.rejectedSet && rep.Issued > 0 {
		if frac := float64(rep.Rejected) / float64(rep.Issued); frac > a.MaxRejectedFrac {
			fail("rejected %d/%d = %.3f > max_rejected_frac %.3f", rep.Rejected, rep.Issued, frac, a.MaxRejectedFrac)
		}
	}
	if a.Cordons != nil && int(rep.Stats.Cordons) != *a.Cordons {
		fail("cordons = %d, want %d", rep.Stats.Cordons, *a.Cordons)
	}
	if a.MaxForcedDrains != nil && int(rep.Stats.ForcedDrains) > *a.MaxForcedDrains {
		fail("forced drains = %d > max %d", rep.Stats.ForcedDrains, *a.MaxForcedDrains)
	}
	if int(rep.Stats.ScaleUps) < a.MinScaleUps {
		fail("scale-ups = %d < min %d", rep.Stats.ScaleUps, a.MinScaleUps)
	}
	if int(rep.Stats.ScaleDowns) < a.MinScaleDowns {
		fail("scale-downs = %d < min %d", rep.Stats.ScaleDowns, a.MinScaleDowns)
	}
	if int(rep.Stats.Rerouted) < a.MinRerouted {
		fail("reroutes = %d < min_rerouted %d (the failure never hit live traffic?)", rep.Stats.Rerouted, a.MinRerouted)
	}
	// Like Incorrect, a failed distributed solve is unconditionally a
	// scenario failure: the whole point of the recovery machinery is
	// that device death never fails the solve.
	if rep.DistFailed != 0 {
		fail("%d distributed solves failed", rep.DistFailed)
	}
	if int(rep.Stats.DistSolves) < a.MinDistSolves {
		fail("distributed solves = %d < min_dist_solves %d", rep.Stats.DistSolves, a.MinDistSolves)
	}
	if a.DistDeaths != nil && int(rep.Stats.DistDeaths) != *a.DistDeaths {
		fail("distributed deaths = %d, want %d", rep.Stats.DistDeaths, *a.DistDeaths)
	}
	if int(rep.Stats.DistMigrations) < a.MinDistMigrations {
		fail("distributed migrations = %d < min_dist_migrations %d", rep.Stats.DistMigrations, a.MinDistMigrations)
	}
	if int(rep.Stats.DistIntegrityRetries) < a.MinIntegrityRetries {
		fail("integrity retries = %d < min_integrity_retries %d (the corruption never hit a verified transfer?)",
			rep.Stats.DistIntegrityRetries, a.MinIntegrityRetries)
	}
	if int(rep.Stats.DistHedges) < a.MinHedges {
		fail("hedges = %d < min_hedges %d (the straggler never triggered speculation?)",
			rep.Stats.DistHedges, a.MinHedges)
	}
	if a.MaxDistDegraded != nil && int(rep.Stats.DistDegraded) > *a.MaxDistDegraded {
		fail("distributed degraded slabs = %d > max_dist_degraded %d", rep.Stats.DistDegraded, *a.MaxDistDegraded)
	}
	for _, cb := range a.CordonedBy {
		tick, ok := rep.CordonTicks[cb.Device]
		if !ok {
			fail("device %d was never cordoned (cordoned_by tick %d)", cb.Device, cb.Tick)
		} else if tick > cb.Tick {
			fail("device %d cordoned at tick %d > cordoned_by %d", cb.Device, tick, cb.Tick)
		}
	}
	for _, fs := range a.FinalStates {
		got := rep.Stats.Devices[fs.Device].State.String()
		ok := false
		for _, want := range fs.States {
			if got == want {
				ok = true
			}
		}
		if !ok {
			fail("device %d final state = %s, want %s", fs.Device, got, strings.Join(fs.States, "|"))
		}
	}
}
